# BlindFL build and test entry points. CI (.github/workflows/ci.yml) invokes
# exactly these targets so local runs reproduce the CI lanes.

GO ?= go

.PHONY: build test test-cpu test-full test-chaos bench bench-smoke bench-json serve-smoke shard-smoke examples fmt fmt-check vet lint lint-tools

build:
	$(GO) build ./...

# Short lane: skips the long federated-training suites (testing.Short).
# The -timeout turns a reintroduced protocol hang (e.g. RunParties stuck on
# a one-sided failure) into a fast CI failure instead of a stalled job.
test:
	$(GO) test -short -race -timeout 10m ./...

# Parallelism lane: the process-wide table cache, pool condition-variable
# wait and SecretOps/pool registries re-run under the race detector at 1 and
# 4 CPUs, so single-core schedules and real parallelism are both exercised.
test-cpu:
	$(GO) test -short -race -timeout 10m -cpu 1,4 ./internal/paillier/ ./internal/hetensor/

# Full lane: everything, including the ~4 min federated model suite.
test-full:
	$(GO) test -timeout 30m ./...

# Chaos lane: the run-integrity suite (docs/INTEGRITY.md) — every fault
# class (bit-flip, drop, dup, reorder, delay, mid-run kill) driven through
# the stream transport, the k-session group runtime and full federated
# training, asserting bit-exact recovery or a typed loud failure, never
# silent garbage. Race detector on: fault handling exercises the teardown
# paths where latent races live.
test-chaos:
	$(GO) test -short -race -timeout 10m \
		-run 'TestChaos|TestFault|TestStream|TestDeadline|TestRunGroupFaultConn|TestGroupAllSessionsLost|TestRetry' \
		./internal/transport/ ./internal/protocol/ ./internal/model/ ./internal/serve/

# Examples lane: compile every example, smoke-run the quickstart and the
# multi-party group runtime.
examples:
	$(GO) build ./examples/...
	$(GO) run ./examples/quickstart -short
	$(GO) run ./examples/multiparty -short

# Throughput-engine benchmarks: packed/pooled encryption and fed-step.
bench:
	$(GO) test -run XXX -bench 'FedStep|Encrypt|MulPlainLeft|PoolEnc|DotRow|MulPlainNeg' -benchtime 10x ./ ./internal/hetensor/ ./internal/paillier/

# Bench smoke lane: every benchmark compiles and runs one iteration so
# benchmark code cannot rot. -short skips the multi-minute paper tables;
# the engine/kernel/fed-step benchmarks all execute.
bench-smoke:
	$(GO) test -run XXX -bench . -benchtime 1x -short -timeout 15m ./...

# Benchmarks as data: the exponentiation-engine and amortized-precompute
# perf suites at a production key size, the end-to-end fed-step, fed-epoch,
# multi-party, sharded-label-party and serve rows, written to
# BENCH_PR10.json (format: internal/bench/README.md). Since PR 8 every row
# with a baseline config also carries a ratio column, and the file opens
# with a fixed-operand calibration op — absolute ns on a shared host swing
# 2× run to run, so the trajectory is judged on ratios, with the calibration
# row bounding how much of a cross-file delta is machine. Earlier points of
# the trajectory (BENCH_PR3.json..BENCH_PR8.json) are kept, not rewritten.
bench-json:
	$(GO) run ./cmd/blindfl-bench -perf BENCH_PR10.json -keybits 2048

# Shard smoke lane: two real blindfl-shard worker processes on loopback TCP
# plus a 2-shard blindfl-train run against them — the multi-process wiring
# (announce/connect, fingerprint check, deterministic schedule) exercised
# end to end on a toy job. Worker -timeout and the train deadline turn a
# wedged handshake into a fast failure instead of a hung CI job.
shard-smoke: build
	$(GO) build -o bin/blindfl-shard ./cmd/blindfl-shard
	$(GO) build -o bin/blindfl-train ./cmd/blindfl-train
	./scripts/shard-smoke.sh

# Serve smoke lane: train a toy checkpoint, bring up the blindfl-serve
# request batcher on fresh sessions, and fire the closed-loop load generator
# through it with the integrity spot-check on. The command exits non-zero on
# an empty, non-finite or integrity-mismatched response.
serve-smoke:
	$(GO) run ./cmd/blindfl-serve -dataset higgs -train 96 -test 48 -epochs 1 \
		-requests 48 -spotcheck -packed -tablecache 64

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Vet lane: stock go vet, then the repo's own invariant analyzers
# (internal/analyzers, driven by cmd/blindfl-vet over the go vet -vettool
# protocol): bigval, rngstream, teardown, lockguard, floatpure. Suppressions
# are //blindfl:allow directives only; see docs/INVARIANTS.md.
vet:
	$(GO) vet ./...
	$(GO) build -o bin/blindfl-vet ./cmd/blindfl-vet
	$(GO) vet -vettool=$(CURDIR)/bin/blindfl-vet ./...

# Pinned external linters. lint-tools installs them (network needed); lint
# skips any that are absent so offline runs still exercise blindfl-vet.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# Lint lane: blindfl-vet (always), then staticcheck and govulncheck when
# installed. CI runs lint-tools first so both always run there.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (make lint-tools)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck ./..."; govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (make lint-tools)"; \
	fi
