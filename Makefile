# BlindFL build and test entry points. CI (.github/workflows/ci.yml) invokes
# exactly these targets so local runs reproduce the CI lanes.

GO ?= go

.PHONY: build test test-full bench examples fmt fmt-check vet

build:
	$(GO) build ./...

# Short lane: skips the long federated-training suites (testing.Short).
# The -timeout turns a reintroduced protocol hang (e.g. RunParties stuck on
# a one-sided failure) into a fast CI failure instead of a stalled job.
test:
	$(GO) test -short -race -timeout 10m ./...

# Full lane: everything, including the ~4 min federated model suite.
test-full:
	$(GO) test -timeout 30m ./...

# Examples lane: compile every example and smoke-run the quickstart.
examples:
	$(GO) build ./examples/...
	$(GO) run ./examples/quickstart -short

# Throughput-engine benchmarks: packed/pooled encryption and fed-step.
bench:
	$(GO) test -run XXX -bench 'FedStep|Encrypt|MulPlainLeft|PoolEnc' -benchtime 10x ./ ./internal/hetensor/ ./internal/paillier/

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...
