// Package blindfl_test is the top-level benchmark suite: one benchmark per
// table and figure of the paper's evaluation. Benchmarks use reduced batch
// sizes so `go test -bench=.` completes in minutes on one core; the
// blindfl-bench command runs the paper-scale versions.
//
// Mapping (see DESIGN.md §4 and EXPERIMENTS.md for the full index):
//
//	Table 5  -> BenchmarkTable5_*
//	Table 6  -> BenchmarkTable6Fmnist*
//	Table 7  -> BenchmarkTable7HiddenDim*
//	Table 8  -> BenchmarkTable8Layers*
//	Fig 9    -> BenchmarkFig9ActivationAttack (full curves via blindfl-attack)
//	Fig 10   -> BenchmarkFig10DerivativeAttack
//	Fig 11   -> BenchmarkFig11ShareDivergence
//	Fig 12   -> BenchmarkFig12Lossless* (one representative combo; the rest
//	            run via `blindfl-bench -exp fig12`)
//	Fig 15   -> BenchmarkFig15Fmnist
package blindfl_test

import (
	"io"
	"testing"
	"time"

	"blindfl/internal/bench"
	"blindfl/internal/data"
	"blindfl/internal/engine"
	"blindfl/internal/model"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/secureml"
	"blindfl/internal/splitlearn"
)

const benchBatch = 32 // paper uses 128; reduced to keep -bench=. tractable

// skipInShort guards the paper-table benchmarks in the CI bench-smoke lane
// (`-bench . -benchtime 1x -short`): the throughput-engine benchmarks below
// still run, so kernel and fed-step benchmark code cannot rot, while the
// multi-minute table reproductions stay out of the per-push lane.
func skipInShort(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-table benchmark skipped in -short")
	}
}

func benchBlindFL(b *testing.B, dataset string, out int) {
	skipInShort(b)
	step := bench.NewBlindFLStepper(data.MustSpec(dataset), benchBatch, out)
	step() // warm-up outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

func benchSecureML(b *testing.B, dataset string, out int, mode secureml.Mode) {
	skipInShort(b)
	step := bench.NewSecureMLStepper(data.MustSpec(dataset), benchBatch, out, mode)
	step()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// --- Throughput engine: packed + pooled fed source-layer step vs the
// --- unpacked path, on the same key size (the PR's acceptance benchmark).

func benchFedStep(b *testing.B, opts bench.StepperOpts) {
	skA, skB := protocol.TestKeys()
	pools := func() []*paillier.Pool {
		var out []*paillier.Pool
		for _, sk := range []*paillier.PrivateKey{skA, skB} {
			if p := paillier.PoolFor(&sk.PublicKey); p != nil {
				out = append(out, p)
			}
		}
		return out
	}
	defer func() {
		for _, sk := range []*paillier.PrivateKey{skA, skB} {
			if p := paillier.PoolFor(&sk.PublicKey); p != nil {
				paillier.UnregisterPool(&sk.PublicKey)
				p.Close()
			}
		}
	}()
	spec := data.Spec{Name: "bench-dense", Feats: 32, AvgNNZ: 32, Classes: 2, Train: 256, Test: 64}
	step := bench.NewBlindFLStepperOpts(spec, benchBatch, 4, opts)
	step() // warm-up (and pool prefill time) outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if opts.Pool > 0 {
			// Blinding precompute is designed to run between protocol
			// rounds (data loading, network waits); refill outside the
			// timer so the measurement reflects the critical path.
			b.StopTimer()
			for _, p := range pools() {
				p.WaitAvailable(opts.Pool)
			}
			b.StartTimer()
		}
		step()
	}
}

func BenchmarkFedStepUnpacked(b *testing.B) { benchFedStep(b, bench.StepperOpts{}) }
func BenchmarkFedStepPacked(b *testing.B) {
	benchFedStep(b, bench.StepperOpts{Options: engine.Options{Packed: true}})
}
func BenchmarkFedStepPackedPooled(b *testing.B) {
	benchFedStep(b, bench.StepperOpts{Options: engine.Options{Packed: true, Pool: 4096}})
}

// Textbook variants disable the signed/Straus exponentiation engine: the
// pre-PR-3 baselines the ≥2× acceptance criterion is measured against.
func BenchmarkFedStepTextbook(b *testing.B) {
	benchFedStep(b, bench.StepperOpts{Options: engine.Options{Textbook: true}})
}
func BenchmarkFedStepPackedTextbook(b *testing.B) {
	benchFedStep(b, bench.StepperOpts{Options: engine.Options{Packed: true, Textbook: true}})
}

// Short-exponent blinding on top of packing and pooling: pool refills cost a
// ~400-bit exponentiation instead of a full-width one, so the same refill
// budget sustains ~5× the encryption throughput at production key sizes.
func BenchmarkFedStepPackedPooledShortExp(b *testing.B) {
	benchFedStep(b, bench.StepperOpts{Options: engine.Options{Packed: true, Pool: 4096, ShortExp: 400}})
}

// Streamed variants: chunked transfers pipeline one party's encryption
// against the other's decryption/accumulation, so the step's serial
// encrypt→ship→decrypt phases overlap (the PR's acceptance benchmark is
// PackedStreamed vs Packed, and the WAN pair below for the
// compute/communication overlap on a modeled link).
func BenchmarkFedStepStreamed(b *testing.B) {
	benchFedStep(b, bench.StepperOpts{Options: engine.Options{Stream: true}})
}
func BenchmarkFedStepPackedStreamed(b *testing.B) {
	benchFedStep(b, bench.StepperOpts{Options: engine.Options{Packed: true, Stream: true}})
}

// Multi-party pair: the k=3 dense MatMul group vs the degenerate k=1 group
// over the same total feature width — the per-session overhead of the group
// runtime (extra piece traffic, per-session conversions) with the sessions
// scheduled concurrently across cores.
func benchFedStepMulti(b *testing.B, k int) {
	spec := data.Spec{Name: "bench-multi", Feats: 32, AvgNNZ: 32, Classes: 2, Train: 256, Test: 64}
	step := bench.NewBlindFLMultiStepper(spec, benchBatch, 4, k, bench.StepperOpts{Options: engine.Options{Packed: true}})
	step() // warm-up outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

func BenchmarkFedStepMultipartyK1(b *testing.B) { benchFedStepMulti(b, 1) }
func BenchmarkFedStepMultipartyK3(b *testing.B) { benchFedStepMulti(b, 3) }

// WAN pair: 5 ms one-way latency, 2 Mbit/s per direction over
// transport.SimPair (wire time releases the CPU, as on a real link).
// Monolithic sends pay encrypt→transfer→decrypt serially; streamed chunks
// hide the transfer behind the production of the next chunk. The bandwidth
// is chosen so wire time is comparable to this benchmark's (deliberately
// small) crypto time — the regime any deployment with faster crypto or
// bigger batches lands in at ordinary WAN bandwidths.
const (
	wanLatency   = 5 * time.Millisecond
	wanBandwidth = 250e3 // bytes/sec
)

func BenchmarkFedStepPackedWAN(b *testing.B) {
	benchFedStep(b, bench.StepperOpts{Options: engine.Options{Packed: true}, SimLatency: wanLatency, SimBandwidth: wanBandwidth})
}
func BenchmarkFedStepPackedStreamedWAN(b *testing.B) {
	benchFedStep(b, bench.StepperOpts{Options: engine.Options{Packed: true, Stream: true}, SimLatency: wanLatency, SimBandwidth: wanBandwidth})
}

// --- Table 5: per-batch training time, BlindFL vs SecureML variants ---

func BenchmarkTable5_a9a_BlindFL(b *testing.B)      { benchBlindFL(b, "a9a", 1) }
func BenchmarkTable5_a9a_SecureML(b *testing.B)     { benchSecureML(b, "a9a", 1, secureml.HEGenerated) }
func BenchmarkTable5_a9a_ClientAided(b *testing.B)  { benchSecureML(b, "a9a", 1, secureml.ClientAided) }
func BenchmarkTable5_w8a_BlindFL(b *testing.B)      { benchBlindFL(b, "w8a", 1) }
func BenchmarkTable5_w8a_ClientAided(b *testing.B)  { benchSecureML(b, "w8a", 1, secureml.ClientAided) }
func BenchmarkTable5_connect4_BlindFL(b *testing.B) { benchBlindFL(b, "connect-4", 8) }
func BenchmarkTable5_higgs_BlindFL(b *testing.B)    { benchBlindFL(b, "higgs", 1) }
func BenchmarkTable5_higgs_SecureML(b *testing.B)   { benchSecureML(b, "higgs", 1, secureml.HEGenerated) }
func BenchmarkTable5_higgs_ClientAided(b *testing.B) {
	benchSecureML(b, "higgs", 1, secureml.ClientAided)
}

// news20/avazu/industry: BlindFL's sparse path handles the full
// dimensionality; SecureML's HE mode is infeasible there (the paper reports
// >1800s/OOM) and is exercised at small dims above.
func BenchmarkTable5_news20_BlindFL(b *testing.B) { benchBlindFL(b, "news20", 4) }
func BenchmarkTable5_avazu_BlindFL(b *testing.B)  { benchBlindFL(b, "avazu-app", 1) }
func BenchmarkTable5_avazu_ClientAided(b *testing.B) {
	benchSecureML(b, "avazu-app", 1, secureml.ClientAided)
}
func BenchmarkTable5_industry_BlindFL(b *testing.B) { benchBlindFL(b, "industry", 1) }

// --- Table 6: fmnist dense MLP ---

func BenchmarkTable6Fmnist_BlindFL(b *testing.B) {
	skipInShort(b)
	spec := data.MustSpec("fmnist")
	spec.Feats = 196 // quarter resolution keeps dense HE cost benchable
	step := bench.NewBlindFLStepper(spec, benchBatch, 8)
	step()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

func BenchmarkTable6Fmnist_ClientAided(b *testing.B) {
	benchSecureML(b, "fmnist", 8, secureml.ClientAided)
}

// --- Table 7: time vs source-layer output dim (expect ∝ dim) ---

func BenchmarkTable7HiddenDim8(b *testing.B)  { benchBlindFL(b, "connect-4", 8) }
func BenchmarkTable7HiddenDim16(b *testing.B) { benchBlindFL(b, "connect-4", 16) }
func BenchmarkTable7HiddenDim32(b *testing.B) { benchBlindFL(b, "connect-4", 32) }

// --- Table 8: time vs #layers (expect ≈ flat; the top model is plaintext) ---

func benchTable8(b *testing.B, layers int) {
	skipInShort(b)
	spec := data.MustSpec("connect-4")
	spec.Train, spec.Test = 300, 100
	ds := data.Generate(spec, 22)
	h := model.DefaultHyper()
	h.Epochs = 1
	h.Batch = benchBatch
	hidden := []int{16}
	for l := 3; l < layers; l++ {
		hidden = append(hidden, 16)
	}
	h.Hidden = hidden
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skA, skB := protocol.TestKeys()
		pa, pb, err := protocol.Pipe(skA, skB, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := model.TrainFederated(model.MLP, ds, h, pa, pb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8Layers3(b *testing.B) { benchTable8(b, 3) }
func BenchmarkTable8Layers5(b *testing.B) { benchTable8(b, 5) }

// --- Figures: attack and lossless experiments, timed end to end ---

// BenchmarkFig9ActivationAttack times the split-learning forward-activation
// attack component of Fig. 9 (the federated curves run via blindfl-attack).
func BenchmarkFig9ActivationAttack(b *testing.B) {
	skipInShort(b)
	spec := data.MustSpec("w8a")
	spec.Train, spec.Test = 300, 150
	ds := data.Generate(spec, 41)
	for i := 0; i < b.N; i++ {
		cfg := splitlearn.Config{LR: 0.1, Momentum: 0.9, Batch: benchBatch, Epochs: 2, Seed: 3}
		res := splitlearn.TrainLinear(ds, cfg)
		if len(res.AttackMetric) == 0 {
			b.Fatal("no attack curve")
		}
	}
}

func BenchmarkFig10DerivativeAttack(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		ts := bench.Fig10(true)
		for _, t := range ts {
			t.Print(io.Discard)
		}
	}
}

func BenchmarkFig11ShareDivergence(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		for _, t := range bench.Fig11(true) {
			t.Print(io.Discard)
		}
	}
}

func BenchmarkFig12Lossless_a9a_LR(b *testing.B) {
	skipInShort(b)
	spec := data.MustSpec("a9a")
	spec.Train, spec.Test = 300, 100
	ds := data.Generate(spec, 120)
	h := model.DefaultHyper()
	h.Epochs = 1
	h.Batch = benchBatch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skA, skB := protocol.TestKeys()
		pa, pb, err := protocol.Pipe(skA, skB, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := model.TrainFederated(model.LR, ds, h, pa, pb); err != nil {
			b.Fatal(err)
		}
		model.TrainCollocated(model.LR, ds, h)
		model.TrainPartyB(model.LR, ds, h)
	}
}

func BenchmarkFig15Fmnist(b *testing.B) {
	skipInShort(b)
	spec := data.MustSpec("fmnist")
	spec.Feats = 196
	spec.Train, spec.Test = 128, 64
	ds := data.Generate(spec, 151)
	h := model.DefaultHyper()
	h.Epochs = 1
	h.Batch = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skA, skB := protocol.TestKeys()
		pa, pb, err := protocol.Pipe(skA, skB, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := model.TrainFederated(model.MLP, ds, h, pa, pb); err != nil {
			b.Fatal(err)
		}
	}
}
