#!/bin/sh
# Shard smoke lane (make shard-smoke): start two real blindfl-shard worker
# processes on free loopback ports, then run a 2-shard blindfl-train root
# against them — the multi-process wiring (SHARD_LISTEN announce, connect
# exchange, fingerprint check, deterministic schedule, teardown) exercised
# end to end on a toy job. Worker -timeout bounds a wedged run.
set -eu

tmp=$(mktemp -d)
trap 'kill $w1 $w2 2>/dev/null || true; rm -rf "$tmp"' EXIT

./bin/blindfl-shard -timeout 120s >"$tmp/w1.out" &
w1=$!
./bin/blindfl-shard -timeout 120s >"$tmp/w2.out" &
w2=$!

# addr polls a worker's stdout for its SHARD_LISTEN announcement.
addr() {
    for _ in $(seq 1 100); do
        a=$(sed -n 's/^SHARD_LISTEN //p' "$1" 2>/dev/null | head -n1)
        if [ -n "$a" ]; then
            echo "$a"
            return 0
        fi
        sleep 0.1
    done
    echo "shard-smoke: worker did not announce a listen address" >&2
    return 1
}

a1=$(addr "$tmp/w1.out")
a2=$(addr "$tmp/w2.out")

./bin/blindfl-train -dataset a9a -model lr -train 96 -test 48 -epochs 1 -batch 32 \
    -parties 2 -shards 2 -shard-connect "$a1,$a2"

wait "$w1"
wait "$w2"
echo "shard-smoke: OK"
