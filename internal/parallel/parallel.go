// Package parallel provides the tiny goroutine fan-out helper used by the
// encrypted-tensor operations, which are embarrassingly parallel across rows
// and dominated by big.Int exponentiation.
package parallel

import (
	"runtime"
	"sync"
)

// For runs f(i) for i in [0, n) across up to GOMAXPROCS goroutines and waits
// for completion. f must be safe to call concurrently for distinct i.
func For(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
