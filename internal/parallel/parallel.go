// Package parallel provides the goroutine fan-out helpers used by the
// encrypted-tensor operations, which are embarrassingly parallel across rows
// and dominated by big.Int exponentiation, plus a reusable background worker
// pool for precompute tasks such as Paillier blinding-factor generation.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// chunksPerWorker controls the granularity of the chunked scheduler: each
// worker expects to claim about this many chunks over the life of one For
// call. Larger values improve load balance when iteration costs vary (e.g.
// sparse rows); smaller values reduce scheduling overhead. 8 keeps the
// per-chunk atomic increment negligible against big.Int exponentiation while
// still absorbing a 'one slow row' imbalance.
const chunksPerWorker = 8

// For runs f(i) for i in [0, n) across up to GOMAXPROCS goroutines and waits
// for completion. f must be safe to call concurrently for distinct i.
// Scheduling is chunked: workers claim contiguous index ranges from an atomic
// cursor, so the per-index synchronization cost is amortized over the chunk.
func For(n int, f func(i int)) {
	ForChunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// ForChunks runs f(lo, hi) over a partition of [0, n) into contiguous chunks,
// in parallel: the scheduler underneath For, with the inner loop handed to
// the caller for workloads that amortize per-call setup (scratch buffers,
// big.Int allocations) across a whole range.
func ForChunks(n int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	chunk := n / (workers * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				hi := int(cursor.Add(int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				f(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Workers is a reusable pool of background goroutines draining a job queue.
// Unlike For, which spins up goroutines per call and waits, a Workers pool
// lives for the duration of a longer process (e.g. a training session) and
// accepts work incrementally — the substrate for the Paillier
// blinding-randomness precompute pool.
type Workers struct {
	mu     sync.Mutex
	jobs   chan func()
	closed bool
	wg     sync.WaitGroup
}

// NewWorkers starts n background workers (GOMAXPROCS if n <= 0) with a job
// queue of the given capacity (n if queue <= 0).
func NewWorkers(n, queue int) *Workers {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = n
	}
	w := &Workers{jobs: make(chan func(), queue)}
	w.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer w.wg.Done()
			for job := range w.jobs {
				job()
			}
		}()
	}
	return w
}

// Submit enqueues a job, blocking if the queue is full. It reports false if
// the pool has been closed (the job is dropped).
func (w *Workers) Submit(job func()) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.jobs <- job
	return true
}

// Close stops accepting jobs and waits for queued and in-flight jobs to
// finish. Close is idempotent.
func (w *Workers) Close() {
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		close(w.jobs)
	}
	w.mu.Unlock()
	w.wg.Wait()
}
