package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForVisitsEveryIndexOnce(t *testing.T) {
	f := func(n8 uint8) bool {
		n := int(n8)
		counts := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestForZero(t *testing.T) {
	called := false
	For(0, func(int) { called = true })
	if called {
		t.Fatal("f called for n=0")
	}
}

func TestForOne(t *testing.T) {
	var got int
	For(1, func(i int) { got = i + 100 })
	if got != 100 {
		t.Fatal("f not called for n=1")
	}
}

func TestForLarge(t *testing.T) {
	var sum int64
	For(10000, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 10000*9999/2 {
		t.Fatalf("sum = %d", sum)
	}
}
