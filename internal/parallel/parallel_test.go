package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForVisitsEveryIndexOnce(t *testing.T) {
	f := func(n8 uint8) bool {
		n := int(n8)
		counts := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestForZero(t *testing.T) {
	called := false
	For(0, func(int) { called = true })
	if called {
		t.Fatal("f called for n=0")
	}
}

func TestForNegative(t *testing.T) {
	called := false
	For(-3, func(int) { called = true })
	if called {
		t.Fatal("f called for n<0")
	}
}

func TestForOne(t *testing.T) {
	var got int
	For(1, func(i int) { got = i + 100 })
	if got != 100 {
		t.Fatal("f not called for n=1")
	}
}

func TestForFewerIndicesThanWorkers(t *testing.T) {
	// n smaller than GOMAXPROCS must still visit each index exactly once.
	n := 3
	if p := runtime.GOMAXPROCS(0); p <= n {
		n = p - 1
		if n <= 0 {
			t.Skip("single-proc environment")
		}
	}
	counts := make([]int32, n)
	For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForLarge(t *testing.T) {
	var sum int64
	For(10000, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 10000*9999/2 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestForChunksCoverDisjointRanges(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 10000} {
		counts := make([]int32, n)
		ForChunks(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d, %d) for n=%d", lo, hi, n)
				return
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestWorkersRunAllJobs(t *testing.T) {
	w := NewWorkers(4, 8)
	var sum atomic.Int64
	for i := 1; i <= 100; i++ {
		i := i
		if !w.Submit(func() { sum.Add(int64(i)) }) {
			t.Fatal("Submit refused before Close")
		}
	}
	w.Close()
	if got := sum.Load(); got != 100*101/2 {
		t.Fatalf("sum = %d", got)
	}
}

func TestWorkersSubmitAfterCloseIsRefused(t *testing.T) {
	w := NewWorkers(1, 1)
	w.Close()
	if w.Submit(func() { t.Error("job ran after Close") }) {
		t.Fatal("Submit accepted after Close")
	}
	w.Close() // idempotent
}

func TestWorkersDefaults(t *testing.T) {
	w := NewWorkers(0, 0) // GOMAXPROCS workers, default queue
	done := make(chan struct{})
	w.Submit(func() { close(done) })
	<-done
	w.Close()
}
