// Shard wire messages and the multi-accept listener for the sharded label
// party (PR 10). The label party's sessions partition across worker
// processes that follow a deterministic per-epoch schedule derived from the
// shared seed, so the only traffic between the root and a shard worker is
// the data plane below — per-batch partial activations down-merged in fixed
// order, one gradient broadcast back — plus a connect-time hello/ack pair
// carrying the schedule fingerprint. The message structs live here, not in
// protocol, so Checksum can hash them structurally and the Handshake
// envelope seal gives the shard links the same integrity guarantee the
// chunk streams have.
package transport

import (
	"encoding/gob"
	"net"

	"blindfl/internal/hetensor"
	"blindfl/internal/tensor"
)

func init() {
	gob.Register(&ShardHello{})
	gob.Register(&ShardAck{})
	gob.Register(&SessionHello{})
	gob.Register(&ShardParts{})
	gob.Register(&ShardGrad{})
	gob.Register(&ShardShare{})
	gob.Register(&ShardLayers{})
	gob.Register(&ShardBlob{})
}

// ShardHello opens a root→worker shard link: which shard of how many the
// worker is, how many sessions the whole group has, and the schedule
// fingerprint — a hash over everything that determines the deterministic
// schedule (seed, engine options, model shape, epoch plan). A worker whose
// recomputed fingerprint disagrees refuses the connection typed, so
// mismatched seeds or options fail at connect, not as silent divergence.
type ShardHello struct {
	Shard       int // this worker's shard index
	Shards      int // total shard count
	Sessions    int // global session count (k feature parties)
	Fingerprint uint64
}

// ShardAck is the worker's reply: its shard index echoed and the fingerprint
// it will run under (echoed from the hello after local validation).
type ShardAck struct {
	Shard       int
	Fingerprint uint64
}

// SessionHello opens a feature-party→worker session conn: the *global*
// session index (so the worker can place it in its slice and derive the
// session's streams) and the same schedule fingerprint.
type SessionHello struct {
	Session     int
	Fingerprint uint64
}

// ShardParts carries one mini-batch's per-session forward partials from a
// worker to the root, in shard-local session order. Seq is the per-link
// data-plane ordinal; both ends count in lockstep, so a desynchronized
// schedule is a typed failure, not a silently mis-merged batch.
type ShardParts struct {
	Seq uint64
	Zs  []*tensor.Dense
}

// ShardGrad is the root's gradient broadcast for one mini-batch.
type ShardGrad struct {
	Seq uint64
	G   *tensor.Dense
}

// ShardShare carries a worker's serve-path share partial for one eval batch:
// the exact-integer sum of its sessions' shares, pre-summed worker-side
// (BigMatrix addition is associative, unlike the float training partials).
type ShardShare struct {
	Seq uint64
	S   *hetensor.BigMatrix
}

// ShardLayers carries a worker's serialized per-session layer halves up to
// the root at a checkpoint boundary (or, with Epoch < 0, for the final serve
// checkpoint), in shard-local session order.
type ShardLayers struct {
	Epoch int
	Blobs [][]byte
}

// ShardBlob is an opaque, checksummed control payload: Kind names the
// protocol step ("setup"), Data is a gob document the model layer owns.
// Wrapping the bytes here keeps Checksum structural over the full payload —
// an unknown struct would hash as its type tag only.
type ShardBlob struct {
	Kind string
	Data []byte
}

// Listener accepts any number of gob conns on a TCP address — the shard
// worker's front door, where one control link and a slice of session conns
// arrive as separate connections (Listen, by contrast, is the two-party
// helper: exactly one conn, then the listener closes).
type Listener struct {
	l net.Listener
}

// NewListener opens a TCP listener on addr; ":0" picks a free port, which
// Addr reports.
func NewListener(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address (host:port).
func (ln *Listener) Addr() string { return ln.l.Addr().String() }

// Accept waits for the next connection and wraps it as a gob conn.
func (ln *Listener) Accept() (Conn, error) {
	c, err := ln.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewGobConn(c), nil
}

// Close stops accepting. Conns already accepted are unaffected.
func (ln *Listener) Close() error { return ln.l.Close() }
