// Network simulation: an in-process pair with a propagation-delay and
// serialization-bandwidth model. SimPair lets single-machine benchmarks
// measure what chunk streaming buys on a real link — while a message is "on
// the wire" the receiver sleeps (releasing the CPU), so compute genuinely
// overlaps communication even on one core. The paper's two-party deployment
// is cross-datacenter; this is the cheapest honest stand-in.
package transport

import (
	"math/big"
	"sync"
	"time"

	"blindfl/internal/hetensor"
	"blindfl/internal/paillier"
	"blindfl/internal/tensor"
)

// simMsg is a message annotated with the time it finishes arriving.
type simMsg struct {
	v         any
	deliverAt time.Time
}

// simConn is one endpoint of a simulated link. Sends are asynchronous (as on
// the gob transport, whose writer goroutine drains a queue): the sender only
// pays the serialization-bandwidth cost into the delivery timestamp, and the
// receiver blocks until that timestamp passes.
type simConn struct {
	in    <-chan simMsg
	out   chan<- simMsg
	state *pairState

	latency time.Duration
	bps     float64

	mu       sync.Mutex
	msgs     int64
	bytes    int64
	lineFree time.Time // when this direction's line is free to start sending
}

// SimPair returns two in-process endpoints joined by a full-duplex link with
// the given one-way propagation latency and per-direction bandwidth in
// bytes/second (0 = infinite). Message sizes are estimated with WireSize.
func SimPair(buffer int, latency time.Duration, bytesPerSec float64) (Conn, Conn) {
	ab := make(chan simMsg, buffer)
	ba := make(chan simMsg, buffer)
	st := &pairState{closed: make(chan struct{})}
	a := &simConn{in: ba, out: ab, state: st, latency: latency, bps: bytesPerSec}
	b := &simConn{in: ab, out: ba, state: st, latency: latency, bps: bytesPerSec}
	return a, b
}

func (c *simConn) Send(v any) error {
	select {
	case <-c.state.closed:
		return ErrClosed
	default:
	}
	size := WireSize(v)
	c.mu.Lock()
	now := time.Now()
	start := c.lineFree
	if start.Before(now) {
		start = now
	}
	transfer := time.Duration(0)
	if c.bps > 0 {
		transfer = time.Duration(float64(size) / c.bps * float64(time.Second))
	}
	c.lineFree = start.Add(transfer) // bandwidth serializes this direction
	deliverAt := c.lineFree.Add(c.latency)
	c.msgs++
	c.bytes += int64(size)
	c.mu.Unlock()

	select {
	case <-c.state.closed:
		return ErrClosed
	case c.out <- simMsg{v: v, deliverAt: deliverAt}:
		return nil
	}
}

func (c *simConn) Recv() (any, error) {
	var m simMsg
	select {
	case m = <-c.in:
	default:
		select {
		case <-c.state.closed:
			return nil, ErrClosed
		case m = <-c.in:
		}
	}
	if wait := time.Until(m.deliverAt); wait > 0 {
		time.Sleep(wait) // the message is still on the wire
	}
	return m.v, nil
}

func (c *simConn) Stats() (int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.msgs, c.bytes
}

func (c *simConn) Close() error {
	c.state.close()
	return nil
}

// WireSize estimates the gob wire footprint of a protocol message in bytes:
// payload sizes plus a small per-message framing allowance. It deliberately
// avoids running a real encoder — the estimate feeds the bandwidth model and
// the in-process byte counters, and must stay cheap next to big.Int math.
func WireSize(v any) int {
	const frame = 32 // envelope + type tag + field headers, roughly
	switch m := v.(type) {
	case nil:
		return frame
	case *tensor.Dense:
		return frame + 16 + 8*len(m.Data)
	case *tensor.CSR:
		return frame + 16 + 8*(len(m.RowPtr)+len(m.ColIdx)+len(m.Val))
	case *tensor.IntMatrix:
		return frame + 16 + 8*len(m.Data)
	case []int:
		return frame + 8*len(m)
	case []uint64:
		return frame + 8*len(m)
	case *paillier.PublicKey:
		return frame + bigSize(m.N) + bigSize(m.N2)
	case *paillier.Ciphertext:
		return frame + cipherSize(m)
	case *hetensor.CipherMatrix:
		n := frame + 32 + WireSize(m.PK)
		for _, c := range m.C {
			n += cipherSize(c)
		}
		return n
	case *hetensor.PackedMatrix:
		n := frame + 56 + WireSize(m.PK)
		for _, c := range m.C {
			n += cipherSize(c)
		}
		return n
	case *StreamHeader:
		return frame + 40
	case *StreamChunk:
		return frame + 24 + WireSize(m.V)
	case *StreamEnd:
		return frame + 8
	case *StreamAck:
		return frame + 16 + 8*len(m.Bad)
	case *Heartbeat:
		return frame
	case *Handshake:
		return frame + 8 + WireSize(m.V)
	default:
		return frame + 64 // unknown scalar-ish message
	}
}

func cipherSize(c *paillier.Ciphertext) int {
	if c == nil {
		return 8
	}
	return 8 + bigSize(c.C)
}

func bigSize(x *big.Int) int {
	if x == nil {
		return 8
	}
	return 8 + (x.BitLen()+7)/8
}
