// StreamConn: the session layer the protocol peers wrap around their
// connection. It is a transparent Conn for ordinary traffic, plus the state
// the stream NACK/resend recovery needs on both sides of a transfer:
//
//   - Sender side: SendStream registers each outgoing stream's produced chunk
//     payloads; when the receiver's StreamAck arrives (consumed transparently
//     by any later receive on this conn), NACKed chunks are retransmitted
//     once from the retained pristine copies. Payload references are dropped
//     as soon as the clean ack arrives.
//
//   - Receiver side: while RecvStream waits for a retransmission, unrelated
//     messages that raced ahead of it are buffered here (pushback) and
//     delivered to later receives in arrival order.
//
// Acks are fire-and-forget in the good path — no extra round trip — and both
// parties of a protocol session must wrap (protocol.NewPeer does), since a
// bare receiver would surface the peer's acks as unexpected messages.
//
// A failed retransmission poisons the conn: every later Send/Recv returns the
// sticky ErrCorrupt, so a corrupted session cannot limp onward and emit
// garbage.
package transport

import "fmt"

// StreamConn wraps a Conn with the stream-recovery session state. All methods
// must be called from the single goroutine that owns the protocol session
// (the same discipline Conn itself has for ordered use); Close and Stats
// remain safe to call concurrently, as on the underlying Conn.
type StreamConn struct {
	inner Conn
	inbox []any                 // buffered messages that raced past a recovery wait
	out   map[uint64]*outStream // outgoing streams awaiting their ack
	err   error                 // sticky integrity failure
}

// outStream retains one outgoing stream's chunk payloads until it is acked.
type outStream struct {
	chunks []any
	resent bool
}

// NewStreamConn wraps c (idempotently) with stream-recovery state.
func NewStreamConn(c Conn) *StreamConn {
	if sc, ok := c.(*StreamConn); ok {
		return sc
	}
	return &StreamConn{inner: c, out: make(map[uint64]*outStream)}
}

// Inner returns the wrapped connection (e.g. for fault-injection inspection).
func (s *StreamConn) Inner() Conn { return s.inner }

func (s *StreamConn) Send(v any) error {
	if s.err != nil {
		return s.err
	}
	return s.inner.Send(v)
}

// Recv returns the next application message: buffered pushbacks first, then
// wire traffic with stream acks consumed (and acted on) transparently.
func (s *StreamConn) Recv() (any, error) {
	if s.err != nil {
		return nil, s.err
	}
	if len(s.inbox) > 0 {
		v := s.inbox[0]
		s.inbox = s.inbox[1:]
		return v, nil
	}
	return s.recvWire()
}

// recvWire reads from the wire, bypassing the inbox (the recovery wait in
// RecvStream uses it so pushed-back messages are not re-consumed), handling
// stream acks in-line.
func (s *StreamConn) recvWire() (any, error) {
	for {
		v, err := s.inner.Recv()
		if err != nil {
			return nil, err
		}
		if ack, ok := v.(*StreamAck); ok {
			if err := s.handleAck(ack); err != nil {
				return nil, err
			}
			continue
		}
		return v, nil
	}
}

// pushback buffers a message that arrived during a recovery wait for a later
// Recv. Arrival order is preserved.
func (s *StreamConn) pushback(v any) {
	s.inbox = append(s.inbox, v)
}

// trackOutgoing retains an outgoing stream's chunk payloads until its ack.
func (s *StreamConn) trackOutgoing(seq uint64, chunks []any) {
	s.out[seq] = &outStream{chunks: chunks}
}

// handleAck processes a receiver's stream ack: clean acks release the
// retained payloads; NACKs trigger exactly one retransmission of the named
// chunks; a NACK after the retransmission poisons the conn with ErrCorrupt.
func (s *StreamConn) handleAck(ack *StreamAck) error {
	if ack.Sum != ack.sum() {
		// A corrupted ack cannot be attributed to a stream: acting on it
		// could release or retransmit the wrong one, so the conn poisons.
		s.err = fmt.Errorf("%w: stream ack checksum mismatch (seq %d)", ErrCorrupt, ack.Seq)
		return s.err
	}
	o := s.out[ack.Seq]
	if o == nil {
		return nil // already released (or a stream this side never tracked)
	}
	if len(ack.Bad) == 0 {
		delete(s.out, ack.Seq)
		return nil
	}
	if o.resent {
		delete(s.out, ack.Seq)
		s.err = fmt.Errorf("%w: stream %d chunks %v rejected after retransmission", ErrCorrupt, ack.Seq, ack.Bad)
		return s.err
	}
	o.resent = true
	for _, idx := range ack.Bad {
		if idx < 0 || idx >= len(o.chunks) {
			delete(s.out, ack.Seq)
			s.err = fmt.Errorf("%w: stream %d ack names chunk %d of %d", ErrCorrupt, ack.Seq, idx, len(o.chunks))
			return s.err
		}
		v := o.chunks[idx]
		if err := s.inner.Send(&StreamChunk{Seq: ack.Seq, Index: idx, V: v, Sum: Checksum(v)}); err != nil {
			return err
		}
	}
	return s.inner.Send(&StreamEnd{Seq: ack.Seq})
}

func (s *StreamConn) Stats() (int64, int64) { return s.inner.Stats() }

func (s *StreamConn) Close() error { return s.inner.Close() }
