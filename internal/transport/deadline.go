// Deadlines and liveness: DeadlineConn wraps a Conn endpoint with bounded
// Send/Recv waits and an idle-stream heartbeat, turning a hung-but-open peer
// into a typed failure instead of an eternal block.
//
// The receive deadline is a *liveness* bound, not a latency bound: any
// inbound traffic — including Heartbeat probes the peer emits while it
// computes — resets the clock, so a slow peer that is demonstrably alive
// never times out, while a wedged one (process stopped, half-open socket,
// deadlocked goroutine) becomes ErrTimeout within one deadline of going
// silent. A deadline violation is treated as fail-stop: the conn is closed
// and poisoned, so a session that lost its liveness guarantee cannot limp
// onward.
//
// Heartbeats are filtered out by the receiving DeadlineConn before the
// protocol layer sees them, so the probe needs the *receiving* endpoint to be
// wrapped: enable a heartbeat only when the peer wraps its end too (the
// protocol pipes and the serve CLI wrap both).
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

func init() {
	gob.Register(&Heartbeat{})
}

// ErrTimeout is the typed error for a deadline violation: a Recv that saw no
// traffic (not even a heartbeat) for the receive deadline, or a Send that
// could not hand its message to the transport within the send deadline.
// Callers match it with errors.Is.
var ErrTimeout = errors.New("transport: deadline exceeded")

// Heartbeat is the liveness probe an idle DeadlineConn emits so its peer can
// distinguish "alive but quiet" from "hung". It carries no payload and never
// reaches the protocol layer.
type Heartbeat struct{}

// DeadlineConn wraps a Conn with send/receive deadlines and an optional
// heartbeat. Wrap it *under* the protocol's StreamConn (NewPeer does this
// automatically for any Conn it is given), so stream recovery still sees
// ordinary traffic while heartbeats and timeouts are handled here.
type DeadlineConn struct {
	inner       Conn
	sendTimeout time.Duration
	recvTimeout time.Duration

	in   chan deadlineItem
	done chan struct{}
	once sync.Once

	lastSend atomic.Int64 // unix nanos of the most recent outgoing message

	mu  sync.Mutex
	err error // sticky failure
}

type deadlineItem struct {
	v   any
	err error
}

// NewDeadlineConn wraps inner with a send deadline, a receive (liveness)
// deadline and a heartbeat period; any of the three may be 0 to disable it.
// The heartbeat goroutine emits a probe whenever this endpoint has sent
// nothing for a full period, and requires the peer endpoint to be a
// DeadlineConn too (it filters the probes out).
func NewDeadlineConn(inner Conn, sendTimeout, recvTimeout, heartbeat time.Duration) *DeadlineConn {
	c := &DeadlineConn{
		inner:       inner,
		sendTimeout: sendTimeout,
		recvTimeout: recvTimeout,
		in:          make(chan deadlineItem, 16),
		done:        make(chan struct{}),
	}
	c.lastSend.Store(time.Now().UnixNano())
	go c.pump()
	if heartbeat > 0 {
		go c.heartbeatLoop(heartbeat)
	}
	return c
}

// pump moves inbound traffic from the inner conn into the deadline channel so
// Recv can race it against the timer. It is the only writer of c.in.
func (c *DeadlineConn) pump() {
	defer close(c.in)
	for {
		v, err := c.inner.Recv()
		select {
		case c.in <- deadlineItem{v: v, err: err}:
		case <-c.done:
			return
		}
		if err != nil {
			return
		}
	}
}

// heartbeatLoop emits a liveness probe whenever the endpoint has been
// send-idle for a full period.
func (c *DeadlineConn) heartbeatLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			if time.Since(time.Unix(0, c.lastSend.Load())) < every {
				continue // ordinary traffic is its own liveness signal
			}
			c.lastSend.Store(time.Now().UnixNano())
			if c.inner.Send(&Heartbeat{}) != nil {
				return
			}
		}
	}
}

// fail records the first failure, closes the conn and stops the goroutines.
func (c *DeadlineConn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.once.Do(func() { close(c.done) })
	c.inner.Close()
}

func (c *DeadlineConn) loadErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *DeadlineConn) Send(v any) error {
	if err := c.loadErr(); err != nil {
		return err
	}
	c.lastSend.Store(time.Now().UnixNano())
	if c.sendTimeout <= 0 {
		return c.inner.Send(v)
	}
	done := make(chan error, 1)
	go func() { done <- c.inner.Send(v) }()
	t := time.NewTimer(c.sendTimeout)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		// Closing the inner conn unblocks the stuck send goroutine.
		err := fmt.Errorf("transport: send blocked for %v: %w", c.sendTimeout, ErrTimeout)
		c.fail(err)
		return err
	}
}

func (c *DeadlineConn) Recv() (any, error) {
	if err := c.loadErr(); err != nil {
		return nil, err
	}
	var timer *time.Timer
	var timeout <-chan time.Time
	if c.recvTimeout > 0 {
		timer = time.NewTimer(c.recvTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	for {
		select {
		case it, ok := <-c.in:
			if !ok {
				if err := c.loadErr(); err != nil {
					return nil, err
				}
				return nil, ErrClosed
			}
			if it.err != nil {
				return nil, it.err
			}
			if _, hb := it.v.(*Heartbeat); hb {
				if timer != nil {
					if !timer.Stop() {
						<-timer.C
					}
					timer.Reset(c.recvTimeout)
				}
				continue
			}
			return it.v, nil
		case <-timeout:
			err := fmt.Errorf("transport: no traffic for %v: %w", c.recvTimeout, ErrTimeout)
			c.fail(err)
			return nil, err
		}
	}
}

func (c *DeadlineConn) Stats() (int64, int64) { return c.inner.Stats() }

func (c *DeadlineConn) Close() error {
	c.fail(ErrClosed)
	return nil
}
