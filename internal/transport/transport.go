// Package transport moves protocol messages between the two parties. A Conn
// is an ordered, reliable, bidirectional message pipe. Two implementations
// are provided: an in-process channel pair (Pair) used by tests, benchmarks
// and single-binary simulations, and a TCP transport with gob encoding
// (Listen/Dial) for genuinely distributed deployments.
//
// All message types that cross a Conn must be registered with gob; the
// package registers the tensor and ciphertext types used by the BlindFL
// protocols in init.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"blindfl/internal/hetensor"
	"blindfl/internal/paillier"
	"blindfl/internal/tensor"
)

func init() {
	gob.Register(&tensor.Dense{})
	gob.Register(&tensor.CSR{})
	gob.Register(&tensor.IntMatrix{})
	gob.Register(&hetensor.CipherMatrix{})
	gob.Register(&hetensor.PackedMatrix{})
	gob.Register(&hetensor.BigMatrix{})
	gob.Register(&paillier.PublicKey{})
	gob.Register(&paillier.Ciphertext{})
	gob.Register([]int(nil))
	gob.Register([]uint64(nil))
	gob.Register([][]uint64(nil))
}

// Conn is an ordered message pipe between exactly two parties.
type Conn interface {
	// Send transmits one message. The sender must not mutate v afterwards.
	Send(v any) error
	// Recv blocks for the next message.
	Recv() (any, error)
	// Stats returns cumulative message and byte counters. The in-process
	// transport estimates bytes via gob sizing only when counting is enabled.
	Stats() (msgs, bytes int64)
	Close() error
}

// pairState is the shared lifecycle of both endpoints of a Pair: one closed
// channel AND one close-once. Sharing only the channel but not the once (as
// an earlier revision did) makes closing both ends panic with "close of
// closed channel".
type pairState struct {
	closed chan struct{}
	once   sync.Once
}

func (s *pairState) close() { s.once.Do(func() { close(s.closed) }) }

// chanConn is one endpoint of an in-process pair.
type chanConn struct {
	in    <-chan any
	out   chan<- any
	state *pairState

	mu    sync.Mutex
	msgs  int64
	bytes int64
	sizer *gob.Encoder // non-nil when byte counting is enabled
	size  *countWriter
}

// Pair returns two connected in-process endpoints with the given channel
// capacity. Messages are passed by reference: the protocols never mutate a
// value after sending it, so no copy is needed. Byte counters stay at zero;
// use PairCounted when the gob-sized estimates matter.
func Pair(buffer int) (Conn, Conn) {
	ab := make(chan any, buffer)
	ba := make(chan any, buffer)
	st := &pairState{closed: make(chan struct{})}
	a := &chanConn{in: ba, out: ab, state: st}
	b := &chanConn{in: ab, out: ba, state: st}
	return a, b
}

// PairCounted is Pair with byte counting enabled: each Send additionally runs
// the message through a per-endpoint gob encoder to estimate its wire size,
// so Stats reports the bytes a gob transport would have moved. The sizing
// encoder is persistent per endpoint, so type descriptors are charged once —
// exactly as on a real gob stream. Sizing costs one extra encode per message;
// benchmarks that only need message counts should use Pair.
func PairCounted(buffer int) (Conn, Conn) {
	ca, cb := Pair(buffer)
	for _, c := range []*chanConn{ca.(*chanConn), cb.(*chanConn)} {
		c.size = &countWriter{w: io.Discard}
		c.sizer = gob.NewEncoder(c.size)
	}
	return ca, cb
}

// ErrClosed is returned by operations on a closed Conn.
var ErrClosed = errors.New("transport: connection closed")

func (c *chanConn) Send(v any) error {
	// Check for closure first so a Send after Close deterministically fails
	// even when the buffer has space.
	select {
	case <-c.state.closed:
		return ErrClosed
	default:
	}
	select {
	case <-c.state.closed:
		return ErrClosed
	case c.out <- v:
		c.mu.Lock()
		c.msgs++
		if c.sizer != nil {
			before := c.size.n.Load()
			if err := c.sizer.Encode(envelope{V: v}); err == nil {
				c.bytes += c.size.n.Load() - before
			}
		}
		c.mu.Unlock()
		return nil
	}
}

func (c *chanConn) Recv() (any, error) {
	// Drain already-delivered messages before honouring closure.
	select {
	case v := <-c.in:
		return v, nil
	default:
	}
	select {
	case <-c.state.closed:
		return nil, ErrClosed
	case v := <-c.in:
		return v, nil
	}
}

func (c *chanConn) Stats() (int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.msgs, c.bytes
}

func (c *chanConn) Close() error {
	c.state.close()
	return nil
}

// gobConn is a TCP endpoint with gob framing. Sends are asynchronous: a
// single writer goroutine drains a buffered queue, so two peers that both
// send large ciphertext matrices before receiving cannot deadlock on full
// kernel socket buffers — the send ordering the federated protocols use
// (compute, send, then receive) stays safe over real networks.
type gobConn struct {
	c   net.Conn
	cw  *countWriter
	enc *gob.Encoder
	dec *gob.Decoder

	sendQ   chan envelope
	done    chan struct{} // closed by Close: stop accepting sends, start draining
	drained chan struct{} // closed by writeLoop once the queue is flushed
	recvMu  sync.Mutex
	mu      sync.Mutex
	msgs    int64
	err     error
	once    sync.Once
}

// envelope wraps messages so any registered concrete type can cross the wire.
type envelope struct{ V any }

// NewGobConn wraps an established net.Conn (or any io.ReadWriteCloser
// satisfying net.Conn) as a transport Conn.
func NewGobConn(c net.Conn) Conn {
	cw := &countWriter{w: c}
	g := &gobConn{
		c: c, cw: cw,
		enc:     gob.NewEncoder(cw),
		dec:     gob.NewDecoder(c),
		sendQ:   make(chan envelope, 256),
		done:    make(chan struct{}),
		drained: make(chan struct{}),
	}
	go g.writeLoop()
	return g
}

// flushTimeout bounds how long Close waits for queued sends to reach the
// socket before tearing it down anyway (a wedged peer must not make Close
// hang forever).
const flushTimeout = 5 * time.Second

func (g *gobConn) setErr(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.mu.Unlock()
}

func (g *gobConn) loadErr() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

func (g *gobConn) writeLoop() {
	defer close(g.drained)
	for {
		select {
		case e := <-g.sendQ:
			if err := g.enc.Encode(e); err != nil {
				g.setErr(fmt.Errorf("transport: send: %w", err))
				return
			}
		case <-g.done:
			// Close was requested: flush whatever Send already accepted
			// (those calls returned nil, so silently dropping them would
			// break the sender's view of the protocol), then exit.
			for {
				select {
				case e := <-g.sendQ:
					if err := g.enc.Encode(e); err != nil {
						g.setErr(fmt.Errorf("transport: send: %w", err))
						return
					}
				default:
					return
				}
			}
		}
	}
}

type countWriter struct {
	w io.Writer
	n atomic.Int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

func (g *gobConn) Send(v any) error {
	// A writeLoop failure means messages Send already accepted never reached
	// the wire; surface it on every subsequent call instead of queueing into
	// the void.
	if err := g.loadErr(); err != nil {
		return err
	}
	// Check for closure first so a Send after Close deterministically fails
	// even when the queue has space (the writer is gone; enqueueing would
	// silently drop the message).
	select {
	case <-g.done:
		return ErrClosed
	default:
	}
	select {
	case <-g.done:
		return ErrClosed
	case g.sendQ <- envelope{V: v}:
	}
	g.mu.Lock()
	g.msgs++
	g.mu.Unlock()
	return nil
}

func (g *gobConn) Recv() (any, error) {
	g.recvMu.Lock()
	defer g.recvMu.Unlock()
	var e envelope
	if err := g.dec.Decode(&e); err != nil {
		// A pending writeLoop error is the root cause (the socket broke on
		// the way out); report it rather than the secondary decode failure.
		if werr := g.loadErr(); werr != nil {
			return nil, werr
		}
		select {
		case <-g.done:
			return nil, ErrClosed
		default:
		}
		return nil, fmt.Errorf("transport: recv: %w", err)
	}
	return e.V, nil
}

func (g *gobConn) Stats() (int64, int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.msgs, g.cw.n.Load()
}

// Close flushes the send queue (bounded by flushTimeout) and closes the
// socket. Sends sequenced before Close have already returned nil, so they
// are written out rather than silently dropped; sends racing with Close may
// be dropped.
func (g *gobConn) Close() error {
	g.once.Do(func() { close(g.done) })
	select {
	case <-g.drained:
	case <-time.After(flushTimeout):
	}
	return g.c.Close()
}

// Listen accepts exactly one connection on addr and returns it as a Conn.
func Listen(addr string) (Conn, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	c, err := l.Accept()
	if err != nil {
		return nil, err
	}
	return NewGobConn(c), nil
}

// Dial connects to a listening peer at addr.
func Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewGobConn(c), nil
}
