// Package transport moves protocol messages between the two parties. A Conn
// is an ordered, reliable, bidirectional message pipe. Two implementations
// are provided: an in-process channel pair (Pair) used by tests, benchmarks
// and single-binary simulations, and a TCP transport with gob encoding
// (Listen/Dial) for genuinely distributed deployments.
//
// All message types that cross a Conn must be registered with gob; the
// package registers the tensor and ciphertext types used by the BlindFL
// protocols in init.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"blindfl/internal/hetensor"
	"blindfl/internal/paillier"
	"blindfl/internal/tensor"
)

func init() {
	gob.Register(&tensor.Dense{})
	gob.Register(&tensor.CSR{})
	gob.Register(&tensor.IntMatrix{})
	gob.Register(&hetensor.CipherMatrix{})
	gob.Register(&hetensor.PackedMatrix{})
	gob.Register(&paillier.PublicKey{})
	gob.Register(&paillier.Ciphertext{})
	gob.Register([]int(nil))
	gob.Register([]uint64(nil))
	gob.Register([][]uint64(nil))
}

// Conn is an ordered message pipe between exactly two parties.
type Conn interface {
	// Send transmits one message. The sender must not mutate v afterwards.
	Send(v any) error
	// Recv blocks for the next message.
	Recv() (any, error)
	// Stats returns cumulative message and byte counters. The in-process
	// transport estimates bytes via gob sizing only when counting is enabled.
	Stats() (msgs, bytes int64)
	Close() error
}

// chanConn is one endpoint of an in-process pair.
type chanConn struct {
	in     <-chan any
	out    chan<- any
	closed chan struct{}
	once   sync.Once

	mu    sync.Mutex
	msgs  int64
	bytes int64
}

// Pair returns two connected in-process endpoints with the given channel
// capacity. Messages are passed by reference: the protocols never mutate a
// value after sending it, so no copy is needed.
func Pair(buffer int) (Conn, Conn) {
	ab := make(chan any, buffer)
	ba := make(chan any, buffer)
	a := &chanConn{in: ba, out: ab, closed: make(chan struct{})}
	b := &chanConn{in: ab, out: ba, closed: a.closed}
	return a, b
}

// ErrClosed is returned by operations on a closed Conn.
var ErrClosed = errors.New("transport: connection closed")

func (c *chanConn) Send(v any) error {
	// Check for closure first so a Send after Close deterministically fails
	// even when the buffer has space.
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	select {
	case <-c.closed:
		return ErrClosed
	case c.out <- v:
		c.mu.Lock()
		c.msgs++
		c.mu.Unlock()
		return nil
	}
}

func (c *chanConn) Recv() (any, error) {
	// Drain already-delivered messages before honouring closure.
	select {
	case v := <-c.in:
		return v, nil
	default:
	}
	select {
	case <-c.closed:
		return nil, ErrClosed
	case v := <-c.in:
		return v, nil
	}
}

func (c *chanConn) Stats() (int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.msgs, c.bytes
}

func (c *chanConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// gobConn is a TCP endpoint with gob framing. Sends are asynchronous: a
// single writer goroutine drains a buffered queue, so two peers that both
// send large ciphertext matrices before receiving cannot deadlock on full
// kernel socket buffers — the send ordering the federated protocols use
// (compute, send, then receive) stays safe over real networks.
type gobConn struct {
	c   net.Conn
	cw  *countWriter
	enc *gob.Encoder
	dec *gob.Decoder

	sendQ  chan envelope
	done   chan struct{}
	recvMu sync.Mutex
	mu     sync.Mutex
	msgs   int64
	err    error
	once   sync.Once
}

// envelope wraps messages so any registered concrete type can cross the wire.
type envelope struct{ V any }

// NewGobConn wraps an established net.Conn (or any io.ReadWriteCloser
// satisfying net.Conn) as a transport Conn.
func NewGobConn(c net.Conn) Conn {
	cw := &countWriter{w: c}
	g := &gobConn{
		c: c, cw: cw,
		enc:   gob.NewEncoder(cw),
		dec:   gob.NewDecoder(c),
		sendQ: make(chan envelope, 256),
		done:  make(chan struct{}),
	}
	go g.writeLoop()
	return g
}

func (g *gobConn) writeLoop() {
	for {
		select {
		case <-g.done:
			return
		case e := <-g.sendQ:
			if err := g.enc.Encode(e); err != nil {
				g.mu.Lock()
				if g.err == nil {
					g.err = fmt.Errorf("transport: send: %w", err)
				}
				g.mu.Unlock()
				return
			}
		}
	}
}

type countWriter struct {
	w io.Writer
	n atomic.Int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

func (g *gobConn) Send(v any) error {
	g.mu.Lock()
	err := g.err
	g.mu.Unlock()
	if err != nil {
		return err
	}
	select {
	case <-g.done:
		return ErrClosed
	case g.sendQ <- envelope{V: v}:
	}
	g.mu.Lock()
	g.msgs++
	g.mu.Unlock()
	return nil
}

func (g *gobConn) Recv() (any, error) {
	g.recvMu.Lock()
	defer g.recvMu.Unlock()
	var e envelope
	if err := g.dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("transport: recv: %w", err)
	}
	return e.V, nil
}

func (g *gobConn) Stats() (int64, int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.msgs, g.cw.n.Load()
}

func (g *gobConn) Close() error {
	g.once.Do(func() { close(g.done) })
	return g.c.Close()
}

// Listen accepts exactly one connection on addr and returns it as a Conn.
func Listen(addr string) (Conn, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	c, err := l.Accept()
	if err != nil {
		return nil, err
	}
	return NewGobConn(c), nil
}

// Dial connects to a listening peer at addr.
func Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewGobConn(c), nil
}
