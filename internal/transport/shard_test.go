package transport

import (
	"errors"
	"testing"

	"blindfl/internal/tensor"
)

// TestListenerMultiAccept pins the property the shard worker depends on: one
// Listener accepts many conns (the control link plus one per owned session),
// unlike the one-shot Listen.
func TestListenerMultiAccept(t *testing.T) {
	ln, err := NewListener("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr()
	if addr == "" {
		t.Fatal("Listener has no bound address")
	}
	for i := 0; i < 3; i++ {
		dialed := make(chan Conn, 1)
		errs := make(chan error, 1)
		go func() {
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			errs <- nil
			dialed <- c
		}()
		srv, err := ln.Accept()
		if err != nil {
			t.Fatalf("accept %d: %v", i, err)
		}
		if err := <-errs; err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		cli := <-dialed
		want := 100 + i
		sendErr := make(chan error, 1)
		go func() { sendErr <- cli.Send(want) }()
		got, err := srv.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if err := <-sendErr; err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("conn %d carried %v, want %d", i, got, want)
		}
		cli.Close()
		srv.Close()
	}
}

// TestListenerCloseUnblocksAccept: closing the listener makes a pending
// Accept return an error instead of hanging the worker forever.
func TestListenerCloseUnblocksAccept(t *testing.T) {
	ln, err := NewListener("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		errs <- err
	}()
	ln.Close()
	if err := <-errs; err == nil {
		t.Fatal("Accept returned nil after Close")
	}
}

// TestShardMessageChecksums seals each shard-plane message type in the
// structural-checksum envelope and verifies (a) the round trip passes and
// (b) a post-seal field mutation fails typed ErrCorrupt — the shard links
// send every message this way.
func TestShardMessageChecksums(t *testing.T) {
	z := tensor.NewDense(2, 3)
	z.Data[0] = 1.5
	msgs := []struct {
		name   string
		v      any
		mutate func()
	}{
		{"hello", &ShardHello{Shard: 1, Shards: 2, Sessions: 4, Fingerprint: 7}, nil},
		{"ack", &ShardAck{Shard: 1, Fingerprint: 7}, nil},
		{"sessionhello", &SessionHello{Session: 3, Fingerprint: 7}, nil},
		{"parts", &ShardParts{Seq: 9, Zs: []*tensor.Dense{z, nil}}, nil},
		{"grad", &ShardGrad{Seq: 9, G: z}, nil},
		{"layers", &ShardLayers{Epoch: 2, Blobs: [][]byte{{1, 2}, {3}}}, nil},
		{"blob", &ShardBlob{Kind: "setup", Data: []byte{4, 5, 6}}, nil},
	}
	for _, m := range msgs {
		t.Run(m.name, func(t *testing.T) {
			hs := NewHandshake(m.v)
			if err := hs.Verify(); err != nil {
				t.Fatalf("sealed %s fails verification: %v", m.name, err)
			}
		})
	}

	hs := NewHandshake(&ShardHello{Shard: 1, Shards: 2, Sessions: 4, Fingerprint: 7})
	hs.V.(*ShardHello).Fingerprint = 8
	if err := hs.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mutated hello verification = %v, want ErrCorrupt", err)
	}

	hp := NewHandshake(&ShardParts{Seq: 1, Zs: []*tensor.Dense{z}})
	z.Data[0] = -z.Data[0]
	if err := hp.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mutated parts verification = %v, want ErrCorrupt", err)
	}
}
