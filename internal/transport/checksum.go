// Checksums for stream envelopes: a structural FNV-1a over the payload,
// mirroring the type switch of WireSize. Hashing the structural bytes
// directly (float bits, big.Int limbs, index slices) keeps the in-process
// transports zero-copy — running a real encoder per chunk would cost more
// than the chunk's homomorphic work it is guarding.
package transport

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/big"

	"blindfl/internal/hetensor"
	"blindfl/internal/paillier"
	"blindfl/internal/tensor"
)

// Checksum returns the FNV-1a digest of v's structural payload: every byte a
// bit-flip could corrupt contributes, with lengths and nil markers folded in
// so distinct shapes can never collide by concatenation. Unknown payload
// types contribute their type tag only (they carry no matrix data worth
// guarding); the stream layer only ships the structural types below.
func Checksum(v any) uint64 {
	f := newFNV()
	f.writeValue(v)
	return f.sum()
}

// fnvWriter wraps hash/fnv with the fixed-width field helpers the structural
// hash needs.
type fnvWriter struct {
	h   interface{ Sum64() uint64 }
	w   interface{ Write([]byte) (int, error) }
	buf [8]byte
}

func newFNV() *fnvWriter {
	h := fnv.New64a()
	return &fnvWriter{h: h, w: h}
}

func (f *fnvWriter) sum() uint64 { return f.h.Sum64() }

func (f *fnvWriter) writeUint64(x uint64) {
	binary.LittleEndian.PutUint64(f.buf[:], x)
	f.w.Write(f.buf[:])
}

func (f *fnvWriter) writeFloats(xs []float64) {
	f.writeUint64(uint64(len(xs)))
	for _, x := range xs {
		f.writeUint64(math.Float64bits(x))
	}
}

func (f *fnvWriter) writeInts(xs []int) {
	f.writeUint64(uint64(len(xs)))
	for _, x := range xs {
		f.writeUint64(uint64(int64(x)))
	}
}

func (f *fnvWriter) writeBig(x *big.Int) {
	if x == nil {
		f.writeUint64(^uint64(0))
		return
	}
	b := x.Bytes()
	neg := uint64(0)
	if x.Sign() < 0 {
		neg = 1
	}
	f.writeUint64(uint64(len(b))<<1 | neg)
	f.w.Write(b)
}

func (f *fnvWriter) writeCipher(c *paillier.Ciphertext) {
	if c == nil {
		f.writeUint64(^uint64(0) - 1)
		return
	}
	f.writeBig(c.C)
}

func (f *fnvWriter) writeValue(v any) {
	switch m := v.(type) {
	case nil:
		f.writeUint64(0)
	case *tensor.Dense:
		f.writeUint64(1)
		f.writeUint64(uint64(int64(m.Rows)))
		f.writeUint64(uint64(int64(m.Cols)))
		f.writeFloats(m.Data)
	case *tensor.CSR:
		f.writeUint64(2)
		f.writeInts(m.RowPtr)
		f.writeInts(m.ColIdx)
		f.writeFloats(m.Val)
	case *tensor.IntMatrix:
		f.writeUint64(3)
		f.writeUint64(uint64(int64(m.Rows)))
		f.writeUint64(uint64(int64(m.Cols)))
		f.writeInts(m.Data)
	case []int:
		f.writeUint64(4)
		f.writeInts(m)
	case []uint64:
		f.writeUint64(5)
		f.writeUint64(uint64(len(m)))
		for _, x := range m {
			f.writeUint64(x)
		}
	case *paillier.PublicKey:
		f.writeUint64(6)
		f.writeBig(m.N)
	case *paillier.Ciphertext:
		f.writeUint64(7)
		f.writeCipher(m)
	case *hetensor.CipherMatrix:
		f.writeUint64(8)
		f.writeUint64(uint64(int64(m.Rows)))
		f.writeUint64(uint64(int64(m.Cols)))
		f.writeUint64(uint64(m.Scale))
		for _, c := range m.C {
			f.writeCipher(c)
		}
	case *hetensor.BigMatrix:
		f.writeUint64(11)
		f.writeUint64(uint64(int64(m.Rows)))
		f.writeUint64(uint64(int64(m.Cols)))
		f.writeUint64(uint64(m.Scale))
		f.writeUint64(uint64(len(m.V)))
		for _, x := range m.V {
			f.writeBig(x)
		}
	case *hetensor.PackedMatrix:
		f.writeUint64(9)
		f.writeUint64(uint64(int64(m.Rows)))
		f.writeUint64(uint64(int64(m.Cols)))
		f.writeUint64(uint64(int64(m.Block)))
		f.writeUint64(uint64(m.Scale))
		f.writeUint64(uint64(m.W))
		f.writeUint64(uint64(int64(m.K)))
		for _, c := range m.C {
			f.writeCipher(c)
		}
	case *ShardHello:
		f.writeUint64(12)
		f.writeUint64(uint64(int64(m.Shard)))
		f.writeUint64(uint64(int64(m.Shards)))
		f.writeUint64(uint64(int64(m.Sessions)))
		f.writeUint64(m.Fingerprint)
	case *ShardAck:
		f.writeUint64(13)
		f.writeUint64(uint64(int64(m.Shard)))
		f.writeUint64(m.Fingerprint)
	case *SessionHello:
		f.writeUint64(14)
		f.writeUint64(uint64(int64(m.Session)))
		f.writeUint64(m.Fingerprint)
	case *ShardParts:
		f.writeUint64(15)
		f.writeUint64(m.Seq)
		f.writeUint64(uint64(len(m.Zs)))
		for _, z := range m.Zs {
			if z == nil {
				f.writeUint64(0)
				continue
			}
			f.writeValue(z)
		}
	case *ShardGrad:
		f.writeUint64(16)
		f.writeUint64(m.Seq)
		if m.G != nil {
			f.writeValue(m.G)
		}
	case *ShardShare:
		f.writeUint64(17)
		f.writeUint64(m.Seq)
		if m.S != nil {
			f.writeValue(m.S)
		}
	case *ShardLayers:
		f.writeUint64(18)
		f.writeUint64(uint64(int64(m.Epoch)))
		f.writeUint64(uint64(len(m.Blobs)))
		for _, b := range m.Blobs {
			f.writeUint64(uint64(len(b)))
			f.w.Write(b)
		}
	case *ShardBlob:
		f.writeUint64(19)
		f.writeUint64(uint64(len(m.Kind)))
		f.w.Write([]byte(m.Kind))
		f.writeUint64(uint64(len(m.Data)))
		f.w.Write(m.Data)
	default:
		// Non-structural payloads: a stable type tag. The stream layer only
		// ships the matrix types above; anything else is control traffic.
		f.writeUint64(10)
		f.w.Write([]byte(fmt.Sprintf("%T", v)))
	}
}
