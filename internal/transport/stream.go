// Chunked streaming: one logical matrix message split into bounded,
// sequence-numbered, checksummed chunks. Large CipherMatrix/PackedMatrix
// transfers ship as a StreamHeader followed by StreamChunk envelopes and a
// closing StreamEnd, so the sender can produce chunk i+1 (encrypt, mask,
// matmul) while chunk i is on the wire and the receiver consumes chunk i−1
// (decrypt, accumulate) — the compute/communication overlap behind the
// protocol layer's streamed conversions.
//
// Integrity: every header and chunk carries an FNV-1a checksum over its
// structural payload (Checksum), verified in RecvStream before the payload is
// decoded or consumed. Sequence numbers are per-direction and monotonically
// increasing, so crossed streams surface as errors instead of silently
// corrupting a matrix.
//
// Recovery: over a plain Conn a checksum failure is fatal (a typed
// ErrCorrupt). Over a StreamConn the endpoints run a NACK/resend round: the
// receiver tolerates corrupt, dropped, duplicated and reordered chunks during
// the first pass, acknowledges every stream with the list of missing/corrupt
// indices, and the sender retransmits exactly those chunks once from its
// retained pristine payloads. A chunk that fails again aborts the stream with
// ErrCorrupt — corruption is never silent and never retried unboundedly.
package transport

import (
	"encoding/gob"
	"fmt"
	"sort"
)

func init() {
	gob.Register(&StreamHeader{})
	gob.Register(&StreamChunk{})
	gob.Register(&StreamEnd{})
	gob.Register(&StreamAck{})
}

// ErrCorrupt is the typed error for integrity failures: a checksum mismatch
// on a stream envelope, or a stream whose retransmitted chunks failed again.
// Callers match it with errors.Is.
var ErrCorrupt = fmt.Errorf("transport: corrupt payload")

// StreamHeader announces a chunked transfer: the logical matrix shape and
// how many chunks follow on this stream sequence. Sum covers the header
// fields themselves, so a corrupted announcement cannot mis-shape the
// receiver's assembly.
type StreamHeader struct {
	Seq        uint64 // per-direction stream sequence number
	Rows, Cols int    // logical shape of the assembled message
	Chunks     int    // number of StreamChunk messages that follow
	Sum        uint64 // FNV-1a over (Seq, Rows, Cols, Chunks)
}

// seal computes and installs the header checksum.
func (h *StreamHeader) seal() *StreamHeader {
	h.Sum = h.sum()
	return h
}

func (h *StreamHeader) sum() uint64 {
	f := newFNV()
	f.writeUint64(h.Seq)
	f.writeUint64(uint64(int64(h.Rows)))
	f.writeUint64(uint64(int64(h.Cols)))
	f.writeUint64(uint64(int64(h.Chunks)))
	return f.sum()
}

// StreamChunk carries one row-chunk of a streamed transfer. Sum is
// Checksum(V), computed by the sender when the chunk is handed to the
// transport and verified by RecvStream before the payload is consumed.
type StreamChunk struct {
	Seq   uint64 // must match the header's Seq
	Index int    // 0-based position within the stream
	V     any    // chunk payload (a registered matrix type)
	Sum   uint64 // Checksum(V)
}

// StreamEnd marks the end of a chunk pass (the initial transmission or a
// retransmission round), so the receiver can detect dropped chunks — a gap
// is only knowable once the pass is complete.
type StreamEnd struct {
	Seq uint64
}

// StreamAck reports a pass outcome back to the sender. Bad lists the chunk
// indices that were missing or failed their checksum; empty means the stream
// arrived intact. Acks ride the opposite direction of the stream and are
// consumed transparently by StreamConn, so the good path costs one small
// message and no round trip. Sum seals (Seq, Bad): a corrupted ack could
// otherwise silently release the wrong stream or trigger a bogus
// retransmission, so the sender verifies it before acting.
type StreamAck struct {
	Seq uint64
	Bad []int
	Sum uint64 // FNV-1a over (Seq, Bad)
}

// seal computes and installs the ack checksum.
func (a *StreamAck) seal() *StreamAck {
	a.Sum = a.sum()
	return a
}

func (a *StreamAck) sum() uint64 {
	f := newFNV()
	f.writeUint64(a.Seq)
	f.writeUint64(uint64(len(a.Bad)))
	for _, i := range a.Bad {
		f.writeUint64(uint64(int64(i)))
	}
	return f.sum()
}

// SendStream ships one logical rows×cols message as chunks produced lazily:
// produce(i) is called only after chunk i−1 has been handed to the transport,
// so chunk production overlaps the wire (and, through it, the receiver's
// consumption). seq is the sender's per-direction stream sequence number.
//
// Over a StreamConn the produced payloads are retained until the receiver's
// ack arrives, so a NACKed chunk can be retransmitted from the pristine copy
// without re-running produce.
func SendStream(c Conn, seq uint64, rows, cols, chunks int, produce func(i int) (any, error)) error {
	if err := c.Send((&StreamHeader{Seq: seq, Rows: rows, Cols: cols, Chunks: chunks}).seal()); err != nil {
		return err
	}
	sc, _ := c.(*StreamConn)
	var sent []any
	if sc != nil {
		sent = make([]any, chunks)
	}
	for i := 0; i < chunks; i++ {
		v, err := produce(i)
		if err != nil {
			return err
		}
		if sent != nil {
			sent[i] = v
		}
		if err := c.Send(&StreamChunk{Seq: seq, Index: i, V: v, Sum: Checksum(v)}); err != nil {
			return err
		}
	}
	if err := c.Send(&StreamEnd{Seq: seq}); err != nil {
		return err
	}
	if sc != nil {
		sc.trackOutgoing(seq, sent)
	}
	return nil
}

// RecvStream receives one chunked transfer, invoking consume for every chunk
// in index order. seq is the receiver's expectation for this direction's next
// stream sequence; a mismatched stream sequence is always an error, as is a
// checksum failure on the header.
//
// Over a plain Conn the receive is strict: chunks must arrive exactly in
// order and intact, and any corruption (ErrCorrupt), reordering or short read
// fails the stream immediately. Over a StreamConn the receive is tolerant:
// corrupt, dropped, duplicated and reordered chunks are collected into a NACK
// and re-requested from the sender once (see the package comment); consume
// still observes chunks strictly in index order.
func RecvStream(c Conn, seq uint64, consume func(h *StreamHeader, i int, v any) error) (*StreamHeader, error) {
	v, err := c.Recv()
	if err != nil {
		return nil, err
	}
	h, ok := v.(*StreamHeader)
	if !ok {
		return nil, fmt.Errorf("%w: stream: want header, got %T", ErrCorrupt, v)
	}
	if h.Sum != h.sum() {
		return nil, fmt.Errorf("%w: stream header checksum mismatch (seq %d)", ErrCorrupt, h.Seq)
	}
	if h.Seq != seq {
		return nil, fmt.Errorf("%w: stream sequence mismatch: got %d want %d", ErrCorrupt, h.Seq, seq)
	}
	if h.Chunks <= 0 {
		return nil, fmt.Errorf("%w: stream header announces %d chunks", ErrCorrupt, h.Chunks)
	}
	if sc, ok := c.(*StreamConn); ok {
		return h, recvStreamRecover(sc, h, consume)
	}
	return h, recvStreamStrict(c, h, consume)
}

// recvStreamStrict is the plain-Conn receive path: in-order, intact, or fail.
func recvStreamStrict(c Conn, h *StreamHeader, consume func(h *StreamHeader, i int, v any) error) error {
	for i := 0; i < h.Chunks; i++ {
		v, err := c.Recv()
		if err != nil {
			return fmt.Errorf("transport: stream: chunk %d/%d: %w", i, h.Chunks, err)
		}
		chunk, ok := v.(*StreamChunk)
		if !ok {
			return fmt.Errorf("%w: stream chunk %d: want chunk, got %T", ErrCorrupt, i, v)
		}
		if chunk.Seq != h.Seq {
			return fmt.Errorf("%w: stream chunk %d: sequence %d does not match header %d", ErrCorrupt, i, chunk.Seq, h.Seq)
		}
		if chunk.Index != i {
			return fmt.Errorf("%w: stream chunk out of order: got index %d want %d", ErrCorrupt, chunk.Index, i)
		}
		if Checksum(chunk.V) != chunk.Sum {
			return fmt.Errorf("%w: stream chunk %d/%d checksum mismatch", ErrCorrupt, i, h.Chunks)
		}
		if err := consume(h, i, chunk.V); err != nil {
			return err
		}
	}
	v, err := c.Recv()
	if err != nil {
		return fmt.Errorf("transport: stream: end marker: %w", err)
	}
	if end, ok := v.(*StreamEnd); !ok || end.Seq != h.Seq {
		return fmt.Errorf("%w: stream: want end marker for seq %d, got %T", ErrCorrupt, h.Seq, v)
	}
	return nil
}

// recvStreamRecover is the StreamConn receive path: a first pass that
// tolerates corrupt/dropped/duplicated/reordered chunks, an ack naming the
// gaps, and at most one retransmission round before the stream aborts.
func recvStreamRecover(sc *StreamConn, h *StreamHeader, consume func(h *StreamHeader, i int, v any) error) error {
	held := make(map[int]any) // verified payloads not yet consumed
	next := 0                 // next index to hand to consume

	deliver := func() error {
		for {
			v, ok := held[next]
			if !ok {
				return nil
			}
			delete(held, next)
			if err := consume(h, next, v); err != nil {
				return err
			}
			next++
		}
	}
	process := func(chunk *StreamChunk) error {
		if chunk.Index < 0 || chunk.Index >= h.Chunks {
			return fmt.Errorf("%w: stream chunk index %d outside 0..%d", ErrCorrupt, chunk.Index, h.Chunks-1)
		}
		if chunk.Index < next || held[chunk.Index] != nil {
			return nil // duplicate of a chunk already verified
		}
		if Checksum(chunk.V) != chunk.Sum {
			return nil // corrupt: leave the gap for the NACK round
		}
		held[chunk.Index] = chunk.V
		return deliver()
	}
	missing := func() []int {
		var m []int
		for i := next; i < h.Chunks; i++ {
			if held[i] == nil {
				m = append(m, i)
			}
		}
		sort.Ints(m)
		return m
	}

	// First pass: everything between the header and the end marker.
	for {
		v, err := sc.Recv()
		if err != nil {
			return fmt.Errorf("transport: stream: chunk %d/%d: %w", next, h.Chunks, err)
		}
		if end, ok := v.(*StreamEnd); ok {
			if end.Seq != h.Seq {
				return fmt.Errorf("%w: stream: end marker for seq %d during stream %d", ErrCorrupt, end.Seq, h.Seq)
			}
			break
		}
		chunk, ok := v.(*StreamChunk)
		if !ok {
			return fmt.Errorf("%w: stream chunk %d: want chunk, got %T", ErrCorrupt, next, v)
		}
		if chunk.Seq != h.Seq {
			return fmt.Errorf("%w: stream chunk sequence %d does not match header %d", ErrCorrupt, chunk.Seq, h.Seq)
		}
		if err := process(chunk); err != nil {
			return err
		}
	}

	bad := missing()
	if err := sc.Send((&StreamAck{Seq: h.Seq, Bad: bad}).seal()); err != nil {
		return fmt.Errorf("transport: stream: ack: %w", err)
	}
	if len(bad) == 0 {
		return nil
	}

	// NACK round: the sender retransmits exactly the bad indices and closes
	// with another end marker. Unrelated traffic that raced ahead of the
	// retransmission is buffered for later receives.
	for {
		v, err := sc.recvWire()
		if err != nil {
			return fmt.Errorf("transport: stream: resend %v: %w", bad, err)
		}
		if end, ok := v.(*StreamEnd); ok && end.Seq == h.Seq {
			break
		}
		if chunk, ok := v.(*StreamChunk); ok && chunk.Seq == h.Seq {
			if err := process(chunk); err != nil {
				return err
			}
			continue
		}
		sc.pushback(v)
	}
	still := missing()
	if err := sc.Send((&StreamAck{Seq: h.Seq, Bad: still}).seal()); err != nil {
		return fmt.Errorf("transport: stream: final ack: %w", err)
	}
	if len(still) > 0 {
		return fmt.Errorf("%w: stream chunks %v still corrupt after retransmission", ErrCorrupt, still)
	}
	return nil
}
