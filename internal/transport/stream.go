// Chunked streaming: one logical matrix message split into bounded,
// sequence-numbered chunks. Large CipherMatrix/PackedMatrix transfers ship as
// a StreamHeader followed by StreamChunk envelopes, so the sender can produce
// chunk i+1 (encrypt, mask, matmul) while chunk i is on the wire and the
// receiver consumes chunk i−1 (decrypt, accumulate) — the compute/
// communication overlap behind the protocol layer's streamed conversions.
//
// Sequence numbers are per-direction and monotonically increasing; the
// receiver validates both the stream sequence and the chunk index, so crossed
// streams, reordered chunks and truncated streams surface as errors instead
// of silently corrupting a matrix.
package transport

import (
	"encoding/gob"
	"fmt"
)

func init() {
	gob.Register(&StreamHeader{})
	gob.Register(&StreamChunk{})
}

// StreamHeader announces a chunked transfer: the logical matrix shape and
// how many chunks follow on this stream sequence.
type StreamHeader struct {
	Seq        uint64 // per-direction stream sequence number
	Rows, Cols int    // logical shape of the assembled message
	Chunks     int    // number of StreamChunk messages that follow
}

// StreamChunk carries one row-chunk of a streamed transfer.
type StreamChunk struct {
	Seq   uint64 // must match the header's Seq
	Index int    // 0-based position within the stream
	V     any    // chunk payload (a registered matrix type)
}

// SendStream ships one logical rows×cols message as chunks produced lazily:
// produce(i) is called only after chunk i−1 has been handed to the transport,
// so chunk production overlaps the wire (and, through it, the receiver's
// consumption). seq is the sender's per-direction stream sequence number.
func SendStream(c Conn, seq uint64, rows, cols, chunks int, produce func(i int) (any, error)) error {
	if err := c.Send(&StreamHeader{Seq: seq, Rows: rows, Cols: cols, Chunks: chunks}); err != nil {
		return err
	}
	for i := 0; i < chunks; i++ {
		v, err := produce(i)
		if err != nil {
			return err
		}
		if err := c.Send(&StreamChunk{Seq: seq, Index: i, V: v}); err != nil {
			return err
		}
	}
	return nil
}

// RecvStream receives one chunked transfer, invoking consume for every chunk
// in order. seq is the receiver's expectation for this direction's next
// stream sequence; a mismatched sequence or out-of-order chunk index is an
// error (a short read surfaces as the transport error of the missing Recv).
func RecvStream(c Conn, seq uint64, consume func(h *StreamHeader, i int, v any) error) (*StreamHeader, error) {
	v, err := c.Recv()
	if err != nil {
		return nil, err
	}
	h, ok := v.(*StreamHeader)
	if !ok {
		return nil, fmt.Errorf("transport: stream: want header, got %T", v)
	}
	if h.Seq != seq {
		return nil, fmt.Errorf("transport: stream: sequence mismatch: got %d want %d", h.Seq, seq)
	}
	if h.Chunks <= 0 {
		return nil, fmt.Errorf("transport: stream: header announces %d chunks", h.Chunks)
	}
	for i := 0; i < h.Chunks; i++ {
		v, err := c.Recv()
		if err != nil {
			return nil, fmt.Errorf("transport: stream: chunk %d/%d: %w", i, h.Chunks, err)
		}
		chunk, ok := v.(*StreamChunk)
		if !ok {
			return nil, fmt.Errorf("transport: stream: chunk %d: want chunk, got %T", i, v)
		}
		if chunk.Seq != h.Seq {
			return nil, fmt.Errorf("transport: stream: chunk %d: sequence %d does not match header %d", i, chunk.Seq, h.Seq)
		}
		if chunk.Index != i {
			return nil, fmt.Errorf("transport: stream: chunk out of order: got index %d want %d", chunk.Index, i)
		}
		if err := consume(h, i, chunk.V); err != nil {
			return nil, err
		}
	}
	return h, nil
}
