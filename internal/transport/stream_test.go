package transport

import (
	"strings"
	"testing"

	"blindfl/internal/tensor"
)

func TestSendRecvStreamRoundTripOverPair(t *testing.T) {
	a, b := Pair(16)
	src := tensor.FromSlice(5, 2, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	done := make(chan error, 1)
	go func() {
		done <- SendStream(a, 0, src.Rows, src.Cols, 3, func(i int) (any, error) {
			lo := i * 2
			hi := lo + 2
			if hi > src.Rows {
				hi = src.Rows
			}
			return src.RowSlice(lo, hi), nil
		})
	}()
	got := tensor.NewDense(5, 2)
	h, err := RecvStream(b, 0, func(h *StreamHeader, i int, v any) error {
		chunk := v.(*tensor.Dense)
		copy(got.Data[i*2*2:], chunk.Data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if h.Rows != 5 || h.Cols != 2 || h.Chunks != 3 {
		t.Fatalf("header = %+v", h)
	}
	if !got.Equal(src, 0) {
		t.Fatalf("round trip: got %v want %v", got.Data, src.Data)
	}
}

func TestRecvStreamRejectsWrongSequence(t *testing.T) {
	a, b := Pair(4)
	if err := a.Send(&StreamHeader{Seq: 7, Rows: 1, Cols: 1, Chunks: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := RecvStream(b, 0, func(*StreamHeader, int, any) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "sequence mismatch") {
		t.Fatalf("err = %v", err)
	}
}

func TestRecvStreamRejectsReorderedChunks(t *testing.T) {
	a, b := Pair(8)
	if err := a.Send(&StreamHeader{Seq: 0, Rows: 4, Cols: 1, Chunks: 2}); err != nil {
		t.Fatal(err)
	}
	// Deliver chunk 1 before chunk 0: the receiver must refuse to assemble.
	if err := a.Send(&StreamChunk{Seq: 0, Index: 1, V: tensor.NewDense(2, 1)}); err != nil {
		t.Fatal(err)
	}
	_, err := RecvStream(b, 0, func(*StreamHeader, int, any) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("err = %v", err)
	}
}

func TestRecvStreamRejectsCrossedStreamChunk(t *testing.T) {
	a, b := Pair(8)
	if err := a.Send(&StreamHeader{Seq: 0, Rows: 2, Cols: 1, Chunks: 1}); err != nil {
		t.Fatal(err)
	}
	// A chunk from a different stream sequence sneaks in.
	if err := a.Send(&StreamChunk{Seq: 3, Index: 0, V: tensor.NewDense(2, 1)}); err != nil {
		t.Fatal(err)
	}
	_, err := RecvStream(b, 0, func(*StreamHeader, int, any) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "sequence") {
		t.Fatalf("err = %v", err)
	}
}

// TestRecvStreamShortReadOverTCP truncates a stream mid-flight on a real TCP
// pair: the header promises more chunks than ever arrive and the sender's
// socket closes. The receiver must surface a transport error, not hang or
// return a partial matrix as success.
func TestRecvStreamShortReadOverTCP(t *testing.T) {
	s, c := tcpPair(t)
	defer s.Close()

	if err := c.Send(&StreamHeader{Seq: 0, Rows: 6, Cols: 1, Chunks: 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(&StreamChunk{Seq: 0, Index: 0, V: tensor.NewDense(2, 1)}); err != nil {
		t.Fatal(err)
	}
	c.Close() // flushes the two queued messages, then tears the socket down

	seen := 0
	_, err := RecvStream(s, 0, func(h *StreamHeader, i int, v any) error {
		seen++
		return nil
	})
	if err == nil {
		t.Fatal("truncated stream reported success")
	}
	if seen != 1 {
		t.Fatalf("consumed %d chunks of a truncated stream, want 1", seen)
	}
	if !strings.Contains(err.Error(), "chunk 1/3") {
		t.Fatalf("err = %v", err)
	}
}
