package transport

import (
	"errors"
	"strings"
	"testing"

	"blindfl/internal/tensor"
)

func TestSendRecvStreamRoundTripOverPair(t *testing.T) {
	a, b := Pair(16)
	src := tensor.FromSlice(5, 2, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	done := make(chan error, 1)
	go func() {
		done <- SendStream(a, 0, src.Rows, src.Cols, 3, func(i int) (any, error) {
			lo := i * 2
			hi := lo + 2
			if hi > src.Rows {
				hi = src.Rows
			}
			return src.RowSlice(lo, hi), nil
		})
	}()
	got := tensor.NewDense(5, 2)
	h, err := RecvStream(b, 0, func(h *StreamHeader, i int, v any) error {
		chunk := v.(*tensor.Dense)
		copy(got.Data[i*2*2:], chunk.Data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if h.Rows != 5 || h.Cols != 2 || h.Chunks != 3 {
		t.Fatalf("header = %+v", h)
	}
	if !got.Equal(src, 0) {
		t.Fatalf("round trip: got %v want %v", got.Data, src.Data)
	}
}

func TestRecvStreamRejectsWrongSequence(t *testing.T) {
	a, b := Pair(4)
	if err := a.Send((&StreamHeader{Seq: 7, Rows: 1, Cols: 1, Chunks: 1}).seal()); err != nil {
		t.Fatal(err)
	}
	_, err := RecvStream(b, 0, func(*StreamHeader, int, any) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "sequence mismatch") {
		t.Fatalf("err = %v", err)
	}
}

func TestRecvStreamRejectsCorruptHeader(t *testing.T) {
	a, b := Pair(4)
	// A header whose announced shape was corrupted after sealing.
	h := (&StreamHeader{Seq: 0, Rows: 1, Cols: 1, Chunks: 1}).seal()
	h.Rows = 4096
	if err := a.Send(h); err != nil {
		t.Fatal(err)
	}
	_, err := RecvStream(b, 0, func(*StreamHeader, int, any) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestRecvStreamRejectsReorderedChunks pins the plain-Conn contract: without
// the StreamConn recovery layer, chunks must arrive strictly in order.
func TestRecvStreamRejectsReorderedChunks(t *testing.T) {
	a, b := Pair(8)
	if err := a.Send((&StreamHeader{Seq: 0, Rows: 4, Cols: 1, Chunks: 2}).seal()); err != nil {
		t.Fatal(err)
	}
	// Deliver chunk 1 before chunk 0: the receiver must refuse to assemble.
	v := tensor.NewDense(2, 1)
	if err := a.Send(&StreamChunk{Seq: 0, Index: 1, V: v, Sum: Checksum(v)}); err != nil {
		t.Fatal(err)
	}
	_, err := RecvStream(b, 0, func(*StreamHeader, int, any) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("err = %v", err)
	}
}

// TestRecvStreamRejectsCorruptChunk: a plain Conn has no resend path, so a
// checksum mismatch is immediately fatal and typed.
func TestRecvStreamRejectsCorruptChunk(t *testing.T) {
	a, b := Pair(8)
	if err := a.Send((&StreamHeader{Seq: 0, Rows: 2, Cols: 1, Chunks: 1}).seal()); err != nil {
		t.Fatal(err)
	}
	v := tensor.FromSlice(2, 1, []float64{1, 2})
	sum := Checksum(v)
	v.Data[1] = 2.0000000001 // the flip happens after the checksum was taken
	if err := a.Send(&StreamChunk{Seq: 0, Index: 0, V: v, Sum: sum}); err != nil {
		t.Fatal(err)
	}
	consumed := 0
	_, err := RecvStream(b, 0, func(*StreamHeader, int, any) error { consumed++; return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if consumed != 0 {
		t.Fatalf("consumed %d corrupt chunks", consumed)
	}
}

func TestRecvStreamRejectsCrossedStreamChunk(t *testing.T) {
	a, b := Pair(8)
	if err := a.Send((&StreamHeader{Seq: 0, Rows: 2, Cols: 1, Chunks: 1}).seal()); err != nil {
		t.Fatal(err)
	}
	// A chunk from a different stream sequence sneaks in.
	v := tensor.NewDense(2, 1)
	if err := a.Send(&StreamChunk{Seq: 3, Index: 0, V: v, Sum: Checksum(v)}); err != nil {
		t.Fatal(err)
	}
	_, err := RecvStream(b, 0, func(*StreamHeader, int, any) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "sequence") {
		t.Fatalf("err = %v", err)
	}
}

// TestRecvStreamShortReadOverTCP truncates a stream mid-flight on a real TCP
// pair: the header promises more chunks than ever arrive and the sender's
// socket closes. The receiver must surface a transport error, not hang or
// return a partial matrix as success.
func TestRecvStreamShortReadOverTCP(t *testing.T) {
	s, c := tcpPair(t)
	defer s.Close()

	if err := c.Send((&StreamHeader{Seq: 0, Rows: 6, Cols: 1, Chunks: 3}).seal()); err != nil {
		t.Fatal(err)
	}
	v := tensor.NewDense(2, 1)
	if err := c.Send(&StreamChunk{Seq: 0, Index: 0, V: v, Sum: Checksum(v)}); err != nil {
		t.Fatal(err)
	}
	c.Close() // flushes the two queued messages, then tears the socket down

	seen := 0
	_, err := RecvStream(s, 0, func(h *StreamHeader, i int, v any) error {
		seen++
		return nil
	})
	if err == nil {
		t.Fatal("truncated stream reported success")
	}
	if seen != 1 {
		t.Fatalf("consumed %d chunks of a truncated stream, want 1", seen)
	}
	if !strings.Contains(err.Error(), "chunk 1/3") {
		t.Fatalf("err = %v", err)
	}
}

// streamPair wires two StreamConn endpoints over a buffered Pair, with fc
// optionally wrapped around the sender's endpoint for fault injection.
func streamPair(buffer int, wrap func(Conn) Conn) (*StreamConn, *StreamConn) {
	a, b := Pair(buffer)
	if wrap != nil {
		a = wrap(a)
	}
	return NewStreamConn(a), NewStreamConn(b)
}

// runStream sends src in 2-row chunks from a and assembles it at b,
// returning the receive error and the assembled matrix. After the stream the
// sender pumps one receive — that is where acks are serviced and NACKed
// chunks retransmitted, exactly as during a protocol's next receive — until
// the receiver's "done" sentinel (or a sticky corruption verdict) arrives.
func runStream(t *testing.T, a, b *StreamConn, src *tensor.Dense) (*tensor.Dense, error) {
	t.Helper()
	done := make(chan error, 1)
	chunks := (src.Rows + 1) / 2
	go func() {
		err := SendStream(a, 0, src.Rows, src.Cols, chunks, func(i int) (any, error) {
			lo := i * 2
			hi := lo + 2
			if hi > src.Rows {
				hi = src.Rows
			}
			return src.RowSlice(lo, hi), nil
		})
		if err == nil {
			if _, rerr := a.Recv(); rerr != nil && !errors.Is(rerr, ErrClosed) {
				err = rerr
			}
		}
		done <- err
	}()
	got := tensor.NewDense(src.Rows, src.Cols)
	_, err := RecvStream(b, 0, func(h *StreamHeader, i int, v any) error {
		copy(got.Data[i*2*src.Cols:], v.(*tensor.Dense).Data)
		return nil
	})
	b.Send("done") // unblock the sender's ack pump
	if serr := <-done; serr != nil && err == nil {
		err = serr
	}
	return got, err
}

// TestStreamConnRecoversEveryChunkFaultClass drives bit-flips, drops, dups
// and reorders through the NACK/resend layer: every class must reconstruct
// the matrix bit-exactly.
func TestStreamConnRecoversEveryChunkFaultClass(t *testing.T) {
	src := tensor.FromSlice(8, 2, []float64{
		1, -2, 3, -4, 5, -6, 7, -8, 9, -10, 11, -12, 13, -14, 15, -16})
	plans := map[string]FaultPlan{
		"bitflip": {FlipProb: 0.5, MaxFaults: 2},
		"drop":    {DropProb: 0.5, MaxFaults: 2},
		"dup":     {DupProb: 0.5, MaxFaults: 2},
		"reorder": {ReorderProb: 0.5, MaxFaults: 2},
		"mixed":   {FlipProb: 0.3, DropProb: 0.2, DupProb: 0.3, ReorderProb: 0.3, MaxFaults: 3},
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			var fc *FaultConn
			a, b := streamPair(64, func(c Conn) Conn {
				fc = NewFaultConn(c, 11, name, plan)
				return fc
			})
			got, err := runStream(t, a, b, src)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(src, 0) {
				t.Fatalf("recovered stream differs: %v want %v", got.Data, src.Data)
			}
			st := fc.Injected()
			if st.Flips+st.Drops+st.Dups+st.Reorders == 0 {
				t.Fatal("fault plan injected nothing; the test exercised no recovery")
			}
		})
	}
}

// TestStreamConnPersistentCorruptionFailsTyped: when the retransmitted chunk
// is corrupted again, the stream must abort with ErrCorrupt — one retry, then
// a loud typed failure, never silent garbage.
func TestStreamConnPersistentCorruptionFailsTyped(t *testing.T) {
	src := tensor.FromSlice(6, 1, []float64{1, 2, 3, 4, 5, 6})
	a, b := streamPair(64, func(c Conn) Conn {
		return NewFaultConn(c, 3, "persistent", FaultPlan{FlipProb: 1})
	})
	_, err := runStream(t, a, b, src)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestStreamConnSenderPoisonedAfterFailedResend pins the sender's view of a
// doubly-corrupted stream: once the final NACK arrives, every later op on
// the conn fails with the sticky ErrCorrupt.
func TestStreamConnSenderPoisonedAfterFailedResend(t *testing.T) {
	src := tensor.FromSlice(4, 1, []float64{1, 2, 3, 4})
	a, b := streamPair(64, func(c Conn) Conn {
		return NewFaultConn(c, 3, "poison", FaultPlan{FlipProb: 1})
	})
	_, err := runStream(t, a, b, src)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("recv err = %v, want ErrCorrupt", err)
	}
	// The final NACK is queued toward the sender; its next receive must
	// surface the sticky corruption error (and so must every op after).
	if _, err := a.Recv(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sender Recv after failed resend = %v, want ErrCorrupt", err)
	}
	if err := a.Send(1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sender Send after failed resend = %v, want ErrCorrupt", err)
	}
}

// TestFaultConnDeterministicSchedule: the same (seed, label) plan injects
// exactly the same faults — the Calvin-style replayability the chaos suite
// builds on.
func TestFaultConnDeterministicSchedule(t *testing.T) {
	run := func() FaultStats {
		src := tensor.FromSlice(8, 1, []float64{1, 2, 3, 4, 5, 6, 7, 8})
		var fc *FaultConn
		a, b := streamPair(64, func(c Conn) Conn {
			fc = NewFaultConn(c, 99, "replay", FaultPlan{FlipProb: 0.4, DropProb: 0.2, DupProb: 0.4, MaxFaults: 3})
			return fc
		})
		if _, err := runStream(t, a, b, src); err != nil {
			t.Fatal(err)
		}
		return fc.Injected()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d injected %+v, first run %+v", i, got, first)
		}
	}
}

// TestFaultConnKillClosesBothEnds: the kill fault must surface as the typed
// ErrClosed on both endpoints, exactly like a real mid-protocol disconnect.
func TestFaultConnKillClosesBothEnds(t *testing.T) {
	a, b := Pair(8)
	fc := NewFaultConn(a, 7, "kill", FaultPlan{KillAtMsg: 2})
	if err := fc.Send(1); err != nil {
		t.Fatal(err)
	}
	if err := fc.Send(2); !errors.Is(err, ErrClosed) {
		t.Fatalf("kill send = %v, want ErrClosed", err)
	}
	if !fc.Injected().Killed {
		t.Fatal("kill not recorded")
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err) // message 1 was delivered before the kill
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer Recv after kill = %v, want ErrClosed", err)
	}
}

func TestChecksumDistinguishesPayloads(t *testing.T) {
	a := tensor.FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := tensor.FromSlice(2, 2, []float64{1, 2, 3, 5})
	if Checksum(a) == Checksum(b) {
		t.Fatal("checksum collision on differing payloads")
	}
	if Checksum(a) != Checksum(a.RowSlice(0, 2)) {
		t.Fatal("checksum differs on identical payloads")
	}
}
