// Deterministic fault injection: FaultConn wraps one endpoint of a Conn and
// perturbs its outgoing traffic according to a seeded plan — bit-flipped
// chunk payloads, dropped/duplicated/reordered chunks, delayed sends, and a
// hard kill at the k-th message. The schedule is drawn from an internal/rng
// stream named by (seed, label), so a chaos run is bit-reproducible: the same
// seed injects exactly the same faults at exactly the same messages
// (Calvin-style deterministic failure handling — if recovery is
// deterministic, it is testable).
//
// Flip/drop/dup/reorder target *StreamChunk envelopes only: chunks carry the
// matrix payloads the checksums guard, and they are the unit the NACK/resend
// recovery can re-request. Control messages (headers, end markers, acks,
// handshakes) are faulted separately through CtrlFlipProb/CtrlDropProb:
// corruption there models a broken transport and must surface as a typed
// protocol error (every control envelope is checksummed), while a dropped
// control message hangs the peer — which the deadline layer (DeadlineConn)
// converts into a typed ErrTimeout. Delay applies to any message; the kill
// counter counts every message.
//
// Flips clone the payload before mutating it: the in-process transports pass
// references, and the sender retains its chunk payloads for retransmission —
// a fault on the wire must not reach back into the sender's pristine copy.
package transport

import (
	"math"
	"math/big"
	"math/rand"
	"sync"
	"time"

	"blindfl/internal/hetensor"
	"blindfl/internal/paillier"
	"blindfl/internal/rng"
	"blindfl/internal/tensor"
)

// FaultPlan is the seeded fault schedule of one FaultConn. Probabilities are
// per matching message; the zero plan injects nothing.
type FaultPlan struct {
	FlipProb    float64 // flip one payload bit of a StreamChunk
	DropProb    float64 // drop a StreamChunk
	DupProb     float64 // send a StreamChunk twice
	ReorderProb float64 // hold a StreamChunk and send it after the next message

	// Control-plane faults. CtrlFlipProb corrupts one field of a control
	// message (StreamHeader, StreamEnd, StreamAck, Handshake) while keeping
	// its now-stale checksum, so the corruption is detectable; CtrlDropProb
	// drops the control message entirely, hanging the peer that waits on it.
	// Both count against MaxFaults. The zero values leave control traffic
	// untouched and draw nothing from the rng stream, so pre-existing
	// chunk-only plans keep their exact fault schedules.
	CtrlFlipProb float64
	CtrlDropProb float64

	DelayProb float64       // delay any message by Delay before sending
	Delay     time.Duration // the injected delay

	KillAtMsg int64 // close the conn at this 1-based send ordinal (0 = never)

	// MaxFaults bounds the total chunk faults (flips+drops+dups+reorders)
	// injected over the conn's lifetime; 0 means unlimited. A bounded budget
	// lets a chaos test corrupt the first pass of a stream while guaranteeing
	// the retransmission round goes through clean, so recovery is exercised
	// deterministically instead of racing the same fault probability twice.
	MaxFaults int64
}

// FaultStats counts the faults a FaultConn actually injected.
type FaultStats struct {
	Flips, Drops, Dups, Reorders, Delays int64
	CtrlFlips, CtrlDrops                 int64
	Killed                               bool
}

// FaultConn wraps a Conn endpoint with a deterministic fault schedule on its
// Send side. Recv, Stats and Close pass through.
type FaultConn struct {
	inner Conn
	plan  FaultPlan

	mu    sync.Mutex
	rng   *rand.Rand
	n     int64 // send ordinal
	held  any   // a reordered message waiting to follow the next send
	stats FaultStats
}

// NewFaultConn wraps inner with the plan, drawing the fault schedule from the
// (seed, "fault-plan:"+label) rng stream.
func NewFaultConn(inner Conn, seed int64, label string, plan FaultPlan) *FaultConn {
	return &FaultConn{inner: inner, plan: plan, rng: rng.New(seed, "fault-plan:"+label)}
}

// Injected returns the faults injected so far.
func (f *FaultConn) Injected() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func (f *FaultConn) Send(v any) error {
	f.mu.Lock()
	f.n++
	kill := f.plan.KillAtMsg > 0 && f.n == f.plan.KillAtMsg
	delay := time.Duration(0)
	if f.plan.DelayProb > 0 && f.rng.Float64() < f.plan.DelayProb {
		delay = f.plan.Delay
		f.stats.Delays++
	}
	var flip, drop, dup, reorder bool
	injected := f.stats.Flips + f.stats.Drops + f.stats.Dups + f.stats.Reorders +
		f.stats.CtrlFlips + f.stats.CtrlDrops
	inBudget := f.plan.MaxFaults == 0 || injected < f.plan.MaxFaults
	if _, isChunk := v.(*StreamChunk); isChunk && inBudget {
		flip = f.plan.FlipProb > 0 && f.rng.Float64() < f.plan.FlipProb
		drop = f.plan.DropProb > 0 && f.rng.Float64() < f.plan.DropProb
		dup = f.plan.DupProb > 0 && f.rng.Float64() < f.plan.DupProb
		reorder = f.plan.ReorderProb > 0 && f.rng.Float64() < f.plan.ReorderProb
	}
	var cflip, cdrop bool
	if isCtrlMessage(v) && inBudget && (f.plan.CtrlFlipProb > 0 || f.plan.CtrlDropProb > 0) {
		cflip = f.plan.CtrlFlipProb > 0 && f.rng.Float64() < f.plan.CtrlFlipProb
		cdrop = f.plan.CtrlDropProb > 0 && f.rng.Float64() < f.plan.CtrlDropProb
	}
	if flip {
		if fv, ok := flipChunk(v.(*StreamChunk), f.rng); ok {
			v = fv
			f.stats.Flips++
		}
	}
	if cflip {
		if fv, ok := flipCtrl(v, f.rng); ok {
			v = fv
			f.stats.CtrlFlips++
		}
	}
	held := f.held
	f.held = nil
	switch {
	case kill:
		f.stats.Killed = true
	case drop:
		f.stats.Drops++
		v = nil
	case cdrop:
		f.stats.CtrlDrops++
		v = nil
	case dup:
		f.stats.Dups++
	case reorder:
		f.stats.Reorders++
		f.held = v
		v = nil
	}
	f.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if kill {
		f.inner.Close()
		return ErrClosed
	}
	if v != nil {
		if err := f.inner.Send(v); err != nil {
			return err
		}
		if dup {
			if err := f.inner.Send(v); err != nil {
				return err
			}
		}
	}
	if held != nil {
		if err := f.inner.Send(held); err != nil {
			return err
		}
	}
	return nil
}

func (f *FaultConn) Recv() (any, error) { return f.inner.Recv() }

func (f *FaultConn) Stats() (int64, int64) { return f.inner.Stats() }

func (f *FaultConn) Close() error { return f.inner.Close() }

// flipChunk returns a copy of the chunk with one payload bit flipped and the
// stale checksum retained (so the flip is detectable). The payload is deep-
// copied along the mutated path only; unrecognized payload types are left
// untouched (ok = false).
func flipChunk(chunk *StreamChunk, r *rand.Rand) (*StreamChunk, bool) {
	fv, ok := flipPayload(chunk.V, r)
	if !ok {
		return chunk, false
	}
	cc := *chunk
	cc.V = fv
	return &cc, true
}

func flipPayload(v any, r *rand.Rand) (any, bool) {
	switch m := v.(type) {
	case *tensor.Dense:
		if len(m.Data) == 0 {
			return nil, false
		}
		cp := *m
		cp.Data = append([]float64(nil), m.Data...)
		i := r.Intn(len(cp.Data))
		cp.Data[i] = flipFloatBit(cp.Data[i], r)
		return &cp, true
	case *hetensor.CipherMatrix:
		cs, ok := flipOneCipher(m.C, r)
		if !ok {
			return nil, false
		}
		cp := *m
		cp.C = cs
		return &cp, true
	case *hetensor.PackedMatrix:
		cs, ok := flipOneCipher(m.C, r)
		if !ok {
			return nil, false
		}
		cp := *m
		cp.C = cs
		return &cp, true
	default:
		return nil, false
	}
}

// flipOneCipher clones the cell slice and one randomly chosen ciphertext,
// flipping one bit of its value.
func flipOneCipher(cells []*paillier.Ciphertext, r *rand.Rand) ([]*paillier.Ciphertext, bool) {
	var candidates []int
	for i, c := range cells {
		if c != nil && c.C != nil {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return nil, false
	}
	i := candidates[r.Intn(len(candidates))]
	cs := append([]*paillier.Ciphertext(nil), cells...)
	x := new(big.Int).Set(cs[i].C)
	bit := 0
	if bl := x.BitLen(); bl > 0 {
		bit = r.Intn(bl)
	}
	x.SetBit(x, bit, 1-x.Bit(bit))
	cs[i] = &paillier.Ciphertext{C: x}
	return cs, true
}

// isCtrlMessage reports whether v is a control-plane envelope — the messages
// that frame streams and set up sessions, as opposed to chunk payloads.
func isCtrlMessage(v any) bool {
	switch v.(type) {
	case *StreamHeader, *StreamEnd, *StreamAck, *Handshake:
		return true
	}
	return false
}

// flipCtrl returns a copy of the control message with one framing field
// perturbed and the now-stale checksum retained (where the type carries one),
// so the corruption is detectable rather than silently re-sealed.
func flipCtrl(v any, r *rand.Rand) (any, bool) {
	switch m := v.(type) {
	case *StreamHeader:
		cp := *m
		cp.Rows ^= 1 << uint(r.Intn(16))
		return &cp, true
	case *StreamEnd:
		cp := *m
		cp.Seq ^= 1 << uint(r.Intn(16))
		return &cp, true
	case *StreamAck:
		cp := *m
		cp.Bad = append([]int(nil), m.Bad...)
		cp.Seq ^= 1 << uint(r.Intn(16))
		return &cp, true
	case *Handshake:
		cp := *m
		cp.Sum ^= 1 << uint(r.Intn(64))
		return &cp, true
	}
	return nil, false
}

func flipFloatBit(x float64, r *rand.Rand) float64 {
	// Flip a mantissa bit so the value stays finite and ordinary.
	return math.Float64frombits(math.Float64bits(x) ^ (1 << uint(r.Intn(52))))
}
