package transport

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"blindfl/internal/hetensor"
	"blindfl/internal/paillier"
	"blindfl/internal/tensor"
)

func TestPairRoundTrip(t *testing.T) {
	a, b := Pair(4)
	d := tensor.FromSlice(1, 2, []float64{1, 2})
	if err := a.Send(d); err != nil {
		t.Fatal(err)
	}
	v, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*tensor.Dense)
	if !ok || !got.Equal(d, 0) {
		t.Fatalf("got %#v", v)
	}
}

func TestPairOrdering(t *testing.T) {
	a, b := Pair(16)
	for i := 0; i < 10; i++ {
		if err := a.Send(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		v, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != i {
			t.Fatalf("out of order: got %v want %d", v, i)
		}
	}
}

func TestPairClose(t *testing.T) {
	a, b := Pair(1)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1); err != ErrClosed {
		t.Fatalf("Send after close: %v", err)
	}
	if _, err := b.Recv(); err != ErrClosed {
		t.Fatalf("Recv after close: %v", err)
	}
}

func TestPairStats(t *testing.T) {
	a, _ := Pair(4)
	_ = a.Send(1)
	_ = a.Send(2)
	msgs, _ := a.Stats()
	if msgs != 2 {
		t.Fatalf("msgs = %d", msgs)
	}
}

func TestPairBidirectional(t *testing.T) {
	a, b := Pair(4)
	done := make(chan error, 2)
	go func() {
		if err := a.Send("ping"); err != nil {
			done <- err
			return
		}
		v, err := a.Recv()
		if err == nil && v.(string) != "pong" {
			t.Errorf("a got %v", v)
		}
		done <- err
	}()
	go func() {
		v, err := b.Recv()
		if err == nil && v.(string) != "ping" {
			t.Errorf("b got %v", v)
		}
		if err == nil {
			err = b.Send("pong")
		}
		done <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestPairBothEndsClose is the regression test for the shared-closed-channel
// bug: the two endpoints of a Pair used to share the closed channel but each
// carried its own sync.Once, so closing both ends panicked with "close of
// closed channel".
func TestPairBothEndsClose(t *testing.T) {
	a, b := Pair(1)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Idempotence on the same endpoint must hold too.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPairCountedStats is the regression test for the always-zero byte
// counter: the counted pair must report gob-sized byte estimates.
func TestPairCountedStats(t *testing.T) {
	a, _ := PairCounted(4)
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i) + 0.5 // non-zero: gob packs zeros into ~1 byte
	}
	d := tensor.FromSlice(8, 8, vals)
	if err := a.Send(d); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(d); err != nil {
		t.Fatal(err)
	}
	msgs, bytes := a.Stats()
	if msgs != 2 {
		t.Fatalf("msgs = %d", msgs)
	}
	// 128 float64s plus gob framing: anything at least the raw payload size
	// is a plausible gob estimate; zero means counting is broken.
	if bytes < 8*64 {
		t.Fatalf("bytes = %d, want a gob-sized estimate ≥ %d", bytes, 8*64)
	}
	// The second identical send must be cheaper than the first (the type
	// descriptor is charged once, as on a real gob stream).
	if bytes >= 2*8*64+1024 {
		t.Fatalf("bytes = %d: type descriptor seems to be charged per message", bytes)
	}
}

// TestPlainPairStatsBytesZero pins the documented default: the uncounted
// pair does not estimate bytes.
func TestPlainPairStatsBytesZero(t *testing.T) {
	a, _ := Pair(4)
	_ = a.Send(tensor.NewDense(4, 4))
	if _, bytes := a.Stats(); bytes != 0 {
		t.Fatalf("uncounted pair reports %d bytes", bytes)
	}
}

func tcpPair(t *testing.T) (Conn, Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			accepted <- nil
			return
		}
		accepted <- NewGobConn(c)
	}()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	if server == nil {
		t.Fatal("accept failed")
	}
	l.Close()
	return server, client
}

func TestGobConnTensorRoundTrip(t *testing.T) {
	s, c := tcpPair(t)
	defer s.Close()
	defer c.Close()

	d := tensor.FromSlice(2, 2, []float64{1, -2, 3.5, 0})
	if err := c.Send(d); err != nil {
		t.Fatal(err)
	}
	v, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*tensor.Dense)
	if !ok || !got.Equal(d, 0) {
		t.Fatalf("got %#v", v)
	}
}

func TestGobConnSparseAndIntMatrix(t *testing.T) {
	s, c := tcpPair(t)
	defer s.Close()
	defer c.Close()

	cs := tensor.NewCSR(2, 4, 2)
	cs.AppendRow([]int{1, 3}, []float64{5, 6})
	cs.AppendRow(nil, nil)
	if err := c.Send(cs); err != nil {
		t.Fatal(err)
	}
	im := tensor.NewIntMatrix(1, 2)
	im.Set(0, 1, 7)
	if err := c.Send(im); err != nil {
		t.Fatal(err)
	}

	v1, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	gotCSR := v1.(*tensor.CSR)
	if !gotCSR.ToDense().Equal(cs.ToDense(), 0) {
		t.Fatal("CSR mismatch over TCP")
	}
	v2, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if v2.(*tensor.IntMatrix).At(0, 1) != 7 {
		t.Fatal("IntMatrix mismatch over TCP")
	}
}

func TestGobConnStatsCountBytes(t *testing.T) {
	s, c := tcpPair(t)
	defer s.Close()
	defer c.Close()
	if err := c.Send(tensor.NewDense(8, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(); err != nil {
		t.Fatal(err)
	}
	msgs, bytes := c.Stats()
	if msgs != 1 || bytes <= 0 {
		t.Fatalf("stats = %d msgs %d bytes", msgs, bytes)
	}
}

// TestGobConnCloseFlushesQueuedSends is the regression test for Close
// dropping queued sends: every Send that returned nil before Close must
// reach the peer. net.Pipe's synchronous writes make the pre-fix loss
// deterministic — the writer goroutine cannot have drained the queue when
// Close lands.
func TestGobConnCloseFlushesQueuedSends(t *testing.T) {
	p1, p2 := net.Pipe()
	sender := NewGobConn(p1)
	receiver := NewGobConn(p2)

	const n = 8
	got := make(chan int, 1)
	go func() {
		count := 0
		for {
			if _, err := receiver.Recv(); err != nil {
				got <- count
				return
			}
			count++
		}
	}()
	for i := 0; i < n; i++ {
		if err := sender.Send(tensor.NewDense(16, 16)); err != nil {
			t.Fatal(err)
		}
	}
	sender.Close() // must drain the queue before tearing down the socket
	if count := <-got; count != n {
		t.Fatalf("receiver got %d of %d messages queued before Close", count, n)
	}
}

// TestGobConnBothEndsClose: closing both endpoints (and re-closing) must not
// panic or hang.
func TestGobConnBothEndsClose(t *testing.T) {
	s, c := tcpPair(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	c.Close()
	if err := s.Send(1); err == nil {
		t.Fatal("Send after close succeeded")
	}
	if _, err := s.Recv(); err != ErrClosed {
		t.Fatalf("Recv after close: %v", err)
	}
}

// TestGobConnSurfacesWriteLoopError is the regression test for silently
// swallowed writer failures: once the socket breaks under the async writer,
// subsequent Send and Recv calls must report it instead of queueing into the
// void forever.
func TestGobConnSurfacesWriteLoopError(t *testing.T) {
	p1, p2 := net.Pipe()
	g := NewGobConn(p1)
	p2.Close() // break the socket under the writer

	var err error
	deadline := time.After(5 * time.Second)
	for err == nil {
		select {
		case <-deadline:
			t.Fatal("Send never surfaced the writeLoop error")
		default:
		}
		err = g.Send(tensor.NewDense(2, 2))
		time.Sleep(time.Millisecond)
	}
	if errors.Is(err, ErrClosed) {
		t.Fatalf("got ErrClosed, want the underlying write error")
	}
	if !strings.Contains(err.Error(), "send") {
		t.Fatalf("err = %v", err)
	}
	// Recv must report the same root cause rather than a bare decode error.
	if _, rerr := g.Recv(); rerr == nil || !strings.Contains(rerr.Error(), "send") {
		t.Fatalf("Recv after writer failure: %v", rerr)
	}
}

// TestGobConnPackedMatrixRoundTrip ships a packed ciphertext matrix over a
// real TCP connection: the packed federated layers must survive the gob
// transport, not just the in-process channel pair.
func TestGobConnPackedMatrixRoundTrip(t *testing.T) {
	s, c := tcpPair(t)
	defer s.Close()
	defer c.Close()

	sk, err := paillier.GenerateKey(paillier.Rand, 512)
	if err != nil {
		t.Fatal(err)
	}
	d := tensor.FromSlice(2, 6, []float64{1, -2, 3.5, 0, -0.25, 7, 0.5, -1, 2, 4, -8, 0.125})
	m := hetensor.PackEncrypt(&sk.PublicKey, d, 1)
	if err := c.Send(m); err != nil {
		t.Fatal(err)
	}
	v, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*hetensor.PackedMatrix)
	if !ok {
		t.Fatalf("got %T", v)
	}
	if dec := hetensor.DecryptPacked(sk, got); !dec.Equal(d, 1e-6) {
		t.Fatalf("packed round trip decrypts to %v", dec.Data)
	}
}
