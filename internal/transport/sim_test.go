package transport

import (
	"testing"
	"time"

	"blindfl/internal/tensor"
)

func TestSimPairRoundTripAndStats(t *testing.T) {
	a, b := SimPair(8, 0, 0) // no latency, infinite bandwidth
	d := tensor.FromSlice(1, 2, []float64{1, 2})
	if err := a.Send(d); err != nil {
		t.Fatal(err)
	}
	v, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(*tensor.Dense); !got.Equal(d, 0) {
		t.Fatalf("got %#v", v)
	}
	msgs, bytes := a.Stats()
	if msgs != 1 || bytes < 16 {
		t.Fatalf("stats = %d msgs %d bytes", msgs, bytes)
	}
}

func TestSimPairAppliesLatency(t *testing.T) {
	const lat = 30 * time.Millisecond
	a, b := SimPair(8, lat, 0)
	if err := a.Send(1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e < lat/2 {
		t.Fatalf("message arrived after %v, want ≈%v of propagation delay", e, lat)
	}
}

func TestSimPairBandwidthSerializesBigMessages(t *testing.T) {
	// 8 KiB at 1 MiB/s ≈ 8 ms of transfer per message; two messages share
	// the direction's line, so the second arrives ≥ twice that after send.
	a, b := SimPair(8, 0, 1<<20)
	big := tensor.NewDense(32, 32)
	start := time.Now()
	if err := a.Send(big); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(big); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if e := time.Since(start); e < 12*time.Millisecond {
		t.Fatalf("two 8 KiB messages crossed a 1 MiB/s line in %v", e)
	}
}

func TestSimPairClose(t *testing.T) {
	a, b := SimPair(1, 0, 0)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil { // both ends: must not panic
		t.Fatal(err)
	}
	if err := a.Send(1); err != ErrClosed {
		t.Fatalf("Send after close: %v", err)
	}
	if _, err := b.Recv(); err != ErrClosed {
		t.Fatalf("Recv after close: %v", err)
	}
}

func TestWireSizeCoversProtocolTypes(t *testing.T) {
	if n := WireSize(tensor.NewDense(4, 4).RowSlice(0, 4)); n < 8*16 {
		t.Fatalf("dense wire size %d", n)
	}
	if n := WireSize(&StreamHeader{}); n <= 0 {
		t.Fatalf("header wire size %d", n)
	}
	if n := WireSize(&StreamChunk{V: tensor.NewDense(2, 2)}); n < 8*4 {
		t.Fatalf("chunk wire size %d", n)
	}
	if n := WireSize(struct{}{}); n <= 0 {
		t.Fatalf("fallback wire size %d", n)
	}
}
