package transport

import (
	"errors"
	"testing"
	"time"

	"blindfl/internal/tensor"
)

// Deadline and liveness suite: a hung-but-open peer must become a typed
// ErrTimeout within a bounded multiple of the configured deadline, a slow
// but demonstrably alive peer (heartbeating) must never time out, and the
// deadline layer must be transparent to ordinary traffic. The control-plane
// fault tests pin the per-class contract: a corrupted control envelope is a
// typed ErrCorrupt, a dropped one either hangs into the deadline (headers)
// or is absorbed without damage (acks).

// TestDeadlineRecvTimesOutOnHungPeer pins the liveness bound: a receiver
// whose peer goes permanently silent gets a typed ErrTimeout, and gets it
// within twice the configured deadline — not an eternal block.
func TestDeadlineRecvTimesOutOnHungPeer(t *testing.T) {
	const deadline = 200 * time.Millisecond
	_, cb := Pair(4)
	dc := NewDeadlineConn(cb, 0, deadline, 0)
	start := time.Now()
	_, err := dc.Recv()
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed < deadline/2 {
		t.Fatalf("timed out after %v, before the %v deadline could have expired", elapsed, deadline)
	}
	if elapsed > 2*deadline {
		t.Fatalf("hung-peer Recv took %v, want within 2x the %v deadline", elapsed, deadline)
	}
}

// TestDeadlineTimeoutIsStickyAndFailStop: after a deadline violation the
// conn is poisoned — later operations keep failing typed instead of reading
// from a session that lost its liveness guarantee.
func TestDeadlineTimeoutIsStickyAndFailStop(t *testing.T) {
	ca, cb := Pair(4)
	dc := NewDeadlineConn(cb, 0, 50*time.Millisecond, 0)
	if _, err := dc.Recv(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if _, err := dc.Recv(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Recv after timeout = %v, want sticky ErrTimeout", err)
	}
	if err := dc.Send(1); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Send after timeout = %v, want sticky ErrTimeout", err)
	}
	// Fail-stop closed the inner conn, so the peer unblocks with ErrClosed
	// instead of waiting on a session that already gave up.
	if err := ca.Send(2); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer Send after fail-stop = %v, want ErrClosed", err)
	}
}

// TestDeadlineHeartbeatKeepsSlowPeerAlive: the receive deadline is a
// liveness bound, not a latency bound. A peer that computes for longer than
// the deadline but heartbeats stays alive, and the probes never surface as
// application messages.
func TestDeadlineHeartbeatKeepsSlowPeerAlive(t *testing.T) {
	ca, cb := Pair(16)
	sender := NewDeadlineConn(ca, 0, 0, 25*time.Millisecond)
	receiver := NewDeadlineConn(cb, 0, 120*time.Millisecond, 0)
	go func() {
		time.Sleep(400 * time.Millisecond) // well past the receive deadline
		sender.Send(tensor.FromSlice(1, 1, []float64{42}))
	}()
	v, err := receiver.Recv()
	if err != nil {
		t.Fatalf("Recv on a heartbeating conn failed: %v", err)
	}
	m, ok := v.(*tensor.Dense)
	if !ok || m.Data[0] != 42 {
		t.Fatalf("Recv = %v, want the application message, not a probe", v)
	}
}

// TestDeadlineSendTimesOutOnStalledPeer: a Send that cannot hand its message
// to the transport (peer not draining, buffer full) fails typed instead of
// blocking forever.
func TestDeadlineSendTimesOutOnStalledPeer(t *testing.T) {
	ca, _ := Pair(1)
	dc := NewDeadlineConn(ca, 50*time.Millisecond, 0, 0)
	if err := dc.Send(1); err != nil { // fills the buffer
		t.Fatal(err)
	}
	err := dc.Send(2) // nobody drains: must time out
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// TestDeadlinePassesOrdinaryTraffic: with live traffic under the deadline,
// the wrapper is transparent in both directions and Stats pass through.
func TestDeadlinePassesOrdinaryTraffic(t *testing.T) {
	ca, cb := Pair(16)
	da := NewDeadlineConn(ca, time.Second, time.Second, 0)
	db := NewDeadlineConn(cb, time.Second, time.Second, 0)
	for i := 0; i < 5; i++ {
		if err := da.Send(i); err != nil {
			t.Fatal(err)
		}
		v, err := db.Recv()
		if err != nil || v.(int) != i {
			t.Fatalf("Recv = %v, %v, want %d", v, err, i)
		}
		if err := db.Send(-i); err != nil {
			t.Fatal(err)
		}
		v, err = da.Recv()
		if err != nil || v.(int) != -i {
			t.Fatalf("Recv = %v, %v, want %d", v, err, -i)
		}
	}
	if msgs, _ := da.Stats(); msgs != 5 {
		t.Fatalf("Stats = %d msgs, want 5", msgs)
	}
}

// TestFaultCtrlFlipHeaderFailsTyped: a control-plane flip on a stream header
// keeps the now-stale checksum, so the receiver must reject the stream with
// the typed integrity error, never assemble it under a corrupted shape.
func TestFaultCtrlFlipHeaderFailsTyped(t *testing.T) {
	ca, cb := Pair(16)
	fc := NewFaultConn(ca, 701, "ctrl-flip-header", FaultPlan{CtrlFlipProb: 1, MaxFaults: 1})
	go func() {
		src := tensor.FromSlice(2, 1, []float64{1, 2})
		SendStream(fc, 0, 2, 1, 1, func(int) (any, error) { return src, nil })
	}()
	_, err := RecvStream(cb, 0, func(*StreamHeader, int, any) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if fc.Injected().CtrlFlips != 1 {
		t.Fatalf("injected = %+v, want exactly one control flip", fc.Injected())
	}
}

// TestFaultCtrlDropHeaderTimesOutUnderDeadline: a dropped stream header
// whose sender then waits on the reply hangs the receiver — the failure mode
// the deadline layer exists for. The wrapped receiver must surface a typed
// ErrTimeout within 2x the deadline.
func TestFaultCtrlDropHeaderTimesOutUnderDeadline(t *testing.T) {
	const deadline = 200 * time.Millisecond
	ca, cb := Pair(16)
	fc := NewFaultConn(ca, 702, "ctrl-drop-header", FaultPlan{CtrlDropProb: 1, MaxFaults: 1})
	dc := NewDeadlineConn(cb, 0, deadline, 0)
	if err := fc.Send((&StreamHeader{Seq: 0, Rows: 2, Cols: 1, Chunks: 1}).seal()); err != nil {
		t.Fatal(err) // dropped on the wire; the sender now waits for a reply
	}
	start := time.Now()
	_, err := RecvStream(dc, 0, func(*StreamHeader, int, any) error { return nil })
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed > 2*deadline {
		t.Fatalf("dropped-header hang surfaced after %v, want within 2x the %v deadline", elapsed, deadline)
	}
	if fc.Injected().CtrlDrops != 1 {
		t.Fatalf("injected = %+v, want exactly one control drop", fc.Injected())
	}
}

// TestFaultCtrlDropMidStreamFailsTyped: when a dropped header is followed by
// further traffic, the receiver sees the stream's chunks without their frame
// — a framing violation that must fail with the typed integrity error, not
// assemble into anything.
func TestFaultCtrlDropMidStreamFailsTyped(t *testing.T) {
	ca, cb := Pair(16)
	fc := NewFaultConn(ca, 705, "ctrl-drop-midstream", FaultPlan{CtrlDropProb: 1, MaxFaults: 1})
	go func() {
		src := tensor.FromSlice(2, 1, []float64{1, 2})
		SendStream(fc, 0, 2, 1, 1, func(int) (any, error) { return src, nil })
	}()
	_, err := RecvStream(cb, 0, func(*StreamHeader, int, any) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if fc.Injected().CtrlDrops != 1 {
		t.Fatalf("injected = %+v, want exactly one control drop", fc.Injected())
	}
}

// streamPayload runs one 2x1 stream from sender to receiver and returns the
// received value and both ends' errors.
func streamPayload(sender, receiver Conn, seq uint64) (*tensor.Dense, error, error) {
	src := tensor.FromSlice(2, 1, []float64{float64(seq) + 1, float64(seq) + 2})
	done := make(chan error, 1)
	go func() {
		done <- SendStream(sender, seq, 2, 1, 1, func(int) (any, error) { return src, nil })
	}()
	var got *tensor.Dense
	_, rerr := RecvStream(receiver, seq, func(_ *StreamHeader, _ int, v any) error {
		got = v.(*tensor.Dense)
		return nil
	})
	return got, rerr, <-done
}

// TestFaultCtrlFlipAckPoisonsSender: a corrupted stream ack cannot be
// attributed to a stream, so acting on it could release or retransmit the
// wrong payloads — the sender must poison itself with the typed integrity
// error the first time it sees one.
func TestFaultCtrlFlipAckPoisonsSender(t *testing.T) {
	ca, cb := Pair(16)
	scA := NewStreamConn(ca)
	fcB := NewFaultConn(cb, 703, "ctrl-flip-ack", FaultPlan{CtrlFlipProb: 1, MaxFaults: 1})
	scB := NewStreamConn(fcB)

	// The stream itself lands intact; only B's fire-and-forget ack is flipped.
	if got, rerr, serr := streamPayload(scA, scB, 0); rerr != nil || serr != nil || got == nil {
		t.Fatalf("stream failed before the ack was even processed: recv %v, send %v", rerr, serr)
	}
	if fcB.Injected().CtrlFlips != 1 {
		t.Fatalf("injected = %+v, want exactly one control flip", fcB.Injected())
	}
	// A's next receive consumes the flipped ack in-line and must poison.
	if err := scB.Send(1); err != nil {
		t.Fatal(err)
	}
	if _, err := scA.Recv(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Recv over a flipped ack = %v, want ErrCorrupt", err)
	}
	if err := scA.Send(2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Send after ack poisoning = %v, want sticky ErrCorrupt", err)
	}
}

// TestFaultCtrlDropAckIsAbsorbed: acks are fire-and-forget; dropping one
// costs the sender its released payload retention but must not corrupt, hang
// or fail anything — later streams keep flowing bit-exactly.
func TestFaultCtrlDropAckIsAbsorbed(t *testing.T) {
	ca, cb := Pair(16)
	scA := NewStreamConn(ca)
	fcB := NewFaultConn(cb, 704, "ctrl-drop-ack", FaultPlan{CtrlDropProb: 1, MaxFaults: 1})
	scB := NewStreamConn(fcB)
	for seq := uint64(0); seq < 3; seq++ {
		got, rerr, serr := streamPayload(scA, scB, seq)
		if rerr != nil || serr != nil {
			t.Fatalf("stream %d failed after a dropped ack: recv %v, send %v", seq, rerr, serr)
		}
		want := []float64{float64(seq) + 1, float64(seq) + 2}
		if got.Data[0] != want[0] || got.Data[1] != want[1] {
			t.Fatalf("stream %d payload = %v, want %v", seq, got.Data, want)
		}
	}
	if fcB.Injected().CtrlDrops != 1 {
		t.Fatalf("injected = %+v, want exactly one control drop", fcB.Injected())
	}
}
