// Control-plane integrity for session setup: Handshake seals a setup message
// (the protocol's public-key exchange, the serve session's restore exchange)
// with the same structural FNV checksum the stream envelopes carry, so a
// corrupted handshake surfaces as a typed ErrCorrupt at setup time instead of
// a garbled key silently entering the homomorphic kernels.
package transport

import (
	"encoding/gob"
	"fmt"
)

func init() {
	gob.Register(&Handshake{})
}

// Handshake is a checksummed setup envelope. V must be a gob-registered,
// Checksum-hashable message (the public keys and matrix types all are).
type Handshake struct {
	V   any
	Sum uint64 // Checksum(V), sealed by the sender
}

// NewHandshake seals v for the wire.
func NewHandshake(v any) *Handshake { return &Handshake{V: v, Sum: Checksum(v)} }

// Verify re-hashes the payload against the seal.
func (h *Handshake) Verify() error {
	if Checksum(h.V) != h.Sum {
		return fmt.Errorf("%w: handshake checksum mismatch", ErrCorrupt)
	}
	return nil
}
