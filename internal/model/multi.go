package model

import (
	"blindfl/internal/core"
	"blindfl/internal/data"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// Multi-party training (paper Appendix C, Algorithm 3): k feature parties,
// each holding a contiguous block of Party A's columns, train against one
// label party that drives all k sessions through a protocol.Group. The
// numeric model families (LR, MLR, MLP) are covered — their source layer is
// the MatMul protocol Algorithm 3 generalizes; the embedding families (WDL,
// DLRM) would additionally need a multi-party Embed-MatMul and are rejected.
//
// A 1-party group is *the* two-party protocol (same RNG streams, same
// arithmetic), so TrainFederatedMulti with k=1 reproduces TrainFederated
// bit-exactly; for k>1 the k-session decomposition is lossless to
// fixed-point tolerance against the same training run with the column
// blocks concatenated at a single Party A (the per-session weight pieces
// are fresh random draws, so the trajectories agree in distribution and in
// the reconstructed-weight algebra, not bit for bit).

// multiNumericSrcB adapts the k-session dense and sparse MatMul halves
// behind the same facade as the two-party numericSrcB.
type multiNumericSrcB struct {
	dense  *core.MultiMatMulB
	sparse *core.MultiSparseMatMulB
}

func (s *multiNumericSrcB) forward(p data.Part) *tensor.Dense {
	if s.sparse != nil {
		return s.sparse.Forward(p.Sparse)
	}
	return s.dense.Forward(core.DenseFeatures{M: p.Dense})
}

func (s *multiNumericSrcB) backward(g *tensor.Dense) {
	if s.sparse != nil {
		s.sparse.Backward(g)
		return
	}
	s.dense.Backward(g)
}

func (s *multiNumericSrcB) serveStart() {
	if s.sparse != nil {
		panic("model: the serve path covers dense numeric source layers only")
	}
	s.dense.ServeStart()
}

func (s *multiNumericSrcB) serveForward(x *tensor.Dense) *tensor.Dense {
	return s.dense.ServeForward(x)
}

// NewFedAMulti builds one feature party's model half of a k-party group:
// the ordinary two-party A-half over that party's inA columns, with the
// group's k agreed in the layer Config. Must run concurrently with
// NewFedBMulti on the label party.
func NewFedAMulti(p *protocol.Peer, kind Kind, ds *data.Dataset, h Hyper, inA, k int) *FedA {
	m := &FedA{}
	cfg := coreCfg(kind, ds.Spec.Classes, h)
	cfg.GroupParties = k
	inB := ds.TrainB.NumCols()
	if ds.Spec.Dense() {
		m.num = &numericSrcA{dense: core.NewMatMulA(p, cfg, inA, inB)}
	} else {
		m.num = &numericSrcA{sparse: core.NewSparseMatMulA(p, cfg, inA, inB)}
	}
	return m
}

// NewFedBMulti builds the label party's model half against a k-session
// group: a multi-party numeric source layer under the same plaintext top
// model as the two-party NewFedB. inAs[i] is feature party i's column
// count. Must run concurrently with NewFedAMulti on every feature party.
func NewFedBMulti(g *protocol.Group, kind Kind, ds *data.Dataset, h Hyper, inAs []int) *FedB {
	classes := ds.Spec.Classes
	m := &FedB{kind: kind, classes: classes}
	cfg := coreCfg(kind, classes, h)
	inB := ds.TrainB.NumCols()
	if ds.Spec.Dense() {
		m.num = &multiNumericSrcB{dense: core.NewMultiMatMulB(g, cfg, inAs, inB)}
	} else {
		m.num = &multiNumericSrcB{sparse: core.NewMultiSparseMatMulB(g, cfg, inAs, inB)}
	}
	m.finishTop(kind, classes, h)
	return m
}

// TrainFederatedMulti trains a federated model end to end across a k-party
// in-process group and returns the label party's training history — the
// k-session counterpart of TrainFederated.
//
// Deprecated: use Trainer.Train with PartySet{As: as, B: g}. Kept as a thin
// wrapper for existing callers.
func TrainFederatedMulti(kind Kind, ds *data.Dataset, h Hyper, as []*protocol.Peer, g *protocol.Group) (*History, error) {
	return Trainer{Kind: kind, Hyper: h}.Train(ds, PartySet{As: as, B: g})
}
