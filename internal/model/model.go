// Package model assembles BlindFL's evaluated model families — LR, MLR,
// MLP, WDL and DLRM (paper Sec. 7.1) — in three flavours:
//
//   - federated: source layers from internal/core under a plaintext top
//     model at Party B (TrainFederated);
//   - NonFed-collocated: the same architecture trained in plaintext on the
//     horizontally concatenated features of both parties (TrainCollocated);
//   - NonFed-PartyB: the plaintext architecture on Party B's features only
//     (TrainPartyB).
//
// The three flavours are the systems compared in the paper's Figure 12 and
// Figure 15 lossless-property experiments.
package model

import (
	"fmt"

	"blindfl/internal/engine"
	"blindfl/internal/tensor"
)

// Kind selects a model family.
type Kind string

// The five evaluated model families.
const (
	LR   Kind = "lr"
	MLR  Kind = "mlr"
	MLP  Kind = "mlp"
	WDL  Kind = "wdl"
	DLRM Kind = "dlrm"
)

// ParseKind validates a model name.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case LR, MLR, MLP, WDL, DLRM:
		return Kind(s), nil
	}
	return "", fmt.Errorf("model: unknown kind %q (want lr|mlr|mlp|wdl|dlrm)", s)
}

// UsesEmbedding reports whether the family has a categorical deep part.
func (k Kind) UsesEmbedding() bool { return k == WDL || k == DLRM }

// Hyper carries the training hyper-parameters. The paper's protocol
// (Sec. 7.1) uses LR 0.05, batch 128, embedding dim 8, momentum 0.9. The
// engine knobs (Packed, Stream, Textbook, TableCacheMB, …) live on the
// embedded engine.Options — the single declaration shared with core.Config
// and bench.StepperOpts.
type Hyper struct {
	LR       float64
	Momentum float64
	Batch    int
	Epochs   int
	Hidden   []int // hidden layer widths for MLP and the WDL/DLRM deep part
	EmbDim   int
	Seed     int64

	engine.Options
}

// DefaultHyper returns the paper's protocol settings.
func DefaultHyper() Hyper {
	return Hyper{LR: 0.05, Momentum: 0.9, Batch: 128, Epochs: 10, Hidden: []int{16}, EmbDim: 8, Seed: 1}
}

// History records one training run.
type History struct {
	Losses     []float64 // training loss per iteration
	TestMetric float64
	MetricName string // "auc" or "accuracy"
	TestLogits *tensor.Dense

	// LostSessions[i] reports that session i's connection died mid-run and
	// the run finished on the survivors (Trainer.ContinueOnLoss). Nil when
	// every session survived. A run that lost sessions is still a valid
	// training run over the surviving parties' features, but its metrics are
	// not comparable to a full-group run — callers must surface the loss.
	LostSessions []bool
}

// outDim returns the logit width for a class count.
func outDim(classes int) int {
	if classes == 2 {
		return 1
	}
	return classes
}

// metricName returns the evaluation metric the paper reports for a class
// count: AUC for binary tasks, accuracy for multi-class.
func metricName(classes int) string {
	if classes == 2 {
		return "auc"
	}
	return "accuracy"
}
