package model

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"blindfl/internal/data"
	"blindfl/internal/tensor"
)

// Serve checkpoint format. Trainer writes it after a successful run over a
// serveable model; Predictor (predictor.go) restores a forward-only model
// from it onto fresh protocol sessions. The format bundles every party's
// dense source-layer half (the core-layer gob, including the encrypted
// copies of the peer's weight pieces) with the label party's plaintext head
// parameters — exactly the joint state the single-binary runtime held. The
// gob payload is sealed in the versioned checksum envelope (envelope.go), so
// a truncated or bit-flipped checkpoint file fails with the typed
// ErrBadCheckpoint instead of decoding into garbage.

// fedCheckpoint is the gob root of a serve checkpoint.
type fedCheckpoint struct {
	Kind    Kind
	Classes int
	Hyper   Hyper
	InAs    []int // feature party i's column width, len = number of sessions
	InB     int
	LayerA  [][]byte        // feature party i's MatMulA half (core gob)
	LayerB  [][]byte        // label party's session-i MatMulB half (core gob)
	Head    []*tensor.Dense // head parameters in params() order
}

// ckCapture accumulates the per-party checkpoint pieces from inside the
// training closures. captureA(i, ·) is called once per feature party on
// distinct indices and captureB once, so the slices need no locking; write
// assembles and encodes after the run succeeds. A zero/nil-disabled capture
// is a no-op throughout.
type ckCapture struct {
	ck   *fedCheckpoint
	errA []error
	errB error
}

func newCkCapture(t Trainer, ds *data.Dataset, inAs []int) *ckCapture {
	if t.Checkpoint == nil {
		return &ckCapture{}
	}
	return &ckCapture{
		ck: &fedCheckpoint{
			Kind: t.Kind, Classes: ds.Spec.Classes, Hyper: t.Hyper,
			InAs: inAs, InB: ds.TrainB.NumCols(),
			LayerA: make([][]byte, len(inAs)),
			LayerB: make([][]byte, len(inAs)),
		},
		errA: make([]error, len(inAs)),
	}
}

func (c *ckCapture) captureA(i int, ma *FedA) {
	if c.ck == nil {
		return
	}
	c.ck.LayerA[i], c.errA[i] = saveLayerA(ma)
}

func (c *ckCapture) captureB(mb *FedB) {
	if c.ck == nil {
		return
	}
	var layers [][]byte
	layers, c.errB = saveLayerB(mb)
	if c.errB != nil {
		return
	}
	copy(c.ck.LayerB, layers)
	c.ck.Head = headParams(mb.head)
}

// captureShardB records the sharded label party's pieces: the per-session
// layer halves gathered from the workers (already in global session order)
// plus the root-held head parameters.
func (c *ckCapture) captureShardB(blobs [][]byte, mb *FedB) {
	if c.ck == nil {
		return
	}
	copy(c.ck.LayerB, blobs)
	c.ck.Head = headParams(mb.head)
}

func (c *ckCapture) write(w io.Writer) error {
	if c.ck == nil {
		return nil
	}
	for _, err := range c.errA {
		if err != nil {
			return err
		}
	}
	if c.errB != nil {
		return c.errB
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c.ck); err != nil {
		return fmt.Errorf("model: write checkpoint: %w", err)
	}
	return sealEnvelope(w, buf.Bytes())
}

// saveLayerA serializes a feature party's dense source-layer half.
func saveLayerA(ma *FedA) ([]byte, error) {
	if ma.num == nil || ma.num.dense == nil {
		return nil, fmt.Errorf("model: checkpoint covers dense numeric source layers only")
	}
	var buf bytes.Buffer
	if err := ma.num.dense.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// saveLayerB serializes the label party's dense source-layer half, one blob
// per session.
func saveLayerB(mb *FedB) ([][]byte, error) {
	switch src := mb.num.(type) {
	case *numericSrcB:
		if src.dense == nil {
			return nil, fmt.Errorf("model: checkpoint covers dense numeric source layers only")
		}
		var buf bytes.Buffer
		if err := src.dense.Save(&buf); err != nil {
			return nil, err
		}
		return [][]byte{buf.Bytes()}, nil
	case *multiNumericSrcB:
		if src.dense == nil {
			return nil, fmt.Errorf("model: checkpoint covers dense numeric source layers only")
		}
		out := make([][]byte, src.dense.K())
		for i := range out {
			var buf bytes.Buffer
			if err := src.dense.Sub(i).Save(&buf); err != nil {
				return nil, err
			}
			out[i] = buf.Bytes()
		}
		return out, nil
	}
	return nil, fmt.Errorf("model: unknown source-layer facade %T", mb.num)
}

// headParams clones the head's parameters in params() order.
func headParams(h headB) []*tensor.Dense {
	ps := h.params()
	out := make([]*tensor.Dense, len(ps))
	for i, p := range ps {
		out[i] = p.W.Clone()
	}
	return out
}
