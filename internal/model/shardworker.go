package model

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sync"
	"time"

	"blindfl/internal/core"
	"blindfl/internal/data"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/rng"
	"blindfl/internal/transport"
)

// RunShardWorker runs one shard worker to completion: the connect exchange
// on the control conn, the setup-document fingerprint check, the session
// accepts and handshakes, then the worker's half of the deterministic
// schedule — forward partials up, gradient broadcast down, layer blobs at
// checkpoint epochs — over its session slice. accept yields the feature
// parties' session conns (from a transport.Listener, or an in-process
// harness). skB is this worker's own Paillier key: keys never change
// decrypted values, so each worker process minting its own preserves
// bit-exactness. Every conn the worker touches is owned by one WorkerConns
// teardown, so a failing worker releases the root and its feature parties
// instead of stranding them in Recv.
func RunShardWorker(ctl transport.Conn, accept func() (transport.Conn, error), skB *paillier.PrivateKey) error {
	w := &protocol.WorkerConns{Ctl: ctl}
	defer w.Close()
	link, hello, err := protocol.AcceptShard(ctl)
	if err != nil {
		return err
	}
	plan := protocol.ShardPlan{Sessions: hello.Sessions, Shards: hello.Shards}
	blob, err := link.RecvSetup()
	if err != nil {
		return err
	}
	if blob.Kind != "setup" {
		return fmt.Errorf("model: shard setup document has kind %q, want \"setup\"", blob.Kind)
	}
	var su shardSetup
	if err := gob.NewDecoder(bytes.NewReader(blob.Data)).Decode(&su); err != nil {
		return fmt.Errorf("model: decode shard setup: %w", err)
	}
	// Recompute the schedule fingerprint from the document's contents and
	// echo it: the root refuses a disagreeing worker (ShardGroup.Setup), and
	// AckSetup refuses the root symmetrically, both typed.
	if err := link.AckSetup(su.fingerprint(plan), hello.Fingerprint); err != nil {
		return err
	}
	if len(su.InAs) != plan.Sessions {
		return fmt.Errorf("%w: setup names %d sessions, hello %d", protocol.ErrShardMismatch, len(su.InAs), plan.Sessions)
	}
	if su.Resume && len(su.LayerB) != plan.Sessions {
		return fmt.Errorf("%w: resume setup carries %d layer halves for %d sessions", protocol.ErrShardMismatch, len(su.LayerB), plan.Sessions)
	}
	su.Hyper.Options.Apply()
	fp := hello.Fingerprint
	conns, err := protocol.AcceptSessions(accept, plan, hello.Shard, fp, w)
	if err != nil {
		return err
	}

	h := su.Hyper
	lo, _ := plan.Range(hello.Shard)
	peers := make([]*protocol.Peer, len(conns))
	hsErrs := make(chan error, len(conns))
	for j, c := range conns {
		// The RNG coordinate is (seed, shard session offset, local index):
		// rng.Session folds the offset and the local index into the global
		// session index, so stream j of this worker is exactly stream lo+j of
		// the single-process group, for any shard count.
		p := protocol.NewPeer(protocol.PartyB, c, skB, protocol.ShardSessionRNG(h.Seed, lo, j, protocol.PartyB))
		p.SetStreamIdentity(h.Seed, lo+j)
		p.ChunkRows, p.SpotCheck, p.ANCheck = h.Options.ChunkRows, h.Options.SpotCheck, h.Options.ANCheck
		peers[j] = p
		go func(p *protocol.Peer) { hsErrs <- p.Handshake() }(p)
	}
	var hsErr error
	for range conns {
		if err := <-hsErrs; err != nil && hsErr == nil {
			hsErr = err
		}
	}
	if hsErr != nil {
		return hsErr
	}
	g := protocol.NewGroup(peers)

	var runErr error
	err = protocol.Catch(fmt.Sprintf("shard %d", hello.Shard), func() {
		runErr = shardWorkerLoop(link, g, &su, plan, hello.Shard)
	})
	if err != nil {
		return err
	}
	return runErr
}

// shardWorkerLoop drives the worker's session slice through the full
// deterministic schedule. Protocol failures panic protocol-style (the caller
// runs it under Catch); local failures (layer serialization) return an
// error. The loop mirrors trainLoopB exactly — same batch-order stream, same
// per-epoch re-seeding, same checkpoint-epoch formula — with the head's
// forward/backward replaced by the partials/gradient exchange with the root.
func shardWorkerLoop(link *protocol.ShardLink, g *protocol.Group, su *shardSetup, plan protocol.ShardPlan, shard int) error {
	h := su.Hyper
	lo, hi := plan.Range(shard)
	inAs := su.InAs[lo:hi]
	dense := su.TrainB.Dense != nil
	cfg := coreCfg(su.Kind, su.Classes, h)
	var md *core.MultiMatMulB
	var ms *core.MultiSparseMatMulB
	if su.Resume {
		if !dense {
			return fmt.Errorf("model: resume covers dense numeric source layers only")
		}
		subs := make([]*core.MatMulB, hi-lo)
		loadErrs := make([]error, hi-lo)
		g.ForEach(func(j int, peer *protocol.Peer) {
			sub, err := core.LoadMatMulB(bytes.NewReader(su.LayerB[lo+j]), peer)
			if err != nil {
				loadErrs[j] = err
				return
			}
			subs[j] = sub
		})
		for _, err := range loadErrs {
			if err != nil {
				return err
			}
		}
		md = core.NewMultiMatMulBFrom(g, subs)
		md.ResumeExchange()
	} else if dense {
		md = core.NewMultiMatMulBShard(g, cfg, inAs, su.InB, plan.Sessions)
	} else {
		ms = core.NewMultiSparseMatMulBShard(g, cfg, inAs, su.InB, plan.Sessions)
	}

	rows := su.TrainB.Rows()
	order := rng.New(h.Seed, "batch-order")
	for e := 0; e < su.StartEpoch; e++ {
		data.Shuffle(order, rows)
	}
	for e := su.StartEpoch; e < h.Epochs; e++ {
		g.SeedEpoch(e)
		perm := data.Shuffle(order, rows)
		for _, idx := range batchesOf(perm, h.Batch) {
			p := su.TrainB.Batch(idx)
			if md != nil {
				link.SendParts(md.ForwardParts(core.DenseFeatures{M: p.Dense}))
				md.BackwardTotal(link.RecvGrad(), plan.Sessions)
			} else {
				link.SendParts(ms.ForwardParts(p.Sparse))
				ms.BackwardTotal(link.RecvGrad(), plan.Sessions)
			}
		}
		if su.RunCkpt && ckptDue(e, su.CheckpointEvery, h.Epochs) {
			blobs, err := saveShardLayers(md)
			if err != nil {
				return err
			}
			link.SendLayers(e, blobs)
		}
	}

	if su.ServeEval && md != nil {
		md.ServeStart()
		for _, idx := range data.BatchIndices(su.TestB.Rows(), h.Batch) {
			link.SendShare(md.ServeShareSum(su.TestB.Batch(idx).Dense))
		}
	} else {
		for _, idx := range data.BatchIndices(su.TestB.Rows(), h.Batch) {
			p := su.TestB.Batch(idx)
			if md != nil {
				link.SendParts(md.ForwardParts(core.DenseFeatures{M: p.Dense}))
			} else {
				link.SendParts(ms.ForwardParts(p.Sparse))
			}
		}
	}
	if su.ServeCapture {
		blobs, err := saveShardLayers(md)
		if err != nil {
			return err
		}
		link.SendLayers(-1, blobs)
	}
	return nil
}

// saveShardLayers serializes the worker's per-session B halves, in
// shard-local session order (the root re-slots them by plan range).
func saveShardLayers(md *core.MultiMatMulB) ([][]byte, error) {
	if md == nil {
		return nil, fmt.Errorf("model: checkpoint covers dense numeric source layers only")
	}
	out := make([][]byte, md.K())
	for j := range out {
		var buf bytes.Buffer
		if err := md.Sub(j).Save(&buf); err != nil {
			return nil, err
		}
		out[j] = buf.Bytes()
	}
	return out, nil
}

// ListenAndServeShard runs one shard worker over TCP: listen on addr,
// announce the bound address as a "SHARD_LISTEN host:port" line (how a
// spawning root finds a ":0"-bound worker), take the first conn as the
// control link and every later one as a session conn. deadline > 0 wraps
// every conn in a DeadlineConn with that liveness bound (the dialing root
// must wrap with the same setting — heartbeats are filtered by the receiving
// end, so both ends wrap or neither).
func ListenAndServeShard(addr string, announce io.Writer, skB *paillier.PrivateKey, deadline time.Duration) error {
	ln, err := transport.NewListener(addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	if announce != nil {
		fmt.Fprintf(announce, "SHARD_LISTEN %s\n", ln.Addr())
	}
	wrap := func(c transport.Conn) transport.Conn {
		if deadline <= 0 {
			return c
		}
		return transport.NewDeadlineConn(c, deadline, deadline, deadline/3)
	}
	ctl, err := ln.Accept()
	if err != nil {
		return err
	}
	return RunShardWorker(wrap(ctl), func() (transport.Conn, error) {
		c, err := ln.Accept()
		if err != nil {
			return nil, err
		}
		return wrap(c), nil
	}, skB)
}

// StartShardWorkers starts an in-process worker fleet (one goroutine per
// shard) and returns the dialer to hand a ShardSet, a wait that collects the
// workers' exit errors, and a stop that releases workers still waiting for
// conns (call it on root-side failure paths so wait cannot hang). pair, when
// non-nil, builds each root/worker conn pair — ordinal 0 is the shard's
// control link, later ordinals its session conns in dial order — which is
// where tests interpose FaultConns and benchmarks interpose SimPairs; nil
// means plain buffered in-process pairs.
func StartShardWorkers(shards int, skB *paillier.PrivateKey, pair func(shard, ordinal int) (root, worker transport.Conn)) (dial func(shard int) (transport.Conn, error), wait func() error, stop func()) {
	if pair == nil {
		pair = func(int, int) (transport.Conn, transport.Conn) { return transport.Pair(4096) }
	}
	chans := make([]chan transport.Conn, shards)
	errs := make(chan error, shards)
	for s := 0; s < shards; s++ {
		ch := make(chan transport.Conn, 64)
		chans[s] = ch
		go func(ch chan transport.Conn) {
			ctl, ok := <-ch
			if !ok {
				errs <- fmt.Errorf("model: shard harness stopped before the control conn arrived")
				return
			}
			errs <- RunShardWorker(ctl, func() (transport.Conn, error) {
				c, ok := <-ch
				if !ok {
					return nil, fmt.Errorf("model: shard harness stopped")
				}
				return c, nil
			}, skB)
		}(ch)
	}
	var mu sync.Mutex
	counts := make([]int, shards)
	stopped := false
	dial = func(s int) (transport.Conn, error) {
		mu.Lock()
		if stopped {
			mu.Unlock()
			return nil, fmt.Errorf("model: shard harness stopped")
		}
		ord := counts[s]
		counts[s]++
		mu.Unlock()
		root, worker := pair(s, ord)
		chans[s] <- worker
		return root, nil
	}
	wait = func() error {
		var first error
		for s := 0; s < shards; s++ {
			if err := <-errs; err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	stop = func() {
		mu.Lock()
		defer mu.Unlock()
		if stopped {
			return
		}
		stopped = true
		for _, ch := range chans {
			close(ch)
		}
	}
	return dial, wait, stop
}
