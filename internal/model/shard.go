package model

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"

	"blindfl/internal/core"
	"blindfl/internal/data"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
	"blindfl/internal/transport"
)

// Sharded label party (PR 10): the root process keeps the plaintext head,
// the loss, the optimizer and the training history, while the k sessions'
// B-side protocol halves partition across shard worker processes
// (RunShardWorker, shardworker.go) on the deterministic schedule of
// protocol.ShardPlan. Every process derives the identical per-epoch plan —
// batch permutation, mask streams, checkpoint epochs — from the shared seed
// shipped in the setup document, so no scheduling traffic crosses the shard
// links at all: per batch the workers push their per-session forward
// partials up, the root folds them in global session order (the float sum is
// not associative, so the merge order is part of the schedule), runs the
// head, and broadcasts one gradient back down. The sharded run is
// bit-identical to the single-process Trainer.Train over the same party set,
// for any shard count.

// ShardSet describes the worker fleet a sharded run spans: how many shard
// workers, one Paillier key per feature-party session, and the dialer that
// opens a fresh connection to a shard worker (the control link first, then
// one conn per owned session, all through the same dialer).
type ShardSet struct {
	Shards int
	SKAs   []*paillier.PrivateKey
	Dial   func(shard int) (transport.Conn, error)
}

// shardSetup is the gob document the root ships to every worker over the
// control link (sealed inside a transport.ShardBlob): everything a worker
// needs to derive the deterministic schedule and run its session slice —
// model shape, hyper-parameters (with the engine options embedded), the
// label party's feature parts, and the resume state. Workers slice InAs and
// LayerB by their plan range; TrainB/TestB are whole (every worker replays
// the same batch permutation over the same rows).
type shardSetup struct {
	Kind    Kind
	Classes int
	Hyper   Hyper
	InAs    []int // global per-session feature widths
	InB     int
	TrainB  data.Part
	TestB   data.Part

	StartEpoch      int  // completed epochs to replay through (resume)
	CheckpointEvery int  // run-checkpoint stride (ckptDue)
	RunCkpt         bool // workers send layer blobs at checkpoint epochs
	ServeCapture    bool // workers send final layer blobs for the serve checkpoint
	ServeEval       bool // evaluation runs the exact-integer serve path

	Resume bool
	LayerB [][]byte // resume only: every session's restored B half
}

// fingerprint hashes everything that determines the deterministic schedule:
// the model shape, the full hyper-parameters (seed, batch, epochs, engine
// options), the session/shard plan and the checkpoint plan. The root
// computes it from its Trainer, the worker recomputes it from the decoded
// setup document with this same function, and the two must agree before any
// training traffic flows — so a version-skewed worker whose schedule
// derivation differs, or a worker overriding options locally, fails typed
// with protocol.ErrShardMismatch instead of silently diverging.
func (su *shardSetup) fingerprint(plan protocol.ShardPlan) uint64 {
	f := fnv.New64a()
	fmt.Fprintf(f, "%s|%d|%+v|%v|%d|%d/%d|%d|%d|%v|%v|%v|%v|%016x",
		su.Kind, su.Classes, su.Hyper, su.InAs, su.InB,
		plan.Sessions, plan.Shards, su.StartEpoch, su.CheckpointEvery,
		su.RunCkpt, su.ServeCapture, su.ServeEval, su.Resume,
		su.Hyper.Options.Fingerprint())
	return f.Sum64()
}

// shardSrcB is the root's numeric source-layer facade over the shard group:
// the forward gathers every shard's per-session partials and folds them in
// global session order (exactly the single-process sumInOrder), the backward
// broadcasts the one gradient, and the serve forward folds the exact-integer
// share partials before the single decode. The feature parts the Fed loops
// pass in are ignored — the workers hold the label party's features.
type shardSrcB struct {
	sg *protocol.ShardGroup
}

func (s *shardSrcB) forward(_ data.Part) *tensor.Dense { return foldParts(s.sg.GatherParts()) }

func (s *shardSrcB) backward(g *tensor.Dense) { s.sg.BroadcastGrad(g) }

// serveStart is a no-op at the root: the serve-session weight exchange runs
// between the workers' B halves and the feature parties directly.
func (s *shardSrcB) serveStart() {}

func (s *shardSrcB) serveForward(_ *tensor.Dense) *tensor.Dense {
	return s.sg.GatherShareSum().DecodeTranspose()
}

// foldParts folds per-session forward partials in global session order — the
// fixed merge order that makes the sharded float sum bit-identical to the
// single-process one (core's sumInOrder, applied to gathered partials).
func foldParts(zs []*tensor.Dense) *tensor.Dense {
	var z *tensor.Dense
	for _, zi := range zs {
		if zi == nil {
			continue
		}
		if z == nil {
			z = zi
		} else {
			z.AddInPlace(zi)
		}
	}
	return z
}

// noopSeeder satisfies epochSeeder for the shard root, whose B-side peers
// live in the workers: each worker re-seeds its own session group at every
// epoch boundary (the same g.SeedEpoch call the single-process run makes).
type noopSeeder struct{}

func (noopSeeder) SeedEpoch(int) {}

// TrainSharded runs federated training with the label party sharded across
// the worker fleet and returns the training history — Trainer.Train's
// k-party semantics, bit-identical for any shard count (a 1-shard run is the
// single-process run over one control link). Numeric families only, like
// trainMulti; checkpoints follow the same Serveable rule.
func (t Trainer) TrainSharded(ds *data.Dataset, ss ShardSet) (*History, error) {
	return t.trainSharded(ds, ss, nil)
}

// ResumeSharded restores the newest usable run checkpoint from CheckpointDir
// onto a fresh worker fleet and trains the remaining epochs, bit-identical to
// the uninterrupted run. The fleet's shard count may differ from the
// checkpointed run's (and from an unsharded run's): every per-session stream
// is a pure function of the global session index, so re-partitioning the
// sessions across workers never moves a mask stream, and the checkpoint
// stores per-session layer halves that re-slice cleanly.
func (t Trainer) ResumeSharded(ds *data.Dataset, ss ShardSet) (*History, error) {
	if t.CheckpointDir == "" {
		return nil, fmt.Errorf("model: ResumeSharded needs CheckpointDir")
	}
	ck, err := latestRunCheckpoint(t.CheckpointDir)
	if err != nil {
		return nil, err
	}
	return t.trainSharded(ds, ss, ck)
}

func (t Trainer) trainSharded(ds *data.Dataset, ss ShardSet, ck *runCheckpoint) (*History, error) {
	kind, h, k := t.Kind, t.Hyper, len(ss.SKAs)
	if k == 0 || ss.Dial == nil {
		return nil, fmt.Errorf("model: TrainSharded needs feature-party keys and a shard dialer")
	}
	if kind.UsesEmbedding() {
		return nil, fmt.Errorf("model: sharded training covers the numeric families lr|mlr|mlp; %s needs a multi-party Embed-MatMul layer", kind)
	}
	if cols := ds.TrainA.NumCols(); k > cols {
		return nil, fmt.Errorf("model: cannot split %d feature columns across %d parties", cols, k)
	}
	if (t.Checkpoint != nil || t.CheckpointDir != "") && !Serveable(kind, ds) {
		return nil, fmt.Errorf("model: checkpoints cover the dense numeric families (lr|mlr|mlp on dense data); %s is not serveable here", t.Kind)
	}
	plan := protocol.ShardPlan{Sessions: k, Shards: ss.Shards}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	trainAs := data.SplitCols(ds.TrainA, k)
	testAs := data.SplitCols(ds.TestA, k)
	inAs := make([]int, k)
	for i, p := range trainAs {
		inAs[i] = p.NumCols()
	}
	start := 0
	if ck != nil {
		if err := t.resumeCompat(ck, k); err != nil {
			return nil, err
		}
		for i, p := range trainAs {
			if p.NumCols() != ck.InAs[i] {
				return nil, fmt.Errorf("model: feature party %d has %d columns, checkpoint wants %d", i, p.NumCols(), ck.InAs[i])
			}
		}
		start = ck.Epoch
	}

	su := &shardSetup{
		Kind: kind, Classes: ds.Spec.Classes, Hyper: h,
		InAs: inAs, InB: ds.TrainB.NumCols(),
		TrainB: ds.TrainB, TestB: ds.TestB,
		StartEpoch:      start,
		CheckpointEvery: t.CheckpointEvery,
		RunCkpt:         t.CheckpointDir != "",
		ServeCapture:    t.Checkpoint != nil,
		ServeEval:       Serveable(kind, ds),
	}
	if ck != nil {
		su.Resume = true
		su.LayerB = ck.LayerB
	}
	fp := su.fingerprint(plan)
	var doc bytes.Buffer
	if err := gob.NewEncoder(&doc).Encode(su); err != nil {
		return nil, fmt.Errorf("model: encode shard setup: %w", err)
	}

	sg, err := protocol.ConnectShards(plan, fp, ss.Dial)
	if err != nil {
		return nil, err
	}
	for s := 0; s < plan.Shards; s++ {
		if err := sg.Setup(s, "setup", doc.Bytes(), fp); err != nil {
			sg.Close()
			return nil, err
		}
	}
	conns, err := sg.DialSessions(fp, ss.Dial)
	if err != nil {
		return nil, err
	}
	as := make([]*protocol.Peer, k)
	hsErrs := make(chan error, k)
	for i, c := range conns {
		a := protocol.NewPeer(protocol.PartyA, c, ss.SKAs[i], protocol.SessionRNG(h.Seed, i, protocol.PartyA))
		a.SetStreamIdentity(h.Seed, i)
		a.ChunkRows, a.SpotCheck, a.ANCheck = h.Options.ChunkRows, h.Options.SpotCheck, h.Options.ANCheck
		as[i] = a
		go func(a *protocol.Peer) { hsErrs <- a.Handshake() }(a)
	}
	var hsErr error
	for i := 0; i < k; i++ {
		if err := <-hsErrs; err != nil && hsErr == nil {
			hsErr = err
		}
	}
	if hsErr != nil {
		sg.Close()
		return nil, hsErr
	}

	hist := &History{MetricName: metricName(ds.Spec.Classes)}
	if ck != nil {
		hist.Losses = append([]float64(nil), ck.Losses...)
	}
	cc := newCkCapture(t, ds, inAs)
	rc := newRunCkpt(t, ds, inAs)
	if rc != nil {
		rc.shards = plan.Shards
	}

	restoreErrA := make([]error, k)
	var rootErr error
	err = protocol.RunShardRoot(as, sg,
		func(i int) error {
			err := as[i].Run(func() {
				var ma *FedA
				if ck == nil {
					ma = NewFedAMulti(as[i], kind, ds, h, inAs[i], k)
				} else {
					la, err := core.LoadMatMulA(bytes.NewReader(ck.LayerA[i]), as[i])
					if err != nil {
						restoreErrA[i] = err
						return
					}
					la.ResumeExchange()
					ma = &FedA{num: &numericSrcA{dense: la}}
				}
				trainLoopA(as[i], ma, trainAs[i], h, start, func(e int) { rc.depositA(e, i, ma) })
				evalA(ma, kind, ds, testAs[i], h.Batch)
				cc.captureA(i, ma)
			})
			if restoreErrA[i] != nil {
				return restoreErrA[i]
			}
			return err
		},
		func() error {
			err := protocol.Catch("PartyB", func() {
				var mb *FedB
				if ck == nil {
					mb = &FedB{kind: kind, classes: ds.Spec.Classes, num: &shardSrcB{sg: sg}}
					mb.finishTop(kind, ds.Spec.Classes, h)
				} else {
					m, err := restoredFedB(ck, &shardSrcB{sg: sg})
					if err != nil {
						rootErr = err
						return
					}
					mb = m
				}
				trainLoopB(noopSeeder{}, mb, ds, h, hist, start, func(e int) {
					if rc.due(e) {
						rc.depositShardB(e, sg.GatherLayers(e), mb, hist.Losses)
					}
				})
				hist.TestLogits = evalB(mb, ds, h)
				if t.Checkpoint != nil {
					cc.captureShardB(sg.GatherLayers(-1), mb)
				}
			})
			if rootErr != nil {
				return rootErr
			}
			return err
		})
	for i := 0; i < k; i++ {
		if restoreErrA[i] != nil {
			return nil, restoreErrA[i]
		}
	}
	if rootErr != nil {
		return nil, rootErr
	}
	if err != nil {
		return nil, err
	}
	sg.Close()
	if err := rc.finish(); err != nil {
		return nil, err
	}
	if err := cc.write(t.Checkpoint); err != nil {
		return nil, err
	}
	finishHistory(hist, ds)
	return hist, nil
}
