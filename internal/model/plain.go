package model

import (
	"blindfl/internal/data"
	"blindfl/internal/nn"
	"blindfl/internal/rng"
	"blindfl/internal/tensor"
)

// plainModel is the non-federated mirror of a federated architecture: a
// first linear layer over the numeric features (the plaintext analogue of
// the MatMul source layer), an optional pair of embedding tables with a
// linear projection (the analogue of Embed-MatMul), and the same head.
type plainModel struct {
	kind    Kind
	classes int

	numW *nn.Param // numeric first-layer weights (in×out), no bias
	embA *nn.Embedding
	embB *nn.Embedding
	embW *nn.Param // projection of concatenated embeddings (fields·dim×out)

	head headB
	opt  *nn.SGD

	// forward caches
	xNum  *tensor.Dense
	xSpr  *tensor.CSR
	eCat  *tensor.Dense
	fldsA int
}

// plainInput is one party-view (or the collocated view) of a batch.
type plainInput struct {
	Num  *tensor.Dense
	Spr  *tensor.CSR
	CatA *tensor.IntMatrix // nil when absent
	CatB *tensor.IntMatrix
}

func newPlainModel(kind Kind, classes, numIn, catFieldsA, catFieldsB, vocab int, h Hyper) *plainModel {
	bottom := rng.New(h.Seed, "bottom-init")
	m := &plainModel{kind: kind, classes: classes, fldsA: catFieldsA}
	out := outDim(classes)
	srcOut := sourceOut(kind, classes, h)
	m.numW = nn.NewParam(tensor.RandDense(bottom, numIn, srcOut, 0.1))

	if kind.UsesEmbedding() {
		m.embA = nn.NewEmbedding(bottom, vocab, h.EmbDim, 0.1)
		m.embB = nn.NewEmbedding(bottom, vocab, h.EmbDim, 0.1)
		m.embW = nn.NewParam(tensor.RandDense(bottom, (catFieldsA+catFieldsB)*h.EmbDim, sourceOutEmbed(h), 0.1))
	}

	topRng := rng.New(h.Seed, "head-init")
	switch kind {
	case LR, MLR:
		m.head = &biasHead{bias: nn.NewBias(out)}
	case MLP:
		m.head = &mlpHead{seq: buildMLPTop(topRng, firstHidden(h), restHidden(h), out)}
	case WDL:
		m.head = &wdlHead{deep: buildMLPTop(topRng, sourceOutEmbed(h), restHidden(h), out)}
	case DLRM:
		m.head = &dlrmHead{relu: &nn.ReLU{}, seq: nn.NewSequential(nn.NewLinear(topRng, firstHidden(h), out))}
	}

	params := []*nn.Param{m.numW}
	if m.embW != nil {
		params = append(params, m.embW, m.embA.Q, m.embB.Q)
	}
	params = append(params, m.head.params()...)
	m.opt = nn.NewSGD(h.LR, h.Momentum, params)
	return m
}

func (m *plainModel) forward(in plainInput) *tensor.Dense {
	m.xNum, m.xSpr = in.Num, in.Spr
	var zNum *tensor.Dense
	if in.Spr != nil {
		zNum = in.Spr.MatMul(m.numW.W)
	} else {
		zNum = in.Num.MatMul(m.numW.W)
	}
	var zEmb *tensor.Dense
	if m.embA != nil {
		eA := m.embA.ForwardIdx(in.CatA)
		eB := m.embB.ForwardIdx(in.CatB)
		m.eCat = tensor.HStack(eA, eB)
		zEmb = m.eCat.MatMul(m.embW.W)
	}
	return m.head.forward(zNum, zEmb)
}

func (m *plainModel) backward(gradLogits *tensor.Dense) {
	gNum, gEmb := m.head.backward(gradLogits)
	if m.xSpr != nil {
		m.numW.Grad.AddInPlace(m.xSpr.TransposeMatMul(gNum))
	} else {
		m.numW.Grad.AddInPlace(m.xNum.TransposeMatMul(gNum))
	}
	if gEmb != nil {
		m.embW.Grad.AddInPlace(m.eCat.TransposeMatMul(gEmb))
		gE := gEmb.MatMulTranspose(m.embW.W)
		dim := m.embA.Dim
		m.embA.BackwardIdx(gE.SliceCols(0, m.fldsA*dim))
		m.embB.BackwardIdx(gE.SliceCols(m.fldsA*dim, gE.Cols))
	}
}

func (m *plainModel) lossGrad(logits *tensor.Dense, y []int) (float64, *tensor.Dense) {
	if m.classes == 2 {
		return nn.BCEWithLogits(logits, y)
	}
	return nn.SoftmaxCE(logits, y)
}

func (m *plainModel) step(in plainInput, y []int) float64 {
	logits := m.forward(in)
	loss, grad := m.lossGrad(logits, y)
	m.opt.ZeroGrad()
	m.backward(grad)
	m.opt.Step()
	return loss
}

// collocatedInput joins both parties' views into one.
func collocatedInput(a, b data.Part, idx []int) plainInput {
	ab, bb := a.Batch(idx), b.Batch(idx)
	in := plainInput{CatA: ab.Cat, CatB: bb.Cat}
	if ab.Sparse != nil {
		in.Spr = hstackCSR(ab.Sparse, bb.Sparse)
	} else {
		in.Num = tensor.HStack(ab.Dense, bb.Dense)
	}
	return in
}

// partyBInput uses Party B's view only; the categorical fields of A are
// absent so the B table sees only its own fields.
func partyBInput(b data.Part, idx []int) plainInput {
	bb := b.Batch(idx)
	in := plainInput{Num: bb.Dense, Spr: bb.Sparse}
	if bb.Cat != nil {
		// Model is built with catFieldsA = 0; all fields route to CatB.
		in.CatA = tensor.NewIntMatrix(bb.Cat.Rows, 0)
		in.CatB = bb.Cat
	}
	return in
}

// hstackCSR concatenates two CSR matrices horizontally.
func hstackCSR(a, b *tensor.CSR) *tensor.CSR {
	out := tensor.NewCSR(a.Rows, a.Cols+b.Cols, a.NNZ()+b.NNZ())
	for i := 0; i < a.Rows; i++ {
		ca, va := a.RowNNZ(i)
		cb, vb := b.RowNNZ(i)
		cols := make([]int, 0, len(ca)+len(cb))
		vals := make([]float64, 0, len(ca)+len(cb))
		cols = append(cols, ca...)
		vals = append(vals, va...)
		for k, c := range cb {
			cols = append(cols, c+a.Cols)
			vals = append(vals, vb[k])
		}
		out.AppendRow(cols, vals)
	}
	return out
}

// trainPlain runs the shared plaintext loop.
func trainPlain(m *plainModel, mkBatch func(idx []int) plainInput, y []int, n int,
	testIn func() []plainInput, testY []int, classes int, h Hyper) *History {

	hist := &History{MetricName: metricName(classes)}
	order := rng.New(h.Seed, "batch-order")
	for e := 0; e < h.Epochs; e++ {
		perm := data.Shuffle(order, n)
		for _, idx := range batchesOf(perm, h.Batch) {
			hist.Losses = append(hist.Losses, m.step(mkBatch(idx), gather(y, idx)))
		}
	}
	var rows []*tensor.Dense
	for _, in := range testIn() {
		rows = append(rows, m.forward(in))
	}
	hist.TestLogits = vstack(rows)
	if classes == 2 {
		hist.TestMetric = nn.AUC(nn.Scores(hist.TestLogits), testY)
	} else {
		hist.TestMetric = nn.Accuracy(hist.TestLogits, testY)
	}
	return hist
}

// TrainCollocated trains the plaintext architecture on the virtually joined
// features of both parties — the paper's NonFed-collocated upper baseline.
func TrainCollocated(kind Kind, ds *data.Dataset, h Hyper) *History {
	fldsA, fldsB := 0, 0
	if ds.TrainA.Cat != nil {
		fldsA, fldsB = ds.TrainA.Cat.Cols, ds.TrainB.Cat.Cols
	}
	m := newPlainModel(kind, ds.Spec.Classes, ds.TrainA.NumCols()+ds.TrainB.NumCols(),
		fldsA, fldsB, ds.Spec.CatVocab, h)
	return trainPlain(m,
		func(idx []int) plainInput { return collocatedInput(ds.TrainA, ds.TrainB, idx) },
		ds.TrainY, ds.TrainA.Rows(),
		func() []plainInput {
			var out []plainInput
			for _, idx := range data.BatchIndices(ds.TestA.Rows(), h.Batch) {
				out = append(out, collocatedInput(ds.TestA, ds.TestB, idx))
			}
			return out
		},
		ds.TestY, ds.Spec.Classes, h)
}

// TrainPartyB trains the plaintext architecture on Party B's features only —
// the paper's NonFed-Party B lower baseline.
func TrainPartyB(kind Kind, ds *data.Dataset, h Hyper) *History {
	fldsB := 0
	if ds.TrainB.Cat != nil {
		fldsB = ds.TrainB.Cat.Cols
	}
	m := newPlainModel(kind, ds.Spec.Classes, ds.TrainB.NumCols(), 0, fldsB, ds.Spec.CatVocab, h)
	return trainPlain(m,
		func(idx []int) plainInput { return partyBInput(ds.TrainB, idx) },
		ds.TrainY, ds.TrainB.Rows(),
		func() []plainInput {
			var out []plainInput
			for _, idx := range data.BatchIndices(ds.TestB.Rows(), h.Batch) {
				out = append(out, partyBInput(ds.TestB, idx))
			}
			return out
		},
		ds.TestY, ds.Spec.Classes, h)
}
