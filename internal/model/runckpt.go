package model

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"

	"blindfl/internal/core"
	"blindfl/internal/data"
	"blindfl/internal/nn"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// Run checkpoints: durable mid-training snapshots a crashed run resumes
// from, bit-exactly. A run checkpoint extends the serve-checkpoint bundle
// with the training-only state — the completed-epoch counter, the loss
// history prefix, the head optimizer's momentum buffers, and the engine
// options fingerprint (a resume under a different engine configuration is
// refused up front). The encrypted weight-piece copies inside the layer
// gobs are stale after a restart — Paillier keys are per-process — so
// Resume re-runs the initialization exchange from the restored plaintext
// pieces (core ResumeExchange); fresh encryption randomness does not change
// the decrypted values, and the mask streams are re-derived per epoch
// (protocol.Peer.SeedEpoch), so the resumed trajectory is the uninterrupted
// run's, bit for bit.

// runCheckpoint is the gob root of a run checkpoint file.
type runCheckpoint struct {
	Kind        Kind
	Classes     int
	Hyper       Hyper
	InAs        []int
	InB         int
	Epoch       int       // completed epochs at capture time
	Losses      []float64 // per-iteration loss prefix through Epoch
	LayerA      [][]byte  // feature party i's MatMulA half (core gob)
	LayerB      [][]byte  // label party's session-i MatMulB half (core gob)
	Head        []*tensor.Dense
	HeadMom     []*tensor.Dense // head optimizer momentum, params() order
	Fingerprint uint64          // engine.Options.Fingerprint() of the run

	// Shards records the worker count of the sharded run that wrote the
	// checkpoint (0: single-process). Informational only — the layer halves
	// are stored per *session*, and every per-session stream is a pure
	// function of the global session index, so a checkpoint resumes onto any
	// shard count (including unsharded) bit-exactly.
	Shards int
}

// runCkpt collects the per-party deposits for each checkpointed epoch and
// writes the assembled file once all k+1 arrive. The training closures run
// concurrently (one goroutine per party), so the collector locks; a nil
// collector (CheckpointDir unset) is a no-op throughout. Write errors are
// recorded and surfaced once by finish — a failing checkpoint disk should
// not tear down an otherwise healthy training run mid-epoch.
type runCkpt struct {
	t      Trainer
	ds     *data.Dataset
	inAs   []int
	shards int // worker count of a sharded run (0: single-process)

	mu   sync.Mutex
	pend map[int]*runCheckpoint
	n    map[int]int
	err  error
}

func newRunCkpt(t Trainer, ds *data.Dataset, inAs []int) *runCkpt {
	if t.CheckpointDir == "" {
		return nil
	}
	return &runCkpt{t: t, ds: ds, inAs: inAs,
		pend: make(map[int]*runCheckpoint), n: make(map[int]int)}
}

// due reports whether the epoch-e boundary deposits a checkpoint: every
// CheckpointEvery epochs, excluding the final epoch (the run's end state is
// the serve checkpoint's job; a run checkpoint there could never be
// resumed, Epochs being already reached).
func (c *runCkpt) due(e int) bool {
	if c == nil {
		return false
	}
	return ckptDue(e, c.t.CheckpointEvery, c.t.Hyper.Epochs)
}

// ckptDue is the checkpoint-epoch formula shared by the root collector and
// the shard workers: both sides must agree on which epoch boundaries deposit
// layer halves, with no coordination message — it is part of the
// deterministic schedule (values of every below 1 mean every epoch).
func ckptDue(e, every, epochs int) bool {
	if every < 1 {
		every = 1
	}
	return (e+1)%every == 0 && e+1 < epochs
}

// depositA adds feature party i's layer half for epoch e.
func (c *runCkpt) depositA(e, i int, ma *FedA) {
	if !c.due(e) {
		return
	}
	blob, err := saveLayerA(ma)
	c.add(e, err, func(ck *runCheckpoint) { ck.LayerA[i] = blob })
}

// depositB adds the label party's halves, head, momentum and loss prefix
// for epoch e. losses is read under the collector lock inside add — the
// label party goroutine owns it, and it appends only between deposits.
func (c *runCkpt) depositB(e int, mb *FedB, losses []float64) {
	if !c.due(e) {
		return
	}
	blobs, err := saveLayerB(mb)
	c.add(e, err, func(ck *runCheckpoint) {
		copy(ck.LayerB, blobs)
		ck.Head = headParams(mb.head)
		ck.HeadMom = mb.opt.MomentumState()
		ck.Losses = append([]float64(nil), losses...)
	})
}

// depositShardB adds the sharded label party's contribution for epoch e: the
// layer halves gathered from the workers (already in global session order)
// plus the root-held head, momentum and loss prefix — one deposit, like the
// single-process depositB, so the k+1 arrival count is unchanged.
func (c *runCkpt) depositShardB(e int, blobs [][]byte, mb *FedB, losses []float64) {
	if !c.due(e) {
		return
	}
	c.add(e, nil, func(ck *runCheckpoint) {
		ck.Shards = c.shards
		copy(ck.LayerB, blobs)
		ck.Head = headParams(mb.head)
		ck.HeadMom = mb.opt.MomentumState()
		ck.Losses = append([]float64(nil), losses...)
	})
}

func (c *runCkpt) add(e int, err error, fill func(*runCheckpoint)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		if c.err == nil {
			c.err = err
		}
		return
	}
	ck := c.pend[e]
	if ck == nil {
		ck = &runCheckpoint{
			Kind: c.t.Kind, Classes: c.ds.Spec.Classes, Hyper: c.t.Hyper,
			InAs: c.inAs, InB: c.ds.TrainB.NumCols(), Epoch: e + 1,
			LayerA: make([][]byte, len(c.inAs)), LayerB: make([][]byte, len(c.inAs)),
			Fingerprint: c.t.Hyper.Options.Fingerprint(),
		}
		c.pend[e] = ck
	}
	fill(ck)
	c.n[e]++
	if c.n[e] == len(c.inAs)+1 {
		delete(c.pend, e)
		delete(c.n, e)
		if err := c.writeFile(ck); err != nil && c.err == nil {
			c.err = err
		}
	}
}

// writeFile seals the checkpoint into CheckpointDir/ckpt-<epoch> through a
// temp file and an atomic rename: a crash mid-write leaves at worst a
// dot-prefixed temp file that the resume scan ignores, never a truncated
// ckpt- file (and even one of those would fail the envelope check).
func (c *runCkpt) writeFile(ck *runCheckpoint) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return fmt.Errorf("model: encode run checkpoint: %w", err)
	}
	f, err := os.CreateTemp(c.t.CheckpointDir, ".ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("model: write run checkpoint: %w", err)
	}
	cleanup := func(err error) error {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := sealEnvelope(f, buf.Bytes()); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("model: sync run checkpoint: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("model: close run checkpoint: %w", err)
	}
	final := filepath.Join(c.t.CheckpointDir, fmt.Sprintf("ckpt-%05d", ck.Epoch))
	if err := os.Rename(f.Name(), final); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("model: publish run checkpoint: %w", err)
	}
	return nil
}

// finish surfaces the first recorded deposit/write error after the run.
func (c *runCkpt) finish() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// latestRunCheckpoint scans dir for the newest usable run checkpoint.
// Files failing the envelope or shape checks (a crash can leave the newest
// file unreadable only if the filesystem lied about the rename, but a disk
// can rot any of them) are skipped in favor of the next-oldest; only when
// no file is usable does the scan fail, with the last typed error.
func latestRunCheckpoint(dir string) (*runCheckpoint, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("model: scan checkpoint dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "ckpt-") {
			names = append(names, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	var lastErr error
	for _, name := range names {
		ck, err := readRunCheckpoint(filepath.Join(dir, name))
		if err != nil {
			if errors.Is(err, ErrBadCheckpoint) {
				lastErr = err
				continue
			}
			return nil, err
		}
		return ck, nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("model: no usable run checkpoint in %s (last: %w)", dir, lastErr)
	}
	return nil, fmt.Errorf("model: no run checkpoint in %s", dir)
}

func readRunCheckpoint(path string) (*runCheckpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("model: open run checkpoint: %w", err)
	}
	defer f.Close()
	payload, err := openEnvelope(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var ck runCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("%s: %w: decode: %v", path, ErrBadCheckpoint, err)
	}
	k := len(ck.InAs)
	if k == 0 || len(ck.LayerA) != k || len(ck.LayerB) != k || ck.Epoch < 1 {
		return nil, fmt.Errorf("%s: %w: malformed (%d parties, %d A layers, %d B layers, epoch %d)",
			path, ErrBadCheckpoint, k, len(ck.LayerA), len(ck.LayerB), ck.Epoch)
	}
	return &ck, nil
}

// Resume restores the newest usable run checkpoint from CheckpointDir onto
// the party set's fresh sessions and trains the remaining epochs. The
// resumed run is bit-identical to the uninterrupted one: losses, the test
// metric and the test logits all match, because every random stream the
// remaining epochs touch is re-derived, not continued — batch order from
// the hyper seed (replayed through the completed epochs), mask streams from
// the per-epoch RNG discipline, and the serve-path evaluation is
// mask-independent to begin with. Sessions must carry a stream identity
// (protocol pipes set one; hand-assembled peers must call
// SetStreamIdentity), and the Trainer's hyper-parameters and engine options
// must match the checkpointed run's (epoch count excepted — raising it
// trains further).
func (t Trainer) Resume(ds *data.Dataset, ps PartySet) (*History, error) {
	if t.CheckpointDir == "" {
		return nil, fmt.Errorf("model: Resume needs CheckpointDir")
	}
	ck, err := latestRunCheckpoint(t.CheckpointDir)
	if err != nil {
		return nil, err
	}
	k := ps.K()
	if ps.B == nil || k == 0 || k != ps.B.K() {
		return nil, fmt.Errorf("model: Resume needs a party set matching the checkpoint")
	}
	if err := t.resumeCompat(ck, k); err != nil {
		return nil, err
	}
	for _, p := range append(append([]*protocol.Peer{}, ps.As...), ps.B.Peers...) {
		if !p.HasStreamIdentity() {
			return nil, fmt.Errorf("model: Resume needs sessions with a stream identity (protocol pipes record one; set SetStreamIdentity on hand-assembled peers)")
		}
	}
	if k == 1 {
		return t.resumePair(ck, ds, ps.As[0], ps.B.Peers[0])
	}
	return t.resumeMulti(ck, ds, ps)
}

// resumeCompat checks a restored checkpoint against the trainer's
// configuration — the shared validation gate of Resume and ResumeSharded. k
// is the session count the caller will run; a checkpoint's *shard* topology
// is deliberately not checked (any shard count resumes any checkpoint), but
// its session count, model family, engine options and hyper-parameters must
// match for the resumed trajectory to be the uninterrupted run's.
func (t Trainer) resumeCompat(ck *runCheckpoint, k int) error {
	if len(ck.InAs) != k {
		return fmt.Errorf("model: checkpoint spans %d feature parties, party set has %d", len(ck.InAs), k)
	}
	if ck.Kind != t.Kind {
		return fmt.Errorf("model: checkpoint is a %s run, trainer wants %s", ck.Kind, t.Kind)
	}
	if ck.Fingerprint != t.Hyper.Options.Fingerprint() {
		return fmt.Errorf("model: engine options changed since the checkpoint (fingerprint %016x, trainer %016x) — a resume under a different engine configuration would not be bit-exact",
			ck.Fingerprint, t.Hyper.Options.Fingerprint())
	}
	ckH, h := ck.Hyper, t.Hyper
	ckH.Epochs, h.Epochs = 0, 0
	if !reflect.DeepEqual(ckH, h) {
		return fmt.Errorf("model: hyper-parameters differ from the checkpointed run (only the epoch count may change on resume)")
	}
	if ck.Epoch >= t.Hyper.Epochs {
		return fmt.Errorf("model: checkpoint already covers %d of %d epochs — nothing to resume", ck.Epoch, t.Hyper.Epochs)
	}
	return nil
}

// resumePair continues a two-party run from ck.
func (t Trainer) resumePair(ck *runCheckpoint, ds *data.Dataset, pa, pb *protocol.Peer) (*History, error) {
	kind, h := t.Kind, t.Hyper
	hist := &History{MetricName: metricName(ds.Spec.Classes),
		Losses: append([]float64(nil), ck.Losses...)}
	cc := newCkCapture(t, ds, ck.InAs)
	rc := newRunCkpt(t, ds, ck.InAs)
	var restoreErrA, restoreErrB error
	err := protocol.RunParties(pa, pb,
		func() {
			la, err := core.LoadMatMulA(bytes.NewReader(ck.LayerA[0]), pa)
			if err != nil {
				restoreErrA = err
				//blindfl:allow teardown deliberate early close: unblocks the peer so the restore error wins the race
				pa.Conn.Close()
				return
			}
			la.ResumeExchange()
			ma := &FedA{num: &numericSrcA{dense: la}}
			trainLoopA(pa, ma, ds.TrainA, h, ck.Epoch, func(e int) { rc.depositA(e, 0, ma) })
			evalA(ma, kind, ds, ds.TestA, h.Batch)
			cc.captureA(0, ma)
		},
		func() {
			lb, err := core.LoadMatMulB(bytes.NewReader(ck.LayerB[0]), pb)
			if err != nil {
				restoreErrB = err
				//blindfl:allow teardown deliberate early close: unblocks the peer so the restore error wins the race
				pb.Conn.Close()
				return
			}
			lb.ResumeExchange()
			mb, err := restoredFedB(ck, &numericSrcB{dense: lb})
			if err != nil {
				restoreErrB = err
				//blindfl:allow teardown deliberate early close: unblocks the peer so the restore error wins the race
				pb.Conn.Close()
				return
			}
			trainLoopB(pb, mb, ds, h, hist, ck.Epoch, func(e int) { rc.depositB(e, mb, hist.Losses) })
			hist.TestLogits = evalB(mb, ds, h)
			cc.captureB(mb)
		})
	if restoreErrA != nil {
		return nil, restoreErrA
	}
	if restoreErrB != nil {
		return nil, restoreErrB
	}
	if err != nil {
		return nil, err
	}
	if err := rc.finish(); err != nil {
		return nil, err
	}
	if err := cc.write(t.Checkpoint); err != nil {
		return nil, err
	}
	finishHistory(hist, ds)
	return hist, nil
}

// resumeMulti continues a k-party run from ck.
func (t Trainer) resumeMulti(ck *runCheckpoint, ds *data.Dataset, ps PartySet) (*History, error) {
	kind, h, k := t.Kind, t.Hyper, ps.K()
	trainAs := data.SplitCols(ds.TrainA, k)
	testAs := data.SplitCols(ds.TestA, k)
	for i, p := range trainAs {
		if p.NumCols() != ck.InAs[i] {
			return nil, fmt.Errorf("model: feature party %d has %d columns, checkpoint wants %d", i, p.NumCols(), ck.InAs[i])
		}
	}
	hist := &History{MetricName: metricName(ds.Spec.Classes),
		Losses: append([]float64(nil), ck.Losses...)}
	cc := newCkCapture(t, ds, ck.InAs)
	rc := newRunCkpt(t, ds, ck.InAs)
	ps.B.ContinueOnLoss = t.ContinueOnLoss
	restoreErrA := make([]error, k)
	var restoreErrB error
	err := protocol.RunGroup(ps.As, ps.B,
		func(i int) {
			la, err := core.LoadMatMulA(bytes.NewReader(ck.LayerA[i]), ps.As[i])
			if err != nil {
				restoreErrA[i] = err
				//blindfl:allow teardown deliberate early close: unblocks the peer so the restore error wins the race
				ps.As[i].Conn.Close()
				return
			}
			la.ResumeExchange()
			ma := &FedA{num: &numericSrcA{dense: la}}
			trainLoopA(ps.As[i], ma, trainAs[i], h, ck.Epoch, func(e int) { rc.depositA(e, i, ma) })
			evalA(ma, kind, ds, testAs[i], h.Batch)
			cc.captureA(i, ma)
		},
		func() {
			subs := make([]*core.MatMulB, k)
			ps.B.ForEach(func(i int, peer *protocol.Peer) {
				sub, err := core.LoadMatMulB(bytes.NewReader(ck.LayerB[i]), peer)
				if err != nil {
					restoreErrB = err
					return
				}
				subs[i] = sub
			})
			if restoreErrB != nil {
				ps.B.Close()
				return
			}
			lb := core.NewMultiMatMulBFrom(ps.B, subs)
			lb.ResumeExchange()
			mb, err := restoredFedB(ck, &multiNumericSrcB{dense: lb})
			if err != nil {
				restoreErrB = err
				ps.B.Close()
				return
			}
			trainLoopB(ps.B, mb, ds, h, hist, ck.Epoch, func(e int) { rc.depositB(e, mb, hist.Losses) })
			hist.TestLogits = evalB(mb, ds, h)
			cc.captureB(mb)
		})
	for i := 0; i < k; i++ {
		if restoreErrA[i] != nil {
			return nil, restoreErrA[i]
		}
	}
	if restoreErrB != nil {
		return nil, restoreErrB
	}
	if err != nil {
		return nil, err
	}
	if ps.B.LostCount() > 0 {
		hist.LostSessions = ps.B.Lost()
		if t.Checkpoint != nil {
			return nil, fmt.Errorf("model: %w: %d of %d sessions lost mid-run, refusing to write a partial checkpoint",
				protocol.ErrSessionLost, ps.B.LostCount(), k)
		}
	}
	if err := rc.finish(); err != nil {
		return nil, err
	}
	if err := cc.write(t.Checkpoint); err != nil {
		return nil, err
	}
	finishHistory(hist, ds)
	return hist, nil
}

// restoredFedB rebuilds the label party's model half around a restored
// source-layer facade: the head is constructed through the same family
// constructor as training (so module shapes match), its parameters
// overwritten from the checkpoint, and the optimizer's momentum buffers
// restored so the velocity trajectory continues rather than restarting.
func restoredFedB(ck *runCheckpoint, num numSrcB) (*FedB, error) {
	head := buildHead(ck.Kind, ck.Classes, ck.Hyper)
	params := head.params()
	if len(params) != len(ck.Head) {
		return nil, fmt.Errorf("model: checkpoint head has %d parameters, %s wants %d", len(ck.Head), ck.Kind, len(params))
	}
	for i, par := range params {
		saved := ck.Head[i]
		if saved == nil || !par.W.SameShape(saved) {
			return nil, fmt.Errorf("model: checkpoint head parameter %d shape mismatch", i)
		}
		copy(par.W.Data, saved.Data)
	}
	m := &FedB{kind: ck.Kind, classes: ck.Classes, num: num, head: head}
	m.opt = nn.NewSGD(ck.Hyper.LR, ck.Hyper.Momentum, head.params())
	m.opt.SetMomentumState(ck.HeadMom)
	return m, nil
}
