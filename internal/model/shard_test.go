package model

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"blindfl/internal/data"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
	"blindfl/internal/transport"
)

// shardKeys builds the ShardSet key material for k sessions from the shared
// test keys — the same keys fedGroup uses, so a sharded run and a GroupPipe
// baseline decrypt identical plaintexts.
func shardKeys(t testing.TB, k int) ([]*paillier.PrivateKey, *paillier.PrivateKey) {
	t.Helper()
	skA, skB := protocol.TestKeys()
	skAs := make([]*paillier.PrivateKey, k)
	for i := range skAs {
		skAs[i] = skA
	}
	return skAs, skB
}

// runSharded drives one TrainSharded run over an in-process worker fleet and
// fails the test on any error, root- or worker-side.
func runSharded(t *testing.T, tr Trainer, ds *data.Dataset, k, shards int) *History {
	t.Helper()
	skAs, skB := shardKeys(t, k)
	dial, wait, stop := StartShardWorkers(shards, skB, nil)
	hist, err := tr.TrainSharded(ds, ShardSet{Shards: shards, SKAs: skAs, Dial: dial})
	if err != nil {
		stop()
		wait()
		t.Fatalf("%d-shard run: %v", shards, err)
	}
	if err := wait(); err != nil {
		t.Fatalf("%d-shard workers: %v", shards, err)
	}
	return hist
}

// TestShardBitExactDense is the tentpole acceptance check: a sharded dense
// run is bit-identical to the single-process k-party run — same losses, same
// test metric, same test logits — for shard counts 1 (one control link, all
// sessions in one worker) and 2 (an uneven 2+1 split of the 3 sessions). The
// baseline group MUST be piped with the hyper seed: TrainSharded derives
// every stream from h.Seed, and the per-session streams drive the weight
// pieces, so a baseline over a different pipe seed would only agree in
// distribution.
func TestShardBitExactDense(t *testing.T) {
	const k = 3
	ds := data.Generate(tinySpec("t-shard", 16, 16, 2, false), 33)
	h := tinyHyper()
	h.Epochs = 3
	as, g := fedGroup(t, k, h.Seed)
	base, err := TrainFederatedMulti(LR, ds, h, as, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2} {
		hist := runSharded(t, Trainer{Kind: LR, Hyper: h}, ds, k, shards)
		requireBitIdentical(t, fmt.Sprintf("%d-shard dense", shards), hist, base)
	}
}

// TestShardBitExactSparse repeats the bit-exactness over a sparse dataset:
// the workers run the MultiSparseMatMulB shard constructor and the test-set
// evaluation goes through the partials path (no serve forward for sparse
// data), so this pins the second source-layer family end to end.
func TestShardBitExactSparse(t *testing.T) {
	if testing.Short() {
		t.Skip("sparse shard bit-exactness skipped in -short")
	}
	const k = 3
	ds := data.Generate(tinySpec("t-shardsp", 60, 6, 2, false), 34)
	h := tinyHyper()
	as, g := fedGroup(t, k, h.Seed)
	base, err := TrainFederatedMulti(LR, ds, h, as, g)
	if err != nil {
		t.Fatal(err)
	}
	hist := runSharded(t, Trainer{Kind: LR, Hyper: h}, ds, k, 2)
	requireBitIdentical(t, "2-shard sparse", hist, base)
}

// TestShardServeCheckpointBitIdentity: a serve checkpoint captured from a
// sharded run (worker layer blobs re-slotted in global session order)
// restores onto fresh single-process sessions and serves the training-time
// test logits bit for bit — the checkpoint format is shard-oblivious.
func TestShardServeCheckpointBitIdentity(t *testing.T) {
	const k = 2
	ds := data.Generate(tinySpec("t-shardck", 14, 14, 2, false), 36)
	h := tinyHyper()
	var buf bytes.Buffer
	hist := runSharded(t, Trainer{Kind: LR, Hyper: h, Checkpoint: &buf}, ds, k, 2)

	skAs, skB := shardKeys(t, k)
	as, g, err := protocol.GroupPipe(skAs, skB, 711)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(bytes.NewReader(buf.Bytes()), PartySet{As: as, B: g})
	if err != nil {
		t.Fatal(err)
	}
	testAs := data.SplitCols(ds.TestA, k)
	xAs := make([]*tensor.Dense, k)
	for i, part := range testAs {
		xAs[i] = part.Dense
	}
	got, err := p.PredictBatch(xAs, ds.TestB.Dense)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBits(t, got, hist.TestLogits, "sharded-checkpoint served logits")
}

// TestShardValidation pins the up-front refusals: embedding families, more
// shards than sessions, checkpoints over non-serveable data, and an empty
// shard set all fail before any worker is dialed.
func TestShardValidation(t *testing.T) {
	dense := data.Generate(tinySpec("t-shardval", 8, 8, 2, true), 37)
	sparse := data.Generate(tinySpec("t-shardvsp", 40, 5, 2, false), 38)
	noDial := func(int) (transport.Conn, error) {
		return nil, errors.New("validation must fail before dialing")
	}
	skAs, _ := shardKeys(t, 2)

	if _, err := (Trainer{Kind: WDL, Hyper: tinyHyper()}).TrainSharded(dense,
		ShardSet{Shards: 1, SKAs: skAs, Dial: noDial}); err == nil || !strings.Contains(err.Error(), "numeric families") {
		t.Fatalf("embedding family: err = %v, want a numeric-families rejection", err)
	}
	if _, err := (Trainer{Kind: LR, Hyper: tinyHyper()}).TrainSharded(dense,
		ShardSet{Shards: 3, SKAs: skAs, Dial: noDial}); err == nil {
		t.Fatal("3 shards over 2 sessions accepted")
	}
	var buf bytes.Buffer
	if _, err := (Trainer{Kind: LR, Hyper: tinyHyper(), Checkpoint: &buf}).TrainSharded(sparse,
		ShardSet{Shards: 1, SKAs: skAs, Dial: noDial}); err == nil || !strings.Contains(err.Error(), "serveable") {
		t.Fatalf("sparse checkpoint: err = %v, want a serveable-families rejection", err)
	}
	if _, err := (Trainer{Kind: LR, Hyper: tinyHyper()}).TrainSharded(dense, ShardSet{}); err == nil {
		t.Fatal("empty shard set accepted")
	}
}

// TestChaosShardKillTyped kills shard 1's control link mid-epoch (FaultConn
// closes it at the root's 5th send — a gradient broadcast) and requires the
// run to fail with exactly ONE typed error: protocol.ErrShardLost, never the
// transport.ErrClosed cascade the teardown provokes in the surviving shard
// and the feature parties.
func TestChaosShardKillTyped(t *testing.T) {
	const k = 2
	ds := data.Generate(tinySpec("t-shardkill", 12, 12, 2, false), 39)
	h := tinyHyper()
	skAs, skB := shardKeys(t, k)
	pair := func(shard, ord int) (transport.Conn, transport.Conn) {
		root, worker := transport.Pair(4096)
		if shard == 1 && ord == 0 {
			return transport.NewFaultConn(root, 9, "chaos-shard-kill", transport.FaultPlan{KillAtMsg: 5}), worker
		}
		return root, worker
	}
	dial, wait, stop := StartShardWorkers(2, skB, pair)
	done := make(chan error, 1)
	go func() {
		_, err := Trainer{Kind: LR, Hyper: h}.TrainSharded(ds, ShardSet{Shards: 2, SKAs: skAs, Dial: dial})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, protocol.ErrShardLost) {
			t.Fatalf("killed-shard run error = %v, want ErrShardLost", err)
		}
		if errors.Is(err, transport.ErrClosed) {
			t.Fatalf("killed-shard run error %v still matches ErrClosed; the cascade leaked", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("killed-shard run hung instead of failing typed")
	}
	stop()
	wait() // drain the workers' cascade errors
}

// TestChaosShardKillResume is the crash-recovery acceptance check: a 2-shard
// run with durable checkpoints is killed mid-epoch-2, then resumed onto a
// DIFFERENT shard count (one worker) — and the stitched trajectory is
// bit-identical to an uninterrupted run. Per-session layer halves and
// global-session-index streams make a checkpoint shard-topology-free; out of
// -short, the same checkpoint also resumes unsharded through Trainer.Resume.
func TestChaosShardKillResume(t *testing.T) {
	const k = 2
	ds := data.Generate(tinySpec("t-shardres", 12, 12, 2, false), 35)
	h := tinyHyper()
	h.Epochs = 4
	ref := runSharded(t, Trainer{Kind: LR, Hyper: h}, ds, k, 2)

	dir := t.TempDir()
	skAs, skB := shardKeys(t, k)
	tr := Trainer{Kind: LR, Hyper: h, CheckpointDir: dir, CheckpointEvery: 1}
	pair := func(shard, ord int) (transport.Conn, transport.Conn) {
		root, worker := transport.Pair(4096)
		if shard == 1 && ord == 0 {
			// Sends on the control link: hello, setup, then one gradient per
			// batch (5 per epoch) — send 15 is epoch 2's third gradient, so
			// the epoch-1 and epoch-2 checkpoints are already durable.
			return transport.NewFaultConn(root, 9, "chaos-shard-resume", transport.FaultPlan{KillAtMsg: 15}), worker
		}
		return root, worker
	}
	dial, wait, stop := StartShardWorkers(2, skB, pair)
	done := make(chan error, 1)
	go func() {
		_, err := tr.TrainSharded(ds, ShardSet{Shards: 2, SKAs: skAs, Dial: dial})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, protocol.ErrShardLost) {
			t.Fatalf("killed run error = %v, want ErrShardLost", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("killed run hung instead of failing typed")
	}
	stop()
	wait()

	dial2, wait2, stop2 := StartShardWorkers(1, skB, nil)
	resumed, err := tr.ResumeSharded(ds, ShardSet{Shards: 1, SKAs: skAs, Dial: dial2})
	if err != nil {
		stop2()
		wait2()
		t.Fatalf("ResumeSharded onto 1 shard: %v", err)
	}
	if err := wait2(); err != nil {
		t.Fatalf("resume worker: %v", err)
	}
	requireBitIdentical(t, "2-shard kill, 1-shard resume", resumed, ref)

	if testing.Short() {
		return
	}
	as, g := fedGroup(t, k, h.Seed)
	unsharded, err := tr.Resume(ds, PartySet{As: as, B: g})
	if err != nil {
		t.Fatalf("unsharded Resume of a sharded checkpoint: %v", err)
	}
	requireBitIdentical(t, "sharded checkpoint, unsharded resume", unsharded, ref)
}

// TestShardMultiProcessSmoke runs the real thing: two blindfl-shard worker
// PROCESSES over loopback TCP, driven by the blindfl-train binary with
// -shards 2 -shard-connect. Everything in-process above is re-checked across
// genuine process and network boundaries.
func TestShardMultiProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"blindfl-shard", "blindfl-train"} {
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, "blindfl/cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	var addrs []string
	var workers []*exec.Cmd
	for i := 0; i < 2; i++ {
		cmd := exec.Command(bins["blindfl-shard"], "-timeout", "120s")
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("start shard worker %d: %v", i, err)
		}
		workers = append(workers, cmd)
		t.Cleanup(func() { cmd.Process.Kill() })
		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				if strings.HasPrefix(sc.Text(), "SHARD_LISTEN ") {
					addrCh <- strings.TrimPrefix(sc.Text(), "SHARD_LISTEN ")
					return
				}
			}
			addrCh <- ""
		}()
		select {
		case a := <-addrCh:
			if a == "" {
				t.Fatalf("shard worker %d exited without announcing an address: %s", i, stderr.String())
			}
			addrs = append(addrs, a)
		case <-time.After(30 * time.Second):
			t.Fatalf("shard worker %d never announced SHARD_LISTEN", i)
		}
	}

	out, err := exec.Command(bins["blindfl-train"],
		"-dataset", "a9a", "-model", "lr", "-train", "96", "-test", "48",
		"-epochs", "1", "-batch", "32", "-parties", "2",
		"-shards", "2", "-shard-connect", strings.Join(addrs, ",")).CombinedOutput()
	if err != nil {
		t.Fatalf("sharded blindfl-train run failed: %v\n%s", err, out)
	}
	for i, w := range workers {
		if err := w.Wait(); err != nil {
			t.Fatalf("shard worker %d exited with %v", i, err)
		}
	}
}
