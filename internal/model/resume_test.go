package model

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"blindfl/internal/data"
	"blindfl/internal/protocol"
	"blindfl/internal/transport"
)

// Crash-recovery suite: a training run killed mid-flight must leave a durable
// checkpoint behind, and resuming it on fresh sessions must reproduce the
// uninterrupted run bit for bit — losses, test metric and test logits. A
// corrupted checkpoint file must either be skipped for an older usable one
// (still bit-exact) or fail with the typed ErrBadCheckpoint, never restore
// into garbage.

// ckptFiles lists the published run-checkpoint files in dir, oldest first.
func ckptFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "ckpt-") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(names)
	return names
}

// corruptFile flips one payload byte of a sealed checkpoint file in place.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// assertBitExact compares a resumed history against the clean reference.
func assertBitExact(t *testing.T, hist, clean *History) {
	t.Helper()
	if len(hist.Losses) != len(clean.Losses) {
		t.Fatalf("iteration counts differ: %d vs %d", len(hist.Losses), len(clean.Losses))
	}
	for i := range hist.Losses {
		if hist.Losses[i] != clean.Losses[i] {
			t.Fatalf("loss %d diverges after resume: %v vs clean %v", i, hist.Losses[i], clean.Losses[i])
		}
	}
	if hist.TestMetric != clean.TestMetric {
		t.Fatalf("test metric diverges after resume: %v vs clean %v", hist.TestMetric, clean.TestMetric)
	}
	if hist.TestLogits == nil || clean.TestLogits == nil {
		t.Fatal("missing test logits")
	}
	if len(hist.TestLogits.Data) != len(clean.TestLogits.Data) {
		t.Fatalf("test logit counts differ: %d vs %d", len(hist.TestLogits.Data), len(clean.TestLogits.Data))
	}
	for i := range hist.TestLogits.Data {
		if hist.TestLogits.Data[i] != clean.TestLogits.Data[i] {
			t.Fatalf("test logit %d diverges after resume: %v vs clean %v",
				i, hist.TestLogits.Data[i], clean.TestLogits.Data[i])
		}
	}
}

// TestChaosKillAtEpochResumeBitExact is the crash-recovery contract end to
// end: train clean with mid-run checkpointing, kill an identical run
// two-thirds of the way through its transport traffic, then resume the
// newest durable checkpoint on fresh sessions — the resumed trajectory must
// be bit-identical to the uninterrupted one. The tail of the test corrupts
// checkpoint files to pin the fallback ladder: a rotted newest file falls
// back to the next-oldest (still bit-exact), and a directory with no usable
// file fails with the typed ErrBadCheckpoint.
func TestChaosKillAtEpochResumeBitExact(t *testing.T) {
	const seed = 640
	ds := data.Generate(tinySpec("t-chaos-resume", 12, 12, 2, false), 3)
	h := chaosHyper()
	h.Epochs = 3 // checkpoints land after epochs 1 and 2

	// Clean uninterrupted reference run, checkpointing on, over a pipe whose
	// Party-A message count calibrates where the crashed run's kill lands.
	skA, skB := protocol.TestKeys()
	ca, cb := transport.Pair(4096)
	pa, pb, err := protocol.PipeOn(ca, cb, skA, skB, seed)
	if err != nil {
		t.Fatal(err)
	}
	cleanDir := t.TempDir()
	clean, err := Trainer{Kind: LR, Hyper: h, CheckpointDir: cleanDir}.Train(ds, Pair(pa, pb))
	if err != nil {
		t.Fatal(err)
	}
	if files := ckptFiles(t, cleanDir); len(files) != 2 {
		t.Fatalf("clean 3-epoch run left %d checkpoints, want 2 (after epochs 1 and 2)", len(files))
	}
	msgs, _ := ca.Stats()

	// The crashed run: same seed, same traffic schedule, killed two-thirds of
	// the way through Party A's sends — past the first checkpoint, before the
	// finish line.
	crashDir := t.TempDir()
	pa, pb, fc := fedPipeFault(t, seed, "chaos-resume-kill", transport.FaultPlan{KillAtMsg: msgs * 2 / 3})
	done := make(chan error, 1)
	go func() {
		_, err := Trainer{Kind: LR, Hyper: h, CheckpointDir: crashDir}.Train(ds, Pair(pa, pb))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("training completed over a killed connection")
		}
		if !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("err = %v, want transport.ErrClosed", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("training hung after a mid-run kill")
	}
	if !fc.Injected().Killed {
		t.Fatal("kill schedule never fired")
	}
	files := ckptFiles(t, crashDir)
	if len(files) == 0 {
		t.Fatal("crashed run left no durable checkpoint behind")
	}

	// Resume on fresh sessions: every random stream is re-derived, so the
	// remaining epochs replay the uninterrupted trajectory exactly.
	resume := func() (*History, error) {
		pa, pb := fedPipe(t, seed)
		return Trainer{Kind: LR, Hyper: h, CheckpointDir: crashDir}.Resume(ds, Pair(pa, pb))
	}
	hist, err := resume()
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	assertBitExact(t, hist, clean)

	// Rot the newest checkpoint: with an older usable file present the scan
	// must fall back to it and still resume bit-exactly.
	corruptFile(t, files[len(files)-1])
	if len(files) > 1 {
		hist, err := resume()
		if err != nil {
			t.Fatalf("resume failed to fall back past a corrupted newest checkpoint: %v", err)
		}
		assertBitExact(t, hist, clean)
	}
	// Rot everything — re-listing first, since the resumed runs deposited
	// fresh checkpoints of their own. The refusal must be typed, not a
	// restore into garbage.
	for _, f := range ckptFiles(t, crashDir) {
		corruptFile(t, f)
	}
	pa, pb = fedPipe(t, seed)
	_, err = Trainer{Kind: LR, Hyper: h, CheckpointDir: crashDir}.Resume(ds, Pair(pa, pb))
	if !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("resume over all-corrupt checkpoints = %v, want ErrBadCheckpoint", err)
	}
	pa.Conn.Close()
	pb.Conn.Close()
}

// TestChaosResumeRefusesChangedConfig: a resume whose trainer disagrees with
// the checkpointed run — different engine options (fingerprint), different
// hyper-parameters, or no epochs left to train — must be refused up front:
// it could not be bit-exact, so it must not start.
func TestChaosResumeRefusesChangedConfig(t *testing.T) {
	const seed = 641
	ds := data.Generate(tinySpec("t-chaos-refuse", 12, 12, 2, false), 3)
	h := chaosHyper()
	h.Epochs = 2

	dir := t.TempDir()
	pa, pb := fedPipe(t, seed)
	if _, err := (Trainer{Kind: LR, Hyper: h, CheckpointDir: dir}).Train(ds, Pair(pa, pb)); err != nil {
		t.Fatal(err)
	}
	if files := ckptFiles(t, dir); len(files) != 1 {
		t.Fatalf("2-epoch run left %d checkpoints, want 1", len(files))
	}

	try := func(tr Trainer) error {
		pa, pb := fedPipe(t, seed)
		_, err := tr.Resume(ds, Pair(pa, pb))
		pa.Conn.Close()
		pb.Conn.Close()
		return err
	}

	hEng := h
	hEng.Options.Packed = !hEng.Options.Packed
	if err := try(Trainer{Kind: LR, Hyper: hEng, CheckpointDir: dir}); err == nil ||
		!strings.Contains(err.Error(), "engine options") {
		t.Fatalf("resume under changed engine options = %v, want a fingerprint refusal", err)
	}

	hLR := h
	hLR.LR *= 2
	if err := try(Trainer{Kind: LR, Hyper: hLR, CheckpointDir: dir}); err == nil ||
		!strings.Contains(err.Error(), "hyper-parameters") {
		t.Fatalf("resume under a changed learning rate = %v, want a hyper refusal", err)
	}

	hDone := h
	hDone.Epochs = 1 // the checkpoint already covers epoch 1
	if err := try(Trainer{Kind: LR, Hyper: hDone, CheckpointDir: dir}); err == nil ||
		!strings.Contains(err.Error(), "nothing to resume") {
		t.Fatalf("resume past the final epoch = %v, want a nothing-to-resume refusal", err)
	}

	// Raising the epoch count is the one legal change: train further.
	hMore := h
	hMore.Epochs = 3
	pa, pb = fedPipe(t, seed)
	hist, err := Trainer{Kind: LR, Hyper: hMore, CheckpointDir: dir}.Resume(ds, Pair(pa, pb))
	if err != nil {
		t.Fatalf("resume with a raised epoch count failed: %v", err)
	}
	if want := 3 * (ds.TrainA.Rows() / h.Batch); len(hist.Losses) != want {
		t.Fatalf("extended resume ran %d iterations, want %d", len(hist.Losses), want)
	}
}

// TestChaosCtrlCorruptTrainingFailsTyped drives a control-plane bit-flip
// through end-to-end training: whichever control envelope the schedule hits
// (stream header, end marker or ack), the run must abort with the typed
// integrity error — never hang, never return a model trained over a corrupt
// frame. The seed is chosen so the flip lands mid-run, past the handshake.
func TestChaosCtrlCorruptTrainingFailsTyped(t *testing.T) {
	ds := data.Generate(tinySpec("t-chaos-ctrl", 12, 12, 2, false), 3)
	pa, pb, fc := fedPipeFault(t, 653, "chaos-ctrl-flip", transport.FaultPlan{CtrlFlipProb: 0.3, MaxFaults: 1})
	done := make(chan error, 1)
	go func() {
		_, err := TrainFederated(LR, ds, chaosHyper(), pa, pb)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("training completed over a corrupted control message")
		}
		if !errors.Is(err, transport.ErrCorrupt) {
			t.Fatalf("err = %v, want transport.ErrCorrupt", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("training hung on a corrupted control message")
	}
	if fc.Injected().CtrlFlips != 1 {
		t.Fatalf("injected = %+v, want exactly one control flip", fc.Injected())
	}
}

// TestChaosBadServeCheckpointFailsTyped is the envelope regression test: a
// serve checkpoint that was bit-flipped, truncated or replaced with garbage
// must fail Predictor restore with the typed (and permanent)
// ErrBadCheckpoint — the error RetryPredictor refuses to retry — instead of
// gob-decoding noise into a servable model.
func TestChaosBadServeCheckpointFailsTyped(t *testing.T) {
	ds := data.Generate(tinySpec("t-chaos-badck", 12, 12, 2, false), 3)
	h := chaosHyper()
	h.Stream = false
	pa, pb := fedPipe(t, 660)
	var buf bytes.Buffer
	if _, err := (Trainer{Kind: LR, Hyper: h, Checkpoint: &buf}).Train(ds, Pair(pa, pb)); err != nil {
		t.Fatal(err)
	}
	ck := buf.Bytes()
	if _, err := openEnvelope(bytes.NewReader(ck)); err != nil {
		t.Fatalf("pristine checkpoint failed its own envelope: %v", err)
	}

	flipped := append([]byte(nil), ck...)
	flipped[len(flipped)-5] ^= 0x01
	cases := map[string][]byte{
		"bitflip":   flipped,
		"truncated": ck[:len(ck)-7],
		"header":    ck[:16],
		"garbage":   []byte("not a checkpoint"),
		"empty":     nil,
	}
	for name, blob := range cases {
		t.Run(name, func(t *testing.T) {
			// The envelope is rejected before any session is touched, so no
			// live party set is needed.
			_, err := NewPredictor(bytes.NewReader(blob), PartySet{})
			if !errors.Is(err, ErrBadCheckpoint) {
				t.Fatalf("err = %v, want ErrBadCheckpoint", err)
			}
		})
	}
}
