package model

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
)

// Checkpoint envelope: every checkpoint blindfl writes — serve checkpoints
// and mid-run training checkpoints alike — is sealed in a small versioned
// header (magic, format version, payload length, FNV-1a sum over the
// payload) so a truncated file, a bit-flipped blob, or a stream from a
// different format version is rejected up front with the typed
// ErrBadCheckpoint instead of surfacing as a confusing gob decode error —
// or worse, decoding into plausible garbage. The seal is an integrity
// check against accidental corruption, not an authenticity mechanism:
// checkpoint files must be protected like process memory regardless.

// ErrBadCheckpoint is the typed error for a checkpoint stream that fails
// the envelope check: wrong magic, unknown version, truncation, or a
// checksum mismatch. It is permanent — retrying the same bytes cannot
// succeed — so recovery paths (RetryPredictor) never retry it.
var ErrBadCheckpoint = errors.New("model: bad checkpoint")

// ckMagic identifies a sealed blindfl checkpoint stream.
var ckMagic = [4]byte{'B', 'F', 'C', 'K'}

// ckVersion is the current envelope format version.
const ckVersion = 1

// maxCkPayload bounds the declared payload length so a corrupted header
// cannot drive a multi-gigabyte allocation before the checksum check.
const maxCkPayload = 1 << 31

// sealEnvelope writes payload to w under the versioned checksum header.
func sealEnvelope(w io.Writer, payload []byte) error {
	sum := fnv.New64a()
	sum.Write(payload)
	var hdr [24]byte
	copy(hdr[:4], ckMagic[:])
	binary.BigEndian.PutUint32(hdr[4:8], ckVersion)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	binary.BigEndian.PutUint64(hdr[16:24], sum.Sum64())
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("model: write checkpoint envelope: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("model: write checkpoint payload: %w", err)
	}
	return nil
}

// openEnvelope reads and verifies a sealed payload from r. Every failure
// mode is typed ErrBadCheckpoint.
func openEnvelope(r io.Reader) ([]byte, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated envelope header: %v", ErrBadCheckpoint, err)
	}
	if !bytes.Equal(hdr[:4], ckMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic (not a sealed blindfl checkpoint)", ErrBadCheckpoint)
	}
	if v := binary.BigEndian.Uint32(hdr[4:8]); v != ckVersion {
		return nil, fmt.Errorf("%w: envelope version %d, this build reads %d", ErrBadCheckpoint, v, ckVersion)
	}
	n := binary.BigEndian.Uint64(hdr[8:16])
	if n > maxCkPayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrBadCheckpoint, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrBadCheckpoint, err)
	}
	sum := fnv.New64a()
	sum.Write(payload)
	if sum.Sum64() != binary.BigEndian.Uint64(hdr[16:24]) {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrBadCheckpoint)
	}
	return payload, nil
}
