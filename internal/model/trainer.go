package model

import (
	"fmt"
	"io"

	"blindfl/internal/data"
	"blindfl/internal/protocol"
	"blindfl/internal/rng"
)

// Trainer is the single federated-training entry point across party counts:
// a two-party run is a 1-session party set, a k-party run a k-session one,
// and both share the same loop, evaluation and checkpoint machinery. The
// positional TrainFederated/TrainFederatedMulti helpers are thin deprecated
// wrappers over it.
type Trainer struct {
	Kind  Kind
	Hyper Hyper

	// Checkpoint, when set, receives the trained model in the serve
	// checkpoint format (every party's dense source-layer half plus the
	// label party's head) after a successful run — the file blindfl-serve
	// loads through NewPredictor. Serveable families only. A real
	// deployment would have each party persist its own half; the combined
	// stream matches the single-binary simulation runtime, and still
	// contains no more than the parties' processes jointly held.
	Checkpoint io.Writer

	// CheckpointDir, when set, makes the run crash-recoverable: every
	// CheckpointEvery completed epochs the parties deposit their layer
	// halves, the label party adds its head, optimizer momentum and the
	// loss history, and the assembled run checkpoint is written to
	// CheckpointDir/ckpt-<epoch> — sealed in the checksum envelope, via a
	// temp file and an atomic rename, so a crash mid-write never leaves a
	// half-written file a later Resume could trip over. Resume restores the
	// newest usable checkpoint onto fresh sessions and continues the run
	// bit-exactly. Serveable families only, like Checkpoint.
	CheckpointDir string

	// CheckpointEvery is the epoch stride between run checkpoints; values
	// below 1 mean every epoch. Ignored without CheckpointDir.
	CheckpointEvery int

	// ContinueOnLoss opts a k>1 run into session-loss tolerance
	// (protocol.Group.ContinueOnLoss): when a feature party's connection
	// dies mid-run, the surviving k−1 sessions finish the epoch and the
	// loss is surfaced through History.LostSessions instead of aborting.
	// Integrity failures (transport.ErrCorrupt) still abort regardless.
	// Ignored for two-party runs, where the peer is the whole protocol.
	ContinueOnLoss bool
}

// PartySet bundles the live protocol sessions a training run (or a serve
// session) spans: one feature-party peer per session plus the label party's
// group handle over the same sessions, in matching order.
type PartySet struct {
	As []*protocol.Peer
	B  *protocol.Group
}

// K returns the number of sessions (feature parties).
func (ps PartySet) K() int { return len(ps.As) }

// Pair wraps a two-party session as a 1-session party set — a 1-party group
// is exactly the two-party protocol (same RNG streams, same arithmetic).
func Pair(pa, pb *protocol.Peer) PartySet {
	return PartySet{As: []*protocol.Peer{pa}, B: protocol.NewGroup([]*protocol.Peer{pb})}
}

// Train runs federated training over the party set and returns the label
// party's history. Party A's feature columns are split into K() contiguous
// blocks for k>1 (data.SplitCols); the mini-batch order is derived from the
// shared hyper-parameter seed, standing in for the order the parties would
// agree on at setup time.
//
// RunParties/RunGroup close every session's connections on the first party
// error, so a one-sided failure unblocks the survivors with
// transport.ErrClosed instead of hanging, and the returned error is the
// root cause (first to arrive).
func (t Trainer) Train(ds *data.Dataset, ps PartySet) (*History, error) {
	k := ps.K()
	if ps.B == nil || k == 0 {
		return nil, fmt.Errorf("model: Train needs a non-empty party set")
	}
	if k != ps.B.K() {
		return nil, fmt.Errorf("model: party set has %d feature parties for %d sessions", k, ps.B.K())
	}
	if (t.Checkpoint != nil || t.CheckpointDir != "") && !Serveable(t.Kind, ds) {
		return nil, fmt.Errorf("model: checkpoints cover the dense numeric families (lr|mlr|mlp on dense data); %s is not serveable here", t.Kind)
	}
	if k == 1 {
		return t.trainPair(ds, ps.As[0], ps.B.Peers[0])
	}
	return t.trainMulti(ds, ps)
}

// trainPair is the two-party run: full family coverage (including the
// embedding families, which the k-party path rejects).
func (t Trainer) trainPair(ds *data.Dataset, pa, pb *protocol.Peer) (*History, error) {
	kind, h := t.Kind, t.Hyper
	hist := &History{MetricName: metricName(ds.Spec.Classes)}
	cc := newCkCapture(t, ds, []int{ds.TrainA.NumCols()})
	rc := newRunCkpt(t, ds, []int{ds.TrainA.NumCols()})
	err := protocol.RunParties(pa, pb,
		func() {
			ma := NewFedA(pa, kind, ds, h)
			trainLoopA(pa, ma, ds.TrainA, h, 0, func(e int) { rc.depositA(e, 0, ma) })
			evalA(ma, kind, ds, ds.TestA, h.Batch)
			cc.captureA(0, ma)
		},
		func() {
			mb := NewFedB(pb, kind, ds, h)
			trainLoopB(pb, mb, ds, h, hist, 0, func(e int) { rc.depositB(e, mb, hist.Losses) })
			hist.TestLogits = evalB(mb, ds, h)
			cc.captureB(mb)
		})
	if err != nil {
		return nil, err
	}
	if err := rc.finish(); err != nil {
		return nil, err
	}
	if err := cc.write(t.Checkpoint); err != nil {
		return nil, err
	}
	finishHistory(hist, ds)
	return hist, nil
}

// trainMulti is the k-party run (paper Appendix C, Algorithm 3): numeric
// families only; Party A's columns split into k contiguous blocks
// (data.SplitCols: widths differ by at most one, so uneven dimensionalities
// lose no columns), one per feature party.
func (t Trainer) trainMulti(ds *data.Dataset, ps PartySet) (*History, error) {
	kind, h, k := t.Kind, t.Hyper, ps.K()
	if kind.UsesEmbedding() {
		return nil, fmt.Errorf("model: multi-party training covers the numeric families lr|mlr|mlp; %s needs a multi-party Embed-MatMul layer", kind)
	}
	if cols := ds.TrainA.NumCols(); k > cols {
		return nil, fmt.Errorf("model: cannot split %d feature columns across %d parties", cols, k)
	}
	trainAs := data.SplitCols(ds.TrainA, k)
	testAs := data.SplitCols(ds.TestA, k)
	inAs := make([]int, k)
	for i, p := range trainAs {
		inAs[i] = p.NumCols()
	}

	hist := &History{MetricName: metricName(ds.Spec.Classes)}
	cc := newCkCapture(t, ds, inAs)
	rc := newRunCkpt(t, ds, inAs)
	ps.B.ContinueOnLoss = t.ContinueOnLoss
	err := protocol.RunGroup(ps.As, ps.B,
		func(i int) {
			ma := NewFedAMulti(ps.As[i], kind, ds, h, inAs[i], k)
			trainLoopA(ps.As[i], ma, trainAs[i], h, 0, func(e int) { rc.depositA(e, i, ma) })
			evalA(ma, kind, ds, testAs[i], h.Batch)
			cc.captureA(i, ma)
		},
		func() {
			mb := NewFedBMulti(ps.B, kind, ds, h, inAs)
			trainLoopB(ps.B, mb, ds, h, hist, 0, func(e int) { rc.depositB(e, mb, hist.Losses) })
			hist.TestLogits = evalB(mb, ds, h)
			cc.captureB(mb)
		})
	if err != nil {
		return nil, err
	}
	if err := rc.finish(); err != nil {
		return nil, err
	}
	if ps.B.LostCount() > 0 {
		hist.LostSessions = ps.B.Lost()
		// A lost session's layer half was never captured; a checkpoint with a
		// hole would load as garbage, so a lossy run refuses to write one.
		if t.Checkpoint != nil {
			return nil, fmt.Errorf("model: %w: %d of %d sessions lost mid-run, refusing to write a partial checkpoint",
				protocol.ErrSessionLost, ps.B.LostCount(), k)
		}
	}
	if err := cc.write(t.Checkpoint); err != nil {
		return nil, err
	}
	finishHistory(hist, ds)
	return hist, nil
}

// epochSeeder re-derives a party's protocol RNG streams at an epoch
// boundary; *protocol.Peer and *protocol.Group both implement it.
type epochSeeder interface{ SeedEpoch(epoch int) }

// trainLoopA runs one feature party's training epochs over its column block,
// starting at epoch start (nonzero on resume: the batch-order stream is
// advanced through the completed epochs so the remaining epochs see exactly
// the permutations the uninterrupted run would have). The peer's mask
// stream is re-seeded at every epoch boundary, and atEpochEnd (if set) fires
// after each completed epoch — the run-checkpoint deposit hook.
func trainLoopA(sd epochSeeder, ma *FedA, trainA data.Part, h Hyper, start int, atEpochEnd func(e int)) {
	order := rng.New(h.Seed, "batch-order")
	for e := 0; e < start; e++ {
		data.Shuffle(order, trainA.Rows())
	}
	for e := start; e < h.Epochs; e++ {
		sd.SeedEpoch(e)
		perm := data.Shuffle(order, trainA.Rows())
		for _, idx := range batchesOf(perm, h.Batch) {
			ma.StepA(trainA.Batch(idx))
		}
		if atEpochEnd != nil {
			atEpochEnd(e)
		}
	}
}

// trainLoopB runs the label party's training epochs, recording losses, with
// the same start/seeding/hook contract as trainLoopA.
func trainLoopB(sd epochSeeder, mb *FedB, ds *data.Dataset, h Hyper, hist *History, start int, atEpochEnd func(e int)) {
	order := rng.New(h.Seed, "batch-order")
	for e := 0; e < start; e++ {
		data.Shuffle(order, ds.TrainB.Rows())
	}
	for e := start; e < h.Epochs; e++ {
		sd.SeedEpoch(e)
		perm := data.Shuffle(order, ds.TrainB.Rows())
		for _, idx := range batchesOf(perm, h.Batch) {
			loss := mb.StepB(ds.TrainB.Batch(idx), gather(ds.TrainY, idx))
			hist.Losses = append(hist.Losses, loss)
		}
		if atEpochEnd != nil {
			atEpochEnd(e)
		}
	}
}
