package model

import (
	"math/rand"

	"blindfl/internal/core"
	"blindfl/internal/data"
	"blindfl/internal/nn"
	"blindfl/internal/protocol"
	"blindfl/internal/rng"
	"blindfl/internal/tensor"
)

// numericSrcA adapts the dense and sparse MatMul halves behind one facade.
type numericSrcA struct {
	dense  *core.MatMulA
	sparse *core.SparseMatMulA
}

func (s *numericSrcA) forward(p data.Part) {
	if s.sparse != nil {
		s.sparse.Forward(p.Sparse)
		return
	}
	s.dense.Forward(core.DenseFeatures{M: p.Dense})
}

func (s *numericSrcA) backward() {
	if s.sparse != nil {
		s.sparse.Backward()
		return
	}
	s.dense.Backward()
}

func (s *numericSrcA) serveStart() {
	if s.sparse != nil {
		panic("model: the serve path covers dense numeric source layers only")
	}
	s.dense.ServeStart()
}

func (s *numericSrcA) serveForward(x *tensor.Dense) { s.dense.ServeForward(x) }

// numSrcB abstracts Party B's numeric source layer: the two-party
// dense/sparse facade below, or the k-session multi-party one (multi.go).
// The serve methods are defined for the dense layers only (Serveable guards
// every call site); the sparse facades panic.
type numSrcB interface {
	forward(p data.Part) *tensor.Dense
	backward(g *tensor.Dense)
	serveStart()
	serveForward(x *tensor.Dense) *tensor.Dense
}

type numericSrcB struct {
	dense  *core.MatMulB
	sparse *core.SparseMatMulB
}

func (s *numericSrcB) forward(p data.Part) *tensor.Dense {
	if s.sparse != nil {
		return s.sparse.Forward(p.Sparse)
	}
	return s.dense.Forward(core.DenseFeatures{M: p.Dense})
}

func (s *numericSrcB) backward(g *tensor.Dense) {
	if s.sparse != nil {
		s.sparse.Backward(g)
		return
	}
	s.dense.Backward(g)
}

func (s *numericSrcB) serveStart() {
	if s.sparse != nil {
		panic("model: the serve path covers dense numeric source layers only")
	}
	s.dense.ServeStart()
}

func (s *numericSrcB) serveForward(x *tensor.Dense) *tensor.Dense { return s.dense.ServeForward(x) }

// FedA is Party A's half of a federated model: at most one numeric source
// layer and one Embed-MatMul source layer, mirroring FedB.
type FedA struct {
	num *numericSrcA
	emb *core.EmbedMatMulA
}

// FedB is Party B's half: the source layers plus the plaintext top model.
type FedB struct {
	kind    Kind
	classes int
	num     numSrcB
	emb     *core.EmbedMatMulB
	head    headB
	opt     *nn.SGD
}

// headB maps source-layer outputs to logits and routes gradients back; one
// implementation per model family.
type headB interface {
	forward(zNum, zEmb *tensor.Dense) *tensor.Dense
	backward(grad *tensor.Dense) (gNum, gEmb *tensor.Dense)
	params() []*nn.Param
}

// biasHead: logits = Z + b (LR and MLR).
type biasHead struct{ bias *nn.Bias }

func (h *biasHead) forward(zNum, _ *tensor.Dense) *tensor.Dense { return h.bias.Forward(zNum) }
func (h *biasHead) backward(g *tensor.Dense) (*tensor.Dense, *tensor.Dense) {
	return h.bias.Backward(g), nil
}
func (h *biasHead) params() []*nn.Param { return h.bias.Params() }

// mlpHead: logits = MLP(Z) with a leading ReLU (the source layer is the
// first linear layer).
type mlpHead struct{ seq *nn.Sequential }

func (h *mlpHead) forward(zNum, _ *tensor.Dense) *tensor.Dense { return h.seq.Forward(zNum) }
func (h *mlpHead) backward(g *tensor.Dense) (*tensor.Dense, *tensor.Dense) {
	return h.seq.Backward(g), nil
}
func (h *mlpHead) params() []*nn.Param { return h.seq.Params() }

// wdlHead: logits = Z_wide + MLP(Z_deep) (paper Fig. 5).
type wdlHead struct{ deep *nn.Sequential }

func (h *wdlHead) forward(zNum, zEmb *tensor.Dense) *tensor.Dense {
	return zNum.Add(h.deep.Forward(zEmb))
}
func (h *wdlHead) backward(g *tensor.Dense) (*tensor.Dense, *tensor.Dense) {
	return g, h.deep.Backward(g)
}
func (h *wdlHead) params() []*nn.Param { return h.deep.Params() }

// dlrmHead: logits = MLP(ReLU(Z_num + Z_emb)) — the simplified DLRM
// interaction documented in DESIGN.md.
type dlrmHead struct {
	relu *nn.ReLU
	seq  *nn.Sequential
}

func (h *dlrmHead) forward(zNum, zEmb *tensor.Dense) *tensor.Dense {
	return h.seq.Forward(h.relu.Forward(zNum.Add(zEmb)))
}
func (h *dlrmHead) backward(g *tensor.Dense) (*tensor.Dense, *tensor.Dense) {
	gz := h.relu.Backward(h.seq.Backward(g))
	return gz, gz
}
func (h *dlrmHead) params() []*nn.Param { return h.seq.Params() }

// buildMLPTop constructs ReLU→Linear chains from in through hidden to out.
func buildMLPTop(rng *rand.Rand, in int, hidden []int, out int) *nn.Sequential {
	mods := []nn.Module{&nn.ReLU{}}
	prev := in
	for _, hdim := range hidden {
		mods = append(mods, nn.NewLinear(rng, prev, hdim), &nn.ReLU{})
		prev = hdim
	}
	mods = append(mods, nn.NewLinear(rng, prev, out))
	return nn.NewSequential(mods...)
}

// sourceOut returns the numeric source layer's output width for a family.
func sourceOut(kind Kind, classes int, h Hyper) int {
	switch kind {
	case LR, WDL:
		return 1
	case MLR:
		return outDim(classes)
	case MLP:
		return firstHidden(h)
	case DLRM:
		return firstHidden(h)
	}
	panic("model: unreachable")
}

func firstHidden(h Hyper) int {
	if len(h.Hidden) == 0 {
		return 16
	}
	return h.Hidden[0]
}

func restHidden(h Hyper) []int {
	if len(h.Hidden) <= 1 {
		return nil
	}
	return h.Hidden[1:]
}

// coreCfg assembles the source-layer Config a Hyper implies for a family.
func coreCfg(kind Kind, classes int, h Hyper) core.Config {
	return core.Config{Out: sourceOut(kind, classes, h), LR: h.LR, Momentum: h.Momentum,
		Options: h.Options}
}

// NewFedA builds Party A's model half. Must run concurrently with NewFedB.
func NewFedA(p *protocol.Peer, kind Kind, ds *data.Dataset, h Hyper) *FedA {
	m := &FedA{}
	cfg := coreCfg(kind, ds.Spec.Classes, h)
	inA, inB := ds.TrainA.NumCols(), ds.TrainB.NumCols()
	if ds.Spec.Dense() {
		m.num = &numericSrcA{dense: core.NewMatMulA(p, cfg, inA, inB)}
	} else {
		m.num = &numericSrcA{sparse: core.NewSparseMatMulA(p, cfg, inA, inB)}
	}
	if kind.UsesEmbedding() {
		m.emb = core.NewEmbedMatMulA(p, embedCfg(kind, ds, h))
	}
	return m
}

// NewFedB builds Party B's model half with the plaintext top model.
func NewFedB(p *protocol.Peer, kind Kind, ds *data.Dataset, h Hyper) *FedB {
	classes := ds.Spec.Classes
	m := &FedB{kind: kind, classes: classes}
	cfg := coreCfg(kind, classes, h)
	inA, inB := ds.TrainA.NumCols(), ds.TrainB.NumCols()
	if ds.Spec.Dense() {
		m.num = &numericSrcB{dense: core.NewMatMulB(p, cfg, inA, inB)}
	} else {
		m.num = &numericSrcB{sparse: core.NewSparseMatMulB(p, cfg, inA, inB)}
	}
	if kind.UsesEmbedding() {
		m.emb = core.NewEmbedMatMulB(p, embedCfg(kind, ds, h))
	}
	m.finishTop(kind, classes, h)
	return m
}

// finishTop builds the plaintext head and its optimizer for a family —
// shared by the two-party and multi-party B constructors so both draw the
// top-model init from the same (h.Seed+77) stream.
func (m *FedB) finishTop(kind Kind, classes int, h Hyper) {
	m.head = buildHead(kind, classes, h)
	m.opt = nn.NewSGD(h.LR, h.Momentum, m.head.params())
}

// buildHead constructs the plaintext head for a family, drawing its init
// from the (h.Seed+77) stream. The Predictor rebuilds heads through the same
// constructor before overwriting the parameters from a checkpoint, so the
// module shapes always match the training-time head.
func buildHead(kind Kind, classes int, h Hyper) headB {
	top := rng.New(h.Seed, "head-init")
	out := outDim(classes)
	switch kind {
	case LR, MLR:
		return &biasHead{bias: nn.NewBias(out)}
	case MLP:
		return &mlpHead{seq: buildMLPTop(top, firstHidden(h), restHidden(h), out)}
	case WDL:
		return &wdlHead{deep: buildMLPTop(top, sourceOutEmbed(h), restHidden(h), out)}
	case DLRM:
		return &dlrmHead{relu: &nn.ReLU{}, seq: nn.NewSequential(nn.NewLinear(top, firstHidden(h), out))}
	}
	panic("model: unreachable")
}

// sourceOutEmbed is the Embed-MatMul output width (the deep tower input).
func sourceOutEmbed(h Hyper) int { return firstHidden(h) }

func embedCfg(kind Kind, ds *data.Dataset, h Hyper) core.EmbedConfig {
	out := sourceOutEmbed(h)
	if kind == DLRM {
		out = firstHidden(h)
	}
	return core.EmbedConfig{
		Config:  core.Config{Out: out, LR: h.LR, Momentum: h.Momentum, Options: h.Options},
		VocabA:  ds.Spec.CatVocab,
		VocabB:  ds.Spec.CatVocab,
		FieldsA: ds.TrainA.Cat.Cols,
		FieldsB: ds.TrainB.Cat.Cols,
		Dim:     h.EmbDim,
	}
}

// StepA runs Party A's forward and backward for one mini-batch.
func (m *FedA) StepA(p data.Part) {
	m.num.forward(p)
	if m.emb != nil {
		m.emb.Forward(p.Cat)
	}
	m.num.backward()
	if m.emb != nil {
		m.emb.Backward()
	}
}

// ForwardA runs Party A's inference-only pass.
func (m *FedA) ForwardA(p data.Part) {
	m.num.forward(p)
	if m.emb != nil {
		m.emb.Forward(p.Cat)
	}
}

// forwardB runs Party B's forward and returns the logits.
func (m *FedB) forwardB(p data.Part) *tensor.Dense {
	zNum := m.num.forward(p)
	var zEmb *tensor.Dense
	if m.emb != nil {
		zEmb = m.emb.Forward(p.Cat)
	}
	return m.head.forward(zNum, zEmb)
}

// StepB runs Party B's full training step and returns the mini-batch loss.
func (m *FedB) StepB(p data.Part, y []int) float64 {
	logits := m.forwardB(p)
	loss, grad := m.lossGrad(logits, y)
	m.opt.ZeroGrad()
	gNum, gEmb := m.head.backward(grad)
	m.opt.Step()
	m.num.backward(gNum)
	if m.emb != nil {
		m.emb.Backward(gEmb)
	}
	return loss
}

// ForwardB runs Party B's inference-only pass and returns the logits.
func (m *FedB) ForwardB(p data.Part) *tensor.Dense { return m.forwardB(p) }

// Serveable reports whether a family/dataset pair is covered by the serve
// path: the dense numeric families (LR, MLR, MLP). The embedding families
// and sparse datasets keep the training-shaped forward only.
func Serveable(kind Kind, ds *data.Dataset) bool {
	return !kind.UsesEmbedding() && ds.Spec.Dense()
}

// ServeStart opens a serve session on Party A's numeric source layer (the
// unpacked weight-piece exchange). Serveable models only; must run
// concurrently with FedB.ServeStart.
func (m *FedA) ServeStart() { m.num.serveStart() }

// ServeForward runs Party A's half of a batched serve forward.
func (m *FedA) ServeForward(x *tensor.Dense) { m.num.serveForward(x) }

// ServeStart opens a serve session on Party B's numeric source layer.
func (m *FedB) ServeStart() { m.num.serveStart() }

// ServeForward runs Party B's half of a batched serve forward and applies
// the plaintext head. This is the inference path blindfl-serve runs; the
// training-time evaluation of serveable models goes through it too, so a
// Predictor restored from a checkpoint is bit-identical to the reported
// test logits.
func (m *FedB) ServeForward(x *tensor.Dense) *tensor.Dense {
	return m.head.forward(m.num.serveForward(x), nil)
}

func (m *FedB) lossGrad(logits *tensor.Dense, y []int) (float64, *tensor.Dense) {
	if m.classes == 2 {
		return nn.BCEWithLogits(logits, y)
	}
	return nn.SoftmaxCE(logits, y)
}

// TrainFederated trains a two-party federated model end to end on an
// in-process protocol session and returns Party B's training history.
//
// Deprecated: use Trainer.Train with Pair(pa, pb) — the single entry point
// across party counts (and the only one that can write serve checkpoints).
// Kept as a thin wrapper for existing callers.
func TrainFederated(kind Kind, ds *data.Dataset, h Hyper, pa, pb *protocol.Peer) (*History, error) {
	return Trainer{Kind: kind, Hyper: h}.Train(ds, Pair(pa, pb))
}

// evalB computes Party B's test-set logits. Serveable models evaluate
// through the exact-integer serve forward (mask- and engine-independent, so
// a later Predictor reproduces these logits bit for bit); the rest use the
// training forward. Must run concurrently with evalA's matching branch.
func evalB(mb *FedB, ds *data.Dataset, h Hyper) *tensor.Dense {
	serveable := Serveable(mb.kind, ds)
	if serveable {
		mb.ServeStart()
	}
	var rows []*tensor.Dense
	for _, idx := range data.BatchIndices(ds.TestB.Rows(), h.Batch) {
		p := ds.TestB.Batch(idx)
		if serveable {
			rows = append(rows, mb.ServeForward(p.Dense))
		} else {
			rows = append(rows, mb.ForwardB(p))
		}
	}
	return vstack(rows)
}

// evalA is Party A's half of the test-set evaluation, mirroring evalB's
// serve/training branch. testA is this party's test split (a column block of
// ds.TestA in the multi-party case).
func evalA(ma *FedA, kind Kind, ds *data.Dataset, testA data.Part, batch int) {
	serveable := Serveable(kind, ds)
	if serveable {
		ma.ServeStart()
	}
	for _, idx := range data.BatchIndices(testA.Rows(), batch) {
		p := testA.Batch(idx)
		if serveable {
			ma.ServeForward(p.Dense)
		} else {
			ma.ForwardA(p)
		}
	}
}

func finishHistory(hist *History, ds *data.Dataset) {
	if hist.TestLogits == nil {
		return
	}
	if ds.Spec.Classes == 2 {
		hist.TestMetric = nn.AUC(nn.Scores(hist.TestLogits), ds.TestY)
	} else {
		hist.TestMetric = nn.Accuracy(hist.TestLogits, ds.TestY)
	}
}

func batchesOf(perm []int, batch int) [][]int {
	var out [][]int
	for lo := 0; lo < len(perm); lo += batch {
		hi := lo + batch
		if hi > len(perm) {
			hi = len(perm)
		}
		out = append(out, perm[lo:hi])
	}
	return out
}

func gather(y []int, idx []int) []int {
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}

func vstack(rows []*tensor.Dense) *tensor.Dense {
	if len(rows) == 0 {
		return nil
	}
	total := 0
	for _, r := range rows {
		total += r.Rows
	}
	out := tensor.NewDense(total, rows[0].Cols)
	off := 0
	for _, r := range rows {
		copy(out.Data[off:off+len(r.Data)], r.Data)
		off += len(r.Data)
	}
	return out
}
