package model

import (
	"math/rand"

	"blindfl/internal/core"
	"blindfl/internal/data"
	"blindfl/internal/nn"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// numericSrcA adapts the dense and sparse MatMul halves behind one facade.
type numericSrcA struct {
	dense  *core.MatMulA
	sparse *core.SparseMatMulA
}

func (s *numericSrcA) forward(p data.Part) {
	if s.sparse != nil {
		s.sparse.Forward(p.Sparse)
		return
	}
	s.dense.Forward(core.DenseFeatures{M: p.Dense})
}

func (s *numericSrcA) backward() {
	if s.sparse != nil {
		s.sparse.Backward()
		return
	}
	s.dense.Backward()
}

// numSrcB abstracts Party B's numeric source layer: the two-party
// dense/sparse facade below, or the k-session multi-party one (multi.go).
type numSrcB interface {
	forward(p data.Part) *tensor.Dense
	backward(g *tensor.Dense)
}

type numericSrcB struct {
	dense  *core.MatMulB
	sparse *core.SparseMatMulB
}

func (s *numericSrcB) forward(p data.Part) *tensor.Dense {
	if s.sparse != nil {
		return s.sparse.Forward(p.Sparse)
	}
	return s.dense.Forward(core.DenseFeatures{M: p.Dense})
}

func (s *numericSrcB) backward(g *tensor.Dense) {
	if s.sparse != nil {
		s.sparse.Backward(g)
		return
	}
	s.dense.Backward(g)
}

// FedA is Party A's half of a federated model: at most one numeric source
// layer and one Embed-MatMul source layer, mirroring FedB.
type FedA struct {
	num *numericSrcA
	emb *core.EmbedMatMulA
}

// FedB is Party B's half: the source layers plus the plaintext top model.
type FedB struct {
	kind    Kind
	classes int
	num     numSrcB
	emb     *core.EmbedMatMulB
	head    headB
	opt     *nn.SGD
}

// headB maps source-layer outputs to logits and routes gradients back; one
// implementation per model family.
type headB interface {
	forward(zNum, zEmb *tensor.Dense) *tensor.Dense
	backward(grad *tensor.Dense) (gNum, gEmb *tensor.Dense)
	params() []*nn.Param
}

// biasHead: logits = Z + b (LR and MLR).
type biasHead struct{ bias *nn.Bias }

func (h *biasHead) forward(zNum, _ *tensor.Dense) *tensor.Dense { return h.bias.Forward(zNum) }
func (h *biasHead) backward(g *tensor.Dense) (*tensor.Dense, *tensor.Dense) {
	return h.bias.Backward(g), nil
}
func (h *biasHead) params() []*nn.Param { return h.bias.Params() }

// mlpHead: logits = MLP(Z) with a leading ReLU (the source layer is the
// first linear layer).
type mlpHead struct{ seq *nn.Sequential }

func (h *mlpHead) forward(zNum, _ *tensor.Dense) *tensor.Dense { return h.seq.Forward(zNum) }
func (h *mlpHead) backward(g *tensor.Dense) (*tensor.Dense, *tensor.Dense) {
	return h.seq.Backward(g), nil
}
func (h *mlpHead) params() []*nn.Param { return h.seq.Params() }

// wdlHead: logits = Z_wide + MLP(Z_deep) (paper Fig. 5).
type wdlHead struct{ deep *nn.Sequential }

func (h *wdlHead) forward(zNum, zEmb *tensor.Dense) *tensor.Dense {
	return zNum.Add(h.deep.Forward(zEmb))
}
func (h *wdlHead) backward(g *tensor.Dense) (*tensor.Dense, *tensor.Dense) {
	return g, h.deep.Backward(g)
}
func (h *wdlHead) params() []*nn.Param { return h.deep.Params() }

// dlrmHead: logits = MLP(ReLU(Z_num + Z_emb)) — the simplified DLRM
// interaction documented in DESIGN.md.
type dlrmHead struct {
	relu *nn.ReLU
	seq  *nn.Sequential
}

func (h *dlrmHead) forward(zNum, zEmb *tensor.Dense) *tensor.Dense {
	return h.seq.Forward(h.relu.Forward(zNum.Add(zEmb)))
}
func (h *dlrmHead) backward(g *tensor.Dense) (*tensor.Dense, *tensor.Dense) {
	gz := h.relu.Backward(h.seq.Backward(g))
	return gz, gz
}
func (h *dlrmHead) params() []*nn.Param { return h.seq.Params() }

// buildMLPTop constructs ReLU→Linear chains from in through hidden to out.
func buildMLPTop(rng *rand.Rand, in int, hidden []int, out int) *nn.Sequential {
	mods := []nn.Module{&nn.ReLU{}}
	prev := in
	for _, hdim := range hidden {
		mods = append(mods, nn.NewLinear(rng, prev, hdim), &nn.ReLU{})
		prev = hdim
	}
	mods = append(mods, nn.NewLinear(rng, prev, out))
	return nn.NewSequential(mods...)
}

// sourceOut returns the numeric source layer's output width for a family.
func sourceOut(kind Kind, classes int, h Hyper) int {
	switch kind {
	case LR, WDL:
		return 1
	case MLR:
		return outDim(classes)
	case MLP:
		return firstHidden(h)
	case DLRM:
		return firstHidden(h)
	}
	panic("model: unreachable")
}

func firstHidden(h Hyper) int {
	if len(h.Hidden) == 0 {
		return 16
	}
	return h.Hidden[0]
}

func restHidden(h Hyper) []int {
	if len(h.Hidden) <= 1 {
		return nil
	}
	return h.Hidden[1:]
}

// coreCfg assembles the source-layer Config a Hyper implies for a family.
func coreCfg(kind Kind, classes int, h Hyper) core.Config {
	return core.Config{Out: sourceOut(kind, classes, h), LR: h.LR, Momentum: h.Momentum,
		Packed: h.Packed, Stream: h.Stream, Textbook: h.Textbook, TableCacheMB: h.TableCacheMB}
}

// NewFedA builds Party A's model half. Must run concurrently with NewFedB.
func NewFedA(p *protocol.Peer, kind Kind, ds *data.Dataset, h Hyper) *FedA {
	m := &FedA{}
	cfg := coreCfg(kind, ds.Spec.Classes, h)
	inA, inB := ds.TrainA.NumCols(), ds.TrainB.NumCols()
	if ds.Spec.Dense() {
		m.num = &numericSrcA{dense: core.NewMatMulA(p, cfg, inA, inB)}
	} else {
		m.num = &numericSrcA{sparse: core.NewSparseMatMulA(p, cfg, inA, inB)}
	}
	if kind.UsesEmbedding() {
		m.emb = core.NewEmbedMatMulA(p, embedCfg(kind, ds, h))
	}
	return m
}

// NewFedB builds Party B's model half with the plaintext top model.
func NewFedB(p *protocol.Peer, kind Kind, ds *data.Dataset, h Hyper) *FedB {
	classes := ds.Spec.Classes
	m := &FedB{kind: kind, classes: classes}
	cfg := coreCfg(kind, classes, h)
	inA, inB := ds.TrainA.NumCols(), ds.TrainB.NumCols()
	if ds.Spec.Dense() {
		m.num = &numericSrcB{dense: core.NewMatMulB(p, cfg, inA, inB)}
	} else {
		m.num = &numericSrcB{sparse: core.NewSparseMatMulB(p, cfg, inA, inB)}
	}
	if kind.UsesEmbedding() {
		m.emb = core.NewEmbedMatMulB(p, embedCfg(kind, ds, h))
	}
	m.finishTop(kind, classes, h)
	return m
}

// finishTop builds the plaintext head and its optimizer for a family —
// shared by the two-party and multi-party B constructors so both draw the
// top-model init from the same (h.Seed+77) stream.
func (m *FedB) finishTop(kind Kind, classes int, h Hyper) {
	rng := rand.New(rand.NewSource(h.Seed + 77))
	out := outDim(classes)
	switch kind {
	case LR, MLR:
		m.head = &biasHead{bias: nn.NewBias(out)}
	case MLP:
		m.head = &mlpHead{seq: buildMLPTop(rng, firstHidden(h), restHidden(h), out)}
	case WDL:
		deepIn := sourceOutEmbed(h)
		m.head = &wdlHead{deep: buildMLPTop(rng, deepIn, restHidden(h), out)}
	case DLRM:
		m.head = &dlrmHead{relu: &nn.ReLU{}, seq: nn.NewSequential(nn.NewLinear(rng, firstHidden(h), out))}
	}
	m.opt = nn.NewSGD(h.LR, h.Momentum, m.head.params())
}

// sourceOutEmbed is the Embed-MatMul output width (the deep tower input).
func sourceOutEmbed(h Hyper) int { return firstHidden(h) }

func embedCfg(kind Kind, ds *data.Dataset, h Hyper) core.EmbedConfig {
	out := sourceOutEmbed(h)
	if kind == DLRM {
		out = firstHidden(h)
	}
	return core.EmbedConfig{
		Config:  core.Config{Out: out, LR: h.LR, Momentum: h.Momentum, Packed: h.Packed, Stream: h.Stream, Textbook: h.Textbook, TableCacheMB: h.TableCacheMB},
		VocabA:  ds.Spec.CatVocab,
		VocabB:  ds.Spec.CatVocab,
		FieldsA: ds.TrainA.Cat.Cols,
		FieldsB: ds.TrainB.Cat.Cols,
		Dim:     h.EmbDim,
	}
}

// StepA runs Party A's forward and backward for one mini-batch.
func (m *FedA) StepA(p data.Part) {
	m.num.forward(p)
	if m.emb != nil {
		m.emb.Forward(p.Cat)
	}
	m.num.backward()
	if m.emb != nil {
		m.emb.Backward()
	}
}

// ForwardA runs Party A's inference-only pass.
func (m *FedA) ForwardA(p data.Part) {
	m.num.forward(p)
	if m.emb != nil {
		m.emb.Forward(p.Cat)
	}
}

// forwardB runs Party B's forward and returns the logits.
func (m *FedB) forwardB(p data.Part) *tensor.Dense {
	zNum := m.num.forward(p)
	var zEmb *tensor.Dense
	if m.emb != nil {
		zEmb = m.emb.Forward(p.Cat)
	}
	return m.head.forward(zNum, zEmb)
}

// StepB runs Party B's full training step and returns the mini-batch loss.
func (m *FedB) StepB(p data.Part, y []int) float64 {
	logits := m.forwardB(p)
	loss, grad := m.lossGrad(logits, y)
	m.opt.ZeroGrad()
	gNum, gEmb := m.head.backward(grad)
	m.opt.Step()
	m.num.backward(gNum)
	if m.emb != nil {
		m.emb.Backward(gEmb)
	}
	return loss
}

// ForwardB runs Party B's inference-only pass and returns the logits.
func (m *FedB) ForwardB(p data.Part) *tensor.Dense { return m.forwardB(p) }

func (m *FedB) lossGrad(logits *tensor.Dense, y []int) (float64, *tensor.Dense) {
	if m.classes == 2 {
		return nn.BCEWithLogits(logits, y)
	}
	return nn.SoftmaxCE(logits, y)
}

// TrainFederated trains a federated model end to end on an in-process
// protocol session and returns Party B's training history. The mini-batch
// order is derived from the shared hyper-parameter seed, standing in for the
// order the parties would agree on at setup time.
func TrainFederated(kind Kind, ds *data.Dataset, h Hyper, pa, pb *protocol.Peer) (*History, error) {
	hist := &History{MetricName: metricName(ds.Spec.Classes)}
	// RunParties closes both conns on the first party error, so a one-sided
	// failure unblocks the survivor with transport.ErrClosed instead of
	// hanging, and the returned error is the root cause (first to arrive).
	err := protocol.RunParties(pa, pb,
		func() {
			ma := NewFedA(pa, kind, ds, h)
			order := rand.New(rand.NewSource(h.Seed + 999))
			for e := 0; e < h.Epochs; e++ {
				perm := data.Shuffle(order, ds.TrainA.Rows())
				for _, idx := range batchesOf(perm, h.Batch) {
					ma.StepA(ds.TrainA.Batch(idx))
				}
			}
			for _, idx := range data.BatchIndices(ds.TestA.Rows(), h.Batch) {
				ma.ForwardA(ds.TestA.Batch(idx))
			}
		},
		func() {
			mb := NewFedB(pb, kind, ds, h)
			order := rand.New(rand.NewSource(h.Seed + 999))
			for e := 0; e < h.Epochs; e++ {
				perm := data.Shuffle(order, ds.TrainB.Rows())
				for _, idx := range batchesOf(perm, h.Batch) {
					loss := mb.StepB(ds.TrainB.Batch(idx), gather(ds.TrainY, idx))
					hist.Losses = append(hist.Losses, loss)
				}
			}
			hist.TestLogits = evalB(mb, ds, h)
		})
	if err != nil {
		return nil, err
	}
	finishHistory(hist, ds)
	return hist, nil
}

func evalB(mb *FedB, ds *data.Dataset, h Hyper) *tensor.Dense {
	var rows []*tensor.Dense
	for _, idx := range data.BatchIndices(ds.TestB.Rows(), h.Batch) {
		rows = append(rows, mb.ForwardB(ds.TestB.Batch(idx)))
	}
	return vstack(rows)
}

func finishHistory(hist *History, ds *data.Dataset) {
	if hist.TestLogits == nil {
		return
	}
	if ds.Spec.Classes == 2 {
		hist.TestMetric = nn.AUC(nn.Scores(hist.TestLogits), ds.TestY)
	} else {
		hist.TestMetric = nn.Accuracy(hist.TestLogits, ds.TestY)
	}
}

func batchesOf(perm []int, batch int) [][]int {
	var out [][]int
	for lo := 0; lo < len(perm); lo += batch {
		hi := lo + batch
		if hi > len(perm) {
			hi = len(perm)
		}
		out = append(out, perm[lo:hi])
	}
	return out
}

func gather(y []int, idx []int) []int {
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}

func vstack(rows []*tensor.Dense) *tensor.Dense {
	if len(rows) == 0 {
		return nil
	}
	total := 0
	for _, r := range rows {
		total += r.Rows
	}
	out := tensor.NewDense(total, rows[0].Cols)
	off := 0
	for _, r := range rows {
		copy(out.Data[off:off+len(r.Data)], r.Data)
		off += len(r.Data)
	}
	return out
}
