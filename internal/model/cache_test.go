package model

import (
	"testing"

	"blindfl/internal/data"
	"blindfl/internal/hetensor"
)

// TestTableCacheTrainingBitExact runs a multi-epoch federated training twice
// — persistent dot-table cache off, then on — and requires bit-identical
// losses and test metric: the cache may only trade memory for recomputation,
// never change a group element. It also asserts the cache actually worked
// (hits during training, eviction under the byte budget).
func TestTableCacheTrainingBitExact(t *testing.T) {
	ds := data.Generate(tinySpec("t-cache", 16, 16, 2, false), 4)
	h := tinyHyper()
	h.Epochs = 2

	run := func(cacheMB int) *History {
		t.Helper()
		h.TableCacheMB = cacheMB
		pa, pb := fedPipe(t, 700)
		hist, err := TrainFederated(LR, ds, h, pa, pb)
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}

	base := run(0)
	hetensor.ResetTableCache()
	cached := run(64)
	stats := hetensor.TableCacheStatsNow()
	hetensor.SetTableCacheBudget(0)
	hetensor.ResetTableCache()

	if stats.Hits == 0 {
		t.Fatalf("cache stats %+v: multi-epoch training should reuse tables", stats)
	}
	if len(base.Losses) != len(cached.Losses) {
		t.Fatalf("loss counts differ: %d vs %d", len(base.Losses), len(cached.Losses))
	}
	for i := range base.Losses {
		if base.Losses[i] != cached.Losses[i] {
			t.Fatalf("loss %d differs: cache off %v, on %v", i, base.Losses[i], cached.Losses[i])
		}
	}
	if base.TestMetric != cached.TestMetric {
		t.Fatalf("test metric differs: cache off %v, on %v", base.TestMetric, cached.TestMetric)
	}
}

// TestTableCacheTrainingBudgetRespected trains with a budget far below the
// working set: eviction must actually happen and accounting must stay under
// the budget, while training still matches the uncached run bit-for-bit.
func TestTableCacheTrainingBudgetRespected(t *testing.T) {
	ds := data.Generate(tinySpec("t-cache-b", 16, 16, 2, false), 5)
	h := tinyHyper()
	h.Epochs = 2 // two epochs of refreshed weight copies: ~2 MiB of tables

	h.TableCacheMB = 0
	pa, pb := fedPipe(t, 701)
	base, err := TrainFederated(LR, ds, h, pa, pb)
	if err != nil {
		t.Fatal(err)
	}

	hetensor.ResetTableCache()
	h.TableCacheMB = 1 // 1 MiB: far below a full epoch's table working set
	pa, pb = fedPipe(t, 701)
	tight, err := TrainFederated(LR, ds, h, pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	stats := hetensor.TableCacheStatsNow()
	hetensor.SetTableCacheBudget(0)
	hetensor.ResetTableCache()

	if stats.Evicted == 0 {
		t.Fatalf("cache stats %+v: 1 MiB budget should evict during an epoch", stats)
	}
	if stats.Bytes > 1<<20 {
		t.Fatalf("cache stats %+v: bytes exceed the 1 MiB budget", stats)
	}
	for i := range base.Losses {
		if base.Losses[i] != tight.Losses[i] {
			t.Fatalf("loss %d differs under eviction pressure: %v vs %v", i, base.Losses[i], tight.Losses[i])
		}
	}
}
