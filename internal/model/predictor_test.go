package model

import (
	"bytes"
	"testing"

	"blindfl/internal/data"
	"blindfl/internal/hetensor"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// trainCheckpointed trains a serveable model on a fresh pipe and returns the
// dataset, history and serve checkpoint.
func trainCheckpointed(t *testing.T, kind Kind, h Hyper, seed int64) (*data.Dataset, *History, []byte) {
	t.Helper()
	ds := data.Generate(tinySpec("t-pred", 12, 12, 2, false), 11)
	pa, pb := fedPipe(t, seed)
	var buf bytes.Buffer
	hist, err := Trainer{Kind: kind, Hyper: h, Checkpoint: &buf}.Train(ds, Pair(pa, pb))
	if err != nil {
		t.Fatal(err)
	}
	return ds, hist, buf.Bytes()
}

// restorePredictor loads a checkpoint onto a fresh two-party pipe.
func restorePredictor(t *testing.T, ck []byte, seed int64) *Predictor {
	t.Helper()
	skA, skB := protocol.TestKeys()
	pa, pb, err := protocol.Pipe(skA, skB, seed)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(bytes.NewReader(ck), Pair(pa, pb))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func assertSameBits(t *testing.T, got, want *tensor.Dense, what string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %d×%d want %d×%d", what, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: logits[%d] = %v, want exactly %v", what, i, got.Data[i], want.Data[i])
		}
	}
}

// TestPredictorBitIdentity: a Predictor restored from a checkpoint must
// reproduce the training-time test logits bit for bit — with the engine on
// and off — and agree exactly with the plaintext integer reference.
func TestPredictorBitIdentity(t *testing.T) {
	h := tinyHyper()
	h.Epochs = 2
	ds, hist, ck := trainCheckpointed(t, LR, h, 600)
	p := restorePredictor(t, ck, 601)

	xA, xB := ds.TestA.Dense, ds.TestB.Dense
	got, err := p.PredictBatch([]*tensor.Dense{xA}, xB)
	if err != nil {
		t.Fatal(err)
	}
	// One whole-test-set batch vs evalB's h.Batch-sized batches: the serve
	// path is exact per request row, so batching must not change a bit.
	assertSameBits(t, got, hist.TestLogits, "served logits vs training-time eval")

	plain, err := p.PlainLogits([]*tensor.Dense{xA}, xB)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBits(t, plain, hist.TestLogits, "plaintext reference")

	// Engine off (textbook multiplies): still the same bits.
	prev := hetensor.SetTextbook(true)
	defer hetensor.SetTextbook(prev)
	got2, err := p.PredictBatch([]*tensor.Dense{xA}, xB)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBits(t, got2, hist.TestLogits, "served logits under textbook engine")
}

// TestPredictorBitIdentityMulti is the k-party version: checkpoint a 3-party
// run, restore onto fresh sessions, compare to the training-time logits.
func TestPredictorBitIdentityMulti(t *testing.T) {
	const k = 3
	h := tinyHyper()
	h.Epochs = 2
	ds := data.Generate(tinySpec("t-predk", 13, 13, 2, false), 12)

	skA, skB := protocol.TestKeys()
	skAs := make([]*paillier.PrivateKey, k)
	for i := range skAs {
		skAs[i] = skA
	}
	as, g, err := protocol.GroupPipe(skAs, skB, 610)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	hist, err := Trainer{Kind: LR, Hyper: h, Checkpoint: &buf}.Train(ds, PartySet{As: as, B: g})
	if err != nil {
		t.Fatal(err)
	}

	as2, g2, err := protocol.GroupPipe(skAs, skB, 611)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(bytes.NewReader(buf.Bytes()), PartySet{As: as2, B: g2})
	if err != nil {
		t.Fatal(err)
	}
	testAs := data.SplitCols(ds.TestA, k)
	xAs := make([]*tensor.Dense, k)
	for i, part := range testAs {
		xAs[i] = part.Dense
	}
	got, err := p.PredictBatch(xAs, ds.TestB.Dense)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBits(t, got, hist.TestLogits, "k-party served logits")
}

// TestCheckpointRejectsNonServeable: sparse datasets and embedding families
// have no serve path, so asking for a checkpoint must fail up front.
func TestCheckpointRejectsNonServeable(t *testing.T) {
	ds := data.Generate(tinySpec("t-predsp", 40, 5, 2, false), 13)
	pa, pb := fedPipe(t, 620)
	var buf bytes.Buffer
	_, err := Trainer{Kind: LR, Hyper: tinyHyper(), Checkpoint: &buf}.Train(ds, Pair(pa, pb))
	if err == nil {
		t.Fatal("Trainer accepted a checkpoint request for a sparse dataset")
	}
	if buf.Len() != 0 {
		t.Fatalf("checkpoint written despite error (%d bytes)", buf.Len())
	}
}
