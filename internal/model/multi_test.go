package model

import (
	"strings"
	"testing"
	"time"

	"blindfl/internal/data"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
)

// fedGroup builds a k-session group sharing the two test keys.
func fedGroup(t testing.TB, k int, seed int64) ([]*protocol.Peer, *protocol.Group) {
	t.Helper()
	skA, skB := protocol.TestKeys()
	skAs := make([]*paillier.PrivateKey, k)
	for i := range skAs {
		skAs[i] = skA
	}
	as, g, err := protocol.GroupPipe(skAs, skB, seed)
	if err != nil {
		t.Fatal(err)
	}
	return as, g
}

// requireBitIdentical asserts two training histories agree bit for bit:
// every per-iteration loss, the test metric, and every test logit.
func requireBitIdentical(t *testing.T, name string, multi, two *History) {
	t.Helper()
	if len(multi.Losses) != len(two.Losses) {
		t.Fatalf("%s: %d losses vs %d", name, len(multi.Losses), len(two.Losses))
	}
	for i := range multi.Losses {
		if multi.Losses[i] != two.Losses[i] {
			t.Fatalf("%s: loss %d differs: %v vs %v", name, i, multi.Losses[i], two.Losses[i])
		}
	}
	if multi.TestMetric != two.TestMetric {
		t.Fatalf("%s: test metric differs: %v vs %v", name, multi.TestMetric, two.TestMetric)
	}
	if !multi.TestLogits.Equal(two.TestLogits, 0) {
		t.Fatalf("%s: test logits differ bitwise", name)
	}
}

// TestMultiK1BitExactTwoParty pins the degenerate group shape end to end: a
// 1-party group over the column-concatenated dataset *is* the two-party run
// — GroupPipe session 0 draws Pipe's streams — so losses, AUC and test
// logits must be bit-identical, not merely close.
func TestMultiK1BitExactTwoParty(t *testing.T) {
	ds := data.Generate(tinySpec("t-mk1", 16, 16, 2, false), 30)
	h := tinyHyper()
	h.Epochs = 3
	pa, pb := fedPipe(t, 520)
	two, err := TrainFederated(LR, ds, h, pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	as, g := fedGroup(t, 1, 520)
	multi, err := TrainFederatedMulti(LR, ds, h, as, g)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "k=1 plain", multi, two)
}

// TestMultiK1BitExactTwoPartyEngineOn repeats the k=1 bit-exactness with the
// whole throughput engine on — packing, chunk streaming, the persistent
// dot-table cache, and blinding pools for both keys. Pool blinding changes
// ciphertext bits, never plaintexts, so the histories must still agree bit
// for bit.
func TestMultiK1BitExactTwoPartyEngineOn(t *testing.T) {
	if testing.Short() {
		t.Skip("engine-on k=1 bit-exactness skipped in -short")
	}
	skA, skB := protocol.TestKeys()
	var pools []*paillier.Pool
	for _, sk := range []*paillier.PrivateKey{skA, skB} {
		p := paillier.NewPool(&sk.PublicKey, 64, 0, paillier.Rand, paillier.WithShortExp(0))
		paillier.RegisterPool(p)
		pools = append(pools, p)
	}
	defer func() {
		for _, sk := range []*paillier.PrivateKey{skA, skB} {
			paillier.UnregisterPool(&sk.PublicKey)
		}
		for _, p := range pools {
			p.Close()
		}
	}()

	ds := data.Generate(tinySpec("t-mk1e", 16, 16, 2, false), 31)
	h := tinyHyper()
	h.Epochs = 2
	h.Packed = true
	h.Stream = true
	h.TableCacheMB = 64
	pa, pb := fedPipe(t, 521)
	two, err := TrainFederated(LR, ds, h, pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	as, g := fedGroup(t, 1, 521)
	multi, err := TrainFederatedMulti(LR, ds, h, as, g)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "k=1 engine-on", multi, two)
}

// TestMultiK3LosslessAgainstTwoParty checks Algorithm 3's lossless property
// at k=3 on an unevenly split dense dataset (8 columns across 3 parties:
// 3+3+2): the k-party run must match the two-party run on the
// column-concatenated dataset to the paper's statistical criterion — the
// per-session weight pieces are fresh random draws, so the trajectories
// agree in distribution, not bit for bit — and must genuinely learn.
func TestMultiK3LosslessAgainstTwoParty(t *testing.T) {
	ds := data.Generate(tinySpec("t-mk3", 16, 16, 2, false), 32)
	h := tinyHyper()
	h.Epochs = 6
	pa, pb := fedPipe(t, 522)
	two, err := TrainFederated(LR, ds, h, pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	as, g := fedGroup(t, 3, 522)
	multi, err := TrainFederatedMulti(LR, ds, h, as, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Losses) != len(two.Losses) {
		t.Fatalf("iteration counts differ: %d vs %d", len(multi.Losses), len(two.Losses))
	}
	if multi.TestMetric < two.TestMetric-0.05 {
		t.Fatalf("k=3 AUC %v vs two-party %v: lossless property violated", multi.TestMetric, two.TestMetric)
	}
	if multi.TestMetric < 0.65 {
		t.Fatalf("k=3 AUC %v: did not learn", multi.TestMetric)
	}
}

// TestMultiK3SparseLR runs the k-party group over the sparse source layer.
func TestMultiK3SparseLR(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-party sparse training skipped in -short")
	}
	ds := data.Generate(tinySpec("t-mk3sp", 60, 6, 2, false), 33)
	h := tinyHyper()
	h.Epochs = 6
	as, g := fedGroup(t, 3, 523)
	multi, err := TrainFederatedMulti(LR, ds, h, as, g)
	if err != nil {
		t.Fatal(err)
	}
	if multi.TestMetric < 0.6 {
		t.Fatalf("k=3 sparse AUC = %v", multi.TestMetric)
	}
}

// TestMultiK3MLP exercises a deeper top model across the group.
func TestMultiK3MLP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-party MLP training skipped in -short")
	}
	ds := data.Generate(tinySpec("t-mk3mlp", 16, 16, 2, false), 34)
	h := tinyHyper()
	h.Epochs = 4
	as, g := fedGroup(t, 3, 524)
	multi, err := TrainFederatedMulti(MLP, ds, h, as, g)
	if err != nil {
		t.Fatal(err)
	}
	if multi.TestMetric < 0.6 {
		t.Fatalf("k=3 MLP AUC = %v", multi.TestMetric)
	}
}

func TestMultiRejectsEmbeddingFamilies(t *testing.T) {
	ds := data.Generate(tinySpec("t-mwdl", 40, 5, 2, true), 35)
	as, g := fedGroup(t, 2, 525)
	if _, err := TrainFederatedMulti(WDL, ds, tinyHyper(), as, g); err == nil || !strings.Contains(err.Error(), "Embed-MatMul") {
		t.Fatalf("err = %v, want an embedding-family rejection", err)
	}
}

func TestMultiRejectsTooManyParties(t *testing.T) {
	// TrainA holds 3 of the 6 columns; ask for 4 parties.
	ds := data.Generate(tinySpec("t-mwide", 6, 6, 2, false), 36)
	as, g := fedGroup(t, 4, 526)
	if _, err := TrainFederatedMulti(LR, ds, tinyHyper(), as, g); err == nil || !strings.Contains(err.Error(), "cannot split") {
		t.Fatalf("err = %v, want a split rejection", err)
	}
}

// TestMultiFailingSessionSurfacesError injects a dead feature party into a
// k=3 group mid-setup: TrainFederatedMulti must return the transport error
// (unblocking the other sessions) instead of hanging — the model-level form
// of the RunGroup teardown regression test.
func TestMultiFailingSessionSurfacesError(t *testing.T) {
	ds := data.Generate(tinySpec("t-mfail", 16, 16, 2, false), 37)
	h := tinyHyper()
	h.Epochs = 1
	as, g := fedGroup(t, 3, 528)
	as[1].Conn.Close() // feature party 1 is gone before training starts
	done := make(chan error, 1)
	go func() {
		_, err := TrainFederatedMulti(LR, ds, h, as, g)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an error from the dead session")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("TrainFederatedMulti hung on a dead session")
	}
}
