package model

import (
	"math"
	"testing"

	"blindfl/internal/data"
)

// TestFederatedLRStreamedMatchesMonolithic trains the same tiny federated LR
// twice — chunk streaming on and off — from identical seeds. Chunking only
// changes message framing, so the trajectories must agree exactly to
// fixed-point tolerance: the end-to-end form of the streamed correctness
// contract.
func TestFederatedLRStreamedMatchesMonolithic(t *testing.T) {
	ds := data.Generate(tinySpec("t-fedlr-streamed", 12, 12, 2, false), 3)
	h := tinyHyper()
	h.Epochs = 2

	run := func(stream bool) *History {
		hh := h
		hh.Stream = stream
		pa, pb := fedPipe(t, 530)
		pa.ChunkRows, pb.ChunkRows = 3, 3
		hist, err := TrainFederated(LR, ds, hh, pa, pb)
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}
	streamed := run(true)
	plain := run(false)

	if len(streamed.Losses) != len(plain.Losses) {
		t.Fatalf("iteration counts differ: %d vs %d", len(streamed.Losses), len(plain.Losses))
	}
	for i := range streamed.Losses {
		if math.Abs(streamed.Losses[i]-plain.Losses[i]) > 1e-6 {
			t.Fatalf("loss %d diverges: streamed %v vs monolithic %v", i, streamed.Losses[i], plain.Losses[i])
		}
	}
	if math.Abs(streamed.TestMetric-plain.TestMetric) > 1e-6 {
		t.Fatalf("test metric diverges: streamed %v vs monolithic %v", streamed.TestMetric, plain.TestMetric)
	}
}

// TestFederatedPackedStreamedWDL exercises the streamed packed Embed-MatMul
// lookup path end to end on the deep model family.
func TestFederatedPackedStreamedWDL(t *testing.T) {
	if testing.Short() {
		t.Skip("federated WDL training is slow")
	}
	ds := data.Generate(tinySpec("t-fedwdl-streamed", 8, 8, 2, true), 5)
	h := tinyHyper()

	run := func(stream bool) *History {
		hh := h
		hh.Packed = true
		hh.Stream = stream
		pa, pb := fedPipe(t, 531)
		pa.ChunkRows, pb.ChunkRows = 2, 2
		hist, err := TrainFederated(WDL, ds, hh, pa, pb)
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}
	streamed := run(true)
	plain := run(false)
	for i := range streamed.Losses {
		if math.Abs(streamed.Losses[i]-plain.Losses[i]) > 1e-6 {
			t.Fatalf("loss %d diverges: streamed %v vs monolithic %v", i, streamed.Losses[i], plain.Losses[i])
		}
	}
}
