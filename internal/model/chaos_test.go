package model

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"blindfl/internal/data"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/transport"
)

// Chaos suite: every fault class the deterministic injector produces —
// bit-flip, drop, duplicate, reorder, delay, mid-run kill — driven through
// end-to-end federated training. The run-integrity contract under test is
// binary: a run either recovers bit-exactly (the fault was absorbed by the
// chunk NACK/resend protocol or was a pure timing fault) or fails loudly
// with a typed error (transport.ErrCorrupt, transport.ErrClosed,
// protocol.ErrSessionLost). A silently wrong result is the one outcome that
// must never happen.

// chaosHyper is a tiny streamed LR configuration: streaming on with small
// chunks so every batch crosses the wire as multiple checksummed chunks the
// injector can target.
func chaosHyper() Hyper {
	h := tinyHyper()
	h.Epochs = 1
	h.Stream = true
	return h
}

// fedPipeFault builds a two-party pipe whose Party-A endpoint sends through
// a FaultConn running plan, so every A→B chunk is exposed to the schedule.
func fedPipeFault(t *testing.T, seed int64, label string, plan transport.FaultPlan) (*protocol.Peer, *protocol.Peer, *transport.FaultConn) {
	t.Helper()
	skA, skB := protocol.TestKeys()
	ca, cb := transport.Pair(4096)
	fc := transport.NewFaultConn(ca, seed, label, plan)
	pa, pb, err := protocol.PipeOn(fc, cb, skA, skB, seed)
	if err != nil {
		t.Fatal(err)
	}
	return pa, pb, fc
}

// faultGroupPipe is GroupPipe with session faultSession's Party-A endpoint
// wrapped in a FaultConn running plan.
func faultGroupPipe(t *testing.T, k int, seed int64, faultSession int, plan transport.FaultPlan) ([]*protocol.Peer, *protocol.Group, *transport.FaultConn) {
	t.Helper()
	skA, skB := protocol.TestKeys()
	as := make([]*protocol.Peer, k)
	bs := make([]*protocol.Peer, k)
	var fc *transport.FaultConn
	errs := make(chan error, 2*k)
	for i := 0; i < k; i++ {
		ca, cb := transport.Pair(4096)
		var connA transport.Conn = ca
		if i == faultSession {
			fc = transport.NewFaultConn(ca, seed, "chaos-group", plan)
			connA = fc
		}
		a := protocol.NewPeer(protocol.PartyA, connA, skA, protocol.SessionRNG(seed, i, protocol.PartyA))
		b := protocol.NewPeer(protocol.PartyB, cb, skB, protocol.SessionRNG(seed, i, protocol.PartyB))
		as[i], bs[i] = a, b
		go func() { errs <- a.Handshake() }()
		go func() { errs <- b.Handshake() }()
	}
	for i := 0; i < 2*k; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	return as, protocol.NewGroup(bs), fc
}

func totalFaults(s transport.FaultStats) int64 {
	return s.Flips + s.Drops + s.Dups + s.Reorders
}

// TestChaosChunkFaultsRecoverBitExact trains the same streamed LR once
// fault-free and once per fault class. Chunk faults within the injector's
// budget are absorbed by the checksum/NACK/resend protocol, and delays only
// stretch time, so every faulted trajectory must be bit-identical to the
// clean one — recovery that "mostly" works would show up here as a loss
// divergence.
func TestChaosChunkFaultsRecoverBitExact(t *testing.T) {
	ds := data.Generate(tinySpec("t-chaos-rec", 12, 12, 2, false), 3)
	h := chaosHyper()

	pa, pb := fedPipe(t, 600)
	pa.ChunkRows, pb.ChunkRows = 3, 3
	clean, err := TrainFederated(LR, ds, h, pa, pb)
	if err != nil {
		t.Fatal(err)
	}

	classes := []struct {
		name string
		plan transport.FaultPlan
		// hit reports whether the schedule actually fired.
		hit func(transport.FaultStats) bool
	}{
		{"bitflip", transport.FaultPlan{FlipProb: 0.3, MaxFaults: 2}, func(s transport.FaultStats) bool { return s.Flips > 0 }},
		{"drop", transport.FaultPlan{DropProb: 0.3, MaxFaults: 2}, func(s transport.FaultStats) bool { return s.Drops > 0 }},
		{"dup", transport.FaultPlan{DupProb: 0.3, MaxFaults: 2}, func(s transport.FaultStats) bool { return s.Dups > 0 }},
		{"reorder", transport.FaultPlan{ReorderProb: 0.3, MaxFaults: 2}, func(s transport.FaultStats) bool { return s.Reorders > 0 }},
		{"delay", transport.FaultPlan{DelayProb: 0.2, Delay: time.Millisecond}, func(s transport.FaultStats) bool { return s.Delays > 0 }},
		{"mixed", transport.FaultPlan{FlipProb: 0.2, DropProb: 0.2, DupProb: 0.2, ReorderProb: 0.2, MaxFaults: 3}, func(s transport.FaultStats) bool { return totalFaults(s) > 0 }},
	}
	for _, tc := range classes {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			pa, pb, fc := fedPipeFault(t, 600, "chaos-"+tc.name, tc.plan)
			pa.ChunkRows, pb.ChunkRows = 3, 3
			hist, err := TrainFederated(LR, ds, h, pa, pb)
			if err != nil {
				t.Fatalf("training under %s faults failed: %v", tc.name, err)
			}
			if !tc.hit(fc.Injected()) {
				t.Fatalf("fault schedule never fired: %+v", fc.Injected())
			}
			if len(hist.Losses) != len(clean.Losses) {
				t.Fatalf("iteration counts differ: %d vs %d", len(hist.Losses), len(clean.Losses))
			}
			for i := range hist.Losses {
				if hist.Losses[i] != clean.Losses[i] {
					t.Fatalf("loss %d diverges after recovery: %v vs clean %v", i, hist.Losses[i], clean.Losses[i])
				}
			}
			if hist.TestMetric != clean.TestMetric {
				t.Fatalf("test metric diverges after recovery: %v vs clean %v", hist.TestMetric, clean.TestMetric)
			}
		})
	}
}

// TestChaosPersistentCorruptionFailsTyped removes the fault budget so the
// retransmission round is corrupted too: the run must abort with the typed
// integrity error, never return a model trained on flipped ciphertexts.
func TestChaosPersistentCorruptionFailsTyped(t *testing.T) {
	ds := data.Generate(tinySpec("t-chaos-corrupt", 12, 12, 2, false), 3)
	pa, pb, _ := fedPipeFault(t, 601, "chaos-persistent", transport.FaultPlan{FlipProb: 1})
	pa.ChunkRows, pb.ChunkRows = 3, 3
	_, err := TrainFederated(LR, ds, chaosHyper(), pa, pb)
	if err == nil {
		t.Fatal("training returned a model over persistently corrupted chunks")
	}
	if !errors.Is(err, transport.ErrCorrupt) {
		t.Fatalf("err = %v, want transport.ErrCorrupt", err)
	}
}

// TestChaosMidRunKillFailsTyped kills the two-party connection mid-run: with
// a single session there is nothing to continue on, so the run must surface
// the connection loss as a typed failure on both parties instead of hanging.
func TestChaosMidRunKillFailsTyped(t *testing.T) {
	ds := data.Generate(tinySpec("t-chaos-kill2p", 12, 12, 2, false), 3)
	pa, pb, _ := fedPipeFault(t, 602, "chaos-kill", transport.FaultPlan{KillAtMsg: 20})
	done := make(chan error, 1)
	go func() {
		_, err := TrainFederated(LR, ds, chaosHyper(), pa, pb)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("training completed over a killed connection")
		}
		if !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("err = %v, want transport.ErrClosed", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("two-party training hung after a mid-run kill")
	}
}

// TestChaosGroupKillAbortsByDefault kills one session of a 3-party group
// mid-epoch without loss tolerance: the default contract is whole-group
// abort, with RunGroup's teardown unblocking the survivors.
func TestChaosGroupKillAbortsByDefault(t *testing.T) {
	ds := data.Generate(tinySpec("t-chaos-killg", 12, 12, 2, false), 3)
	as, g, _ := faultGroupPipe(t, 3, 603, 1, transport.FaultPlan{KillAtMsg: 20})
	done := make(chan error, 1)
	go func() {
		_, err := Trainer{Kind: LR, Hyper: chaosHyper()}.Train(ds, PartySet{As: as, B: g})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("group training completed after a session kill without ContinueOnLoss")
		}
		if !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("err = %v, want transport.ErrClosed", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("group training hung after a mid-epoch session kill")
	}
}

// TestChaosGroupKillContinueOnLoss is the recovery half of satellite 4: with
// ContinueOnLoss the two surviving sessions finish the epoch, the label
// party's history reports exactly which session died, and the metrics stay
// finite — a degraded-but-honest run, not an abort and not silent garbage.
func TestChaosGroupKillContinueOnLoss(t *testing.T) {
	ds := data.Generate(tinySpec("t-chaos-lossy", 12, 12, 2, false), 3)
	as, g, fc := faultGroupPipe(t, 3, 604, 1, transport.FaultPlan{KillAtMsg: 20})
	type result struct {
		hist *History
		err  error
	}
	done := make(chan result, 1)
	go func() {
		hist, err := Trainer{Kind: LR, Hyper: chaosHyper(), ContinueOnLoss: true}.Train(ds, PartySet{As: as, B: g})
		done <- result{hist, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("lossy run failed instead of continuing: %v", r.err)
		}
		if !fc.Injected().Killed {
			t.Fatal("kill schedule never fired")
		}
		if r.hist.LostSessions == nil || !r.hist.LostSessions[1] {
			t.Fatalf("LostSessions = %v, want session 1 lost", r.hist.LostSessions)
		}
		if r.hist.LostSessions[0] || r.hist.LostSessions[2] {
			t.Fatalf("LostSessions = %v, surviving sessions marked lost", r.hist.LostSessions)
		}
		if math.IsNaN(r.hist.TestMetric) || math.IsInf(r.hist.TestMetric, 0) {
			t.Fatalf("lossy run produced non-finite metric %v", r.hist.TestMetric)
		}
		for i, l := range r.hist.Losses {
			if math.IsNaN(l) || math.IsInf(l, 0) {
				t.Fatalf("lossy run produced non-finite loss %v at iteration %d", l, i)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ContinueOnLoss training hung after a mid-epoch session kill")
	}
}

// TestChaosLossyRunRefusesCheckpoint pins the partial-checkpoint guard: a
// run that lost a session never captured that session's layer half, so
// asking for a serve checkpoint must fail typed rather than write a model
// with a hole in it.
func TestChaosLossyRunRefusesCheckpoint(t *testing.T) {
	ds := data.Generate(tinySpec("t-chaos-lossyck", 12, 12, 2, false), 3)
	as, g, _ := faultGroupPipe(t, 3, 605, 1, transport.FaultPlan{KillAtMsg: 20})
	var sink discardWriter
	_, err := Trainer{Kind: LR, Hyper: chaosHyper(), ContinueOnLoss: true, Checkpoint: &sink}.
		Train(ds, PartySet{As: as, B: g})
	if err == nil {
		t.Fatal("lossy run wrote a checkpoint missing a session's layer half")
	}
	if !errors.Is(err, protocol.ErrSessionLost) {
		t.Fatalf("err = %v, want protocol.ErrSessionLost", err)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestChaosSpotCheckCleanRun runs the decrypt spot-check over a clean
// streamed and a clean monolithic run: checks must fire, mismatches must be
// zero, and the probe must not perturb the training trajectory (its
// randomness comes from a dedicated derivation, not the mask streams).
func TestChaosSpotCheckCleanRun(t *testing.T) {
	ds := data.Generate(tinySpec("t-chaos-spot", 12, 12, 2, false), 3)
	for _, stream := range []bool{false, true} {
		name := "monolithic"
		if stream {
			name = "streamed"
		}
		t.Run(name, func(t *testing.T) {
			h := chaosHyper()
			h.Stream = stream

			run := func(spot bool) (*History, *protocol.Peer) {
				pa, pb := fedPipe(t, 610)
				pa.ChunkRows, pb.ChunkRows = 3, 3
				pb.SpotCheck = spot
				hist, err := TrainFederated(LR, ds, h, pa, pb)
				if err != nil {
					t.Fatal(err)
				}
				return hist, pb
			}
			clean, _ := run(false)
			checked, pb := run(true)

			if pb.Stream.SpotChecks == 0 {
				t.Fatal("spot-check enabled but no rows were checked")
			}
			if pb.Stream.SpotMismatches != 0 {
				t.Fatalf("clean run reported %d spot-check mismatches", pb.Stream.SpotMismatches)
			}
			for i := range checked.Losses {
				if checked.Losses[i] != clean.Losses[i] {
					t.Fatalf("loss %d diverges with spot-checks on: %v vs %v", i, checked.Losses[i], clean.Losses[i])
				}
			}
			if checked.TestMetric != clean.TestMetric {
				t.Fatalf("test metric diverges with spot-checks on: %v vs %v", checked.TestMetric, clean.TestMetric)
			}
		})
	}
}

// TestChaosRetryPredictorRecovers exercises the bounded-retry serve-session
// setup: the first attempt dies on a killed connection, the second one — on
// fresh sessions — succeeds. A permanent error (garbage checkpoint) must
// not be retried.
func TestChaosRetryPredictorRecovers(t *testing.T) {
	ds := data.Generate(tinySpec("t-chaos-retry", 12, 12, 2, false), 3)
	h := chaosHyper()
	h.Stream = false
	skA, skB := protocol.TestKeys()
	pa, pb := fedPipe(t, 619)
	var buf bytes.Buffer
	if _, err := (Trainer{Kind: LR, Hyper: h, Checkpoint: &buf}).Train(ds, Pair(pa, pb)); err != nil {
		t.Fatal(err)
	}
	ck := buf.Bytes()

	attempts := 0
	p, err := RetryPredictor(3, time.Millisecond, func(attempt int) (*Predictor, error) {
		attempts++
		skAs := []*paillier.PrivateKey{skA}
		if attempt == 0 {
			// First attempt: the weight exchange dies on a killed connection.
			as, g, _ := faultGroupPipe(t, 1, 620, 0, transport.FaultPlan{KillAtMsg: 2})
			return NewPredictor(bytes.NewReader(ck), PartySet{As: as, B: g})
		}
		as, g, err := protocol.GroupPipe(skAs, skB, 621)
		if err != nil {
			return nil, err
		}
		return NewPredictor(bytes.NewReader(ck), PartySet{As: as, B: g})
	})
	if err != nil {
		t.Fatalf("RetryPredictor failed despite a healthy second attempt: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("RetryPredictor used %d attempts, want 2", attempts)
	}
	if p == nil || p.K() != 1 {
		t.Fatalf("RetryPredictor returned a malformed predictor")
	}

	attempts = 0
	_, err = RetryPredictor(3, time.Millisecond, func(int) (*Predictor, error) {
		attempts++
		as, g, gerr := protocol.GroupPipe([]*paillier.PrivateKey{skA}, skB, 622)
		if gerr != nil {
			return nil, gerr
		}
		defer g.Close()
		return NewPredictor(bytes.NewReader([]byte("not a checkpoint")), PartySet{As: as, B: g})
	})
	if err == nil {
		t.Fatal("RetryPredictor accepted a garbage checkpoint")
	}
	if attempts != 1 {
		t.Fatalf("RetryPredictor retried a permanent checkpoint error %d times", attempts)
	}
}
