package model

import (
	"testing"

	"blindfl/internal/data"
	"blindfl/internal/protocol"
)

func tinyHyper() Hyper {
	return Hyper{LR: 0.1, Momentum: 0.9, Batch: 32, Epochs: 2, Hidden: []int{8}, EmbDim: 4, Seed: 1}
}

// tinySpec builds a small learnable dataset for fast federated tests.
func tinySpec(name string, feats, nnz, classes int, cat bool) data.Spec {
	s := data.Spec{Name: name, Feats: feats, AvgNNZ: nnz, Classes: classes, Train: 160, Test: 80}
	if cat {
		s.CatFields = 4
		s.CatVocab = 8
	}
	return s
}

func fedPipe(t *testing.T, seed int64) (*protocol.Peer, *protocol.Peer) {
	t.Helper()
	skA, skB := protocol.TestKeys()
	a, b, err := protocol.Pipe(skA, skB, seed)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestParseKind(t *testing.T) {
	for _, s := range []string{"lr", "mlr", "mlp", "wdl", "dlrm"} {
		if _, err := ParseKind(s); err != nil {
			t.Errorf("ParseKind(%q) = %v", s, err)
		}
	}
	if _, err := ParseKind("svm"); err == nil {
		t.Error("ParseKind accepted svm")
	}
}

func TestCollocatedLRLearns(t *testing.T) {
	ds := data.Generate(tinySpec("t-lr", 20, 20, 2, false), 1)
	h := tinyHyper()
	h.Epochs = 10
	hist := TrainCollocated(LR, ds, h)
	if hist.TestMetric < 0.7 {
		t.Fatalf("collocated LR AUC = %v; teacher signal not learnable", hist.TestMetric)
	}
	if hist.Losses[0] < hist.Losses[len(hist.Losses)-1] {
		t.Fatalf("loss increased: %v -> %v", hist.Losses[0], hist.Losses[len(hist.Losses)-1])
	}
}

func TestPartyBWorseThanCollocated(t *testing.T) {
	ds := data.Generate(tinySpec("t-gap", 24, 24, 2, false), 2)
	h := tinyHyper()
	h.Epochs = 12
	co := TrainCollocated(LR, ds, h)
	pb := TrainPartyB(LR, ds, h)
	if pb.TestMetric >= co.TestMetric {
		t.Fatalf("Party-B-only AUC %v >= collocated %v; split carries no signal", pb.TestMetric, co.TestMetric)
	}
}

func TestFederatedLRMatchesCollocated(t *testing.T) {
	ds := data.Generate(tinySpec("t-fedlr", 16, 16, 2, false), 3)
	h := tinyHyper()
	h.Epochs = 6
	pa, pb := fedPipe(t, 500)
	fed, err := TrainFederated(LR, ds, h, pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	co := TrainCollocated(LR, ds, h)
	if fed.TestMetric < co.TestMetric-0.05 {
		t.Fatalf("federated AUC %v vs collocated %v: lossless property violated", fed.TestMetric, co.TestMetric)
	}
	if fed.TestMetric < 0.65 {
		t.Fatalf("federated AUC %v: did not learn", fed.TestMetric)
	}
}

func TestFederatedSparseLR(t *testing.T) {
	ds := data.Generate(tinySpec("t-sparse", 60, 6, 2, false), 4)
	h := tinyHyper()
	h.Epochs = 6
	pa, pb := fedPipe(t, 501)
	fed, err := TrainFederated(LR, ds, h, pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if fed.TestMetric < 0.6 {
		t.Fatalf("sparse federated AUC = %v", fed.TestMetric)
	}
}

func TestFederatedMLR(t *testing.T) {
	if testing.Short() {
		t.Skip("federated MLR training skipped in -short")
	}
	ds := data.Generate(tinySpec("t-mlr", 20, 20, 3, false), 5)
	h := tinyHyper()
	h.Epochs = 6
	pa, pb := fedPipe(t, 502)
	fed, err := TrainFederated(MLR, ds, h, pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if fed.MetricName != "accuracy" {
		t.Fatalf("metric = %s", fed.MetricName)
	}
	if fed.TestMetric < 0.5 {
		t.Fatalf("MLR accuracy = %v (3 classes, chance ≈ 0.33)", fed.TestMetric)
	}
}

func TestFederatedMLP(t *testing.T) {
	if testing.Short() {
		t.Skip("federated MLP training skipped in -short")
	}
	ds := data.Generate(tinySpec("t-mlp", 16, 16, 2, false), 6)
	h := tinyHyper()
	h.Epochs = 5
	pa, pb := fedPipe(t, 503)
	fed, err := TrainFederated(MLP, ds, h, pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if fed.TestMetric < 0.6 {
		t.Fatalf("MLP AUC = %v", fed.TestMetric)
	}
}

func TestFederatedWDL(t *testing.T) {
	if testing.Short() {
		t.Skip("federated WDL training skipped in -short")
	}
	ds := data.Generate(tinySpec("t-wdl", 40, 5, 2, true), 7)
	h := tinyHyper()
	h.Epochs = 3
	pa, pb := fedPipe(t, 504)
	fed, err := TrainFederated(WDL, ds, h, pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	co := TrainCollocated(WDL, ds, h)
	if fed.TestMetric < co.TestMetric-0.1 {
		t.Fatalf("WDL federated AUC %v vs collocated %v", fed.TestMetric, co.TestMetric)
	}
}

func TestFederatedDLRM(t *testing.T) {
	if testing.Short() {
		t.Skip("federated DLRM training skipped in -short")
	}
	ds := data.Generate(tinySpec("t-dlrm", 30, 4, 2, true), 8)
	h := tinyHyper()
	h.Epochs = 5
	pa, pb := fedPipe(t, 505)
	fed, err := TrainFederated(DLRM, ds, h, pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if fed.TestMetric < 0.55 {
		t.Fatalf("DLRM AUC = %v", fed.TestMetric)
	}
	first, last := fed.Losses[0], fed.Losses[len(fed.Losses)-1]
	if last >= first {
		t.Fatalf("DLRM loss did not decrease: %v -> %v", first, last)
	}
}

func TestHistoriesHaveExpectedIterationCount(t *testing.T) {
	ds := data.Generate(tinySpec("t-iters", 10, 10, 2, false), 9)
	h := tinyHyper()
	h.Epochs = 2
	h.Batch = 50
	hist := TrainCollocated(LR, ds, h)
	wantIters := 2 * ((160 + 49) / 50)
	if len(hist.Losses) != wantIters {
		t.Fatalf("iterations = %d want %d", len(hist.Losses), wantIters)
	}
	if hist.TestLogits.Rows != 80 {
		t.Fatalf("test logits rows = %d", hist.TestLogits.Rows)
	}
}
