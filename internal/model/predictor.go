package model

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"blindfl/internal/core"
	"blindfl/internal/hetensor"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
	"blindfl/internal/transport"
)

// Predictor is the forward-only model blindfl-serve runs: the dense source
// layers restored from a serve checkpoint onto live protocol sessions, plus
// the label party's plaintext head. Train and serve share one forward path —
// the layers' serve protocol is exactly the one training-time evaluation
// used — so served logits are bit-identical to the checkpointed model's
// reported test logits.
//
// The serve-session weight exchange runs once at construction; the encrypted
// weight pieces then never change, so every query reuses their Straus tables
// out of the persistent dot-table cache.
type Predictor struct {
	kind    Kind
	classes int
	hyper   Hyper
	inAs    []int
	inB     int

	as   []*protocol.Peer
	g    *protocol.Group
	las  []*core.MatMulA
	lb   *core.MultiMatMulB
	head headB

	// mu serializes batches: the serve protocol is a fixed message sequence
	// per session, so concurrent callers must not interleave. The serve
	// Server (internal/serve) batches concurrent requests into lanes above
	// this lock rather than contending on it per request.
	mu sync.Mutex
}

// NewPredictor restores a Predictor from a serve checkpoint onto the party
// set's live sessions and runs the serve-session weight exchange. The party
// set must span exactly the checkpoint's feature-party count. The stream
// must carry a sealed checkpoint envelope; a truncated, corrupted or
// foreign stream fails with the typed (and permanent) ErrBadCheckpoint.
func NewPredictor(r io.Reader, ps PartySet) (*Predictor, error) {
	payload, err := openEnvelope(r)
	if err != nil {
		return nil, err
	}
	var ck fedCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("%w: decode serve checkpoint: %v", ErrBadCheckpoint, err)
	}
	k := len(ck.InAs)
	if k == 0 || len(ck.LayerA) != k || len(ck.LayerB) != k {
		return nil, fmt.Errorf("model: malformed checkpoint (%d parties, %d A layers, %d B layers)",
			k, len(ck.LayerA), len(ck.LayerB))
	}
	if ps.K() != k || ps.B.K() != k {
		return nil, fmt.Errorf("model: checkpoint spans %d feature parties, party set has %d", k, ps.K())
	}

	p := &Predictor{
		kind: ck.Kind, classes: ck.Classes, hyper: ck.Hyper,
		inAs: ck.InAs, inB: ck.InB,
		as: ps.As, g: ps.B,
		las: make([]*core.MatMulA, k),
	}
	head := buildHead(ck.Kind, ck.Classes, ck.Hyper)
	params := head.params()
	if len(params) != len(ck.Head) {
		return nil, fmt.Errorf("model: checkpoint head has %d parameters, %s wants %d", len(ck.Head), ck.Kind, len(params))
	}
	for i, par := range params {
		saved := ck.Head[i]
		if saved == nil || !par.W.SameShape(saved) {
			return nil, fmt.Errorf("model: checkpoint head parameter %d shape mismatch", i)
		}
		copy(par.W.Data, saved.Data)
	}
	p.head = head

	// Restore each session's layer halves and run the serve-session weight
	// exchange. A local decode failure closes that party's own connections
	// so the peers unblock with a transport error instead of hanging; the
	// recorded decode error then takes precedence in the report.
	loadErrA := make([]error, k)
	loadErrB := make([]error, k)
	subs := make([]*core.MatMulB, k)
	err = protocol.RunGroup(ps.As, ps.B,
		func(i int) {
			la, err := core.LoadMatMulA(bytes.NewReader(ck.LayerA[i]), ps.As[i])
			if err != nil {
				loadErrA[i] = err
				//blindfl:allow teardown deliberate early close: unblocks the peer so the decode error wins the race
				ps.As[i].Conn.Close()
				return
			}
			p.las[i] = la
			la.ServeStart()
		},
		func() {
			failed := false
			ps.B.ForEach(func(i int, peer *protocol.Peer) {
				lbHalf, err := core.LoadMatMulB(bytes.NewReader(ck.LayerB[i]), peer)
				if err != nil {
					loadErrB[i] = err
					failed = true
					return
				}
				subs[i] = lbHalf
			})
			if failed {
				ps.B.Close()
				return
			}
			p.lb = core.NewMultiMatMulBFrom(ps.B, subs)
			p.lb.ServeStart()
		})
	for i := 0; i < k; i++ {
		if loadErrA[i] != nil {
			return nil, loadErrA[i]
		}
		if loadErrB[i] != nil {
			return nil, loadErrB[i]
		}
	}
	if err != nil {
		return nil, err
	}
	return p, nil
}

// RetryPredictor opens a Predictor with bounded retry-with-backoff — the
// recovery path for transient serve-session setup failures (a feature party
// restarting, a connection dropped or corrupted during the weight exchange).
// open(attempt) must build fresh sessions each call: a failed weight
// exchange closes the whole group, so the old connections are unusable.
// Only transport failures (ErrClosed, ErrCorrupt, ErrTimeout) are retried —
// a malformed checkpoint (ErrBadCheckpoint) or shape mismatch is permanent
// and fails immediately. The wait before retry n is backoff·2ⁿ⁻¹; sleep is
// the only side effect between attempts. Returns the last error after
// attempts failures.
func RetryPredictor(attempts int, backoff time.Duration, open func(attempt int) (*Predictor, error)) (*Predictor, error) {
	if attempts < 1 {
		return nil, fmt.Errorf("model: RetryPredictor needs at least one attempt")
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff << (i - 1))
		}
		var p *Predictor
		if p, err = open(i); err == nil {
			return p, nil
		}
		if !errors.Is(err, transport.ErrClosed) && !errors.Is(err, transport.ErrCorrupt) &&
			!errors.Is(err, transport.ErrTimeout) {
			return nil, err // permanent: retrying cannot change the outcome
		}
	}
	return nil, fmt.Errorf("model: serve-session setup failed after %d attempts: %w", attempts, err)
}

// K returns the number of feature parties the model spans.
func (p *Predictor) K() int { return len(p.inAs) }

// InAs returns the per-feature-party column widths.
func (p *Predictor) InAs() []int { return p.inAs }

// InB returns the label party's feature width.
func (p *Predictor) InB() int { return p.inB }

// Kind returns the model family.
func (p *Predictor) Kind() Kind { return p.kind }

// Classes returns the label cardinality.
func (p *Predictor) Classes() int { return p.classes }

// LabelPK returns the label party's public key — the key serve-side blinding
// pools warm for.
func (p *Predictor) LabelPK() *paillier.PublicKey { return &p.g.Peers[0].SK.PublicKey }

// Lanes returns the packing width of a serve batch: requests fill ciphertext
// lanes, so batches of this size cost the same homomorphic work as one
// request. Both directions of every session pack, so the effective width is
// the minimum over all keys involved.
func (p *Predictor) Lanes() int {
	lanes := hetensor.Lanes(&p.g.Peers[0].SK.PublicKey)
	for _, a := range p.as {
		if l := hetensor.Lanes(&a.SK.PublicKey); l < lanes {
			lanes = l
		}
	}
	return lanes
}

// PredictBatch runs one federated serve forward over a batch of requests.
// xAs[i] holds feature party i's columns of every request (rows align across
// parties); xB the label party's. Returns the batch logits. Safe for
// concurrent use; batches are serialized internally.
func (p *Predictor) PredictBatch(xAs []*tensor.Dense, xB *tensor.Dense) (*tensor.Dense, error) {
	if err := p.checkBatch(xAs, xB); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var logits *tensor.Dense
	err := protocol.RunGroup(p.as, p.g,
		func(i int) { p.las[i].ServeForward(xAs[i]) },
		func() { logits = p.head.forward(p.lb.ServeForward(xB), nil) })
	if err != nil {
		return nil, err
	}
	return logits, nil
}

// PlainLogits computes the same batch logits directly from the secret-shared
// weight pieces in the exact integer domain — no protocol, no masking. The
// serve forward reconstructs the identical integer sum (integer addition is
// commutative and masks cancel exactly), so PlainLogits is bit-identical to
// PredictBatch: the reference the AHEAD-style integrity spot-check compares
// served responses against. Only the single-binary simulation, which holds
// both parties' pieces, can compute it.
func (p *Predictor) PlainLogits(xAs []*tensor.Dense, xB *tensor.Dense) (*tensor.Dense, error) {
	if err := p.checkBatch(xAs, xB); err != nil {
		return nil, err
	}
	z := hetensor.IntMatMulT(xB, p.lb.Sub(0).UB)
	for i := range p.las {
		z.AddInPlace(hetensor.IntMatMulT(xAs[i], p.las[i].UA))
		z.AddInPlace(hetensor.IntMatMulT(xAs[i], p.lb.Sub(i).VA))
		z.AddInPlace(hetensor.IntMatMulT(xB, p.las[i].VB))
		if i > 0 {
			z.AddInPlace(hetensor.IntMatMulT(xB, p.lb.Sub(i).UB))
		}
	}
	return p.head.forward(z.DecodeTranspose(), nil), nil
}

func (p *Predictor) checkBatch(xAs []*tensor.Dense, xB *tensor.Dense) error {
	if len(xAs) != len(p.inAs) {
		return fmt.Errorf("model: batch spans %d feature parties, model has %d", len(xAs), len(p.inAs))
	}
	if xB == nil || xB.Rows == 0 {
		return fmt.Errorf("model: empty batch")
	}
	if xB.Cols != p.inB {
		return fmt.Errorf("model: label-party features have %d columns, model wants %d", xB.Cols, p.inB)
	}
	for i, x := range xAs {
		if x == nil || x.Rows != xB.Rows {
			return fmt.Errorf("model: feature party %d batch rows mismatch", i)
		}
		if x.Cols != p.inAs[i] {
			return fmt.Errorf("model: feature party %d has %d columns, model wants %d", i, x.Cols, p.inAs[i])
		}
	}
	return nil
}
