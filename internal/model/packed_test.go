package model

import (
	"math"
	"testing"

	"blindfl/internal/data"
)

// TestFederatedLRPackedMatchesUnpacked trains the same tiny federated LR
// twice — ciphertext packing on and off — from identical seeds. The mask and
// init draws are identical in both modes, so the training trajectories must
// agree to fixed-point tolerance: the end-to-end form of the packed
// correctness contract.
func TestFederatedLRPackedMatchesUnpacked(t *testing.T) {
	ds := data.Generate(tinySpec("t-fedlr-packed", 12, 12, 2, false), 3)
	h := tinyHyper()
	h.Epochs = 2

	run := func(packed bool) *History {
		hh := h
		hh.Packed = packed
		pa, pb := fedPipe(t, 520)
		hist, err := TrainFederated(LR, ds, hh, pa, pb)
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}
	packed := run(true)
	plain := run(false)

	if len(packed.Losses) != len(plain.Losses) {
		t.Fatalf("iteration counts differ: %d vs %d", len(packed.Losses), len(plain.Losses))
	}
	for i := range packed.Losses {
		if math.Abs(packed.Losses[i]-plain.Losses[i]) > 1e-5 {
			t.Fatalf("loss %d diverges: packed %v vs unpacked %v", i, packed.Losses[i], plain.Losses[i])
		}
	}
	if math.Abs(packed.TestMetric-plain.TestMetric) > 1e-6 {
		t.Fatalf("test metric diverges: packed %v vs unpacked %v", packed.TestMetric, plain.TestMetric)
	}
}
