// Package nn is a minimal neural-network library providing the plaintext
// modules BlindFL composes on top of its federated source layers: linear
// layers, bias, activations, losses, and momentum SGD. It mirrors the
// forward/backward Module style of the paper's PyTorch integration (Fig. 8)
// without an autograd tape — each module caches what its backward needs.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"blindfl/internal/tensor"
)

// Param is one learnable tensor with its gradient accumulator.
type Param struct {
	W    *tensor.Dense
	Grad *tensor.Dense
}

// NewParam wraps a weight tensor.
func NewParam(w *tensor.Dense) *Param {
	return &Param{W: w, Grad: tensor.NewDense(w.Rows, w.Cols)}
}

// Module is a differentiable block. Backward must be called after Forward
// with the gradient w.r.t. the forward output and returns the gradient
// w.r.t. the forward input, accumulating parameter gradients as a side
// effect.
type Module interface {
	Forward(x *tensor.Dense) *tensor.Dense
	Backward(grad *tensor.Dense) *tensor.Dense
	Params() []*Param
}

// Linear is a fully connected layer y = x·W + b.
type Linear struct {
	W, B *Param
	x    *tensor.Dense
}

// NewLinear builds an in×out layer with uniform(-s, s) init where
// s = 1/sqrt(in) (the standard fan-in heuristic).
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	s := 1 / math.Sqrt(float64(in))
	return &Linear{
		W: NewParam(tensor.RandDense(rng, in, out, s)),
		B: NewParam(tensor.NewDense(1, out)),
	}
}

// Forward computes x·W + b.
func (l *Linear) Forward(x *tensor.Dense) *tensor.Dense {
	l.x = x
	y := x.MatMul(l.W.W)
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j, b := range l.B.W.Row(0) {
			row[j] += b
		}
	}
	return y
}

// Backward accumulates ∇W = xᵀ∇y and ∇b = Σ∇y, returning ∇x = ∇y·Wᵀ.
func (l *Linear) Backward(grad *tensor.Dense) *tensor.Dense {
	l.W.Grad.AddInPlace(l.x.TransposeMatMul(grad))
	for i := 0; i < grad.Rows; i++ {
		for j, g := range grad.Row(i) {
			l.B.Grad.Data[j] += g
		}
	}
	return grad.MatMulTranspose(l.W.W)
}

// Params returns the weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Bias adds a learnable row vector (the "+bias" top model of federated LR).
type Bias struct {
	B *Param
	n int
}

// NewBias builds a zero-initialized bias over out columns.
func NewBias(out int) *Bias { return &Bias{B: NewParam(tensor.NewDense(1, out)), n: out} }

// Forward adds the bias to every row.
func (b *Bias) Forward(x *tensor.Dense) *tensor.Dense {
	y := x.Clone()
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j, v := range b.B.W.Row(0) {
			row[j] += v
		}
	}
	return y
}

// Backward accumulates ∇b and passes the gradient through.
func (b *Bias) Backward(grad *tensor.Dense) *tensor.Dense {
	for i := 0; i < grad.Rows; i++ {
		for j, g := range grad.Row(i) {
			b.B.Grad.Data[j] += g
		}
	}
	return grad
}

// Params returns the bias parameter.
func (b *Bias) Params() []*Param { return []*Param{b.B} }

// ReLU is the rectified linear activation.
type ReLU struct{ mask *tensor.Dense }

// Forward zeroes negative entries.
func (r *ReLU) Forward(x *tensor.Dense) *tensor.Dense {
	r.mask = tensor.NewDense(x.Rows, x.Cols)
	y := tensor.NewDense(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
			r.mask.Data[i] = 1
		}
	}
	return y
}

// Backward gates the gradient by the forward mask.
func (r *ReLU) Backward(grad *tensor.Dense) *tensor.Dense { return grad.Hadamard(r.mask) }

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Sigmoid is the logistic activation (used standalone for inference; losses
// fold it in for numerical stability).
type Sigmoid struct{ y *tensor.Dense }

// Forward applies 1/(1+e^−x).
func (s *Sigmoid) Forward(x *tensor.Dense) *tensor.Dense {
	s.y = x.Apply(sigmoid)
	return s.y
}

// Backward multiplies by y·(1−y).
func (s *Sigmoid) Backward(grad *tensor.Dense) *tensor.Dense {
	out := tensor.NewDense(grad.Rows, grad.Cols)
	for i, g := range grad.Data {
		y := s.y.Data[i]
		out.Data[i] = g * y * (1 - y)
	}
	return out
}

// Params returns nil; Sigmoid has no parameters.
func (s *Sigmoid) Params() []*Param { return nil }

func sigmoid(v float64) float64 {
	if v >= 0 {
		return 1 / (1 + math.Exp(-v))
	}
	e := math.Exp(v)
	return e / (1 + e)
}

// Sequential chains modules.
type Sequential struct{ Mods []Module }

// NewSequential builds a chain.
func NewSequential(mods ...Module) *Sequential { return &Sequential{Mods: mods} }

// Forward runs the chain left to right.
func (s *Sequential) Forward(x *tensor.Dense) *tensor.Dense {
	for _, m := range s.Mods {
		x = m.Forward(x)
	}
	return x
}

// Backward runs the chain right to left.
func (s *Sequential) Backward(grad *tensor.Dense) *tensor.Dense {
	for i := len(s.Mods) - 1; i >= 0; i-- {
		grad = s.Mods[i].Backward(grad)
	}
	return grad
}

// Params concatenates all parameters.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, m := range s.Mods {
		out = append(out, m.Params()...)
	}
	return out
}

// Identity passes values through unchanged (a placeholder top model).
type Identity struct{}

// Forward returns x.
func (Identity) Forward(x *tensor.Dense) *tensor.Dense { return x }

// Backward returns grad.
func (Identity) Backward(grad *tensor.Dense) *tensor.Dense { return grad }

// Params returns nil.
func (Identity) Params() []*Param { return nil }

// Embedding is a plaintext embedding table with concatenated field lookup,
// used by the non-federated baselines and the split-learning bottom models.
type Embedding struct {
	Q          *Param
	Vocab, Dim int
	x          *tensor.IntMatrix
}

// NewEmbedding builds a vocab×dim table with uniform(-s, s) init.
func NewEmbedding(rng *rand.Rand, vocab, dim int, s float64) *Embedding {
	return &Embedding{Q: NewParam(tensor.RandDense(rng, vocab, dim, s)), Vocab: vocab, Dim: dim}
}

// ForwardIdx looks up and concatenates the field embeddings.
func (e *Embedding) ForwardIdx(x *tensor.IntMatrix) *tensor.Dense {
	e.x = x
	return tensor.Lookup(e.Q.W, x)
}

// BackwardIdx scatter-adds the gradient into the table and returns it (the
// derivative ∇E itself, which the split-learning leakage experiments need).
func (e *Embedding) BackwardIdx(grad *tensor.Dense) *tensor.Dense {
	e.Q.Grad.AddInPlace(tensor.LookupBackward(grad, e.x, e.Vocab, e.Dim))
	return grad
}

// Params returns the table.
func (e *Embedding) Params() []*Param { return []*Param{e.Q} }

// SGD is momentum stochastic gradient descent over a parameter set.
type SGD struct {
	LR, Momentum float64
	params       []*Param
	bufs         []*tensor.Dense
}

// NewSGD builds an optimizer for params.
func NewSGD(lr, momentum float64, params []*Param) *SGD {
	bufs := make([]*tensor.Dense, len(params))
	for i, p := range params {
		bufs[i] = tensor.NewDense(p.W.Rows, p.W.Cols)
	}
	return &SGD{LR: lr, Momentum: momentum, params: params, bufs: bufs}
}

// ZeroGrad clears all gradient accumulators.
func (o *SGD) ZeroGrad() {
	for _, p := range o.params {
		p.Grad.Zero()
	}
}

// Step applies one momentum SGD update.
func (o *SGD) Step() {
	for i, p := range o.params {
		if o.Momentum != 0 {
			buf := o.bufs[i]
			for j, g := range p.Grad.Data {
				buf.Data[j] = o.Momentum*buf.Data[j] + g
			}
			p.W.Axpy(-o.LR, buf)
		} else {
			p.W.Axpy(-o.LR, p.Grad)
		}
	}
}

// MomentumState clones the optimizer's velocity buffers, in parameter order.
// Run checkpoints persist them so a resumed momentum trajectory continues
// bit-exactly instead of restarting from zero velocity.
func (o *SGD) MomentumState() []*tensor.Dense {
	out := make([]*tensor.Dense, len(o.bufs))
	for i, b := range o.bufs {
		out[i] = b.Clone()
	}
	return out
}

// SetMomentumState restores velocity buffers captured by MomentumState onto
// a freshly built optimizer over the same parameter set. A nil state is a
// no-op (checkpoints from momentum-free runs); a shape mismatch panics —
// it means the checkpoint belongs to a different architecture.
func (o *SGD) SetMomentumState(bufs []*tensor.Dense) {
	if bufs == nil {
		return
	}
	if len(bufs) != len(o.bufs) {
		panic(fmt.Sprintf("nn: momentum state has %d buffers, optimizer has %d", len(bufs), len(o.bufs)))
	}
	for i, b := range bufs {
		if b.Rows != o.bufs[i].Rows || b.Cols != o.bufs[i].Cols {
			panic(fmt.Sprintf("nn: momentum buffer %d is %dx%d, want %dx%d",
				i, b.Rows, b.Cols, o.bufs[i].Rows, o.bufs[i].Cols))
		}
		o.bufs[i] = b.Clone()
	}
}

// shapeMsg is a helper for loss shape panics.
func shapeMsg(what string, rows, want int) string {
	return fmt.Sprintf("nn: %s has %d rows, labels have %d", what, rows, want)
}
