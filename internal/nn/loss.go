package nn

import (
	"math"
	"sort"

	"blindfl/internal/tensor"
)

// BCEWithLogits computes mean binary cross-entropy over logits (batch×1)
// against {0,1} labels and the gradient w.r.t. the logits. The sigmoid is
// folded in for numerical stability, as in torch.nn.BCEWithLogitsLoss.
func BCEWithLogits(logits *tensor.Dense, y []int) (loss float64, grad *tensor.Dense) {
	if logits.Rows != len(y) {
		panic(shapeMsg("logits", logits.Rows, len(y)))
	}
	n := float64(len(y))
	grad = tensor.NewDense(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		z := logits.At(i, 0)
		t := float64(y[i])
		// log(1+e^z) computed stably.
		loss += math.Max(z, 0) - z*t + math.Log1p(math.Exp(-math.Abs(z)))
		grad.Set(i, 0, (sigmoid(z)-t)/n)
	}
	return loss / n, grad
}

// SoftmaxCE computes mean softmax cross-entropy over logits (batch×C)
// against class-index labels and the gradient w.r.t. the logits.
func SoftmaxCE(logits *tensor.Dense, y []int) (loss float64, grad *tensor.Dense) {
	if logits.Rows != len(y) {
		panic(shapeMsg("logits", logits.Rows, len(y)))
	}
	n := float64(len(y))
	grad = tensor.NewDense(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		m := row[0]
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - m)
		}
		logSum := math.Log(sum) + m
		loss += logSum - row[y[i]]
		grow := grad.Row(i)
		for j, v := range row {
			p := math.Exp(v - logSum)
			if j == y[i] {
				p -= 1
			}
			grow[j] = p / n
		}
	}
	return loss / n, grad
}

// MSE computes mean squared error over predictions (batch×1) against
// float targets and the gradient w.r.t. the predictions — the loss for the
// generalized-linear-regression flavour of the source layers.
func MSE(pred *tensor.Dense, y []float64) (loss float64, grad *tensor.Dense) {
	if pred.Rows != len(y) {
		panic(shapeMsg("predictions", pred.Rows, len(y)))
	}
	n := float64(len(y))
	grad = tensor.NewDense(pred.Rows, pred.Cols)
	for i := 0; i < pred.Rows; i++ {
		d := pred.At(i, 0) - y[i]
		loss += d * d
		grad.Set(i, 0, 2*d/n)
	}
	return loss / n, grad
}

// Metrics over predictions.

// AUC computes the area under the ROC curve for scores against {0,1}
// labels via the rank statistic, with midrank handling for ties.
func AUC(scores []float64, y []int) float64 {
	type sc struct {
		s float64
		y int
	}
	n := len(scores)
	items := make([]sc, n)
	for i := range scores {
		items[i] = sc{scores[i], y[i]}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].s < items[j].s })
	// Midranks over tie groups.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && items[j].s == items[i].s {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		i = j
	}
	var sumPos float64
	var nPos, nNeg int
	for i, it := range items {
		if it.y == 1 {
			sumPos += ranks[i]
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	return (sumPos - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
}

// Accuracy computes argmax accuracy for multi-class logits, or a 0.5
// threshold on the single logit column for binary problems.
func Accuracy(logits *tensor.Dense, y []int) float64 {
	if logits.Rows == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		var pred int
		if len(row) == 1 {
			if row[0] > 0 {
				pred = 1
			}
		} else {
			for j, v := range row {
				if v > row[pred] {
					pred = j
				}
			}
		}
		if pred == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(logits.Rows)
}

// Scores extracts the single-column logits as a score slice for AUC.
func Scores(logits *tensor.Dense) []float64 {
	out := make([]float64, logits.Rows)
	for i := range out {
		out[i] = logits.At(i, 0)
	}
	return out
}
