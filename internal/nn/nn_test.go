package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"blindfl/internal/tensor"
)

// numericalGrad estimates ∂loss/∂w[i] by central differences.
func numericalGrad(f func() float64, w *tensor.Dense, i int) float64 {
	const h = 1e-5
	old := w.Data[i]
	w.Data[i] = old + h
	lp := f()
	w.Data[i] = old - h
	lm := f()
	w.Data[i] = old
	return (lp - lm) / (2 * h)
}

func TestLinearForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 3, 2)
	l.W.W = tensor.FromSlice(3, 2, []float64{1, 0, 0, 1, 1, 1})
	l.B.W = tensor.FromSlice(1, 2, []float64{10, 20})
	x := tensor.FromSlice(1, 3, []float64{1, 2, 3})
	got := l.Forward(x)
	want := tensor.FromSlice(1, 2, []float64{14, 25})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Forward = %v", got.Data)
	}
}

func TestLinearGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, 4, 3)
	x := tensor.RandDense(rng, 5, 4, 1)
	y := []int{0, 2, 1, 0, 2}

	lossOf := func() float64 {
		loss, _ := SoftmaxCE(l.Forward(x), y)
		return loss
	}
	l.W.Grad.Zero()
	l.B.Grad.Zero()
	_, grad := SoftmaxCE(l.Forward(x), y)
	l.Backward(grad)

	for _, i := range []int{0, 5, 11} {
		want := numericalGrad(lossOf, l.W.W, i)
		if got := l.W.Grad.Data[i]; math.Abs(got-want) > 1e-6 {
			t.Errorf("∇W[%d] = %v want %v", i, got, want)
		}
	}
	for i := 0; i < 3; i++ {
		want := numericalGrad(lossOf, l.B.W, i)
		if got := l.B.Grad.Data[i]; math.Abs(got-want) > 1e-6 {
			t.Errorf("∇b[%d] = %v want %v", i, got, want)
		}
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	x := tensor.FromSlice(1, 4, []float64{-1, 0, 2, -3})
	y := r.Forward(x)
	if !y.Equal(tensor.FromSlice(1, 4, []float64{0, 0, 2, 0}), 0) {
		t.Fatalf("Forward = %v", y.Data)
	}
	g := r.Backward(tensor.FromSlice(1, 4, []float64{5, 5, 5, 5}))
	if !g.Equal(tensor.FromSlice(1, 4, []float64{0, 0, 5, 0}), 0) {
		t.Fatalf("Backward = %v", g.Data)
	}
}

func TestSigmoidMatchesDerivative(t *testing.T) {
	s := &Sigmoid{}
	x := tensor.FromSlice(1, 1, []float64{0.7})
	y := s.Forward(x)
	g := s.Backward(tensor.FromSlice(1, 1, []float64{1}))
	want := y.At(0, 0) * (1 - y.At(0, 0))
	if math.Abs(g.At(0, 0)-want) > 1e-12 {
		t.Fatalf("sigmoid grad = %v want %v", g.At(0, 0), want)
	}
}

func TestBCEWithLogitsGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	logits := tensor.RandDense(rng, 6, 1, 2)
	y := []int{1, 0, 1, 1, 0, 0}
	_, grad := BCEWithLogits(logits, y)
	for i := 0; i < 6; i++ {
		f := func() float64 {
			l, _ := BCEWithLogits(logits, y)
			return l
		}
		want := numericalGrad(f, logits, i)
		if math.Abs(grad.Data[i]-want) > 1e-6 {
			t.Errorf("∇logit[%d] = %v want %v", i, grad.Data[i], want)
		}
	}
}

func TestSoftmaxCEGradientSumsToZeroPerRow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		logits := tensor.RandDense(rng, 4, 5, 3)
		y := []int{0, 4, 2, 1}
		_, grad := SoftmaxCE(logits, y)
		for i := 0; i < 4; i++ {
			var s float64
			for _, v := range grad.Row(i) {
				s += v
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxCEIsStableForLargeLogits(t *testing.T) {
	logits := tensor.FromSlice(1, 3, []float64{1000, 999, -1000})
	loss, grad := SoftmaxCE(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %v", loss)
	}
	for _, g := range grad.Data {
		if math.IsNaN(g) {
			t.Fatal("NaN gradient")
		}
	}
}

func TestSGDConvergesOnLinearRegressionStyleProblem(t *testing.T) {
	// Learn XOR-free separable binary problem with LR: loss must decrease.
	rng := rand.New(rand.NewSource(4))
	n := 200
	x := tensor.NewDense(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		if a+2*b > 0 {
			y[i] = 1
		}
	}
	model := NewSequential(NewLinear(rng, 2, 1))
	opt := NewSGD(0.5, 0.9, model.Params())
	var first, last float64
	for epoch := 0; epoch < 50; epoch++ {
		opt.ZeroGrad()
		logits := model.Forward(x)
		loss, grad := BCEWithLogits(logits, y)
		model.Backward(grad)
		opt.Step()
		if epoch == 0 {
			first = loss
		}
		last = loss
	}
	if last > first/3 {
		t.Fatalf("SGD failed to converge: first %v last %v", first, last)
	}
	if acc := Accuracy(model.Forward(x), y); acc < 0.95 {
		t.Fatalf("accuracy %v < 0.95", acc)
	}
}

func TestEmbeddingForwardBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := NewEmbedding(rng, 4, 2, 0.1)
	x := tensor.NewIntMatrix(2, 2)
	x.Set(0, 0, 1)
	x.Set(0, 1, 1)
	x.Set(1, 0, 3)
	out := e.ForwardIdx(x)
	if out.Rows != 2 || out.Cols != 4 {
		t.Fatalf("shape %d×%d", out.Rows, out.Cols)
	}
	g := tensor.FromSlice(2, 4, []float64{1, 1, 2, 2, 3, 3, 4, 4})
	e.BackwardIdx(g)
	// Row 1 of the table receives (1,1)+(2,2)=(3,3).
	if e.Q.Grad.At(1, 0) != 3 || e.Q.Grad.At(1, 1) != 3 {
		t.Fatalf("grad row1 = %v", e.Q.Grad.Row(1))
	}
	if e.Q.Grad.At(3, 0) != 3 {
		t.Fatalf("grad row3 = %v", e.Q.Grad.Row(3))
	}
}

func TestAUCPerfectAndRandom(t *testing.T) {
	if got := AUC([]float64{0.1, 0.2, 0.8, 0.9}, []int{0, 0, 1, 1}); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	if got := AUC([]float64{0.9, 0.8, 0.2, 0.1}, []int{0, 0, 1, 1}); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	if got := AUC([]float64{0.5, 0.5, 0.5, 0.5}, []int{0, 1, 0, 1}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %v", got)
	}
	if got := AUC([]float64{1, 2, 3}, []int{1, 1, 1}); got != 0.5 {
		t.Fatalf("degenerate AUC = %v", got)
	}
}

func TestAUCHandlesTiesByMidrank(t *testing.T) {
	// One positive tied with one negative at the top: AUC = 0.75.
	got := AUC([]float64{0.9, 0.9, 0.1, 0.1}, []int{1, 0, 0, 1})
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("tie AUC = %v want 0.5", got)
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice(3, 2, []float64{2, 1, 0, 3, 5, 4})
	if got := Accuracy(logits, []int{0, 1, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("multiclass accuracy = %v", got)
	}
	bin := tensor.FromSlice(2, 1, []float64{1.5, -0.5})
	if got := Accuracy(bin, []int{1, 0}); got != 1 {
		t.Fatalf("binary accuracy = %v", got)
	}
}

func TestSequentialComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewSequential(NewLinear(rng, 3, 4), &ReLU{}, NewLinear(rng, 4, 2))
	if len(m.Params()) != 4 {
		t.Fatalf("params = %d", len(m.Params()))
	}
	x := tensor.RandDense(rng, 2, 3, 1)
	y := m.Forward(x)
	if y.Rows != 2 || y.Cols != 2 {
		t.Fatalf("shape %d×%d", y.Rows, y.Cols)
	}
	g := m.Backward(tensor.RandDense(rng, 2, 2, 1))
	if g.Rows != 2 || g.Cols != 3 {
		t.Fatalf("input grad shape %d×%d", g.Rows, g.Cols)
	}
}
