package data

import (
	"math"
	"strings"
	"testing"
)

func TestSpecsSanity(t *testing.T) {
	for name, s := range Specs {
		if s.Name != name {
			t.Errorf("%s: Name mismatch %q", name, s.Name)
		}
		if s.AvgNNZ > s.Feats {
			t.Errorf("%s: AvgNNZ %d > Feats %d", name, s.AvgNNZ, s.Feats)
		}
		if s.Classes < 2 {
			t.Errorf("%s: Classes %d", name, s.Classes)
		}
	}
	if !Specs["higgs"].Dense() || Specs["a9a"].Dense() {
		t.Fatal("density flags wrong")
	}
	if sp := Specs["w8a"].Sparsity(); sp < 0.9 {
		t.Fatalf("w8a sparsity %v", sp)
	}
}

func TestGenerateShapes(t *testing.T) {
	ds := Generate(MustSpec("a9a"), 1)
	if ds.TrainA.Rows() != 3000 || ds.TestA.Rows() != 1000 {
		t.Fatalf("rows %d/%d", ds.TrainA.Rows(), ds.TestA.Rows())
	}
	if got := ds.TrainA.NumCols() + ds.TrainB.NumCols(); got != 123 {
		t.Fatalf("split cols = %d", got)
	}
	if len(ds.TrainY) != 3000 {
		t.Fatalf("labels = %d", len(ds.TrainY))
	}
	if ds.TrainA.Sparse == nil {
		t.Fatal("a9a should be sparse")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d1 := Generate(MustSpec("w8a"), 42)
	d2 := Generate(MustSpec("w8a"), 42)
	if !d1.TrainA.Sparse.ToDense().Equal(d2.TrainA.Sparse.ToDense(), 0) {
		t.Fatal("generation is not deterministic")
	}
	for i := range d1.TrainY {
		if d1.TrainY[i] != d2.TrainY[i] {
			t.Fatal("labels differ across runs")
		}
	}
	d3 := Generate(MustSpec("w8a"), 43)
	if d1.TrainA.Sparse.ToDense().Equal(d3.TrainA.Sparse.ToDense(), 0) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateSparsityMatchesSpec(t *testing.T) {
	spec := MustSpec("w8a")
	ds := Generate(spec, 2)
	nnzPerRow := float64(ds.TrainA.Sparse.NNZ()+ds.TrainB.Sparse.NNZ()) / float64(spec.Train)
	if math.Abs(nnzPerRow-float64(spec.AvgNNZ)) > 2 {
		t.Fatalf("avg nnz %v want ≈ %d", nnzPerRow, spec.AvgNNZ)
	}
}

func TestGenerateClassesBalancedEnough(t *testing.T) {
	ds := Generate(MustSpec("a9a"), 3)
	count := make(map[int]int)
	for _, y := range ds.TrainY {
		count[y]++
	}
	if len(count) != 2 {
		t.Fatalf("classes seen: %v", count)
	}
	for c, n := range count {
		frac := float64(n) / float64(len(ds.TrainY))
		if frac < 0.2 || frac > 0.8 {
			t.Fatalf("class %d fraction %v: degenerate labels", c, frac)
		}
	}
}

func TestGenerateMulticlassCoversAllClasses(t *testing.T) {
	ds := Generate(MustSpec("connect-4"), 4)
	seen := make(map[int]bool)
	for _, y := range ds.TrainY {
		if y < 0 || y >= 3 {
			t.Fatalf("label %d out of range", y)
		}
		seen[y] = true
	}
	if len(seen) != 3 {
		t.Fatalf("only %d classes present", len(seen))
	}
}

func TestGenerateCategorical(t *testing.T) {
	spec := Spec{Name: "toy", Feats: 20, AvgNNZ: 4, Classes: 2, Train: 200, Test: 50,
		CatFields: 4, CatVocab: 10}
	ds := Generate(spec, 5)
	if ds.TrainA.Cat == nil || ds.TrainB.Cat == nil {
		t.Fatal("missing categorical parts")
	}
	if ds.TrainA.Cat.Cols+ds.TrainB.Cat.Cols != 4 {
		t.Fatalf("fields split = %d+%d", ds.TrainA.Cat.Cols, ds.TrainB.Cat.Cols)
	}
	for _, v := range ds.TrainA.Cat.Data {
		if v < 0 || v >= 10 {
			t.Fatalf("category %d out of vocab", v)
		}
	}
}

func TestBatchExtraction(t *testing.T) {
	ds := Generate(MustSpec("higgs"), 6)
	idx := []int{5, 0, 17}
	b := ds.TrainA.Batch(idx)
	if b.Rows() != 3 {
		t.Fatalf("batch rows = %d", b.Rows())
	}
	for k, i := range idx {
		for j := 0; j < b.Dense.Cols; j++ {
			if b.Dense.At(k, j) != ds.TrainA.Dense.At(i, j) {
				t.Fatal("batch row mismatch")
			}
		}
	}
}

func TestBatchIndices(t *testing.T) {
	batches := BatchIndices(10, 4)
	if len(batches) != 3 || len(batches[0]) != 4 || len(batches[2]) != 2 {
		t.Fatalf("batches = %v", batches)
	}
	if batches[2][1] != 9 {
		t.Fatalf("last batch = %v", batches[2])
	}
}

func TestLibSVMRoundTrip(t *testing.T) {
	ds := Generate(MustSpec("a9a"), 7)
	var sb strings.Builder
	sub := ds.TrainA.Sparse.SliceRows(0, 50)
	if err := WriteLibSVM(&sb, sub, ds.TrainY[:50]); err != nil {
		t.Fatal(err)
	}
	x, y, err := ReadLibSVM(strings.NewReader(sb.String()), sub.Cols)
	if err != nil {
		t.Fatal(err)
	}
	if !x.ToDense().Equal(sub.ToDense(), 0) {
		t.Fatal("libsvm round trip changed features")
	}
	for i := range y {
		if y[i] != ds.TrainY[i] {
			t.Fatal("libsvm round trip changed labels")
		}
	}
}

func TestReadLibSVMNegativeLabels(t *testing.T) {
	in := "-1 1:0.5 3:1\n+1 2:2\n"
	x, y, err := ReadLibSVM(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != 2 || x.Cols != 3 {
		t.Fatalf("shape %d×%d", x.Rows, x.Cols)
	}
	if y[0] != 0 || y[1] != 1 {
		t.Fatalf("labels = %v", y)
	}
}

func TestReadLibSVMRejectsGarbage(t *testing.T) {
	for _, in := range []string{"x 1:1\n", "1 0:1\n", "1 a:1\n", "1 1:zz\n"} {
		if _, _, err := ReadLibSVM(strings.NewReader(in), 0); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestPSIIntersection(t *testing.T) {
	idsA := []string{"u1", "u2", "u3", "u5", "u9"}
	idsB := []string{"u9", "u2", "u4", "u5", "u7"}
	pa, pb := PSI(idsA, idsB)
	if len(pa) != 3 {
		t.Fatalf("intersection size = %d want 3", len(pa))
	}
	for k := range pa {
		if idsA[pa[k]] != idsB[pb[k]] {
			t.Fatalf("pair %d mismatch: %s vs %s", k, idsA[pa[k]], idsB[pb[k]])
		}
	}
}

func TestPSIEmptyIntersection(t *testing.T) {
	pa, pb := PSI([]string{"a", "b"}, []string{"c", "d"})
	if len(pa) != 0 || len(pb) != 0 {
		t.Fatal("phantom intersection")
	}
}

func TestAlignReordersLabels(t *testing.T) {
	ds := Generate(MustSpec("higgs"), 8)
	// A has instances [0..9], B has [5..14]; intersection = [5..9].
	idsA := make([]string, 10)
	idsB := make([]string, 10)
	for i := range idsA {
		idsA[i] = stringsRepeatID(i)
		idsB[i] = stringsRepeatID(i + 5)
	}
	subA := ds.TrainA.Batch(seq(0, 10))
	subB := ds.TrainB.Batch(seq(5, 15))
	a, b, y := Align(idsA, idsB, subA, subB, ds.TrainY[5:15])
	if a.Rows() != 5 || b.Rows() != 5 || len(y) != 5 {
		t.Fatalf("aligned sizes %d/%d/%d", a.Rows(), b.Rows(), len(y))
	}
	// Row 0 of the aligned set is global instance 5 on both sides.
	for j := 0; j < a.Dense.Cols; j++ {
		if a.Dense.At(0, j) != ds.TrainA.Dense.At(5, j) {
			t.Fatal("A side misaligned")
		}
	}
	if y[0] != ds.TrainY[5] {
		t.Fatal("labels misaligned")
	}
}

func stringsRepeatID(i int) string { return string(rune('A'+i%26)) + string(rune('a'+i/26)) }

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
