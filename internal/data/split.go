package data

import "fmt"

// SplitCols re-partitions one party's numeric feature columns into k
// contiguous blocks for a k-party group (Algorithm 3): the first cols%k
// blocks are one column wider than the rest, so any dimensionality — even
// one not divisible by k — round-trips with every column assigned to
// exactly one party. Dense and sparse storage both split via column slices.
// Categorical fields are not split (the multi-party runtime covers the
// numeric source layers) and stay off the returned parts.
func SplitCols(p Part, k int) []Part {
	cols := p.NumCols()
	if k < 1 || k > cols {
		panic(fmt.Sprintf("data: cannot split %d feature columns across %d parties", cols, k))
	}
	base, rem := cols/k, cols%k
	out := make([]Part, k)
	lo := 0
	for i := range out {
		hi := lo + base
		if i < rem {
			hi++
		}
		if p.Dense != nil {
			out[i].Dense = p.Dense.SliceCols(lo, hi)
		}
		if p.Sparse != nil {
			out[i].Sparse = p.Sparse.SliceCols(lo, hi)
		}
		lo = hi
	}
	return out
}
