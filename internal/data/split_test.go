package data

import "testing"

// TestSplitColsUnevenKeepsEveryColumn: widths differ by at most one, sum to
// the original dimensionality, and every value lands in exactly one block.
func TestSplitColsUnevenKeepsEveryColumn(t *testing.T) {
	ds := Generate(Spec{Name: "t-split", Feats: 22, AvgNNZ: 22, Classes: 2, Train: 8, Test: 4}, 1)
	// TrainA holds 11 columns: 3-way split must give 4+4+3.
	parts := SplitCols(ds.TrainA, 3)
	wantWidths := []int{4, 4, 3}
	lo := 0
	for i, p := range parts {
		if p.NumCols() != wantWidths[i] {
			t.Fatalf("block %d width = %d, want %d", i, p.NumCols(), wantWidths[i])
		}
		if !p.Dense.Equal(ds.TrainA.Dense.SliceCols(lo, lo+wantWidths[i]), 0) {
			t.Fatalf("block %d values differ from the contiguous column slice", i)
		}
		lo += wantWidths[i]
	}
	if lo != ds.TrainA.NumCols() {
		t.Fatalf("blocks cover %d of %d columns", lo, ds.TrainA.NumCols())
	}
}

func TestSplitColsSparseRoundTrips(t *testing.T) {
	ds := Generate(Spec{Name: "t-split-sp", Feats: 40, AvgNNZ: 6, Classes: 2, Train: 12, Test: 4}, 2)
	parts := SplitCols(ds.TrainA, 3)
	total := 0
	dense := ds.TrainA.Sparse.ToDense()
	lo := 0
	for i, p := range parts {
		w := p.NumCols()
		total += w
		if !p.Sparse.ToDense().Equal(dense.SliceCols(lo, lo+w), 0) {
			t.Fatalf("sparse block %d values differ from the column slice", i)
		}
		lo += w
	}
	if total != ds.TrainA.NumCols() {
		t.Fatalf("blocks cover %d of %d columns", total, ds.TrainA.NumCols())
	}
}

func TestSplitColsSingleBlockIsWholePart(t *testing.T) {
	ds := Generate(Spec{Name: "t-split-1", Feats: 10, AvgNNZ: 10, Classes: 2, Train: 6, Test: 2}, 3)
	parts := SplitCols(ds.TrainA, 1)
	if len(parts) != 1 || !parts[0].Dense.Equal(ds.TrainA.Dense, 0) {
		t.Fatal("k=1 split must reproduce the whole part")
	}
}

func TestSplitColsRejectsTooManyParties(t *testing.T) {
	ds := Generate(Spec{Name: "t-split-bad", Feats: 6, AvgNNZ: 6, Classes: 2, Train: 4, Test: 2}, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("SplitCols accepted more parties than columns")
		}
	}()
	SplitCols(ds.TrainA, ds.TrainA.NumCols()+1)
}
