// Package data provides the datasets of the paper's evaluation. The
// originals (LIBSVM datasets plus a 100M-instance industrial ad log) are not
// available offline, so each is replaced by a deterministic synthetic
// generator that preserves what the experiments actually depend on: feature
// dimensionality, average non-zeros per row (sparsity), class count, the
// presence of categorical fields, and a planted teacher signal spread across
// both parties' features so that (i) the joint model beats the Party-B-only
// model and (ii) federated and collocated training see identical data.
// Instance counts are scaled down for single-machine runs; every spec
// records the paper's original dimensions for reference.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"blindfl/internal/tensor"
)

// Spec describes one benchmark dataset.
type Spec struct {
	Name    string
	Feats   int // numeric feature dimensionality (both parties combined)
	AvgNNZ  int // average non-zeros per row; == Feats means dense
	Classes int
	Train   int // generated training instances
	Test    int // generated test instances

	CatFields int // categorical fields (0 = purely numeric dataset)
	CatVocab  int // vocabulary size per party's embedding table

	// Margin is the label temperature: labels are sampled with probability
	// sigmoid(Margin·teacherLogit), so larger values yield cleaner, more
	// separable labels. 0 means the default of 2.
	Margin float64

	PaperFeats string // the paper's original dimensionality, for reporting
	PaperRows  string // the paper's original train/test sizes
}

// Dense reports whether the numeric part should be stored densely.
func (s Spec) Dense() bool { return s.AvgNNZ >= s.Feats }

// Sparsity returns the zero fraction implied by the spec.
func (s Spec) Sparsity() float64 {
	if s.Feats == 0 {
		return 0
	}
	return 1 - float64(s.AvgNNZ)/float64(s.Feats)
}

// Specs lists the evaluation datasets (paper Table 4) plus fmnist
// (appendix D.1). High-dimensional specs are scaled: news20 62K→8K,
// avazu-app 1M→200K, industry 10M→1M features; row counts are scaled to
// thousands throughout.
var Specs = map[string]Spec{
	"a9a":       {Name: "a9a", Feats: 123, AvgNNZ: 14, Classes: 2, Train: 3000, Test: 1000, PaperFeats: "123", PaperRows: "32K/16K"},
	"w8a":       {Name: "w8a", Feats: 300, AvgNNZ: 12, Classes: 2, Train: 3000, Test: 1000, PaperFeats: "300", PaperRows: "50K/15K"},
	"connect-4": {Name: "connect-4", Feats: 126, AvgNNZ: 42, Classes: 3, Train: 3000, Test: 1000, PaperFeats: "126", PaperRows: "50K/17K"},
	"news20":    {Name: "news20", Feats: 8000, AvgNNZ: 80, Classes: 20, Train: 2000, Test: 500, PaperFeats: "62K", PaperRows: "16K/4K"},
	"higgs":     {Name: "higgs", Feats: 28, AvgNNZ: 28, Classes: 2, Train: 4000, Test: 1000, PaperFeats: "28", PaperRows: "8M/3M"},
	"avazu-app": {Name: "avazu-app", Feats: 200000, AvgNNZ: 14, Classes: 2, Train: 2000, Test: 500, CatFields: 8, CatVocab: 500, PaperFeats: "1M", PaperRows: "13M/2M"},
	"industry":  {Name: "industry", Feats: 1000000, AvgNNZ: 12, Classes: 2, Train: 2000, Test: 500, CatFields: 8, CatVocab: 1000, PaperFeats: "10M", PaperRows: "100M/8M"},
	"fmnist":    {Name: "fmnist", Feats: 784, AvgNNZ: 784, Classes: 10, Train: 3000, Test: 1000, PaperFeats: "784", PaperRows: "60K/10K"},
}

// MustSpec returns the named spec or panics.
func MustSpec(name string) Spec {
	s, ok := Specs[name]
	if !ok {
		panic(fmt.Sprintf("data: unknown dataset %q", name))
	}
	return s
}

// Part is one party's view of a dataset split: numeric features (dense or
// sparse) and optional categorical fields.
type Part struct {
	Dense  *tensor.Dense
	Sparse *tensor.CSR
	Cat    *tensor.IntMatrix
}

// NumCols returns the numeric feature dimensionality.
func (p Part) NumCols() int {
	if p.Dense != nil {
		return p.Dense.Cols
	}
	if p.Sparse != nil {
		return p.Sparse.Cols
	}
	return 0
}

// Rows returns the instance count.
func (p Part) Rows() int {
	switch {
	case p.Dense != nil:
		return p.Dense.Rows
	case p.Sparse != nil:
		return p.Sparse.Rows
	case p.Cat != nil:
		return p.Cat.Rows
	}
	return 0
}

// Batch extracts the instances at idx.
func (p Part) Batch(idx []int) Part {
	out := Part{}
	if p.Dense != nil {
		out.Dense = p.Dense.GatherRows(idx)
	}
	if p.Sparse != nil {
		out.Sparse = p.Sparse.GatherRows(idx)
	}
	if p.Cat != nil {
		out.Cat = p.Cat.GatherRows(idx)
	}
	return out
}

// NumericDense returns the numeric features as a dense matrix (materializing
// sparse storage when needed) — used by the plaintext baselines.
func (p Part) NumericDense() *tensor.Dense {
	if p.Dense != nil {
		return p.Dense
	}
	if p.Sparse != nil {
		return p.Sparse.ToDense()
	}
	return nil
}

// Dataset is a vertically partitioned, PSI-aligned dataset: Party A and
// Party B hold disjoint feature columns for the same instance order, and
// Party B holds the labels.
type Dataset struct {
	Spec           Spec
	TrainA, TrainB Part
	TestA, TestB   Part
	TrainY, TestY  []int
}

// Generate builds the synthetic dataset for a spec deterministically from a
// seed. The planted teacher is a linear scorer over all numeric features
// plus a per-category effect, with logistic noise; classes are balanced by
// construction of the threshold/argmax rule.
func Generate(spec Spec, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	g := &teacher{spec: spec, rng: rng}
	g.init()

	trainA, trainB, trainY := g.sample(spec.Train)
	testA, testB, testY := g.sample(spec.Test)
	return &Dataset{
		Spec:   spec,
		TrainA: trainA, TrainB: trainB, TrainY: trainY,
		TestA: testA, TestB: testB, TestY: testY,
	}
}

// teacher holds the planted model that labels generated instances.
type teacher struct {
	spec Spec
	rng  *rand.Rand

	w    *tensor.Dense // Feats×Classes′ numeric teacher (Classes′ = 1 for binary)
	catW []*tensor.Dense
	bias []float64
}

func (t *teacher) outDim() int {
	if t.spec.Classes == 2 {
		return 1
	}
	return t.spec.Classes
}

func (t *teacher) init() {
	out := t.outDim()
	t.w = tensor.RandNormal(t.rng, t.spec.Feats, out, 1)
	t.bias = make([]float64, out)
	if t.spec.CatFields > 0 {
		// One teacher table per party (fields are split evenly below).
		t.catW = []*tensor.Dense{
			tensor.RandNormal(t.rng, t.spec.CatVocab, out, 1),
			tensor.RandNormal(t.rng, t.spec.CatVocab, out, 1),
		}
	}
}

// sample draws n instances and vertically splits them.
func (t *teacher) sample(n int) (a, b Part, y []int) {
	spec := t.spec
	out := t.outDim()
	half := spec.Feats / 2
	fieldsA := spec.CatFields / 2
	fieldsB := spec.CatFields - fieldsA

	y = make([]int, n)
	var denseX *tensor.Dense
	var sparseX *tensor.CSR
	if spec.Dense() {
		denseX = tensor.NewDense(n, spec.Feats)
	} else {
		sparseX = tensor.NewCSR(n, spec.Feats, n*spec.AvgNNZ)
	}
	var catA, catB *tensor.IntMatrix
	if spec.CatFields > 0 {
		catA = tensor.NewIntMatrix(n, fieldsA)
		catB = tensor.NewIntMatrix(n, fieldsB)
	}

	logit := make([]float64, out)
	for i := 0; i < n; i++ {
		for j := range logit {
			logit[j] = t.bias[j]
		}
		if spec.Dense() {
			row := denseX.Row(i)
			for j := range row {
				v := t.rng.NormFloat64()
				row[j] = v
				for k := 0; k < out; k++ {
					logit[k] += v * t.w.At(j, k) / math.Sqrt(float64(spec.Feats))
				}
			}
		} else {
			nnz := t.nnzCount()
			cols, vals := t.sparseRow(nnz)
			sparseX.AppendRow(cols, vals)
			for idx, j := range cols {
				for k := 0; k < out; k++ {
					logit[k] += vals[idx] * t.w.At(j, k) / math.Sqrt(float64(nnz))
				}
			}
		}
		if spec.CatFields > 0 {
			for f := 0; f < fieldsA; f++ {
				c := t.rng.Intn(spec.CatVocab)
				catA.Set(i, f, c)
				for k := 0; k < out; k++ {
					logit[k] += t.catW[0].At(c, k) / math.Sqrt(float64(spec.CatFields))
				}
			}
			for f := 0; f < fieldsB; f++ {
				c := t.rng.Intn(spec.CatVocab)
				catB.Set(i, f, c)
				for k := 0; k < out; k++ {
					logit[k] += t.catW[1].At(c, k) / math.Sqrt(float64(spec.CatFields))
				}
			}
		}
		y[i] = t.label(logit)
	}

	// Vertical split: even halves of the numeric columns, fields as above.
	if spec.Dense() {
		a = Part{Dense: denseX.SliceCols(0, half), Cat: catA}
		b = Part{Dense: denseX.SliceCols(half, spec.Feats), Cat: catB}
	} else {
		a = Part{Sparse: sparseX.SliceCols(0, half), Cat: catA}
		b = Part{Sparse: sparseX.SliceCols(half, spec.Feats), Cat: catB}
	}
	return a, b, y
}

// nnzCount draws the per-row non-zero count around AvgNNZ.
func (t *teacher) nnzCount() int {
	jitter := t.spec.AvgNNZ / 4
	n := t.spec.AvgNNZ
	if jitter > 0 {
		n += t.rng.Intn(2*jitter+1) - jitter
	}
	if n < 1 {
		n = 1
	}
	if n > t.spec.Feats {
		n = t.spec.Feats
	}
	return n
}

// sparseRow draws nnz distinct columns with signed unit-ish values.
func (t *teacher) sparseRow(nnz int) ([]int, []float64) {
	seen := make(map[int]bool, nnz)
	cols := make([]int, 0, nnz)
	vals := make([]float64, 0, nnz)
	for len(cols) < nnz {
		j := t.rng.Intn(t.spec.Feats)
		if seen[j] {
			continue
		}
		seen[j] = true
		cols = append(cols, j)
		// Binary-ish sparse features, as in the LIBSVM originals.
		vals = append(vals, 1)
	}
	return cols, vals
}

// label converts teacher logits into a class with logistic noise.
func (t *teacher) label(logit []float64) int {
	margin := t.spec.Margin
	if margin == 0 {
		margin = 2
	}
	if len(logit) == 1 {
		p := 1 / (1 + math.Exp(-margin*logit[0]))
		if t.rng.Float64() < p {
			return 1
		}
		return 0
	}
	// Multi-class: Gumbel-noised argmax (i.e. a sample from the softmax of
	// margin·logit; larger Margin means cleaner labels).
	best, bestV := 0, math.Inf(-1)
	for k, v := range logit {
		g := -math.Log(-math.Log(t.rng.Float64() + 1e-12))
		if margin*v+g > bestV {
			bestV = margin*v + g
			best = k
		}
	}
	return best
}

// BatchIndices returns the index sets of consecutive mini-batches covering
// [0, n), the last one possibly short.
func BatchIndices(n, batch int) [][]int {
	var out [][]int
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		out = append(out, idx)
	}
	return out
}

// Shuffle returns a permutation of [0, n) drawn from rng.
func Shuffle(rng *rand.Rand, n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return idx
}
