package data

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"blindfl/internal/tensor"
)

// ReadLibSVM parses the LIBSVM sparse text format ("label idx:val idx:val…",
// 1-based indices) into a CSR matrix and a label slice. Labels −1/+1 are
// mapped to 0/1; non-negative integer labels are used as class indices.
// dims fixes the column count; pass 0 to infer it from the data.
func ReadLibSVM(r io.Reader, dims int) (*tensor.CSR, []int, error) {
	type row struct {
		cols []int
		vals []float64
	}
	var rows []row
	var labels []int
	maxCol := -1

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		lab, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("data: line %d: bad label %q", lineNo, fields[0])
		}
		y := int(lab)
		if y == -1 {
			y = 0
		}
		var rw row
		for _, f := range fields[1:] {
			parts := strings.SplitN(f, ":", 2)
			if len(parts) != 2 {
				return nil, nil, fmt.Errorf("data: line %d: bad feature %q", lineNo, f)
			}
			idx, err := strconv.Atoi(parts[0])
			if err != nil || idx < 1 {
				return nil, nil, fmt.Errorf("data: line %d: bad index %q", lineNo, parts[0])
			}
			val, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("data: line %d: bad value %q", lineNo, parts[1])
			}
			col := idx - 1
			if col > maxCol {
				maxCol = col
			}
			rw.cols = append(rw.cols, col)
			rw.vals = append(rw.vals, val)
		}
		rows = append(rows, rw)
		labels = append(labels, y)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if dims == 0 {
		dims = maxCol + 1
	}
	if maxCol >= dims {
		return nil, nil, fmt.Errorf("data: feature index %d exceeds declared dims %d", maxCol+1, dims)
	}
	c := tensor.NewCSR(len(rows), dims, 0)
	for _, rw := range rows {
		c.AppendRow(rw.cols, rw.vals)
	}
	return c, labels, nil
}

// WriteLibSVM emits a CSR matrix with labels in LIBSVM format.
func WriteLibSVM(w io.Writer, x *tensor.CSR, y []int) error {
	if x.Rows != len(y) {
		return fmt.Errorf("data: %d rows but %d labels", x.Rows, len(y))
	}
	bw := bufio.NewWriter(w)
	for i := 0; i < x.Rows; i++ {
		if _, err := fmt.Fprintf(bw, "%d", y[i]); err != nil {
			return err
		}
		cols, vals := x.RowNNZ(i)
		for k, c := range cols {
			if _, err := fmt.Fprintf(bw, " %d:%g", c+1, vals[k]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}
