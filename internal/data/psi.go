package data

import (
	"crypto/rand"
	"crypto/sha256"
	"math/big"
	"sort"
)

// Private set intersection. The paper assumes instance alignment has been
// done by PSI as a preprocessing step (Sec. 7.1); this file provides a
// small Diffie–Hellman-style PSI so the repository is self-contained:
// each party blinds the hash of every ID with a private exponent, the
// double-blinded values h(id)^(ab) coincide exactly on the intersection,
// and neither party learns IDs outside it. It runs in one process (the
// function plays both parties) since its purpose here is preprocessing,
// not a networked protocol demonstration.

// dhPrime is a fixed 512-bit safe prime for the blinding group. PSI only
// needs one-wayness of exponent blinding, not long-term secrecy, so a
// moderate group keeps alignment fast.
var dhPrime, _ = new(big.Int).SetString(
	"F52AFF3CE1B1294018118D7C84A70A72D686C40319C807297ACA950CD9969FBA"+
		"BEA963A2B02B5F9B0255F1034D2E56AC5C62C5C284C87D7C4A32A49034D3A7D3", 16)

// hashToGroup maps an ID string into the multiplicative group.
func hashToGroup(id string) *big.Int {
	h := sha256.Sum256([]byte(id))
	x := new(big.Int).SetBytes(h[:])
	x.Mod(x, dhPrime)
	if x.Sign() == 0 {
		x.SetInt64(2)
	}
	return x
}

// PSI computes the intersection of two ID sets with DH blinding and returns
// the matching index pairs (position in idsA, position in idsB), sorted by
// position in idsA. Both parties learn only the intersection.
func PSI(idsA, idsB []string) (pairsA, pairsB []int) {
	q := new(big.Int).Sub(dhPrime, big.NewInt(1))
	expA := mustRandExp(q)
	expB := mustRandExp(q)

	// A blinds its IDs with a, sends to B; B raises to b. And symmetrically.
	doubleA := make(map[string]int, len(idsA)) // h(id)^(ab) -> index in A
	for i, id := range idsA {
		v := new(big.Int).Exp(hashToGroup(id), expA, dhPrime)
		v.Exp(v, expB, dhPrime)
		doubleA[v.String()] = i
	}
	type pair struct{ a, b int }
	var matches []pair
	for j, id := range idsB {
		v := new(big.Int).Exp(hashToGroup(id), expB, dhPrime)
		v.Exp(v, expA, dhPrime)
		if i, ok := doubleA[v.String()]; ok {
			matches = append(matches, pair{i, j})
		}
	}
	sort.Slice(matches, func(x, y int) bool { return matches[x].a < matches[y].a })
	for _, m := range matches {
		pairsA = append(pairsA, m.a)
		pairsB = append(pairsB, m.b)
	}
	return pairsA, pairsB
}

func mustRandExp(q *big.Int) *big.Int {
	e, err := rand.Int(rand.Reader, q)
	if err != nil {
		panic(err)
	}
	if e.Sign() == 0 {
		e.SetInt64(3)
	}
	return e
}

// Align reorders both parties' parts (and B's labels) to the PSI
// intersection of their ID lists, producing the aligned virtual dataset the
// training protocols consume.
func Align(idsA, idsB []string, a, b Part, y []int) (Part, Part, []int) {
	ia, ib := PSI(idsA, idsB)
	ya := make([]int, len(ib))
	for k, j := range ib {
		ya[k] = y[j]
	}
	return a.Batch(ia), b.Batch(ib), ya
}
