// Package engine is the single definition of the throughput-engine knobs
// shared by training, benchmarking and serving: ciphertext packing,
// chunk-streamed transfers, the textbook-exponentiation ablation, the
// persistent dot-table cache budget, and the blinding-pool / secret-key
// fast-path setup. core.Config, model.Hyper and bench.StepperOpts embed
// Options, and the blindfl-train / blindfl-bench / blindfl-serve CLIs all
// register their engine flags through RegisterFlags, so there is exactly one
// declaration of each knob instead of four drifting copies.
package engine

import (
	"flag"
	"fmt"
	"hash/fnv"
	"strconv"

	"blindfl/internal/hetensor"
	"blindfl/internal/paillier"
)

// Options selects the throughput-engine features of a run. The zero value is
// the baseline engine: unpacked, monolithic transfers, signed/Straus
// exponentiation on, no table cache, no pools, no secret-key fast paths.
type Options struct {
	// Packed enables ciphertext packing (K fixed-point lanes per Paillier
	// plaintext) on the source-layer homomorphic hot paths. Both parties
	// must agree on the flag; results match the unpacked protocol to
	// fixed-point tolerance. The sparse MatMul layer ignores it (its
	// on-demand row-cache protocol is bandwidth-bound, not blinding-bound).
	Packed bool

	// Stream splits large ciphertext transfers into bounded row-chunks so
	// the sender encrypts chunk i+1 while chunk i is on the wire and the
	// receiver decrypts chunk i−1. Orthogonal to Packed; both parties must
	// agree. Chunking changes message framing, not values.
	Stream bool

	// ChunkRows bounds the rows per streamed chunk (0 = protocol default).
	ChunkRows int

	// Textbook disables the signed/Straus exponentiation engine on the
	// homomorphic matmul kernels, restoring the classic full-width MulPlain
	// paths (hetensor.SetTextbook). Process-wide: in-process parties share
	// the toggle and the most recently applied Options wins. It exists for
	// A/B ablation benchmarking; results are identical either way.
	Textbook bool

	// TableCacheMB budgets the process-wide persistent Straus dot-table
	// cache in MiB (hetensor.SetTableCacheBudget): window tables keyed by
	// ciphertext-matrix identity survive across kernel invocations, batches
	// and epochs. 0 disables the cache. Process-wide like Textbook, with the
	// same last-applied-wins caveat. Results are bit-identical with the
	// cache on or off; it only trades memory for recomputation.
	TableCacheMB int

	// Pool, when positive, registers a blinding-randomness pool of that
	// capacity for each key passed to SetupKeys, so every encryption site
	// takes the precomputed fast path. A pool already registered for a key
	// is replaced and closed. Pools stay registered for the process.
	Pool int

	// ShortExp, when positive, switches the registered pools to DJN-style
	// short-exponent blinding with exponents of that many bits (400 is the
	// standard choice): refills draw (hⁿ)^α for a fresh short α instead of a
	// full-width r^N. Requires Pool > 0.
	ShortExp int

	// NoFixedBase disables the Lim–Lee fixed-base comb tables on the
	// short-exp pool refills, restoring the plain big.Int.Exp refill as the
	// ablation baseline. The zero value (combs on) is the fast default.
	NoFixedBase bool

	// SecretOps registers the CRT secret-key fast paths for every key passed
	// to SetupKeys. In-process this accelerates both parties, which a real
	// two-party deployment cannot do — use it to measure the label-party
	// ceiling, not a deployment. Stays registered for the process.
	SecretOps bool

	// SpotCheck enables the label party's probabilistic decrypt spot-check:
	// for one sampled HE2SS conversion in four, one random row is
	// re-verified against the exact integer plaintext path, and mismatches
	// are counted in the protocol's StreamStats (and the serve runtime's
	// Stats). A run-integrity probe, not a throughput knob: it detects
	// corrupted or mis-assembled ciphertext arithmetic that in-range
	// bit-flips would otherwise turn into silent garbage. Label-party-local
	// — no protocol change, the feature party cannot tell it is on. Costs
	// one extra decrypt per sampled conversion (<5% on the packed fed
	// step).
	SpotCheck bool

	// ANCheck enables the AHEAD-style AN-coded residue check on the serve
	// path's plaintext share arithmetic: every exact-integer share cell is
	// recomputed mod a small prime alongside its big-integer accumulation
	// and verified before the share joins the decrypted homomorphic half.
	// The complement of SpotCheck — that probe re-verifies the *ciphertext*
	// side of a conversion, this one guards the *plaintext* side, which
	// otherwise trusts RAM. Outcomes are counted in StreamStats
	// (ANChecks/ANMismatches); a mismatch is typed transport.ErrCorrupt.
	// Party-local, no protocol change; cost is a cheap modular pass over
	// the share matrix.
	ANCheck bool
}

// RegisterFlags registers one CLI flag per engine knob on fs, with o's
// current values as defaults — the one flag surface shared by blindfl-train,
// blindfl-bench and blindfl-serve. The -fixedbase flag keeps its historical
// positive sense (default true) and writes NoFixedBase inverted.
func (o *Options) RegisterFlags(fs *flag.FlagSet) {
	fs.BoolVar(&o.Packed, "packed", o.Packed, "ciphertext packing on the source-layer hot paths")
	fs.BoolVar(&o.Stream, "stream", o.Stream, "chunk-streamed ciphertext transfers (compute/comm overlap)")
	fs.IntVar(&o.ChunkRows, "chunk", o.ChunkRows, "rows per streamed chunk (0 = protocol default)")
	fs.BoolVar(&o.Textbook, "textbook", o.Textbook, "disable the signed/Straus exponentiation engine (ablation)")
	fs.IntVar(&o.TableCacheMB, "tablecache", o.TableCacheMB, "persistent dot-table cache budget in MiB (0 = off)")
	fs.IntVar(&o.Pool, "pool", o.Pool, "blinding-randomness pool capacity per key (0 = off)")
	fs.IntVar(&o.ShortExp, "shortexp", o.ShortExp, "short-exponent blinding bits on the pools (0 = full-width; needs -pool)")
	fs.Var(negatedBool{&o.NoFixedBase}, "fixedbase", "Lim–Lee fixed-base combs for short-exp pool refills (false = big.Int.Exp ablation)")
	fs.BoolVar(&o.SecretOps, "secretops", o.SecretOps, "CRT secret-key fast paths for homomorphic ops (in-process measurement aid)")
	fs.BoolVar(&o.SpotCheck, "spotcheck", o.SpotCheck, "probabilistic decrypt spot-checks on the label party (run-integrity probe)")
	fs.BoolVar(&o.ANCheck, "ancheck", o.ANCheck, "AN-coded residue checks on the serve path's plaintext share arithmetic (run-integrity probe)")
}

// negatedBool adapts the positive-sense -fixedbase flag onto the
// zero-value-is-on NoFixedBase field.
type negatedBool struct{ no *bool }

func (n negatedBool) IsBoolFlag() bool { return true }

func (n negatedBool) String() string {
	if n.no == nil {
		return "true"
	}
	return strconv.FormatBool(!*n.no)
}

func (n negatedBool) Set(s string) error {
	v, err := strconv.ParseBool(s)
	*n.no = !v
	return err
}

// Fingerprint hashes the full option set (FNV-1a over the canonical %+v
// rendering) into one word. Run checkpoints embed it so a resume under a
// different engine configuration is refused up front: most knobs cannot
// change a trajectory, but Packed does, and a fingerprint check is cheaper
// and stricter than reasoning about which knobs are trajectory-neutral.
func (o Options) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", o)
	return h.Sum64()
}

// Validate checks cross-knob consistency.
func (o Options) Validate() error {
	if o.ShortExp > 0 && o.Pool <= 0 {
		return fmt.Errorf("engine: -shortexp requires -pool (short exponents only exist as pool refills)")
	}
	if o.ChunkRows < 0 || o.TableCacheMB < 0 || o.Pool < 0 || o.ShortExp < 0 {
		return fmt.Errorf("engine: negative option value")
	}
	return nil
}

// Apply installs the process-wide engine settings (the Textbook ablation
// toggle and the dot-table cache budget). Layer constructors call it through
// core.Config, so the knobs take effect wherever an Options enters the
// system; CLIs may also call it up front.
func (o Options) Apply() {
	hetensor.SetTextbook(o.Textbook)
	hetensor.SetTableCacheBudget(int64(o.TableCacheMB) << 20)
}

// SetupKeys installs the per-key engine state the options select — secret-key
// CRT fast paths and blinding pools (with short-exp / fixed-base refill
// configuration) — for each key pair, replacing and closing any pool already
// registered for it. Call once per process after key generation.
func (o Options) SetupKeys(keys ...*paillier.PrivateKey) {
	for _, sk := range keys {
		if o.SecretOps {
			paillier.RegisterSecretOps(sk)
		}
		if o.Pool <= 0 {
			continue
		}
		var poolOpts []paillier.PoolOption
		if o.ShortExp > 0 {
			poolOpts = append(poolOpts, paillier.WithShortExp(o.ShortExp), paillier.WithFixedBase(!o.NoFixedBase, 0))
		}
		old := paillier.PoolFor(&sk.PublicKey)
		paillier.RegisterPool(paillier.NewPool(&sk.PublicKey, o.Pool, 0, paillier.Rand, poolOpts...))
		if old != nil {
			old.Close()
		}
	}
}
