package core

import (
	"math/rand"
	"testing"

	"blindfl/internal/engine"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// Chunk-streamed source layers must produce exactly the values of the
// monolithic protocol: chunking changes message framing, not arithmetic.
// These tests cross-check streamed runs against plaintext training and
// against monolithic runs with identical seeds.

func TestStreamedMatMulForwardMatchesPlaintext(t *testing.T) {
	pa, pb := pipe(t, 800)
	pa.ChunkRows, pb.ChunkRows = 2, 2 // force several chunks on a small batch
	cfg := Config{Out: 3, LR: 0.1, Options: engine.Options{Stream: true}}
	la, lb := newMatMulPair(t, pa, pb, cfg, 5, 4)

	rng := rand.New(rand.NewSource(1))
	xA := tensor.RandDense(rng, 7, 5, 1)
	xB := tensor.RandDense(rng, 7, 4, 1)

	want := xA.MatMul(DebugWeightsA(la, lb)).Add(xB.MatMul(DebugWeightsB(la, lb)))
	var z *tensor.Dense
	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(DenseFeatures{xA}) },
		func() { z = lb.Forward(DenseFeatures{xB}) },
	); err != nil {
		t.Fatal(err)
	}
	if !z.Equal(want, 1e-4) {
		t.Fatalf("streamed federated Z diverges from plaintext:\n got %v\nwant %v", z.Data, want.Data)
	}
}

func TestStreamedMatMulBackwardMatchesSGD(t *testing.T) {
	pa, pb := pipe(t, 801)
	pa.ChunkRows, pb.ChunkRows = 2, 2
	cfg := Config{Out: 2, LR: 0.05, Options: engine.Options{Stream: true}}
	la, lb := newMatMulPair(t, pa, pb, cfg, 3, 4)

	rng := rand.New(rand.NewSource(3))
	xA := tensor.RandDense(rng, 5, 3, 1)
	xB := tensor.RandDense(rng, 5, 4, 1)
	gradZ := tensor.RandDense(rng, 5, 2, 1)

	wantWA := DebugWeightsA(la, lb).Sub(xA.TransposeMatMul(gradZ).Scale(cfg.LR))
	wantWB := DebugWeightsB(la, lb).Sub(xB.TransposeMatMul(gradZ).Scale(cfg.LR))

	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(DenseFeatures{xA}); la.Backward() },
		func() { lb.Forward(DenseFeatures{xB}); lb.Backward(gradZ) },
	); err != nil {
		t.Fatal(err)
	}
	if got := DebugWeightsA(la, lb); !got.Equal(wantWA, 1e-4) {
		t.Fatalf("streamed W_A update wrong:\n got %v\nwant %v", got.Data, wantWA.Data)
	}
	if got := DebugWeightsB(la, lb); !got.Equal(wantWB, 1e-4) {
		t.Fatalf("streamed W_B update wrong:\n got %v\nwant %v", got.Data, wantWB.Data)
	}
}

// TestStreamedSparseMatMulBackwardMatchesSGD exercises the CSR accumulator
// path (TransposeMulLeftCSRAcc) behind the streamed backward.
func TestStreamedSparseMatMulBackwardMatchesSGD(t *testing.T) {
	pa, pb := pipe(t, 802)
	pa.ChunkRows, pb.ChunkRows = 2, 2
	cfg := Config{Out: 2, LR: 0.05, Options: engine.Options{Stream: true}}
	la, lb := newMatMulPair(t, pa, pb, cfg, 12, 4)

	rng := rand.New(rand.NewSource(4))
	xA := tensor.RandCSR(rng, 5, 12, 3)
	xB := tensor.RandDense(rng, 5, 4, 1)
	gradZ := tensor.RandDense(rng, 5, 2, 1)

	wantWA := DebugWeightsA(la, lb).Sub(xA.ToDense().TransposeMatMul(gradZ).Scale(cfg.LR))

	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(SparseFeatures{xA}); la.Backward() },
		func() { lb.Forward(DenseFeatures{xB}); lb.Backward(gradZ) },
	); err != nil {
		t.Fatal(err)
	}
	if got := DebugWeightsA(la, lb); !got.Equal(wantWA, 1e-4) {
		t.Fatalf("streamed sparse W_A update wrong:\n got %v\nwant %v", got.Data, wantWA.Data)
	}
}

// TestStreamedPackedMatMulTrajectoryMatchesMonolithic drives several packed
// forward+backward rounds streamed and monolithic from identical seeds: the
// weight trajectories must agree to fixed-point tolerance (the acceptance
// cross-check for the streamed packed path).
func TestStreamedPackedMatMulTrajectoryMatchesMonolithic(t *testing.T) {
	runSteps := func(stream bool) (*tensor.Dense, *tensor.Dense, *tensor.Dense) {
		pa, pb := pipe(t, 803) // same seed: identical init and masks per run
		pa.ChunkRows, pb.ChunkRows = 2, 2
		cfg := Config{Out: 2, LR: 0.05, Options: engine.Options{Packed: true, Stream: stream}}
		la, lb := newMatMulPair(t, pa, pb, cfg, 4, 3)
		rng := rand.New(rand.NewSource(5))
		var z *tensor.Dense
		for step := 0; step < 3; step++ {
			xA := tensor.RandDense(rng, 5, 4, 1)
			xB := tensor.RandDense(rng, 5, 3, 1)
			gradZ := tensor.RandDense(rng, 5, 2, 1)
			if err := protocol.RunParties(pa, pb,
				func() { la.Forward(DenseFeatures{xA}); la.Backward() },
				func() { z = lb.Forward(DenseFeatures{xB}); lb.Backward(gradZ) },
			); err != nil {
				t.Fatal(err)
			}
		}
		return DebugWeightsA(la, lb), DebugWeightsB(la, lb), z
	}
	wAs, wBs, zs := runSteps(true)
	wAm, wBm, zm := runSteps(false)
	if !wAs.Equal(wAm, 1e-6) {
		t.Fatal("streamed packed W_A trajectory diverges from monolithic")
	}
	if !wBs.Equal(wBm, 1e-6) {
		t.Fatal("streamed packed W_B trajectory diverges from monolithic")
	}
	if !zs.Equal(zm, 1e-6) {
		t.Fatal("streamed packed forward Z diverges from monolithic")
	}
}

// TestStreamedEmbedMatMulTrajectoryMatchesMonolithic cross-checks the
// streamed Embed-MatMul layer (packed lookup path + streamed refresh and
// gradient conversions) against the monolithic packed protocol.
func TestStreamedEmbedMatMulTrajectoryMatchesMonolithic(t *testing.T) {
	runSteps := func(stream bool) (*tensor.Dense, *tensor.Dense) {
		pa, pb := pipe(t, 804)
		pa.ChunkRows, pb.ChunkRows = 2, 2
		cfg := embedTestCfg()
		cfg.Packed = true
		cfg.Stream = stream
		la, lb := newEmbedPair(t, pa, pb, cfg)
		rng := rand.New(rand.NewSource(6))
		for step := 0; step < 2; step++ {
			xA := randIdx(rng, 3, cfg.FieldsA, cfg.VocabA)
			xB := randIdx(rng, 3, cfg.FieldsB, cfg.VocabB)
			gradZ := tensor.RandDense(rng, 3, cfg.Out, 0.5)
			if err := protocol.RunParties(pa, pb,
				func() { la.Forward(xA); la.Backward() },
				func() { lb.Forward(xB); lb.Backward(gradZ) },
			); err != nil {
				t.Fatal(err)
			}
		}
		return DebugTableA(la, lb), DebugEmbedWeightsA(la, lb)
	}
	qs, ws := runSteps(true)
	qm, wm := runSteps(false)
	if !qs.Equal(qm, 1e-6) {
		t.Fatal("streamed embed table trajectory diverges from monolithic")
	}
	if !ws.Equal(wm, 1e-6) {
		t.Fatal("streamed embed weight trajectory diverges from monolithic")
	}
}

// TestStreamedFedTopMatchesMonolithic covers the streamed SS2HE conversion
// and the streamed federated-top backward.
func TestStreamedFedTopMatchesMonolithic(t *testing.T) {
	runStep := func(stream bool) (*tensor.Dense, *tensor.Dense) {
		pa, pb := pipe(t, 805)
		pa.ChunkRows, pb.ChunkRows = 2, 2
		cfg := Config{Out: 2, LR: 0.1, Options: engine.Options{Stream: stream}}
		la, lb := newMatMulPair(t, pa, pb, cfg, 3, 3)
		rng := rand.New(rand.NewSource(7))
		xA := tensor.RandDense(rng, 5, 3, 1)
		xB := tensor.RandDense(rng, 5, 3, 1)
		gradZ := tensor.RandDense(rng, 5, 2, 1)
		eps := tensor.RandDense(rng, 5, 2, 1)
		gradShareB := gradZ.Sub(eps)
		if err := protocol.RunParties(pa, pb,
			func() { la.ForwardSS(DenseFeatures{xA}); la.BackwardSS(eps) },
			func() { lb.ForwardSS(DenseFeatures{xB}); lb.BackwardSS(gradShareB) },
		); err != nil {
			t.Fatal(err)
		}
		return DebugWeightsA(la, lb), DebugWeightsB(la, lb)
	}
	wAs, wBs := runStep(true)
	wAm, wBm := runStep(false)
	if !wAs.Equal(wAm, 1e-6) {
		t.Fatal("streamed fed-top W_A diverges from monolithic")
	}
	if !wBs.Equal(wBm, 1e-6) {
		t.Fatal("streamed fed-top W_B diverges from monolithic")
	}
}

// TestStreamedMultiPartyForwardBackward pins that the multi-party layer
// honours Config.Stream end to end: the sub-layer B-halves and every A-side
// two-party half run the streamed protocol (a dropped flag on either side
// desynchronizes the session and fails loudly).
func TestStreamedMultiPartyForwardBackward(t *testing.T) {
	const k = 2
	peersA, g := groupPipe(t, k, 810)
	for i, pa := range peersA {
		pa.ChunkRows, g.Peers[i].ChunkRows = 2, 2
	}
	cfg := Config{Out: 2, LR: 0.1, Options: engine.Options{Stream: true}}
	inAs := []int{3, 4}
	inB := 3
	as, b := newMultiMatMul(t, peersA, g, cfg, inAs, inB)

	rng := rand.New(rand.NewSource(9))
	xAs := []*tensor.Dense{tensor.RandDense(rng, 4, 3, 1), tensor.RandDense(rng, 4, 4, 1)}
	xB := tensor.RandDense(rng, 4, 3, 1)
	gradZ := tensor.RandDense(rng, 4, 2, 1)

	want := xB.MatMul(DebugMultiWeightsB(b, as))
	for i := range as {
		want.AddInPlace(xAs[i].MatMul(DebugMultiWeightsA(b, as[i], i)))
	}

	var z *tensor.Dense
	if err := protocol.RunGroup(peersA, g,
		func(i int) { as[i].Forward(DenseFeatures{xAs[i]}); as[i].Backward() },
		func() { z = b.Forward(DenseFeatures{xB}); b.Backward(gradZ) },
	); err != nil {
		t.Fatal(err)
	}
	if !z.Equal(want, 1e-4) {
		t.Fatalf("streamed multiparty Z diverges (maxdiff %g)", z.Sub(want).MaxAbs())
	}
	for i, pa := range peersA {
		if pa.Stream.ChunksSent == 0 || pa.Stream.ChunksRecv == 0 {
			t.Fatalf("session %d recorded no streamed chunks: %+v", i, pa.Stream)
		}
	}
}

// TestStreamedMatMulOverTCP runs the streamed protocol across a real TCP
// connection: chunk envelopes, sequence numbers and the gobConn writer all
// see genuine socket behaviour.
func TestStreamedMatMulOverTCP(t *testing.T) {
	pa, pb := tcpPeers(t, 806)
	pa.ChunkRows, pb.ChunkRows = 2, 2
	cfg := Config{Out: 2, LR: 0.1, Options: engine.Options{Packed: true, Stream: true}}
	la, lb := newMatMulPair(t, pa, pb, cfg, 4, 4)

	rng := rand.New(rand.NewSource(8))
	for step := 0; step < 2; step++ {
		xA := tensor.RandDense(rng, 5, 4, 1)
		xB := tensor.RandDense(rng, 5, 4, 1)
		g := tensor.RandDense(rng, 5, 2, 1)
		want := xA.MatMul(DebugWeightsA(la, lb)).Add(xB.MatMul(DebugWeightsB(la, lb)))
		var z *tensor.Dense
		if err := protocol.RunParties(pa, pb,
			func() { la.Forward(DenseFeatures{xA}); la.Backward() },
			func() { z = lb.Forward(DenseFeatures{xB}); lb.Backward(g) },
		); err != nil {
			t.Fatal(err)
		}
		if !z.Equal(want, 1e-4) {
			t.Fatalf("step %d streamed over TCP: Z mismatch (maxdiff %g)", step, z.Sub(want).MaxAbs())
		}
	}
	if pa.Stream.ChunksSent == 0 || pa.Stream.ChunksRecv == 0 {
		t.Fatalf("no streamed chunks recorded: %+v", pa.Stream)
	}
	if _, bytes := pa.Conn.Stats(); bytes == 0 {
		t.Fatal("no bytes recorded on the TCP transport")
	}
}
