package core

import (
	"blindfl/internal/tensor"
)

// Federated (SS-based) top model support for the MatMul source layer
// (paper Appendix B, Fig. 13). When the top model is itself secret-shared,
// Party B must not see Z or ∇Z either: the source layer outputs the share
// pair ⟨Z'_A, Z'_B⟩ directly (the forward halves already are additive
// shares of Z) and consumes a share pair ⟨ε, ∇Z−ε⟩ on the way back. The
// derivative shares are converted to ⟦∇Z⟧ under each key via SS2HE
// (Algorithm 2), after which both parties' weight pieces update through
// masked HE2SS exactly as in the non-federated-top protocol — except that
// now ∇W_B is also computed homomorphically, since B no longer holds ∇Z in
// plaintext.

// ForwardSS runs Party A's forward pass for a federated top model and
// returns A's share Z'_A instead of shipping it to B (Fig. 13 line 1).
func (l *MatMulA) ForwardSS(x Numeric) *tensor.Dense {
	l.x = x
	return forwardHalf(l.peer, l.cfg.Stream, x, l.UA, l.encVA)
}

// ForwardSS runs Party B's forward pass and returns B's share Z'_B.
func (l *MatMulB) ForwardSS(x Numeric) *tensor.Dense {
	l.x = x
	return forwardHalf(l.peer, l.cfg.Stream, x, l.UB, l.encVB)
}

// BackwardSS runs Party A's backward pass given A's derivative share ε
// (Fig. 13 lines 2–8). Both of A's held pieces (U_A and V_B) update.
func (l *MatMulA) BackwardSS(eps *tensor.Dense) {
	p, stream := l.peer, l.cfg.Stream
	encGradZ := ss2he(p, stream, eps, 1) // ⟦∇Z⟧ under B's key
	phiA := he2ssSend(p, stream, l.x.TransposeMulCipher(encGradZ))
	l.momUA.step(l.UA, phiA, l.cfg.LR)

	gradVBshare := he2ssRecv(p, stream) // ∇W_B − φ_B
	l.momVB.step(l.VB, gradVBshare, l.cfg.LR)

	encryptAndSend(p, stream, l.VB, 1) // refresh ⟦V_B⟧ at B (V_B now changes too)
	l.encVA = recvCipher(p, stream)
	l.x = nil
}

// BackwardSS runs Party B's backward pass given B's derivative share
// ∇Z − ε. Unlike the plaintext-top backward, ∇W_B is computed under A's
// key, so B also only ever holds a masked share of its own gradient.
func (l *MatMulB) BackwardSS(gradShare *tensor.Dense) {
	p, stream := l.peer, l.cfg.Stream
	encGradZ := ss2he(p, stream, gradShare, 1) // ⟦∇Z⟧ under A's key

	gradVAshare := he2ssRecv(p, stream) // ∇W_A − φ_A
	l.momVA.step(l.VA, gradVAshare, l.cfg.LR)

	phiB := he2ssSend(p, stream, l.x.TransposeMulCipher(encGradZ))
	l.momUB.step(l.UB, phiB, l.cfg.LR)

	l.encVB = recvCipher(p, stream)
	encryptAndSend(p, stream, l.VA, 1)
	l.x = nil
}
