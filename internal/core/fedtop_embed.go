package core

import (
	"blindfl/internal/hetensor"
	"blindfl/internal/tensor"
)

// Federated (SS-based) top model support for the Embed-MatMul source layer
// (paper Appendix B, Fig. 14). As with the MatMul variant, the forward
// output stays a share pair and the backward input is a share pair
// ⟨ε, ∇Z−ε⟩; the difference is that every gradient — including B's own
// ∇W_B and both table gradients — must now be assembled from homomorphic
// pieces, since neither party holds ∇Z in plaintext.

// ForwardSS runs Party A's forward pass for a federated top model and
// returns A's share Z'_A (Fig. 14 line 1).
func (l *EmbedMatMulA) ForwardSS(x *tensor.IntMatrix) *tensor.Dense {
	l.x = x
	psiA, ebmPsi := embedStage(l.peer, l.cfg.Stream, l.encTA, l.SA, x)
	l.psiA, l.ebmPsi = psiA, ebmPsi
	z1 := forwardHalf(l.peer, l.cfg.Stream, DenseFeatures{psiA}, l.UA, l.encVA)
	z2 := forwardHalf(l.peer, l.cfg.Stream, DenseFeatures{ebmPsi}, l.VB, l.encUB)
	z1.AddInPlace(z2)
	return z1
}

// ForwardSS runs Party B's forward pass and returns B's share Z'_B.
func (l *EmbedMatMulB) ForwardSS(x *tensor.IntMatrix) *tensor.Dense {
	l.x = x
	psiB, eamPsi := embedStage(l.peer, l.cfg.Stream, l.encTB, l.SB, x)
	l.psiB, l.eamPsi = psiB, eamPsi
	z1 := forwardHalf(l.peer, l.cfg.Stream, DenseFeatures{psiB}, l.UB, l.encVB)
	z2 := forwardHalf(l.peer, l.cfg.Stream, DenseFeatures{eamPsi}, l.VA, l.encUA)
	z1.AddInPlace(z2)
	return z1
}

// BackwardSS runs Party A's backward pass given A's derivative share ε
// (Fig. 14 lines 2–10).
func (l *EmbedMatMulA) BackwardSS(eps *tensor.Dense) {
	p, stream := l.peer, l.cfg.Stream
	encGradZ := ss2he(p, stream, eps, 1) // ⟦∇Z⟧ under B's key

	// --- Embed-part derivative pieces must use forward-pass weights ---
	// ⟦∇E_A⟧_B = ⟦∇Z⟧_B·U_Aᵀ + ⟦(∇Z−ε)·V_Aᵀ⟧_B + ε·⟦V_Aᵀ⟧_B.
	encGradEA := hetensor.MulPlainRightTranspose(encGradZ, l.UA).
		AddCipher(recvCipher(p, stream)). // ⟦(∇Z−ε)·V_Aᵀ⟧ from B
		AddCipher(hetensor.MulPlainLeftTransposeRight(eps, l.encVA))
	// A's contribution to ∇E_B: ε·V_Bᵀ encrypted under A's own key.
	encryptAndSend(p, stream, eps.MatMulTranspose(l.VB), 2)

	// --- MatMul part (shares of ∇W_A and ∇W_B) ---
	// A's pieces: ⟦ψ_Aᵀ∇Z⟧_B and ⟦(E_B−ψ_B)ᵀ∇Z⟧_B via HE2SS.
	phiA := he2ssSend(p, stream, hetensor.TransposeMulLeft(l.psiA, encGradZ))
	xiA := he2ssSend(p, stream, hetensor.TransposeMulLeft(l.ebmPsi, encGradZ))
	// B's pieces arrive masked: (E_A−ψ_A)ᵀ∇Z − ξ and ψ_Bᵀ∇Z − φ_B.
	gradWAother := he2ssRecv(p, stream)
	gradWBother := he2ssRecv(p, stream)

	// ∇W_A share at A: φ_A + ((E_A−ψ_A)ᵀ∇Z − ξ) → updates U_A.
	l.momUA.step(l.UA, phiA.Add(gradWAother), l.cfg.LR)
	// ∇W_B share at A: ξ_A(our mask of (E_B−ψ_B)ᵀ∇Z) + (ψ_Bᵀ∇Z − φ_B) → V_B.
	l.momVB.step(l.VB, xiA.Add(gradWBother), l.cfg.LR)

	// Refresh encrypted weight copies (all four pieces changed).
	encryptAndSend(p, stream, l.UA, 1)
	encryptAndSend(p, stream, l.VB, 1)
	l.encVA = recvCipher(p, stream)
	l.encUB = recvCipher(p, stream)

	// --- Embed part: table updates (Fig. 7 lines 22–26 unchanged) ---
	encGradQA := hetensor.LookupBackward(encGradEA, l.x, l.cfg.VocabA, l.cfg.Dim)
	rhoA := he2ssSend(p, stream, encGradQA)
	l.momSA.step(l.SA, rhoA, l.cfg.LR)

	gradTBshare := he2ssRecv(p, stream) // ∇Q_B − ρ_B
	l.momTB.step(l.TB, gradTBshare, l.cfg.LR)

	encryptAndSend(p, stream, l.TB, 1)
	l.encTA = recvCipher(p, stream)

	l.x, l.psiA, l.ebmPsi = nil, nil, nil
}

// BackwardSS runs Party B's backward pass given B's derivative share ∇Z−ε.
func (l *EmbedMatMulB) BackwardSS(gradShare *tensor.Dense) {
	p, stream := l.peer, l.cfg.Stream
	encGradZ := ss2he(p, stream, gradShare, 1) // ⟦∇Z⟧ under A's key

	// B's contribution to ∇E_A: (∇Z−ε)·V_Aᵀ encrypted under B's own key.
	encryptAndSend(p, stream, gradShare.MatMulTranspose(l.VA), 2)
	// ⟦∇E_B⟧_A = ⟦∇Z⟧_A·U_Bᵀ + ⟦ε·V_Bᵀ⟧_A + (∇Z−ε)·⟦V_Bᵀ⟧_A.
	encGradEB := hetensor.MulPlainRightTranspose(encGradZ, l.UB).
		AddCipher(recvCipher(p, stream)). // ⟦ε·V_Bᵀ⟧ from A
		AddCipher(hetensor.MulPlainLeftTransposeRight(gradShare, l.encVB))

	// --- MatMul part ---
	// B's masked pieces of A's homomorphic terms.
	gradWAother := he2ssRecv(p, stream) // ψ_Aᵀ∇Z − φ_A
	gradWBother := he2ssRecv(p, stream) // (E_B−ψ_B)ᵀ∇Z − ξ_A
	// B's own homomorphic terms.
	xiB := he2ssSend(p, stream, hetensor.TransposeMulLeft(l.eamPsi, encGradZ)) // (E_A−ψ_A)ᵀ∇Z
	phiB := he2ssSend(p, stream, hetensor.TransposeMulLeft(l.psiB, encGradZ))  // ψ_Bᵀ∇Z

	// ∇W_A share at B: (ψ_Aᵀ∇Z − φ_A) + ξ_B → updates V_A.
	l.momVA.step(l.VA, gradWAother.Add(xiB), l.cfg.LR)
	// ∇W_B share at B: φ_B + ((E_B−ψ_B)ᵀ∇Z − ξ_A) → updates U_B.
	l.momUB.step(l.UB, phiB.Add(gradWBother), l.cfg.LR)

	// Refresh encrypted weight copies.
	l.encUA = recvCipher(p, stream)
	l.encVB = recvCipher(p, stream)
	encryptAndSend(p, stream, l.VA, 1)
	encryptAndSend(p, stream, l.UB, 1)

	// --- Embed part ---
	gradTAshare := he2ssRecv(p, stream) // ∇Q_A − ρ_A
	l.momTA.step(l.TA, gradTAshare, l.cfg.LR)

	encGradQB := hetensor.LookupBackward(encGradEB, l.x, l.cfg.VocabB, l.cfg.Dim)
	rhoB := he2ssSend(p, stream, encGradQB)
	l.momSB.step(l.SB, rhoB, l.cfg.LR)

	l.encTB = recvCipher(p, stream)
	encryptAndSend(p, stream, l.TA, 1)

	l.x, l.psiB, l.eamPsi = nil, nil, nil
}
