package core

import (
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// Multi-party MatMul source layer (paper Appendix C, Algorithm 3): one
// Party B and M Party A's. Party B's weights are broken into M+1 pieces
// W_B = U_B + Σᵢ V_B(i) with V_B(i) managed by the i-th Party A, and each
// A(i)'s weights are shared with B exactly as in the two-party layer.
// The forward pass runs the two-party sub-protocol against every A(i) with
// U_B/M as B's local piece, so the partial results sum to
// Σᵢ X_A(i)·W_A(i) + X_B·W_B.
//
// Each Party A runs the ordinary two-party MatMulA against its own
// connection to B — Algorithm 3 requires no changes on the A side.

// MultiMatMulB is Party B's half of the multi-party layer, holding one
// protocol session per Party A.
type MultiMatMulB struct {
	cfg   Config
	peers []*protocol.Peer
	subs  []*MatMulB // one two-party B-half per A(i), each with U_B/M

	x Numeric
}

// NewMultiMatMulB initializes Party B against M = len(peers) Party A's.
// inAs[i] is A(i)'s feature dimensionality. Must run concurrently with
// NewMatMulA on every peer.
func NewMultiMatMulB(peers []*protocol.Peer, cfg Config, inAs []int, inB int) *MultiMatMulB {
	m := &MultiMatMulB{cfg: cfg, peers: peers}
	for i, p := range peers {
		// Each sub-layer draws an independent U_B(i); B's effective local
		// piece is their sum, matching the U_B/M spreading of Algorithm 3
		// (any decomposition of U_B across the M sub-protocols works, and
		// independent draws avoid correlated shares).
		sub := NewMatMulB(p, Config{
			Out: cfg.Out, LR: cfg.LR, Momentum: cfg.Momentum,
			InitScale: cfg.initScale() / float64(len(peers)),
			Packed:    cfg.Packed, Stream: cfg.Stream,
		}, inAs[i], inB)
		m.subs = append(m.subs, sub)
	}
	return m
}

// Forward aggregates the sub-protocol outputs into
// Z = Σᵢ X_A(i)·W_A(i) + X_B·W_B.
func (m *MultiMatMulB) Forward(x Numeric) *tensor.Dense {
	m.x = x
	var z *tensor.Dense
	for _, sub := range m.subs {
		zi := sub.Forward(x)
		if z == nil {
			z = zi
		} else {
			z.AddInPlace(zi)
		}
	}
	return z
}

// Backward distributes ∇Z to every sub-protocol. Each sub-layer updates its
// U_B(i) with the full ∇W_B = X_Bᵀ∇Z; scaling the gradient by 1/M keeps the
// effective update of W_B = Σᵢ(U_B(i) + V_B(i)) equal to one SGD step.
func (m *MultiMatMulB) Backward(gradZ *tensor.Dense) {
	scaled := gradZ.Scale(1 / float64(len(m.subs)))
	for _, sub := range m.subs {
		// The A(i)-side gradient must be unscaled; restore it inside the
		// sub-protocol by sending the true ∇Z and scaling only U_B's
		// update. We achieve both by letting the sub-layer see the true
		// gradient for the cross-party part and the scaled one locally.
		sub.backwardMulti(gradZ, scaled)
	}
	m.x = nil
}

// backwardMulti is Backward with separate gradients for the local U_B
// update (scaled by 1/M) and the cross-party V_A/encrypted-∇Z path (full).
// It mirrors the two-party Backward's Packed/Stream dispatch so the A side
// (an ordinary MatMulA honouring the same Config) stays in protocol.
func (l *MatMulB) backwardMulti(gradFull, gradLocal *tensor.Dense) {
	gradWB := l.x.TransposeMatMul(gradLocal)
	l.momUB.step(l.UB, gradWB, l.cfg.LR)

	stream := l.cfg.Stream
	if l.cfg.Packed {
		encryptAndSendPacked(l.peer, stream, gradFull, 1)
		gradVAshare := he2ssRecvPacked(l.peer, stream)
		l.momVA.step(l.VA, gradVAshare, l.cfg.LR)
		encryptAndSendPacked(l.peer, stream, l.VA, 1)
		l.x = nil
		return
	}
	encryptAndSend(l.peer, stream, gradFull, 1)
	gradVAshare := he2ssRecv(l.peer, stream)
	l.momVA.step(l.VA, gradVAshare, l.cfg.LR)
	encryptAndSend(l.peer, stream, l.VA, 1)
	l.x = nil
}

// DebugMultiWeightsB reconstructs W_B = Σᵢ (U_B(i) + V_B(i)) given every
// A(i)'s held piece. Test use only.
func DebugMultiWeightsB(b *MultiMatMulB, as []*MatMulA) *tensor.Dense {
	w := tensor.NewDense(b.subs[0].UB.Rows, b.subs[0].UB.Cols)
	for i, sub := range b.subs {
		w.AddInPlace(sub.UB)
		w.AddInPlace(as[i].VB)
	}
	return w
}

// DebugMultiWeightsA reconstructs W_A(i) for the i-th Party A. Test only.
func DebugMultiWeightsA(b *MultiMatMulB, a *MatMulA, i int) *tensor.Dense {
	return a.UA.Add(b.subs[i].VA)
}
