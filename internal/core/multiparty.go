package core

import (
	"fmt"

	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// Multi-party MatMul source layers (paper Appendix C, Algorithm 3): one
// Party B and k Party A's. Party B's weights decompose across the sessions,
// W_B = Σᵢ (U_B(i) + V_B(i)) with V_B(i) managed by the i-th Party A, and
// each A(i)'s weights are shared with B exactly as in the two-party layer.
// The forward pass runs the two-party sub-protocol against every A(i) and
// sums the partial activations, so
//
//	Z = Σᵢ X_A(i)·W_A(i) + X_B·W_B.
//
// Each Party A runs the ordinary two-party A-half against its own session —
// Algorithm 3 requires no changes on the A side beyond agreeing on
// Config.GroupParties (which scales its V_B(i) draw by 1/√k). Party B drives
// all k sessions concurrently through protocol.Group.ForEach; aggregation
// (the activation sum, the 1/k gradient fan-in to the U_B pieces) is
// deterministic in session order regardless of scheduling.

// MultiMatMulB is Party B's half of the multi-party dense MatMul layer:
// one two-party B-half per session, driven concurrently.
type MultiMatMulB struct {
	g    *protocol.Group
	subs []*MatMulB // session i's B-half, holding U_B(i) and V_A(i)
}

// NewMultiMatMulB initializes Party B against the group's k = g.K()
// sessions. inAs[i] is A(i)'s feature dimensionality. Must run concurrently
// with NewMatMulA (built with the same cfg and GroupParties = k) on every
// session's feature party.
func NewMultiMatMulB(g *protocol.Group, cfg Config, inAs []int, inB int) *MultiMatMulB {
	return NewMultiMatMulBShard(g, cfg, inAs, inB, g.K())
}

// NewMultiMatMulBShard is NewMultiMatMulB for a shard worker that drives only
// a slice of the global group: the group holds this worker's sessions, while
// parties is the *global* session count the whole run was configured with —
// it sets Config.GroupParties, which scales the U_B piece draws by 1/√k, so
// every worker's pieces match what the single-process run would have drawn.
// The unsharded constructor is the parties = g.K() special case.
func NewMultiMatMulBShard(g *protocol.Group, cfg Config, inAs []int, inB, parties int) *MultiMatMulB {
	if len(inAs) != g.K() {
		panic(fmt.Sprintf("core: NewMultiMatMulB got %d feature widths for %d sessions", len(inAs), g.K()))
	}
	cfg.GroupParties = parties
	m := &MultiMatMulB{g: g, subs: make([]*MatMulB, g.K())}
	g.ForEach(func(i int, p *protocol.Peer) {
		m.subs[i] = NewMatMulB(p, cfg, inAs[i], inB)
	})
	return m
}

// Forward runs the k sub-protocol forwards concurrently and aggregates
// Z = Σᵢ X_A(i)·W_A(i) + X_B·W_B, summing in session order. Sessions the
// group has marked lost (ContinueOnLoss) are skipped: their partial
// activations drop out of the sum, exactly the aggregation a deployment
// that lost a feature party can still compute.
func (m *MultiMatMulB) Forward(x Numeric) *tensor.Dense {
	return sumInOrder(m.ForwardParts(x))
}

// ForwardParts runs the k sub-forwards concurrently and returns the
// *unsummed* per-session partials, in session order — the shard worker's
// forward: float addition is not associative, so shards ship per-session
// matrices and the root folds all of them in global session order, exactly
// reproducing the single-process sumInOrder. Lost sessions leave nils.
func (m *MultiMatMulB) ForwardParts(x Numeric) []*tensor.Dense {
	zs := make([]*tensor.Dense, len(m.subs))
	m.g.ForEach(func(i int, _ *protocol.Peer) { zs[i] = m.subs[i].Forward(x) })
	return zs
}

// Backward fans ∇Z out to every session concurrently. Each session's A gets
// the true ⟦∇Z⟧ (its W_A(i) block owns its columns alone), while each local
// U_B(i) updates with ∇Z/k so the k updates of W_B = Σᵢ(U_B(i)+V_B(i)) sum
// to exactly one SGD step — the linearity that makes the k-party layer
// lossless against the two-party one.
func (m *MultiMatMulB) Backward(gradZ *tensor.Dense) {
	m.BackwardTotal(gradZ, liveCount(m.g))
}

// BackwardTotal is Backward with the 1/k divisor made explicit: a shard
// worker passes the *global* live session count, so its local U_B pieces
// scale by the same 1/k every other shard uses and the k updates still sum
// to one SGD step. The unsharded Backward is the total = liveCount case.
func (m *MultiMatMulB) BackwardTotal(gradZ *tensor.Dense, total int) {
	scaled := gradZ.Scale(1 / float64(total))
	m.g.ForEach(func(i int, _ *protocol.Peer) { m.subs[i].backwardMulti(gradZ, scaled) })
}

// MultiSparseMatMulB is Party B's half of the multi-party sparse MatMul
// layer: the Table-5 sparse protocol (on-demand cipher rows, touched
// coordinates only) run per session with the same aggregation as the dense
// multi layer.
type MultiSparseMatMulB struct {
	g    *protocol.Group
	subs []*SparseMatMulB
}

// NewMultiSparseMatMulB initializes Party B's sparse halves against the
// group's sessions. Must run concurrently with NewSparseMatMulA (same cfg,
// GroupParties = k) on every feature party.
func NewMultiSparseMatMulB(g *protocol.Group, cfg Config, inAs []int, inB int) *MultiSparseMatMulB {
	return NewMultiSparseMatMulBShard(g, cfg, inAs, inB, g.K())
}

// NewMultiSparseMatMulBShard is the sparse analog of NewMultiMatMulBShard:
// the group holds a shard's session slice, parties the global count that
// sets Config.GroupParties.
func NewMultiSparseMatMulBShard(g *protocol.Group, cfg Config, inAs []int, inB, parties int) *MultiSparseMatMulB {
	if len(inAs) != g.K() {
		panic(fmt.Sprintf("core: NewMultiSparseMatMulB got %d feature widths for %d sessions", len(inAs), g.K()))
	}
	cfg.GroupParties = parties
	m := &MultiSparseMatMulB{g: g, subs: make([]*SparseMatMulB, g.K())}
	g.ForEach(func(i int, p *protocol.Peer) {
		m.subs[i] = NewSparseMatMulB(p, cfg, inAs[i], inB)
	})
	return m
}

// Forward runs the k sparse sub-forwards concurrently and sums the partial
// activations in session order.
func (m *MultiSparseMatMulB) Forward(x *tensor.CSR) *tensor.Dense {
	return sumInOrder(m.ForwardParts(x))
}

// ForwardParts is the sparse analog of MultiMatMulB.ForwardParts: unsummed
// per-session partials in session order, for the shard worker's merge path.
func (m *MultiSparseMatMulB) ForwardParts(x *tensor.CSR) []*tensor.Dense {
	zs := make([]*tensor.Dense, len(m.subs))
	m.g.ForEach(func(i int, _ *protocol.Peer) { zs[i] = m.subs[i].Forward(x) })
	return zs
}

// Backward fans ∇Z out to every session concurrently, with the same 1/k
// local scaling as the dense multi layer.
func (m *MultiSparseMatMulB) Backward(gradZ *tensor.Dense) {
	m.BackwardTotal(gradZ, liveCount(m.g))
}

// BackwardTotal is the sparse analog of MultiMatMulB.BackwardTotal.
func (m *MultiSparseMatMulB) BackwardTotal(gradZ *tensor.Dense, total int) {
	scaled := gradZ.Scale(1 / float64(total))
	m.g.ForEach(func(i int, _ *protocol.Peer) { m.subs[i].backwardMulti(gradZ, scaled) })
}

// Sub returns session i's two-party B-half. Checkpointing and the serve
// runtime walk the per-session halves through it.
func (m *MultiMatMulB) Sub(i int) *MatMulB { return m.subs[i] }

// K returns the number of sessions (feature parties).
func (m *MultiMatMulB) K() int { return len(m.subs) }

// NewMultiMatMulBFrom assembles a multi-party B half from per-session halves
// restored by LoadMatMulB — the checkpoint-restore constructor. subs[i] must
// be attached to the group's session-i peer.
func NewMultiMatMulBFrom(g *protocol.Group, subs []*MatMulB) *MultiMatMulB {
	if len(subs) != g.K() {
		panic(fmt.Sprintf("core: NewMultiMatMulBFrom got %d halves for %d sessions", len(subs), g.K()))
	}
	return &MultiMatMulB{g: g, subs: subs}
}

// ResumeExchange re-runs the initialization exchange of encrypted weight
// pieces on every session after a checkpoint restore. Must run concurrently
// with ResumeExchange on every A(i).
func (m *MultiMatMulB) ResumeExchange() {
	m.g.ForEach(func(i int, _ *protocol.Peer) { m.subs[i].ResumeExchange() })
}

// sumInOrder folds partial activations in session order, so the float
// summation is deterministic no matter how ForEach scheduled the sessions.
// Nil partials (sessions the group skipped as lost) drop out of the sum;
// ForEach guarantees at least one live session.
func sumInOrder(zs []*tensor.Dense) *tensor.Dense {
	var z *tensor.Dense
	for _, zi := range zs {
		if zi == nil {
			continue
		}
		if z == nil {
			z = zi
		} else {
			z.AddInPlace(zi)
		}
	}
	return z
}

// liveCount returns the number of sessions still participating: gradient
// fan-out scales by it so the surviving U_B pieces still sum to exactly one
// SGD step after a session loss.
func liveCount(g *protocol.Group) int {
	return g.K() - g.LostCount()
}

// DebugMultiWeightsB reconstructs W_B = Σᵢ (U_B(i) + V_B(i)) given every
// A(i)'s held piece. Test use only.
func DebugMultiWeightsB(b *MultiMatMulB, as []*MatMulA) *tensor.Dense {
	w := tensor.NewDense(b.subs[0].UB.Rows, b.subs[0].UB.Cols)
	for i, sub := range b.subs {
		w.AddInPlace(sub.UB)
		w.AddInPlace(as[i].VB)
	}
	return w
}

// DebugMultiWeightsA reconstructs W_A(i) for the i-th Party A. Test only.
func DebugMultiWeightsA(b *MultiMatMulB, a *MatMulA, i int) *tensor.Dense {
	return a.UA.Add(b.subs[i].VA)
}

// DebugMultiSparseWeightsB is DebugMultiWeightsB for the sparse layer.
func DebugMultiSparseWeightsB(b *MultiSparseMatMulB, as []*SparseMatMulA) *tensor.Dense {
	w := tensor.NewDense(b.subs[0].UB.Rows, b.subs[0].UB.Cols)
	for i, sub := range b.subs {
		w.AddInPlace(sub.UB)
		w.AddInPlace(as[i].VB)
	}
	return w
}

// DebugMultiSparseWeightsA reconstructs W_A(i) for the sparse layer.
func DebugMultiSparseWeightsA(b *MultiSparseMatMulB, a *SparseMatMulA, i int) *tensor.Dense {
	return a.UA.Add(b.subs[i].VA)
}
