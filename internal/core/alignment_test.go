package core

import (
	"math/rand"
	"testing"

	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

func TestMaskDerivativeRows(t *testing.T) {
	g := tensor.FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	masked := MaskDerivativeRows(g, []bool{true, false, true})
	want := tensor.FromSlice(3, 2, []float64{1, 2, 0, 0, 5, 6})
	if !masked.Equal(want, 0) {
		t.Fatalf("masked = %v", masked.Data)
	}
	// Original untouched; nil membership is identity.
	if g.At(1, 0) != 3 {
		t.Fatal("input mutated")
	}
	if MaskDerivativeRows(g, nil) != g {
		t.Fatal("nil membership should return the input")
	}
}

func TestMaskDerivativeRowsPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaskDerivativeRows(tensor.NewDense(2, 1), []bool{true})
}

// TestAsymmetricAlignmentTrainsOnIntersectionOnly verifies the Sec. 8
// extension end to end: a batch padded with filler instances whose
// derivatives B zeroes must produce exactly the update of the
// intersection-only batch.
func TestAsymmetricAlignmentTrainsOnIntersectionOnly(t *testing.T) {
	pa, pb := pipe(t, 430)
	cfg := Config{Out: 1, LR: 0.1}
	la, lb := newMatMulPair(t, pa, pb, cfg, 3, 3)

	rng := rand.New(rand.NewSource(1))
	// 4 instances; rows 1 and 3 are fillers outside the intersection.
	xA := tensor.RandDense(rng, 4, 3, 1)
	xB := tensor.RandDense(rng, 4, 3, 1)
	gradZ := tensor.RandDense(rng, 4, 1, 1)
	member := []bool{true, false, true, false}

	// Reference: one SGD step on the intersection rows only.
	keep := []int{0, 2}
	wantWA := DebugWeightsA(la, lb).Sub(xA.GatherRows(keep).TransposeMatMul(gradZ.GatherRows(keep)).Scale(cfg.LR))
	wantWB := DebugWeightsB(la, lb).Sub(xB.GatherRows(keep).TransposeMatMul(gradZ.GatherRows(keep)).Scale(cfg.LR))

	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(DenseFeatures{xA}); la.Backward() },
		func() {
			lb.Forward(DenseFeatures{xB})
			lb.Backward(MaskDerivativeRows(gradZ, member))
		},
	); err != nil {
		t.Fatal(err)
	}
	if got := DebugWeightsA(la, lb); !got.Equal(wantWA, 1e-4) {
		t.Fatalf("asymmetric W_A update wrong (maxdiff %g)", got.Sub(wantWA).MaxAbs())
	}
	if got := DebugWeightsB(la, lb); !got.Equal(wantWB, 1e-4) {
		t.Fatalf("asymmetric W_B update wrong (maxdiff %g)", got.Sub(wantWB).MaxAbs())
	}
}
