package core

import (
	"math/rand"
	"testing"

	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

func newEmbedPair(t testing.TB, pa, pb *protocol.Peer, cfg EmbedConfig) (*EmbedMatMulA, *EmbedMatMulB) {
	t.Helper()
	var la *EmbedMatMulA
	var lb *EmbedMatMulB
	if err := protocol.RunParties(pa, pb,
		func() { la = NewEmbedMatMulA(pa, cfg) },
		func() { lb = NewEmbedMatMulB(pb, cfg) },
	); err != nil {
		t.Fatal(err)
	}
	return la, lb
}

func randIdx(rng *rand.Rand, rows, cols, vocab int) *tensor.IntMatrix {
	x := tensor.NewIntMatrix(rows, cols)
	for i := range x.Data {
		x.Data[i] = rng.Intn(vocab)
	}
	return x
}

func embedTestCfg() EmbedConfig {
	return EmbedConfig{
		Config: Config{Out: 2, LR: 0.1},
		VocabA: 6, VocabB: 5,
		FieldsA: 2, FieldsB: 3,
		Dim: 2,
	}
}

// plaintextZ computes E_A·W_A + E_B·W_B from the reconstructed model.
func plaintextZ(la *EmbedMatMulA, lb *EmbedMatMulB, xA, xB *tensor.IntMatrix) *tensor.Dense {
	eA := tensor.Lookup(DebugTableA(la, lb), xA)
	eB := tensor.Lookup(DebugTableB(la, lb), xB)
	return eA.MatMul(DebugEmbedWeightsA(la, lb)).Add(eB.MatMul(DebugEmbedWeightsB(la, lb)))
}

func TestEmbedMatMulForwardMatchesPlaintext(t *testing.T) {
	pa, pb := pipe(t, 200)
	cfg := embedTestCfg()
	la, lb := newEmbedPair(t, pa, pb, cfg)

	rng := rand.New(rand.NewSource(1))
	xA := randIdx(rng, 4, cfg.FieldsA, cfg.VocabA)
	xB := randIdx(rng, 4, cfg.FieldsB, cfg.VocabB)
	want := plaintextZ(la, lb, xA, xB)

	var z *tensor.Dense
	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(xA) },
		func() { z = lb.Forward(xB) },
	); err != nil {
		t.Fatal(err)
	}
	if !z.Equal(want, 1e-5) {
		t.Fatalf("federated Z diverges:\n got %v\nwant %v", z.Data, want.Data)
	}
}

func TestEmbedMatMulBackwardMatchesSGD(t *testing.T) {
	pa, pb := pipe(t, 201)
	cfg := embedTestCfg()
	la, lb := newEmbedPair(t, pa, pb, cfg)

	rng := rand.New(rand.NewSource(2))
	xA := randIdx(rng, 4, cfg.FieldsA, cfg.VocabA)
	xB := randIdx(rng, 4, cfg.FieldsB, cfg.VocabB)
	gradZ := tensor.RandDense(rng, 4, cfg.Out, 1)

	// Plaintext reference: one SGD step on Q_A, Q_B, W_A, W_B.
	qA0, qB0 := DebugTableA(la, lb), DebugTableB(la, lb)
	wA0, wB0 := DebugEmbedWeightsA(la, lb), DebugEmbedWeightsB(la, lb)
	eA := tensor.Lookup(qA0, xA)
	eB := tensor.Lookup(qB0, xB)
	wantWA := wA0.Sub(eA.TransposeMatMul(gradZ).Scale(cfg.LR))
	wantWB := wB0.Sub(eB.TransposeMatMul(gradZ).Scale(cfg.LR))
	gradEA := gradZ.MatMulTranspose(wA0)
	gradEB := gradZ.MatMulTranspose(wB0)
	wantQA := qA0.Sub(tensor.LookupBackward(gradEA, xA, cfg.VocabA, cfg.Dim).Scale(cfg.LR))
	wantQB := qB0.Sub(tensor.LookupBackward(gradEB, xB, cfg.VocabB, cfg.Dim).Scale(cfg.LR))

	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(xA); la.Backward() },
		func() { lb.Forward(xB); lb.Backward(gradZ) },
	); err != nil {
		t.Fatal(err)
	}
	if got := DebugEmbedWeightsA(la, lb); !got.Equal(wantWA, 1e-4) {
		t.Fatalf("W_A update wrong:\n got %v\nwant %v", got.Data, wantWA.Data)
	}
	if got := DebugEmbedWeightsB(la, lb); !got.Equal(wantWB, 1e-4) {
		t.Fatalf("W_B update wrong:\n got %v\nwant %v", got.Data, wantWB.Data)
	}
	if got := DebugTableA(la, lb); !got.Equal(wantQA, 1e-4) {
		t.Fatalf("Q_A update wrong:\n got %v\nwant %v", got.Data, wantQA.Data)
	}
	if got := DebugTableB(la, lb); !got.Equal(wantQB, 1e-4) {
		t.Fatalf("Q_B update wrong:\n got %v\nwant %v", got.Data, wantQB.Data)
	}
}

func TestEmbedMatMulMultiStepConsistency(t *testing.T) {
	pa, pb := pipe(t, 202)
	cfg := embedTestCfg()
	cfg.LR = 0.05
	la, lb := newEmbedPair(t, pa, pb, cfg)

	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 3; step++ {
		xA := randIdx(rng, 3, cfg.FieldsA, cfg.VocabA)
		xB := randIdx(rng, 3, cfg.FieldsB, cfg.VocabB)
		gradZ := tensor.RandDense(rng, 3, cfg.Out, 1)
		want := plaintextZ(la, lb, xA, xB)
		var z *tensor.Dense
		if err := protocol.RunParties(pa, pb,
			func() { la.Forward(xA); la.Backward() },
			func() { z = lb.Forward(xB); lb.Backward(gradZ) },
		); err != nil {
			t.Fatal(err)
		}
		if !z.Equal(want, 1e-4) {
			t.Fatalf("step %d: forward inconsistent with reconstructed model (maxdiff %g)",
				step, z.Sub(want).MaxAbs())
		}
	}
}

func TestEmbedMatMulMomentum(t *testing.T) {
	pa, pb := pipe(t, 203)
	cfg := embedTestCfg()
	cfg.Momentum = 0.9
	la, lb := newEmbedPair(t, pa, pb, cfg)

	rng := rand.New(rand.NewSource(4))
	wA := DebugEmbedWeightsA(la, lb)
	qA := DebugTableA(la, lb)
	var bufW, bufQ *tensor.Dense

	for step := 0; step < 3; step++ {
		xA := randIdx(rng, 3, cfg.FieldsA, cfg.VocabA)
		xB := randIdx(rng, 3, cfg.FieldsB, cfg.VocabB)
		gradZ := tensor.RandDense(rng, 3, cfg.Out, 1)

		eA := tensor.Lookup(qA, xA)
		gW := eA.TransposeMatMul(gradZ)
		gQ := tensor.LookupBackward(gradZ.MatMulTranspose(wA), xA, cfg.VocabA, cfg.Dim)
		if bufW == nil {
			bufW = tensor.NewDense(gW.Rows, gW.Cols)
			bufQ = tensor.NewDense(gQ.Rows, gQ.Cols)
		}
		bufW = bufW.Scale(cfg.Momentum).Add(gW)
		bufQ = bufQ.Scale(cfg.Momentum).Add(gQ)
		wA = wA.Sub(bufW.Scale(cfg.LR))
		qA = qA.Sub(bufQ.Scale(cfg.LR))

		if err := protocol.RunParties(pa, pb,
			func() { la.Forward(xA); la.Backward() },
			func() { lb.Forward(xB); lb.Backward(gradZ) },
		); err != nil {
			t.Fatal(err)
		}
	}
	if got := DebugEmbedWeightsA(la, lb); !got.Equal(wA, 1e-3) {
		t.Fatalf("momentum W_A diverged:\n got %v\nwant %v", got.Data, wA.Data)
	}
	if got := DebugTableA(la, lb); !got.Equal(qA, 1e-3) {
		t.Fatalf("momentum Q_A diverged:\n got %v\nwant %v", got.Data, qA.Data)
	}
}

func TestEmbedTablesAreSecretShared(t *testing.T) {
	pa, pb := pipe(t, 204)
	cfg := embedTestCfg()
	la, lb := newEmbedPair(t, pa, pb, cfg)
	qA := DebugTableA(la, lb)
	if qA.Sub(la.PieceSA()).MaxAbs() == 0 {
		t.Fatal("S_A equals Q_A: table is not secret-shared")
	}
	if !la.SA.Add(lb.TA).Equal(qA, 1e-12) {
		t.Fatal("S_A + T_A != Q_A")
	}
}
