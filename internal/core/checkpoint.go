package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"blindfl/internal/hetensor"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// Checkpointing. Long-running cross-enterprise training must survive
// restarts, so each layer half serializes its complete state — weight
// pieces, momentum buffers, and the encrypted copies of the peer's pieces —
// with encoding/gob. Each party saves only its own half: a checkpoint
// never contains more information than the running process already held,
// so persistence does not weaken the privacy analysis (protect checkpoint
// files like process memory).

// matMulAState mirrors MatMulA's persistent fields for gob.
type matMulAState struct {
	Cfg    Config
	UA     *tensor.Dense
	VB     *tensor.Dense
	EncVA  *hetensor.CipherMatrix
	PackVA *hetensor.PackedMatrix
	MomUA  *tensor.Dense
	MomVB  *tensor.Dense
}

// Save writes Party A's half of the layer.
func (l *MatMulA) Save(w io.Writer) error {
	st := matMulAState{Cfg: l.cfg, UA: l.UA, VB: l.VB, EncVA: l.encVA, PackVA: l.packVA,
		MomUA: l.momUA.buf, MomVB: l.momVB.buf}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("core: save MatMulA: %w", err)
	}
	return nil
}

// LoadMatMulA restores Party A's half onto a live peer session.
func LoadMatMulA(r io.Reader, p *protocol.Peer) (*MatMulA, error) {
	var st matMulAState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: load MatMulA: %w", err)
	}
	if st.EncVA != nil {
		st.EncVA.PK = p.PeerPK
	}
	if st.PackVA != nil {
		st.PackVA.PK = p.PeerPK
	}
	return &MatMulA{
		cfg: st.Cfg, peer: p,
		UA: st.UA, VB: st.VB, encVA: st.EncVA, packVA: st.PackVA,
		momUA: momentum{mu: st.Cfg.Momentum, buf: st.MomUA},
		momVB: momentum{mu: st.Cfg.Momentum, buf: st.MomVB},
	}, nil
}

// matMulBState mirrors MatMulB's persistent fields for gob.
type matMulBState struct {
	Cfg    Config
	UB     *tensor.Dense
	VA     *tensor.Dense
	EncVB  *hetensor.CipherMatrix
	PackVB *hetensor.PackedMatrix
	MomUB  *tensor.Dense
	MomVA  *tensor.Dense
}

// Save writes Party B's half of the layer.
func (l *MatMulB) Save(w io.Writer) error {
	st := matMulBState{Cfg: l.cfg, UB: l.UB, VA: l.VA, EncVB: l.encVB, PackVB: l.packVB,
		MomUB: l.momUB.buf, MomVA: l.momVA.buf}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("core: save MatMulB: %w", err)
	}
	return nil
}

// LoadMatMulB restores Party B's half onto a live peer session.
func LoadMatMulB(r io.Reader, p *protocol.Peer) (*MatMulB, error) {
	var st matMulBState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: load MatMulB: %w", err)
	}
	if st.EncVB != nil {
		st.EncVB.PK = p.PeerPK
	}
	if st.PackVB != nil {
		st.PackVB.PK = p.PeerPK
	}
	return &MatMulB{
		cfg: st.Cfg, peer: p,
		UB: st.UB, VA: st.VA, encVB: st.EncVB, packVB: st.PackVB,
		momUB: momentum{mu: st.Cfg.Momentum, buf: st.MomUB},
		momVA: momentum{mu: st.Cfg.Momentum, buf: st.MomVA},
	}, nil
}

// embedAState mirrors EmbedMatMulA's persistent fields for gob.
type embedAState struct {
	Cfg                        EmbedConfig
	SA, TB, UA, VB             *tensor.Dense
	EncTA, EncVA, EncUB        *hetensor.CipherMatrix
	PackTA                     *hetensor.PackedMatrix
	MomSA, MomTB, MomUA, MomVB *tensor.Dense
}

// Save writes Party A's half of the Embed-MatMul layer.
func (l *EmbedMatMulA) Save(w io.Writer) error {
	st := embedAState{Cfg: l.cfg,
		SA: l.SA, TB: l.TB, UA: l.UA, VB: l.VB,
		EncTA: l.encTA, EncVA: l.encVA, EncUB: l.encUB, PackTA: l.packTA,
		MomSA: l.momSA.buf, MomTB: l.momTB.buf, MomUA: l.momUA.buf, MomVB: l.momVB.buf}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("core: save EmbedMatMulA: %w", err)
	}
	return nil
}

// LoadEmbedMatMulA restores Party A's Embed-MatMul half.
func LoadEmbedMatMulA(r io.Reader, p *protocol.Peer) (*EmbedMatMulA, error) {
	var st embedAState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: load EmbedMatMulA: %w", err)
	}
	for _, c := range []*hetensor.CipherMatrix{st.EncTA, st.EncVA, st.EncUB} {
		if c != nil {
			c.PK = p.PeerPK
		}
	}
	if st.PackTA != nil {
		st.PackTA.PK = p.PeerPK
	}
	mu := st.Cfg.Momentum
	return &EmbedMatMulA{
		cfg: st.Cfg, peer: p,
		SA: st.SA, TB: st.TB, UA: st.UA, VB: st.VB,
		encTA: st.EncTA, encVA: st.EncVA, encUB: st.EncUB, packTA: st.PackTA,
		momSA: momentum{mu: mu, buf: st.MomSA}, momTB: momentum{mu: mu, buf: st.MomTB},
		momUA: momentum{mu: mu, buf: st.MomUA}, momVB: momentum{mu: mu, buf: st.MomVB},
	}, nil
}

// embedBState mirrors EmbedMatMulB's persistent fields for gob.
type embedBState struct {
	Cfg                        EmbedConfig
	SB, TA, UB, VA             *tensor.Dense
	EncTB, EncVB, EncUA        *hetensor.CipherMatrix
	PackTB                     *hetensor.PackedMatrix
	MomSB, MomTA, MomUB, MomVA *tensor.Dense
}

// Save writes Party B's half of the Embed-MatMul layer.
func (l *EmbedMatMulB) Save(w io.Writer) error {
	st := embedBState{Cfg: l.cfg,
		SB: l.SB, TA: l.TA, UB: l.UB, VA: l.VA,
		EncTB: l.encTB, EncVB: l.encVB, EncUA: l.encUA, PackTB: l.packTB,
		MomSB: l.momSB.buf, MomTA: l.momTA.buf, MomUB: l.momUB.buf, MomVA: l.momVA.buf}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("core: save EmbedMatMulB: %w", err)
	}
	return nil
}

// LoadEmbedMatMulB restores Party B's Embed-MatMul half.
func LoadEmbedMatMulB(r io.Reader, p *protocol.Peer) (*EmbedMatMulB, error) {
	var st embedBState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: load EmbedMatMulB: %w", err)
	}
	for _, c := range []*hetensor.CipherMatrix{st.EncTB, st.EncVB, st.EncUA} {
		if c != nil {
			c.PK = p.PeerPK
		}
	}
	if st.PackTB != nil {
		st.PackTB.PK = p.PeerPK
	}
	mu := st.Cfg.Momentum
	return &EmbedMatMulB{
		cfg: st.Cfg, peer: p,
		SB: st.SB, TA: st.TA, UB: st.UB, VA: st.VA,
		encTB: st.EncTB, encVB: st.EncVB, encUA: st.EncUA, packTB: st.PackTB,
		momSB: momentum{mu: mu, buf: st.MomSB}, momTA: momentum{mu: mu, buf: st.MomTA},
		momUB: momentum{mu: mu, buf: st.MomUB}, momVA: momentum{mu: mu, buf: st.MomVA},
	}, nil
}
