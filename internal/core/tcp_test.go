package core

import (
	"math/rand"
	"net"
	"testing"

	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
	"blindfl/internal/transport"
)

// tcpPeers wires two peers through a real TCP connection.
func tcpPeers(t *testing.T, seed int64) (*protocol.Peer, *protocol.Peer) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	acc := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			acc <- nil
			return
		}
		acc <- transport.NewGobConn(c)
	}()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	connA := transport.NewGobConn(c)
	connB := <-acc
	if connB == nil {
		t.Fatal("accept failed")
	}
	l.Close()
	t.Cleanup(func() {
		connA.Close()
		connB.Close()
	})

	skA, skB := protocol.TestKeys()
	pa := protocol.NewPeer(protocol.PartyA, connA, skA, rand.New(rand.NewSource(seed)))
	pb := protocol.NewPeer(protocol.PartyB, connB, skB, rand.New(rand.NewSource(seed+1)))
	done := make(chan error, 1)
	go func() { done <- pa.Handshake() }()
	if err := pb.Handshake(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return pa, pb
}

// TestMatMulOverTCP runs the full federated MatMul protocol across a real
// TCP connection with gob serialization: ciphertext matrices, shares and
// the refresh traffic all cross the wire.
func TestMatMulOverTCP(t *testing.T) {
	pa, pb := tcpPeers(t, 700)
	cfg := Config{Out: 2, LR: 0.1}
	la, lb := newMatMulPair(t, pa, pb, cfg, 4, 4)

	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 2; step++ {
		xA := tensor.RandDense(rng, 3, 4, 1)
		xB := tensor.RandDense(rng, 3, 4, 1)
		g := tensor.RandDense(rng, 3, 2, 1)
		want := xA.MatMul(DebugWeightsA(la, lb)).Add(xB.MatMul(DebugWeightsB(la, lb)))
		var z *tensor.Dense
		if err := protocol.RunParties(pa, pb,
			func() { la.Forward(DenseFeatures{xA}); la.Backward() },
			func() { z = lb.Forward(DenseFeatures{xB}); lb.Backward(g) },
		); err != nil {
			t.Fatal(err)
		}
		if !z.Equal(want, 1e-4) {
			t.Fatalf("step %d over TCP: Z mismatch (maxdiff %g)", step, z.Sub(want).MaxAbs())
		}
	}
	msgs, bytes := pa.Conn.Stats()
	if msgs == 0 || bytes == 0 {
		t.Fatal("no traffic recorded on the TCP transport")
	}
}

// TestTCPSimultaneousLargeSendsDoNotDeadlock exercises the async writer:
// both sides push ciphertext volumes far beyond kernel socket buffers
// before either receives. A synchronous transport would deadlock here.
func TestTCPSimultaneousLargeSendsDoNotDeadlock(t *testing.T) {
	pa, pb := tcpPeers(t, 701)
	big := tensor.NewDense(600, 600) // ~2.9 MB of float64 per message
	err := protocol.RunParties(pa, pb,
		func() {
			for i := 0; i < 4; i++ {
				pa.Send(big)
			}
			for i := 0; i < 4; i++ {
				pa.RecvDense()
			}
		},
		func() {
			for i := 0; i < 4; i++ {
				pb.Send(big)
			}
			for i := 0; i < 4; i++ {
				pb.RecvDense()
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}
