package core

import (
	"blindfl/internal/hetensor"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// Stream dispatch: each helper routes one protocol transfer through either
// the monolithic or the chunk-streamed variant, so the source layers read as
// the paper's figures with a single `stream` argument instead of duplicated
// protocol bodies. Both parties must pass the same Config.Stream, exactly as
// they must agree on Config.Packed.

func encryptAndSend(p *protocol.Peer, stream bool, d *tensor.Dense, scale uint) {
	if stream {
		p.EncryptAndSendStream(d, scale)
		return
	}
	p.EncryptAndSend(d, scale)
}

func encryptAndSendPacked(p *protocol.Peer, stream bool, d *tensor.Dense, scale uint) {
	if stream {
		p.EncryptAndSendPackedStream(d, scale)
		return
	}
	p.EncryptAndSendPacked(d, scale)
}

func recvCipher(p *protocol.Peer, stream bool) *hetensor.CipherMatrix {
	if stream {
		return p.RecvCipherStream()
	}
	return p.RecvCipher()
}

func recvPacked(p *protocol.Peer, stream bool) *hetensor.PackedMatrix {
	if stream {
		return p.RecvPackedStream()
	}
	return p.RecvPacked()
}

func he2ssSend(p *protocol.Peer, stream bool, c *hetensor.CipherMatrix) *tensor.Dense {
	if stream {
		return p.HE2SSSendStream(c)
	}
	return p.HE2SSSend(c)
}

func he2ssRecv(p *protocol.Peer, stream bool) *tensor.Dense {
	if stream {
		return p.HE2SSRecvStream()
	}
	return p.HE2SSRecv()
}

func he2ssSendPacked(p *protocol.Peer, stream bool, c *hetensor.PackedMatrix) *tensor.Dense {
	if stream {
		return p.HE2SSSendPackedStream(c)
	}
	return p.HE2SSSendPacked(c)
}

func he2ssRecvPacked(p *protocol.Peer, stream bool) *tensor.Dense {
	if stream {
		return p.HE2SSRecvPackedStream()
	}
	return p.HE2SSRecvPacked()
}

func ss2he(p *protocol.Peer, stream bool, piece *tensor.Dense, scale uint) *hetensor.CipherMatrix {
	if stream {
		return p.SS2HEStream(piece, scale)
	}
	return p.SS2HE(piece, scale)
}

// recvGradAcc receives ⟦∇Z⟧ and returns the accumulated ⟦Xᵀ·∇Z⟧ at scale+1.
// On the streamed path the accumulation is pipelined: each derivative chunk
// is folded into the accumulator while the peer encrypts the next chunk —
// the receiver-side half of the compute/communication overlap.
func recvGradAcc(p *protocol.Peer, stream bool, x Numeric) *hetensor.CipherMatrix {
	if !stream {
		return x.TransposeMulCipher(p.RecvCipher())
	}
	var acc *hetensor.CipherMatrix
	p.RecvCipherStreamEach(func(lo int, chunk *hetensor.CipherMatrix) {
		if acc == nil {
			acc = hetensor.NewCipherMatrix(chunk.PK, x.NumCols(), chunk.Cols, chunk.Scale+1)
		}
		x.TransposeMulCipherAcc(acc, lo, chunk)
	})
	return acc
}

// recvGradAccPacked is recvGradAcc over packed derivative chunks.
func recvGradAccPacked(p *protocol.Peer, stream bool, x Numeric) *hetensor.PackedMatrix {
	if !stream {
		return x.TransposeMulCipherPacked(p.RecvPacked())
	}
	var acc *hetensor.PackedMatrix
	p.RecvPackedStreamEach(func(lo int, chunk *hetensor.PackedMatrix) {
		if acc == nil {
			acc = hetensor.NewPackedMatrix(chunk.PK, x.NumCols(), chunk.Cols, chunk.Block, chunk.Scale+1)
		}
		x.TransposeMulCipherPackedAcc(acc, lo, chunk)
	})
	return acc
}
