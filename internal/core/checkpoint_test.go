package core

import (
	"bytes"
	"math/rand"
	"testing"

	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

func TestMatMulCheckpointRoundTrip(t *testing.T) {
	pa, pb := pipe(t, 800)
	cfg := Config{Out: 2, LR: 0.1, Momentum: 0.9}
	la, lb := newMatMulPair(t, pa, pb, cfg, 3, 3)

	rng := rand.New(rand.NewSource(1))
	step := func(a *MatMulA, b *MatMulB) {
		xA := tensor.RandDense(rng, 4, 3, 1)
		xB := tensor.RandDense(rng, 4, 3, 1)
		g := tensor.RandDense(rng, 4, 2, 1)
		if err := protocol.RunParties(pa, pb,
			func() { a.Forward(DenseFeatures{xA}); a.Backward() },
			func() { b.Forward(DenseFeatures{xB}); b.Backward(g) },
		); err != nil {
			t.Fatal(err)
		}
	}
	step(la, lb) // momentum buffers now non-nil

	var bufA, bufB bytes.Buffer
	if err := la.Save(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := lb.Save(&bufB); err != nil {
		t.Fatal(err)
	}
	la2, err := LoadMatMulA(&bufA, pa)
	if err != nil {
		t.Fatal(err)
	}
	lb2, err := LoadMatMulB(&bufB, pb)
	if err != nil {
		t.Fatal(err)
	}

	// Restored halves reconstruct the same weights...
	if !DebugWeightsA(la2, lb2).Equal(DebugWeightsA(la, lb), 0) {
		t.Fatal("restored W_A differs")
	}
	if !DebugWeightsB(la2, lb2).Equal(DebugWeightsB(la, lb), 0) {
		t.Fatal("restored W_B differs")
	}
	// ...and continue training identically: run the same batch through the
	// original and restored pairs (reset rng so the draws coincide).
	rng = rand.New(rand.NewSource(2))
	step(la, lb)
	rng = rand.New(rand.NewSource(2))
	step(la2, lb2)
	if !DebugWeightsA(la2, lb2).Equal(DebugWeightsA(la, lb), 1e-6) {
		t.Fatal("training diverged after checkpoint restore")
	}
}

func TestEmbedCheckpointRoundTrip(t *testing.T) {
	pa, pb := pipe(t, 801)
	cfg := embedTestCfg()
	cfg.Momentum = 0.9
	la, lb := newEmbedPair(t, pa, pb, cfg)

	rng := rand.New(rand.NewSource(3))
	xA := randIdx(rng, 3, cfg.FieldsA, cfg.VocabA)
	xB := randIdx(rng, 3, cfg.FieldsB, cfg.VocabB)
	g := tensor.RandDense(rng, 3, cfg.Out, 1)
	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(xA); la.Backward() },
		func() { lb.Forward(xB); lb.Backward(g) },
	); err != nil {
		t.Fatal(err)
	}

	var bufA, bufB bytes.Buffer
	if err := la.Save(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := lb.Save(&bufB); err != nil {
		t.Fatal(err)
	}
	la2, err := LoadEmbedMatMulA(&bufA, pa)
	if err != nil {
		t.Fatal(err)
	}
	lb2, err := LoadEmbedMatMulB(&bufB, pb)
	if err != nil {
		t.Fatal(err)
	}
	if !DebugTableA(la2, lb2).Equal(DebugTableA(la, lb), 0) {
		t.Fatal("restored Q_A differs")
	}
	if !DebugEmbedWeightsB(la2, lb2).Equal(DebugEmbedWeightsB(la, lb), 0) {
		t.Fatal("restored W_B differs")
	}

	// The restored pair must still run the protocol (encrypted copies and
	// momentum intact): one more step, checked for forward consistency.
	want := plaintextZ(la2, lb2, xA, xB)
	var z *tensor.Dense
	if err := protocol.RunParties(pa, pb,
		func() { la2.Forward(xA); la2.Backward() },
		func() { z = lb2.Forward(xB); lb2.Backward(g) },
	); err != nil {
		t.Fatal(err)
	}
	if !z.Equal(want, 1e-4) {
		t.Fatal("restored embed layer forward inconsistent")
	}
}

func TestLoadMatMulARejectsGarbage(t *testing.T) {
	pa, _ := pipe(t, 802)
	if _, err := LoadMatMulA(bytes.NewReader([]byte("not a checkpoint")), pa); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
}
