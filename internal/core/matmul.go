package core

import (
	"blindfl/internal/hetensor"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// The MatMul federated source layer (paper Fig. 6) computes
//
//	Z = X_A·W_A + X_B·W_B
//
// with W⋄ = U⋄ + V⋄ secret-shared between the parties: U⋄ lives at party ⋄
// and V⋄ at the other party, which also ships an encrypted copy ⟦V⋄⟧ under
// its own key to party ⋄ at initialization. Forward and backward follow the
// figure line by line; every cross-party message is a ciphertext or an
// additively masked share.

// MatMulA is Party A's half of the MatMul source layer.
type MatMulA struct {
	cfg  Config
	peer *protocol.Peer

	UA *tensor.Dense // A's piece of W_A (InA×Out)
	VB *tensor.Dense // A's piece of W_B (InB×Out)

	encVA  *hetensor.CipherMatrix // ⟦V_A⟧ under B's key, refreshed per step
	packVA *hetensor.PackedMatrix // packed ⟦V_A⟧ when cfg.Packed

	momUA momentum
	momVB momentum

	x Numeric // mini-batch cached between Forward and Backward
}

// MatMulB is Party B's half of the MatMul source layer.
type MatMulB struct {
	cfg  Config
	peer *protocol.Peer

	UB *tensor.Dense // B's piece of W_B (InB×Out)
	VA *tensor.Dense // B's piece of W_A (InA×Out)

	encVB  *hetensor.CipherMatrix // ⟦V_B⟧ under A's key, refreshed per step
	packVB *hetensor.PackedMatrix // packed ⟦V_B⟧ when cfg.Packed

	momUB momentum
	momVA momentum

	x Numeric
}

// NewMatMulA initializes Party A's half (Fig. 6 lines 1–4): A draws U_A and
// V_B, ships ⟦V_B⟧ under A's key to B, and receives ⟦V_A⟧ under B's key.
// Must run concurrently with NewMatMulB on the other side.
func NewMatMulA(p *protocol.Peer, cfg Config, inA, inB int) *MatMulA {
	cfg.applyExpEngine()
	s := cfg.initScale()
	l := &MatMulA{
		cfg: cfg, peer: p,
		UA:    tensor.RandDense(p.Rng, inA, cfg.Out, s),
		VB:    tensor.RandDense(p.Rng, inB, cfg.Out, s/cfg.groupPieceDiv()),
		momUA: momentum{mu: cfg.Momentum},
		momVB: momentum{mu: cfg.Momentum},
	}
	if cfg.Packed {
		encryptAndSendPacked(p, cfg.Stream, l.VB, 1)
		l.packVA = recvPacked(p, cfg.Stream)
	} else {
		encryptAndSend(p, cfg.Stream, l.VB, 1)
		l.encVA = recvCipher(p, cfg.Stream)
	}
	return l
}

// NewMatMulB initializes Party B's half, symmetric to NewMatMulA.
func NewMatMulB(p *protocol.Peer, cfg Config, inA, inB int) *MatMulB {
	cfg.applyExpEngine()
	s := cfg.initScale()
	l := &MatMulB{
		cfg: cfg, peer: p,
		UB:    tensor.RandDense(p.Rng, inB, cfg.Out, s/cfg.groupPieceDiv()),
		VA:    tensor.RandDense(p.Rng, inA, cfg.Out, s),
		momUB: momentum{mu: cfg.Momentum},
		momVA: momentum{mu: cfg.Momentum},
	}
	if cfg.Packed {
		l.packVB = recvPacked(p, cfg.Stream)
		encryptAndSendPacked(p, cfg.Stream, l.VA, 1)
	} else {
		l.encVB = recvCipher(p, cfg.Stream)
		encryptAndSend(p, cfg.Stream, l.VA, 1)
	}
	return l
}

// ResumeExchange re-runs the initialization exchange of encrypted weight
// pieces from the restored plaintext V pieces after a checkpoint restore:
// A ships a fresh ⟦V_B⟧ under its own key and receives ⟦V_A⟧ under B's key,
// overwriting whatever stale ciphertexts the checkpoint carried (Paillier
// keys are per-process, so checkpointed ciphertexts cannot decrypt across a
// restart). Fresh encryption randomness does not change the decrypted
// values, so a resumed trajectory stays bit-identical. Must run concurrently
// with ResumeExchange on the other side.
func (l *MatMulA) ResumeExchange() {
	l.cfg.applyExpEngine()
	p := l.peer
	if l.cfg.Packed {
		encryptAndSendPacked(p, l.cfg.Stream, l.VB, 1)
		l.packVA = recvPacked(p, l.cfg.Stream)
		l.encVA = nil
	} else {
		encryptAndSend(p, l.cfg.Stream, l.VB, 1)
		l.encVA = recvCipher(p, l.cfg.Stream)
		l.packVA = nil
	}
}

// ResumeExchange is Party B's half of the post-restore weight re-exchange,
// mirroring NewMatMulB's recv-then-send order.
func (l *MatMulB) ResumeExchange() {
	l.cfg.applyExpEngine()
	p := l.peer
	if l.cfg.Packed {
		l.packVB = recvPacked(p, l.cfg.Stream)
		encryptAndSendPacked(p, l.cfg.Stream, l.VA, 1)
		l.encVB = nil
	} else {
		l.encVB = recvCipher(p, l.cfg.Stream)
		encryptAndSend(p, l.cfg.Stream, l.VA, 1)
		l.packVB = nil
	}
}

// forwardHalf runs lines 5–7 of Fig. 6 for one party: given the local
// features x, the local weight piece u and the encrypted peer-held piece
// ⟦v⟧, it returns this party's share Z' = x·u + ε + (peer's masked piece).
// With stream, the masked send and the peer's decryption run chunk-pipelined.
func forwardHalf(p *protocol.Peer, stream bool, x Numeric, u *tensor.Dense, encV *hetensor.CipherMatrix) *tensor.Dense {
	prod := x.MulCipher(encV)         // ⟦x·V⟧ under the peer's key, scale 2
	eps := he2ssSend(p, stream, prod) // keep ε, send ⟦x·V − ε⟧
	other := he2ssRecv(p, stream)     // peer's x̄·V̄ − ε̄, decrypted locally
	z := x.MatMul(u)                  // x·U in plaintext
	z.AddInPlace(eps)
	z.AddInPlace(other)
	return z
}

// forwardHalfPacked is forwardHalf over packed ciphertexts: the homomorphic
// product, the masked send, and the peer's decryption all touch ~K× fewer
// ciphertexts. Both parties must run the packed variant.
func forwardHalfPacked(p *protocol.Peer, stream bool, x Numeric, u *tensor.Dense, packV *hetensor.PackedMatrix) *tensor.Dense {
	prod := x.MulCipherPacked(packV)
	eps := he2ssSendPacked(p, stream, prod)
	other := he2ssRecvPacked(p, stream)
	z := x.MatMul(u)
	z.AddInPlace(eps)
	z.AddInPlace(other)
	return z
}

// Forward runs Party A's forward pass. A learns nothing: its share Z'_A is
// shipped to B and the random masks cancel in the sum (Fig. 6 lines 5–8).
func (l *MatMulA) Forward(x Numeric) {
	l.x = x
	var zA *tensor.Dense
	if l.cfg.Packed {
		zA = forwardHalfPacked(l.peer, l.cfg.Stream, x, l.UA, l.packVA)
	} else {
		zA = forwardHalf(l.peer, l.cfg.Stream, x, l.UA, l.encVA)
	}
	l.peer.Send(zA)
}

// Forward runs Party B's forward pass and returns the aggregated activation
// Z = X_A·W_A + X_B·W_B, the only forward value B is allowed to see.
func (l *MatMulB) Forward(x Numeric) *tensor.Dense {
	l.x = x
	var zB *tensor.Dense
	if l.cfg.Packed {
		zB = forwardHalfPacked(l.peer, l.cfg.Stream, x, l.UB, l.packVB)
	} else {
		zB = forwardHalf(l.peer, l.cfg.Stream, x, l.UB, l.encVB)
	}
	zA := l.peer.RecvDense()
	return zA.Add(zB)
}

// Backward runs Party A's backward pass (Fig. 6 lines 9–12): A receives
// ⟦∇Z⟧, computes its encrypted gradient ⟦∇W_A⟧ = X_Aᵀ⟦∇Z⟧, converts it to
// an SS pair ⟨φ, ∇W_A−φ⟩, updates U_A with its share φ, and receives the
// refreshed ⟦V_A⟧ for the next step. A never sees ∇Z, ∇W_A, or W_A.
func (l *MatMulA) Backward() {
	stream := l.cfg.Stream
	if l.cfg.Packed {
		// Streamed: fold each arriving ⟦∇Z⟧ chunk into the gradient
		// accumulator while B encrypts the next one.
		encGradWA := recvGradAccPacked(l.peer, stream, l.x) // packed ⟦X_Aᵀ∇Z⟧, scale 2
		phi := he2ssSendPacked(l.peer, stream, encGradWA)   // keep φ, B gets ∇W_A − φ
		l.momUA.step(l.UA, phi, l.cfg.LR)
		l.packVA = recvPacked(l.peer, stream)
		l.x = nil
		return
	}
	encGradWA := recvGradAcc(l.peer, stream, l.x) // ⟦X_Aᵀ∇Z⟧, scale 2
	phi := he2ssSend(l.peer, stream, encGradWA)   // keep φ, B gets ∇W_A − φ
	l.momUA.step(l.UA, phi, l.cfg.LR)
	l.encVA = recvCipher(l.peer, stream) // refreshed ⟦V_A⟧ after B's V_A update
	l.x = nil
}

// Backward runs Party B's backward pass: B updates U_B with the locally
// computable ∇W_B = X_Bᵀ∇Z, ships ⟦∇Z⟧ to A, receives its masked share of
// ∇W_A, updates V_A, and refreshes A's encrypted copy of V_A.
func (l *MatMulB) Backward(gradZ *tensor.Dense) { l.backwardMulti(gradZ, gradZ) }

// backwardMulti is Backward with separate gradients for the local U_B update
// (gradLocal) and the cross-party ⟦∇Z⟧/V_A path (gradFull). The two-party
// Backward passes the same gradient twice; a k-session group scales
// gradLocal by 1/k so the k independent U_B(i) updates sum to one SGD step
// of W_B = Σᵢ(U_B(i)+V_B(i)), while every session's A still sees the true
// ∇Z for its own column block (W_A is partitioned, not summed).
func (l *MatMulB) backwardMulti(gradFull, gradLocal *tensor.Dense) {
	gradWB := l.x.TransposeMatMul(gradLocal)
	l.momUB.step(l.UB, gradWB, l.cfg.LR)

	stream := l.cfg.Stream
	if l.cfg.Packed {
		encryptAndSendPacked(l.peer, stream, gradFull, 1)
		gradVAshare := he2ssRecvPacked(l.peer, stream) // ∇W_A − φ
		l.momVA.step(l.VA, gradVAshare, l.cfg.LR)
		encryptAndSendPacked(l.peer, stream, l.VA, 1) // refresh packed ⟦V_A⟧ at A
		l.x = nil
		return
	}
	encryptAndSend(l.peer, stream, gradFull, 1)
	gradVAshare := he2ssRecv(l.peer, stream) // ∇W_A − φ
	l.momVA.step(l.VA, gradVAshare, l.cfg.LR)
	encryptAndSend(l.peer, stream, l.VA, 1) // refresh ⟦V_A⟧ at A
	l.x = nil
}

// DebugWeightsA reconstructs W_A = U_A + V_A from both halves. Test and
// evaluation use only: combining the pieces violates the protocol's privacy
// requirements and must never happen in a deployment.
func DebugWeightsA(a *MatMulA, b *MatMulB) *tensor.Dense { return a.UA.Add(b.VA) }

// DebugWeightsB reconstructs W_B = U_B + V_B. Test use only.
func DebugWeightsB(a *MatMulA, b *MatMulB) *tensor.Dense { return b.UB.Add(a.VB) }

// PieceUA exposes Party A's share of W_A for the privacy experiments
// (Fig. 9 predicts labels with X_A·U_A; Fig. 11 plots U_A against W_A).
func (l *MatMulA) PieceUA() *tensor.Dense { return l.UA }
