package core

import (
	"math/rand"
	"testing"

	"blindfl/internal/hetensor"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// serveReference computes the serve activation in the same exact integer
// domain as the protocol: Zᵀ = Σ pieces of (X·(U+V))ᵀ summed in ℤ at scale 2,
// decoded once. The protocol result must match it bit for bit.
func serveReference(xA, xB *tensor.Dense, la *MatMulA, lb *MatMulB) *tensor.Dense {
	z := hetensor.IntMatMulT(xA, la.UA)
	z.AddInPlace(hetensor.IntMatMulT(xA, lb.VA))
	z.AddInPlace(hetensor.IntMatMulT(xB, lb.UB))
	z.AddInPlace(hetensor.IntMatMulT(xB, la.VB))
	return z.DecodeTranspose()
}

func TestServeForwardExact(t *testing.T) {
	skA, skB := protocol.TestKeys()
	pa, pb, err := protocol.Pipe(skA, skB, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Out: 3, LR: 0.05}
	var la *MatMulA
	var lb *MatMulB
	if err := protocol.RunParties(pa, pb,
		func() { la = NewMatMulA(pa, cfg, 5, 4) },
		func() { lb = NewMatMulB(pb, cfg, 5, 4) },
	); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	lanes := hetensor.Lanes(&skB.PublicKey)
	batch := lanes + 2 // force a ragged second lane group
	xA := tensor.RandDense(rng, batch, 5, 1)
	xB := tensor.RandDense(rng, batch, 4, 1)
	want := serveReference(xA, xB, la, lb)

	serve := func() *tensor.Dense {
		var z *tensor.Dense
		if err := protocol.RunParties(pa, pb,
			func() { la.ServeForward(xA) },
			func() { z = lb.ServeForward(xB) },
		); err != nil {
			t.Fatal(err)
		}
		return z
	}

	if err := protocol.RunParties(pa, pb,
		func() { la.ServeStart() },
		func() { lb.ServeStart() },
	); err != nil {
		t.Fatal(err)
	}
	z := serve()
	if z.Rows != batch || z.Cols != 3 {
		t.Fatalf("serve activation %d×%d, want %d×3", z.Rows, z.Cols, batch)
	}
	for i, v := range z.Data {
		if v != want.Data[i] {
			t.Fatalf("serve activation[%d] = %v, want exactly %v", i, v, want.Data[i])
		}
	}

	// Fresh masks each call must cancel exactly: a second run is bit-identical.
	z2 := serve()
	for i := range z.Data {
		if z.Data[i] != z2.Data[i] {
			t.Fatalf("serve activation not deterministic at %d: %v vs %v", i, z.Data[i], z2.Data[i])
		}
	}

	// The packed-exponent serve kernel is engine-independent: the Textbook
	// toggle switches the training matmuls but must not change serve results.
	prev := hetensor.SetTextbook(true)
	defer hetensor.SetTextbook(prev)
	z3 := serve()
	for i := range z.Data {
		if z.Data[i] != z3.Data[i] {
			t.Fatalf("serve activation differs under textbook toggle at %d", i)
		}
	}
}

func TestServeForwardMulti(t *testing.T) {
	skA, skB := protocol.TestKeys()
	const k = 3
	skAs := make([]*paillier.PrivateKey, k)
	for i := range skAs {
		skAs[i] = skA
	}
	as, g, err := protocol.GroupPipe(skAs, skB, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Out: 2, LR: 0.05}
	acfg := cfg
	acfg.GroupParties = k
	inAs := []int{3, 2, 2}
	las := make([]*MatMulA, k)
	var lb *MultiMatMulB
	if err := protocol.RunGroup(as, g,
		func(i int) { las[i] = NewMatMulA(as[i], acfg, inAs[i], 4) },
		func() { lb = NewMultiMatMulB(g, cfg, inAs, 4) },
	); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(17))
	batch := hetensor.Lanes(&skB.PublicKey) + 1
	xAs := make([]*tensor.Dense, k)
	for i := range xAs {
		xAs[i] = tensor.RandDense(rng, batch, inAs[i], 1)
	}
	xB := tensor.RandDense(rng, batch, 4, 1)

	// Exact integer reference summed over all sessions' pieces.
	want := hetensor.IntMatMulT(xB, lb.Sub(0).UB)
	for i := 0; i < k; i++ {
		want.AddInPlace(hetensor.IntMatMulT(xAs[i], las[i].UA))
		want.AddInPlace(hetensor.IntMatMulT(xAs[i], lb.Sub(i).VA))
		want.AddInPlace(hetensor.IntMatMulT(xB, las[i].VB))
		if i > 0 {
			want.AddInPlace(hetensor.IntMatMulT(xB, lb.Sub(i).UB))
		}
	}
	ref := want.DecodeTranspose()

	var z *tensor.Dense
	if err := protocol.RunGroup(as, g,
		func(i int) { las[i].ServeStart(); las[i].ServeForward(xAs[i]) },
		func() { lb.ServeStart(); z = lb.ServeForward(xB) },
	); err != nil {
		t.Fatal(err)
	}
	for i := range z.Data {
		if z.Data[i] != ref.Data[i] {
			t.Fatalf("multi serve activation[%d] = %v, want exactly %v", i, z.Data[i], ref.Data[i])
		}
	}
}
