package core

import (
	"blindfl/internal/hetensor"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
	"blindfl/internal/transport"
)

// Serving protocol: the forward-only path blindfl-serve runs over a trained
// MatMul source layer. It differs from the training forward in three ways:
//
//   - Requests are packed K-per-exponent across different users (the result
//     matrices are out×batch, transposed), so a full lane group costs the
//     same homomorphic work as a single request.
//   - The encrypted weight pieces are exchanged unpacked once per serve
//     session (ServeStart) and then never refreshed — no backward pass — so
//     their per-column Straus tables stay warm in the persistent dot-table
//     cache for every subsequent query.
//   - Shares stay exact integers at scale 2: masks are integer lane values
//     that cancel exactly in ℤ at reconstruction, making the served
//     activation deterministic and bit-comparable to a plaintext forward.

// ServeStart re-exchanges the unpacked encrypted weight pieces for serving:
// A ships a fresh ⟦V_B⟧ under its own key and receives ⟦V_A⟧ under B's key.
// Call once per serve session after construction or checkpoint restore (the
// received matrix is minted a fresh table-cache identity); training-time
// copies — possibly packed, possibly unminted after a restore — are not used
// by the serve path. Must run concurrently with MatMulB.ServeStart.
func (l *MatMulA) ServeStart() {
	encryptAndSend(l.peer, false, l.VB, 1)
	l.encVA = recvCipher(l.peer, false)
}

// ServeStart is Party B's half of the serve-session weight exchange.
func (l *MatMulB) ServeStart() {
	l.encVB = recvCipher(l.peer, false)
	encryptAndSend(l.peer, false, l.VA, 1)
}

// serveHalf runs one party's half of the batched serve forward: homomorphic
// packed product against the peer-held weight piece, integer HE2SS masking,
// and the exact plaintext share (x·U)ᵀ. Returns this party's integer share
// of Zᵀ at scale 2.
//
// With the peer's ANCheck option on, the plaintext share is computed through
// the AN-coded kernel: every cell's big-integer accumulation is re-derived
// mod a small prime and verified before the share joins the decrypted
// homomorphic half — the HE2SS boundary is exactly where a silently corrupt
// share would poison the reconstruction.
func serveHalf(p *protocol.Peer, x, u *tensor.Dense, encV *hetensor.CipherMatrix) *hetensor.BigMatrix {
	if encV == nil {
		panic("core: serve forward before ServeStart (no unpacked encrypted weight piece)")
	}
	prod := hetensor.ServeProducts(x, encV)        // ⟦(x·V)ᵀ⟧ under the peer's key, scale 2
	eps, masked := hetensor.ServeMask(p.Rng, prod) // keep integer S, send ⟦(x·V)ᵀ − S⟧
	p.Send(masked)
	other := hetensor.DecryptPackedInts(p.SK, p.RecvPacked()) // peer's (x̄·V̄)ᵀ − S̄
	var share *hetensor.BigMatrix
	if p.ANCheck {
		var bad int
		share, bad = hetensor.IntMatMulTAN(x, u)
		p.Stream.ANChecks += int64(share.Rows * share.Cols)
		p.Stream.ANMismatches += int64(bad)
		if bad > 0 {
			p.Fail("serve share: %w: %d AN-coded residue mismatches (corrupt plaintext arithmetic)", transport.ErrCorrupt, bad)
		}
	} else {
		share = hetensor.IntMatMulT(x, u)
	}
	share.AddInPlace(eps)
	share.AddInPlace(other)
	return share
}

// ServeForward runs Party A's half of a batched serve forward for the
// request features x and ships A's integer share to B. As in training, A
// learns nothing: the share it sends is blinded by B's masks.
func (l *MatMulA) ServeForward(x *tensor.Dense) {
	l.peer.Send(serveHalf(l.peer, x, l.UA, l.encVA))
}

// ServeShare runs Party B's half and returns the reconstructed exact integer
// activation Zᵀ = (X_A·W_A + X_B·W_B)ᵀ at scale 2 — the multi-party
// aggregation unit (shares from k sessions sum in ℤ before one decode).
func (l *MatMulB) ServeShare(x *tensor.Dense) *hetensor.BigMatrix {
	share := serveHalf(l.peer, x, l.UB, l.encVB)
	share.AddInPlace(l.peer.RecvBig())
	return share
}

// ServeForward runs Party B's half of a batched serve forward and returns
// the decoded activation Z (batch×out).
func (l *MatMulB) ServeForward(x *tensor.Dense) *tensor.Dense {
	return l.ServeShare(x).DecodeTranspose()
}

// ServeStart runs the serve-session weight exchange on every session of the
// multi-party layer. Must run concurrently with ServeStart on every A(i).
func (m *MultiMatMulB) ServeStart() {
	m.g.ForEach(func(i int, _ *protocol.Peer) { m.subs[i].ServeStart() })
}

// ServeForward runs the k serve sub-forwards concurrently and reconstructs
// Z = Σᵢ X_A(i)·W_A(i) + X_B·W_B, summing the integer shares in session
// order before the single decode (exact, so the order only matters for
// determinism of the float result, which the integer domain gives for free).
func (m *MultiMatMulB) ServeForward(x *tensor.Dense) *tensor.Dense {
	return m.ServeShareSum(x).DecodeTranspose()
}

// ServeShareSum runs the serve sub-forwards and returns the session-order
// share sum *without* decoding — the shard worker's eval partial. Shares are
// exact scaled integers, so the root may add shard partials in shard order
// and decode once, bit-identical to the all-sessions sum (unlike the float
// training partials, which must ship per session).
func (m *MultiMatMulB) ServeShareSum(x *tensor.Dense) *hetensor.BigMatrix {
	shares := make([]*hetensor.BigMatrix, len(m.subs))
	m.g.ForEach(func(i int, _ *protocol.Peer) { shares[i] = m.subs[i].ServeShare(x) })
	var z *hetensor.BigMatrix
	for _, s := range shares {
		if s == nil {
			continue // session lost mid-run (ContinueOnLoss)
		}
		if z == nil {
			z = s
		} else {
			z.AddInPlace(s)
		}
	}
	return z
}
