package core

import (
	"math"

	"blindfl/internal/engine"
	"blindfl/internal/tensor"
)

// momentum applies momentum SGD to one secret-share piece. Momentum is a
// linear operator, so applying it to each additive piece independently is
// exactly equivalent to applying it to the reconstructed gradient — the
// property that lets BlindFL run momentum SGD on weights that neither party
// holds (Sec. 7.1, "FederatedSGD").
type momentum struct {
	mu  float64
	buf *tensor.Dense
}

// step performs buf = mu·buf + grad; w −= lr·buf, in place on w.
func (m *momentum) step(w, grad *tensor.Dense, lr float64) {
	if m.buf == nil {
		m.buf = tensor.NewDense(grad.Rows, grad.Cols)
	}
	if m.mu == 0 {
		w.Axpy(-lr, grad)
		return
	}
	for i, g := range grad.Data {
		m.buf.Data[i] = m.mu*m.buf.Data[i] + g
	}
	w.Axpy(-lr, m.buf)
}

// stepRows applies the update only to the given rows of w; gradRows row i is
// the gradient of w row idx[i]. Momentum is "lazy": untouched rows keep
// their stale buffer until next touched — the standard sparse-SGD
// approximation used for high-dimensional embeddings and linear models.
func (m *momentum) stepRows(w, gradRows *tensor.Dense, idx []int, lr float64) {
	if m.buf == nil {
		m.buf = tensor.NewDense(w.Rows, w.Cols)
	}
	for i, r := range idx {
		grow := gradRows.Row(i)
		brow := m.buf.Row(r)
		wrow := w.Row(r)
		for j, g := range grow {
			brow[j] = m.mu*brow[j] + g
			wrow[j] -= lr * brow[j]
		}
	}
}

// Config carries the hyper-parameters shared by both halves of a source
// layer. Both parties must construct their halves with identical values.
// The engine knobs (Packed, Stream, Textbook, TableCacheMB, …) live on the
// embedded engine.Options — the single declaration shared with model.Hyper
// and bench.StepperOpts.
type Config struct {
	Out       int     // output dimensionality of the source layer
	LR        float64 // learning rate η
	Momentum  float64 // momentum coefficient μ (0 disables)
	InitScale float64 // uniform init range for weight pieces; 0 means 0.1

	// GroupParties marks the layer as one session of a k-party group
	// (Appendix C, Algorithm 3) jointly representing Party B's weights:
	// W_B = Σᵢ(U_B(i) + V_B(i)) over the k sessions. The W_B pieces each
	// session draws — A's V_B and B's U_B — are initialized at
	// InitScale/√k, so the variance of the 2k-piece sum matches the
	// two-party W_B = U_B + V_B (2 pieces at the full scale); the
	// per-session W_A pieces (U_A, V_A) keep the full scale (W_A is
	// column-partitioned across sessions, not summed). 0 or 1 means the
	// ordinary two-party layer. Both parties of every session must agree on
	// the value, like Packed and Stream.
	GroupParties int

	engine.Options
}

// applyExpEngine applies the process-wide exponentiation-engine toggles (the
// Textbook ablation and the persistent dot-table cache budget). Called by
// the layer constructors so the flags take effect wherever a Config enters
// the system.
func (c Config) applyExpEngine() { c.Options.Apply() }

func (c Config) initScale() float64 {
	if c.InitScale == 0 {
		return 0.1
	}
	return c.InitScale
}

// groupPieceDiv returns the divisor for the W_B piece init draws: √k for a
// k-session group, so the 2k independent uniform pieces sum to a W_B with
// the variance of the two-party U_B + V_B pair at full scale (each piece
// contributes scale²/3, so 2k·(s/√k)²/3 = 2s²/3); 1 for the two-party
// layer.
func (c Config) groupPieceDiv() float64 {
	if c.GroupParties > 1 {
		return math.Sqrt(float64(c.GroupParties))
	}
	return 1
}
