package core

import (
	"math/rand"
	"testing"

	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// Multi-party MatMul (Algorithm 3) coverage lives in multiparty_test.go.

// --- Federated (SS) top model (Appendix B, Fig. 13) ---

func TestFedTopForwardSharesReconstructZ(t *testing.T) {
	pa, pb := pipe(t, 410)
	cfg := Config{Out: 2, LR: 0.1}
	la, lb := newMatMulPair(t, pa, pb, cfg, 3, 4)

	rng := rand.New(rand.NewSource(2))
	xA := tensor.RandDense(rng, 5, 3, 1)
	xB := tensor.RandDense(rng, 5, 4, 1)
	want := xA.MatMul(DebugWeightsA(la, lb)).Add(xB.MatMul(DebugWeightsB(la, lb)))

	var zA, zB *tensor.Dense
	if err := protocol.RunParties(pa, pb,
		func() { zA = la.ForwardSS(DenseFeatures{xA}) },
		func() { zB = lb.ForwardSS(DenseFeatures{xB}) },
	); err != nil {
		t.Fatal(err)
	}
	if got := zA.Add(zB); !got.Equal(want, 1e-4) {
		t.Fatalf("SS forward shares do not reconstruct Z (maxdiff %g)", got.Sub(want).MaxAbs())
	}
	// Neither share alone should approximate Z (masks dominate).
	if zB.Sub(want).MaxAbs() < 100 {
		t.Fatal("Party B's share is suspiciously close to Z; masking failed")
	}
}

func TestFedTopBackwardMatchesSGD(t *testing.T) {
	pa, pb := pipe(t, 411)
	cfg := Config{Out: 1, LR: 0.05}
	la, lb := newMatMulPair(t, pa, pb, cfg, 3, 3)

	rng := rand.New(rand.NewSource(3))
	xA := tensor.RandDense(rng, 4, 3, 1)
	xB := tensor.RandDense(rng, 4, 3, 1)
	gradZ := tensor.RandDense(rng, 4, 1, 1)
	// The ideal federated top model hands each party one share of ∇Z.
	eps := tensor.RandDense(rng, 4, 1, 1000)
	gradShareB := gradZ.Sub(eps)

	wantWA := DebugWeightsA(la, lb).Sub(xA.TransposeMatMul(gradZ).Scale(cfg.LR))
	wantWB := DebugWeightsB(la, lb).Sub(xB.TransposeMatMul(gradZ).Scale(cfg.LR))

	if err := protocol.RunParties(pa, pb,
		func() { la.ForwardSS(DenseFeatures{xA}); la.BackwardSS(eps) },
		func() { lb.ForwardSS(DenseFeatures{xB}); lb.BackwardSS(gradShareB) },
	); err != nil {
		t.Fatal(err)
	}
	if got := DebugWeightsA(la, lb); !got.Equal(wantWA, 1e-4) {
		t.Fatalf("SS-top W_A update wrong (maxdiff %g)", got.Sub(wantWA).MaxAbs())
	}
	if got := DebugWeightsB(la, lb); !got.Equal(wantWB, 1e-4) {
		t.Fatalf("SS-top W_B update wrong (maxdiff %g)", got.Sub(wantWB).MaxAbs())
	}
}

func TestFedTopMultiStepConsistency(t *testing.T) {
	pa, pb := pipe(t, 412)
	cfg := Config{Out: 1, LR: 0.1}
	la, lb := newMatMulPair(t, pa, pb, cfg, 2, 2)

	rng := rand.New(rand.NewSource(4))
	for step := 0; step < 3; step++ {
		xA := tensor.RandDense(rng, 3, 2, 1)
		xB := tensor.RandDense(rng, 3, 2, 1)
		gradZ := tensor.RandDense(rng, 3, 1, 1)
		eps := tensor.RandDense(rng, 3, 1, 1000)
		want := xA.MatMul(DebugWeightsA(la, lb)).Add(xB.MatMul(DebugWeightsB(la, lb)))

		var zA, zB *tensor.Dense
		if err := protocol.RunParties(pa, pb,
			func() {
				zA = la.ForwardSS(DenseFeatures{xA})
				la.BackwardSS(eps)
			},
			func() {
				zB = lb.ForwardSS(DenseFeatures{xB})
				lb.BackwardSS(gradZ.Sub(eps))
			},
		); err != nil {
			t.Fatal(err)
		}
		if got := zA.Add(zB); !got.Equal(want, 1e-3) {
			t.Fatalf("step %d: SS-top forward inconsistent (maxdiff %g)", step, got.Sub(want).MaxAbs())
		}
	}
}
