package core

import (
	"math/rand"
	"testing"

	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

func TestEmbedFedTopForwardSharesReconstructZ(t *testing.T) {
	pa, pb := pipe(t, 420)
	cfg := embedTestCfg()
	la, lb := newEmbedPair(t, pa, pb, cfg)

	rng := rand.New(rand.NewSource(1))
	xA := randIdx(rng, 4, cfg.FieldsA, cfg.VocabA)
	xB := randIdx(rng, 4, cfg.FieldsB, cfg.VocabB)
	want := plaintextZ(la, lb, xA, xB)

	var zA, zB *tensor.Dense
	if err := protocol.RunParties(pa, pb,
		func() { zA = la.ForwardSS(xA) },
		func() { zB = lb.ForwardSS(xB) },
	); err != nil {
		t.Fatal(err)
	}
	if got := zA.Add(zB); !got.Equal(want, 1e-4) {
		t.Fatalf("embed SS shares do not reconstruct Z (maxdiff %g)", got.Sub(want).MaxAbs())
	}
	if zB.Sub(want).MaxAbs() < 100 {
		t.Fatal("Party B's share approximates Z; masking failed")
	}
}

func TestEmbedFedTopBackwardMatchesSGD(t *testing.T) {
	pa, pb := pipe(t, 421)
	cfg := embedTestCfg()
	la, lb := newEmbedPair(t, pa, pb, cfg)

	rng := rand.New(rand.NewSource(2))
	xA := randIdx(rng, 4, cfg.FieldsA, cfg.VocabA)
	xB := randIdx(rng, 4, cfg.FieldsB, cfg.VocabB)
	gradZ := tensor.RandDense(rng, 4, cfg.Out, 1)
	eps := tensor.RandDense(rng, 4, cfg.Out, 1000)
	gradShareB := gradZ.Sub(eps)

	// Plaintext one-step SGD reference.
	qA0, qB0 := DebugTableA(la, lb), DebugTableB(la, lb)
	wA0, wB0 := DebugEmbedWeightsA(la, lb), DebugEmbedWeightsB(la, lb)
	eA := tensor.Lookup(qA0, xA)
	eB := tensor.Lookup(qB0, xB)
	wantWA := wA0.Sub(eA.TransposeMatMul(gradZ).Scale(cfg.LR))
	wantWB := wB0.Sub(eB.TransposeMatMul(gradZ).Scale(cfg.LR))
	wantQA := qA0.Sub(tensor.LookupBackward(gradZ.MatMulTranspose(wA0), xA, cfg.VocabA, cfg.Dim).Scale(cfg.LR))
	wantQB := qB0.Sub(tensor.LookupBackward(gradZ.MatMulTranspose(wB0), xB, cfg.VocabB, cfg.Dim).Scale(cfg.LR))

	if err := protocol.RunParties(pa, pb,
		func() { la.ForwardSS(xA); la.BackwardSS(eps) },
		func() { lb.ForwardSS(xB); lb.BackwardSS(gradShareB) },
	); err != nil {
		t.Fatal(err)
	}
	if got := DebugEmbedWeightsA(la, lb); !got.Equal(wantWA, 1e-4) {
		t.Fatalf("SS-top W_A update wrong (maxdiff %g)", got.Sub(wantWA).MaxAbs())
	}
	if got := DebugEmbedWeightsB(la, lb); !got.Equal(wantWB, 1e-4) {
		t.Fatalf("SS-top W_B update wrong (maxdiff %g)", got.Sub(wantWB).MaxAbs())
	}
	if got := DebugTableA(la, lb); !got.Equal(wantQA, 1e-4) {
		t.Fatalf("SS-top Q_A update wrong (maxdiff %g)", got.Sub(wantQA).MaxAbs())
	}
	if got := DebugTableB(la, lb); !got.Equal(wantQB, 1e-4) {
		t.Fatalf("SS-top Q_B update wrong (maxdiff %g)", got.Sub(wantQB).MaxAbs())
	}
}

func TestEmbedFedTopMultiStepConsistency(t *testing.T) {
	pa, pb := pipe(t, 422)
	cfg := embedTestCfg()
	cfg.LR = 0.05
	la, lb := newEmbedPair(t, pa, pb, cfg)

	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 3; step++ {
		xA := randIdx(rng, 3, cfg.FieldsA, cfg.VocabA)
		xB := randIdx(rng, 3, cfg.FieldsB, cfg.VocabB)
		gradZ := tensor.RandDense(rng, 3, cfg.Out, 1)
		eps := tensor.RandDense(rng, 3, cfg.Out, 1000)
		want := plaintextZ(la, lb, xA, xB)

		var zA, zB *tensor.Dense
		if err := protocol.RunParties(pa, pb,
			func() { zA = la.ForwardSS(xA); la.BackwardSS(eps) },
			func() { zB = lb.ForwardSS(xB); lb.BackwardSS(gradZ.Sub(eps)) },
		); err != nil {
			t.Fatal(err)
		}
		if got := zA.Add(zB); !got.Equal(want, 1e-4) {
			t.Fatalf("step %d: embed SS-top forward inconsistent (maxdiff %g)", step, got.Sub(want).MaxAbs())
		}
	}
}
