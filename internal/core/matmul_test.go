package core

import (
	"math/rand"
	"testing"

	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

func pipe(t testing.TB, seed int64) (*protocol.Peer, *protocol.Peer) {
	t.Helper()
	skA, skB := protocol.TestKeys()
	a, b, err := protocol.Pipe(skA, skB, seed)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// newMatMulPair constructs both halves concurrently.
func newMatMulPair(t testing.TB, pa, pb *protocol.Peer, cfg Config, inA, inB int) (*MatMulA, *MatMulB) {
	t.Helper()
	var la *MatMulA
	var lb *MatMulB
	if err := protocol.RunParties(pa, pb,
		func() { la = NewMatMulA(pa, cfg, inA, inB) },
		func() { lb = NewMatMulB(pb, cfg, inA, inB) },
	); err != nil {
		t.Fatal(err)
	}
	return la, lb
}

func TestMatMulForwardMatchesPlaintext(t *testing.T) {
	pa, pb := pipe(t, 100)
	cfg := Config{Out: 3, LR: 0.1}
	la, lb := newMatMulPair(t, pa, pb, cfg, 5, 4)

	rng := rand.New(rand.NewSource(1))
	xA := tensor.RandDense(rng, 6, 5, 1)
	xB := tensor.RandDense(rng, 6, 4, 1)

	wA := DebugWeightsA(la, lb)
	wB := DebugWeightsB(la, lb)
	want := xA.MatMul(wA).Add(xB.MatMul(wB))

	var z *tensor.Dense
	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(DenseFeatures{xA}) },
		func() { z = lb.Forward(DenseFeatures{xB}) },
	); err != nil {
		t.Fatal(err)
	}
	if !z.Equal(want, 1e-4) {
		t.Fatalf("federated Z diverges from plaintext:\n got %v\nwant %v", z.Data, want.Data)
	}
}

func TestMatMulForwardSparseMatchesDense(t *testing.T) {
	pa, pb := pipe(t, 101)
	cfg := Config{Out: 2, LR: 0.1}
	la, lb := newMatMulPair(t, pa, pb, cfg, 20, 4)

	rng := rand.New(rand.NewSource(2))
	xA := tensor.RandCSR(rng, 5, 20, 3)
	xB := tensor.RandDense(rng, 5, 4, 1)

	want := xA.ToDense().MatMul(DebugWeightsA(la, lb)).Add(xB.MatMul(DebugWeightsB(la, lb)))
	var z *tensor.Dense
	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(SparseFeatures{xA}) },
		func() { z = lb.Forward(DenseFeatures{xB}) },
	); err != nil {
		t.Fatal(err)
	}
	if !z.Equal(want, 1e-4) {
		t.Fatal("sparse federated forward diverges from plaintext")
	}
}

func TestMatMulBackwardMatchesSGD(t *testing.T) {
	pa, pb := pipe(t, 102)
	cfg := Config{Out: 2, LR: 0.05}
	la, lb := newMatMulPair(t, pa, pb, cfg, 3, 4)

	rng := rand.New(rand.NewSource(3))
	xA := tensor.RandDense(rng, 4, 3, 1)
	xB := tensor.RandDense(rng, 4, 4, 1)
	gradZ := tensor.RandDense(rng, 4, 2, 1)

	wA0 := DebugWeightsA(la, lb)
	wB0 := DebugWeightsB(la, lb)
	wantWA := wA0.Sub(xA.TransposeMatMul(gradZ).Scale(cfg.LR))
	wantWB := wB0.Sub(xB.TransposeMatMul(gradZ).Scale(cfg.LR))

	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(DenseFeatures{xA}); la.Backward() },
		func() { lb.Forward(DenseFeatures{xB}); lb.Backward(gradZ) },
	); err != nil {
		t.Fatal(err)
	}
	if got := DebugWeightsA(la, lb); !got.Equal(wantWA, 1e-4) {
		t.Fatalf("W_A update wrong:\n got %v\nwant %v", got.Data, wantWA.Data)
	}
	if got := DebugWeightsB(la, lb); !got.Equal(wantWB, 1e-4) {
		t.Fatalf("W_B update wrong:\n got %v\nwant %v", got.Data, wantWB.Data)
	}
}

func TestMatMulMomentumMatchesPlaintextSGD(t *testing.T) {
	pa, pb := pipe(t, 103)
	cfg := Config{Out: 1, LR: 0.05, Momentum: 0.9}
	la, lb := newMatMulPair(t, pa, pb, cfg, 3, 2)

	rng := rand.New(rand.NewSource(4))
	// Plaintext reference with the same initial weights.
	wA := DebugWeightsA(la, lb)
	wB := DebugWeightsB(la, lb)
	var bufA, bufB *tensor.Dense

	for step := 0; step < 5; step++ {
		xA := tensor.RandDense(rng, 4, 3, 1)
		xB := tensor.RandDense(rng, 4, 2, 1)
		gradZ := tensor.RandDense(rng, 4, 1, 1)

		if err := protocol.RunParties(pa, pb,
			func() { la.Forward(DenseFeatures{xA}); la.Backward() },
			func() { lb.Forward(DenseFeatures{xB}); lb.Backward(gradZ) },
		); err != nil {
			t.Fatal(err)
		}

		gA := xA.TransposeMatMul(gradZ)
		gB := xB.TransposeMatMul(gradZ)
		if bufA == nil {
			bufA = tensor.NewDense(gA.Rows, gA.Cols)
			bufB = tensor.NewDense(gB.Rows, gB.Cols)
		}
		bufA = bufA.Scale(cfg.Momentum).Add(gA)
		bufB = bufB.Scale(cfg.Momentum).Add(gB)
		wA = wA.Sub(bufA.Scale(cfg.LR))
		wB = wB.Sub(bufB.Scale(cfg.LR))
	}
	if got := DebugWeightsA(la, lb); !got.Equal(wA, 1e-3) {
		t.Fatalf("momentum W_A diverged after 5 steps:\n got %v\nwant %v", got.Data, wA.Data)
	}
	if got := DebugWeightsB(la, lb); !got.Equal(wB, 1e-3) {
		t.Fatalf("momentum W_B diverged after 5 steps:\n got %v\nwant %v", got.Data, wB.Data)
	}
}

func TestMatMulMultiStepForwardStaysConsistent(t *testing.T) {
	// After backward updates, the refreshed ⟦V_A⟧/⟦V_B⟧ copies must keep the
	// federated forward equal to the plaintext forward of the updated weights.
	pa, pb := pipe(t, 104)
	cfg := Config{Out: 2, LR: 0.1}
	la, lb := newMatMulPair(t, pa, pb, cfg, 3, 3)

	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 3; step++ {
		xA := tensor.RandDense(rng, 2, 3, 1)
		xB := tensor.RandDense(rng, 2, 3, 1)
		gradZ := tensor.RandDense(rng, 2, 2, 1)
		want := xA.MatMul(DebugWeightsA(la, lb)).Add(xB.MatMul(DebugWeightsB(la, lb)))
		var z *tensor.Dense
		if err := protocol.RunParties(pa, pb,
			func() { la.Forward(DenseFeatures{xA}); la.Backward() },
			func() { z = lb.Forward(DenseFeatures{xB}); lb.Backward(gradZ) },
		); err != nil {
			t.Fatal(err)
		}
		if !z.Equal(want, 1e-3) {
			t.Fatalf("step %d: forward inconsistent with reconstructed weights", step)
		}
	}
}

func TestMatMulPartyASeesOnlyMaskedValues(t *testing.T) {
	// Party A's own share X_A·U_A must be unrelated to the true activation
	// X_A·W_A: U_A is one random additive piece. We check that A's piece of
	// W differs from W by at least the init scale everywhere it matters.
	pa, pb := pipe(t, 105)
	cfg := Config{Out: 1, LR: 0.1}
	la, lb := newMatMulPair(t, pa, pb, cfg, 8, 8)
	wA := DebugWeightsA(la, lb)
	diff := wA.Sub(la.PieceUA())
	if diff.MaxAbs() == 0 {
		t.Fatal("U_A equals W_A: weights are not secret-shared")
	}
	// V_A (held by B) must be the exact complement.
	if !diff.Equal(lb.VA, 1e-12) {
		t.Fatal("U_A + V_A != W_A")
	}
}
