package core

import "blindfl/internal/tensor"

// Asymmetric-alignment support (paper Sec. 8, following Liu et al.,
// "Asymmetrical Vertical Federated Learning"): when only Party B may learn
// the PSI intersection, the mini-batch contains filler instances that Party
// A must not be able to distinguish. Party B zeroes the derivative rows of
// the non-intersection instances before the backward protocol — the tweak
// to Fig. 6 line 9 / Fig. 7 line 12 the paper describes — so the model
// gradients are exactly those of the true intersection while Party A sees a
// full-size encrypted derivative either way.

// MaskDerivativeRows returns a copy of gradZ with the rows of instances
// outside the intersection zeroed. inIntersection[i] corresponds to batch
// row i; a nil slice returns gradZ unchanged.
func MaskDerivativeRows(gradZ *tensor.Dense, inIntersection []bool) *tensor.Dense {
	if inIntersection == nil {
		return gradZ
	}
	if len(inIntersection) != gradZ.Rows {
		panic("core: MaskDerivativeRows membership length mismatch")
	}
	out := gradZ.Clone()
	for i, in := range inIntersection {
		if !in {
			row := out.Row(i)
			for j := range row {
				row[j] = 0
			}
		}
	}
	return out
}
