package core

import (
	"math/rand"
	"testing"

	"blindfl/internal/engine"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// groupPipe builds a k-session group sharing the two test keys.
func groupPipe(t testing.TB, k int, seed int64) ([]*protocol.Peer, *protocol.Group) {
	t.Helper()
	skA, skB := protocol.TestKeys()
	skAs := make([]*paillier.PrivateKey, k)
	for i := range skAs {
		skAs[i] = skA
	}
	as, g, err := protocol.GroupPipe(skAs, skB, seed)
	if err != nil {
		t.Fatal(err)
	}
	return as, g
}

// newMultiMatMul constructs the k A-halves and B's multi half concurrently.
func newMultiMatMul(t testing.TB, peersA []*protocol.Peer, g *protocol.Group, cfg Config, inAs []int, inB int) ([]*MatMulA, *MultiMatMulB) {
	t.Helper()
	acfg := cfg
	acfg.GroupParties = g.K()
	as := make([]*MatMulA, g.K())
	var b *MultiMatMulB
	if err := protocol.RunGroup(peersA, g,
		func(i int) { as[i] = NewMatMulA(peersA[i], acfg, inAs[i], inB) },
		func() { b = NewMultiMatMulB(g, cfg, inAs, inB) },
	); err != nil {
		t.Fatal(err)
	}
	return as, b
}

// TestMultiPartyForwardBackwardMatchesPlaintext drives a k=3 group (with
// uneven feature widths) through one step and checks the aggregated
// activation and every weight update against the plaintext reference on the
// reconstructed weights — Algorithm 3's lossless property.
func TestMultiPartyForwardBackwardMatchesPlaintext(t *testing.T) {
	const k = 3
	peersA, g := groupPipe(t, k, 400)
	cfg := Config{Out: 2, LR: 0.1}
	inAs := []int{3, 4, 5}
	inB := 3
	as, b := newMultiMatMul(t, peersA, g, cfg, inAs, inB)

	rng := rand.New(rand.NewSource(1))
	xAs := make([]*tensor.Dense, k)
	for i := range xAs {
		xAs[i] = tensor.RandDense(rng, 4, inAs[i], 1)
	}
	xB := tensor.RandDense(rng, 4, inB, 1)
	gradZ := tensor.RandDense(rng, 4, cfg.Out, 1)

	want := xB.MatMul(DebugMultiWeightsB(b, as))
	for i := 0; i < k; i++ {
		want.AddInPlace(xAs[i].MatMul(DebugMultiWeightsA(b, as[i], i)))
	}
	wantWB := DebugMultiWeightsB(b, as).Sub(xB.TransposeMatMul(gradZ).Scale(cfg.LR))
	var wantWAs []*tensor.Dense
	for i := 0; i < k; i++ {
		wantWAs = append(wantWAs, DebugMultiWeightsA(b, as[i], i).Sub(xAs[i].TransposeMatMul(gradZ).Scale(cfg.LR)))
	}

	var z *tensor.Dense
	if err := protocol.RunGroup(peersA, g,
		func(i int) { as[i].Forward(DenseFeatures{xAs[i]}); as[i].Backward() },
		func() { z = b.Forward(DenseFeatures{xB}); b.Backward(gradZ) },
	); err != nil {
		t.Fatal(err)
	}

	if !z.Equal(want, 1e-4) {
		t.Fatalf("multi-party Z diverges (maxdiff %g)", z.Sub(want).MaxAbs())
	}
	if got := DebugMultiWeightsB(b, as); !got.Equal(wantWB, 1e-4) {
		t.Fatalf("multi-party W_B update wrong (maxdiff %g)", got.Sub(wantWB).MaxAbs())
	}
	for i := 0; i < k; i++ {
		if got := DebugMultiWeightsA(b, as[i], i); !got.Equal(wantWAs[i], 1e-4) {
			t.Fatalf("multi-party W_A(%d) update wrong (maxdiff %g)", i, got.Sub(wantWAs[i]).MaxAbs())
		}
	}
}

// TestMultiPartySparseMatchesPlaintext is the sparse-layer analogue: k
// sessions of the on-demand-row protocol must aggregate and update exactly
// like the plaintext reference on the touched coordinates.
func TestMultiPartySparseMatchesPlaintext(t *testing.T) {
	const k = 3
	peersA, g := groupPipe(t, k, 401)
	cfg := Config{Out: 2, LR: 0.1}
	acfg := cfg
	acfg.GroupParties = k
	inAs := []int{10, 12, 8}
	inB := 10

	as := make([]*SparseMatMulA, k)
	var b *MultiSparseMatMulB
	if err := protocol.RunGroup(peersA, g,
		func(i int) { as[i] = NewSparseMatMulA(peersA[i], acfg, inAs[i], inB) },
		func() { b = NewMultiSparseMatMulB(g, cfg, inAs, inB) },
	); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(2))
	xAs := make([]*tensor.CSR, k)
	for i := range xAs {
		xAs[i] = tensor.RandCSR(rng, 5, inAs[i], 3)
	}
	xB := tensor.RandCSR(rng, 5, inB, 3)
	gradZ := tensor.RandDense(rng, 5, cfg.Out, 1)

	want := xB.ToDense().MatMul(DebugMultiSparseWeightsB(b, as))
	for i := 0; i < k; i++ {
		want.AddInPlace(xAs[i].ToDense().MatMul(DebugMultiSparseWeightsA(b, as[i], i)))
	}
	wantWB := DebugMultiSparseWeightsB(b, as).Sub(xB.ToDense().TransposeMatMul(gradZ).Scale(cfg.LR))

	var z *tensor.Dense
	if err := protocol.RunGroup(peersA, g,
		func(i int) { as[i].Forward(xAs[i]); as[i].Backward() },
		func() { z = b.Forward(xB); b.Backward(gradZ) },
	); err != nil {
		t.Fatal(err)
	}
	if !z.Equal(want, 1e-4) {
		t.Fatalf("multi-party sparse Z diverges (maxdiff %g)", z.Sub(want).MaxAbs())
	}
	if got := DebugMultiSparseWeightsB(b, as); !got.Equal(wantWB, 1e-4) {
		t.Fatalf("multi-party sparse W_B update wrong (maxdiff %g)", got.Sub(wantWB).MaxAbs())
	}
}

// TestMultiPartyK1BitExactTwoParty pins the degenerate group shape: a
// 1-session group is *the* two-party layer — same RNG streams (Pipe and
// GroupPipe session 0 coincide), same arithmetic — so activations and
// updated weight pieces must be bit-identical, not merely close.
func TestMultiPartyK1BitExactTwoParty(t *testing.T) {
	const seed = 402
	skA, skB := protocol.TestKeys()
	pa, pb, err := protocol.Pipe(skA, skB, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Out: 2, LR: 0.1, Momentum: 0.9}
	la, lb := newMatMulPair(t, pa, pb, cfg, 4, 3)

	peersA, g := groupPipe(t, 1, seed)
	as, b := newMultiMatMul(t, peersA, g, cfg, []int{4}, 3)

	rng := rand.New(rand.NewSource(3))
	xA := tensor.RandDense(rng, 5, 4, 1)
	xB := tensor.RandDense(rng, 5, 3, 1)
	gradZ := tensor.RandDense(rng, 5, cfg.Out, 1)

	var z2, zk *tensor.Dense
	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(DenseFeatures{xA}); la.Backward() },
		func() { z2 = lb.Forward(DenseFeatures{xB}); lb.Backward(gradZ) },
	); err != nil {
		t.Fatal(err)
	}
	if err := protocol.RunGroup(peersA, g,
		func(i int) { as[i].Forward(DenseFeatures{xA}); as[i].Backward() },
		func() { zk = b.Forward(DenseFeatures{xB}); b.Backward(gradZ) },
	); err != nil {
		t.Fatal(err)
	}

	if !zk.Equal(z2, 0) {
		t.Fatalf("k=1 group forward differs from the two-party layer (maxdiff %g)", zk.Sub(z2).MaxAbs())
	}
	if got, want := DebugMultiWeightsA(b, as[0], 0), DebugWeightsA(la, lb); !got.Equal(want, 0) {
		t.Fatalf("k=1 group W_A differs bitwise after backward (maxdiff %g)", got.Sub(want).MaxAbs())
	}
	if got, want := DebugMultiWeightsB(b, as), DebugWeightsB(la, lb); !got.Equal(want, 0) {
		t.Fatalf("k=1 group W_B differs bitwise after backward (maxdiff %g)", got.Sub(want).MaxAbs())
	}
}

// TestMultiPartyPackedStreamMatchesPlaintext runs the k=3 dense group with
// every combination of the packed and streamed hot paths: per-session
// packing/streaming must compose with the group aggregation and stay on the
// plaintext reference.
func TestMultiPartyPackedStreamMatchesPlaintext(t *testing.T) {
	if testing.Short() {
		t.Skip("packed/stream multi-party variants skipped in -short")
	}
	for _, tc := range []struct {
		name           string
		packed, stream bool
	}{{"packed", true, false}, {"streamed", false, true}, {"packed+streamed", true, true}} {
		t.Run(tc.name, func(t *testing.T) {
			const k = 3
			peersA, g := groupPipe(t, k, 403)
			cfg := Config{Out: 2, LR: 0.1, Options: engine.Options{Packed: tc.packed, Stream: tc.stream}}
			inAs := []int{4, 3, 5}
			inB := 4
			as, b := newMultiMatMul(t, peersA, g, cfg, inAs, inB)

			rng := rand.New(rand.NewSource(4))
			xAs := make([]*tensor.Dense, k)
			for i := range xAs {
				xAs[i] = tensor.RandDense(rng, 6, inAs[i], 1)
			}
			xB := tensor.RandDense(rng, 6, inB, 1)
			gradZ := tensor.RandDense(rng, 6, cfg.Out, 1)

			want := xB.MatMul(DebugMultiWeightsB(b, as))
			for i := 0; i < k; i++ {
				want.AddInPlace(xAs[i].MatMul(DebugMultiWeightsA(b, as[i], i)))
			}
			wantWB := DebugMultiWeightsB(b, as).Sub(xB.TransposeMatMul(gradZ).Scale(cfg.LR))

			var z *tensor.Dense
			if err := protocol.RunGroup(peersA, g,
				func(i int) { as[i].Forward(DenseFeatures{xAs[i]}); as[i].Backward() },
				func() { z = b.Forward(DenseFeatures{xB}); b.Backward(gradZ) },
			); err != nil {
				t.Fatal(err)
			}
			if !z.Equal(want, 1e-4) {
				t.Fatalf("%s multi-party Z diverges (maxdiff %g)", tc.name, z.Sub(want).MaxAbs())
			}
			if got := DebugMultiWeightsB(b, as); !got.Equal(wantWB, 1e-4) {
				t.Fatalf("%s multi-party W_B update wrong (maxdiff %g)", tc.name, got.Sub(wantWB).MaxAbs())
			}
		})
	}
}

// TestMultiPartySessionFailureTearsDownLayer: a transport failure injected
// mid-step in one session must surface as an error from RunGroup (not a
// hang) even though the other sessions are deep inside their sub-protocols.
func TestMultiPartySessionFailureTearsDownLayer(t *testing.T) {
	const k = 3
	peersA, g := groupPipe(t, k, 404)
	cfg := Config{Out: 1, LR: 0.1}
	inAs := []int{3, 3, 3}
	as, b := newMultiMatMul(t, peersA, g, cfg, inAs, 3)

	rng := rand.New(rand.NewSource(5))
	xAs := make([]*tensor.Dense, k)
	for i := range xAs {
		xAs[i] = tensor.RandDense(rng, 4, inAs[i], 1)
	}
	xB := tensor.RandDense(rng, 4, 3, 1)

	err := protocol.RunGroup(peersA, g,
		func(i int) {
			if i == 1 {
				peersA[i].Conn.Close() // the feature party dies mid-step
				return
			}
			as[i].Forward(DenseFeatures{xAs[i]})
		},
		func() { b.Forward(DenseFeatures{xB}) },
	)
	if err == nil {
		t.Fatal("expected an error after a mid-step session failure")
	}
}
