// Package core implements BlindFL's federated source layers — the paper's
// primary contribution. A source layer unites the features of Party A and
// Party B into a single activation Z = X_A·W_A + X_B·W_B (MatMul, Sec. 5) or
// Z = E_A·W_A + E_B·W_B with E⋄ = lkup(Q⋄, X⋄) (Embed-MatMul, Sec. 6),
// without either party ever holding its own model weights, any forward
// activation, or any backward derivative in the clear.
//
// Each layer is split into a Party-A half and a Party-B half that exchange
// messages over a protocol.Peer. Weights are additively secret-shared
// (W⋄ = U⋄ + V⋄, Q⋄ = S⋄ + T⋄) with the pieces held by different parties,
// and encrypted copies of the pieces needed for homomorphic computation are
// exchanged at initialization and refreshed after every update, exactly as
// in the paper's Figures 6 and 7.
package core

import (
	"blindfl/internal/hetensor"
	"blindfl/internal/tensor"
)

// Numeric abstracts the mini-batch feature matrix of one party for the
// MatMul source layer, so dense and sparse inputs share one protocol
// implementation. Sparse inputs skip zero entries in both the plaintext and
// the homomorphic matmuls — the source of BlindFL's Table 5 speedups.
type Numeric interface {
	// Rows returns the batch size.
	Rows() int
	// NumCols returns the feature dimensionality.
	NumCols() int
	// MatMul returns X·W for plaintext W.
	MatMul(w *tensor.Dense) *tensor.Dense
	// TransposeMatMul returns Xᵀ·G for plaintext G.
	TransposeMatMul(g *tensor.Dense) *tensor.Dense
	// MulCipher returns ⟦X·W⟧ for encrypted W.
	MulCipher(w *hetensor.CipherMatrix) *hetensor.CipherMatrix
	// TransposeMulCipher returns ⟦Xᵀ·G⟧ for encrypted G.
	TransposeMulCipher(g *hetensor.CipherMatrix) *hetensor.CipherMatrix
	// MulCipherPacked returns ⟦X·W⟧ for packed encrypted W.
	MulCipherPacked(w *hetensor.PackedMatrix) *hetensor.PackedMatrix
	// TransposeMulCipherPacked returns ⟦Xᵀ·G⟧ for packed encrypted G.
	TransposeMulCipherPacked(g *hetensor.PackedMatrix) *hetensor.PackedMatrix
	// TransposeMulCipherAcc accumulates ⟦X[lo:lo+g.Rows]ᵀ·G⟧ into acc for a
	// row-chunk G of the derivative: the unit of the streamed backward pass.
	TransposeMulCipherAcc(acc *hetensor.CipherMatrix, lo int, g *hetensor.CipherMatrix)
	// TransposeMulCipherPackedAcc is TransposeMulCipherAcc over packed chunks.
	TransposeMulCipherPackedAcc(acc *hetensor.PackedMatrix, lo int, g *hetensor.PackedMatrix)
}

// DenseFeatures adapts a dense matrix to the Numeric interface.
type DenseFeatures struct{ M *tensor.Dense }

// Rows returns the batch size.
func (f DenseFeatures) Rows() int { return f.M.Rows }

// NumCols returns the feature dimensionality.
func (f DenseFeatures) NumCols() int { return f.M.Cols }

// MatMul returns X·W.
func (f DenseFeatures) MatMul(w *tensor.Dense) *tensor.Dense { return f.M.MatMul(w) }

// TransposeMatMul returns Xᵀ·G.
func (f DenseFeatures) TransposeMatMul(g *tensor.Dense) *tensor.Dense {
	return f.M.TransposeMatMul(g)
}

// MulCipher returns ⟦X·W⟧.
func (f DenseFeatures) MulCipher(w *hetensor.CipherMatrix) *hetensor.CipherMatrix {
	return hetensor.MulPlainLeft(f.M, w)
}

// TransposeMulCipher returns ⟦Xᵀ·G⟧.
func (f DenseFeatures) TransposeMulCipher(g *hetensor.CipherMatrix) *hetensor.CipherMatrix {
	return hetensor.TransposeMulLeft(f.M, g)
}

// MulCipherPacked returns ⟦X·W⟧ over packed ciphertexts.
func (f DenseFeatures) MulCipherPacked(w *hetensor.PackedMatrix) *hetensor.PackedMatrix {
	return hetensor.MulPlainLeftPacked(f.M, w)
}

// TransposeMulCipherPacked returns ⟦Xᵀ·G⟧ over packed ciphertexts.
func (f DenseFeatures) TransposeMulCipherPacked(g *hetensor.PackedMatrix) *hetensor.PackedMatrix {
	return hetensor.TransposeMulLeftPacked(f.M, g)
}

// TransposeMulCipherAcc accumulates a derivative row-chunk into acc.
func (f DenseFeatures) TransposeMulCipherAcc(acc *hetensor.CipherMatrix, lo int, g *hetensor.CipherMatrix) {
	hetensor.TransposeMulLeftAcc(acc, f.M.RowSlice(lo, lo+g.Rows), g)
}

// TransposeMulCipherPackedAcc accumulates a packed derivative row-chunk.
func (f DenseFeatures) TransposeMulCipherPackedAcc(acc *hetensor.PackedMatrix, lo int, g *hetensor.PackedMatrix) {
	hetensor.TransposeMulLeftPackedAcc(acc, f.M.RowSlice(lo, lo+g.Rows), g)
}

// SparseFeatures adapts a CSR matrix to the Numeric interface.
type SparseFeatures struct{ M *tensor.CSR }

// Rows returns the batch size.
func (f SparseFeatures) Rows() int { return f.M.Rows }

// NumCols returns the feature dimensionality.
func (f SparseFeatures) NumCols() int { return f.M.Cols }

// MatMul returns X·W visiting only non-zeros.
func (f SparseFeatures) MatMul(w *tensor.Dense) *tensor.Dense { return f.M.MatMul(w) }

// TransposeMatMul returns Xᵀ·G visiting only non-zeros.
func (f SparseFeatures) TransposeMatMul(g *tensor.Dense) *tensor.Dense {
	return f.M.TransposeMatMul(g)
}

// MulCipher returns ⟦X·W⟧ visiting only non-zeros.
func (f SparseFeatures) MulCipher(w *hetensor.CipherMatrix) *hetensor.CipherMatrix {
	return hetensor.MulPlainLeftCSR(f.M, w)
}

// TransposeMulCipher returns ⟦Xᵀ·G⟧ visiting only non-zeros.
func (f SparseFeatures) TransposeMulCipher(g *hetensor.CipherMatrix) *hetensor.CipherMatrix {
	return hetensor.TransposeMulLeftCSR(f.M, g)
}

// MulCipherPacked returns ⟦X·W⟧ over packed ciphertexts, visiting only
// non-zeros.
func (f SparseFeatures) MulCipherPacked(w *hetensor.PackedMatrix) *hetensor.PackedMatrix {
	return hetensor.MulPlainLeftCSRPacked(f.M, w)
}

// TransposeMulCipherPacked returns ⟦Xᵀ·G⟧ over packed ciphertexts, visiting
// only non-zeros.
func (f SparseFeatures) TransposeMulCipherPacked(g *hetensor.PackedMatrix) *hetensor.PackedMatrix {
	return hetensor.TransposeMulLeftCSRPacked(f.M, g)
}

// TransposeMulCipherAcc accumulates a derivative row-chunk into acc,
// visiting only the chunk's non-zeros.
func (f SparseFeatures) TransposeMulCipherAcc(acc *hetensor.CipherMatrix, lo int, g *hetensor.CipherMatrix) {
	hetensor.TransposeMulLeftCSRAcc(acc, f.M, lo, g)
}

// TransposeMulCipherPackedAcc accumulates a packed derivative row-chunk.
func (f SparseFeatures) TransposeMulCipherPackedAcc(acc *hetensor.PackedMatrix, lo int, g *hetensor.PackedMatrix) {
	hetensor.TransposeMulLeftCSRPackedAcc(acc, f.M, lo, g)
}
