package core

import (
	"blindfl/internal/hetensor"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// The Embed-MatMul federated source layer (paper Fig. 7) computes
//
//	Z = E_A·W_A + E_B·W_B,  E⋄ = lkup(Q⋄, X⋄)
//
// for categorical features X⋄. Both the embedding tables Q⋄ = S⋄ + T⋄ and
// the matmul weights W⋄ = U⋄ + V⋄ are secret-shared; party ⋄ holds S⋄ and
// U⋄, the other party holds T⋄ and V⋄, and each piece needed homomorphically
// is mirrored as a ciphertext under its generator's key. Lookups over the
// encrypted piece ⟦T⋄⟧ run at party ⋄ (which knows its own indices) and the
// results are converted to secret shares, so neither party ever obtains an
// embedding row, an activation, or a derivative in the clear.

// EmbedConfig extends Config with the embedding geometry of one party.
type EmbedConfig struct {
	Config
	VocabA, VocabB   int // embedding table rows per party
	FieldsA, FieldsB int // categorical fields per party
	Dim              int // embedding dimension
}

// EmbedMatMulA is Party A's half of the Embed-MatMul source layer.
type EmbedMatMulA struct {
	cfg  EmbedConfig
	peer *protocol.Peer

	SA *tensor.Dense // A's piece of Q_A (VocabA×Dim)
	TB *tensor.Dense // A's piece of Q_B (VocabB×Dim)
	UA *tensor.Dense // A's piece of W_A (FieldsA·Dim×Out)
	VB *tensor.Dense // A's piece of W_B (FieldsB·Dim×Out)

	encTA  *hetensor.CipherMatrix // ⟦T_A⟧ under B's key
	packTA *hetensor.PackedMatrix // packed ⟦T_A⟧ when cfg.Packed
	encVA  *hetensor.CipherMatrix // ⟦V_A⟧ under B's key
	encUB  *hetensor.CipherMatrix // ⟦U_B⟧ under B's key

	momSA, momTB, momUA, momVB momentum

	// Forward state cached for the backward pass.
	x      *tensor.IntMatrix
	psiA   *tensor.Dense // ψ_A = ε_A + lkup(S_A, X_A)
	ebmPsi *tensor.Dense // E_B − ψ_B
}

// EmbedMatMulB is Party B's half of the Embed-MatMul source layer.
type EmbedMatMulB struct {
	cfg  EmbedConfig
	peer *protocol.Peer

	SB *tensor.Dense // B's piece of Q_B
	TA *tensor.Dense // B's piece of Q_A
	UB *tensor.Dense // B's piece of W_B
	VA *tensor.Dense // B's piece of W_A

	encTB  *hetensor.CipherMatrix // ⟦T_B⟧ under A's key
	packTB *hetensor.PackedMatrix // packed ⟦T_B⟧ when cfg.Packed
	encVB  *hetensor.CipherMatrix // ⟦V_B⟧ under A's key
	encUA  *hetensor.CipherMatrix // ⟦U_A⟧ under A's key

	momSB, momTA, momUB, momVA momentum

	x      *tensor.IntMatrix
	psiB   *tensor.Dense // ψ_B = ε_B + lkup(S_B, X_B)
	eamPsi *tensor.Dense // E_A − ψ_A
}

// NewEmbedMatMulA initializes Party A's half (Fig. 7 lines 1–4): A draws
// S_A, T_B, U_A, V_B, ships ⟦T_B⟧, ⟦U_A⟧, ⟦V_B⟧ under its own key, and
// receives ⟦T_A⟧, ⟦U_B⟧, ⟦V_A⟧ under B's key.
func NewEmbedMatMulA(p *protocol.Peer, cfg EmbedConfig) *EmbedMatMulA {
	cfg.applyExpEngine()
	s := cfg.initScale()
	l := &EmbedMatMulA{
		cfg: cfg, peer: p,
		SA:    tensor.RandDense(p.Rng, cfg.VocabA, cfg.Dim, s),
		TB:    tensor.RandDense(p.Rng, cfg.VocabB, cfg.Dim, s),
		UA:    tensor.RandDense(p.Rng, cfg.FieldsA*cfg.Dim, cfg.Out, s),
		VB:    tensor.RandDense(p.Rng, cfg.FieldsB*cfg.Dim, cfg.Out, s),
		momSA: momentum{mu: cfg.Momentum}, momTB: momentum{mu: cfg.Momentum},
		momUA: momentum{mu: cfg.Momentum}, momVB: momentum{mu: cfg.Momentum},
	}
	if cfg.Packed {
		encryptAndSendPacked(p, cfg.Stream, l.TB, 1)
	} else {
		encryptAndSend(p, cfg.Stream, l.TB, 1)
	}
	encryptAndSend(p, cfg.Stream, l.UA, 1)
	encryptAndSend(p, cfg.Stream, l.VB, 1)
	if cfg.Packed {
		l.packTA = recvPacked(p, cfg.Stream)
	} else {
		l.encTA = recvCipher(p, cfg.Stream)
	}
	l.encUB = recvCipher(p, cfg.Stream)
	l.encVA = recvCipher(p, cfg.Stream)
	return l
}

// NewEmbedMatMulB initializes Party B's half, symmetric to NewEmbedMatMulA.
func NewEmbedMatMulB(p *protocol.Peer, cfg EmbedConfig) *EmbedMatMulB {
	cfg.applyExpEngine()
	s := cfg.initScale()
	l := &EmbedMatMulB{
		cfg: cfg, peer: p,
		SB:    tensor.RandDense(p.Rng, cfg.VocabB, cfg.Dim, s),
		TA:    tensor.RandDense(p.Rng, cfg.VocabA, cfg.Dim, s),
		UB:    tensor.RandDense(p.Rng, cfg.FieldsB*cfg.Dim, cfg.Out, s),
		VA:    tensor.RandDense(p.Rng, cfg.FieldsA*cfg.Dim, cfg.Out, s),
		momSB: momentum{mu: cfg.Momentum}, momTA: momentum{mu: cfg.Momentum},
		momUB: momentum{mu: cfg.Momentum}, momVA: momentum{mu: cfg.Momentum},
	}
	if cfg.Packed {
		l.packTB = recvPacked(p, cfg.Stream)
	} else {
		l.encTB = recvCipher(p, cfg.Stream)
	}
	l.encUA = recvCipher(p, cfg.Stream)
	l.encVB = recvCipher(p, cfg.Stream)
	if cfg.Packed {
		encryptAndSendPacked(p, cfg.Stream, l.TA, 1)
	} else {
		encryptAndSend(p, cfg.Stream, l.TA, 1)
	}
	encryptAndSend(p, cfg.Stream, l.UB, 1)
	encryptAndSend(p, cfg.Stream, l.VA, 1)
	return l
}

// embedStage runs Fig. 7 lines 5–7 for one party: lookup over the encrypted
// peer-generated piece ⟦T⟧ with the local indices, convert to shares, and
// assemble ψ = ε + lkup(S, X). It returns ψ (this party's share of its own
// E) and the peer's complementary share E' − ψ' obtained from HE2SS.
func embedStage(p *protocol.Peer, stream bool, encT *hetensor.CipherMatrix, s *tensor.Dense, x *tensor.IntMatrix) (psi, otherShare *tensor.Dense) {
	encLk := hetensor.Lookup(encT, x)  // ⟦lkup(T, X)⟧ under the peer's key
	eps := he2ssSend(p, stream, encLk) // peer receives lkup(T, X) − ε
	otherShare = he2ssRecv(p, stream)  // this party's share of the peer's E
	psi = eps.Add(tensor.Lookup(s, x))
	return psi, otherShare
}

// embedStagePacked is embedStage over a packed table: the lookup gathers
// packed rows and the HE2SS conversion masks K lanes per blinding
// exponentiation. The table's per-row lane layout carries through the
// batch×(fields·dim) lookup result (Block = dim).
func embedStagePacked(p *protocol.Peer, stream bool, packT *hetensor.PackedMatrix, s *tensor.Dense, x *tensor.IntMatrix) (psi, otherShare *tensor.Dense) {
	encLk := hetensor.LookupPacked(packT, x)
	eps := he2ssSendPacked(p, stream, encLk)
	otherShare = he2ssRecvPacked(p, stream)
	psi = eps.Add(tensor.Lookup(s, x))
	return psi, otherShare
}

// Forward runs Party A's forward pass (Fig. 7 lines 5–11). A outputs
// nothing; its share Z'_A is shipped to B.
func (l *EmbedMatMulA) Forward(x *tensor.IntMatrix) {
	l.x = x
	var psiA, ebmPsi *tensor.Dense
	if l.cfg.Packed {
		psiA, ebmPsi = embedStagePacked(l.peer, l.cfg.Stream, l.packTA, l.SA, x)
	} else {
		psiA, ebmPsi = embedStage(l.peer, l.cfg.Stream, l.encTA, l.SA, x)
	}
	l.psiA, l.ebmPsi = psiA, ebmPsi

	// Line 8: Z'_1,A = MatMulFw(ψ_A, U_A, ⟦V_A⟧).
	z1 := forwardHalf(l.peer, l.cfg.Stream, DenseFeatures{psiA}, l.UA, l.encVA)
	// Line 9: Z'_2,A = MatMulFw(E_B−ψ_B, V_B, ⟦U_B⟧).
	z2 := forwardHalf(l.peer, l.cfg.Stream, DenseFeatures{ebmPsi}, l.VB, l.encUB)

	z1.AddInPlace(z2)
	l.peer.Send(z1) // line 10: ship Z'_A
}

// Forward runs Party B's forward pass and returns Z = E_A·W_A + E_B·W_B.
func (l *EmbedMatMulB) Forward(x *tensor.IntMatrix) *tensor.Dense {
	l.x = x
	var psiB, eamPsi *tensor.Dense
	if l.cfg.Packed {
		psiB, eamPsi = embedStagePacked(l.peer, l.cfg.Stream, l.packTB, l.SB, x)
	} else {
		psiB, eamPsi = embedStage(l.peer, l.cfg.Stream, l.encTB, l.SB, x)
	}
	l.psiB, l.eamPsi = psiB, eamPsi

	z1 := forwardHalf(l.peer, l.cfg.Stream, DenseFeatures{psiB}, l.UB, l.encVB)
	z2 := forwardHalf(l.peer, l.cfg.Stream, DenseFeatures{eamPsi}, l.VA, l.encUA)

	z1.AddInPlace(z2)
	zA := l.peer.RecvDense()
	return z1.Add(zA)
}

// Backward runs Party A's backward pass (Fig. 7 lines 12–26).
func (l *EmbedMatMulA) Backward() {
	p, stream := l.peer, l.cfg.Stream
	// Line 12: receive ⟦∇Z⟧ and ⟦∇Z·V_Aᵀ⟧ under B's key.
	encGradZ := recvCipher(p, stream)
	encGradZVAT := recvCipher(p, stream)

	// Line 21, first term: ⟦∇Z⟧·U_Aᵀ must use the forward-pass U_A, so it
	// is computed before the MatMul-part update below touches U_A.
	encGradEA := hetensor.MulPlainRightTranspose(encGradZ, l.UA).AddCipher(encGradZVAT)

	// --- Backward of the MatMul part (lines 13–20) ---
	// ∇W_A = ψ_Aᵀ∇Z + (E_A−ψ_A)ᵀ∇Z; A computes the first term encrypted.
	phi := he2ssSend(p, stream, hetensor.TransposeMulLeft(l.psiA, encGradZ))
	l.momUA.step(l.UA, phi, l.cfg.LR)

	// ∇W_B = ψ_Bᵀ∇Z + (E_B−ψ_B)ᵀ∇Z; A computes the second term encrypted.
	xi := he2ssSend(p, stream, hetensor.TransposeMulLeft(l.ebmPsi, encGradZ))
	l.momVB.step(l.VB, xi, l.cfg.LR)

	// Refresh the encrypted weight copies (U_A changed here; V_A at B).
	encryptAndSend(p, stream, l.UA, 1)
	encryptAndSend(p, stream, l.VB, 1)
	l.encVA = recvCipher(p, stream)
	l.encUB = recvCipher(p, stream)

	// --- Backward of the Embed part (lines 21–26) ---
	// ⟦∇E_A⟧ = ⟦∇Z⟧·U_Aᵀ + ⟦∇Z·V_Aᵀ⟧ (computed above with forward weights).
	encGradQA := hetensor.LookupBackward(encGradEA, l.x, l.cfg.VocabA, l.cfg.Dim)
	rhoA := he2ssSend(p, stream, encGradQA) // B receives ∇Q_A − ρ_A
	l.momSA.step(l.SA, rhoA, l.cfg.LR)

	// Symmetric for Q_B: B ships the masked ⟦∇Q_B − ρ_B⟧ under A's key.
	gradTBshare := he2ssRecv(p, stream) // ∇Q_B − ρ_B
	l.momTB.step(l.TB, gradTBshare, l.cfg.LR)

	// Refresh encrypted table copies: T_B changed here, T_A at B.
	if l.cfg.Packed {
		encryptAndSendPacked(p, stream, l.TB, 1)
		l.packTA = recvPacked(p, stream)
	} else {
		encryptAndSend(p, stream, l.TB, 1)
		l.encTA = recvCipher(p, stream)
	}

	l.x, l.psiA, l.ebmPsi = nil, nil, nil
}

// Backward runs Party B's backward pass given the top model's ∇Z.
func (l *EmbedMatMulB) Backward(gradZ *tensor.Dense) {
	p, stream := l.peer, l.cfg.Stream
	// Line 12: encrypt and ship ∇Z and ∇Z·V_Aᵀ under B's own key. The
	// product is computed in plaintext (B holds both operands) and
	// encrypted at scale 2 so A can add it to its scale-2 ⟦∇Z⟧·U_Aᵀ term.
	encryptAndSend(p, stream, gradZ, 1)
	gradZVAT := gradZ.MatMulTranspose(l.VA)
	encryptAndSend(p, stream, gradZVAT, 2)

	// The Embed-part derivative ⟦∇E_B⟧ = Enc_A(∇Z·U_Bᵀ) + ∇Z·⟦V_B⟧ᵀ must
	// use the forward-pass U_B and ⟦V_B⟧, so both terms are computed before
	// the MatMul-part update and refresh below replace them.
	encGradEB := hetensor.Encrypt(p.PeerPK, gradZ.MatMulTranspose(l.UB), 2).
		AddCipher(hetensor.MulPlainLeftTransposeRight(gradZ, l.encVB))

	// --- Backward of the MatMul part ---
	// ∇W_A − φ = (E_A−ψ_A)ᵀ∇Z + (ψ_Aᵀ∇Z − φ).
	gradWAshare := l.eamPsi.TransposeMatMul(gradZ).Add(he2ssRecv(p, stream))
	l.momVA.step(l.VA, gradWAshare, l.cfg.LR)

	// ∇W_B − ξ = ψ_Bᵀ∇Z + ((E_B−ψ_B)ᵀ∇Z − ξ).
	gradWBshare := l.psiB.TransposeMatMul(gradZ).Add(he2ssRecv(p, stream))
	l.momUB.step(l.UB, gradWBshare, l.cfg.LR)

	// Refresh encrypted weight copies.
	l.encUA = recvCipher(p, stream)
	l.encVB = recvCipher(p, stream)
	encryptAndSend(p, stream, l.VA, 1)
	encryptAndSend(p, stream, l.UB, 1)

	// --- Backward of the Embed part ---
	// B's share of ∇Q_A arrives masked from A.
	gradTAshare := he2ssRecv(p, stream) // ∇Q_A − ρ_A
	l.momTA.step(l.TA, gradTAshare, l.cfg.LR)

	encGradQB := hetensor.LookupBackward(encGradEB, l.x, l.cfg.VocabB, l.cfg.Dim)
	rhoB := he2ssSend(p, stream, encGradQB) // A receives ∇Q_B − ρ_B
	l.momSB.step(l.SB, rhoB, l.cfg.LR)

	// Refresh encrypted table copies.
	if l.cfg.Packed {
		l.packTB = recvPacked(p, stream)
		encryptAndSendPacked(p, stream, l.TA, 1)
	} else {
		l.encTB = recvCipher(p, stream)
		encryptAndSend(p, stream, l.TA, 1)
	}

	l.x, l.psiB, l.eamPsi = nil, nil, nil
}

// DebugTableA reconstructs Q_A = S_A + T_A. Test use only.
func DebugTableA(a *EmbedMatMulA, b *EmbedMatMulB) *tensor.Dense { return a.SA.Add(b.TA) }

// DebugTableB reconstructs Q_B = S_B + T_B. Test use only.
func DebugTableB(a *EmbedMatMulA, b *EmbedMatMulB) *tensor.Dense { return b.SB.Add(a.TB) }

// DebugEmbedWeightsA reconstructs W_A = U_A + V_A. Test use only.
func DebugEmbedWeightsA(a *EmbedMatMulA, b *EmbedMatMulB) *tensor.Dense { return a.UA.Add(b.VA) }

// DebugEmbedWeightsB reconstructs W_B = U_B + V_B. Test use only.
func DebugEmbedWeightsB(a *EmbedMatMulA, b *EmbedMatMulB) *tensor.Dense { return b.UB.Add(a.VB) }

// PieceSA exposes Party A's share of its embedding table for the Fig. 11
// share-divergence experiment.
func (l *EmbedMatMulA) PieceSA() *tensor.Dense { return l.SA }
