package core

import (
	"math"
	"math/rand"
	"testing"

	"blindfl/internal/nn"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// TestFederatedLinearRegression demonstrates the "generalized linear
// models" breadth the paper claims for the source layers (Sec. 4.1): the
// same MatMul protocol with an MSE top loss solves least squares without
// any change to the federated machinery.
func TestFederatedLinearRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("federated linreg training skipped in -short")
	}
	pa, pb := pipe(t, 950)
	cfg := Config{Out: 1, LR: 0.25}
	const inA, inB, n = 4, 4, 64
	la, lb := newMatMulPair(t, pa, pb, cfg, inA, inB)

	rng := rand.New(rand.NewSource(1))
	xA := tensor.RandDense(rng, n, inA, 1)
	xB := tensor.RandDense(rng, n, inB, 1)
	trueW := tensor.RandDense(rng, inA+inB, 1, 1)
	joint := tensor.HStack(xA, xB)
	target := joint.MatMul(trueW)
	y := make([]float64, n)
	for i := range y {
		y[i] = target.At(i, 0) + 0.01*rng.NormFloat64()
	}

	var lastLoss float64
	for epoch := 0; epoch < 15; epoch++ {
		var pred *tensor.Dense
		if err := protocol.RunParties(pa, pb,
			func() { la.Forward(DenseFeatures{xA}); la.Backward() },
			func() {
				pred = lb.Forward(DenseFeatures{xB})
				loss, grad := nn.MSE(pred, y)
				lastLoss = loss
				lb.Backward(grad)
			}); err != nil {
			t.Fatal(err)
		}
	}
	if lastLoss > 0.05 {
		t.Fatalf("federated least squares did not converge: MSE %v", lastLoss)
	}
	// The reconstructed weights approximate the generating model.
	got := tensor.HStack(DebugWeightsA(la, lb).Transpose(), DebugWeightsB(la, lb).Transpose()).Transpose()
	maxErr := 0.0
	for i := range trueW.Data {
		if d := math.Abs(got.Data[i] - trueW.Data[i]); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 0.2 {
		t.Fatalf("recovered weights off by %v", maxErr)
	}
}
