package core

import (
	"math/rand"
	"testing"

	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

func newSparsePair(t testing.TB, pa, pb *protocol.Peer, cfg Config, inA, inB int) (*SparseMatMulA, *SparseMatMulB) {
	t.Helper()
	la := NewSparseMatMulA(pa, cfg, inA, inB)
	lb := NewSparseMatMulB(pb, cfg, inA, inB)
	return la, lb
}

func TestSparseMatMulForwardMatchesPlaintext(t *testing.T) {
	pa, pb := pipe(t, 300)
	cfg := Config{Out: 2, LR: 0.1}
	la, lb := newSparsePair(t, pa, pb, cfg, 40, 30)

	rng := rand.New(rand.NewSource(1))
	xA := tensor.RandCSR(rng, 6, 40, 4)
	xB := tensor.RandCSR(rng, 6, 30, 3)

	want := xA.ToDense().MatMul(DebugSparseWeightsA(la, lb)).
		Add(xB.ToDense().MatMul(DebugSparseWeightsB(la, lb)))

	var z *tensor.Dense
	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(xA) },
		func() { z = lb.Forward(xB) },
	); err != nil {
		t.Fatal(err)
	}
	if !z.Equal(want, 1e-5) {
		t.Fatalf("sparse federated Z diverges (maxdiff %g)", z.Sub(want).MaxAbs())
	}
}

func TestSparseMatMulBackwardMatchesSGD(t *testing.T) {
	pa, pb := pipe(t, 301)
	cfg := Config{Out: 2, LR: 0.05}
	la, lb := newSparsePair(t, pa, pb, cfg, 25, 20)

	rng := rand.New(rand.NewSource(2))
	xA := tensor.RandCSR(rng, 5, 25, 3)
	xB := tensor.RandCSR(rng, 5, 20, 3)
	gradZ := tensor.RandDense(rng, 5, 2, 1)

	wantWA := DebugSparseWeightsA(la, lb).Sub(xA.ToDense().Transpose().MatMul(gradZ).Scale(cfg.LR))
	wantWB := DebugSparseWeightsB(la, lb).Sub(xB.ToDense().Transpose().MatMul(gradZ).Scale(cfg.LR))

	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(xA); la.Backward() },
		func() { lb.Forward(xB); lb.Backward(gradZ) },
	); err != nil {
		t.Fatal(err)
	}
	if got := DebugSparseWeightsA(la, lb); !got.Equal(wantWA, 1e-4) {
		t.Fatalf("sparse W_A update wrong (maxdiff %g)", got.Sub(wantWA).MaxAbs())
	}
	if got := DebugSparseWeightsB(la, lb); !got.Equal(wantWB, 1e-4) {
		t.Fatalf("sparse W_B update wrong (maxdiff %g)", got.Sub(wantWB).MaxAbs())
	}
}

func TestSparseMatMulMultiStepConsistency(t *testing.T) {
	// The row cache must stay coherent across steps: refreshed rows replace
	// stale ciphertexts and untouched rows stay valid.
	pa, pb := pipe(t, 302)
	cfg := Config{Out: 1, LR: 0.1}
	la, lb := newSparsePair(t, pa, pb, cfg, 30, 30)

	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 4; step++ {
		xA := tensor.RandCSR(rng, 4, 30, 3)
		xB := tensor.RandCSR(rng, 4, 30, 3)
		gradZ := tensor.RandDense(rng, 4, 1, 1)
		want := xA.ToDense().MatMul(DebugSparseWeightsA(la, lb)).
			Add(xB.ToDense().MatMul(DebugSparseWeightsB(la, lb)))
		var z *tensor.Dense
		if err := protocol.RunParties(pa, pb,
			func() { la.Forward(xA); la.Backward() },
			func() { z = lb.Forward(xB); lb.Backward(gradZ) },
		); err != nil {
			t.Fatal(err)
		}
		if !z.Equal(want, 1e-4) {
			t.Fatalf("step %d: sparse forward inconsistent (maxdiff %g)", step, z.Sub(want).MaxAbs())
		}
	}
}

func TestSparseMatMulCacheGrowsOnlyWithTouchedRows(t *testing.T) {
	pa, pb := pipe(t, 303)
	cfg := Config{Out: 1, LR: 0.1}
	la, lb := newSparsePair(t, pa, pb, cfg, 1000, 1000)

	rng := rand.New(rand.NewSource(4))
	xA := tensor.RandCSR(rng, 4, 1000, 2) // at most 8 touched of 1000
	xB := tensor.RandCSR(rng, 4, 1000, 2)
	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(xA); la.Backward() },
		func() { lb.Forward(xB); lb.Backward(tensor.NewDense(4, 1)) },
	); err != nil {
		t.Fatal(err)
	}
	if n := len(la.cacheVA.cache); n > 8 {
		t.Fatalf("cache holds %d rows; expected ≤ 8 touched", n)
	}
	if n := len(lb.cacheVB.cache); n > 8 {
		t.Fatalf("peer cache holds %d rows; expected ≤ 8 touched", n)
	}
}

func TestSparseMatMulMomentumMatchesLazySGD(t *testing.T) {
	pa, pb := pipe(t, 304)
	cfg := Config{Out: 1, LR: 0.1, Momentum: 0.9}
	la, lb := newSparsePair(t, pa, pb, cfg, 10, 10)

	rng := rand.New(rand.NewSource(5))
	// Reference: lazy momentum on the reconstructed weights.
	wA := DebugSparseWeightsA(la, lb)
	buf := tensor.NewDense(10, 1)

	for step := 0; step < 3; step++ {
		xA := tensor.RandCSR(rng, 3, 10, 2)
		xB := tensor.RandCSR(rng, 3, 10, 2)
		gradZ := tensor.RandDense(rng, 3, 1, 1)

		gA := xA.TransposeMatMul(gradZ)
		for _, k := range touchedCols(xA) {
			buf.Set(k, 0, 0.9*buf.At(k, 0)+gA.At(k, 0))
			wA.Set(k, 0, wA.At(k, 0)-cfg.LR*buf.At(k, 0))
		}

		if err := protocol.RunParties(pa, pb,
			func() { la.Forward(xA); la.Backward() },
			func() { lb.Forward(xB); lb.Backward(gradZ) },
		); err != nil {
			t.Fatal(err)
		}
	}
	if got := DebugSparseWeightsA(la, lb); !got.Equal(wA, 1e-3) {
		t.Fatalf("lazy momentum diverged (maxdiff %g)", got.Sub(wA).MaxAbs())
	}
}
