package core

import (
	"math/rand"
	"testing"

	"blindfl/internal/attack"
	"blindfl/internal/data"
	"blindfl/internal/nn"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// These integration tests verify the BlindFL side of the paper's Sec. 7.2
// experiments: the attacks that succeed against split learning (see
// internal/splitlearn's tests) must fail against the federated source
// layers.

// TestFigure9BlindFLActivationAttackIsChance trains a federated LR and
// checks that Party A predicting labels with X_A·U_A — everything it can
// compute locally — performs at chance level, while the full model learns.
func TestFigure9BlindFLActivationAttackIsChance(t *testing.T) {
	if testing.Short() {
		t.Skip("attack training skipped in -short")
	}
	spec := data.Spec{Name: "fig9", Feats: 40, AvgNNZ: 6, Classes: 2,
		Train: 256, Test: 256, Margin: 6}
	ds := data.Generate(spec, 91)

	pa, pb := pipe(t, 900)
	cfg := Config{Out: 1, LR: 0.2, Momentum: 0.9}
	inA, inB := ds.TrainA.NumCols(), ds.TrainB.NumCols()
	la := NewSparseMatMulA(pa, cfg, inA, inB)
	lb := NewSparseMatMulB(pb, cfg, inA, inB)
	bias := nn.NewBias(1)
	opt := nn.NewSGD(cfg.LR, cfg.Momentum, bias.Params())

	var fullAUC float64
	for e := 0; e < 6; e++ {
		for _, idx := range data.BatchIndices(spec.Train, 64) {
			y := gatherY(ds.TrainY, idx)
			if err := protocol.RunParties(pa, pb,
				func() { la.Forward(ds.TrainA.Batch(idx).Sparse); la.Backward() },
				func() {
					z := lb.Forward(ds.TrainB.Batch(idx).Sparse)
					_, grad := nn.BCEWithLogits(bias.Forward(z), y)
					opt.ZeroGrad()
					gz := bias.Backward(grad)
					opt.Step()
					lb.Backward(gz)
				}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Full model metric (reconstructed for evaluation only).
	wA := DebugSparseWeightsA(la, lb)
	wB := DebugSparseWeightsB(la, lb)
	full := ds.TestA.Sparse.MatMul(wA).Add(ds.TestB.Sparse.MatMul(wB))
	fullAUC = nn.AUC(nn.Scores(full), ds.TestY)
	if fullAUC < 0.8 {
		t.Fatalf("full model AUC %v: training failed, attack comparison meaningless", fullAUC)
	}

	// Party A's attack with its piece: must be ≈ 0.5.
	local := ds.TestA.Sparse.MatMul(la.DebugUA())
	attackAUC := attack.ActivationAUC(local, ds.TestY)
	if attackAUC > 0.62 {
		t.Fatalf("Party A's X_A·U_A attack reaches AUC %v (full model %v); labels leak", attackAUC, fullAUC)
	}
}

// TestFigure11SharesHideWeights checks the Fig. 11 property on a trained
// MatMul layer: the share is uncorrelated with the weights and far larger.
func TestFigure11SharesHideWeights(t *testing.T) {
	if testing.Short() {
		t.Skip("share-divergence training skipped in -short")
	}
	pa, pb := pipe(t, 901)
	cfg := Config{Out: 1, LR: 0.1, Momentum: 0.9}
	la, lb := newMatMulPair(t, pa, pb, cfg, 30, 30)

	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 4; step++ {
		xA := tensor.RandDense(rng, 16, 30, 1)
		xB := tensor.RandDense(rng, 16, 30, 1)
		g := tensor.RandDense(rng, 16, 1, 0.1)
		if err := protocol.RunParties(pa, pb,
			func() { la.Forward(DenseFeatures{xA}); la.Backward() },
			func() { lb.Forward(DenseFeatures{xB}); lb.Backward(g) },
		); err != nil {
			t.Fatal(err)
		}
	}
	wA := DebugWeightsA(la, lb)
	st := attack.CompareShares(wA, la.PieceUA())
	if st.ShareMaxAbs < 100*st.TrueMaxAbs {
		t.Fatalf("share spread %v vs truth %v: masking too weak", st.ShareMaxAbs, st.TrueMaxAbs)
	}
	if st.Correlation > 0.5 || st.Correlation < -0.5 {
		t.Fatalf("share correlates with weights: %v", st.Correlation)
	}
}

// TestPartyAForwardShareCarriesNoLabelSignal: the Z'_A share Party B
// receives is dominated by masks, so even the label-holding party cannot
// learn Party A's per-instance activations from it; symmetrically, Party
// A's ε share reveals nothing. Here we check mask dominance directly.
func TestPartyAForwardShareCarriesNoLabelSignal(t *testing.T) {
	pa, pb := pipe(t, 902)
	cfg := Config{Out: 1, LR: 0.1}
	la, lb := newMatMulPair(t, pa, pb, cfg, 10, 10)

	rng := rand.New(rand.NewSource(10))
	xA := tensor.RandDense(rng, 8, 10, 1)
	xB := tensor.RandDense(rng, 8, 10, 1)
	trueZA := xA.MatMul(DebugWeightsA(la, lb))

	var zA *tensor.Dense
	if err := protocol.RunParties(pa, pb,
		func() { zA = la.ForwardSS(DenseFeatures{xA}) },
		func() { lb.ForwardSS(DenseFeatures{xB}) },
	); err != nil {
		t.Fatal(err)
	}
	// zA = X_A·U_A + ε_A + (X_B·V_B − ε_B): mask-dominated, far from X_A·W_A.
	if zA.Sub(trueZA).MaxAbs() < 1000 {
		t.Fatal("Party A's share approximates its true activation; masks ineffective")
	}
}

func gatherY(y []int, idx []int) []int {
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}
