package core

import (
	"sort"

	"blindfl/internal/hetensor"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// Sparse MatMul source layer.
//
// The dense protocol of matmul.go exchanges the full encrypted weight pieces,
// which is intractable for the paper's high-dimensional workloads (avazu-app
// has 10⁶ features, the industrial dataset 10⁷). This file implements the
// sparse variant that gives BlindFL its Table 5 results: each mini-batch
// only touches the weight coordinates whose feature columns have non-zeros,
// so
//
//   - encrypted weight rows ⟦V[k]⟧ are materialized on demand by the piece
//     holder and cached by the consumer;
//   - the homomorphic gradient ⟦∇W[touched]⟧ and its HE2SS conversion cover
//     only the touched rows;
//   - only the updated rows of ⟦V_A⟧ are re-encrypted after the step.
//
// The touched-coordinate sets cross the wire in the clear. This reveals
// which of a party's (privately indexed) feature columns were active in the
// batch — the inherent cost of sparsity-exploiting VFL that the paper
// accepts in exchange for its >50× speedups; the coordinate identities still
// say nothing about feature values, weights, activations, or labels.

// SparseMatMulA is Party A's half of the sparse MatMul source layer.
type SparseMatMulA struct {
	cfg  Config
	peer *protocol.Peer

	UA *tensor.Dense // A's piece of W_A (InA×Out)
	VB *tensor.Dense // A's piece of W_B (InB×Out), served to B row by row

	cacheVA *rowCache // lazily materialized ⟦V_A⟧ rows under B's key

	momUA momentum

	x       *tensor.CSR
	touched []int
}

// SparseMatMulB is Party B's half of the sparse MatMul source layer.
type SparseMatMulB struct {
	cfg  Config
	peer *protocol.Peer

	UB *tensor.Dense // B's piece of W_B (InB×Out)
	VA *tensor.Dense // B's piece of W_A (InA×Out)

	cacheVB *rowCache // lazily materialized ⟦V_B⟧ rows under A's key

	momUB momentum
	momVA momentum

	x *tensor.CSR
}

// rowCache holds encrypted weight rows indexed by coordinate.
type rowCache struct {
	rows  int
	cols  int
	pk    *paillier.PublicKey
	cache map[int][]*paillier.Ciphertext
}

func newRowCache(rows, cols int) *rowCache {
	return &rowCache{rows: rows, cols: cols, cache: make(map[int][]*paillier.Ciphertext)}
}

// missing returns the touched coordinates not yet cached.
func (rc *rowCache) missing(touched []int) []int {
	var out []int
	for _, k := range touched {
		if _, ok := rc.cache[k]; !ok {
			out = append(out, k)
		}
	}
	return out
}

// fill stores the received cipher rows for the given coordinates.
func (rc *rowCache) fill(idx []int, m *hetensor.CipherMatrix) {
	rc.pk = m.PK
	for i, k := range idx {
		rc.cache[k] = m.Row(i)
	}
}

// matrixFor assembles a full-height CipherMatrix view whose touched rows
// point at cached ciphertexts; untouched rows stay nil and must not be
// accessed (the sparse matmuls index only non-zero columns).
func (rc *rowCache) matrixFor() *hetensor.CipherMatrix {
	m := &hetensor.CipherMatrix{Rows: rc.rows, Cols: rc.cols, Scale: 1, PK: rc.pk,
		C: make([]*paillier.Ciphertext, rc.rows*rc.cols)}
	for k, row := range rc.cache {
		copy(m.Row(k), row)
	}
	return m
}

// touchedCols returns the sorted union of non-zero column indices of x.
func touchedCols(x *tensor.CSR) []int {
	seen := make(map[int]bool)
	for _, k := range x.ColIdx {
		seen[k] = true
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// NewSparseMatMulA initializes Party A's half. Unlike the dense layer no
// encrypted pieces are exchanged up front; rows are served on demand.
func NewSparseMatMulA(p *protocol.Peer, cfg Config, inA, inB int) *SparseMatMulA {
	cfg.applyExpEngine()
	s := cfg.initScale()
	return &SparseMatMulA{
		cfg: cfg, peer: p,
		UA:      tensor.RandDense(p.Rng, inA, cfg.Out, s),
		VB:      tensor.RandDense(p.Rng, inB, cfg.Out, s/cfg.groupPieceDiv()),
		cacheVA: newRowCache(inA, cfg.Out),
		momUA:   momentum{mu: cfg.Momentum},
	}
}

// NewSparseMatMulB initializes Party B's half.
func NewSparseMatMulB(p *protocol.Peer, cfg Config, inA, inB int) *SparseMatMulB {
	cfg.applyExpEngine()
	s := cfg.initScale()
	return &SparseMatMulB{
		cfg: cfg, peer: p,
		UB:      tensor.RandDense(p.Rng, inB, cfg.Out, s/cfg.groupPieceDiv()),
		VA:      tensor.RandDense(p.Rng, inA, cfg.Out, s),
		cacheVB: newRowCache(inB, cfg.Out),
		momUB:   momentum{mu: cfg.Momentum},
		momVA:   momentum{mu: cfg.Momentum},
	}
}

// sparseForwardHalf mirrors forwardHalf with on-demand cipher rows: request
// missing ⟦V⟧ rows, serve the peer's request against the piece this party
// holds for the peer, then run the masked-product exchange.
func sparseForwardHalf(p *protocol.Peer, x *tensor.CSR, touched []int, u, servePiece *tensor.Dense, cache *rowCache) *tensor.Dense {
	missing := cache.missing(touched)
	p.Send(missing)
	peerMissing := p.RecvInts()
	p.Send(hetensor.EncryptRows(&p.SK.PublicKey, servePiece, peerMissing, 1))
	got := p.RecvCipher()
	cache.fill(missing, got)

	prod := hetensor.MulPlainLeftCSR(x, cache.matrixFor()) // ⟦x·V⟧, scale 2
	eps := p.HE2SSSend(prod)
	other := p.HE2SSRecv()
	z := x.MatMul(u)
	z.AddInPlace(eps)
	z.AddInPlace(other)
	return z
}

// Forward runs Party A's sparse forward pass.
func (l *SparseMatMulA) Forward(x *tensor.CSR) {
	l.x = x
	l.touched = touchedCols(x)
	zA := sparseForwardHalf(l.peer, x, l.touched, l.UA, l.VB, l.cacheVA)
	l.peer.Send(zA)
}

// Forward runs Party B's sparse forward pass and returns Z.
func (l *SparseMatMulB) Forward(x *tensor.CSR) *tensor.Dense {
	l.x = x
	zB := sparseForwardHalf(l.peer, x, touchedCols(x), l.UB, l.VA, l.cacheVB)
	zA := l.peer.RecvDense()
	return zA.Add(zB)
}

// Backward runs Party A's sparse backward pass: the gradient, its masking,
// the update of U_A, and the cache refresh all touch only the batch's
// active coordinates.
func (l *SparseMatMulA) Backward() {
	p := l.peer
	encGradZ := p.RecvCipher()
	encGradSub := hetensor.TransposeMulLeftCSRSubset(l.x, encGradZ, l.touched)
	p.Send(l.touched)
	phi := p.HE2SSSend(encGradSub) // len(touched)×Out share

	// Sparse momentum update of the touched rows of U_A.
	l.momUA.stepRows(l.UA, phi, l.touched, l.cfg.LR)

	// Refresh the cache for the rows B just updated.
	fresh := p.RecvCipher()
	l.cacheVA.fill(l.touched, fresh)

	l.x, l.touched = nil, nil
}

// Backward runs Party B's sparse backward pass.
func (l *SparseMatMulB) Backward(gradZ *tensor.Dense) { l.backwardMulti(gradZ, gradZ) }

// backwardMulti is Backward with separate local/cross-party gradients, the
// sparse counterpart of MatMulB.backwardMulti: a k-session group passes ∇Z/k
// as gradLocal so the k U_B(i) updates sum to one step of W_B, while the
// touched-coordinate exchange and V_A update see the true ∇Z.
func (l *SparseMatMulB) backwardMulti(gradFull, gradLocal *tensor.Dense) {
	p := l.peer

	// Local sparse update of U_B: only B's own touched coordinates move.
	touchedB := touchedCols(l.x)
	gradUB := l.x.TransposeMatMul(gradLocal) // rows outside touchedB are zero
	l.momUB.stepRows(l.UB, gatherRows(gradUB, touchedB), touchedB, l.cfg.LR)

	p.EncryptAndSend(gradFull, 1)
	touchedA := p.RecvInts()
	gradVAshare := p.HE2SSRecv() // len(touchedA)×Out: ∇W_A[touched] − φ
	l.momVA.stepRows(l.VA, gradVAshare, touchedA, l.cfg.LR)

	// Re-encrypt only the updated rows of V_A for A's cache.
	p.Send(hetensor.EncryptRows(&p.SK.PublicKey, l.VA, touchedA, 1))
	l.x = nil
}

func gatherRows(d *tensor.Dense, idx []int) *tensor.Dense { return d.GatherRows(idx) }

// DebugUA exposes Party A's share of W_A for the Fig. 9/11 privacy
// experiments (A predicting with X_A·U_A must be a random guess).
func (l *SparseMatMulA) DebugUA() *tensor.Dense { return l.UA }

// DebugSparseWeightsA reconstructs W_A. Test use only.
func DebugSparseWeightsA(a *SparseMatMulA, b *SparseMatMulB) *tensor.Dense { return a.UA.Add(b.VA) }

// DebugSparseWeightsB reconstructs W_B. Test use only.
func DebugSparseWeightsB(a *SparseMatMulA, b *SparseMatMulB) *tensor.Dense { return b.UB.Add(a.VB) }
