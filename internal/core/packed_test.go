package core

import (
	"bytes"
	"math/rand"
	"testing"

	"blindfl/internal/engine"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// The packed source layers must agree with the unpacked protocol — which the
// sibling tests pin against plaintext training — to fixed-point tolerance.

func TestPackedMatMulForwardMatchesPlaintext(t *testing.T) {
	pa, pb := pipe(t, 700)
	cfg := Config{Out: 3, LR: 0.1, Options: engine.Options{Packed: true}}
	la, lb := newMatMulPair(t, pa, pb, cfg, 5, 4)

	rng := rand.New(rand.NewSource(1))
	xA := tensor.RandDense(rng, 6, 5, 1)
	xB := tensor.RandDense(rng, 6, 4, 1)

	want := xA.MatMul(DebugWeightsA(la, lb)).Add(xB.MatMul(DebugWeightsB(la, lb)))
	var z *tensor.Dense
	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(DenseFeatures{xA}) },
		func() { z = lb.Forward(DenseFeatures{xB}) },
	); err != nil {
		t.Fatal(err)
	}
	if !z.Equal(want, 1e-4) {
		t.Fatalf("packed federated Z diverges from plaintext:\n got %v\nwant %v", z.Data, want.Data)
	}
}

func TestPackedMatMulForwardSparseMatchesDense(t *testing.T) {
	pa, pb := pipe(t, 701)
	cfg := Config{Out: 2, LR: 0.1, Options: engine.Options{Packed: true}}
	la, lb := newMatMulPair(t, pa, pb, cfg, 20, 4)

	rng := rand.New(rand.NewSource(2))
	xA := tensor.RandCSR(rng, 5, 20, 3)
	xB := tensor.RandDense(rng, 5, 4, 1)

	want := xA.ToDense().MatMul(DebugWeightsA(la, lb)).Add(xB.MatMul(DebugWeightsB(la, lb)))
	var z *tensor.Dense
	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(SparseFeatures{xA}) },
		func() { z = lb.Forward(DenseFeatures{xB}) },
	); err != nil {
		t.Fatal(err)
	}
	if !z.Equal(want, 1e-4) {
		t.Fatal("packed sparse federated forward diverges from plaintext")
	}
}

func TestPackedMatMulBackwardMatchesSGD(t *testing.T) {
	pa, pb := pipe(t, 702)
	cfg := Config{Out: 2, LR: 0.05, Options: engine.Options{Packed: true}}
	la, lb := newMatMulPair(t, pa, pb, cfg, 3, 4)

	rng := rand.New(rand.NewSource(3))
	xA := tensor.RandDense(rng, 4, 3, 1)
	xB := tensor.RandDense(rng, 4, 4, 1)
	gradZ := tensor.RandDense(rng, 4, 2, 1)

	wantWA := DebugWeightsA(la, lb).Sub(xA.TransposeMatMul(gradZ).Scale(cfg.LR))
	wantWB := DebugWeightsB(la, lb).Sub(xB.TransposeMatMul(gradZ).Scale(cfg.LR))

	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(DenseFeatures{xA}); la.Backward() },
		func() { lb.Forward(DenseFeatures{xB}); lb.Backward(gradZ) },
	); err != nil {
		t.Fatal(err)
	}
	if got := DebugWeightsA(la, lb); !got.Equal(wantWA, 1e-4) {
		t.Fatalf("packed W_A update wrong:\n got %v\nwant %v", got.Data, wantWA.Data)
	}
	if got := DebugWeightsB(la, lb); !got.Equal(wantWB, 1e-4) {
		t.Fatalf("packed W_B update wrong:\n got %v\nwant %v", got.Data, wantWB.Data)
	}
}

// TestPackedMatMulMultiStep drives several packed forward+backward rounds so
// the refreshed packed ⟦V⟧ copies are exercised, and cross-checks the final
// weights against plaintext SGD.
func TestPackedMatMulMultiStep(t *testing.T) {
	pa, pb := pipe(t, 703)
	cfg := Config{Out: 2, LR: 0.05, Options: engine.Options{Packed: true}}
	la, lb := newMatMulPair(t, pa, pb, cfg, 4, 3)

	rng := rand.New(rand.NewSource(4))
	wA := DebugWeightsA(la, lb)
	wB := DebugWeightsB(la, lb)
	for step := 0; step < 3; step++ {
		xA := tensor.RandDense(rng, 5, 4, 1)
		xB := tensor.RandDense(rng, 5, 3, 1)
		gradZ := tensor.RandDense(rng, 5, 2, 1)
		wA = wA.Sub(xA.TransposeMatMul(gradZ).Scale(cfg.LR))
		wB = wB.Sub(xB.TransposeMatMul(gradZ).Scale(cfg.LR))
		if err := protocol.RunParties(pa, pb,
			func() { la.Forward(DenseFeatures{xA}); la.Backward() },
			func() { lb.Forward(DenseFeatures{xB}); lb.Backward(gradZ) },
		); err != nil {
			t.Fatal(err)
		}
	}
	if got := DebugWeightsA(la, lb); !got.Equal(wA, 1e-3) {
		t.Fatal("packed multi-step W_A diverges from plaintext SGD")
	}
	if got := DebugWeightsB(la, lb); !got.Equal(wB, 1e-3) {
		t.Fatal("packed multi-step W_B diverges from plaintext SGD")
	}
}

func TestPackedEmbedMatMulForwardMatchesPlaintext(t *testing.T) {
	pa, pb := pipe(t, 704)
	cfg := embedTestCfg()
	cfg.Packed = true
	la, lb := newEmbedPair(t, pa, pb, cfg)

	rng := rand.New(rand.NewSource(5))
	xA := randIdx(rng, 4, cfg.FieldsA, cfg.VocabA)
	xB := randIdx(rng, 4, cfg.FieldsB, cfg.VocabB)
	want := plaintextZ(la, lb, xA, xB)

	var z *tensor.Dense
	if err := protocol.RunParties(pa, pb,
		func() { la.Forward(xA) },
		func() { z = lb.Forward(xB) },
	); err != nil {
		t.Fatal(err)
	}
	if !z.Equal(want, 1e-5) {
		t.Fatalf("packed embed federated Z diverges:\n got %v\nwant %v", z.Data, want.Data)
	}
}

// TestPackedEmbedMatMulMultiStep runs packed embed forward+backward rounds —
// covering the packed lookup HE2SS and the packed table refresh — and checks
// the step still matches the unpacked protocol's training trajectory.
func TestPackedEmbedMatMulMultiStep(t *testing.T) {
	runSteps := func(packed bool) (*tensor.Dense, *tensor.Dense) {
		pa, pb := pipe(t, 705) // same seed: identical init and masks per run
		cfg := embedTestCfg()
		cfg.Packed = packed
		la, lb := newEmbedPair(t, pa, pb, cfg)
		rng := rand.New(rand.NewSource(6))
		for step := 0; step < 2; step++ {
			xA := randIdx(rng, 3, cfg.FieldsA, cfg.VocabA)
			xB := randIdx(rng, 3, cfg.FieldsB, cfg.VocabB)
			gradZ := tensor.RandDense(rng, 3, cfg.Out, 0.5)
			if err := protocol.RunParties(pa, pb,
				func() { la.Forward(xA); la.Backward() },
				func() { lb.Forward(xB); lb.Backward(gradZ) },
			); err != nil {
				t.Fatal(err)
			}
		}
		return DebugTableA(la, lb), DebugEmbedWeightsA(la, lb)
	}
	qPacked, wPacked := runSteps(true)
	qPlain, wPlain := runSteps(false)
	if !qPacked.Equal(qPlain, 1e-4) {
		t.Fatal("packed embed table trajectory diverges from unpacked")
	}
	if !wPacked.Equal(wPlain, 1e-4) {
		t.Fatal("packed embed weight trajectory diverges from unpacked")
	}
}

// TestPackedMatMulCheckpointRoundTrip saves and restores a packed layer pair
// mid-training: the packed ⟦V⟧ copies must survive the gob state.
func TestPackedMatMulCheckpointRoundTrip(t *testing.T) {
	pa, pb := pipe(t, 706)
	cfg := Config{Out: 2, LR: 0.1, Momentum: 0.9, Options: engine.Options{Packed: true}}
	la, lb := newMatMulPair(t, pa, pb, cfg, 3, 3)

	rng := rand.New(rand.NewSource(7))
	step := func(a *MatMulA, b *MatMulB) {
		xA := tensor.RandDense(rng, 4, 3, 1)
		xB := tensor.RandDense(rng, 4, 3, 1)
		g := tensor.RandDense(rng, 4, 2, 1)
		if err := protocol.RunParties(pa, pb,
			func() { a.Forward(DenseFeatures{xA}); a.Backward() },
			func() { b.Forward(DenseFeatures{xB}); b.Backward(g) },
		); err != nil {
			t.Fatal(err)
		}
	}
	step(la, lb)

	var bufA, bufB bytes.Buffer
	if err := la.Save(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := lb.Save(&bufB); err != nil {
		t.Fatal(err)
	}
	la2, err := LoadMatMulA(&bufA, pa)
	if err != nil {
		t.Fatal(err)
	}
	lb2, err := LoadMatMulB(&bufB, pb)
	if err != nil {
		t.Fatal(err)
	}
	if !DebugWeightsA(la2, lb2).Equal(DebugWeightsA(la, lb), 0) {
		t.Fatal("restored packed W_A differs")
	}
	rng = rand.New(rand.NewSource(8))
	step(la, lb)
	rng = rand.New(rand.NewSource(8))
	step(la2, lb2)
	if !DebugWeightsA(la2, lb2).Equal(DebugWeightsA(la, lb), 1e-6) {
		t.Fatal("packed training diverged after checkpoint restore")
	}
}
