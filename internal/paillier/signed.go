package paillier

import (
	"fmt"
	"math/big"
)

// Fast exponentiation engine. BlindFL's homomorphic matmuls spend nearly all
// their CPU in MulPlain = Exp(c, k mod N, N²). Two structural facts make the
// textbook call wasteful:
//
//  1. Scalars are signed fixed-point encodings whose magnitude needs only
//     ~F+log₂|v| bits (~45 for the default codec), but the ring image of a
//     negative value is N−|k| — a full-width exponent. MulPlainSigned
//     exponentiates by the small magnitude and inverts once mod N², turning
//     half the workload from 2048-bit exponentiations into ~45-bit ones.
//  2. Every matmul output cell is a dot product Π cᵢ^{kᵢ}. Exponentiating
//     each factor separately repeats the squaring chain per base; DotRow uses
//     Straus' interleaved multi-exponentiation (a.k.a. Shamir's trick) with
//     per-base window tables, sharing one squaring chain across the whole
//     row and batching all negative factors into a single inversion.
//
// DotTables additionally lets callers reuse the window tables when the same
// bases are exponentiated by many different scalar vectors (each batch row of
// a dense matmul hits the same weight column), amortizing table construction.

// SignedExp is a scalar exponent in signed-magnitude form: the represented
// value is −Mag when Neg, else Mag. A nil or zero Mag means zero (Neg is
// ignored). Mag must be non-negative.
type SignedExp struct {
	Mag *big.Int
	Neg bool
}

// IsZero reports whether the exponent is zero.
func (e SignedExp) IsZero() bool { return e.Mag == nil || e.Mag.Sign() == 0 }

// mustInverse inverts x mod m, panicking with a clear message when x is not
// invertible. A ciphertext that shares a factor with N² is either corrupted
// or reveals a factor of N; continuing with a nil big.Int would surface much
// later as an opaque nil dereference, so fail loudly at the source instead.
func mustInverse(x, m *big.Int, op string) *big.Int {
	inv := new(big.Int).ModInverse(x, m)
	if inv == nil {
		panic(fmt.Sprintf("paillier: %s: ciphertext not invertible mod N² (corrupted ciphertext or wrong key)", op))
	}
	return inv
}

// MulPlainSigned returns ⟦±mag·a⟧ (negated when neg): the signed fast path of
// MulPlain. It exponentiates by the small magnitude and inverts once mod N²
// instead of exponentiating by the full-width ring image N−mag. The returned
// ciphertext decrypts identically to MulPlain(a, ±mag) (the group elements
// differ, the plaintexts agree). Panics like Neg if a is not invertible and
// the scalar is negative.
func (pk *PublicKey) MulPlainSigned(a *Ciphertext, mag *big.Int, neg bool) *Ciphertext {
	if mag == nil || mag.Sign() == 0 {
		return &Ciphertext{C: big.NewInt(1)}
	}
	if mag.Sign() < 0 {
		panic("paillier: MulPlainSigned magnitude must be non-negative")
	}
	if a == nil || a.C == nil {
		panic("paillier: MulPlainSigned on corrupted ciphertext (nil value)")
	}
	var c *big.Int
	if so := SecretOpsFor(pk); so != nil {
		c = so.ExpCRT(a.C, mag) // secret-key side: two half-width chains
	} else {
		c = new(big.Int).Exp(a.C, mag, pk.N2)
	}
	if neg {
		c = mustInverse(c, pk.N2, "MulPlainSigned")
	}
	return &Ciphertext{C: c}
}

// DotWindow picks a Straus window width for exponents of the given bit
// length. reuse is how many exponent vectors will be evaluated against the
// same tables (PrecomputeDot callers); higher reuse amortizes the per-base
// table cost (2^w−2 multiplications) and favors a wider window.
func DotWindow(bits, reuse int) uint {
	var w uint
	switch {
	case bits <= 4:
		w = 1
	case bits <= 16:
		w = 2
	case bits <= 128:
		w = 3
	case bits <= 512:
		w = 4
	default:
		w = 5
	}
	if reuse >= 8 && bits > 16 {
		w++ // table cost amortized: trade table size for fewer window digits
	}
	if w > 6 {
		w = 6
	}
	return w
}

// windowDigit extracts bits [off, off+w) of x as an integer.
func windowDigit(x *big.Int, off int, w uint) uint {
	var d uint
	for j := int(w) - 1; j >= 0; j-- {
		d = d<<1 | x.Bit(off+j)
	}
	return d
}

// MaxDotWindow bounds the Straus/cache window width: 2^10−1 table entries
// per base is the widest layout the persistent table cache ever pays for.
const MaxDotWindow = 10

// DotTables holds per-base window tables for Straus multi-exponentiation
// over a fixed slice of ciphertext bases (one weight-matrix column, say).
// Build once with PrecomputeDot, evaluate with Dot for each exponent vector.
//
// When a SecretOps is registered for the key at build time, the tables are
// built modulo p² and q² instead of N² and Dot runs two half-width squaring
// chains recombined once per evaluation — the CRT split for decrypt-adjacent
// matmuls. The recombined result is bit-identical to the public-path Dot.
type DotTables struct {
	pk   *PublicKey
	w    uint
	tabs [][]*big.Int // tabs[i][d] = cs[i]^d mod N², d = 1..2^w−1 (index 0 unused)

	so           *SecretOps   // non-nil selects the CRT dual-chain mode
	tabsP, tabsQ [][]*big.Int // cs[i]^d mod p², mod q² (CRT mode)
}

// Window reports the table's Straus window width.
func (t *DotTables) Window() uint { return t.w }

// Bytes estimates the tables' memory footprint (the CRT layout's two
// half-size residues cost the same as one full-size one).
func (t *DotTables) Bytes() int64 {
	bases := len(t.tabs)
	if t.so != nil {
		bases = len(t.tabsP)
	}
	return int64(bases) * int64((1<<t.w)-1) * fixedBaseEntryBytes(t.pk.N2)
}

// precomputeHalf builds width-w power tables for bases reduced mod m.
func precomputeHalf(cs []*Ciphertext, w uint, m *big.Int) [][]*big.Int {
	tabs := make([][]*big.Int, len(cs))
	size := 1 << w
	for i, c := range cs {
		tab := make([]*big.Int, size)
		tab[1] = new(big.Int).Mod(c.C, m)
		for d := 2; d < size; d++ {
			tab[d] = new(big.Int).Mul(tab[d-1], tab[1])
			tab[d].Mod(tab[d], m)
		}
		tabs[i] = tab
	}
	return tabs
}

// PrecomputeDot builds Straus window tables of width w for the given bases.
// The tables hold len(cs)·(2^w−1) residues mod N², so callers choose w via
// dotWindow-style reasoning: wider windows pay off when the tables are reused
// across many Dot calls (the hetensor table cache goes up to MaxDotWindow).
func (pk *PublicKey) PrecomputeDot(cs []*Ciphertext, w uint) *DotTables {
	if w < 1 || w > MaxDotWindow {
		panic(fmt.Sprintf("paillier: PrecomputeDot window %d out of range [1,%d]", w, MaxDotWindow))
	}
	t := &DotTables{pk: pk, w: w}
	if so := SecretOpsFor(pk); so != nil {
		t.so = so
		t.tabsP = precomputeHalf(cs, w, so.sk.p2)
		t.tabsQ = precomputeHalf(cs, w, so.sk.q2)
		return t
	}
	t.tabs = precomputeHalf(cs, w, pk.N2)
	return t
}

// Dot computes ⟦Σ kᵢ·mᵢ⟧ = Π cᵢ^{kᵢ} over the precomputed bases with one
// shared squaring chain. es must align with the bases passed to
// PrecomputeDot; zero exponents contribute nothing (so sparse exponent
// vectors are cheap). Negative factors accumulate into a separate
// denominator inverted once at the end.
func (t *DotTables) Dot(es []SignedExp) *Ciphertext {
	nbases := len(t.tabs)
	if t.so != nil {
		nbases = len(t.tabsP)
	}
	if len(es) != nbases {
		panic(fmt.Sprintf("paillier: Dot over %d exponents for %d bases", len(es), nbases))
	}
	maxBits := 0
	for i := range es {
		if es[i].IsZero() {
			continue
		}
		if es[i].Mag.Sign() < 0 {
			panic("paillier: Dot exponent magnitude must be non-negative")
		}
		if bl := es[i].Mag.BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	if maxBits == 0 {
		return &Ciphertext{C: big.NewInt(1)}
	}
	if t.so != nil {
		// CRT dual chain: the shared squaring chain runs twice at half
		// width (≈¼ the per-multiplication cost each), recombined once.
		posP, negP := strausChain(t.tabsP, es, maxBits, t.w, t.so.sk.p2)
		posQ, negQ := strausChain(t.tabsQ, es, maxBits, t.w, t.so.sk.q2)
		xp := combineDotHalf(posP, negP, t.so.sk.p2)
		xq := combineDotHalf(posQ, negQ, t.so.sk.q2)
		return &Ciphertext{C: t.so.combine(xp, xq)}
	}
	n2 := t.pk.N2
	pos, neg := strausChain(t.tabs, es, maxBits, t.w, n2)
	return &Ciphertext{C: combineDotHalf(pos, neg, n2)}
}

// strausChain runs one Straus interleaved chain over width-w tables mod m,
// returning the positive- and negative-factor accumulators (nil when that
// sign never contributed). pos and neg stay nil until their first
// contribution so leading all-zero window columns cost nothing.
func strausChain(tabs [][]*big.Int, es []SignedExp, maxBits int, width uint, m *big.Int) (pos, neg *big.Int) {
	w := int(width)
	digits := (maxBits + w - 1) / w
	for d := digits - 1; d >= 0; d-- {
		if pos != nil || neg != nil {
			for s := 0; s < w; s++ {
				if pos != nil {
					pos.Mul(pos, pos).Mod(pos, m)
				}
				if neg != nil {
					neg.Mul(neg, neg).Mod(neg, m)
				}
			}
		}
		off := d * w
		for i := range es {
			if es[i].IsZero() {
				continue
			}
			dig := windowDigit(es[i].Mag, off, width)
			if dig == 0 {
				continue
			}
			f := tabs[i][dig]
			if es[i].Neg {
				if neg == nil {
					neg = new(big.Int).Set(f)
				} else {
					neg.Mul(neg, f).Mod(neg, m)
				}
			} else {
				if pos == nil {
					pos = new(big.Int).Set(f)
				} else {
					pos.Mul(pos, f).Mod(pos, m)
				}
			}
		}
	}
	return pos, neg
}

// combineDotHalf folds one chain's accumulators into pos·neg⁻¹ mod m.
func combineDotHalf(pos, neg, m *big.Int) *big.Int {
	switch {
	case pos == nil && neg == nil:
		return big.NewInt(1)
	case pos == nil:
		return mustInverse(neg, m, "Dot")
	case neg == nil:
		return pos
	default:
		inv := mustInverse(neg, m, "Dot")
		pos.Mul(pos, inv).Mod(pos, m)
		return pos
	}
}

// DotRow computes the encrypted dot product ⟦Σ kᵢ·mᵢ⟧ = Π cᵢ^{kᵢ} for one
// row of ciphertexts and signed scalar exponents, using Straus interleaved
// multi-exponentiation: one shared squaring chain across all bases, per-base
// window tables sized to the largest exponent magnitude, and a single
// inversion for all negative factors. It decrypts identically to the
// textbook loop Σ AddCipher(MulPlain(cᵢ, kᵢ)) with signed kᵢ. Zero exponents
// skip their base entirely (no table is built).
func (pk *PublicKey) DotRow(cs []*Ciphertext, es []SignedExp) *Ciphertext {
	if len(cs) != len(es) {
		panic(fmt.Sprintf("paillier: DotRow over %d ciphertexts, %d exponents", len(cs), len(es)))
	}
	maxBits, nz := 0, 0
	for i := range es {
		if es[i].IsZero() {
			continue
		}
		nz++
		if bl := es[i].Mag.BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	if nz == 0 {
		return &Ciphertext{C: big.NewInt(1)}
	}
	if nz == 1 {
		for i := range es {
			if !es[i].IsZero() {
				return pk.MulPlainSigned(cs[i], es[i].Mag, es[i].Neg)
			}
		}
	}
	// Gather the non-zero factors so tables are only built for live bases.
	liveC := make([]*Ciphertext, 0, nz)
	liveE := make([]SignedExp, 0, nz)
	for i := range es {
		if !es[i].IsZero() {
			liveC = append(liveC, cs[i])
			liveE = append(liveE, es[i])
		}
	}
	t := pk.PrecomputeDot(liveC, DotWindow(maxBits, 1))
	return t.Dot(liveE)
}
