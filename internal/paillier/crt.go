package paillier

import (
	"crypto/rand"
	"math/big"
	"sync"
)

// Secret-key fast paths. The label party generates the keypair in BlindFL's
// vertical setting, yet outside Decrypt every homomorphic op it runs treats
// its own key as public: MulPlain exponentiates mod N² with a full-width
// modulus, pool refills ignore the factorization, and the Straus dot kernels
// square 4096-bit residues when two 2048-bit chains would do. SecretOps
// exposes the factorization as a handle the hot paths consult:
//
//	ExpCRT    — base^e mod N² computed mod p² and q² separately and CRT-
//	            recombined; exponents are reduced modulo the subgroup orders
//	            p·(p−1), q·(q−1) when that shortens them. Exact: always the
//	            same integer as big.Int.Exp(base, e, N²).
//	MulPlain  — ⟦k·a⟧ with an adaptive strategy: CRT-split exponentiation
//	            for short scalars, and for full-width ring images the
//	            decrypt–scale–re-blind route whose exponents collapse to the
//	            CRT decryption orders p−1 and q−1 (~3.5× at 2048 bits). Like
//	            MulPlainSigned, the group element differs from the public
//	            MulPlain but the plaintext is identical.
//	Dot paths — PrecomputeDot/DotRow build their window tables mod p² and q²
//	            and run two half-width squaring chains (signed.go).
//
// A SecretOps is obtained from the key (sk.Ops()) and, like blinding pools,
// may be registered process-wide so that public-key entry points
// (PublicKey.MulPlain, Pool refills, the hetensor kernels) pick it up
// transparently. Registration is a single-trust-domain optimization: only
// register keys whose factorization this process legitimately holds. In an
// in-process two-party simulation registering both keys accelerates both
// parties — physically impossible in a real deployment — so the fed-step
// benchmarks leave it off and blindfl-train gates it behind -secretops.

// SecretOps bundles the CRT parameters for secret-key-side exponentiation
// mod N². Safe for concurrent use.
type SecretOps struct {
	sk         *PrivateKey
	ordP, ordQ *big.Int // subgroup orders p·(p−1), q·(q−1) of Z*_{p²}, Z*_{q²}
	q2InvP2    *big.Int // (q²)⁻¹ mod p²

	// Re-blinding source for the decrypt–scale path: (hⁿ)^α comb tables in
	// the style of the pool's short-exponent blinding, built on first use.
	blindOnce sync.Once
	blindFB   *FixedBase
	blindMax  *big.Int // 2^DefaultShortExpBits
	blindMu   sync.Mutex
}

// NewSecretOps derives the CRT fast-path handle from a private key. Cheap:
// the heavy comb tables for re-blinding are built lazily on first MulPlain.
func NewSecretOps(sk *PrivateKey) *SecretOps {
	return &SecretOps{
		sk:      sk,
		ordP:    new(big.Int).Mul(sk.p, sk.pOrder),
		ordQ:    new(big.Int).Mul(sk.q, sk.qOrder),
		q2InvP2: new(big.Int).ModInverse(sk.q2, sk.p2),
	}
}

// Ops returns the key's SecretOps handle, built once on first call.
func (sk *PrivateKey) Ops() *SecretOps {
	sk.opsOnce.Do(func() { sk.ops = NewSecretOps(sk) })
	return sk.ops
}

// combine CRT-recombines x ≡ xp (mod p²), x ≡ xq (mod q²) into x mod N².
func (so *SecretOps) combine(xp, xq *big.Int) *big.Int {
	d := new(big.Int).Sub(xp, xq)
	d.Mul(d, so.q2InvP2)
	d.Mod(d, so.sk.p2)
	d.Mul(d, so.sk.q2)
	d.Add(d, xq)
	return d
}

// halfExp computes base^e mod m² for one prime-square factor, reducing the
// exponent modulo the subgroup order when that shortens it. Reduction is
// only valid for units, so it is guarded by a gcd check — cheap next to the
// full-width exponentiation it replaces, and skipped entirely for short
// exponents.
func halfExp(base, e, m2, ord, prime *big.Int) *big.Int {
	b := new(big.Int).Mod(base, m2)
	if b.Sign() == 0 {
		if e.Sign() == 0 {
			return big.NewInt(1)
		}
		return b
	}
	if e.BitLen() >= ord.BitLen() {
		if new(big.Int).GCD(nil, nil, new(big.Int).Mod(b, prime), prime).Cmp(one) == 0 {
			e = new(big.Int).Mod(e, ord)
		}
	}
	return b.Exp(b, e, m2)
}

// ExpCRT returns base^e mod N², exponentiating mod p² and q² separately and
// recombining. It is exact — bit-identical to big.Int.Exp(base, e, N²) for
// every non-negative e — and ~1.7× faster at full width (the two half-size
// moduli), rising to ~2.3× for short exponents where the fixed recombination
// cost matters less.
func (so *SecretOps) ExpCRT(base, e *big.Int) *big.Int {
	if e.Sign() < 0 {
		panic("paillier: ExpCRT negative exponent")
	}
	sk := so.sk
	xp := halfExp(base, e, sk.p2, so.ordP, sk.p)
	xq := halfExp(base, e, sk.q2, so.ordQ, sk.q)
	return so.combine(xp, xq)
}

// blinding returns a fresh short-exponent re-randomization factor (hⁿ)^α,
// drawn from comb tables built once per SecretOps.
func (so *SecretOps) blinding() *big.Int {
	so.blindOnce.Do(func() {
		pk := &so.sk.PublicKey
		y, err := randUnit(Rand, pk.N)
		if err != nil {
			panic("paillier: SecretOps blinding setup: " + err.Error())
		}
		h := new(big.Int).Mul(y, y)
		h.Neg(h).Mod(h, pk.N)
		hn := so.ExpCRT(h, pk.N)
		so.blindFB = NewFixedBase(hn, pk.N2, DefaultShortExpBits, 0)
		so.blindMax = new(big.Int).Lsh(one, DefaultShortExpBits)
	})
	so.blindMu.Lock()
	alpha, err := rand.Int(Rand, so.blindMax)
	so.blindMu.Unlock()
	if err != nil {
		panic("paillier: SecretOps blinding: " + err.Error())
	}
	alpha.Add(alpha, one)
	return so.blindFB.Exp(alpha)
}

// MulPlain returns ⟦k·a⟧ like PublicKey.MulPlain but exploits the key's
// factorization. Short scalars (under half the modulus width) take the
// CRT-split exponentiation; full-width ring images — the expensive general
// case — take the decrypt–scale–re-blind route, whose exponents collapse to
// the CRT decryption orders p−1, q−1 (the maximal subgroup-order reduction)
// plus a comb-table re-randomization. The returned group element differs
// from the public-path result (exactly as MulPlainSigned's does) but
// decrypts identically for every valid ciphertext.
func (so *SecretOps) MulPlain(a *Ciphertext, k *big.Int) *Ciphertext {
	if a == nil || a.C == nil {
		panic("paillier: SecretOps.MulPlain on corrupted ciphertext (nil value)")
	}
	pk := &so.sk.PublicKey
	kk := new(big.Int).Mod(k, pk.N)
	if kk.BitLen() <= pk.N.BitLen()/2 {
		return &Ciphertext{C: so.ExpCRT(a.C, kk)}
	}
	m := so.sk.Decrypt(a)
	m.Mul(m, kk).Mod(m, pk.N)
	c := m.Mul(m, pk.N) // g^(m·k) = 1 + (m·k mod N)·N mod N²
	c.Add(c, one)
	c.Mod(c, pk.N2)
	c.Mul(c, so.blinding())
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}
}

// secretOpsReg maps a public-key fingerprint to the registered SecretOps,
// mirroring the blinding-pool registry.
var secretOpsReg sync.Map

// RegisterSecretOps makes sk's CRT fast paths visible to the public-key
// entry points (MulPlain, MulPlainSigned, the Straus dot kernels, pool and
// inline encryption blinding) for every ciphertext under sk's public key.
// Only register keys this process legitimately holds; see the package note
// on single-trust-domain scoping.
func RegisterSecretOps(sk *PrivateKey) { secretOpsReg.Store(sk.fingerprint(), sk.Ops()) }

// UnregisterSecretOps removes the registration for sk's public key.
func UnregisterSecretOps(pk *PublicKey) { secretOpsReg.Delete(pk.fingerprint()) }

// SecretOpsFor returns the registered SecretOps for pk, or nil. The
// fingerprint hit is confirmed against the full modulus, so a (vanishingly
// unlikely) fingerprint collision degrades to the public path, never to a
// wrong key.
func SecretOpsFor(pk *PublicKey) *SecretOps {
	v, ok := secretOpsReg.Load(pk.fingerprint())
	if !ok {
		return nil
	}
	so := v.(*SecretOps)
	if so.sk.N.Cmp(pk.N) != 0 {
		return nil
	}
	return so
}
