package paillier

import (
	"math/big"
	mrand "math/rand"
	"testing"
)

// TestFixedBaseMatchesExp cross-checks FixedBase.Exp against big.Int.Exp
// over random exponent widths, including every edge the comb digit loop has:
// zero, one, single-bit, window-aligned and max-width exponents.
func TestFixedBaseMatchesExp(t *testing.T) {
	k := testKey
	rng := mrand.New(mrand.NewSource(42))
	base := new(big.Int).Rand(rng, k.N2)
	fb := NewFixedBase(base, k.N2, 400, 0)

	check := func(e *big.Int) {
		t.Helper()
		want := new(big.Int).Exp(base, e, k.N2)
		if got := fb.Exp(e); got.Cmp(want) != 0 {
			t.Fatalf("FixedBase.Exp(%v) (%d bits) diverges from big.Int.Exp", e, e.BitLen())
		}
	}

	for _, e := range []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		big.NewInt(255),            // one full window at w=8
		big.NewInt(256),            // first bit of the second window
		new(big.Int).Lsh(one, 399), // top bit of the covered range
		new(big.Int).Sub(new(big.Int).Lsh(one, 400), one), // max-width all-ones
		new(big.Int).Lsh(one, 400),                        // α = 2^bits, the pool's inclusive upper draw
	} {
		check(e)
	}
	for i := 0; i < 50; i++ {
		bits := 1 + rng.Intn(400)
		e := new(big.Int).Rand(rng, new(big.Int).Lsh(one, uint(bits)))
		check(e)
	}
	// Wider than the table: must fall back to big.Int.Exp, still exact.
	check(new(big.Int).Rand(rng, new(big.Int).Lsh(one, 700)))
}

// TestFixedBaseExpAlphaRange mirrors the pool's draw α ∈ [1, 2^bits].
func TestFixedBaseExpAlphaRange(t *testing.T) {
	k := testKey
	rng := mrand.New(mrand.NewSource(7))
	base := new(big.Int).Rand(rng, k.N2)
	const bits = 64
	fb := NewFixedBase(base, k.N2, bits+1, 0)
	for i := 0; i < 40; i++ {
		alpha := new(big.Int).Rand(rng, new(big.Int).Lsh(one, bits))
		alpha.Add(alpha, one)
		want := new(big.Int).Exp(base, alpha, k.N2)
		if got := fb.Exp(alpha); got.Cmp(want) != 0 {
			t.Fatalf("α=%v diverges", alpha)
		}
	}
}

// TestFixedBaseWindowAdaptsToBudget: tighter budgets must select narrower
// windows, and the reported table size must respect the budget.
func TestFixedBaseWindowAdaptsToBudget(t *testing.T) {
	k := testKey
	base := big.NewInt(12345)
	wide := NewFixedBase(base, k.N2, 400, 0)
	if wide.Window() < 6 {
		t.Fatalf("default budget picked window %d, want >= 6", wide.Window())
	}
	tight := NewFixedBase(base, k.N2, 400, 128<<10)
	if tight.Window() >= wide.Window() {
		t.Fatalf("128 KiB budget picked window %d, not narrower than default %d", tight.Window(), wide.Window())
	}
	if tight.Bytes() > 128<<10 {
		t.Fatalf("table reports %d bytes, over the 128 KiB budget", tight.Bytes())
	}
	// Narrow table must still be exact.
	e := big.NewInt(0xdeadbeef)
	if tight.Exp(e).Cmp(new(big.Int).Exp(base, e, k.N2)) != 0 {
		t.Fatal("budget-narrowed table diverges from big.Int.Exp")
	}
}

// TestFixedBaseNegativeExpPanics pins the contract.
func TestFixedBaseNegativeExpPanics(t *testing.T) {
	k := testKey
	fb := NewFixedBase(big.NewInt(3), k.N2, 16, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative exponent")
		}
	}()
	fb.Exp(big.NewInt(-1))
}

// FuzzFixedBaseExp fuzzes exponent bytes against big.Int.Exp.
func FuzzFixedBaseExp(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add(new(big.Int).Lsh(one, 200).Bytes())
	k := testKey
	base := new(big.Int).Mod(big.NewInt(987654321987654321), k.N2)
	fb := NewFixedBase(base, k.N2, 256, 0)
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 64 {
			raw = raw[:64] // cap at 512 bits: covered + fallback ranges
		}
		e := new(big.Int).SetBytes(raw)
		want := new(big.Int).Exp(base, e, k.N2)
		if got := fb.Exp(e); got.Cmp(want) != 0 {
			t.Fatalf("FixedBase.Exp diverges for %d-bit exponent", e.BitLen())
		}
	})
}

func BenchmarkShortExpBlindingBigInt(b *testing.B) {
	k := testKey
	rng := mrand.New(mrand.NewSource(3))
	hn := new(big.Int).Rand(rng, k.N2)
	alpha := new(big.Int).Rand(rng, new(big.Int).Lsh(one, DefaultShortExpBits))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(big.Int).Exp(hn, alpha, k.N2)
	}
}

func BenchmarkShortExpBlindingFixedBase(b *testing.B) {
	k := testKey
	rng := mrand.New(mrand.NewSource(3))
	hn := new(big.Int).Rand(rng, k.N2)
	alpha := new(big.Int).Rand(rng, new(big.Int).Lsh(one, DefaultShortExpBits))
	fb := NewFixedBase(hn, k.N2, DefaultShortExpBits+1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.Exp(alpha)
	}
}
