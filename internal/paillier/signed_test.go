package paillier

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
)

// randSigned draws a signed scalar with a magnitude of up to bits bits.
func randSigned(rng *mrand.Rand, bits int) *big.Int {
	k := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
	if rng.Intn(2) == 0 {
		k.Neg(k)
	}
	return k
}

// toSignedExp converts a signed big.Int to signed-magnitude form.
func toSignedExp(k *big.Int) SignedExp {
	mag := new(big.Int).Abs(k)
	return SignedExp{Mag: mag, Neg: k.Sign() < 0}
}

// TestMulPlainSignedMatchesTextbook cross-checks the signed small-exponent
// path against MulPlain over random mixed-sign scalars: the ciphertexts
// differ as group elements, the decryptions must agree bit-exactly.
func TestMulPlainSignedMatchesTextbook(t *testing.T) {
	k := testKey
	rng := mrand.New(mrand.NewSource(7))
	c := encT(t, &k.PublicKey, big.NewInt(123456789))
	for i := 0; i < 25; i++ {
		s := randSigned(rng, 48)
		want := k.Decrypt(k.PublicKey.MulPlain(c, s))
		e := toSignedExp(s)
		got := k.Decrypt(k.PublicKey.MulPlainSigned(c, e.Mag, e.Neg))
		if got.Cmp(want) != 0 {
			t.Fatalf("scalar %v: signed path decrypts to %v, textbook to %v", s, got, want)
		}
	}
}

func TestMulPlainSignedZero(t *testing.T) {
	k := testKey
	c := encT(t, &k.PublicKey, big.NewInt(42))
	for _, e := range []SignedExp{{}, {Mag: big.NewInt(0)}, {Mag: big.NewInt(0), Neg: true}} {
		got := k.Decrypt(k.PublicKey.MulPlainSigned(c, e.Mag, e.Neg))
		if got.Sign() != 0 {
			t.Fatalf("0·c decrypts to %v", got)
		}
	}
}

// dotTextbook is the reference implementation: Σ AddCipher(MulPlain(cᵢ, kᵢ))
// with full-width ring-reduced exponents.
func dotTextbook(pk *PublicKey, cs []*Ciphertext, ks []*big.Int) *Ciphertext {
	acc := &Ciphertext{C: big.NewInt(1)}
	for i := range cs {
		acc = pk.AddCipher(acc, pk.MulPlain(cs[i], ks[i]))
	}
	return acc
}

// TestDotRowMatchesTextbook cross-checks the Straus kernel against the
// per-term textbook loop over random rows with mixed-sign, mixed-magnitude
// exponents (including all-negative, all-zero and singleton rows).
func TestDotRowMatchesTextbook(t *testing.T) {
	k := testKey
	pk := &k.PublicKey
	rng := mrand.New(mrand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		cs := make([]*Ciphertext, n)
		ks := make([]*big.Int, n)
		es := make([]SignedExp, n)
		for i := range cs {
			cs[i] = encT(t, pk, big.NewInt(int64(rng.Intn(1<<30))))
			switch trial % 4 {
			case 0: // mixed signs
				ks[i] = randSigned(rng, 45)
			case 1: // all negative
				ks[i] = new(big.Int).Neg(new(big.Int).Rand(rng, big.NewInt(1<<40)))
			case 2: // sparse: mostly zero
				if rng.Intn(3) == 0 {
					ks[i] = randSigned(rng, 45)
				} else {
					ks[i] = big.NewInt(0)
				}
			default: // tiny magnitudes stress window edge cases
				ks[i] = big.NewInt(int64(rng.Intn(7) - 3))
			}
			es[i] = toSignedExp(ks[i])
		}
		want := k.Decrypt(dotTextbook(pk, cs, ks))
		got := k.Decrypt(pk.DotRow(cs, es))
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d: DotRow decrypts to %v, textbook to %v", trial, got, want)
		}
	}
}

func TestDotRowAllZero(t *testing.T) {
	k := testKey
	pk := &k.PublicKey
	cs := []*Ciphertext{encT(t, pk, big.NewInt(5)), encT(t, pk, big.NewInt(9))}
	es := []SignedExp{{}, {Mag: big.NewInt(0), Neg: true}}
	if got := k.Decrypt(pk.DotRow(cs, es)); got.Sign() != 0 {
		t.Fatalf("all-zero DotRow decrypts to %v", got)
	}
}

// TestDotTablesReuse checks that one PrecomputeDot table set evaluates many
// exponent vectors correctly (the matmul batch-row reuse pattern), across
// every supported window width.
func TestDotTablesReuse(t *testing.T) {
	k := testKey
	pk := &k.PublicKey
	rng := mrand.New(mrand.NewSource(13))
	n := 6
	cs := make([]*Ciphertext, n)
	for i := range cs {
		cs[i] = encT(t, pk, big.NewInt(int64(rng.Intn(1<<20))))
	}
	for w := uint(1); w <= 6; w++ {
		tabs := pk.PrecomputeDot(cs, w)
		for trial := 0; trial < 4; trial++ {
			ks := make([]*big.Int, n)
			es := make([]SignedExp, n)
			for i := range ks {
				ks[i] = randSigned(rng, 45)
				es[i] = toSignedExp(ks[i])
			}
			want := k.Decrypt(dotTextbook(pk, cs, ks))
			got := k.Decrypt(tabs.Dot(es))
			if got.Cmp(want) != 0 {
				t.Fatalf("window %d trial %d: Dot decrypts to %v, want %v", w, trial, got, want)
			}
		}
	}
}

// FuzzMulPlainSigned fuzzes the signed fast path against the textbook one
// with int64 scalars on a fixed ciphertext.
func FuzzMulPlainSigned(f *testing.F) {
	f.Add(int64(0), int64(1))
	f.Add(int64(-1), int64(123))
	f.Add(int64(1<<40), int64(-(1 << 40)))
	k := testKey
	c, err := k.PublicKey.Encrypt(rand.Reader, big.NewInt(987654321))
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, s, m int64) {
		for _, v := range []int64{s, m} {
			sc := big.NewInt(v)
			want := k.Decrypt(k.PublicKey.MulPlain(c, sc))
			e := toSignedExp(sc)
			got := k.Decrypt(k.PublicKey.MulPlainSigned(c, e.Mag, e.Neg))
			if got.Cmp(want) != 0 {
				t.Fatalf("scalar %d: signed %v != textbook %v", v, got, want)
			}
		}
	})
}

// TestNegCorruptedPanics is the regression test for the nil-ModInverse bug:
// a ciphertext sharing a factor with N is not invertible, and Neg used to
// return a Ciphertext wrapping a nil big.Int that exploded much later.
func TestNegCorruptedPanics(t *testing.T) {
	k := testKey
	// N² shares every factor with N; any multiple of p does too. Use N itself.
	corrupted := &Ciphertext{C: new(big.Int).Set(k.N)}
	assertPanics(t, "Neg(corrupted)", func() { k.PublicKey.Neg(corrupted) })
	assertPanics(t, "Neg(nil value)", func() { k.PublicKey.Neg(&Ciphertext{}) })
}

func TestAddPlainCorruptedPanics(t *testing.T) {
	k := testKey
	assertPanics(t, "AddPlain(nil value)", func() {
		k.PublicKey.AddPlain(&Ciphertext{}, big.NewInt(1))
	})
}

func TestMulPlainSignedCorruptedPanics(t *testing.T) {
	k := testKey
	corrupted := &Ciphertext{C: new(big.Int).Set(k.N)}
	assertPanics(t, "MulPlainSigned(corrupted, -1)", func() {
		k.PublicKey.MulPlainSigned(corrupted, big.NewInt(1), true)
	})
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

// TestDecryptTextbookCached checks the keygen-cached λ/µ textbook decryption
// against the CRT path (the ablation benchmark depends on both agreeing).
func TestDecryptTextbookCached(t *testing.T) {
	k := testKey
	rng := mrand.New(mrand.NewSource(17))
	for i := 0; i < 10; i++ {
		m := new(big.Int).Rand(rng, k.N)
		c := encT(t, &k.PublicKey, m)
		if got := k.DecryptTextbook(c); got.Cmp(m) != 0 {
			t.Fatalf("DecryptTextbook = %v, want %v", got, m)
		}
		if crt, tb := k.Decrypt(c), k.DecryptTextbook(c); crt.Cmp(tb) != 0 {
			t.Fatalf("CRT %v != textbook %v", crt, tb)
		}
	}
}

// TestPoolShortExp checks that short-exponent blindings produce valid
// encryptions: pooled ciphertexts decrypt to their plaintexts, and the pool
// serves from the buffer (hits, not misses) like the classic pool.
func TestPoolShortExp(t *testing.T) {
	k := testKey
	p := NewPool(&k.PublicKey, 8, 1, rand.Reader, WithShortExp(0))
	defer p.Close()
	p.WaitAvailable(4)
	for i := int64(0); i < 8; i++ {
		m := big.NewInt(1000 + i)
		c, err := p.Enc(m)
		if err != nil {
			t.Fatal(err)
		}
		if got := k.Decrypt(c); got.Cmp(m) != 0 {
			t.Fatalf("short-exp pooled Enc(%v) decrypts to %v", m, got)
		}
	}
	if s := p.Stats(); s.Hits == 0 {
		t.Fatalf("short-exp pool served no hits: %+v", s)
	}
}

// TestPoolShortExpInlineFallback drains the pool and checks the inline
// fallback also uses (and correctly applies) the short-exponent blinding.
func TestPoolShortExpInlineFallback(t *testing.T) {
	k := testKey
	p := NewPool(&k.PublicKey, 1, 1, rand.Reader, WithShortExp(256))
	p.Close() // stop refills; buffer drains after one hit
	for i := int64(0); i < 3; i++ {
		m := big.NewInt(77 + i)
		c, err := p.Enc(m)
		if err != nil {
			t.Fatal(err)
		}
		if got := k.Decrypt(c); got.Cmp(m) != 0 {
			t.Fatalf("inline short-exp Enc(%v) decrypts to %v", m, got)
		}
	}
}

// TestPoolShortExpBlindingsDiffer guards against a degenerate α sequence:
// two encryptions of the same plaintext must yield distinct ciphertexts.
func TestPoolShortExpBlindingsDiffer(t *testing.T) {
	k := testKey
	p := NewPool(&k.PublicKey, 4, 1, rand.Reader, WithShortExp(0))
	defer p.Close()
	p.WaitAvailable(2)
	m := big.NewInt(5)
	c1, err := p.Enc(m)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Enc(m)
	if err != nil {
		t.Fatal(err)
	}
	if c1.C.Cmp(c2.C) == 0 {
		t.Fatal("two short-exp encryptions of the same plaintext are identical")
	}
}

func BenchmarkMulPlainNegTextbook(b *testing.B) {
	k := testKey
	c, err := k.PublicKey.Encrypt(rand.Reader, big.NewInt(12345))
	if err != nil {
		b.Fatal(err)
	}
	s := big.NewInt(-(1 << 44))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.PublicKey.MulPlain(c, s)
	}
}

func BenchmarkMulPlainNegSigned(b *testing.B) {
	k := testKey
	c, err := k.PublicKey.Encrypt(rand.Reader, big.NewInt(12345))
	if err != nil {
		b.Fatal(err)
	}
	mag := big.NewInt(1 << 44)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.PublicKey.MulPlainSigned(c, mag, true)
	}
}

func benchDotRow(b *testing.B, straus bool) {
	k := testKey
	pk := &k.PublicKey
	rng := mrand.New(mrand.NewSource(3))
	n := 16
	cs := make([]*Ciphertext, n)
	ks := make([]*big.Int, n)
	es := make([]SignedExp, n)
	for i := range cs {
		c, err := pk.Encrypt(rand.Reader, big.NewInt(int64(rng.Intn(1<<30))))
		if err != nil {
			b.Fatal(err)
		}
		cs[i] = c
		ks[i] = randSigned(rng, 45)
		es[i] = toSignedExp(ks[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if straus {
			pk.DotRow(cs, es)
		} else {
			dotTextbook(pk, cs, ks)
		}
	}
}

func BenchmarkDotRow16Textbook(b *testing.B) { benchDotRow(b, false) }
func BenchmarkDotRow16Straus(b *testing.B)   { benchDotRow(b, true) }

func BenchmarkPoolRefillFullWidth(b *testing.B) {
	k := testKey
	p := &Pool{pk: &k.PublicKey, random: rand.Reader}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.blindingFactor(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoolRefillShortExp(b *testing.B) {
	k := testKey
	p := NewPool(&k.PublicKey, 1, 1, rand.Reader, WithShortExp(0))
	p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.blindingFactor(); err != nil {
			b.Fatal(err)
		}
	}
}
