package paillier

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

// testKey is generated once; 512 bits keeps the suite fast while exercising
// the same code paths as production key sizes.
var testKey = mustKey(512)

func mustKey(bits int) *PrivateKey {
	k, err := GenerateKey(rand.Reader, bits)
	if err != nil {
		panic(err)
	}
	return k
}

func encT(t *testing.T, pk *PublicKey, m *big.Int) *Ciphertext {
	t.Helper()
	c, err := pk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	k := testKey
	for _, m := range []int64{0, 1, 2, 255, 1 << 40} {
		c := encT(t, &k.PublicKey, big.NewInt(m))
		if got := k.Decrypt(c); got.Int64() != m {
			t.Errorf("Dec(Enc(%d)) = %v", m, got)
		}
	}
}

func TestDecryptLargePlaintext(t *testing.T) {
	k := testKey
	m := new(big.Int).Sub(k.N, big.NewInt(1)) // N−1, the largest plaintext
	c := encT(t, &k.PublicKey, m)
	if got := k.Decrypt(c); got.Cmp(m) != 0 {
		t.Fatalf("Dec(Enc(N−1)) = %v", got)
	}
}

func TestEncryptRejectsOutOfRange(t *testing.T) {
	k := testKey
	if _, err := k.Encrypt(rand.Reader, big.NewInt(-1)); err == nil {
		t.Error("negative plaintext accepted")
	}
	if _, err := k.Encrypt(rand.Reader, k.N); err == nil {
		t.Error("plaintext = N accepted")
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	k := testKey
	m := big.NewInt(42)
	c1 := encT(t, &k.PublicKey, m)
	c2 := encT(t, &k.PublicKey, m)
	if c1.C.Cmp(c2.C) == 0 {
		t.Fatal("two encryptions of the same plaintext are identical")
	}
	if k.Decrypt(c1).Int64() != 42 || k.Decrypt(c2).Int64() != 42 {
		t.Fatal("randomized ciphertexts decrypt differently")
	}
}

func TestAddCipher(t *testing.T) {
	k := testKey
	f := func(a, b uint32) bool {
		ca := encT(t, &k.PublicKey, big.NewInt(int64(a)))
		cb := encT(t, &k.PublicKey, big.NewInt(int64(b)))
		sum := k.Decrypt(k.AddCipher(ca, cb))
		return sum.Int64() == int64(a)+int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAddPlain(t *testing.T) {
	k := testKey
	ca := encT(t, &k.PublicKey, big.NewInt(100))
	if got := k.Decrypt(k.AddPlain(ca, big.NewInt(23))); got.Int64() != 123 {
		t.Fatalf("AddPlain = %v", got)
	}
	// Negative plaintext addend wraps through Z_N.
	got := k.Decrypt(k.AddPlain(ca, big.NewInt(-30)))
	if got.Int64() != 70 {
		t.Fatalf("AddPlain(-30) = %v", got)
	}
}

func TestMulPlain(t *testing.T) {
	k := testKey
	ca := encT(t, &k.PublicKey, big.NewInt(7))
	if got := k.Decrypt(k.MulPlain(ca, big.NewInt(6))); got.Int64() != 42 {
		t.Fatalf("MulPlain = %v", got)
	}
	// Negative scalar: result is N − 42 (the ring representation of −42).
	got := k.Decrypt(k.MulPlain(ca, big.NewInt(-6)))
	want := new(big.Int).Sub(k.N, big.NewInt(42))
	if got.Cmp(want) != 0 {
		t.Fatalf("MulPlain(-6) = %v want N−42", got)
	}
}

func TestNeg(t *testing.T) {
	k := testKey
	ca := encT(t, &k.PublicKey, big.NewInt(9))
	got := k.Decrypt(k.Neg(ca))
	want := new(big.Int).Sub(k.N, big.NewInt(9))
	if got.Cmp(want) != 0 {
		t.Fatalf("Neg = %v want N−9", got)
	}
}

func TestHomomorphicDotProduct(t *testing.T) {
	// Σ xᵢ·⟦yᵢ⟧ = ⟦Σ xᵢyᵢ⟧ — the primitive the CryptoTensor matmul uses.
	k := testKey
	rng := mrand.New(mrand.NewSource(7))
	x := make([]int64, 8)
	y := make([]int64, 8)
	var want int64
	acc := encT(t, &k.PublicKey, big.NewInt(0))
	for i := range x {
		x[i] = int64(rng.Intn(1000) - 500)
		y[i] = int64(rng.Intn(1000) - 500)
		want += x[i] * y[i]
		cy := encT(t, &k.PublicKey, new(big.Int).Mod(big.NewInt(y[i]), k.N))
		acc = k.AddCipher(acc, k.MulPlain(cy, big.NewInt(x[i])))
	}
	got := k.Decrypt(acc)
	half := new(big.Int).Rsh(k.N, 1)
	if got.Cmp(half) > 0 {
		got.Sub(got, k.N)
	}
	if got.Int64() != want {
		t.Fatalf("dot = %v want %d", got, want)
	}
}

func TestDecryptTextbookMatchesCRT(t *testing.T) {
	k := testKey
	for _, m := range []int64{0, 1, 424242, 1 << 50} {
		c := encT(t, &k.PublicKey, big.NewInt(m))
		crt := k.Decrypt(c)
		tb := k.DecryptTextbook(c)
		if crt.Cmp(tb) != 0 {
			t.Fatalf("m=%d: CRT %v != textbook %v", m, crt, tb)
		}
	}
}

func TestEncryptZero(t *testing.T) {
	k := testKey
	z, err := k.EncryptZero(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if k.Decrypt(z).Sign() != 0 {
		t.Fatal("EncryptZero does not decrypt to 0")
	}
}

func TestGenerateKeyRejectsTinyKeys(t *testing.T) {
	if _, err := GenerateKey(rand.Reader, 64); err == nil {
		t.Fatal("64-bit key accepted")
	}
}

func TestKeySizes(t *testing.T) {
	if testing.Short() {
		t.Skip("key generation sweep skipped in -short")
	}
	for _, bits := range []int{128, 256, 512} {
		k := mustKey(bits)
		if k.N.BitLen() != bits {
			t.Errorf("key bits = %d want %d", k.N.BitLen(), bits)
		}
		c := encT(t, &k.PublicKey, big.NewInt(1234))
		if k.Decrypt(c).Int64() != 1234 {
			t.Errorf("%d-bit key round trip failed", bits)
		}
	}
}

func BenchmarkEncrypt512(b *testing.B) { benchEncrypt(b, testKey) }

func benchEncrypt(b *testing.B, k *PrivateKey) {
	m := big.NewInt(123456789)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Encrypt(rand.Reader, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt512(b *testing.B) {
	k := testKey
	c, _ := k.Encrypt(rand.Reader, big.NewInt(123456789))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Decrypt(c)
	}
}

func BenchmarkMulPlain512(b *testing.B) {
	k := testKey
	c, _ := k.Encrypt(rand.Reader, big.NewInt(12345))
	s := big.NewInt(987654321)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.MulPlain(c, s)
	}
}
