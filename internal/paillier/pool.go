package paillier

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
	"sync"
	"sync/atomic"

	"blindfl/internal/parallel"
)

// Encryption cost is dominated by the blinding exponentiation r^N mod N²,
// which depends only on the public key — not on the plaintext. A Pool
// precomputes blinding factors in background workers so that the latency of
// Enc on the protocol's critical path collapses to two multiplications, and
// otherwise-idle cores are put to work between protocol rounds.

// Pool precomputes Paillier blinding factors r^N mod N² for one public key.
type Pool struct {
	pk      *PublicKey
	buf     chan *big.Int
	workers *parallel.Workers

	// rmu serializes draws from random so that a deterministic reader yields
	// a reproducible sequence of blinding bases (exponentiation, the costly
	// part, still runs concurrently).
	rmu    sync.Mutex
	random io.Reader

	// Short-exponent blinding (WithShortExp): refills draw (hⁿ)^α for a
	// fresh shortBits-bit α instead of r^N for a full-width r.
	shortBits int
	hn        *big.Int // h^N mod N², precomputed once per key
	alphaMax  *big.Int // 2^shortBits, the exclusive draw bound for α

	// Fixed-base comb acceleration for the constant short-exponent base hⁿ
	// (on by default with WithShortExp; WithFixedBase(false) ablates it).
	fixedBase bool
	fbBudget  int64
	fb        *FixedBase

	// availMu/availCond wake WaitAvailable callers on every refill landing
	// or slot loss, replacing the previous 50 µs sleep-poll loop.
	availMu   sync.Mutex
	availCond *sync.Cond

	hits   atomic.Int64
	misses atomic.Int64
	lost   atomic.Int64 // slots permanently dropped (reader error, closed workers)
}

// PoolStats reports pool effectiveness counters.
type PoolStats struct {
	Hits      int64 // encryptions served from precomputed blindings
	Misses    int64 // encryptions that fell back to inline exponentiation
	Lost      int64 // slots permanently dropped (reader error, closed workers)
	Available int   // blindings currently buffered
}

// DefaultShortExpBits is the α width WithShortExp(0) selects: comfortably
// above twice any plausible statistical security target, yet ~5× shorter
// than a 2048-bit modulus, making each refill exponentiation ~5× cheaper.
const DefaultShortExpBits = 400

// PoolOption configures optional Pool behaviour at construction.
type PoolOption func(*Pool)

// WithShortExp switches the pool to Damgård–Jurik–Nielsen-style
// short-exponent blinding (DJN '10, §4.2): at construction the pool
// precomputes hⁿ = h^N mod N² for h = −y² mod N (a random element of the
// subgroup of quadratic residues with Jacobi symbol +1), and each refill
// draws a fresh α of the given bit width and buffers (hⁿ)^α — a ~bits-bit
// exponentiation instead of a full N-bit one. Ciphertext indistinguishability
// then rests on the DJN subgroup assumption rather than Decisional Composite
// Residuosity alone; the classic full-width path (no option) remains the
// default. bits <= 0 selects DefaultShortExpBits.
func WithShortExp(bits int) PoolOption {
	if bits <= 0 {
		bits = DefaultShortExpBits
	}
	return func(p *Pool) { p.shortBits = bits }
}

// WithFixedBase toggles the Lim–Lee comb tables for the short-exponent base
// hⁿ. On by default: a short-exp refill then costs ~bits/8 multiplications
// with no squarings instead of a ~bits-bit square-and-multiply. Pass false
// for the ablation baseline (PR 3's plain big.Int.Exp refill). budget caps
// the comb table bytes; <= 0 selects DefaultFixedBaseBudget. No effect
// without WithShortExp.
func WithFixedBase(on bool, budget int64) PoolOption {
	return func(p *Pool) { p.fixedBase = on; p.fbBudget = budget }
}

// NewPool starts a blinding-factor pool for pk holding up to capacity
// precomputed factors, refilled by the given number of background workers
// (GOMAXPROCS if workers <= 0). random is the randomness source; pass a
// deterministic reader in tests for reproducible blindings (with workers=1
// the buffered order is deterministic too). Close the pool when done.
func NewPool(pk *PublicKey, capacity, workers int, random io.Reader, opts ...PoolOption) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	p := &Pool{
		pk:        pk,
		buf:       make(chan *big.Int, capacity),
		workers:   parallel.NewWorkers(workers, capacity),
		random:    random,
		fixedBase: true,
	}
	p.availCond = sync.NewCond(&p.availMu)
	for _, o := range opts {
		o(p)
	}
	if p.shortBits > 0 {
		// One-time per-key setup: h = −y² mod N for random y, hⁿ = h^N mod N²
		// (CRT-split when the process holds the key), and the comb tables
		// that turn every later (hⁿ)^α refill into ~bits/8 multiplications.
		y, err := randUnit(random, pk.N)
		if err != nil {
			panic(fmt.Sprintf("paillier: pool short-exp setup: %v", err))
		}
		h := new(big.Int).Mul(y, y)
		h.Neg(h).Mod(h, pk.N)
		if so := SecretOpsFor(pk); so != nil {
			p.hn = so.ExpCRT(h, pk.N)
		} else {
			p.hn = h.Exp(h, pk.N, pk.N2)
		}
		p.alphaMax = new(big.Int).Lsh(one, uint(p.shortBits))
		if p.fixedBase {
			p.fb = NewFixedBase(p.hn, pk.N2, p.shortBits+1, p.fbBudget)
		}
	}
	for i := 0; i < capacity; i++ {
		p.workers.Submit(p.refill)
	}
	return p
}

// blindingFactor computes one blinding factor: (hⁿ)^α for a fresh short α on
// the short-exponent path, r^N for a fresh full-width r otherwise.
func (p *Pool) blindingFactor() (*big.Int, error) {
	if p.shortBits > 0 {
		p.rmu.Lock()
		alpha, err := rand.Int(p.random, p.alphaMax)
		p.rmu.Unlock()
		if err != nil {
			return nil, err
		}
		alpha.Add(alpha, one) // α ∈ [1, 2^bits]: never an unblinded factor of 1
		if p.fb != nil {
			return p.fb.Exp(alpha), nil
		}
		if so := SecretOpsFor(p.pk); so != nil {
			return so.ExpCRT(p.hn, alpha), nil
		}
		return new(big.Int).Exp(p.hn, alpha, p.pk.N2), nil
	}
	p.rmu.Lock()
	r, err := randUnit(p.random, p.pk.N)
	p.rmu.Unlock()
	if err != nil {
		return nil, err
	}
	if so := SecretOpsFor(p.pk); so != nil {
		return so.ExpCRT(r, p.pk.N), nil
	}
	return new(big.Int).Exp(r, p.pk.N, p.pk.N2), nil
}

// signalAvail wakes WaitAvailable callers after a refill lands or a slot is
// lost. The lock pairs with the condition re-check in WaitAvailable so a
// wakeup between check and Wait is never missed.
func (p *Pool) signalAvail() {
	p.availMu.Lock()
	p.availCond.Broadcast()
	p.availMu.Unlock()
}

// refill computes one blinding factor and buffers it. One refill job is in
// flight (queued, running, or buffered) per pool slot, so the buffered send
// cannot block indefinitely.
func (p *Pool) refill() {
	rn, err := p.blindingFactor()
	if err != nil {
		p.lost.Add(1) // degrade: the slot is lost, Enc falls back inline
		p.signalAvail()
		return
	}
	p.buf <- rn
	p.signalAvail()
}

// blinding returns a precomputed factor, or nil if the pool is drained.
// Taking a factor schedules its replacement.
func (p *Pool) blinding() *big.Int {
	select {
	case rn := <-p.buf:
		p.hits.Add(1)
		if !p.workers.Submit(p.refill) {
			p.lost.Add(1) // workers closed: the slot will never refill
			p.signalAvail()
		}
		return rn
	default:
		p.misses.Add(1)
		return nil
	}
}

// Enc encrypts m ∈ Z_N like PublicKey.Encrypt but takes the blinding factor
// from the pool when one is available, falling back to an inline
// exponentiation when drained.
func (p *Pool) Enc(m *big.Int) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(p.pk.N) >= 0 {
		return nil, fmt.Errorf("paillier: plaintext out of Z_N range")
	}
	rn := p.blinding()
	if rn == nil {
		var err error
		if rn, err = p.blindingFactor(); err != nil {
			return nil, err
		}
	}
	gm := new(big.Int).Mul(m, p.pk.N)
	gm.Add(gm, one)
	gm.Mod(gm, p.pk.N2)
	c := gm.Mul(gm, rn)
	c.Mod(c, p.pk.N2)
	return &Ciphertext{C: c}, nil
}

// Stats returns effectiveness counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{Hits: p.hits.Load(), Misses: p.misses.Load(), Lost: p.lost.Load(), Available: len(p.buf)}
}

// WaitAvailable blocks until at least n blinding factors are buffered,
// capped at the fill level still reachable (capacity minus permanently lost
// slots — reader errors, closed workers — so it cannot wait forever on a
// degraded or closed pool). The wait parks on a condition variable signalled
// by every refill landing or slot loss, instead of the earlier 50 µs
// sleep-poll loop. With workers=1 and a sequential consumer that calls
// WaitAvailable(1) before each Enc, every encryption is served from the pool
// in FIFO draw order, so a deterministic reader yields fully reproducible
// ciphertexts — the mode the test suite uses.
//
// Liveness against Close (audited for the k-session group runtime, which
// closes per-party pools while group sessions may still be parked here):
// every slot is always in exactly one of three states — buffered (len(buf)),
// permanently lost (lost), or in flight (queued/running refill job, or taken
// in blinding() before its replacement is submitted). NewPool starts every
// slot in flight; refill moves in-flight → buffered or in-flight → lost;
// blinding moves buffered → in-flight (Submit accepted) or buffered → lost
// (Submit after Close). Both slot-consuming transitions broadcast under
// availMu *after* the state change, and the waiter re-checks under the same
// mutex, so a wakeup cannot be missed. A parked waiter implies
// len(buf) < cap − lost, i.e. at least one slot is in flight — and Close
// drains in-flight jobs rather than dropping them (Workers.Close), so that
// slot's refill-or-loss broadcast is still coming. Hence a waiter racing
// Close always wakes: either the remaining refills land (the buffer reaches
// the target) or their slots are marked Lost (the reachable cap drops to
// meet it). The close-while-waiting regression tests in pool_test.go pin
// this contract.
func (p *Pool) WaitAvailable(n int) {
	p.availMu.Lock()
	defer p.availMu.Unlock()
	for {
		max := cap(p.buf) - int(p.lost.Load())
		target := n
		if target > max {
			target = max
		}
		if len(p.buf) >= target {
			return
		}
		p.availCond.Wait()
	}
}

// Close stops the background workers, waiting for in-flight refills rather
// than dropping them — the property WaitAvailable's liveness argument (see
// its comment) rests on: every slot a parked waiter is counting on either
// lands in the buffer or is marked Lost with a broadcast, never silently
// vanishes. The pool remains usable afterwards (Enc falls back inline once
// the buffer drains; draining a taken slot after Close marks it Lost).
func (p *Pool) Close() { p.workers.Close() }

// poolReg maps a public-key fingerprint (pk.fingerprint(), an O(1) mix of
// modulus limbs and bit length) to its registered pool. The previous keying
// by pk.N.String() performed an O(n²) binary→decimal conversion of the whole
// modulus on *every pooled encryption*; the fingerprint lookup is ~100×
// cheaper at 2048 bits (see BenchmarkPoolLookup). Keys are still compared by
// modulus value on a hit — distinct PublicKey allocations for the same key
// circulate through the protocol layer, and a fingerprint collision must
// degrade to the slow path, not alias another key's pool.
var poolReg sync.Map

// RegisterPool makes p the process-wide pool for its public key, so that
// EncryptPooled (and through it the hetensor encryption paths) transparently
// use the fast path. It replaces any previous registration for the key.
func RegisterPool(p *Pool) { poolReg.Store(p.pk.fingerprint(), p) }

// UnregisterPool removes the registration for pk (the pool is not closed).
func UnregisterPool(pk *PublicKey) {
	if p := PoolFor(pk); p != nil {
		poolReg.Delete(pk.fingerprint())
	}
}

// PoolFor returns the registered pool for pk, or nil.
func PoolFor(pk *PublicKey) *Pool {
	v, ok := poolReg.Load(pk.fingerprint())
	if !ok {
		return nil
	}
	p := v.(*Pool)
	if p.pk.N.Cmp(pk.N) != 0 {
		return nil // fingerprint collision with a different key
	}
	return p
}

// EncryptPooled encrypts m under pk, using the registered blinding pool for
// pk when one exists and package randomness otherwise. This is the entry
// point the vectorized layers use, so enabling a pool accelerates every
// encryption site at once.
func EncryptPooled(pk *PublicKey, m *big.Int) (*Ciphertext, error) {
	if p := PoolFor(pk); p != nil {
		return p.Enc(m)
	}
	return pk.Encrypt(Rand, m)
}
