// Package paillier implements the Paillier additively homomorphic
// cryptosystem (Paillier, EUROCRYPT '99) as used by BlindFL's federated
// source layers. It supports:
//
//	Enc(v)             — encryption under a public key
//	Dec(⟦v⟧)           — decryption with the secret key (CRT-accelerated)
//	⟦u⟧ + ⟦v⟧ = ⟦u+v⟧  — homomorphic addition (AddCipher)
//	⟦u⟧ + v  = ⟦u+v⟧   — plaintext addition (AddPlain)
//	k·⟦v⟧    = ⟦k·v⟧   — scalar multiplication (MulPlain)
//
// Plaintexts are elements of Z_n; callers encode signed fixed-point values
// via the fixedpoint package. The implementation uses g = n+1, so encryption
// costs one n-bit exponentiation (the random blinding r^n) plus two
// multiplications.
//
// On top of the textbook operations the package provides a fast
// exponentiation engine (signed.go) for the homomorphic matmul hot paths:
//
//	MulPlainSigned — scalar multiplication by a signed-magnitude scalar,
//	  exponentiating by the small magnitude and inverting once mod n²
//	  instead of exponentiating by the full-width ring image n−|k|;
//	DotRow / DotTables — Straus interleaved multi-exponentiation computing
//	  an encrypted dot product Π cᵢ^{kᵢ} with one shared squaring chain,
//	  per-base window tables, and a single inversion for all negative
//	  factors;
//	Pool + WithShortExp — precomputed encryption blindings, optionally
//	  drawn as (h^n)^α for a short random α in the style of
//	  Damgård–Jurik–Nielsen, replacing the full n-bit refill
//	  exponentiation with a ~400-bit one.
//
// and an amortized precomputation runtime (fixedbase.go, crt.go) that turns
// one-time work into per-op savings:
//
//	FixedBase — Lim–Lee comb tables for a constant base (the pool's hⁿ):
//	  after a one-time table build, base^e costs ~bits/8 multiplications
//	  with no squarings. Short-exp pool refills use it by default
//	  (WithFixedBase ablates it).
//	SecretOps — the key holder's CRT fast paths: ExpCRT (exponentiate mod
//	  p² and q² separately, exponents reduced modulo the subgroup orders,
//	  recombine), an adaptive MulPlain (CRT-split for short scalars,
//	  decrypt–scale–re-blind for full-width ring images), and dual-chain
//	  Straus tables in PrecomputeDot/DotRow. Obtain with sk.Ops();
//	  RegisterSecretOps routes the public entry points through it for keys
//	  this process holds — a single-trust-domain optimization (see crt.go).
package paillier

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
	"sync"
)

var one = big.NewInt(1)

// PublicKey holds the encryption key. N is the modulus; ciphertexts live in
// Z_{N²}.
type PublicKey struct {
	N  *big.Int
	N2 *big.Int // N², cached
}

// fingerprint returns a cheap 64-bit identity for the modulus, used to key
// the process-wide pool and SecretOps registries. Mixing the lowest and
// highest limbs with the bit length is O(1) — unlike the previous
// N.String() key, which performed an O(n²) binary→decimal conversion of a
// 2048-bit modulus on every registry lookup. Lookups confirm the full
// modulus value on a hit, so a collision can only cost the fast path, never
// correctness.
func (pk *PublicKey) fingerprint() uint64 {
	ws := pk.N.Bits()
	if len(ws) == 0 {
		return 0
	}
	return uint64(ws[0]) ^ uint64(ws[len(ws)-1])<<1 ^ uint64(pk.N.BitLen())
}

// PrivateKey holds the decryption key together with the CRT parameters that
// make Dec roughly 3× faster than the textbook formula.
type PrivateKey struct {
	PublicKey
	p, q   *big.Int // prime factors of N
	p2, q2 *big.Int // p², q²
	pOrder *big.Int // p−1
	qOrder *big.Int // q−1
	hp, hq *big.Int // CRT decryption constants
	qInvP  *big.Int // q⁻¹ mod p

	lambda *big.Int // lcm(p−1, q−1), cached for DecryptTextbook
	mu     *big.Int // L(g^λ mod N²)⁻¹ mod N, cached for DecryptTextbook

	opsOnce sync.Once
	ops     *SecretOps // CRT fast-path handle, built once by Ops()
}

// Ciphertext is an element of Z_{N²} encrypting one plaintext.
type Ciphertext struct {
	C *big.Int
}

// GenerateKey creates a key pair with an n-bit modulus using randomness from
// random (crypto/rand.Reader in production). Bits must be at least 128; real
// deployments use 2048, the test suite uses smaller keys for speed.
func GenerateKey(random io.Reader, bits int) (*PrivateKey, error) {
	if bits < 128 {
		return nil, fmt.Errorf("paillier: key size %d too small (min 128)", bits)
	}
	for {
		p, err := rand.Prime(random, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := rand.Prime(random, bits-bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		// gcd(pq, (p-1)(q-1)) must be 1; guaranteed when p, q are distinct
		// primes of equal size, but verify to be safe.
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		phi := new(big.Int).Mul(pm1, qm1)
		if new(big.Int).GCD(nil, nil, n, phi).Cmp(one) != 0 {
			continue
		}
		priv := &PrivateKey{
			PublicKey: PublicKey{N: n, N2: new(big.Int).Mul(n, n)},
			p:         p, q: q,
			p2:     new(big.Int).Mul(p, p),
			q2:     new(big.Int).Mul(q, q),
			pOrder: pm1,
			qOrder: qm1,
		}
		// hp = L_p(g^(p−1) mod p²)⁻¹ mod p with g = n+1:
		// g^(p−1) mod p² = 1 + (p−1)·n mod p², so L_p of it is ((p−1)·n/p... )
		// Compute directly for clarity.
		gp := new(big.Int).Exp(new(big.Int).Add(n, one), pm1, priv.p2)
		priv.hp = new(big.Int).ModInverse(lFunc(gp, p), p)
		gq := new(big.Int).Exp(new(big.Int).Add(n, one), qm1, priv.q2)
		priv.hq = new(big.Int).ModInverse(lFunc(gq, q), q)
		if priv.hp == nil || priv.hq == nil {
			continue
		}
		priv.qInvP = new(big.Int).ModInverse(q, p)
		if priv.qInvP == nil {
			continue
		}
		// Cache λ = lcm(p−1, q−1) and µ = L(g^λ mod N²)⁻¹ mod N at keygen so
		// DecryptTextbook measures only the decryption exponentiation.
		priv.lambda = new(big.Int).Mul(pm1, qm1)
		priv.lambda.Div(priv.lambda, new(big.Int).GCD(nil, nil, pm1, qm1))
		gl := new(big.Int).Exp(new(big.Int).Add(n, one), priv.lambda, priv.N2)
		priv.mu = new(big.Int).ModInverse(lFunc(gl, n), n)
		if priv.mu == nil {
			continue
		}
		return priv, nil
	}
}

// lFunc computes L(x) = (x−1)/d.
func lFunc(x, d *big.Int) *big.Int {
	r := new(big.Int).Sub(x, one)
	return r.Div(r, d)
}

// Encrypt encrypts m ∈ Z_N under pk: c = (1 + m·N)·r^N mod N².
func (pk *PublicKey) Encrypt(random io.Reader, m *big.Int) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("paillier: plaintext out of Z_N range")
	}
	r, err := randUnit(random, pk.N)
	if err != nil {
		return nil, err
	}
	// g^m = (1+N)^m = 1 + m·N (mod N²).
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, one)
	gm.Mod(gm, pk.N2)
	var rn *big.Int
	if so := SecretOpsFor(pk); so != nil {
		rn = so.ExpCRT(r, pk.N) // own-key encryption: CRT-split blinding
	} else {
		rn = new(big.Int).Exp(r, pk.N, pk.N2)
	}
	c := gm.Mul(gm, rn)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}, nil
}

// randUnit draws r uniformly from Z_N^* (gcd(r, N) = 1).
func randUnit(random io.Reader, n *big.Int) (*big.Int, error) {
	for {
		r, err := rand.Int(random, n)
		if err != nil {
			return nil, err
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, n).Cmp(one) == 0 {
			return r, nil
		}
	}
}

// Decrypt recovers the plaintext of c using CRT: decrypt modulo p and q
// separately, then recombine.
func (sk *PrivateKey) Decrypt(c *Ciphertext) *big.Int {
	// mp = L_p(c^(p−1) mod p²)·hp mod p
	cp := new(big.Int).Exp(c.C, sk.pOrder, sk.p2)
	mp := lFunc(cp, sk.p)
	mp.Mul(mp, sk.hp)
	mp.Mod(mp, sk.p)
	cq := new(big.Int).Exp(c.C, sk.qOrder, sk.q2)
	mq := lFunc(cq, sk.q)
	mq.Mul(mq, sk.hq)
	mq.Mod(mq, sk.q)
	// CRT combine: m = mq + q·((mp − mq)·qInvP mod p)
	d := new(big.Int).Sub(mp, mq)
	d.Mul(d, sk.qInvP)
	d.Mod(d, sk.p)
	m := d.Mul(d, sk.q)
	m.Add(m, mq)
	m.Mod(m, sk.N)
	return m
}

// DecryptTextbook recovers the plaintext with the textbook formula
// m = L(c^λ mod N²)·µ mod N, without the CRT split. λ and µ are computed
// once at keygen, so this measures only the decryption exponentiation. It
// exists for the decryption ablation benchmark; Decrypt is ~3–4× faster and
// functionally identical.
func (sk *PrivateKey) DecryptTextbook(c *Ciphertext) *big.Int {
	cl := new(big.Int).Exp(c.C, sk.lambda, sk.N2)
	m := lFunc(cl, sk.N)
	m.Mul(m, sk.mu)
	return m.Mod(m, sk.N)
}

// AddCipher returns ⟦a+b⟧ given ⟦a⟧ and ⟦b⟧ under the same key.
func (pk *PublicKey) AddCipher(a, b *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(a.C, b.C)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}
}

// AddPlain returns ⟦a+m⟧ given ⟦a⟧ and a plaintext m ∈ Z_N, without a fresh
// encryption: ⟦a⟧·g^m = ⟦a⟧·(1+m·N) mod N². Panics with a clear message on
// a corrupted (nil-valued) ciphertext instead of returning one that fails
// later inside big.Int.
func (pk *PublicKey) AddPlain(a *Ciphertext, m *big.Int) *Ciphertext {
	if a == nil || a.C == nil {
		panic("paillier: AddPlain on corrupted ciphertext (nil value)")
	}
	gm := new(big.Int).Mul(new(big.Int).Mod(m, pk.N), pk.N)
	gm.Add(gm, one)
	gm.Mod(gm, pk.N2)
	c := gm.Mul(gm, a.C)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}
}

// MulPlain returns ⟦k·a⟧ given ⟦a⟧ and a plaintext scalar k (may be
// negative; it is reduced into Z_N). When a SecretOps is registered for pk
// (the caller's process holds the key) the CRT fast path is taken; its
// result decrypts identically but is a different group element for
// full-width scalars (see SecretOps.MulPlain).
func (pk *PublicKey) MulPlain(a *Ciphertext, k *big.Int) *Ciphertext {
	if so := SecretOpsFor(pk); so != nil {
		return so.MulPlain(a, k)
	}
	kk := new(big.Int).Mod(k, pk.N)
	return &Ciphertext{C: new(big.Int).Exp(a.C, kk, pk.N2)}
}

// Neg returns ⟦−a⟧ by inverting the ciphertext mod N². A valid ciphertext is
// always invertible; Neg panics with a clear message when handed a corrupted
// one (a value sharing a factor with N) instead of returning a ciphertext
// wrapping nil that fails later inside big.Int.
func (pk *PublicKey) Neg(a *Ciphertext) *Ciphertext {
	if a == nil || a.C == nil {
		panic("paillier: Neg on corrupted ciphertext (nil value)")
	}
	return &Ciphertext{C: mustInverse(a.C, pk.N2, "Neg")}
}

// EncryptZero returns a fresh encryption of zero (useful for re-randomizing).
func (pk *PublicKey) EncryptZero(random io.Reader) (*Ciphertext, error) {
	return pk.Encrypt(random, big.NewInt(0))
}

// Rand is the default randomness source for the package.
var Rand = rand.Reader
