package paillier

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"sync"
	"testing"
	"time"
)

func TestPoolEncDecryptRoundTrip(t *testing.T) {
	k := testKey
	p := NewPool(&k.PublicKey, 8, 2, rand.Reader)
	defer p.Close()
	for _, v := range []int64{0, 1, 42, 1 << 40} {
		m := big.NewInt(v)
		c, err := p.Enc(m)
		if err != nil {
			t.Fatal(err)
		}
		if got := k.Decrypt(c); got.Cmp(m) != 0 {
			t.Fatalf("Dec(PoolEnc(%d)) = %v", v, got)
		}
	}
}

func TestPoolEncRejectsOutOfRange(t *testing.T) {
	k := testKey
	p := NewPool(&k.PublicKey, 2, 1, rand.Reader)
	defer p.Close()
	if _, err := p.Enc(big.NewInt(-1)); err == nil {
		t.Fatal("accepted negative plaintext")
	}
	if _, err := p.Enc(new(big.Int).Set(k.N)); err == nil {
		t.Fatal("accepted plaintext == N")
	}
}

// TestPoolDrainAndRefill exhausts the buffer faster than one worker can
// refill it; every encryption must stay correct through the drained phase,
// and the miss counter must record the fallbacks.
func TestPoolDrainAndRefill(t *testing.T) {
	k := testKey
	p := NewPool(&k.PublicKey, 2, 1, rand.Reader)
	defer p.Close()
	m := big.NewInt(7)
	for i := 0; i < 40; i++ {
		c, err := p.Enc(m)
		if err != nil {
			t.Fatal(err)
		}
		if got := k.Decrypt(c); got.Cmp(m) != 0 {
			t.Fatalf("iteration %d: wrong decryption %v", i, got)
		}
	}
	s := p.Stats()
	if s.Hits+s.Misses != 40 {
		t.Fatalf("hits %d + misses %d != 40", s.Hits, s.Misses)
	}
}

func TestPoolConcurrentEnc(t *testing.T) {
	k := testKey
	p := NewPool(&k.PublicKey, 16, 4, rand.Reader)
	defer p.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				m := big.NewInt(int64(g*100 + i))
				c, err := p.Enc(m)
				if err != nil {
					errs <- err
					return
				}
				if got := k.Decrypt(c); got.Cmp(m) != 0 {
					errs <- errMismatch(m, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct{ want, got *big.Int }

func errMismatch(want, got *big.Int) error { return mismatchError{want, got} }
func (e mismatchError) Error() string {
	return "decrypt mismatch: want " + e.want.String() + " got " + e.got.String()
}

// TestPoolDeterministicReader checks reproducibility: two single-worker pools
// fed the same deterministic reader must produce identical ciphertexts for
// identical plaintexts.
func TestPoolDeterministicReader(t *testing.T) {
	k := testKey
	enc := func(seed int64) []*big.Int {
		p := NewPool(&k.PublicKey, 4, 1, mrand.New(mrand.NewSource(seed)))
		defer p.Close()
		var out []*big.Int
		for i := 0; i < 12; i++ { // exceeds capacity: refills must keep the draw order
			p.WaitAvailable(1) // never fall back: pooled draws are strictly FIFO
			c, err := p.Enc(big.NewInt(int64(i)))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, c.C)
		}
		return out
	}
	a, b := enc(99), enc(99)
	for i := range a {
		if a[i].Cmp(b[i]) != 0 {
			t.Fatalf("ciphertext %d differs between identically seeded pools", i)
		}
	}
	c := enc(100)
	same := true
	for i := range a {
		if a[i].Cmp(c[i]) != 0 {
			same = false
		}
	}
	if same {
		t.Fatal("differently seeded pools produced identical ciphertexts")
	}
}

func TestPoolRegistry(t *testing.T) {
	k := testKey
	pk := &k.PublicKey
	if PoolFor(pk) != nil {
		t.Fatal("unexpected pre-registered pool")
	}
	p := NewPool(pk, 4, 1, rand.Reader)
	defer p.Close()
	RegisterPool(p)
	defer UnregisterPool(pk)
	// A distinct PublicKey allocation with the same modulus must resolve.
	alias := &PublicKey{N: new(big.Int).Set(pk.N), N2: new(big.Int).Set(pk.N2)}
	if PoolFor(alias) != p {
		t.Fatal("registry did not resolve an aliased public key")
	}
	m := big.NewInt(123)
	c, err := EncryptPooled(alias, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Decrypt(c); got.Cmp(m) != 0 {
		t.Fatalf("EncryptPooled round trip = %v", got)
	}
	UnregisterPool(pk)
	if PoolFor(pk) != nil {
		t.Fatal("pool still registered after UnregisterPool")
	}
	// Unregistered path must still encrypt (plain fallback).
	c2, err := EncryptPooled(pk, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Decrypt(c2); got.Cmp(m) != 0 {
		t.Fatalf("fallback round trip = %v", got)
	}
}

func cap64(n int) int {
	if n > 64 {
		return 64
	}
	return n
}

func BenchmarkEncrypt(b *testing.B) {
	k := testKey
	m := big.NewInt(1 << 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.PublicKey.Encrypt(rand.Reader, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoolEnc measures the fast path with a warm pool: the critical-path
// cost per encryption is two multiplications instead of an N-bit
// exponentiation. Refills run outside the timer, modelling precompute that
// overlaps communication and plaintext phases. Note: on a single-core
// machine the scheduler may still interleave refill exponentiations into the
// timed window (throughput there is work-conserving either way); the
// full benefit shows on multicore or latency-bound paths.
func BenchmarkPoolEnc(b *testing.B) {
	k := testKey
	p := NewPool(&k.PublicKey, 64, 0, rand.Reader)
	defer p.Close()
	m := big.NewInt(1 << 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p.WaitAvailable(cap64(b.N - i))
		b.StartTimer()
		if _, err := p.Enc(m); err != nil {
			b.Fatal(err)
		}
	}
}

// errReader always fails, simulating a broken randomness source.
type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, errMismatch(one, one) }

// TestPoolLostSurfaced: a pool with a broken randomness source loses every
// slot; the Lost counter must record it and WaitAvailable must return (the
// reachable fill level collapses to zero) instead of waiting forever.
func TestPoolLostSurfaced(t *testing.T) {
	k := testKey
	p := NewPool(&k.PublicKey, 4, 2, errReader{})
	defer p.Close()
	p.WaitAvailable(4) // must unblock as the lost count grows, not hang
	// All refills eventually fail; WaitAvailable returning doesn't guarantee
	// every worker has recorded its loss yet, so wait for the full count.
	for p.Stats().Lost < 4 {
		p.WaitAvailable(4)
	}
	s := p.Stats()
	if s.Lost != 4 || s.Available != 0 {
		t.Fatalf("stats = %+v, want 4 lost / 0 available", s)
	}
}

// TestPoolCloseWakesWaiter: a waiter parked in WaitAvailable while the pool
// is being closed must always wake — the in-flight refills it is counting on
// either land in the buffer or are marked Lost, each with a broadcast.
// Drains before closing so the waiter genuinely parks on in-flight slots.
func TestPoolCloseWakesWaiter(t *testing.T) {
	k := testKey
	for round := 0; round < 8; round++ {
		p := NewPool(&k.PublicKey, 4, 2, rand.Reader)
		// Drain whatever is buffered so WaitAvailable(4) has to park while
		// replacement refills are still in flight.
		for i := 0; i < 4; i++ {
			if _, err := p.Enc(big.NewInt(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
		released := make(chan struct{})
		go func() {
			p.WaitAvailable(4)
			close(released)
		}()
		p.Close()
		select {
		case <-released:
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: WaitAvailable still parked after Close", round)
		}
		s := p.Stats()
		if s.Available+int(s.Lost) < 4 {
			t.Fatalf("round %d: %d available + %d lost < capacity 4: a slot vanished without being buffered or marked Lost", round, s.Available, s.Lost)
		}
	}
}

// TestPoolDrainAfterCloseMarksSlotsLost: taking buffered factors after Close
// cannot resubmit refills; every such slot must surface in the Lost counter
// so WaitAvailable's reachable-fill cap collapses and callers never park on
// slots that will not come back.
func TestPoolDrainAfterCloseMarksSlotsLost(t *testing.T) {
	k := testKey
	p := NewPool(&k.PublicKey, 3, 1, rand.Reader)
	p.WaitAvailable(3)
	p.Close()
	for i := 0; i < 3; i++ {
		if _, err := p.Enc(big.NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()
	if s.Lost != 3 || s.Available != 0 {
		t.Fatalf("stats after drain-past-close = %+v, want 3 lost / 0 available", s)
	}
	finished := make(chan struct{})
	go func() {
		p.WaitAvailable(1) // reachable cap is 0: must return immediately
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("WaitAvailable parked on a fully lost pool")
	}
}

// TestPoolShortExpFixedBaseExact: with the same deterministic reader, the
// comb-table refill path must produce bit-identical blindings (and therefore
// ciphertexts) to the big.Int.Exp refill path it replaces.
func TestPoolShortExpFixedBaseExact(t *testing.T) {
	k := testKey
	enc := func(fixedBase bool) []*big.Int {
		p := NewPool(&k.PublicKey, 4, 1, mrand.New(mrand.NewSource(5)),
			WithShortExp(64), WithFixedBase(fixedBase, 0))
		defer p.Close()
		var out []*big.Int
		for i := 0; i < 10; i++ {
			p.WaitAvailable(1)
			c, err := p.Enc(big.NewInt(int64(i)))
			if err != nil {
				t.Fatal(err)
			}
			if got := k.Decrypt(c); got.Cmp(big.NewInt(int64(i))) != 0 {
				t.Fatalf("round trip %d = %v", i, got)
			}
			out = append(out, c.C)
		}
		return out
	}
	plain, comb := enc(false), enc(true)
	for i := range plain {
		if plain[i].Cmp(comb[i]) != 0 {
			t.Fatalf("ciphertext %d differs between big.Int.Exp and fixed-base refills", i)
		}
	}
}

// BenchmarkPoolLookupStringKey measures the pre-fix registry keying: a
// decimal conversion of the whole modulus on every lookup.
func BenchmarkPoolLookupStringKey(b *testing.B) {
	k := testKey
	pk := &k.PublicKey
	var reg sync.Map
	reg.Store(pk.N.String(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := reg.Load(pk.N.String()); !ok {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkPoolLookupFingerprint measures the fingerprint keying PoolFor
// uses now: an O(1) limb mix plus one modulus comparison on the hit.
func BenchmarkPoolLookupFingerprint(b *testing.B) {
	k := testKey
	pk := &k.PublicKey
	p := NewPool(pk, 1, 1, rand.Reader)
	defer p.Close()
	RegisterPool(p)
	defer UnregisterPool(pk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if PoolFor(pk) == nil {
			b.Fatal("lookup failed")
		}
	}
}
