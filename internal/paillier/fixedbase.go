package paillier

import (
	"fmt"
	"math/big"
)

// Fixed-base comb exponentiation (Lim–Lee, CRYPTO '94 family). When the same
// base is exponentiated over and over — the pool's blinding base hⁿ, a
// re-randomization generator — the squaring chain of a generic square-and-
// multiply is pure waste: every power of the base is known ahead of time.
// FixedBase precomputes base^(d·2^(i·w)) for every window position i and
// digit d, after which base^e costs only one multiplication per non-zero
// w-bit digit of e (~bits/w multiplications, no squarings at all). For the
// pool's 400-bit short exponents at w = 8 that is ~50 multiplications versus
// the ~500 squaring-equivalents of big.Int.Exp — a 5–8× refill speedup on
// top of the short-exponent win.
//
// The table is sized adaptively: the widest w whose table fits the byte
// budget, so callers trade memory for speed with one knob.

// DefaultFixedBaseBudget caps one FixedBase table at 16 MiB — enough for
// w = 8 over a 400-bit exponent at a 2048-bit modulus (~6.5 MiB) while
// keeping a handful of tables affordable in one process.
const DefaultFixedBaseBudget = 16 << 20

// FixedBase holds comb tables for one constant base modulo one modulus.
// It is immutable after construction and safe for concurrent Exp calls.
type FixedBase struct {
	m    *big.Int
	w    uint
	bits int          // max exponent bit length the table covers
	tabs [][]*big.Int // tabs[i][d] = base^(d·2^(i·w)) mod m, d = 1..2^w−1
}

// fixedBaseEntryBytes estimates the memory of one table residue mod m:
// the limb storage plus big.Int bookkeeping overhead.
func fixedBaseEntryBytes(m *big.Int) int64 {
	return int64(m.BitLen()/8 + 48)
}

// fixedBaseWindow picks the widest window whose comb table for maxBits-bit
// exponents fits the byte budget, clamped to [1, 8]. Wider windows shrink
// the per-Exp multiplication count (~maxBits/w) but grow the table
// exponentially (⌈maxBits/w⌉·(2^w−1) residues).
func fixedBaseWindow(maxBits int, m *big.Int, budget int64) uint {
	if budget <= 0 {
		budget = DefaultFixedBaseBudget
	}
	eb := fixedBaseEntryBytes(m)
	for w := uint(8); w > 1; w-- {
		wins := int64((maxBits + int(w) - 1) / int(w))
		if wins*int64((1<<w)-1)*eb <= budget {
			return w
		}
	}
	return 1
}

// NewFixedBase precomputes comb tables for base mod m covering exponents up
// to maxBits bits. budget caps the table memory in bytes (<= 0 selects
// DefaultFixedBaseBudget); the window width adapts to it. Construction costs
// ~maxBits squarings plus ⌈maxBits/w⌉·(2^w−2) multiplications mod m — a
// one-time cost amortized across every later Exp.
func NewFixedBase(base, m *big.Int, maxBits int, budget int64) *FixedBase {
	if maxBits < 1 {
		panic(fmt.Sprintf("paillier: NewFixedBase maxBits %d < 1", maxBits))
	}
	if m.Sign() <= 0 {
		panic("paillier: NewFixedBase modulus must be positive")
	}
	w := fixedBaseWindow(maxBits, m, budget)
	wins := (maxBits + int(w) - 1) / int(w)
	f := &FixedBase{m: m, w: w, bits: maxBits, tabs: make([][]*big.Int, wins)}
	size := 1 << w
	cur := new(big.Int).Mod(base, m) // base^(2^(i·w)), advanced per window
	for i := 0; i < wins; i++ {
		tab := make([]*big.Int, size)
		tab[1] = new(big.Int).Set(cur)
		for d := 2; d < size; d++ {
			tab[d] = new(big.Int).Mul(tab[d-1], tab[1])
			tab[d].Mod(tab[d], m)
		}
		f.tabs[i] = tab
		if i+1 < wins {
			for s := uint(0); s < w; s++ {
				cur.Mul(cur, cur).Mod(cur, m)
			}
		}
	}
	return f
}

// Window reports the comb window width the byte budget selected.
func (f *FixedBase) Window() uint { return f.w }

// Bits reports the largest exponent bit length the table covers.
func (f *FixedBase) Bits() int { return f.bits }

// Bytes estimates the table's memory footprint.
func (f *FixedBase) Bytes() int64 {
	n := 0
	for _, tab := range f.tabs {
		n += len(tab) - 1
	}
	return int64(n) * fixedBaseEntryBytes(f.m)
}

// Exp returns base^e mod m using the comb tables: one table lookup and
// multiplication per non-zero w-bit digit of e, no squarings. e must be
// non-negative; exponents wider than the table's coverage fall back to
// big.Int.Exp so the result is always exact.
func (f *FixedBase) Exp(e *big.Int) *big.Int {
	if e.Sign() < 0 {
		panic("paillier: FixedBase.Exp negative exponent")
	}
	if e.BitLen() > f.bits {
		return new(big.Int).Exp(f.tabs[0][1], e, f.m)
	}
	var acc *big.Int
	for i := range f.tabs {
		d := windowDigit(e, i*int(f.w), f.w)
		if d == 0 {
			continue
		}
		if acc == nil {
			acc = new(big.Int).Set(f.tabs[i][d])
			continue
		}
		acc.Mul(acc, f.tabs[i][d]).Mod(acc, f.m)
	}
	if acc == nil {
		return big.NewInt(1) // e == 0
	}
	return acc
}
