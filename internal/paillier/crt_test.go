package paillier

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
)

// TestExpCRTMatchesExp cross-checks ExpCRT against big.Int.Exp over random
// bases and exponent widths, including the subgroup-order reduction path
// (exponents at and beyond the order's width) and degenerate bases.
func TestExpCRTMatchesExp(t *testing.T) {
	k := testKey
	so := k.Ops()
	rng := mrand.New(mrand.NewSource(17))

	check := func(base, e *big.Int) {
		t.Helper()
		want := new(big.Int).Exp(base, e, k.N2)
		if got := so.ExpCRT(base, e); got.Cmp(want) != 0 {
			t.Fatalf("ExpCRT(base %d bits, exp %d bits) diverges from big.Int.Exp", base.BitLen(), e.BitLen())
		}
	}

	units := make([]*big.Int, 6)
	for i := range units {
		r, err := randUnit(rand.Reader, k.N2)
		if err != nil {
			t.Fatal(err)
		}
		units[i] = r
	}
	edges := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		new(big.Int).Set(k.N),       // the encryption exponent r^N
		new(big.Int).Sub(k.N2, one), // wider than both subgroup orders
		new(big.Int).Rand(rng, new(big.Int).Lsh(one, 45)),  // signed-magnitude width
		new(big.Int).Rand(rng, new(big.Int).Lsh(one, 400)), // short-exp blinding width
	}
	for _, base := range units {
		for _, e := range edges {
			check(base, e)
		}
	}
	for i := 0; i < 40; i++ {
		base := new(big.Int).Rand(rng, k.N2)
		e := new(big.Int).Rand(rng, new(big.Int).Lsh(one, uint(1+rng.Intn(1100))))
		check(base, e)
	}
	// Degenerate bases: 0, 1, and multiples of the primes (no reduction).
	check(big.NewInt(0), big.NewInt(0))
	check(big.NewInt(0), big.NewInt(5))
	check(big.NewInt(1), new(big.Int).Set(k.N))
	pMult := new(big.Int).Mul(k.p, big.NewInt(7))
	check(pMult, big.NewInt(3))
	check(pMult, new(big.Int).Add(k.N, big.NewInt(12345)))
}

// TestSecretOpsMulPlainDecryptsIdentically: for scalars across the adaptive
// cutoff (short CRT-split vs full-width decrypt–scale–re-blind), the
// SecretOps result must decrypt exactly like the public MulPlain.
func TestSecretOpsMulPlainDecryptsIdentically(t *testing.T) {
	k := testKey
	pk := &k.PublicKey
	so := k.Ops()
	rng := mrand.New(mrand.NewSource(23))
	m := big.NewInt(987654321)
	c, err := pk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	scalars := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(-1),
		big.NewInt(1 << 44),
		big.NewInt(-(1 << 44)),                       // full-width ring image N−|k|
		new(big.Int).Rand(rng, pk.N),                 // general full-width scalar
		new(big.Int).Sub(pk.N, one),                  // ring image of −1
		new(big.Int).Lsh(one, uint(pk.N.BitLen()/2)), // just over the cutoff
		new(big.Int).Sub(new(big.Int).Lsh(one, uint(pk.N.BitLen()/2)), one), // just under
	}
	for _, s := range scalars {
		want := k.Decrypt(pk.MulPlain(c, s))
		// Compute the fast path directly so the comparison cannot silently
		// collapse to public-vs-public if the registry is empty.
		got := k.Decrypt(so.MulPlain(c, s))
		if got.Cmp(want) != 0 {
			t.Fatalf("SecretOps.MulPlain(%v): decrypts to %v, public path %v", s, got, want)
		}
	}
}

// TestSecretOpsRegistryRouting: registration makes the pk-level entry points
// take the fast path; unregistration restores the public path; fingerprint
// hits for an aliased PublicKey allocation resolve; results stay correct.
func TestSecretOpsRegistryRouting(t *testing.T) {
	k, err := GenerateKey(rand.Reader, 512)
	if err != nil {
		t.Fatal(err)
	}
	pk := &k.PublicKey
	if SecretOpsFor(pk) != nil {
		t.Fatal("unexpected pre-registered SecretOps")
	}
	RegisterSecretOps(k)
	defer UnregisterSecretOps(pk)
	alias := &PublicKey{N: new(big.Int).Set(pk.N), N2: new(big.Int).Set(pk.N2)}
	if SecretOpsFor(alias) == nil {
		t.Fatal("registry did not resolve an aliased public key")
	}
	m := big.NewInt(4242)
	c, err := pk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	kk := big.NewInt(-123456789)
	if got := k.Decrypt(alias.MulPlain(c, kk)); got.Cmp(new(big.Int).Mod(new(big.Int).Mul(m, kk), pk.N)) != 0 {
		t.Fatalf("registered MulPlain decrypts to %v", got)
	}
	UnregisterSecretOps(pk)
	if SecretOpsFor(pk) != nil {
		t.Fatal("SecretOps still registered after UnregisterSecretOps")
	}
}

// TestDotCRTMatchesPublic: the Straus kernel built in CRT dual-chain mode
// must produce the exact group element of the public-path kernel.
func TestDotCRTMatchesPublic(t *testing.T) {
	k, err := GenerateKey(rand.Reader, 512)
	if err != nil {
		t.Fatal(err)
	}
	pk := &k.PublicKey
	rng := mrand.New(mrand.NewSource(31))
	n := 9
	cs := make([]*Ciphertext, n)
	es := make([]SignedExp, n)
	for i := range cs {
		if cs[i], err = pk.Encrypt(rand.Reader, big.NewInt(int64(rng.Intn(1<<20)))); err != nil {
			t.Fatal(err)
		}
		mag := new(big.Int).Rand(rng, new(big.Int).Lsh(one, 45))
		if i%3 == 0 {
			mag.SetInt64(0) // sparse zeros
		}
		es[i] = SignedExp{Mag: mag, Neg: rng.Intn(2) == 0}
	}
	want := pk.DotRow(cs, es)
	RegisterSecretOps(k)
	got := pk.DotRow(cs, es)
	tabs := pk.PrecomputeDot(cs, 5)
	gotTabs := tabs.Dot(es)
	UnregisterSecretOps(&k.PublicKey)
	if got.C.Cmp(want.C) != 0 {
		t.Fatal("CRT DotRow is not bit-identical to the public path")
	}
	if gotTabs.C.Cmp(want.C) != 0 {
		t.Fatal("CRT DotTables.Dot is not bit-identical to the public path")
	}
	// All-negative and all-zero exponent vectors through the CRT tables.
	RegisterSecretOps(k)
	defer UnregisterSecretOps(&k.PublicKey)
	allNeg := make([]SignedExp, n)
	zeros := make([]SignedExp, n)
	for i := range allNeg {
		allNeg[i] = SignedExp{Mag: big.NewInt(int64(i + 1)), Neg: true}
	}
	wantNeg := new(big.Int).Set(one)
	for i := range cs {
		wantNeg.Mul(wantNeg, new(big.Int).Exp(cs[i].C, new(big.Int).Sub(pk.N, big.NewInt(int64(i+1))), pk.N2))
		wantNeg.Mod(wantNeg, pk.N2)
	}
	crtTabs := pk.PrecomputeDot(cs, 4)
	if k.Decrypt(crtTabs.Dot(allNeg)).Cmp(k.Decrypt(&Ciphertext{C: wantNeg})) != 0 {
		t.Fatal("all-negative CRT dot decrypts wrong")
	}
	if crtTabs.Dot(zeros).C.Cmp(one) != 0 {
		t.Fatal("all-zero CRT dot is not the identity")
	}
}

// FuzzExpCRT fuzzes (base, exponent) byte strings against big.Int.Exp.
func FuzzExpCRT(f *testing.F) {
	f.Add([]byte{2}, []byte{3})
	f.Add([]byte{0}, []byte{0})
	f.Add([]byte{0xff, 0x01}, []byte{0xff, 0xff, 0xff, 0xff})
	k := testKey
	so := k.Ops()
	f.Fuzz(func(t *testing.T, rawBase, rawExp []byte) {
		if len(rawBase) > 128 || len(rawExp) > 160 {
			return
		}
		base := new(big.Int).SetBytes(rawBase)
		e := new(big.Int).SetBytes(rawExp)
		want := new(big.Int).Exp(base, e, k.N2)
		if got := so.ExpCRT(base, e); got.Cmp(want) != 0 {
			t.Fatalf("ExpCRT diverges: base %d bits, exp %d bits", base.BitLen(), e.BitLen())
		}
	})
}

func BenchmarkMulPlainFullWidthPublic(b *testing.B) {
	k := testKey
	pk := &k.PublicKey
	c, err := pk.Encrypt(rand.Reader, big.NewInt(7))
	if err != nil {
		b.Fatal(err)
	}
	s, err := rand.Int(rand.Reader, pk.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk.MulPlain(c, s)
	}
}

func BenchmarkMulPlainFullWidthSecretOps(b *testing.B) {
	k := testKey
	pk := &k.PublicKey
	so := k.Ops()
	c, err := pk.Encrypt(rand.Reader, big.NewInt(7))
	if err != nil {
		b.Fatal(err)
	}
	s, err := rand.Int(rand.Reader, pk.N)
	if err != nil {
		b.Fatal(err)
	}
	so.MulPlain(c, s) // build the re-blinding tables outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		so.MulPlain(c, s)
	}
}

func BenchmarkExpCRTFullWidth(b *testing.B) {
	k := testKey
	so := k.Ops()
	base, err := rand.Int(rand.Reader, k.N2)
	if err != nil {
		b.Fatal(err)
	}
	e, err := rand.Int(rand.Reader, k.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		so.ExpCRT(base, e)
	}
}
