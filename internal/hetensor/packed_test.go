package hetensor

import (
	"crypto/rand"
	"testing"

	"blindfl/internal/paillier"
	"blindfl/internal/tensor"
)

func TestPackEncryptDecryptRoundTrip(t *testing.T) {
	rng := mrandNew(30)
	for _, cols := range []int{1, 3, 4, 9} { // below, at, and straddling the lane count
		d := tensor.RandDense(rng, 5, cols, 100)
		m := PackEncrypt(&testKey.PublicKey, d, 1)
		if m.K < 2 {
			t.Fatalf("test key packs only %d lane(s); packing degenerate", m.K)
		}
		got := DecryptPacked(testKey, m)
		if !got.Equal(d, 1e-6) {
			t.Fatalf("cols=%d round trip mismatch: %v vs %v", cols, got.Data, d.Data)
		}
	}
}

func TestPackedUsesFewerCiphertexts(t *testing.T) {
	d := tensor.NewDense(4, 8)
	m := PackEncrypt(&testKey.PublicKey, d, 1)
	unpacked := 4 * 8
	if len(m.C)*m.K < unpacked || len(m.C) >= unpacked {
		t.Fatalf("packed uses %d ciphertexts for %d values (K=%d)", len(m.C), unpacked, m.K)
	}
}

func TestPackedAddCipherMatchesUnpacked(t *testing.T) {
	rng := mrandNew(31)
	a := tensor.RandDense(rng, 3, 6, 50)
	b := tensor.RandDense(rng, 3, 6, 50)
	pk := &testKey.PublicKey
	got := DecryptPacked(testKey, PackEncrypt(pk, a, 1).AddCipher(PackEncrypt(pk, b, 1)))
	want := Decrypt(testKey, Encrypt(pk, a, 1).AddCipher(Encrypt(pk, b, 1)))
	if !got.Equal(want, 1e-6) {
		t.Fatal("packed AddCipher differs from unpacked")
	}
}

func TestPackedSubPlainFreshMatchesUnpackedAndReRandomizes(t *testing.T) {
	rng := mrandNew(32)
	a := tensor.RandDense(rng, 2, 5, 1<<20) // mask-magnitude values
	mask := tensor.RandDense(rng, 2, 5, 1<<20)
	pk := &testKey.PublicKey
	enc := PackEncrypt(pk, a, 2)
	fresh := enc.SubPlainFresh(mask)
	got := DecryptPacked(testKey, fresh)
	if !got.Equal(a.Sub(mask), 2e-5) {
		t.Fatal("packed SubPlainFresh wrong value")
	}
	for i := range fresh.C {
		if fresh.C[i].C.Cmp(enc.C[i].C) == 0 {
			t.Fatal("packed SubPlainFresh did not re-randomize")
		}
	}
}

func TestMulPlainLeftPackedMatchesUnpacked(t *testing.T) {
	rng := mrandNew(33)
	x := tensor.RandDense(rng, 4, 7, 2)
	w := tensor.RandDense(rng, 7, 6, 2)
	pk := &testKey.PublicKey
	got := DecryptPacked(testKey, MulPlainLeftPacked(x, PackEncrypt(pk, w, 1)))
	want := Decrypt(testKey, MulPlainLeft(x, Encrypt(pk, w, 1)))
	if !got.Equal(want, 1e-6) {
		t.Fatal("MulPlainLeftPacked differs from MulPlainLeft")
	}
	if !got.Equal(x.MatMul(w), 1e-5) {
		t.Fatal("MulPlainLeftPacked differs from plaintext matmul")
	}
}

func TestMulPlainLeftCSRPackedMatchesDense(t *testing.T) {
	rng := mrandNew(34)
	xd := tensor.RandCSR(rng, 4, 9, 3)
	w := tensor.RandDense(rng, 9, 5, 2)
	pk := &testKey.PublicKey
	got := DecryptPacked(testKey, MulPlainLeftCSRPacked(xd, PackEncrypt(pk, w, 1)))
	if !got.Equal(xd.MatMul(w), 1e-5) {
		t.Fatal("MulPlainLeftCSRPacked differs from plaintext sparse matmul")
	}
}

func TestTransposeMulLeftPackedMatchesUnpacked(t *testing.T) {
	rng := mrandNew(35)
	x := tensor.RandDense(rng, 6, 4, 2)
	g := tensor.RandDense(rng, 6, 5, 2)
	pk := &testKey.PublicKey
	got := DecryptPacked(testKey, TransposeMulLeftPacked(x, PackEncrypt(pk, g, 1)))
	want := Decrypt(testKey, TransposeMulLeft(x, Encrypt(pk, g, 1)))
	if !got.Equal(want, 1e-6) {
		t.Fatal("TransposeMulLeftPacked differs from TransposeMulLeft")
	}
}

func TestTransposeMulLeftCSRPackedMatchesDense(t *testing.T) {
	rng := mrandNew(36)
	x := tensor.RandCSR(rng, 6, 8, 2)
	g := tensor.RandDense(rng, 6, 5, 2)
	pk := &testKey.PublicKey
	got := DecryptPacked(testKey, TransposeMulLeftCSRPacked(x, PackEncrypt(pk, g, 1)))
	if !got.Equal(x.TransposeMatMul(g), 1e-5) {
		t.Fatal("TransposeMulLeftCSRPacked differs from plaintext")
	}
}

func TestLookupPackedMatchesUnpacked(t *testing.T) {
	rng := mrandNew(37)
	vocab, dim, fields := 6, 5, 3 // dim straddles a lane boundary for K=4
	q := tensor.RandDense(rng, vocab, dim, 3)
	x := tensor.NewIntMatrix(4, fields)
	for i := range x.Data {
		x.Data[i] = rng.Intn(vocab)
	}
	pk := &testKey.PublicKey
	got := DecryptPacked(testKey, LookupPacked(PackEncrypt(pk, q, 1), x))
	want := Decrypt(testKey, Lookup(Encrypt(pk, q, 1), x))
	if !got.Equal(want, 1e-6) {
		t.Fatal("LookupPacked differs from Lookup")
	}
}

func TestLookupBackwardPackedMatchesUnpacked(t *testing.T) {
	rng := mrandNew(38)
	vocab, dim, fields, batch := 5, 6, 2, 4
	gradE := tensor.RandDense(rng, batch, fields*dim, 2)
	x := tensor.NewIntMatrix(batch, fields)
	for i := range x.Data {
		x.Data[i] = rng.Intn(vocab)
	}
	pk := &testKey.PublicKey
	packed := PackEncryptBlocks(pk, gradE, 1, dim)
	got := DecryptPacked(testKey, LookupBackwardPacked(packed, x, vocab, dim))
	want := Decrypt(testKey, LookupBackward(Encrypt(pk, gradE, 1), x, vocab, dim))
	if !got.Equal(want, 1e-6) {
		t.Fatal("LookupBackwardPacked differs from LookupBackward")
	}
}

func TestPackedLayoutMismatchPanics(t *testing.T) {
	a := PackEncrypt(&testKey.PublicKey, tensor.NewDense(2, 6), 1)
	b := PackEncryptBlocks(&testKey.PublicKey, tensor.NewDense(2, 6), 1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("AddCipher accepted mismatched block layouts")
		}
	}()
	a.AddCipher(b)
}

// --- Throughput benchmarks: the unpacked serial baseline vs the pooled and
// --- packed paths. Run with `make bench`.

func benchDense(rows, cols int) *tensor.Dense {
	return tensor.RandDense(mrandNew(40), rows, cols, 10)
}

// BenchmarkEncryptSerialUnpacked is the baseline: one ciphertext per value,
// blinding exponentiation inline, no goroutine fan-out.
func BenchmarkEncryptSerialUnpacked(b *testing.B) {
	d := benchDense(8, 16)
	pk := &testKey.PublicKey
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range d.Data {
			m := Codec.EncodeRing(v, 1, pk.N)
			if _, err := pk.Encrypt(paillier.Rand, m); err != nil {
				b.Fatal(err)
			}
			_ = j
		}
	}
}

// BenchmarkEncryptParallelUnpacked is Encrypt as shipped before this change:
// parallel fan-out, inline blinding, one ciphertext per value.
func BenchmarkEncryptParallelUnpacked(b *testing.B) {
	d := benchDense(8, 16)
	pk := &testKey.PublicKey
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encrypt(pk, d, 1)
	}
}

// BenchmarkEncryptPacked packs K values per ciphertext: ~K× fewer blinding
// exponentiations.
func BenchmarkEncryptPacked(b *testing.B) {
	d := benchDense(8, 16)
	pk := &testKey.PublicKey
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackEncrypt(pk, d, 1)
	}
}

// BenchmarkEncryptPackedPooled adds the blinding pool on top of packing; with
// a warm pool the critical path per ciphertext is two multiplications. The
// refills run outside the timer, modelling a deployment where precompute
// overlaps communication and plaintext phases of the protocol.
func BenchmarkEncryptPackedPooled(b *testing.B) {
	d := benchDense(8, 16)
	pk := &testKey.PublicKey
	pool := paillier.NewPool(pk, 128, 0, rand.Reader)
	defer pool.Close()
	paillier.RegisterPool(pool)
	defer paillier.UnregisterPool(pk)
	groups := 8 * ((16 + packingFor(pk).K - 1) / packingFor(pk).K)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pool.WaitAvailable(groups)
		b.StartTimer()
		PackEncrypt(pk, d, 1)
	}
}

func BenchmarkMulPlainLeftUnpacked(b *testing.B) {
	x := benchDense(8, 16)
	w := Encrypt(&testKey.PublicKey, benchDense(16, 8), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulPlainLeft(x, w)
	}
}

func BenchmarkMulPlainLeftPacked(b *testing.B) {
	x := benchDense(8, 16)
	w := PackEncrypt(&testKey.PublicKey, benchDense(16, 8), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulPlainLeftPacked(x, w)
	}
}
