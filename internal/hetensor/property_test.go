package hetensor

import (
	"math"
	"testing"
	"testing/quick"

	"blindfl/internal/tensor"
)

// Property-based tests on the homomorphic tensor algebra. Sizes are tiny —
// each check costs real Paillier operations — but the properties are the
// algebraic identities the whole protocol stack relies on.

func clampVals(vs []float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		out[i] = math.Mod(v, 1e3)
	}
	return out
}

// Dec(Enc(a) ⊞ Enc(b)) = a + b for arbitrary float matrices.
func TestPropAddHomomorphism(t *testing.T) {
	f := func(a1, a2, b1, b2 float64) bool {
		av := clampVals([]float64{a1, a2})
		bv := clampVals([]float64{b1, b2})
		a := tensor.FromSlice(1, 2, av)
		b := tensor.FromSlice(1, 2, bv)
		ca := Encrypt(&testKey.PublicKey, a, 1)
		cb := Encrypt(&testKey.PublicKey, b, 1)
		got := Decrypt(testKey, ca.AddCipher(cb))
		return got.Equal(a.Add(b), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Dec(X·⟦W⟧) = X·W: the plain·cipher matmul is exactly the float matmul up
// to fixed-point tolerance.
func TestPropMatMulHomomorphism(t *testing.T) {
	f := func(x1, x2, x3, x4, w1, w2 float64) bool {
		xv := clampVals([]float64{x1, x2, x3, x4})
		wv := clampVals([]float64{w1, w2})
		x := tensor.FromSlice(2, 2, xv)
		w := tensor.FromSlice(2, 1, wv)
		cw := Encrypt(&testKey.PublicKey, w, 1)
		got := Decrypt(testKey, MulPlainLeft(x, cw))
		want := x.MatMul(w)
		tol := 1e-9 * (1 + want.MaxAbs())
		return got.Equal(want, math.Max(tol, 1e-6))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Linearity: X·(⟦W⟧ ⊞ ⟦V⟧) = X·W + X·V.
func TestPropMatMulDistributesOverCipherAdd(t *testing.T) {
	f := func(seed1, seed2 float64) bool {
		w := tensor.FromSlice(2, 1, clampVals([]float64{seed1, seed2}))
		v := tensor.FromSlice(2, 1, clampVals([]float64{seed2 * 3, seed1 - 7}))
		x := tensor.FromSlice(1, 2, []float64{1.5, -2.25})
		cw := Encrypt(&testKey.PublicKey, w, 1)
		cv := Encrypt(&testKey.PublicKey, v, 1)
		got := Decrypt(testKey, MulPlainLeft(x, cw.AddCipher(cv)))
		want := x.MatMul(w.Add(v))
		return got.Equal(want, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Masking round trip: Dec(⟦v⟧ − φ) + φ = v for any mask.
func TestPropMaskCancels(t *testing.T) {
	f := func(v1, v2, m1, m2 float64) bool {
		v := tensor.FromSlice(1, 2, clampVals([]float64{v1, v2}))
		phi := tensor.FromSlice(1, 2, clampVals([]float64{m1, m2}))
		c := Encrypt(&testKey.PublicKey, v, 1)
		share := Decrypt(testKey, c.SubPlainFresh(phi))
		return share.Add(phi).Equal(v, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Lookup commutes with encryption: Dec(Lookup(⟦Q⟧, X)) = Lookup(Q, X).
func TestPropLookupCommutesWithEncryption(t *testing.T) {
	f := func(i1, i2, i3 uint8) bool {
		q := tensor.FromSlice(4, 2, []float64{1, 2, 3, 4, 5, 6, 7, 8})
		x := tensor.NewIntMatrix(1, 3)
		x.Set(0, 0, int(i1)%4)
		x.Set(0, 1, int(i2)%4)
		x.Set(0, 2, int(i3)%4)
		cq := Encrypt(&testKey.PublicKey, q, 1)
		got := Decrypt(testKey, Lookup(cq, x))
		return got.Equal(tensor.Lookup(q, x), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TransposeMulLeftCSRSubset rows equal the corresponding rows of the full
// dense gradient.
func TestPropSubsetGradientMatchesFull(t *testing.T) {
	f := func(seed int64) bool {
		rng := mrandNew(seed)
		x := tensor.RandCSR(rng, 4, 12, 2)
		g := tensor.RandDense(rng, 4, 2, 1)
		cg := Encrypt(&testKey.PublicKey, g, 1)
		touched := touchedOf(x)
		sub := Decrypt(testKey, TransposeMulLeftCSRSubset(x, cg, touched))
		full := x.ToDense().Transpose().MatMul(g)
		for i, k := range touched {
			for j := 0; j < g.Cols; j++ {
				if math.Abs(sub.At(i, j)-full.At(k, j)) > 1e-5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func touchedOf(x *tensor.CSR) []int {
	seen := map[int]bool{}
	for _, c := range x.ColIdx {
		seen[c] = true
	}
	out := make([]int, 0, len(seen))
	for k := 0; k < x.Cols; k++ {
		if seen[k] {
			out = append(out, k)
		}
	}
	return out
}

func TestEncryptRowsMatchesFullEncrypt(t *testing.T) {
	rng := mrandNew(99)
	d := tensor.RandDense(rng, 6, 3, 5)
	rows := []int{4, 0, 5}
	c := EncryptRows(&testKey.PublicKey, d, rows, 1)
	got := Decrypt(testKey, c)
	for i, r := range rows {
		for j := 0; j < 3; j++ {
			if math.Abs(got.At(i, j)-d.At(r, j)) > 1e-6 {
				t.Fatalf("row %d mismatch", r)
			}
		}
	}
}
