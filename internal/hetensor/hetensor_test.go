package hetensor

import (
	mrand "math/rand"
	"testing"

	"blindfl/internal/paillier"
	"blindfl/internal/tensor"
)

var testKey = mustKey()

func mustKey() *paillier.PrivateKey {
	k, err := paillier.GenerateKey(paillier.Rand, 512)
	if err != nil {
		panic(err)
	}
	return k
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	rng := mrandNew(1)
	d := tensor.RandDense(rng, 4, 3, 100)
	c := Encrypt(&testKey.PublicKey, d, 1)
	got := Decrypt(testKey, c)
	if !got.Equal(d, 1e-6) {
		t.Fatalf("round trip mismatch: %v vs %v", got.Data, d.Data)
	}
}

func TestAddCipher(t *testing.T) {
	rng := mrandNew(2)
	a := tensor.RandDense(rng, 3, 3, 10)
	b := tensor.RandDense(rng, 3, 3, 10)
	ca := Encrypt(&testKey.PublicKey, a, 1)
	cb := Encrypt(&testKey.PublicKey, b, 1)
	got := Decrypt(testKey, ca.AddCipher(cb))
	if !got.Equal(a.Add(b), 1e-6) {
		t.Fatal("AddCipher mismatch")
	}
}

func TestAddPlainAndSubPlainFresh(t *testing.T) {
	rng := mrandNew(3)
	a := tensor.RandDense(rng, 2, 5, 10)
	b := tensor.RandDense(rng, 2, 5, 10)
	ca := Encrypt(&testKey.PublicKey, a, 1)
	if got := Decrypt(testKey, ca.AddPlain(b)); !got.Equal(a.Add(b), 1e-6) {
		t.Fatal("AddPlain mismatch")
	}
	if got := Decrypt(testKey, ca.SubPlainFresh(b)); !got.Equal(a.Sub(b), 1e-6) {
		t.Fatal("SubPlainFresh mismatch")
	}
}

func TestSubPlainFreshReRandomizes(t *testing.T) {
	a := tensor.FromSlice(1, 1, []float64{5})
	zero := tensor.NewDense(1, 1)
	ca := Encrypt(&testKey.PublicKey, a, 1)
	cb := ca.SubPlainFresh(zero)
	if ca.C[0].C.Cmp(cb.C[0].C) == 0 {
		t.Fatal("SubPlainFresh(0) did not re-randomize the ciphertext")
	}
	if got := Decrypt(testKey, cb); got.At(0, 0) != 5 {
		t.Fatalf("value changed: %v", got.At(0, 0))
	}
}

func TestMulPlainLeft(t *testing.T) {
	rng := mrandNew(4)
	x := tensor.RandDense(rng, 4, 6, 5)
	w := tensor.RandDense(rng, 6, 3, 5)
	cw := Encrypt(&testKey.PublicKey, w, 1)
	got := Decrypt(testKey, MulPlainLeft(x, cw))
	if !got.Equal(x.MatMul(w), 1e-5) {
		t.Fatal("MulPlainLeft mismatch")
	}
}

func TestMulPlainLeftScale(t *testing.T) {
	x := tensor.FromSlice(1, 1, []float64{2})
	w := tensor.FromSlice(1, 1, []float64{3})
	cw := Encrypt(&testKey.PublicKey, w, 1)
	prod := MulPlainLeft(x, cw)
	if prod.Scale != 2 {
		t.Fatalf("scale = %d want 2", prod.Scale)
	}
	if got := Decrypt(testKey, prod); got.At(0, 0) != 6 {
		t.Fatalf("product = %v", got.At(0, 0))
	}
}

func TestMulPlainLeftCSRMatchesDense(t *testing.T) {
	rng := mrandNew(5)
	xs := tensor.RandCSR(rng, 5, 20, 3)
	w := tensor.RandDense(rng, 20, 2, 5)
	cw := Encrypt(&testKey.PublicKey, w, 1)
	got := Decrypt(testKey, MulPlainLeftCSR(xs, cw))
	want := xs.ToDense().MatMul(w)
	if !got.Equal(want, 1e-5) {
		t.Fatal("MulPlainLeftCSR mismatch")
	}
}

func TestTransposeMulLeft(t *testing.T) {
	rng := mrandNew(6)
	x := tensor.RandDense(rng, 5, 4, 3)
	g := tensor.RandDense(rng, 5, 2, 3)
	cg := Encrypt(&testKey.PublicKey, g, 1)
	got := Decrypt(testKey, TransposeMulLeft(x, cg))
	if !got.Equal(x.TransposeMatMul(g), 1e-5) {
		t.Fatal("TransposeMulLeft mismatch")
	}
}

func TestTransposeMulLeftCSRMatchesDense(t *testing.T) {
	rng := mrandNew(7)
	xs := tensor.RandCSR(rng, 6, 15, 2)
	g := tensor.RandDense(rng, 6, 3, 3)
	cg := Encrypt(&testKey.PublicKey, g, 1)
	got := Decrypt(testKey, TransposeMulLeftCSR(xs, cg))
	want := xs.ToDense().Transpose().MatMul(g)
	if !got.Equal(want, 1e-5) {
		t.Fatal("TransposeMulLeftCSR mismatch")
	}
}

func TestMulPlainRightTranspose(t *testing.T) {
	rng := mrandNew(8)
	g := tensor.RandDense(rng, 4, 3, 3)
	w := tensor.RandDense(rng, 6, 3, 3)
	cg := Encrypt(&testKey.PublicKey, g, 1)
	got := Decrypt(testKey, MulPlainRightTranspose(cg, w))
	if !got.Equal(g.MatMulTranspose(w), 1e-5) {
		t.Fatal("MulPlainRightTranspose mismatch")
	}
}

func TestScaleUp(t *testing.T) {
	a := tensor.FromSlice(1, 2, []float64{2, -3})
	ca := Encrypt(&testKey.PublicKey, a, 1)
	up := ca.ScaleUp(0.5)
	if up.Scale != 2 {
		t.Fatalf("scale = %d", up.Scale)
	}
	if got := Decrypt(testKey, up); !got.Equal(tensor.FromSlice(1, 2, []float64{1, -1.5}), 1e-6) {
		t.Fatalf("ScaleUp values = %v", got.Data)
	}
}

func TestEncryptedLookup(t *testing.T) {
	rng := mrandNew(9)
	q := tensor.RandDense(rng, 5, 3, 2)
	x := tensor.NewIntMatrix(3, 2)
	for i := range x.Data {
		x.Data[i] = rng.Intn(5)
	}
	cq := Encrypt(&testKey.PublicKey, q, 1)
	got := Decrypt(testKey, Lookup(cq, x))
	if !got.Equal(tensor.Lookup(q, x), 1e-6) {
		t.Fatal("encrypted Lookup mismatch")
	}
}

func TestEncryptedLookupBackward(t *testing.T) {
	rng := mrandNew(10)
	vocab, dim, batch, fields := 6, 2, 4, 2
	g := tensor.RandDense(rng, batch, fields*dim, 2)
	x := tensor.NewIntMatrix(batch, fields)
	for i := range x.Data {
		x.Data[i] = rng.Intn(vocab)
	}
	cg := Encrypt(&testKey.PublicKey, g, 1)
	got := Decrypt(testKey, LookupBackward(cg, x, vocab, dim))
	want := tensor.LookupBackward(g, x, vocab, dim)
	if !got.Equal(want, 1e-5) {
		t.Fatal("encrypted LookupBackward mismatch")
	}
}

func TestAddCipherScaleMismatchPanics(t *testing.T) {
	a := Encrypt(&testKey.PublicKey, tensor.NewDense(1, 1), 1)
	b := Encrypt(&testKey.PublicKey, tensor.NewDense(1, 1), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on scale mismatch")
		}
	}()
	a.AddCipher(b)
}

func TestZeroAccumulatorDecryptsToZero(t *testing.T) {
	z := NewCipherMatrix(&testKey.PublicKey, 2, 2, 1)
	if got := Decrypt(testKey, z); !got.Equal(tensor.NewDense(2, 2), 0) {
		t.Fatalf("zero accumulator = %v", got.Data)
	}
}

func mrandNew(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }
