// Package hetensor vectorizes Paillier operations over matrices. It is the
// Go analogue of the paper's CryptoTensor abstraction (Sec. 7.1): encrypted
// matrices with dense and sparse plaintext·ciphertext matrix multiplication,
// encrypted embedding lookup and scatter-add, and fixed-point scale
// bookkeeping.
//
// Scale discipline: a CipherMatrix carries the fixed-point scale of its
// plaintexts. Multiplying by a plaintext matrix (always encoded at scale 1)
// raises the scale by one; additions require equal scales. Values are
// decrypted back to float64 before any further non-linear processing, so the
// scale never exceeds 2.
//
// Matmul kernels resolve their Straus window tables through a process-wide,
// byte-budgeted LRU cache (tablecache.go) when SetTableCacheBudget enables
// it: tables are keyed by ciphertext-matrix identity (IDs minted at
// encryption and on receive; mutable accumulators and row-slice views are
// identity-less and bypass the cache), built at a wider window than a
// single call would justify, and reused across kernel invocations, batches
// and epochs. Invalidation is by construction: cells of an identified
// matrix are never replaced, and a refreshed weight copy is a new matrix
// with a new identity, so stale entries cannot be observed — they only age
// out LRU-first when the byte budget fills. Results are bit-identical with
// the cache on or off.
package hetensor

import (
	"fmt"
	"math/big"

	"blindfl/internal/fixedpoint"
	"blindfl/internal/paillier"
	"blindfl/internal/parallel"
	"blindfl/internal/tensor"
)

// Codec is the fixed-point codec shared by every encrypted tensor. 40
// fractional bits keeps the quantization error of a product below
// maskMag·2⁻⁴¹ even when weight shares have drifted to mask magnitude
// (~2²⁰), while a scale-2 value still needs only ~120 bits of a ≥512-bit
// Paillier plaintext.
var Codec = fixedpoint.Codec{F: 40}

// CipherMatrix is a rows×cols matrix of Paillier ciphertexts under PK.
//
// id is the matrix's table-cache identity (tablecache.go): non-zero only for
// matrices whose cells are never replaced after construction — encryption
// results and received matrices. Accumulators and row-slice views stay 0 and
// bypass the cache. The field is unexported, so gob transfers drop it and
// the receiver mints its own.
type CipherMatrix struct {
	Rows, Cols int
	Scale      uint
	PK         *paillier.PublicKey
	C          []*paillier.Ciphertext

	id uint64
}

// NewCipherMatrix allocates a matrix of unrandomized encryptions of zero
// (the multiplicative identity of the ciphertext group), suitable as an
// accumulator for homomorphic sums.
func NewCipherMatrix(pk *paillier.PublicKey, rows, cols int, scale uint) *CipherMatrix {
	m := &CipherMatrix{Rows: rows, Cols: cols, Scale: scale, PK: pk, C: make([]*paillier.Ciphertext, rows*cols)}
	for i := range m.C {
		m.C[i] = &paillier.Ciphertext{C: big.NewInt(1)}
	}
	return m
}

// At returns the ciphertext at (i, j).
func (m *CipherMatrix) At(i, j int) *paillier.Ciphertext { return m.C[i*m.Cols+j] }

// Set stores a ciphertext at (i, j).
func (m *CipherMatrix) Set(i, j int, c *paillier.Ciphertext) { m.C[i*m.Cols+j] = c }

// Row returns a view of row i.
func (m *CipherMatrix) Row(i int) []*paillier.Ciphertext { return m.C[i*m.Cols : (i+1)*m.Cols] }

// RowSlice returns a view of rows [lo, hi) sharing m's ciphertexts. The
// chunk unit of the streamed protocol paths.
func (m *CipherMatrix) RowSlice(lo, hi int) *CipherMatrix {
	if lo < 0 || hi < lo || hi > m.Rows {
		panic(fmt.Sprintf("hetensor: RowSlice [%d,%d) of %d rows", lo, hi, m.Rows))
	}
	return &CipherMatrix{Rows: hi - lo, Cols: m.Cols, Scale: m.Scale, PK: m.PK, C: m.C[lo*m.Cols : hi*m.Cols]}
}

func (m *CipherMatrix) shapeCheck(rows, cols int, op string) {
	if m.Rows != rows || m.Cols != cols {
		panic(fmt.Sprintf("hetensor: %s shape mismatch: have %d×%d want %d×%d", op, m.Rows, m.Cols, rows, cols))
	}
}

// Encrypt encrypts a dense matrix elementwise at the given scale. When a
// paillier blinding pool is registered for pk, encryption takes the
// precomputed-randomness fast path.
func Encrypt(pk *paillier.PublicKey, d *tensor.Dense, scale uint) *CipherMatrix {
	out := &CipherMatrix{Rows: d.Rows, Cols: d.Cols, Scale: scale, PK: pk, C: make([]*paillier.Ciphertext, len(d.Data))}
	parallel.For(len(d.Data), func(i int) {
		m := Codec.EncodeRing(d.Data[i], scale, pk.N)
		c, err := paillier.EncryptPooled(pk, m)
		if err != nil {
			panic(fmt.Sprintf("hetensor: encrypt: %v", err))
		}
		out.C[i] = c
	})
	out.MintID()
	return out
}

// Decrypt decrypts a cipher matrix back to float64 at its scale.
func Decrypt(sk *paillier.PrivateKey, m *CipherMatrix) *tensor.Dense {
	out := tensor.NewDense(m.Rows, m.Cols)
	parallel.For(len(m.C), func(i int) {
		out.Data[i] = Codec.DecodeRing(sk.Decrypt(m.C[i]), m.Scale, sk.N)
	})
	return out
}

// AddCipher returns the elementwise homomorphic sum m + o. Scales must match.
func (m *CipherMatrix) AddCipher(o *CipherMatrix) *CipherMatrix {
	o.shapeCheck(m.Rows, m.Cols, "AddCipher")
	if m.Scale != o.Scale {
		panic(fmt.Sprintf("hetensor: AddCipher scale mismatch %d vs %d", m.Scale, o.Scale))
	}
	out := &CipherMatrix{Rows: m.Rows, Cols: m.Cols, Scale: m.Scale, PK: m.PK, C: make([]*paillier.Ciphertext, len(m.C))}
	parallel.For(len(m.C), func(i int) {
		out.C[i] = m.PK.AddCipher(m.C[i], o.C[i])
	})
	return out
}

// AddPlain returns ⟦m + d⟧ with d encoded at m's scale (no fresh
// randomness; use Mask for sends).
func (m *CipherMatrix) AddPlain(d *tensor.Dense) *CipherMatrix {
	if m.Rows != d.Rows || m.Cols != d.Cols {
		panic("hetensor: AddPlain shape mismatch")
	}
	out := &CipherMatrix{Rows: m.Rows, Cols: m.Cols, Scale: m.Scale, PK: m.PK, C: make([]*paillier.Ciphertext, len(m.C))}
	parallel.For(len(m.C), func(i int) {
		out.C[i] = m.PK.AddPlain(m.C[i], Codec.EncodeRing(d.Data[i], m.Scale, m.PK.N))
	})
	return out
}

// SubPlainFresh returns ⟦m − d⟧ using a fresh encryption of −d, which also
// re-randomizes every ciphertext. This is the send half of HE2SS.
func (m *CipherMatrix) SubPlainFresh(d *tensor.Dense) *CipherMatrix {
	if m.Rows != d.Rows || m.Cols != d.Cols {
		panic("hetensor: SubPlainFresh shape mismatch")
	}
	out := &CipherMatrix{Rows: m.Rows, Cols: m.Cols, Scale: m.Scale, PK: m.PK, C: make([]*paillier.Ciphertext, len(m.C))}
	parallel.For(len(m.C), func(i int) {
		neg, err := paillier.EncryptPooled(m.PK, Codec.EncodeRing(-d.Data[i], m.Scale, m.PK.N))
		if err != nil {
			panic(fmt.Sprintf("hetensor: SubPlainFresh: %v", err))
		}
		out.C[i] = m.PK.AddCipher(m.C[i], neg)
	})
	return out
}

// MulPlainLeft computes ⟦X·W⟧ from plaintext X (dense) and encrypted W.
// X is encoded at scale 1, so the result has scale W.Scale+1. Zero entries
// of X are skipped. Each output cell is one Straus dot kernel evaluation
// (see dot.go) unless the textbook paths are toggled on.
func MulPlainLeft(x *tensor.Dense, w *CipherMatrix) *CipherMatrix {
	if x.Cols != w.Rows {
		panic(fmt.Sprintf("hetensor: MulPlainLeft inner dim mismatch %d×%d · %d×%d", x.Rows, x.Cols, w.Rows, w.Cols))
	}
	out := NewCipherMatrix(w.PK, x.Rows, w.Cols, w.Scale+1)
	if TextbookExp() {
		parallel.For(x.Rows, func(i int) {
			orow := out.Row(i)
			xrow := x.Row(i)
			for k, a := range xrow {
				if a == 0 {
					continue
				}
				ea := Codec.Encode(a, 1)
				wrow := w.Row(k)
				for j := range orow {
					orow[j] = w.PK.AddCipher(orow[j], w.PK.MulPlain(wrow[j], ea))
				}
			}
		})
		return out
	}
	exps, maxBits := denseRowExps(x)
	dotProducts(w.PK, tableSource{w.id, orientCol}, func(k, j int) *paillier.Ciphertext { return w.Row(k)[j] },
		x.Cols, w.Cols, exps, maxBits,
		func(i, j int, c *paillier.Ciphertext) { out.Row(i)[j] = c })
	return out
}

// MulPlainLeftCSR is MulPlainLeft for a sparse plaintext X; only the stored
// non-zeros generate homomorphic work. This is the operation behind BlindFL's
// Table 5 advantage on sparse datasets.
func MulPlainLeftCSR(x *tensor.CSR, w *CipherMatrix) *CipherMatrix {
	if x.Cols != w.Rows {
		panic(fmt.Sprintf("hetensor: MulPlainLeftCSR inner dim mismatch %d×%d · %d×%d", x.Rows, x.Cols, w.Rows, w.Cols))
	}
	out := NewCipherMatrix(w.PK, x.Rows, w.Cols, w.Scale+1)
	if TextbookExp() {
		parallel.For(x.Rows, func(i int) {
			orow := out.Row(i)
			cols, vals := x.RowNNZ(i)
			for t, k := range cols {
				ea := Codec.Encode(vals[t], 1)
				wrow := w.Row(k)
				for j := range orow {
					orow[j] = w.PK.AddCipher(orow[j], w.PK.MulPlain(wrow[j], ea))
				}
			}
		})
		return out
	}
	dotCSRMul(w.PK, x, w.Row, w.Cols, out.Row)
	return out
}

// TransposeMulLeft computes ⟦Xᵀ·G⟧ from plaintext X (rows×cols) and
// encrypted G (rows×n); the result is cols×n at scale G.Scale+1. This is the
// gradient shape ∇W = Xᵀ⟦∇Z⟧.
func TransposeMulLeft(x *tensor.Dense, g *CipherMatrix) *CipherMatrix {
	out := NewCipherMatrix(g.PK, x.Cols, g.Cols, g.Scale+1)
	TransposeMulLeftAcc(out, x, g)
	return out
}

// TransposeMulLeftAcc accumulates ⟦Xᵀ·G⟧ into acc (x.Cols×g.Cols at scale
// g.Scale+1). Because Xᵀ·G = Σ over row-chunks X[lo:hi]ᵀ·G[lo:hi], the
// streamed backward pass calls this once per received derivative chunk with
// the matching feature rows, overlapping the accumulation with the peer's
// encryption of the next chunk.
func TransposeMulLeftAcc(acc *CipherMatrix, x *tensor.Dense, g *CipherMatrix) {
	if x.Rows != g.Rows {
		panic(fmt.Sprintf("hetensor: TransposeMulLeft outer dim mismatch %d×%d ᵀ· %d×%d", x.Rows, x.Cols, g.Rows, g.Cols))
	}
	if acc.Rows != x.Cols || acc.Cols != g.Cols || acc.Scale != g.Scale+1 {
		panic(fmt.Sprintf("hetensor: TransposeMulLeftAcc accumulator %d×%d@%d, want %d×%d@%d",
			acc.Rows, acc.Cols, acc.Scale, x.Cols, g.Cols, g.Scale+1))
	}
	if TextbookExp() {
		// Parallelize over output rows (columns of X) to avoid write contention.
		parallel.For(x.Cols, func(k int) {
			orow := acc.Row(k)
			for i := 0; i < x.Rows; i++ {
				a := x.At(i, k)
				if a == 0 {
					continue
				}
				ea := Codec.Encode(a, 1)
				grow := g.Row(i)
				for j := range orow {
					orow[j] = g.PK.AddCipher(orow[j], g.PK.MulPlain(grow[j], ea))
				}
			}
		})
		return
	}
	exps, maxBits := denseColExps(x)
	dotProducts(g.PK, tableSource{g.id, orientCol}, func(i, j int) *paillier.Ciphertext { return g.Row(i)[j] },
		x.Rows, g.Cols, exps, maxBits,
		func(k, j int, c *paillier.Ciphertext) {
			orow := acc.Row(k)
			orow[j] = g.PK.AddCipher(orow[j], c)
		})
}

// TransposeMulLeftCSR computes ⟦Xᵀ·G⟧ for sparse X. Rows of the output are
// accumulated serially per output row bucket after a transposition pass.
func TransposeMulLeftCSR(x *tensor.CSR, g *CipherMatrix) *CipherMatrix {
	if x.Rows != g.Rows {
		panic(fmt.Sprintf("hetensor: TransposeMulLeftCSR outer dim mismatch %d×%d ᵀ· %d×%d", x.Rows, x.Cols, g.Rows, g.Cols))
	}
	out := NewCipherMatrix(g.PK, x.Cols, g.Cols, g.Scale+1)
	TransposeMulLeftCSRAcc(out, x, 0, g)
	return out
}

// TransposeMulLeftCSRAcc accumulates ⟦X[lo:lo+g.Rows]ᵀ·G⟧ into acc for a
// row-chunk G of the derivative: the sparse analogue of TransposeMulLeftAcc
// (CSR matrices have no cheap row-slice view, so the chunk offset is passed
// instead).
func TransposeMulLeftCSRAcc(acc *CipherMatrix, x *tensor.CSR, lo int, g *CipherMatrix) {
	if lo < 0 || lo+g.Rows > x.Rows {
		panic(fmt.Sprintf("hetensor: TransposeMulLeftCSRAcc chunk [%d,%d) of %d rows", lo, lo+g.Rows, x.Rows))
	}
	if acc.Rows != x.Cols || acc.Cols != g.Cols || acc.Scale != g.Scale+1 {
		panic(fmt.Sprintf("hetensor: TransposeMulLeftCSRAcc accumulator %d×%d@%d, want %d×%d@%d",
			acc.Rows, acc.Cols, acc.Scale, x.Cols, g.Cols, g.Scale+1))
	}
	if TextbookExp() {
		// Bucket non-zeros by column so each output row is owned by one goroutine.
		type nz struct {
			row int
			val float64
		}
		buckets := make([][]nz, x.Cols)
		for i := 0; i < g.Rows; i++ {
			cols, vals := x.RowNNZ(lo + i)
			for t, k := range cols {
				buckets[k] = append(buckets[k], nz{i, vals[t]})
			}
		}
		parallel.For(x.Cols, func(k int) {
			orow := acc.Row(k)
			for _, e := range buckets[k] {
				ea := Codec.Encode(e.val, 1)
				grow := g.Row(e.row)
				for j := range orow {
					orow[j] = g.PK.AddCipher(orow[j], g.PK.MulPlain(grow[j], ea))
				}
			}
		})
		return
	}
	dotCSRTransposeAcc(g.PK, x, lo, g.Rows, g.Row, g.Cols, acc.Row)
}

// MulPlainRightTranspose computes ⟦G·Wᵀ⟧ from encrypted G (m×n) and
// plaintext W (p×n); the result is m×p at scale G.Scale+1. This is the
// derivative shape ∇E = ⟦∇Z⟧·Wᵀ.
func MulPlainRightTranspose(g *CipherMatrix, w *tensor.Dense) *CipherMatrix {
	if g.Cols != w.Cols {
		panic(fmt.Sprintf("hetensor: MulPlainRightTranspose inner dim mismatch %d×%d · %d×%dᵀ", g.Rows, g.Cols, w.Rows, w.Cols))
	}
	out := NewCipherMatrix(g.PK, g.Rows, w.Rows, g.Scale+1)
	if TextbookExp() {
		parallel.For(g.Rows, func(i int) {
			grow := g.Row(i)
			orow := out.Row(i)
			for j := 0; j < w.Rows; j++ {
				wrow := w.Row(j)
				acc := orow[j]
				for k, b := range wrow {
					if b == 0 {
						continue
					}
					acc = g.PK.AddCipher(acc, g.PK.MulPlain(grow[k], Codec.Encode(b, 1)))
				}
				orow[j] = acc
			}
		})
		return out
	}
	// Rows of W are the exponent vectors; each row i of G is one fixed base
	// set, so its window tables are shared across all w.Rows outputs.
	exps, maxBits := denseRowExps(w)
	dotProducts(g.PK, tableSource{g.id, orientRow}, func(k, i int) *paillier.Ciphertext { return g.Row(i)[k] },
		g.Cols, g.Rows, exps, maxBits,
		func(j, i int, c *paillier.Ciphertext) { out.Row(i)[j] = c })
	return out
}

// MulPlainLeftTransposeRight computes ⟦X·Wᵀ⟧ from plaintext X (m×n) and
// encrypted W (p×n); the result is m×p at scale W.Scale+1. This is the
// derivative shape ∇Z·⟦V⟧ᵀ used by the Embed-MatMul backward pass when the
// derivative is plaintext but the weight piece is encrypted.
func MulPlainLeftTransposeRight(x *tensor.Dense, w *CipherMatrix) *CipherMatrix {
	if x.Cols != w.Cols {
		panic(fmt.Sprintf("hetensor: MulPlainLeftTransposeRight inner dim mismatch %d×%d · %d×%dᵀ", x.Rows, x.Cols, w.Rows, w.Cols))
	}
	out := NewCipherMatrix(w.PK, x.Rows, w.Rows, w.Scale+1)
	if TextbookExp() {
		parallel.For(x.Rows, func(i int) {
			xrow := x.Row(i)
			orow := out.Row(i)
			for j := 0; j < w.Rows; j++ {
				wrow := w.Row(j)
				acc := orow[j]
				for k, a := range xrow {
					if a == 0 {
						continue
					}
					acc = w.PK.AddCipher(acc, w.PK.MulPlain(wrow[k], Codec.Encode(a, 1)))
				}
				orow[j] = acc
			}
		})
		return out
	}
	exps, maxBits := denseRowExps(x)
	dotProducts(w.PK, tableSource{w.id, orientRow}, func(k, j int) *paillier.Ciphertext { return w.Row(j)[k] },
		w.Cols, w.Rows, exps, maxBits,
		func(i, j int, c *paillier.Ciphertext) { out.Row(i)[j] = c })
	return out
}

// ScaleUp multiplies every entry by the scale-1 encoding of s, raising the
// scale by one. Used to align scales before cipher additions.
func (m *CipherMatrix) ScaleUp(s float64) *CipherMatrix {
	out := &CipherMatrix{Rows: m.Rows, Cols: m.Cols, Scale: m.Scale + 1, PK: m.PK, C: make([]*paillier.Ciphertext, len(m.C))}
	if TextbookExp() {
		es := Codec.Encode(s, 1)
		parallel.For(len(m.C), func(i int) {
			out.C[i] = m.PK.MulPlain(m.C[i], es)
		})
		return out
	}
	mag, neg := Codec.EncodeSigned(s, 1)
	parallel.For(len(m.C), func(i int) {
		out.C[i] = m.PK.MulPlainSigned(m.C[i], mag, neg)
	})
	return out
}

// Lookup gathers rows of an encrypted embedding table: the analogue of
// tensor.Lookup with Q encrypted. x is batch×fields; the result is
// batch×(fields·dim) at the table's scale.
func Lookup(q *CipherMatrix, x *tensor.IntMatrix) *CipherMatrix {
	dim := q.Cols
	out := &CipherMatrix{Rows: x.Rows, Cols: x.Cols * dim, Scale: q.Scale, PK: q.PK, C: make([]*paillier.Ciphertext, x.Rows*x.Cols*dim)}
	parallel.For(x.Rows, func(i int) {
		dst := out.Row(i)
		for f, idx := range x.Row(i) {
			if idx < 0 || idx >= q.Rows {
				panic(fmt.Sprintf("hetensor: Lookup index %d out of vocab %d", idx, q.Rows))
			}
			copy(dst[f*dim:(f+1)*dim], q.Row(idx))
		}
	})
	return out
}

// LookupBackward scatter-adds encrypted derivatives into an encrypted table
// gradient: the analogue of tensor.LookupBackward with ∇E encrypted.
func LookupBackward(gradE *CipherMatrix, x *tensor.IntMatrix, vocab, dim int) *CipherMatrix {
	if gradE.Rows != x.Rows || gradE.Cols != x.Cols*dim {
		panic("hetensor: LookupBackward shape mismatch")
	}
	out := NewCipherMatrix(gradE.PK, vocab, dim, gradE.Scale)
	// Serial scatter: rows of the output may collide across instances.
	for i := 0; i < x.Rows; i++ {
		src := gradE.Row(i)
		for f, idx := range x.Row(i) {
			dst := out.Row(idx)
			for k := 0; k < dim; k++ {
				dst[k] = gradE.PK.AddCipher(dst[k], src[f*dim+k])
			}
		}
	}
	return out
}
