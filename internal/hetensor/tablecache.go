package hetensor

import (
	"container/list"
	"sync"
	"sync/atomic"

	"blindfl/internal/paillier"
	"blindfl/internal/parallel"
)

// Persistent dot-table cache. A Straus window table depends only on the
// ciphertext bases it was built from — one column (or row) of an encrypted
// matrix — yet before this cache every kernel invocation rebuilt its tables
// from scratch, even though the same encrypted feature/weight columns recur
// in every batch of every epoch (the encrypted embedding tables, the
// inference-time weight copies, the fed-top ⟦∇Z⟧ reused by several kernels
// of one backward pass). The cache keys tables by *ciphertext-column
// identity*: every CipherMatrix/PackedMatrix is minted a process-unique ID
// when it is created by encryption or received from the peer, and a table is
// identified by (matrix ID, orientation, group index, live-base set). IDs
// are never reused and accumulator matrices (whose cells mutate) carry ID 0,
// so a cached table can never go stale — refreshed weights arrive as a new
// matrix with a new ID and the old entries age out of the LRU.
//
// Because cached tables amortize across the whole training run rather than
// one kernel call, they are built at a much wider window than the per-call
// tables (up to width 8: ~6 window digits for a 45-bit fixed-point scalar
// instead of 12 at width 4), so a warm hit is not just "no build cost" but
// also a ~1.7× cheaper evaluation per row.
//
// The cache is process-wide and byte-budgeted: entries are evicted LRU-first
// the moment the budget is exceeded. A budget of 0 (the default) disables
// caching entirely; core.Config.TableCacheMB / model.Hyper.TableCacheMB /
// `blindfl-train -tablecache` set it per run. Streamed row-chunk transfers
// compose safely with the cache: individual chunks are single-use and stay
// anonymous (only fully assembled receives are minted an identity), so
// chunked kernels simply use the per-call table tier without churning the
// persistent entries.

// matrixIDs mints process-unique ciphertext-matrix identities. ID 0 is
// reserved for uncacheable matrices (accumulators, row-slice views).
var matrixIDs atomic.Uint64

func nextMatrixID() uint64 { return matrixIDs.Add(1) }

// MintID assigns m a fresh process-unique identity, marking its ciphertexts
// as a stable base set for the dot-table cache. Called by the encryption
// constructors and the protocol receive paths; call it manually only for a
// matrix whose cells will never be replaced afterwards.
func (m *CipherMatrix) MintID() { m.id = nextMatrixID() }

// MintID is the packed-matrix analogue of CipherMatrix.MintID.
func (m *PackedMatrix) MintID() { m.id = nextMatrixID() }

// tableSource names the base-set family a kernel draws from: which matrix,
// and whether base vectors run along its columns or its rows.
type tableSource struct {
	id     uint64
	orient uint8
}

const (
	orientCol uint8 = iota // base vector g = column/group g of the matrix
	orientRow              // base vector g = row g of the matrix
)

// tableKey identifies one cached DotTables build.
type tableKey struct {
	id     uint64
	orient uint8
	crt    bool // built in SecretOps dual-chain mode
	group  int
	live   uint64 // FNV-1a hash of the live base indices
}

// liveHash fingerprints the set of live (non-zero-exponent) base indices.
func liveHash(live []int) uint64 {
	h := uint64(1469598103934665603)
	for _, k := range live {
		h ^= uint64(k)
		h *= 1099511628211
	}
	return h
}

type tableEntry struct {
	key   tableKey
	tabs  *paillier.DotTables
	bytes int64
}

// tableCache is the process-wide LRU. All fields are guarded by mu; the
// critical sections are map/list operations only, never table builds.
var tableCache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[tableKey]*list.Element
	lru     list.List // front = most recently used
	hits    int64
	misses  int64
	evicted int64
}

// TableCacheStats reports the cache's effectiveness counters.
type TableCacheStats struct {
	Hits, Misses, Evicted int64
	Entries               int
	Bytes, Budget         int64
}

// SetTableCacheBudget sets the cache's byte budget and returns the previous
// one. Shrinking evicts LRU-first immediately; 0 disables caching and drops
// every entry.
func SetTableCacheBudget(budget int64) int64 {
	tableCache.mu.Lock()
	defer tableCache.mu.Unlock()
	prev := tableCache.budget
	if budget < 0 {
		budget = 0
	}
	tableCache.budget = budget
	if tableCache.entries == nil {
		tableCache.entries = make(map[tableKey]*list.Element)
	}
	evictOverLocked()
	return prev
}

// TableCacheBudget returns the current byte budget (0 = disabled).
func TableCacheBudget() int64 {
	tableCache.mu.Lock()
	defer tableCache.mu.Unlock()
	return tableCache.budget
}

// TableCacheStatsNow returns a snapshot of the cache counters.
func TableCacheStatsNow() TableCacheStats {
	tableCache.mu.Lock()
	defer tableCache.mu.Unlock()
	return TableCacheStats{
		Hits: tableCache.hits, Misses: tableCache.misses, Evicted: tableCache.evicted,
		Entries: tableCache.lru.Len(), Bytes: tableCache.bytes, Budget: tableCache.budget,
	}
}

// ResetTableCache drops every entry and zeroes the counters, keeping the
// budget. Tests use it to isolate cold/warm measurements.
func ResetTableCache() {
	tableCache.mu.Lock()
	defer tableCache.mu.Unlock()
	tableCache.entries = make(map[tableKey]*list.Element)
	tableCache.lru.Init()
	tableCache.bytes = 0
	tableCache.hits, tableCache.misses, tableCache.evicted = 0, 0, 0
}

// evictOverLocked drops LRU entries until the cache fits its budget.
func evictOverLocked() {
	for tableCache.bytes > tableCache.budget {
		back := tableCache.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*tableEntry)
		tableCache.lru.Remove(back)
		delete(tableCache.entries, e.key)
		tableCache.bytes -= e.bytes
		tableCache.evicted++
	}
}

// tableCacheGet returns the cached tables for key, bumping recency.
func tableCacheGet(key tableKey) *paillier.DotTables {
	tableCache.mu.Lock()
	defer tableCache.mu.Unlock()
	el, ok := tableCache.entries[key]
	if !ok {
		tableCache.misses++
		return nil
	}
	tableCache.hits++
	tableCache.lru.MoveToFront(el)
	return el.Value.(*tableEntry).tabs
}

// tableCachePut inserts freshly built tables, evicting LRU entries over
// budget. Entries bigger than the whole budget are not cached. A concurrent
// build of the same key simply replaces the earlier entry (both are valid).
func tableCachePut(key tableKey, tabs *paillier.DotTables) {
	bytes := tabs.Bytes()
	tableCache.mu.Lock()
	defer tableCache.mu.Unlock()
	if bytes > tableCache.budget {
		return
	}
	if el, ok := tableCache.entries[key]; ok {
		old := el.Value.(*tableEntry)
		tableCache.bytes -= old.bytes
		tableCache.lru.Remove(el)
		delete(tableCache.entries, key)
	}
	e := &tableEntry{key: key, tabs: tabs, bytes: bytes}
	tableCache.entries[key] = tableCache.lru.PushFront(e)
	tableCache.bytes += bytes
	evictOverLocked()
}

// cacheWindow picks the Straus window for persistent tables: the widest
// width (≤ 8) at which the *whole invocation's* working set — all gpr
// columns of the source matrix — fits half the budget, so one kernel call
// can never evict its own inserts and two similarly-shaped matrices (a
// layer's two weight copies, say) can coexist. Reuse across a whole run
// amortizes the build cost, so this is deliberately wider than DotWindow's
// per-call choice — and when the budget cannot even afford the width a
// well-amortized per-call build would use, it returns 0: caching narrower
// tables would make every warm hit evaluate *slower* than the uncached
// tier, the opposite of the knob's contract, so the caller bypasses.
func cacheWindow(live, gpr, maxBits int, pk *paillier.PublicKey, budget int64) uint {
	eb := int64(pk.N2.BitLen()/8 + 48)
	floor := paillier.DotWindow(maxBits, 8) // the amortized per-call width
	for w := uint(8); w >= floor; w-- {
		if int64(gpr)*int64(live)*int64((1<<w)-1)*eb <= budget/2 {
			return w
		}
	}
	return 0
}

// cachedTables resolves the per-group Straus tables for one kernel
// invocation through the cache, building (and inserting) missing groups at
// the cache's window width. It returns nil when the cache cannot serve the
// call — disabled, anonymous source (ID 0), or the invocation's table
// working set would not fit at a width worth caching — in which case the
// caller falls back to the per-call table paths.
func cachedTables(pk *paillier.PublicKey, src tableSource, live []int, gpr, maxBits int,
	base func(k, g int) *paillier.Ciphertext) []*paillier.DotTables {
	if src.id == 0 {
		return nil
	}
	budget := TableCacheBudget()
	if budget <= 0 {
		return nil
	}
	w := cacheWindow(len(live), gpr, maxBits, pk, budget)
	if w == 0 {
		return nil
	}
	lh := liveHash(live)
	crt := paillier.SecretOpsFor(pk) != nil
	tabs := make([]*paillier.DotTables, gpr)
	parallel.For(gpr, func(g int) {
		key := tableKey{id: src.id, orient: src.orient, crt: crt, group: g, live: lh}
		if t := tableCacheGet(key); t != nil {
			tabs[g] = t
			return
		}
		col := make([]*paillier.Ciphertext, len(live))
		for t, k := range live {
			col[t] = base(k, g)
		}
		t := pk.PrecomputeDot(col, w)
		tableCachePut(key, t)
		tabs[g] = t
	})
	return tabs
}
