package hetensor

import (
	"math/rand"
	"testing"

	"blindfl/internal/tensor"
)

// Cross-checks of the signed/Straus exponentiation engine against the
// textbook full-width MulPlain paths. Both must decrypt bit-exactly equal:
// the engine changes the group elements, never the plaintexts, so the
// decrypted fixed-point values (hence the float64s they decode to) are
// required to be identical — not merely close.

// mixedDense draws a dense matrix with mixed-sign entries, a sprinkle of
// zeros, and an all-negative column to stress the inversion path.
func mixedDense(rng *rand.Rand, rows, cols int) *tensor.Dense {
	d := tensor.NewDense(rows, cols)
	for i := range d.Data {
		switch rng.Intn(5) {
		case 0:
			d.Data[i] = 0
		case 1:
			d.Data[i] = -rng.Float64() * 3
		default:
			d.Data[i] = rng.Float64()*4 - 2
		}
	}
	for r := 0; r < rows; r++ {
		d.Data[r*cols] = -rng.Float64() - 0.25 // column 0 all-negative
	}
	return d
}

// allNegDense is entirely negative: the worst case for the textbook path and
// the strongest exercise of the engine's single-inversion denominators.
func allNegDense(rng *rand.Rand, rows, cols int) *tensor.Dense {
	d := tensor.NewDense(rows, cols)
	for i := range d.Data {
		d.Data[i] = -rng.Float64()*2 - 0.01
	}
	return d
}

// withTextbook runs fn with the textbook paths toggled on, restoring after.
func withTextbook(fn func()) {
	prev := SetTextbook(true)
	defer SetTextbook(prev)
	fn()
}

func requireIdentical(t *testing.T, op string, engine, textbook *tensor.Dense) {
	t.Helper()
	if engine.Rows != textbook.Rows || engine.Cols != textbook.Cols {
		t.Fatalf("%s: shape %d×%d vs %d×%d", op, engine.Rows, engine.Cols, textbook.Rows, textbook.Cols)
	}
	for i := range engine.Data {
		if engine.Data[i] != textbook.Data[i] {
			t.Fatalf("%s: cell %d differs: engine %v, textbook %v", op, i, engine.Data[i], textbook.Data[i])
		}
	}
}

func TestEngineMulPlainLeft(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial, gen := range []func(*rand.Rand, int, int) *tensor.Dense{mixedDense, allNegDense} {
		x := gen(rng, 5, 7)
		w := mixedDense(rng, 7, 3)
		encW := Encrypt(&testKey.PublicKey, w, 1)
		got := Decrypt(testKey, MulPlainLeft(x, encW))
		var want *tensor.Dense
		withTextbook(func() { want = Decrypt(testKey, MulPlainLeft(x, encW)) })
		requireIdentical(t, "MulPlainLeft", got, want)
		_ = trial
	}
}

func TestEngineMulPlainLeftCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := tensor.RandCSR(rng, 6, 10, 3)
	w := mixedDense(rng, 10, 3)
	encW := Encrypt(&testKey.PublicKey, w, 1)
	got := Decrypt(testKey, MulPlainLeftCSR(x, encW))
	var want *tensor.Dense
	withTextbook(func() { want = Decrypt(testKey, MulPlainLeftCSR(x, encW)) })
	requireIdentical(t, "MulPlainLeftCSR", got, want)
}

func TestEngineTransposeMulLeft(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := mixedDense(rng, 6, 4)
	g := mixedDense(rng, 6, 3)
	encG := Encrypt(&testKey.PublicKey, g, 1)
	got := Decrypt(testKey, TransposeMulLeft(x, encG))
	var want *tensor.Dense
	withTextbook(func() { want = Decrypt(testKey, TransposeMulLeft(x, encG)) })
	requireIdentical(t, "TransposeMulLeft", got, want)
}

func TestEngineTransposeMulLeftCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	x := tensor.RandCSR(rng, 6, 8, 2)
	g := mixedDense(rng, 6, 3)
	encG := Encrypt(&testKey.PublicKey, g, 1)
	got := Decrypt(testKey, TransposeMulLeftCSR(x, encG))
	var want *tensor.Dense
	withTextbook(func() { want = Decrypt(testKey, TransposeMulLeftCSR(x, encG)) })
	requireIdentical(t, "TransposeMulLeftCSR", got, want)
}

func TestEngineMulPlainRightTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	g := mixedDense(rng, 5, 3)
	w := mixedDense(rng, 4, 3)
	encG := Encrypt(&testKey.PublicKey, g, 1)
	got := Decrypt(testKey, MulPlainRightTranspose(encG, w))
	var want *tensor.Dense
	withTextbook(func() { want = Decrypt(testKey, MulPlainRightTranspose(encG, w)) })
	requireIdentical(t, "MulPlainRightTranspose", got, want)
}

func TestEngineMulPlainLeftTransposeRight(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	x := mixedDense(rng, 5, 3)
	w := mixedDense(rng, 4, 3)
	encW := Encrypt(&testKey.PublicKey, w, 1)
	got := Decrypt(testKey, MulPlainLeftTransposeRight(x, encW))
	var want *tensor.Dense
	withTextbook(func() { want = Decrypt(testKey, MulPlainLeftTransposeRight(x, encW)) })
	requireIdentical(t, "MulPlainLeftTransposeRight", got, want)
}

func TestEngineScaleUp(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	v := mixedDense(rng, 3, 3)
	enc := Encrypt(&testKey.PublicKey, v, 1)
	for _, s := range []float64{2.5, -1.75, 0} {
		got := Decrypt(testKey, enc.ScaleUp(s))
		var want *tensor.Dense
		withTextbook(func() { want = Decrypt(testKey, enc.ScaleUp(s)) })
		requireIdentical(t, "ScaleUp", got, want)
	}
}

func TestEnginePackedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	pk := &testKey.PublicKey

	x := mixedDense(rng, 5, 6)
	w := allNegDense(rng, 6, 4)
	packW := PackEncrypt(pk, w, 1)
	got := DecryptPacked(testKey, MulPlainLeftPacked(x, packW))
	var want *tensor.Dense
	withTextbook(func() { want = DecryptPacked(testKey, MulPlainLeftPacked(x, packW)) })
	requireIdentical(t, "MulPlainLeftPacked", got, want)

	xs := tensor.RandCSR(rng, 5, 6, 2)
	got = DecryptPacked(testKey, MulPlainLeftCSRPacked(xs, packW))
	withTextbook(func() { want = DecryptPacked(testKey, MulPlainLeftCSRPacked(xs, packW)) })
	requireIdentical(t, "MulPlainLeftCSRPacked", got, want)

	g := mixedDense(rng, 5, 4)
	packG := PackEncrypt(pk, g, 1)
	xt := mixedDense(rng, 5, 3)
	got = DecryptPacked(testKey, TransposeMulLeftPacked(xt, packG))
	withTextbook(func() { want = DecryptPacked(testKey, TransposeMulLeftPacked(xt, packG)) })
	requireIdentical(t, "TransposeMulLeftPacked", got, want)

	xts := tensor.RandCSR(rng, 5, 7, 2)
	got = DecryptPacked(testKey, TransposeMulLeftCSRPacked(xts, packG))
	withTextbook(func() { want = DecryptPacked(testKey, TransposeMulLeftCSRPacked(xts, packG)) })
	requireIdentical(t, "TransposeMulLeftCSRPacked", got, want)
}

// TestEngineAccumulates checks the Acc variants against a pre-loaded
// accumulator: engine results must fold into existing partial sums exactly
// like the textbook path (the streamed backward-pass pattern).
func TestEngineAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	x := mixedDense(rng, 4, 3)
	g := mixedDense(rng, 4, 2)
	encG := Encrypt(&testKey.PublicKey, g, 1)

	run := func() *tensor.Dense {
		acc := NewCipherMatrix(&testKey.PublicKey, x.Cols, g.Cols, 2)
		TransposeMulLeftAcc(acc, x, encG) // chunk 1
		TransposeMulLeftAcc(acc, x, encG) // chunk 2: same product again
		return Decrypt(testKey, acc)
	}
	got := run()
	var want *tensor.Dense
	withTextbook(func() { want = run() })
	requireIdentical(t, "TransposeMulLeftAcc×2", got, want)
}

func BenchmarkMulPlainLeftTextbook(b *testing.B) {
	benchMulPlainLeftEngine(b, true)
}

func BenchmarkMulPlainLeftEngine(b *testing.B) {
	benchMulPlainLeftEngine(b, false)
}

func benchMulPlainLeftEngine(b *testing.B, textbook bool) {
	prev := SetTextbook(textbook)
	defer SetTextbook(prev)
	rng := rand.New(rand.NewSource(31))
	x := mixedDense(rng, 16, 32)
	w := mixedDense(rng, 32, 4)
	encW := Encrypt(&testKey.PublicKey, w, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulPlainLeft(x, encW)
	}
}
