package hetensor

import (
	"math/rand"
	"sync"
	"testing"

	"blindfl/internal/paillier"
	"blindfl/internal/tensor"
)

// withCacheBudget runs f with the process-wide table cache set to budget,
// restoring the disabled state (and dropping all entries) afterwards.
func withCacheBudget(t *testing.T, budget int64, f func()) {
	t.Helper()
	SetTableCacheBudget(budget)
	ResetTableCache()
	defer func() {
		SetTableCacheBudget(0)
		ResetTableCache()
	}()
	f()
}

func denseEq(t *testing.T, a, b *CipherMatrix, what string) {
	t.Helper()
	if len(a.C) != len(b.C) {
		t.Fatalf("%s: %d vs %d cells", what, len(a.C), len(b.C))
	}
	for i := range a.C {
		if a.C[i].C.Cmp(b.C[i].C) != 0 {
			t.Fatalf("%s: cell %d is not bit-identical", what, i)
		}
	}
}

// TestTableCacheBitExact: cached evaluations must be bit-identical to the
// uncached engine (the cache only changes when and at what width tables are
// built, never the group element computed), and repeat invocations over the
// same encrypted matrix must actually hit.
func TestTableCacheBitExact(t *testing.T) {
	k := testKey
	pk := &k.PublicKey
	rng := rand.New(rand.NewSource(3))
	x1 := tensor.RandDense(rng, 5, 12, 2)
	x2 := tensor.RandDense(rng, 7, 12, 2)
	w := Encrypt(pk, tensor.RandDense(rng, 12, 3, 2), 1)

	cold1 := MulPlainLeft(x1, w)
	cold2 := MulPlainLeft(x2, w)
	gT := Encrypt(pk, tensor.RandDense(rng, 5, 3, 0.5), 1)
	coldT := TransposeMulLeft(x1, gT)
	coldR := MulPlainRightTranspose(gT, tensor.RandDense(rand.New(rand.NewSource(9)), 4, 3, 1))

	withCacheBudget(t, 64<<20, func() {
		warm1 := MulPlainLeft(x1, w)
		warm2 := MulPlainLeft(x2, w) // same bases, different exponents: pure hits
		denseEq(t, cold1, warm1, "MulPlainLeft first call")
		denseEq(t, cold2, warm2, "MulPlainLeft second call")
		s := TableCacheStatsNow()
		if s.Misses == 0 || s.Hits == 0 {
			t.Fatalf("stats %+v: want both misses (first build) and hits (reuse)", s)
		}
		denseEq(t, coldT, TransposeMulLeft(x1, gT), "TransposeMulLeft")
		denseEq(t, coldR, MulPlainRightTranspose(gT, tensor.RandDense(rand.New(rand.NewSource(9)), 4, 3, 1)), "MulPlainRightTranspose")
		if s2 := TableCacheStatsNow(); s2.Bytes <= 0 || s2.Entries <= 0 {
			t.Fatalf("stats %+v: cache should hold entries", s2)
		}
	})
}

// TestTableCachePackedBitExact covers the packed kernels.
func TestTableCachePackedBitExact(t *testing.T) {
	k := testKey
	pk := &k.PublicKey
	rng := rand.New(rand.NewSource(5))
	x := tensor.RandDense(rng, 6, 10, 2)
	w := PackEncrypt(pk, tensor.RandDense(rng, 10, 4, 2), 1)
	cold := MulPlainLeftPacked(x, w)
	withCacheBudget(t, 64<<20, func() {
		warmA := MulPlainLeftPacked(x, w)
		warmB := MulPlainLeftPacked(x, w)
		for i := range cold.C {
			if cold.C[i].C.Cmp(warmA.C[i].C) != 0 || cold.C[i].C.Cmp(warmB.C[i].C) != 0 {
				t.Fatalf("packed cell %d is not bit-identical", i)
			}
		}
		if s := TableCacheStatsNow(); s.Hits == 0 {
			t.Fatalf("stats %+v: second packed call should hit", s)
		}
	})
}

// TestTableCacheEviction: entries accumulated across many distinct matrices
// must evict LRU-first once the budget fills, keep the byte accounting under
// the budget, and stay exact throughout.
func TestTableCacheEviction(t *testing.T) {
	k := testKey
	pk := &k.PublicKey
	rng := rand.New(rand.NewSource(7))
	x := tensor.RandDense(rng, 3, 8, 2)
	ws := make([]*CipherMatrix, 6)
	cold := make([]*CipherMatrix, len(ws))
	for i := range ws {
		ws[i] = Encrypt(pk, tensor.RandDense(rng, 8, 2, 2), 1)
		cold[i] = MulPlainLeft(x, ws[i])
	}
	const budget = 256 << 10 // holds roughly half the 6 matrices' tables
	withCacheBudget(t, budget, func() {
		for i := range ws {
			denseEq(t, cold[i], MulPlainLeft(x, ws[i]), "evicting MulPlainLeft")
		}
		s := TableCacheStatsNow()
		if s.Evicted == 0 {
			t.Fatalf("stats %+v: accumulated working set over budget must evict", s)
		}
		if s.Bytes > budget {
			t.Fatalf("stats %+v: cache bytes exceed the budget", s)
		}
		denseEq(t, cold[0], MulPlainLeft(x, ws[0]), "post-eviction MulPlainLeft")
	})
}

// TestTableCacheOversizedInvocationBypasses: when one invocation's whole
// table working set cannot fit the budget at a worthwhile window, the call
// must bypass the cache (no thrash: no inserts, no self-eviction) and fall
// back to the per-call tiers.
func TestTableCacheOversizedInvocationBypasses(t *testing.T) {
	k := testKey
	pk := &k.PublicKey
	rng := rand.New(rand.NewSource(27))
	x := tensor.RandDense(rng, 3, 16, 2)
	w := Encrypt(pk, tensor.RandDense(rng, 16, 40, 2), 1) // 40 columns of tables
	cold := MulPlainLeft(x, w)
	withCacheBudget(t, 64<<10, func() {
		denseEq(t, cold, MulPlainLeft(x, w), "bypassing MulPlainLeft")
		if s := TableCacheStatsNow(); s.Entries != 0 || s.Evicted != 0 {
			t.Fatalf("stats %+v: oversized invocation must bypass, not thrash", s)
		}
	})
}

// TestTableCacheAnonymousSourcesBypass: accumulators and row-slice views
// (identity 0) must never insert cache entries — their cells can be
// replaced, so cached tables could go stale.
func TestTableCacheAnonymousSourcesBypass(t *testing.T) {
	k := testKey
	pk := &k.PublicKey
	rng := rand.New(rand.NewSource(11))
	x := tensor.RandDense(rng, 4, 8, 2)
	w := Encrypt(pk, tensor.RandDense(rng, 8, 2, 2), 1)
	withCacheBudget(t, 64<<20, func() {
		view := w.RowSlice(0, 8) // full view, but still an anonymous source
		MulPlainLeft(x, view)
		if s := TableCacheStatsNow(); s.Entries != 0 {
			t.Fatalf("stats %+v: row-slice view must bypass the cache", s)
		}
		acc := NewCipherMatrix(pk, 8, 2, 1) // mutable accumulator
		MulPlainLeft(x, acc)
		if s := TableCacheStatsNow(); s.Entries != 0 {
			t.Fatalf("stats %+v: accumulator must bypass the cache", s)
		}
	})
}

// TestTableCacheConcurrent hammers one encrypted matrix from several
// goroutines (the -cpu 1,4 CI lane runs this under the race detector).
func TestTableCacheConcurrent(t *testing.T) {
	k := testKey
	pk := &k.PublicKey
	rng := rand.New(rand.NewSource(13))
	x := tensor.RandDense(rng, 3, 8, 2)
	w := Encrypt(pk, tensor.RandDense(rng, 8, 3, 2), 1)
	want := MulPlainLeft(x, w)
	withCacheBudget(t, 32<<20, func() {
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 3; i++ {
					got := MulPlainLeft(x, w)
					for j := range want.C {
						if got.C[j].C.Cmp(want.C[j].C) != 0 {
							errs <- "concurrent cached result diverged"
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	})
}

// TestTableCacheCRTMode: cached tables built while SecretOps is registered
// evaluate through the dual-chain path and stay bit-identical.
func TestTableCacheCRTMode(t *testing.T) {
	k := testKey
	pk := &k.PublicKey
	rng := rand.New(rand.NewSource(17))
	x := tensor.RandDense(rng, 4, 8, 2)
	w := Encrypt(pk, tensor.RandDense(rng, 8, 2, 2), 1)
	cold := MulPlainLeft(x, w)
	paillier.RegisterSecretOps(k)
	defer paillier.UnregisterSecretOps(pk)
	withCacheBudget(t, 32<<20, func() {
		warm1 := MulPlainLeft(x, w)
		warm2 := MulPlainLeft(x, w)
		denseEq(t, cold, warm1, "CRT cached first call")
		denseEq(t, cold, warm2, "CRT cached second call")
		if s := TableCacheStatsNow(); s.Hits == 0 {
			t.Fatalf("stats %+v: CRT-mode reuse should hit", s)
		}
	})
}

func BenchmarkMulPlainLeftWarmCache(b *testing.B) {
	k := testKey
	pk := &k.PublicKey
	rng := rand.New(rand.NewSource(19))
	x := tensor.RandDense(rng, 8, 16, 2)
	w := Encrypt(pk, tensor.RandDense(rng, 16, 2, 2), 1)
	prev := SetTableCacheBudget(64 << 20)
	ResetTableCache()
	defer func() {
		SetTableCacheBudget(prev)
		ResetTableCache()
	}()
	MulPlainLeft(x, w) // warm the tables
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulPlainLeft(x, w)
	}
}

func BenchmarkMulPlainLeftUncached(b *testing.B) {
	k := testKey
	pk := &k.PublicKey
	rng := rand.New(rand.NewSource(19))
	x := tensor.RandDense(rng, 8, 16, 2)
	w := Encrypt(pk, tensor.RandDense(rng, 16, 2, 2), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulPlainLeft(x, w)
	}
}
