package hetensor

import (
	"fmt"
	"math/big"
	"math/rand"

	"blindfl/internal/fixedpoint"
	"blindfl/internal/paillier"
	"blindfl/internal/parallel"
	"blindfl/internal/tensor"
)

// Serving kernels. Online inference inverts the training layout: instead of
// one party's large mini-batch against a packed weight matrix, a serve batch
// is up to K *different users'* requests packed into the exponent. Each lane
// group of requests becomes one signed packed exponent per feature, so the
// homomorphic product ⟦(X·V)ᵀ⟧ costs one dot-product grid of v.Cols×⌈batch/K⌉
// ciphertexts — the request batcher fills lanes across concurrent queries.
// The base set is the *unpacked* ⟦V⟧ column, the identical tableSource the
// training-time MulPlainLeft uses, so a long-lived serve session's queries
// warm and reuse the same persistent dot-table cache entries.
//
// Unlike training's float shares, serve shares stay exact integers at scale 2
// until the end: masks are drawn as integer lane values and cancel exactly in
// ℤ when the two parties' shares are summed, so the reconstructed activation
// is a deterministic function of the weights and the request — independent of
// mask draws, batch composition, lane position and the Textbook toggle. That
// is what lets a served prediction be re-verified bit-for-bit against a
// plaintext forward pass (the integrity spot check).

// ServeMaskBits is the bit magnitude of serve-time integer lane masks:
// 2·Codec.F bits cover a scale-2 product lane plus the usual ~2^20
// statistical blind on top, comfortably inside the PackHeadroom margin.
const ServeMaskBits = 100

// Lanes returns the number of packing lanes K one ciphertext holds under the
// key's default layout — the serve batcher's natural batch quantum.
func Lanes(pk *paillier.PublicKey) int { return packingFor(pk).K }

// BigMatrix is a rows×cols matrix of exact signed integers at a fixed-point
// scale: the integer-domain share type of the serving protocol, wide enough
// for masked scale-2 values (~2^100) that do not fit tensor.IntMatrix's int
// cells. Fields are exported for gob.
type BigMatrix struct {
	Rows, Cols int
	Scale      uint
	V          []*big.Int
}

// NewBigMatrix allocates a zero matrix.
func NewBigMatrix(rows, cols int, scale uint) *BigMatrix {
	m := &BigMatrix{Rows: rows, Cols: cols, Scale: scale, V: make([]*big.Int, rows*cols)}
	for i := range m.V {
		m.V[i] = new(big.Int)
	}
	return m
}

// At returns the entry at (i, j).
func (m *BigMatrix) At(i, j int) *big.Int { return m.V[i*m.Cols+j] }

// AddInPlace adds o entrywise into m. Shapes and scales must match.
func (m *BigMatrix) AddInPlace(o *BigMatrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols || m.Scale != o.Scale {
		panic(fmt.Sprintf("hetensor: BigMatrix add mismatch %d×%d@%d vs %d×%d@%d",
			m.Rows, m.Cols, m.Scale, o.Rows, o.Cols, o.Scale))
	}
	parallel.For(m.Rows, func(i int) {
		row := m.V[i*m.Cols : (i+1)*m.Cols]
		orow := o.V[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j].Add(row[j], orow[j])
		}
	})
}

// DecodeTranspose decodes mᵀ to float64 at m's scale: the serve matrices are
// out×batch (transposed by the lane layout), while heads consume batch×out.
func (m *BigMatrix) DecodeTranspose() *tensor.Dense {
	out := tensor.NewDense(m.Cols, m.Rows)
	parallel.For(m.Rows, func(i int) {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = Codec.Decode(m.V[i*m.Cols+j], m.Scale)
		}
	})
	return out
}

// ServeProducts computes ⟦(X·V)ᵀ⟧ from plaintext requests X (batch×in) and
// the unpacked encrypted weight piece V (in×out): the serve-side homomorphic
// half. Requests are packed K-per-exponent — lane group g of the result's
// rows holds requests g·K… — so the grid is v.Cols×⌈batch/K⌉ dot products
// instead of batch×v.Cols. The result is a packed out×batch matrix at scale
// V.Scale+1 whose lane l of group g is request (g·K+l)'s product.
//
// The kernel always runs the signed-exponent engine: packed exponents are the
// mechanism, not an optimization, so the Textbook toggle does not apply. The
// base columns and orientation match MulPlainLeft on the same V, so serve
// queries resolve through the identical persistent dot-table cache entries.
func ServeProducts(x *tensor.Dense, v *CipherMatrix) *PackedMatrix {
	if x.Cols != v.Rows {
		panic(fmt.Sprintf("hetensor: ServeProducts inner dim mismatch %d×%d · %d×%d", x.Rows, x.Cols, v.Rows, v.Cols))
	}
	if x.Rows == 0 {
		panic("hetensor: ServeProducts of an empty batch")
	}
	lc := packingFor(v.PK)
	out := NewPackedMatrix(v.PK, v.Cols, x.Rows, x.Rows, v.Scale+1)
	groups := out.GroupsPerRow()
	exps := make([][]paillier.SignedExp, groups)
	maxBits := 0
	for g := 0; g < groups; g++ {
		lo := g * lc.K
		hi := lo + out.laneCount(g)
		es := make([]paillier.SignedExp, x.Cols)
		lanes := make([]*big.Int, hi-lo)
		for k := 0; k < x.Cols; k++ {
			zero := true
			for i := lo; i < hi; i++ {
				lanes[i-lo] = Codec.Encode(x.At(i, k), 1)
				if lanes[i-lo].Sign() != 0 {
					zero = false
				}
			}
			if zero {
				continue
			}
			p := lc.PackEncoded(lanes)
			neg := p.Sign() < 0
			es[k] = paillier.SignedExp{Mag: p.Abs(p), Neg: neg}
			if bl := es[k].Mag.BitLen(); bl > maxBits {
				maxBits = bl
			}
		}
		exps[g] = es
	}
	dotProducts(v.PK, tableSource{v.id, orientCol}, func(k, j int) *paillier.Ciphertext { return v.Row(k)[j] },
		x.Cols, v.Cols, exps, maxBits,
		func(g, j int, c *paillier.Ciphertext) { out.Row(j)[g] = c })
	return out
}

// ServeMask draws a fresh ServeMaskBits-bit signed integer mask for every
// lane of prod and returns the mask matrix (this party's integer share) plus
// ⟦prod − S⟧, re-randomized by the fresh pooled encryptions of the packed
// negated masks — the serve-side HE2SS send half, in the integer domain.
// Masks are drawn serially from rng (the peer's session RNG), keeping runs
// reproducible from the session seed.
func ServeMask(rng *rand.Rand, prod *PackedMatrix) (*BigMatrix, *PackedMatrix) {
	s := &BigMatrix{Rows: prod.Rows, Cols: prod.Cols, Scale: prod.Scale, V: make([]*big.Int, prod.Rows*prod.Cols)}
	buf := make([]byte, ServeMaskBits/8)
	for i := range s.V {
		rng.Read(buf)
		v := new(big.Int).SetBytes(buf)
		if rng.Intn(2) == 1 {
			v.Neg(v)
		}
		s.V[i] = v
	}
	masked := &PackedMatrix{Rows: prod.Rows, Cols: prod.Cols, Block: prod.Block, Scale: prod.Scale,
		W: prod.W, K: prod.K, PK: prod.PK, C: make([]*paillier.Ciphertext, len(prod.C))}
	lc := prod.codec()
	gpr := prod.GroupsPerRow()
	parallel.For(len(prod.C), func(t int) {
		i, g := t/gpr, t%gpr
		col := prod.groupCol(g)
		lanes := prod.laneCount(g)
		neg := make([]*big.Int, lanes)
		for l := range neg {
			neg[l] = new(big.Int).Neg(s.V[i*prod.Cols+col+l])
		}
		m := fixedpoint.ToRing(lc.PackEncoded(neg), prod.PK.N)
		c, err := paillier.EncryptPooled(prod.PK, m)
		if err != nil {
			panic(fmt.Sprintf("hetensor: serve mask: %v", err))
		}
		masked.C[t] = prod.PK.AddCipher(prod.C[t], c)
	})
	return s, masked
}

// DecryptPackedInts decrypts a packed matrix to its exact signed lane
// integers — the serve-side HE2SS receive half, which must not round through
// float64 because the mask cancellation happens later, in ℤ.
func DecryptPackedInts(sk *paillier.PrivateKey, m *PackedMatrix) *BigMatrix {
	out := &BigMatrix{Rows: m.Rows, Cols: m.Cols, Scale: m.Scale, V: make([]*big.Int, m.Rows*m.Cols)}
	lc := m.codec()
	gpr := m.GroupsPerRow()
	parallel.For(len(m.C), func(t int) {
		i, g := t/gpr, t%gpr
		col := m.groupCol(g)
		lanes := m.laneCount(g)
		vals := lc.UnpackInts(fixedpoint.FromRing(sk.Decrypt(m.C[t]), sk.N), lanes)
		copy(out.V[i*m.Cols+col:i*m.Cols+col+lanes], vals)
	})
	return out
}

// ANPrime is the modulus of the AN-coded residue check (AHEAD-style): a
// Mersenne prime small enough that residue arithmetic stays in uint64 and
// large enough that a random corruption of a share cell survives the check
// with probability only ~2⁻³¹.
const ANPrime = 1<<31 - 1

// IntMatMulTAN is IntMatMulT with an AN-coded self-check: every output cell
// is recomputed mod ANPrime from the reduced operands — an independent,
// cheap arithmetic path — and compared against the big-integer accumulation.
// It returns the product and the number of cells whose residues disagreed.
// A non-zero count means the share arithmetic itself corrupted (bad RAM, a
// miscompiled kernel): the failure class that never touches the wire, so no
// checksum or decrypt probe can see it.
func IntMatMulTAN(x, u *tensor.Dense) (*BigMatrix, int) {
	out := IntMatMulT(x, u)
	p := big.NewInt(ANPrime)
	// Reduce both operand matrices once; the per-cell check is then a pure
	// uint64 dot product mod ANPrime.
	xr := make([]uint64, x.Rows*x.Cols)
	parallel.For(x.Rows, func(i int) {
		m := new(big.Int)
		for k := 0; k < x.Cols; k++ {
			xr[i*x.Cols+k] = m.Mod(Codec.Encode(x.At(i, k), 1), p).Uint64()
		}
	})
	ur := make([]uint64, u.Rows*u.Cols)
	parallel.For(u.Rows, func(k int) {
		m := new(big.Int)
		for j := 0; j < u.Cols; j++ {
			ur[k*u.Cols+j] = m.Mod(Codec.Encode(u.At(k, j), 1), p).Uint64()
		}
	})
	mismatches := make([]int, u.Cols)
	parallel.For(u.Cols, func(j int) {
		m := new(big.Int)
		for i := 0; i < x.Rows; i++ {
			var acc uint64
			for k := 0; k < x.Cols; k++ {
				acc = (acc + xr[i*x.Cols+k]*ur[k*u.Cols+j]) % ANPrime
			}
			if m.Mod(out.V[j*x.Rows+i], p).Uint64() != acc {
				mismatches[j]++
			}
		}
	})
	total := 0
	for _, n := range mismatches {
		total += n
	}
	return out, total
}

// IntMatMulT computes the exact integer product (X·U)ᵀ with both factors
// encoded at scale 1: out[j][i] = Σ_k ⟨x[i][k]⟩·⟨u[k][j]⟩, a u.Cols×x.Rows
// matrix at scale 2 — the plaintext share of the serve forward, in the same
// transposed integer domain as the homomorphic half.
func IntMatMulT(x, u *tensor.Dense) *BigMatrix {
	if x.Cols != u.Rows {
		panic(fmt.Sprintf("hetensor: IntMatMulT inner dim mismatch %d×%d · %d×%d", x.Rows, x.Cols, u.Rows, u.Cols))
	}
	ex := make([]*big.Int, len(x.Data))
	parallel.For(x.Rows, func(i int) {
		for k := 0; k < x.Cols; k++ {
			ex[i*x.Cols+k] = Codec.Encode(x.At(i, k), 1)
		}
	})
	eu := make([]*big.Int, len(u.Data))
	parallel.For(u.Rows, func(k int) {
		for j := 0; j < u.Cols; j++ {
			eu[k*u.Cols+j] = Codec.Encode(u.At(k, j), 1)
		}
	})
	out := &BigMatrix{Rows: u.Cols, Cols: x.Rows, Scale: 2, V: make([]*big.Int, u.Cols*x.Rows)}
	parallel.For(u.Cols, func(j int) {
		tmp := new(big.Int)
		for i := 0; i < x.Rows; i++ {
			acc := new(big.Int)
			for k := 0; k < x.Cols; k++ {
				if ex[i*x.Cols+k].Sign() == 0 || eu[k*u.Cols+j].Sign() == 0 {
					continue
				}
				acc.Add(acc, tmp.Mul(ex[i*x.Cols+k], eu[k*u.Cols+j]))
			}
			out.V[j*x.Rows+i] = acc
		}
	})
	return out
}
