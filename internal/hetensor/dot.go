package hetensor

import (
	"sync/atomic"

	"blindfl/internal/paillier"
	"blindfl/internal/parallel"
	"blindfl/internal/tensor"
)

// Exponentiation engine dispatch. Every plaintext·ciphertext matmul in this
// package is a grid of encrypted dot products Π cᵢ^{kᵢ}; the engine paths
// below evaluate them with paillier's signed small-exponent and Straus
// multi-exponentiation kernels (signed-magnitude scalars, shared squaring
// chains, window tables reused across batch rows) instead of one full-width
// MulPlain per term. Results decrypt identically to the textbook paths; the
// toggle exists so ablation benchmarks can measure the engine against the
// classic implementation in the same binary.

// textbookExp selects the pre-engine full-width MulPlain paths when true.
// Process-wide: in-process federated parties share one setting.
var textbookExp atomic.Bool

// SetTextbook switches every hetensor matmul between the textbook
// exponentiation paths (true) and the signed/Straus engine (false, the
// default). It returns the previous setting so tests can restore it.
func SetTextbook(v bool) bool { return textbookExp.Swap(v) }

// TextbookExp reports whether the textbook exponentiation paths are active.
func TextbookExp() bool { return textbookExp.Load() }

// maxDotTableEntries caps the total number of precomputed window-table
// residues one kernel invocation may hold (~32 MiB at a 1024-bit modulus).
// Beyond it the kernels fall back to per-cell DotRow, which builds tables
// per evaluation but only for the live bases.
const maxDotTableEntries = 1 << 17

// encodeSignedVec encodes a plaintext vector at scale 1 into signed-magnitude
// exponents, returning the largest magnitude bit length alongside.
func encodeSignedVec(vals []float64) ([]paillier.SignedExp, int) {
	es := make([]paillier.SignedExp, len(vals))
	maxBits := 0
	for i, v := range vals {
		if v == 0 {
			continue
		}
		mag, neg := Codec.EncodeSigned(v, 1)
		es[i] = paillier.SignedExp{Mag: mag, Neg: neg}
		if bl := mag.BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	return es, maxBits
}

// dotProducts evaluates the encrypted dot-product grid
//
//	res[r][g] = Π_k base(k, g) ^ exps[r][k],  k = 0..inner−1,
//
// emitting each cell via emit(r, g, c). Table resolution runs in three
// tiers: (1) when the base matrix has a stable identity and the persistent
// table cache is enabled, per-group tables come from (or are inserted into)
// the process-wide cache and survive across kernel invocations, batches and
// epochs; (2) otherwise, when the per-base window tables fit the per-call
// memory cap they are precomputed once per g and shared across all exponent
// vectors (each batch row of a matmul hits the same weight column);
// (3) otherwise each cell runs a standalone DotRow. emit is called from one
// goroutine per r, so writes keyed by r need no locking.
func dotProducts(pk *paillier.PublicKey, src tableSource, base func(k, g int) *paillier.Ciphertext,
	inner, gpr int, exps [][]paillier.SignedExp, maxBits int,
	emit func(r, g int, c *paillier.Ciphertext)) {
	if inner == 0 || len(exps) == 0 || gpr == 0 {
		return
	}
	// Drop inner indices whose exponent is zero in every row (all-zero
	// feature columns, padding): they would otherwise cost full window
	// tables per group and count toward the memory cap for nothing.
	live := make([]int, 0, inner)
	for k := 0; k < inner; k++ {
		for r := range exps {
			if !exps[r][k].IsZero() {
				live = append(live, k)
				break
			}
		}
	}
	if len(live) == 0 {
		return
	}
	rowExps := exps
	if len(live) < inner {
		rowExps = make([][]paillier.SignedExp, len(exps))
		for r := range exps {
			fe := make([]paillier.SignedExp, len(live))
			for t, k := range live {
				fe[t] = exps[r][k]
			}
			rowExps[r] = fe
		}
	}
	// Tier 1: persistent cross-invocation tables keyed by matrix identity.
	if tabs := cachedTables(pk, src, live, gpr, maxBits, base); tabs != nil {
		parallel.For(len(exps), func(r int) {
			for g := 0; g < gpr; g++ {
				emit(r, g, tabs[g].Dot(rowExps[r]))
			}
		})
		return
	}
	// Narrow the window until the shared tables fit the cap: a smaller
	// shared table still amortizes across all rows, which beats rebuilding
	// per-cell tables in the DotRow fallback.
	win := paillier.DotWindow(maxBits, len(exps))
	for win > 1 && len(live)*gpr*((1<<win)-1) > maxDotTableEntries {
		win--
	}
	if len(live)*gpr*((1<<win)-1) <= maxDotTableEntries {
		tabs := make([]*paillier.DotTables, gpr)
		parallel.For(gpr, func(g int) {
			col := make([]*paillier.Ciphertext, len(live))
			for t, k := range live {
				col[t] = base(k, g)
			}
			tabs[g] = pk.PrecomputeDot(col, win)
		})
		parallel.For(len(exps), func(r int) {
			for g := 0; g < gpr; g++ {
				emit(r, g, tabs[g].Dot(rowExps[r]))
			}
		})
		return
	}
	parallel.For(len(exps), func(r int) {
		col := make([]*paillier.Ciphertext, len(live))
		for g := 0; g < gpr; g++ {
			for t, k := range live {
				col[t] = base(k, g)
			}
			emit(r, g, pk.DotRow(col, rowExps[r]))
		}
	})
}

// denseRowExps encodes every row of x at scale 1.
func denseRowExps(x *tensor.Dense) ([][]paillier.SignedExp, int) {
	exps := make([][]paillier.SignedExp, x.Rows)
	maxBits := 0
	for i := range exps {
		var b int
		exps[i], b = encodeSignedVec(x.Row(i))
		if b > maxBits {
			maxBits = b
		}
	}
	return exps, maxBits
}

// denseColExps encodes every column of x at scale 1 (the transpose layout).
func denseColExps(x *tensor.Dense) ([][]paillier.SignedExp, int) {
	exps := make([][]paillier.SignedExp, x.Cols)
	maxBits := 0
	col := make([]float64, x.Rows)
	for k := range exps {
		for i := 0; i < x.Rows; i++ {
			col[i] = x.At(i, k)
		}
		var b int
		exps[k], b = encodeSignedVec(col)
		if b > maxBits {
			maxBits = b
		}
	}
	return exps, maxBits
}

// dotCSRMul computes out[i] = Π over the stored non-zeros of x's row i for
// each ciphertext group: the sparse engine path shared by the packed and
// unpacked MulPlainLeftCSR. Rows with no non-zeros keep out's identity cells.
func dotCSRMul(pk *paillier.PublicKey, x *tensor.CSR,
	wRow func(int) []*paillier.Ciphertext, gpr int,
	outRow func(int) []*paillier.Ciphertext) {
	parallel.For(x.Rows, func(i int) {
		cols, vals := x.RowNNZ(i)
		if len(cols) == 0 {
			return
		}
		exps, _ := encodeSignedVec(vals)
		bases := make([]*paillier.Ciphertext, len(cols))
		orow := outRow(i)
		for g := 0; g < gpr; g++ {
			for t, k := range cols {
				bases[t] = wRow(k)[g]
			}
			orow[g] = pk.DotRow(bases, exps)
		}
	})
}

// dotCSRTransposeAcc accumulates the sparse transpose product
// acc[k] ·= Π_i g[i]^{x[lo+i][k]} per ciphertext group, bucketing non-zeros
// by feature column so each output row is owned by one goroutine: the engine
// path shared by the packed and unpacked TransposeMulLeftCSRAcc.
func dotCSRTransposeAcc(pk *paillier.PublicKey, x *tensor.CSR, lo, gRows int,
	gRow func(int) []*paillier.Ciphertext, gpr int,
	accRow func(int) []*paillier.Ciphertext) {
	type nz struct {
		row int
		val float64
	}
	buckets := make([][]nz, x.Cols)
	for i := 0; i < gRows; i++ {
		cols, vals := x.RowNNZ(lo + i)
		for t, k := range cols {
			buckets[k] = append(buckets[k], nz{i, vals[t]})
		}
	}
	parallel.For(x.Cols, func(k int) {
		if len(buckets[k]) == 0 {
			return
		}
		vals := make([]float64, len(buckets[k]))
		for t, e := range buckets[k] {
			vals[t] = e.val
		}
		exps, _ := encodeSignedVec(vals)
		bases := make([]*paillier.Ciphertext, len(buckets[k]))
		orow := accRow(k)
		for g := 0; g < gpr; g++ {
			for t, e := range buckets[k] {
				bases[t] = gRow(e.row)[g]
			}
			orow[g] = pk.AddCipher(orow[g], pk.DotRow(bases, exps))
		}
	})
}
