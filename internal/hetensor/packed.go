package hetensor

import (
	"fmt"
	"math/big"

	"blindfl/internal/fixedpoint"
	"blindfl/internal/paillier"
	"blindfl/internal/parallel"
	"blindfl/internal/tensor"
)

// Ciphertext packing: one Paillier plaintext is ~512–2048 bits wide while a
// scale-2 fixed-point value uses only ~120, so K consecutive matrix entries
// are packed into the lanes of a single ciphertext (fixedpoint.LaneCodec).
// Every homomorphic operation then touches ~K× fewer ciphertexts: K× fewer
// blinding exponentiations on the encryption paths and K× fewer ciphertext
// multiplications in the plaintext·ciphertext matmuls — the throughput lever
// behind the packed federated source layers.

// PackHeadroom is the integer growth allowance per lane in bits, covering
// HE2SS masks (2^20) and matmul accumulation on top of a scale-2 value.
const PackHeadroom = 43

// packingFor sizes the lane layout for a public key. Keys accepted by
// paillier.GenerateKey (≥128 bits… in practice ≥512 here) always fit at
// least one lane at the default codec, so sizing cannot fail for usable keys.
func packingFor(pk *paillier.PublicKey) fixedpoint.LaneCodec {
	lc, err := fixedpoint.NewLaneCodec(Codec, pk.N.BitLen(), 2, PackHeadroom)
	if err != nil {
		panic(fmt.Sprintf("hetensor: %v", err))
	}
	return lc
}

// PackedMatrix is a rows×cols matrix of fixed-point values packed K-per-
// ciphertext under PK. Columns are partitioned into blocks of Block columns;
// each block is packed independently into ⌈Block/K⌉ ciphertexts, so
// concatenations of equally-blocked rows (embedding lookups) keep their lane
// alignment. A plain matrix uses Block == Cols.
type PackedMatrix struct {
	Rows, Cols int
	Block      int
	Scale      uint
	W          uint // lane width in bits
	K          int  // lanes per ciphertext
	PK         *paillier.PublicKey
	C          []*paillier.Ciphertext

	// id is the table-cache identity; see CipherMatrix. Unexported: gob
	// drops it and the receiver mints its own.
	id uint64
}

func (m *PackedMatrix) codec() fixedpoint.LaneCodec {
	return fixedpoint.LaneCodec{Codec: Codec, W: m.W, K: m.K}
}

// GroupsPerBlock returns the ciphertexts spanning one block.
func (m *PackedMatrix) GroupsPerBlock() int { return (m.Block + m.K - 1) / m.K }

// GroupsPerRow returns the ciphertexts spanning one row.
func (m *PackedMatrix) GroupsPerRow() int { return (m.Cols / m.Block) * m.GroupsPerBlock() }

// Row returns the ciphertext groups of row i.
func (m *PackedMatrix) Row(i int) []*paillier.Ciphertext {
	g := m.GroupsPerRow()
	return m.C[i*g : (i+1)*g]
}

// RowSlice returns a view of rows [lo, hi) sharing m's ciphertexts and lane
// layout. The chunk unit of the streamed protocol paths.
func (m *PackedMatrix) RowSlice(lo, hi int) *PackedMatrix {
	if lo < 0 || hi < lo || hi > m.Rows {
		panic(fmt.Sprintf("hetensor: packed RowSlice [%d,%d) of %d rows", lo, hi, m.Rows))
	}
	g := m.GroupsPerRow()
	return &PackedMatrix{Rows: hi - lo, Cols: m.Cols, Block: m.Block, Scale: m.Scale, W: m.W, K: m.K,
		PK: m.PK, C: m.C[lo*g : hi*g]}
}

// laneCount returns how many lanes group g (indexed within a row) holds.
func (m *PackedMatrix) laneCount(g int) int {
	gInBlock := g % m.GroupsPerBlock()
	lanes := m.Block - gInBlock*m.K
	if lanes > m.K {
		lanes = m.K
	}
	return lanes
}

// groupCol returns the first logical column covered by group g of a row.
func (m *PackedMatrix) groupCol(g int) int {
	gpb := m.GroupsPerBlock()
	return (g/gpb)*m.Block + (g%gpb)*m.K
}

func (m *PackedMatrix) layoutCheck(o *PackedMatrix, op string) {
	if m.Rows != o.Rows || m.Cols != o.Cols || m.Block != o.Block || m.W != o.W || m.K != o.K {
		panic(fmt.Sprintf("hetensor: %s packed layout mismatch: %d×%d/%d lanes %d×%d vs %d×%d/%d lanes %d×%d",
			op, m.Rows, m.Cols, m.Block, m.K, m.W, o.Rows, o.Cols, o.Block, o.K, o.W))
	}
}

// NewPackedMatrix allocates a packed matrix of unrandomized encryptions of
// zero, the accumulator identity, with the key's default lane layout.
func NewPackedMatrix(pk *paillier.PublicKey, rows, cols, block int, scale uint) *PackedMatrix {
	if block <= 0 {
		block = cols
	}
	if cols%block != 0 {
		panic(fmt.Sprintf("hetensor: packed block %d does not divide cols %d", block, cols))
	}
	lc := packingFor(pk)
	m := &PackedMatrix{Rows: rows, Cols: cols, Block: block, Scale: scale, W: lc.W, K: lc.K, PK: pk}
	m.C = make([]*paillier.Ciphertext, rows*m.GroupsPerRow())
	for i := range m.C {
		m.C[i] = &paillier.Ciphertext{C: big.NewInt(1)}
	}
	return m
}

// PackEncrypt encrypts a dense matrix with K values per ciphertext
// (Block = Cols). Uses the registered blinding pool for pk when present.
func PackEncrypt(pk *paillier.PublicKey, d *tensor.Dense, scale uint) *PackedMatrix {
	return PackEncryptBlocks(pk, d, scale, d.Cols)
}

// PackEncryptBlocks is PackEncrypt with an explicit block width (columns are
// packed per block so the layout matches block-structured matrices such as
// per-field embedding lookups).
func PackEncryptBlocks(pk *paillier.PublicKey, d *tensor.Dense, scale uint, block int) *PackedMatrix {
	out := NewPackedMatrix(pk, d.Rows, d.Cols, block, scale)
	lc := out.codec()
	gpr := out.GroupsPerRow()
	parallel.For(d.Rows*gpr, func(t int) {
		i, g := t/gpr, t%gpr
		col := out.groupCol(g)
		lanes := out.laneCount(g)
		m := lc.PackRing(d.Row(i)[col:col+lanes], scale, pk.N)
		c, err := paillier.EncryptPooled(pk, m)
		if err != nil {
			panic(fmt.Sprintf("hetensor: pack encrypt: %v", err))
		}
		out.C[t] = c
	})
	out.MintID()
	return out
}

// DecryptPacked decrypts a packed matrix back to float64 at its scale.
func DecryptPacked(sk *paillier.PrivateKey, m *PackedMatrix) *tensor.Dense {
	out := tensor.NewDense(m.Rows, m.Cols)
	lc := m.codec()
	gpr := m.GroupsPerRow()
	parallel.For(len(m.C), func(t int) {
		i, g := t/gpr, t%gpr
		col := m.groupCol(g)
		lanes := m.laneCount(g)
		vals := lc.UnpackRing(sk.Decrypt(m.C[t]), lanes, m.Scale, sk.N)
		copy(out.Row(i)[col:col+lanes], vals)
	})
	return out
}

// AddCipher returns the elementwise homomorphic sum m + o for identical
// layouts and scales.
func (m *PackedMatrix) AddCipher(o *PackedMatrix) *PackedMatrix {
	m.layoutCheck(o, "AddCipher")
	if m.Scale != o.Scale {
		panic(fmt.Sprintf("hetensor: packed AddCipher scale mismatch %d vs %d", m.Scale, o.Scale))
	}
	out := &PackedMatrix{Rows: m.Rows, Cols: m.Cols, Block: m.Block, Scale: m.Scale, W: m.W, K: m.K, PK: m.PK,
		C: make([]*paillier.Ciphertext, len(m.C))}
	parallel.For(len(m.C), func(i int) {
		out.C[i] = m.PK.AddCipher(m.C[i], o.C[i])
	})
	return out
}

// SubPlainFresh returns ⟦m − d⟧ using fresh packed encryptions of −d, which
// also re-randomizes every ciphertext: the send half of HE2SS, at 1/K of the
// unpacked blinding cost.
func (m *PackedMatrix) SubPlainFresh(d *tensor.Dense) *PackedMatrix {
	if m.Rows != d.Rows || m.Cols != d.Cols {
		panic("hetensor: packed SubPlainFresh shape mismatch")
	}
	neg := tensor.NewDense(d.Rows, d.Cols)
	for i, v := range d.Data {
		neg.Data[i] = -v
	}
	return m.AddCipher(PackEncryptBlocks(m.PK, neg, m.Scale, m.Block))
}

// MulPlainLeftPacked computes ⟦X·W⟧ from plaintext X and packed encrypted W.
// The result keeps W's block layout at scale W.Scale+1; the homomorphic work
// is 1/K of the unpacked MulPlainLeft.
func MulPlainLeftPacked(x *tensor.Dense, w *PackedMatrix) *PackedMatrix {
	if x.Cols != w.Rows {
		panic(fmt.Sprintf("hetensor: MulPlainLeftPacked inner dim mismatch %d×%d · %d×%d", x.Rows, x.Cols, w.Rows, w.Cols))
	}
	out := NewPackedMatrix(w.PK, x.Rows, w.Cols, w.Block, w.Scale+1)
	if TextbookExp() {
		parallel.For(x.Rows, func(i int) {
			orow := out.Row(i)
			xrow := x.Row(i)
			for k, a := range xrow {
				if a == 0 {
					continue
				}
				ea := Codec.Encode(a, 1)
				wrow := w.Row(k)
				for g := range orow {
					orow[g] = w.PK.AddCipher(orow[g], w.PK.MulPlain(wrow[g], ea))
				}
			}
		})
		return out
	}
	exps, maxBits := denseRowExps(x)
	dotProducts(w.PK, tableSource{w.id, orientCol}, func(k, g int) *paillier.Ciphertext { return w.Row(k)[g] },
		x.Cols, w.GroupsPerRow(), exps, maxBits,
		func(i, g int, c *paillier.Ciphertext) { out.Row(i)[g] = c })
	return out
}

// MulPlainLeftCSRPacked is MulPlainLeftPacked for sparse plaintext X.
func MulPlainLeftCSRPacked(x *tensor.CSR, w *PackedMatrix) *PackedMatrix {
	if x.Cols != w.Rows {
		panic(fmt.Sprintf("hetensor: MulPlainLeftCSRPacked inner dim mismatch %d×%d · %d×%d", x.Rows, x.Cols, w.Rows, w.Cols))
	}
	out := NewPackedMatrix(w.PK, x.Rows, w.Cols, w.Block, w.Scale+1)
	if TextbookExp() {
		parallel.For(x.Rows, func(i int) {
			orow := out.Row(i)
			cols, vals := x.RowNNZ(i)
			for t, k := range cols {
				ea := Codec.Encode(vals[t], 1)
				wrow := w.Row(k)
				for g := range orow {
					orow[g] = w.PK.AddCipher(orow[g], w.PK.MulPlain(wrow[g], ea))
				}
			}
		})
		return out
	}
	dotCSRMul(w.PK, x, w.Row, w.GroupsPerRow(), out.Row)
	return out
}

// TransposeMulLeftPacked computes ⟦Xᵀ·G⟧ from plaintext X and packed
// encrypted G — the gradient shape ∇W = Xᵀ⟦∇Z⟧ with packed ∇Z.
func TransposeMulLeftPacked(x *tensor.Dense, g *PackedMatrix) *PackedMatrix {
	out := NewPackedMatrix(g.PK, x.Cols, g.Cols, g.Block, g.Scale+1)
	TransposeMulLeftPackedAcc(out, x, g)
	return out
}

// TransposeMulLeftPackedAcc accumulates ⟦Xᵀ·G⟧ into acc for a row-chunk pair
// (x, g): the packed analogue of TransposeMulLeftAcc, called once per
// received packed derivative chunk on the streamed backward path.
func TransposeMulLeftPackedAcc(acc *PackedMatrix, x *tensor.Dense, g *PackedMatrix) {
	if x.Rows != g.Rows {
		panic(fmt.Sprintf("hetensor: TransposeMulLeftPacked outer dim mismatch %d×%d ᵀ· %d×%d", x.Rows, x.Cols, g.Rows, g.Cols))
	}
	if acc.Rows != x.Cols || acc.Cols != g.Cols || acc.Scale != g.Scale+1 || acc.Block != g.Block {
		panic(fmt.Sprintf("hetensor: TransposeMulLeftPackedAcc accumulator %d×%d/%d@%d, want %d×%d/%d@%d",
			acc.Rows, acc.Cols, acc.Block, acc.Scale, x.Cols, g.Cols, g.Block, g.Scale+1))
	}
	if TextbookExp() {
		parallel.For(x.Cols, func(k int) {
			orow := acc.Row(k)
			for i := 0; i < x.Rows; i++ {
				a := x.At(i, k)
				if a == 0 {
					continue
				}
				ea := Codec.Encode(a, 1)
				grow := g.Row(i)
				for j := range orow {
					orow[j] = g.PK.AddCipher(orow[j], g.PK.MulPlain(grow[j], ea))
				}
			}
		})
		return
	}
	exps, maxBits := denseColExps(x)
	dotProducts(g.PK, tableSource{g.id, orientCol}, func(i, t int) *paillier.Ciphertext { return g.Row(i)[t] },
		x.Rows, g.GroupsPerRow(), exps, maxBits,
		func(k, t int, c *paillier.Ciphertext) {
			orow := acc.Row(k)
			orow[t] = g.PK.AddCipher(orow[t], c)
		})
}

// TransposeMulLeftCSRPacked computes ⟦Xᵀ·G⟧ for sparse X and packed G.
func TransposeMulLeftCSRPacked(x *tensor.CSR, g *PackedMatrix) *PackedMatrix {
	if x.Rows != g.Rows {
		panic(fmt.Sprintf("hetensor: TransposeMulLeftCSRPacked outer dim mismatch %d×%d ᵀ· %d×%d", x.Rows, x.Cols, g.Rows, g.Cols))
	}
	out := NewPackedMatrix(g.PK, x.Cols, g.Cols, g.Block, g.Scale+1)
	TransposeMulLeftCSRPackedAcc(out, x, 0, g)
	return out
}

// TransposeMulLeftCSRPackedAcc accumulates ⟦X[lo:lo+g.Rows]ᵀ·G⟧ into acc for
// a packed derivative row-chunk G: the sparse packed accumulator.
func TransposeMulLeftCSRPackedAcc(acc *PackedMatrix, x *tensor.CSR, lo int, g *PackedMatrix) {
	if lo < 0 || lo+g.Rows > x.Rows {
		panic(fmt.Sprintf("hetensor: TransposeMulLeftCSRPackedAcc chunk [%d,%d) of %d rows", lo, lo+g.Rows, x.Rows))
	}
	if acc.Rows != x.Cols || acc.Cols != g.Cols || acc.Scale != g.Scale+1 || acc.Block != g.Block {
		panic(fmt.Sprintf("hetensor: TransposeMulLeftCSRPackedAcc accumulator %d×%d/%d@%d, want %d×%d/%d@%d",
			acc.Rows, acc.Cols, acc.Block, acc.Scale, x.Cols, g.Cols, g.Block, g.Scale+1))
	}
	if TextbookExp() {
		type nz struct {
			row int
			val float64
		}
		buckets := make([][]nz, x.Cols)
		for i := 0; i < g.Rows; i++ {
			cols, vals := x.RowNNZ(lo + i)
			for t, k := range cols {
				buckets[k] = append(buckets[k], nz{i, vals[t]})
			}
		}
		parallel.For(x.Cols, func(k int) {
			orow := acc.Row(k)
			for _, e := range buckets[k] {
				ea := Codec.Encode(e.val, 1)
				grow := g.Row(e.row)
				for j := range orow {
					orow[j] = g.PK.AddCipher(orow[j], g.PK.MulPlain(grow[j], ea))
				}
			}
		})
		return
	}
	dotCSRTransposeAcc(g.PK, x, lo, g.Rows, g.Row, g.GroupsPerRow(), acc.Row)
}

// LookupPacked gathers rows of a packed encrypted embedding table. The
// result is batch×(fields·dim) with Block = dim, so the per-field lane
// alignment of the table is preserved.
func LookupPacked(q *PackedMatrix, x *tensor.IntMatrix) *PackedMatrix {
	if q.Block != q.Cols {
		panic("hetensor: LookupPacked table must be packed with Block == Cols")
	}
	dim := q.Cols
	gpr := q.GroupsPerRow()
	out := &PackedMatrix{Rows: x.Rows, Cols: x.Cols * dim, Block: dim, Scale: q.Scale, W: q.W, K: q.K, PK: q.PK,
		C: make([]*paillier.Ciphertext, x.Rows*x.Cols*gpr)}
	parallel.For(x.Rows, func(i int) {
		dst := out.Row(i)
		for f, idx := range x.Row(i) {
			if idx < 0 || idx >= q.Rows {
				panic(fmt.Sprintf("hetensor: LookupPacked index %d out of vocab %d", idx, q.Rows))
			}
			copy(dst[f*gpr:(f+1)*gpr], q.Row(idx))
		}
	})
	return out
}

// LookupBackwardPacked scatter-adds packed encrypted derivatives into a
// packed table gradient: the packed analogue of LookupBackward. The embed
// layer's backward pass does not use it yet — its ∇E input is assembled from
// an unpacked MulPlainRightTranspose term — so today it completes the
// PackedMatrix op set for the eventual packed embed gradient path.
func LookupBackwardPacked(gradE *PackedMatrix, x *tensor.IntMatrix, vocab, dim int) *PackedMatrix {
	if gradE.Rows != x.Rows || gradE.Cols != x.Cols*dim || gradE.Block != dim {
		panic("hetensor: LookupBackwardPacked shape mismatch")
	}
	out := NewPackedMatrix(gradE.PK, vocab, dim, dim, gradE.Scale)
	gpb := out.GroupsPerRow()
	// Serial scatter: rows of the output may collide across instances.
	for i := 0; i < x.Rows; i++ {
		src := gradE.Row(i)
		for f, idx := range x.Row(i) {
			dst := out.Row(idx)
			for k := 0; k < gpb; k++ {
				dst[k] = gradE.PK.AddCipher(dst[k], src[f*gpb+k])
			}
		}
	}
	return out
}
