package hetensor

import (
	"fmt"

	"blindfl/internal/paillier"
	"blindfl/internal/parallel"
	"blindfl/internal/tensor"
)

// TransposeMulLeftCSRSubset computes the touched rows of ⟦Xᵀ·G⟧ for sparse
// X: given the sorted set of column indices `touched` (which must cover every
// non-zero column of X), it returns a len(touched)×G.Cols cipher matrix
// whose i-th row is row touched[i] of the full gradient ⟦Xᵀ·G⟧. This keeps
// the homomorphic backward pass proportional to the batch's active
// coordinates instead of the full (possibly multi-million-dimensional)
// feature space.
func TransposeMulLeftCSRSubset(x *tensor.CSR, g *CipherMatrix, touched []int) *CipherMatrix {
	if x.Rows != g.Rows {
		panic(fmt.Sprintf("hetensor: TransposeMulLeftCSRSubset outer dim mismatch %d vs %d", x.Rows, g.Rows))
	}
	pos := make(map[int]int, len(touched))
	for i, k := range touched {
		pos[k] = i
	}
	type nz struct {
		row int
		val float64
	}
	buckets := make([][]nz, len(touched))
	for i := 0; i < x.Rows; i++ {
		cols, vals := x.RowNNZ(i)
		for t, k := range cols {
			j, ok := pos[k]
			if !ok {
				panic(fmt.Sprintf("hetensor: column %d not in touched set", k))
			}
			buckets[j] = append(buckets[j], nz{i, vals[t]})
		}
	}
	out := NewCipherMatrix(g.PK, len(touched), g.Cols, g.Scale+1)
	parallel.For(len(touched), func(j int) {
		orow := out.Row(j)
		for _, e := range buckets[j] {
			ea := Codec.Encode(e.val, 1)
			grow := g.Row(e.row)
			for t := range orow {
				orow[t] = g.PK.AddCipher(orow[t], g.PK.MulPlain(grow[t], ea))
			}
		}
	})
	return out
}

// EncryptRows encrypts the given rows of a plaintext matrix as a
// len(rows)×d.Cols cipher matrix (row i of the result is row rows[i] of d).
func EncryptRows(pk *paillier.PublicKey, d *tensor.Dense, rows []int, scale uint) *CipherMatrix {
	out := &CipherMatrix{Rows: len(rows), Cols: d.Cols, Scale: scale, PK: pk, C: make([]*paillier.Ciphertext, len(rows)*d.Cols)}
	parallel.For(len(rows), func(i int) {
		src := d.Row(rows[i])
		dst := out.Row(i)
		for j, v := range src {
			m := Codec.EncodeRing(v, scale, pk.N)
			c, err := pk.Encrypt(paillier.Rand, m)
			if err != nil {
				panic(fmt.Sprintf("hetensor: EncryptRows: %v", err))
			}
			dst[j] = c
		}
	})
	return out
}
