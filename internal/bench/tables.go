package bench

import (
	"fmt"
	"math/rand"
	"time"

	"blindfl/internal/data"
	"blindfl/internal/model"
	"blindfl/internal/nn"
	"blindfl/internal/protocol"
	"blindfl/internal/secureml"
	"blindfl/internal/tensor"
)

// table5Rows lists the dataset/model pairs of the paper's Table 5 with the
// source-layer output width implied by the model.
var table5Rows = []struct {
	Dataset string
	Model   string
	Out     int
}{
	{"a9a", "LR", 1},
	{"w8a", "LR", 1},
	{"connect-4", "MLP", 16},
	{"higgs", "LR", 1},
	{"news20", "MLR", 20},
	{"avazu-app", "LR", 1},
	{"industry", "LR", 1},
}

// Table5 regenerates the per-minibatch training-time comparison of BlindFL
// vs SecureML vs client-aided SecureML. Quick mode uses batch 32, one timed
// iteration, and skips the two largest specs' dense baselines when they
// would exceed the time budget.
func Table5(quick bool) *Table {
	batch, iters := 128, 3
	if quick {
		batch, iters = 32, 1
	}
	t := &Table{
		Title:  "Table 5: training time per mini-batch (seconds, matmul only)",
		Header: []string{"dataset", "sparsity", "model", "BlindFL", "SecureML", "SecureML(client-aided)"},
	}
	const heCap = 512 // HE triple generation measured up to this many dims
	for _, row := range table5Rows {
		spec := data.MustSpec(row.Dataset)
		bf := TimeBlindFLBatch(spec, batch, row.Out, iters)

		heSec, heExtrap, heCell := 0.0, false, ""
		heSec, heExtrap = TimeSecureMLBatch(spec, batch, row.Out, 1, secureml.HEGenerated, heCap)
		heCell = fmt.Sprintf("%.3f", heSec)
		if heExtrap {
			heCell = fmt.Sprintf(">%.0f (extrapolated)", heSec)
		}

		caCell := ""
		if quick && spec.Feats > 300000 {
			// One full dense pass over 10⁶ dims is seconds; estimate from a
			// tenth of the dimensionality in quick mode.
			sub := spec
			sub.Feats = spec.Feats / 10
			s, _ := TimeSecureMLBatch(sub, batch, row.Out, 1, secureml.ClientAided, 0)
			caCell = fmt.Sprintf("≈%.3f (×10 scaled)", s*10)
		} else {
			s, _ := TimeSecureMLBatch(spec, batch, row.Out, iters, secureml.ClientAided, 0)
			caCell = fmt.Sprintf("%.3f", s)
		}

		t.Add(row.Dataset, fmt.Sprintf("%.2f%%", spec.Sparsity()*100), row.Model,
			fmt.Sprintf("%.3f", bf), heCell, caCell)
	}
	t.Note("paper shape: BlindFL beats SecureML everywhere (>50× when sparse); client-aided wins on small/dense, loses on ultra-sparse high-dimensional specs")
	t.Note("HE-generated triples above %d dims are measured on a slice and extrapolated linearly (the paper reports >1800s / OOM there)", heCap)
	return t
}

// Table6 is the fmnist dense-MLP timing of Appendix D.1.
func Table6(quick bool) *Table {
	batch, iters := 128, 1
	hidden := 16
	if quick {
		batch, hidden = 32, 8
	}
	spec := data.MustSpec("fmnist")
	t := &Table{
		Title:  "Table 6: fmnist MLP training time per mini-batch (seconds, matmul only)",
		Header: []string{"dataset", "model", "BlindFL", "SecureML", "SecureML(client-aided)"},
	}
	bf := TimeBlindFLBatch(spec, batch, hidden, iters)
	he, extrap := TimeSecureMLBatch(spec, batch, hidden, 1, secureml.HEGenerated, 512)
	heCell := fmt.Sprintf("%.3f", he)
	if extrap {
		heCell = fmt.Sprintf(">%.0f (extrapolated)", he)
	}
	ca, _ := TimeSecureMLBatch(spec, batch, hidden, iters, secureml.ClientAided, 0)
	t.Add("fmnist", "MLP", fmt.Sprintf("%.3f", bf), heCell, fmt.Sprintf("%.3f", ca))
	t.Note("paper shape: BlindFL ≈ 2× faster than SecureML; client-aided fastest on this small dense input")
	return t
}

// Table7 sweeps the source layer's output dimensionality on the connect-4
// spec (3-layer MLP): time grows ≈ proportionally, accuracy creeps up.
func Table7(quick bool) *Table {
	dims := []int{32, 64, 128, 256}
	if quick {
		dims = []int{8, 16, 32}
	}
	spec := data.MustSpec("connect-4")
	batch := 128
	if quick {
		batch = 32
	}
	t := &Table{
		Title:  "Table 7: scalability vs source-layer output dim (connect-4, 3-layer MLP)",
		Header: []string{"hidden dim", "time/batch (s)", "relative", "val accuracy"},
	}
	var base float64
	for i, dim := range dims {
		sec := TimeBlindFLBatch(spec, batch, dim, 1)
		if i == 0 {
			base = sec
		}
		acc := table7Accuracy(spec, dim, quick)
		t.Add(fmt.Sprintf("%d", dim), fmt.Sprintf("%.3f", sec),
			fmt.Sprintf("%.2f×", sec/base), fmt.Sprintf("%.1f%%", acc*100))
	}
	t.Note("paper shape: time ∝ output dim (1×, ~2×, ~4×, ~8×); accuracy increases slightly with width")
	return t
}

// table7Accuracy trains the plaintext mirror briefly — the validation
// accuracy column measures model capacity, not the protocol, so the
// collocated equivalent (provably equal by the lossless property) stands in
// for multi-hour federated training.
func table7Accuracy(spec data.Spec, hidden int, quick bool) float64 {
	spec.Train, spec.Test = 1500, 500
	ds := data.Generate(spec, 21)
	h := model.DefaultHyper()
	h.Hidden = []int{hidden, 16}
	h.Epochs = 8
	if quick {
		h.Epochs = 3
	}
	return model.TrainCollocated(model.MLP, ds, h).TestMetric
}

// Table8 sweeps the number of MLP layers at fixed source width: the time is
// dominated by the source layer, so depth barely matters.
func Table8(quick bool) *Table {
	layerCounts := []int{3, 4, 5, 6}
	spec := data.MustSpec("connect-4")
	batch, out := 128, 64
	if quick {
		batch, out = 32, 16
	}
	t := &Table{
		Title:  "Table 8: scalability vs number of MLP layers (connect-4)",
		Header: []string{"#layers", "time/batch (s)", "relative", "val accuracy"},
	}
	var base float64
	for i, layers := range layerCounts {
		// The federated cost is the source layer plus a plaintext top; the
		// top model's extra 32-unit layers are plaintext matmuls.
		srcSec := TimeBlindFLBatch(spec, batch, out, 1)
		topSec := timePlainTop(batch, out, layers, quick)
		sec := srcSec + topSec
		if i == 0 {
			base = sec
		}
		acc := table8Accuracy(spec, out, layers, quick)
		t.Add(fmt.Sprintf("%d", layers), fmt.Sprintf("%.3f", sec),
			fmt.Sprintf("%.2f×", sec/base), fmt.Sprintf("%.1f%%", acc*100))
	}
	t.Note("paper shape: depth changes time by ≤2%% — the federated source layer dominates")
	return t
}

// timePlainTop measures the plaintext top model's cost for a given depth:
// layers-1 hidden transitions ending in 3 classes (connect-4).
func timePlainTop(batch, in, layers int, quick bool) float64 {
	rng := rand.New(rand.NewSource(31))
	var mods []nn.Module
	prev := in
	widths := topWidths(in, layers)
	for _, w := range widths {
		mods = append(mods, nn.NewLinear(rng, prev, w), &nn.ReLU{})
		prev = w
	}
	mods = append(mods, nn.NewLinear(rng, prev, 3))
	seq := nn.NewSequential(mods...)
	x := tensor.RandDense(rng, batch, in, 1)
	g := tensor.RandDense(rng, batch, 3, 0.1)
	iters := 20
	start := time.Now()
	for i := 0; i < iters; i++ {
		seq.Forward(x)
		seq.Backward(g)
	}
	return time.Since(start).Seconds() / float64(iters)
}

// topWidths follows the paper's setup: first width 64 (the source output),
// last-but-one 16, 32-unit layers inserted in the middle.
func topWidths(in, layers int) []int {
	// layers counts all linear layers including the source layer and the
	// final classifier; the top model holds layers−2 hidden transitions
	// before the classifier.
	n := layers - 2
	var out []int
	for i := 0; i < n-1; i++ {
		out = append(out, 32)
	}
	if n >= 1 {
		out = append(out, 16)
	}
	return out
}

func table8Accuracy(spec data.Spec, first, layers int, quick bool) float64 {
	spec.Train, spec.Test = 1500, 500
	ds := data.Generate(spec, 22)
	h := model.DefaultHyper()
	h.Hidden = append([]int{first}, topWidths(first, layers)...)
	h.Epochs = 8
	if quick {
		h.Epochs = 3
	}
	return model.TrainCollocated(model.MLP, ds, h).TestMetric
}

// quickPipe builds a fresh in-process protocol session.
func quickPipe(seed int64) (*protocol.Peer, *protocol.Peer) {
	skA, skB := protocol.TestKeys()
	pa, pb, err := protocol.Pipe(skA, skB, seed)
	if err != nil {
		panic(err)
	}
	return pa, pb
}
