package bench

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"math/big"
	mrand "math/rand"
	"os"
	"runtime"
	"testing"

	"blindfl/internal/data"
	"blindfl/internal/hetensor"
	"blindfl/internal/paillier"
	"blindfl/internal/tensor"
)

// Perf benchmarks as data: the exponentiation-engine suite run through
// testing.Benchmark and serialized to JSON (`make bench-json`), seeding the
// repo's performance trajectory. Each record pairs an op with the config
// under which it ran, so before/after pairs ("textbook" vs "engine") live
// side by side in one file. The format is documented in README.md.

// PerfResult is one benchmark measurement.
type PerfResult struct {
	Op      string  `json:"op"`      // what was measured (e.g. "mulplainleft_dense")
	Config  string  `json:"config"`  // variant (e.g. "textbook", "engine", "shortexp")
	KeyBits int     `json:"keybits"` // Paillier modulus size
	NsPerOp float64 `json:"ns_per_op"`
	Iters   int     `json:"iterations"` // b.N chosen by the harness
}

// PerfFile is the top-level BENCH_PR3.json document.
type PerfFile struct {
	Generator  string       `json:"generator"` // "blindfl-bench -perf"
	GoMaxProcs int          `json:"gomaxprocs"`
	Results    []PerfResult `json:"results"`
}

func perfRun(op, config string, keyBits int, fn func(b *testing.B)) PerfResult {
	r := testing.Benchmark(fn)
	return PerfResult{Op: op, Config: config, KeyBits: keyBits,
		NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N), Iters: r.N}
}

// mixedMat draws a matrix with mixed-sign entries — about half the scalars
// exercise the negative-exponent path, matching training reality.
func mixedMat(rng *mrand.Rand, rows, cols int) *tensor.Dense {
	d := tensor.NewDense(rows, cols)
	for i := range d.Data {
		d.Data[i] = rng.Float64()*4 - 2
	}
	return d
}

// RunPerfKernels benchmarks the paillier/hetensor exponentiation kernels at
// the given key size, engine vs textbook: signed scalar multiplication,
// the Straus dot kernel, short-exponent vs full-width blinding, and the
// dense plaintext·ciphertext matmul layer.
func RunPerfKernels(keyBits int) ([]PerfResult, error) {
	sk, err := paillier.GenerateKey(rand.Reader, keyBits)
	if err != nil {
		return nil, err
	}
	pk := &sk.PublicKey
	rng := mrand.New(mrand.NewSource(5))
	var out []PerfResult

	// Scalar multiplication by a negative ~45-bit fixed-point scalar: the
	// textbook path exponentiates by the full-width ring image N−|k|.
	c, err := pk.Encrypt(rand.Reader, big.NewInt(987654321))
	if err != nil {
		return nil, err
	}
	neg := big.NewInt(-(1 << 44))
	mag := new(big.Int).Abs(neg)
	out = append(out,
		perfRun("mulplain_neg_scalar", "textbook", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pk.MulPlain(c, neg)
			}
		}),
		perfRun("mulplain_neg_scalar", "signed", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pk.MulPlainSigned(c, mag, true)
			}
		}))

	// Encrypted dot product of length 16 with mixed-sign ~45-bit exponents:
	// per-term MulPlain+AddCipher vs the Straus interleaved kernel.
	n := 16
	cs := make([]*paillier.Ciphertext, n)
	ks := make([]*big.Int, n)
	es := make([]paillier.SignedExp, n)
	for i := range cs {
		if cs[i], err = pk.Encrypt(rand.Reader, big.NewInt(int64(rng.Intn(1<<30)))); err != nil {
			return nil, err
		}
		k := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 45))
		if rng.Intn(2) == 0 {
			k.Neg(k)
		}
		ks[i] = k
		es[i] = paillier.SignedExp{Mag: new(big.Int).Abs(k), Neg: k.Sign() < 0}
	}
	out = append(out,
		perfRun("dot16", "textbook", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				acc := &paillier.Ciphertext{C: big.NewInt(1)}
				for j := range cs {
					acc = pk.AddCipher(acc, pk.MulPlain(cs[j], ks[j]))
				}
			}
		}),
		perfRun("dot16", "straus", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pk.DotRow(cs, es)
			}
		}))

	// Blinding cost per encryption: inline full-width r^N vs the DJN
	// short-exponent (hⁿ)^α path (drained pool, so Enc blinds inline).
	shortPool := paillier.NewPool(pk, 1, 1, rand.Reader, paillier.WithShortExp(0))
	shortPool.Close()
	m := big.NewInt(424242)
	out = append(out,
		perfRun("encrypt_blinding", "fullwidth", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pk.Encrypt(rand.Reader, m); err != nil {
					b.Fatal(err)
				}
			}
		}),
		perfRun("encrypt_blinding", "shortexp", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := shortPool.Enc(m); err != nil {
					b.Fatal(err)
				}
			}
		}))

	// Dense MatMul layer kernel (the fed-forward shape X·⟦W⟧), textbook vs
	// engine. Sized down so a textbook iteration stays ~seconds at 2048 bits.
	x := mixedMat(rng, 8, 16)
	w := mixedMat(rng, 16, 2)
	encW := hetensor.Encrypt(pk, w, 1)
	for _, cfg := range []struct {
		name     string
		textbook bool
	}{{"textbook", true}, {"engine", false}} {
		prev := hetensor.SetTextbook(cfg.textbook)
		out = append(out, perfRun("mulplainleft_dense_8x16x2", cfg.name, keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hetensor.MulPlainLeft(x, encW)
			}
		}))
		hetensor.SetTextbook(prev)
	}
	return out, nil
}

// RunPerfFedStep benchmarks the packed federated MatMul step (both parties
// in-process, protocol.TestKeys at 512 bits) with the exponentiation engine
// on and off: the end-to-end acceptance pair.
func RunPerfFedStep() []PerfResult {
	var out []PerfResult
	spec := data.Spec{Name: "bench-dense", Feats: 32, AvgNNZ: 32, Classes: 2, Train: 256, Test: 64}
	for _, cfg := range []struct {
		name     string
		textbook bool
	}{{"textbook", true}, {"engine", false}} {
		step := NewBlindFLStepperOpts(spec, 32, 4, StepperOpts{Packed: true, Textbook: cfg.textbook})
		step() // warm-up outside the measurement
		out = append(out, perfRun("fedstep_packed", cfg.name, 512, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				step()
			}
		}))
	}
	return out
}

// WritePerfJSON writes results as an indented PerfFile document.
func WritePerfJSON(path string, results []PerfResult) error {
	doc := PerfFile{Generator: "blindfl-bench -perf", GoMaxProcs: runtime.GOMAXPROCS(0), Results: results}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}
