package bench

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"math/big"
	mrand "math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"blindfl/internal/core"
	"blindfl/internal/data"
	"blindfl/internal/engine"
	"blindfl/internal/hetensor"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// Perf benchmarks as data: the exponentiation-engine suite run through
// testing.Benchmark and serialized to JSON (`make bench-json`), seeding the
// repo's performance trajectory. Each record pairs an op with the config
// under which it ran, so before/after pairs ("textbook" vs "engine") live
// side by side in one file. The format is documented in README.md.

// PerfResult is one benchmark measurement.
type PerfResult struct {
	Op      string  `json:"op"`      // what was measured (e.g. "mulplainleft_dense")
	Config  string  `json:"config"`  // variant (e.g. "textbook", "engine", "shortexp")
	KeyBits int     `json:"keybits"` // Paillier modulus size
	NsPerOp float64 `json:"ns_per_op"`
	Iters   int     `json:"iterations"` // b.N chosen by the harness

	// Ratio is this row's ns_per_op over its op's baseline row (same op and
	// keybits, config = perfBaselines[op]); 1.0 on the baseline row itself,
	// 0 when the op has no baseline in the file. Ratios are the unit the
	// trajectory is judged in: absolute ns on a noisy shared host swung
	// identical ops 2× between runs, while the engine-vs-textbook ratio of
	// the same pair is a property of the code, not the machine.
	Ratio float64 `json:"ratio,omitempty"`
}

// PerfFile is the top-level BENCH json document.
type PerfFile struct {
	Generator  string `json:"generator"` // "blindfl-bench -perf"
	GoMaxProcs int    `json:"gomaxprocs"`

	// CalibrationNs is the fixed calibration op's ns_per_op (the
	// calibration_modexp row): one 2048-bit modular exponentiation over
	// constant operands, the same arithmetic on every machine and every
	// run. Dividing any absolute column by it normalizes host speed out of
	// cross-PR comparisons; comparing two files' calibration rows bounds
	// how much of an absolute delta is machine, not code.
	CalibrationNs float64 `json:"calibration_ns,omitempty"`

	Results []PerfResult `json:"results"`
}

// perfBaselines names the baseline config of each op — the denominator of
// the Ratio column. Ops absent here (latency percentiles, the calibration
// row) publish absolute numbers only.
var perfBaselines = map[string]string{
	"mulplain_neg_scalar":       "textbook",
	"dot16":                     "textbook",
	"encrypt_blinding":          "fullwidth",
	"mulplainleft_dense_8x16x2": "textbook",
	"blinding_refill_shortexp":  "bigint_exp",
	"mulplain_fullwidth":        "public",
	"pool_lookup":               "string_key",
	"fedepoch_forward":          "uncached",
	"fedstep_packed":            "textbook",
	"fedstep_multiparty":        "k1",
	"fedstep_sharded":           "shards1",
	"serve_throughput":          "sequential",
}

// FillRatios annotates results in place: every row whose op has a baseline
// config present in the slice (same op, same keybits) gets Ratio =
// ns_per_op / baseline ns_per_op.
func FillRatios(results []PerfResult) {
	base := make(map[string]float64)
	for _, r := range results {
		if perfBaselines[r.Op] == r.Config {
			base[fmt.Sprintf("%s/%d", r.Op, r.KeyBits)] = r.NsPerOp
		}
	}
	for i := range results {
		if b := base[fmt.Sprintf("%s/%d", results[i].Op, results[i].KeyBits)]; b > 0 {
			results[i].Ratio = results[i].NsPerOp / b
		}
	}
}

// RunPerfCalibration measures the fixed calibration op: one modular
// exponentiation with constant 2048-bit operands built from repeating byte
// patterns — no randomness, no key material, identical work everywhere.
func RunPerfCalibration() PerfResult {
	pattern := func(b byte) *big.Int {
		buf := make([]byte, 256) // 2048 bits
		for i := range buf {
			buf[i] = b
		}
		return new(big.Int).SetBytes(buf)
	}
	base := pattern(0xA5)
	exp := pattern(0x5A)
	mod := pattern(0xC3)
	mod.SetBit(mod, 0, 1) // odd modulus, the Montgomery fast path
	return perfRun("calibration_modexp", "fixed", 2048, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			new(big.Int).Exp(base, exp, mod)
		}
	})
}

func perfRun(op, config string, keyBits int, fn func(b *testing.B)) PerfResult {
	r := testing.Benchmark(fn)
	return PerfResult{Op: op, Config: config, KeyBits: keyBits,
		NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N), Iters: r.N}
}

// mixedMat draws a matrix with mixed-sign entries — about half the scalars
// exercise the negative-exponent path, matching training reality.
func mixedMat(rng *mrand.Rand, rows, cols int) *tensor.Dense {
	d := tensor.NewDense(rows, cols)
	for i := range d.Data {
		d.Data[i] = rng.Float64()*4 - 2
	}
	return d
}

// RunPerfKernels benchmarks the paillier/hetensor exponentiation kernels at
// the given key size, engine vs textbook: signed scalar multiplication,
// the Straus dot kernel, short-exponent vs full-width blinding, and the
// dense plaintext·ciphertext matmul layer.
func RunPerfKernels(keyBits int) ([]PerfResult, error) {
	sk, err := paillier.GenerateKey(rand.Reader, keyBits)
	if err != nil {
		return nil, err
	}
	pk := &sk.PublicKey
	rng := mrand.New(mrand.NewSource(5))
	var out []PerfResult

	// Scalar multiplication by a negative ~45-bit fixed-point scalar: the
	// textbook path exponentiates by the full-width ring image N−|k|.
	c, err := pk.Encrypt(rand.Reader, big.NewInt(987654321))
	if err != nil {
		return nil, err
	}
	neg := big.NewInt(-(1 << 44))
	mag := new(big.Int).Abs(neg)
	out = append(out,
		perfRun("mulplain_neg_scalar", "textbook", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pk.MulPlain(c, neg)
			}
		}),
		perfRun("mulplain_neg_scalar", "signed", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pk.MulPlainSigned(c, mag, true)
			}
		}))

	// Encrypted dot product of length 16 with mixed-sign ~45-bit exponents:
	// per-term MulPlain+AddCipher vs the Straus interleaved kernel.
	n := 16
	cs := make([]*paillier.Ciphertext, n)
	ks := make([]*big.Int, n)
	es := make([]paillier.SignedExp, n)
	for i := range cs {
		if cs[i], err = pk.Encrypt(rand.Reader, big.NewInt(int64(rng.Intn(1<<30)))); err != nil {
			return nil, err
		}
		k := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 45))
		if rng.Intn(2) == 0 {
			k.Neg(k)
		}
		ks[i] = k
		es[i] = paillier.SignedExp{Mag: new(big.Int).Abs(k), Neg: k.Sign() < 0}
	}
	out = append(out,
		perfRun("dot16", "textbook", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				acc := &paillier.Ciphertext{C: big.NewInt(1)}
				for j := range cs {
					acc = pk.AddCipher(acc, pk.MulPlain(cs[j], ks[j]))
				}
			}
		}),
		perfRun("dot16", "straus", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pk.DotRow(cs, es)
			}
		}))

	// Blinding cost per encryption: inline full-width r^N vs the DJN
	// short-exponent (hⁿ)^α path (drained pool, so Enc blinds inline).
	shortPool := paillier.NewPool(pk, 1, 1, rand.Reader, paillier.WithShortExp(0))
	shortPool.Close()
	m := big.NewInt(424242)
	out = append(out,
		perfRun("encrypt_blinding", "fullwidth", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pk.Encrypt(rand.Reader, m); err != nil {
					b.Fatal(err)
				}
			}
		}),
		perfRun("encrypt_blinding", "shortexp", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := shortPool.Enc(m); err != nil {
					b.Fatal(err)
				}
			}
		}))

	// Dense MatMul layer kernel (the fed-forward shape X·⟦W⟧), textbook vs
	// engine. Sized down so a textbook iteration stays ~seconds at 2048 bits.
	x := mixedMat(rng, 8, 16)
	w := mixedMat(rng, 16, 2)
	encW := hetensor.Encrypt(pk, w, 1)
	for _, cfg := range []struct {
		name     string
		textbook bool
	}{{"textbook", true}, {"engine", false}} {
		prev := hetensor.SetTextbook(cfg.textbook)
		out = append(out, perfRun("mulplainleft_dense_8x16x2", cfg.name, keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hetensor.MulPlainLeft(x, encW)
			}
		}))
		hetensor.SetTextbook(prev)
	}
	return out, nil
}

// RunPerfAmortized benchmarks the PR 4 amortized-precompute kernels at the
// given key size: fixed-base comb vs big.Int.Exp short-exponent blinding
// refills, secret-key CRT MulPlain vs the public path, the Straus dot kernel
// in CRT dual-chain mode, and the pool-registry lookup before/after the
// fingerprint keying fix.
func RunPerfAmortized(keyBits int) ([]PerfResult, error) {
	sk, err := paillier.GenerateKey(rand.Reader, keyBits)
	if err != nil {
		return nil, err
	}
	pk := &sk.PublicKey
	rng := mrand.New(mrand.NewSource(9))
	var out []PerfResult

	// Short-exponent blinding refill: the PR 3 big.Int.Exp path vs the
	// fixed-base comb tables. Closed pools, so Enc refills inline — the
	// measured op is one (hⁿ)^α plus two multiplications.
	m := big.NewInt(424242)
	plainPool := paillier.NewPool(pk, 1, 1, rand.Reader,
		paillier.WithShortExp(0), paillier.WithFixedBase(false, 0))
	plainPool.Close()
	combPool := paillier.NewPool(pk, 1, 1, rand.Reader, paillier.WithShortExp(0))
	combPool.Close()
	out = append(out,
		perfRun("blinding_refill_shortexp", "bigint_exp", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plainPool.Enc(m); err != nil {
					b.Fatal(err)
				}
			}
		}),
		perfRun("blinding_refill_shortexp", "fixedbase", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := combPool.Enc(m); err != nil {
					b.Fatal(err)
				}
			}
		}))

	// Scalar multiplication by a general full-width scalar (a ring-encoded
	// value): public 2048-bit exponentiation vs the SecretOps route whose
	// exponents collapse to the CRT decryption orders p−1, q−1.
	c, err := pk.Encrypt(rand.Reader, big.NewInt(987654321))
	if err != nil {
		return nil, err
	}
	k, err := rand.Int(rand.Reader, pk.N)
	if err != nil {
		return nil, err
	}
	so := sk.Ops()
	out = append(out,
		perfRun("mulplain_fullwidth", "public", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pk.MulPlain(c, k)
			}
		}),
		perfRun("mulplain_fullwidth", "secretops", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				so.MulPlain(c, k)
			}
		}))

	// The Straus dot kernel with the key registered: tables mod p²/q², two
	// half-width chains. Pair this row with RunPerfKernels' dot16 rows.
	n := 16
	cs := make([]*paillier.Ciphertext, n)
	es := make([]paillier.SignedExp, n)
	for i := range cs {
		if cs[i], err = pk.Encrypt(rand.Reader, big.NewInt(int64(rng.Intn(1<<30)))); err != nil {
			return nil, err
		}
		kk := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 45))
		es[i] = paillier.SignedExp{Mag: kk, Neg: rng.Intn(2) == 0}
	}
	paillier.RegisterSecretOps(sk)
	out = append(out, perfRun("dot16", "straus_crt", keyBits, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pk.DotRow(cs, es)
		}
	}))
	paillier.UnregisterSecretOps(pk)

	// Pool-registry lookup: the previous decimal-string keying (an O(n²)
	// conversion of the modulus per lookup) vs the limb fingerprint.
	var oldStyle sync.Map
	oldStyle.Store(pk.N.String(), struct{}{})
	pool := paillier.NewPool(pk, 1, 1, rand.Reader)
	pool.Close()
	paillier.RegisterPool(pool)
	out = append(out,
		perfRun("pool_lookup", "string_key", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := oldStyle.Load(pk.N.String()); !ok {
					b.Fatal("lookup failed")
				}
			}
		}),
		perfRun("pool_lookup", "fingerprint", keyBits, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if paillier.PoolFor(pk) == nil {
					b.Fatal("lookup failed")
				}
			}
		}))
	paillier.UnregisterPool(pk)
	return out, nil
}

// RunPerfFedEpoch measures a forward-only (inference-flavoured) federated
// epoch of the packed dense MatMul layer — the regime where the encrypted
// weight copies stay fixed across batches, as they do during evaluation and
// serving — with the persistent dot-table cache off (every batch rebuilds
// its Straus tables) and on (tables built once in the warm-up epoch, every
// later batch reuses them at the cache's wider window). Both configurations
// run with short-exponent fixed-base pools so blinding cost does not mask
// the kernel difference. 512-bit test keys, both parties in-process.
func RunPerfFedEpoch() []PerfResult {
	const (
		batch = 4
		outW  = 2
		feats = 256
		steps = 8
		half  = feats / 2
	)
	skA, skB := protocol.TestKeys()
	for _, sk := range []*paillier.PrivateKey{skA, skB} {
		old := paillier.PoolFor(&sk.PublicKey)
		paillier.RegisterPool(paillier.NewPool(&sk.PublicKey, 32, 0, rand.Reader, paillier.WithShortExp(0)))
		if old != nil {
			old.Close()
		}
	}
	rng := mrand.New(mrand.NewSource(21))
	xA := make([]*tensor.Dense, steps)
	xB := make([]*tensor.Dense, steps)
	for i := 0; i < steps; i++ {
		xA[i] = mixedMat(rng, batch, half)
		xB[i] = mixedMat(rng, batch, feats-half)
	}
	var results []PerfResult
	for _, cfg := range []struct {
		name    string
		cacheMB int
	}{{"uncached", 0}, {"warmcache", 256}} {
		pa, pb, err := protocol.Pipe(skA, skB, 7)
		if err != nil {
			panic(err)
		}
		lcfg := core.Config{Out: outW, LR: 0.05, Options: engine.Options{Packed: true, TableCacheMB: cfg.cacheMB}}
		var la *core.MatMulA
		var lb *core.MatMulB
		runStep := func(fa, fb func()) {
			if err := protocol.RunParties(pa, pb, fa, fb); err != nil {
				panic(err)
			}
		}
		runStep(
			func() { la = core.NewMatMulA(pa, lcfg, half, feats-half) },
			func() { lb = core.NewMatMulB(pb, lcfg, half, feats-half) },
		)
		epoch := func() {
			for i := 0; i < steps; i++ {
				runStep(
					func() { la.Forward(core.DenseFeatures{M: xA[i]}) },
					func() { lb.Forward(core.DenseFeatures{M: xB[i]}) },
				)
			}
		}
		hetensor.ResetTableCache()
		epoch() // warm-up: fills the cache in the warm configuration
		results = append(results, perfRun("fedepoch_forward", cfg.name, 512, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				epoch()
			}
		}))
	}
	hetensor.SetTableCacheBudget(0)
	return results
}

// RunPerfFedStep benchmarks the packed federated MatMul step (both parties
// in-process, protocol.TestKeys at 512 bits) with the exponentiation engine
// on and off — the end-to-end acceptance pair — plus a spotcheck config
// (engine + label-party decrypt spot-checks) whose ratio against the engine
// row is the run-integrity probe's cost, accepted under 1.05.
func RunPerfFedStep() []PerfResult {
	var out []PerfResult
	spec := data.Spec{Name: "bench-dense", Feats: 32, AvgNNZ: 32, Classes: 2, Train: 256, Test: 64}
	for _, cfg := range []struct {
		name      string
		textbook  bool
		spotcheck bool
	}{{"textbook", true, false}, {"engine", false, false}, {"spotcheck", false, true}} {
		step := NewBlindFLStepperOpts(spec, 32, 4, StepperOpts{Options: engine.Options{Packed: true, Textbook: cfg.textbook, SpotCheck: cfg.spotcheck}})
		step() // warm-up outside the measurement
		out = append(out, perfRun("fedstep_packed", cfg.name, 512, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				step()
			}
		}))
	}
	return out
}

// RunPerfFedStepMulti benchmarks one forward+backward mini-batch of the
// k-session dense MatMul group at k=3 against the degenerate k=1 group
// (identical total feature width, 512-bit test keys, all parties
// in-process): the pair isolates what k concurrent sessions cost over one —
// extra encrypted V_B/U_B piece traffic and per-session HE2SS conversions —
// with the group scheduling overlapping the sessions across cores.
func RunPerfFedStepMulti() []PerfResult {
	spec := data.Spec{Name: "bench-multi", Feats: 32, AvgNNZ: 32, Classes: 2, Train: 256, Test: 64}
	var out []PerfResult
	for _, k := range []int{1, 3} {
		step := NewBlindFLMultiStepper(spec, 32, 4, k, StepperOpts{Options: engine.Options{Packed: true}})
		step() // warm-up outside the measurement
		out = append(out, perfRun("fedstep_multiparty", fmt.Sprintf("k%d", k), 512, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				step()
			}
		}))
	}
	return out
}

// WritePerfJSON writes results as an indented PerfFile document, filling the
// Ratio column and hoisting the calibration row's ns_per_op into the header.
func WritePerfJSON(path string, results []PerfResult) error {
	FillRatios(results)
	doc := PerfFile{Generator: "blindfl-bench -perf", GoMaxProcs: runtime.GOMAXPROCS(0), Results: results}
	for _, r := range results {
		if r.Op == "calibration_modexp" {
			doc.CalibrationNs = r.NsPerOp
			break
		}
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}
