package bench

import (
	"testing"

	"blindfl/internal/engine"
)

// TestServeBatchingSpeedup is the acceptance check for cross-request lane
// batching: with concurrency 2K the batcher must serve at least 2× the
// sequential per-request throughput (the ideal is K×: a full lane group costs
// the same homomorphic work as one request), and the steady-state queries
// must run against warm dot-table cache entries.
func TestServeBatchingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("serve benchmark pair skipped in -short")
	}
	sp, err := RunServePerf(engine.Options{Packed: true}, 1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Speedup() < 2 {
		// One retry: this is a wall-clock measurement and a loaded machine
		// can stall the load generator mid-run. Two consecutive sub-2× runs
		// mean the batcher genuinely is not amortizing.
		t.Logf("speedup %.2fx below bar, retrying once", sp.Speedup())
		if sp, err = RunServePerf(engine.Options{Packed: true}, 1024, 64); err != nil {
			t.Fatal(err)
		}
	}
	if sp.Sequential.OK == 0 || sp.Batched.OK == 0 {
		t.Fatalf("load generator served nothing: sequential %+v batched %+v", sp.Sequential, sp.Batched)
	}
	if sp.Batched.P50 <= 0 || sp.Batched.P95 < sp.Batched.P50 || sp.Batched.P99 < sp.Batched.P95 {
		t.Fatalf("implausible percentiles p50=%v p95=%v p99=%v", sp.Batched.P50, sp.Batched.P95, sp.Batched.P99)
	}
	if s := sp.Speedup(); s < 2 {
		t.Fatalf("cross-request batching speedup %.2fx, want >= 2x (sequential %.1f req/s, batched %.1f req/s, lanes %d)",
			s, sp.Sequential.Throughput, sp.Batched.Throughput, sp.Lanes)
	}
	if sp.CacheHits == 0 {
		t.Fatalf("steady-state queries missed the dot-table cache (%d hits / %d misses)", sp.CacheHits, sp.Misses)
	}
}
