package bench

import (
	"fmt"
	"math/rand"
	"net"

	"blindfl/internal/core"
	"blindfl/internal/engine"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
	"blindfl/internal/transport"
)

// Traffic measures the wire footprint of one federated mini-batch over a
// real TCP loopback connection with gob framing: messages and bytes sent by
// Party A, for a dense and a sparse MatMul source layer. Communication
// volume is the second axis (besides computation) on which the sparse
// protocol wins.
func Traffic() *Table {
	t := &Table{
		Title:  "Traffic: Party A bytes per mini-batch (TCP loopback, gob)",
		Header: []string{"layer", "dims", "messages", "MiB", "chunks", "KiB/chunk", "recv ms/chunk"},
	}
	const batch, out = 16, 2

	// Dense 64-dim layer.
	{
		pa, pb, cleanup := tcpPeerPair(71)
		var la *core.MatMulA
		var lb *core.MatMulB
		cfg := core.Config{Out: out, LR: 0.1}
		if err := protocol.RunParties(pa, pb,
			func() { la = core.NewMatMulA(pa, cfg, 32, 32) },
			func() { lb = core.NewMatMulB(pb, cfg, 32, 32) },
		); err != nil {
			panic(err)
		}
		m0, b0 := pa.Conn.Stats()
		rng := rand.New(rand.NewSource(1))
		xA := tensor.RandDense(rng, batch, 32, 1)
		xB := tensor.RandDense(rng, batch, 32, 1)
		g := tensor.RandDense(rng, batch, out, 0.1)
		if err := protocol.RunParties(pa, pb,
			func() { la.Forward(core.DenseFeatures{M: xA}); la.Backward() },
			func() { lb.Forward(core.DenseFeatures{M: xB}); lb.Backward(g) },
		); err != nil {
			panic(err)
		}
		m1, b1 := pa.Conn.Stats()
		t.Add("MatMul dense", "64", fmt.Sprintf("%d", m1-m0), fmt.Sprintf("%.2f", float64(b1-b0)/(1<<20)), "—", "—", "—")
		cleanup()
	}

	// The same dense layer chunk-streamed: the extra messages are the chunk
	// envelopes; the per-chunk byte and receive-latency columns come from the
	// protocol layer's StreamStats accounting.
	{
		pa, pb, cleanup := tcpPeerPair(73)
		var la *core.MatMulA
		var lb *core.MatMulB
		cfg := core.Config{Out: out, LR: 0.1, Options: engine.Options{Stream: true}}
		if err := protocol.RunParties(pa, pb,
			func() { la = core.NewMatMulA(pa, cfg, 32, 32) },
			func() { lb = core.NewMatMulB(pb, cfg, 32, 32) },
		); err != nil {
			panic(err)
		}
		pa.Stream, pb.Stream = protocol.StreamStats{}, protocol.StreamStats{}
		m0, b0 := pa.Conn.Stats()
		rng := rand.New(rand.NewSource(1))
		xA := tensor.RandDense(rng, batch, 32, 1)
		xB := tensor.RandDense(rng, batch, 32, 1)
		g := tensor.RandDense(rng, batch, out, 0.1)
		if err := protocol.RunParties(pa, pb,
			func() { la.Forward(core.DenseFeatures{M: xA}); la.Backward() },
			func() { lb.Forward(core.DenseFeatures{M: xB}); lb.Backward(g) },
		); err != nil {
			panic(err)
		}
		m1, b1 := pa.Conn.Stats()
		s := pa.Stream
		kibPerChunk := "—"
		if s.ChunksSent > 0 {
			kibPerChunk = fmt.Sprintf("%.1f", float64(s.BytesSent)/float64(s.ChunksSent)/1024)
		}
		msPerChunk := "—"
		if s.ChunksRecv > 0 {
			msPerChunk = fmt.Sprintf("%.2f", s.RecvWait.Seconds()*1000/float64(s.ChunksRecv))
		}
		t.Add("MatMul dense (streamed)", "64", fmt.Sprintf("%d", m1-m0), fmt.Sprintf("%.2f", float64(b1-b0)/(1<<20)),
			fmt.Sprintf("%d", s.ChunksSent), kibPerChunk, msPerChunk)
		cleanup()
	}

	// The streamed layer with the label party's decrypt spot-check on: the
	// wire columns are unchanged (the probe is local re-decryption, not a
	// protocol message) and the integrity counters surface in the note.
	{
		pa, pb, cleanup := tcpPeerPair(76)
		var la *core.MatMulA
		var lb *core.MatMulB
		cfg := core.Config{Out: out, LR: 0.1, Options: engine.Options{Stream: true}}
		if err := protocol.RunParties(pa, pb,
			func() { la = core.NewMatMulA(pa, cfg, 32, 32) },
			func() { lb = core.NewMatMulB(pb, cfg, 32, 32) },
		); err != nil {
			panic(err)
		}
		pb.SpotCheck = true
		pa.Stream, pb.Stream = protocol.StreamStats{}, protocol.StreamStats{}
		m0, b0 := pa.Conn.Stats()
		rng := rand.New(rand.NewSource(1))
		xA := tensor.RandDense(rng, batch, 32, 1)
		xB := tensor.RandDense(rng, batch, 32, 1)
		g := tensor.RandDense(rng, batch, out, 0.1)
		if err := protocol.RunParties(pa, pb,
			func() { la.Forward(core.DenseFeatures{M: xA}); la.Backward() },
			func() { lb.Forward(core.DenseFeatures{M: xB}); lb.Backward(g) },
		); err != nil {
			panic(err)
		}
		m1, b1 := pa.Conn.Stats()
		s := pb.Stream
		t.Add("MatMul dense (streamed+spotcheck)", "64", fmt.Sprintf("%d", m1-m0),
			fmt.Sprintf("%.2f", float64(b1-b0)/(1<<20)), fmt.Sprintf("%d", s.ChunksRecv), "—", "—")
		t.Note("label-party decrypt spot-checks: %d rows re-verified, %d mismatches — a non-zero mismatch count on a healthy link means corrupted or mis-assembled ciphertext arithmetic", s.SpotChecks, s.SpotMismatches)
		cleanup()
	}

	// The serve-path forward with the AN-coded residue check on: each party
	// re-derives every exact-integer share cell mod a small prime before the
	// share joins the decrypted homomorphic half. Like the spot-check the
	// probe is party-local — the wire columns are unchanged — and the
	// counters surface in the note.
	{
		pa, pb, cleanup := tcpPeerPair(77)
		var la *core.MatMulA
		var lb *core.MatMulB
		cfg := core.Config{Out: out, LR: 0.1}
		if err := protocol.RunParties(pa, pb,
			func() { la = core.NewMatMulA(pa, cfg, 32, 32) },
			func() { lb = core.NewMatMulB(pb, cfg, 32, 32) },
		); err != nil {
			panic(err)
		}
		pa.ANCheck, pb.ANCheck = true, true
		pa.Stream, pb.Stream = protocol.StreamStats{}, protocol.StreamStats{}
		m0, b0 := pa.Conn.Stats()
		rng := rand.New(rand.NewSource(1))
		xA := tensor.RandDense(rng, batch, 32, 1)
		xB := tensor.RandDense(rng, batch, 32, 1)
		if err := protocol.RunParties(pa, pb,
			func() { la.ServeStart(); la.ServeForward(xA) },
			func() { lb.ServeStart(); lb.ServeForward(xB) },
		); err != nil {
			panic(err)
		}
		m1, b1 := pa.Conn.Stats()
		checks := pa.Stream.ANChecks + pb.Stream.ANChecks
		bad := pa.Stream.ANMismatches + pb.Stream.ANMismatches
		t.Add("MatMul dense (serve+ancheck)", "64", fmt.Sprintf("%d", m1-m0), fmt.Sprintf("%.2f", float64(b1-b0)/(1<<20)), "—", "—", "—")
		t.Note("AN-coded residue checks (both parties, serve path): %d share cells re-verified, %d mismatches — a non-zero mismatch count means corrupt plaintext share arithmetic (the side the decrypt spot-check cannot see)", checks, bad)
		cleanup()
	}

	// The same dense layer with short-exponent blinding pools registered:
	// the pool effectiveness counters — including permanently lost slots,
	// the degraded-pool signal — surface alongside the wire columns.
	{
		pa, pb, cleanup := tcpPeerPair(74)
		var pools []*paillier.Pool
		for _, sk := range []*paillier.PrivateKey{pa.SK, pb.SK} {
			p := paillier.NewPool(&sk.PublicKey, 16, 0, paillier.Rand, paillier.WithShortExp(0))
			paillier.RegisterPool(p)
			pools = append(pools, p)
		}
		var la *core.MatMulA
		var lb *core.MatMulB
		cfg := core.Config{Out: out, LR: 0.1}
		if err := protocol.RunParties(pa, pb,
			func() { la = core.NewMatMulA(pa, cfg, 32, 32) },
			func() { lb = core.NewMatMulB(pb, cfg, 32, 32) },
		); err != nil {
			panic(err)
		}
		m0, b0 := pa.Conn.Stats()
		rng := rand.New(rand.NewSource(1))
		xA := tensor.RandDense(rng, batch, 32, 1)
		xB := tensor.RandDense(rng, batch, 32, 1)
		g := tensor.RandDense(rng, batch, out, 0.1)
		if err := protocol.RunParties(pa, pb,
			func() { la.Forward(core.DenseFeatures{M: xA}); la.Backward() },
			func() { lb.Forward(core.DenseFeatures{M: xB}); lb.Backward(g) },
		); err != nil {
			panic(err)
		}
		m1, b1 := pa.Conn.Stats()
		t.Add("MatMul dense (pooled)", "64", fmt.Sprintf("%d", m1-m0), fmt.Sprintf("%.2f", float64(b1-b0)/(1<<20)), "—", "—", "—")
		var hits, misses, lost int64
		for _, p := range pools {
			s := p.Stats()
			hits += s.Hits
			misses += s.Misses
			lost += s.Lost
		}
		t.Note("blinding pools (both parties): %d hits, %d misses, %d lost slots — a non-zero lost count marks a degraded pool (reader errors or closed workers)", hits, misses, lost)
		for _, sk := range []*paillier.PrivateKey{pa.SK, pb.SK} {
			paillier.UnregisterPool(&sk.PublicKey)
		}
		for _, p := range pools {
			p.Close()
		}
		cleanup()
	}

	// k-party dense group: one row per session, so per-session asymmetries
	// (here an uneven 12/10/10 column split) show up directly. Each row
	// reports the bytes that session's feature party put on its own TCP
	// connection during one group mini-batch.
	{
		const k = 3
		peersA, g, cleanup := tcpPeerGroup(75, k)
		inAs := []int{12, 10, 10}
		inB := 32
		cfg := core.Config{Out: out, LR: 0.1}
		acfg := cfg
		acfg.GroupParties = k
		las := make([]*core.MatMulA, k)
		var lb *core.MultiMatMulB
		if err := protocol.RunGroup(peersA, g,
			func(i int) { las[i] = core.NewMatMulA(peersA[i], acfg, inAs[i], inB) },
			func() { lb = core.NewMultiMatMulB(g, cfg, inAs, inB) },
		); err != nil {
			panic(err)
		}
		m0 := make([]int64, k)
		b0 := make([]int64, k)
		for i, p := range peersA {
			m0[i], b0[i] = p.Conn.Stats()
		}
		rng := rand.New(rand.NewSource(1))
		xAs := make([]*tensor.Dense, k)
		for i := range xAs {
			xAs[i] = tensor.RandDense(rng, batch, inAs[i], 1)
		}
		xB := tensor.RandDense(rng, batch, inB, 1)
		grad := tensor.RandDense(rng, batch, out, 0.1)
		if err := protocol.RunGroup(peersA, g,
			func(i int) { las[i].Forward(core.DenseFeatures{M: xAs[i]}); las[i].Backward() },
			func() { lb.Forward(core.DenseFeatures{M: xB}); lb.Backward(grad) },
		); err != nil {
			panic(err)
		}
		for i, p := range peersA {
			m1, b1 := p.Conn.Stats()
			t.Add(fmt.Sprintf("MatMul multi k=%d session %d", k, i), fmt.Sprintf("%d", inAs[i]),
				fmt.Sprintf("%d", m1-m0[i]), fmt.Sprintf("%.2f", float64(b1-b0[i])/(1<<20)), "—", "—", "—")
		}
		cleanup()
	}

	// Sparse 4096-dim layer with 8 nnz/row: despite 64× the dimensionality,
	// the traffic stays in the same ballpark because only touched
	// coordinates move.
	{
		pa, pb, cleanup := tcpPeerPair(72)
		cfg := core.Config{Out: out, LR: 0.1}
		la := core.NewSparseMatMulA(pa, cfg, 2048, 2048)
		lb := core.NewSparseMatMulB(pb, cfg, 2048, 2048)
		m0, b0 := pa.Conn.Stats()
		rng := rand.New(rand.NewSource(2))
		xA := tensor.RandCSR(rng, batch, 2048, 4)
		xB := tensor.RandCSR(rng, batch, 2048, 4)
		g := tensor.RandDense(rng, batch, out, 0.1)
		if err := protocol.RunParties(pa, pb,
			func() { la.Forward(xA); la.Backward() },
			func() { lb.Forward(xB); lb.Backward(g) },
		); err != nil {
			panic(err)
		}
		m1, b1 := pa.Conn.Stats()
		t.Add("MatMul sparse", "4096 (8 nnz/row)", fmt.Sprintf("%d", m1-m0), fmt.Sprintf("%.2f", float64(b1-b0)/(1<<20)), "—", "—", "—")
		cleanup()
	}
	t.Note("dense traffic is dominated by the ⟦X·V⟧ and refresh ciphertexts (∝ dims·out); sparse traffic ∝ touched coordinates")
	t.Note("multi rows: one TCP session per feature party of a k-party group — per-session bytes scale with that party's column count while the batch-sized transfers (⟦∇Z⟧, masked shares) repeat per session")
	t.Note("streamed rows split ciphertext matrices into %d-row chunks: bytes stay ≈ equal (chunk envelopes are small) while encryption, wire and decryption overlap", protocol.DefaultChunkRows)
	return t
}

// tcpPeerGroup wires a k-session group over TCP loopback (one connection per
// feature party) and returns a cleanup func.
func tcpPeerGroup(seed int64, k int) ([]*protocol.Peer, *protocol.Group, func()) {
	peersA := make([]*protocol.Peer, k)
	peersB := make([]*protocol.Peer, k)
	cleanups := make([]func(), k)
	for i := 0; i < k; i++ {
		peersA[i], peersB[i], cleanups[i] = tcpPeerSession(seed, i)
	}
	return peersA, protocol.NewGroup(peersB), func() {
		for _, c := range cleanups {
			c()
		}
	}
}

// tcpPeerPair wires two peers over TCP loopback and returns a cleanup func.
func tcpPeerPair(seed int64) (*protocol.Peer, *protocol.Peer, func()) {
	return tcpPeerSession(seed, 0)
}

// tcpPeerSession is tcpPeerPair for session i of a group, with the peers'
// RNG streams derived per (seed, session, role) exactly as Pipe/GroupPipe
// derive them.
func tcpPeerSession(seed int64, session int) (*protocol.Peer, *protocol.Peer, func()) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	acc := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			panic(err)
		}
		acc <- transport.NewGobConn(c)
	}()
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		panic(err)
	}
	connA := transport.NewGobConn(c)
	connB := <-acc
	l.Close()

	skA, skB := protocol.TestKeys()
	pa := protocol.NewPeer(protocol.PartyA, connA, skA, protocol.SessionRNG(seed, session, protocol.PartyA))
	pb := protocol.NewPeer(protocol.PartyB, connB, skB, protocol.SessionRNG(seed, session, protocol.PartyB))
	done := make(chan error, 1)
	go func() { done <- pa.Handshake() }()
	if err := pb.Handshake(); err != nil {
		panic(err)
	}
	if err := <-done; err != nil {
		panic(err)
	}
	//blindfl:allow teardown bench harness owns both ends; the returned closer is its RunParties
	return pa, pb, func() { connA.Close(); connB.Close() }
}
