package bench

import (
	"strings"
	"testing"
)

func TestTablePrint(t *testing.T) {
	tb := &Table{Title: "demo", Header: []string{"name", "value"}}
	tb.Add("alpha", "1")
	tb.Add("beta-longer", "2.5")
	tb.Note("a footnote with %d parts", 2)
	var sb strings.Builder
	tb.Print(&sb)
	out := sb.String()
	for _, want := range []string{"== demo ==", "alpha", "beta-longer", "note: a footnote with 2 parts"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: the header separator row exists.
	if !strings.Contains(out, "----") {
		t.Error("missing separator")
	}
}

func TestSeriesTable(t *testing.T) {
	tb := SeriesTable("curves", "step", []int{0, 5, 10}, []Series{
		{Name: "a", Values: []float64{1, 2, 3}},
		{Name: "b", Values: []float64{4, 5}}, // shorter: prints "-" for missing
	})
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[2][1] != "3.0000" || tb.Rows[2][2] != "-" {
		t.Fatalf("last row = %v", tb.Rows[2])
	}
	if tb.Header[0] != "step" || tb.Header[1] != "a" || tb.Header[2] != "b" {
		t.Fatalf("header = %v", tb.Header)
	}
}

func TestDownsample(t *testing.T) {
	v := make([]float64, 100)
	for i := range v {
		v[i] = float64(i)
	}
	idx, out := Downsample(v, 5)
	if len(idx) != 5 || len(out) != 5 {
		t.Fatalf("lens %d/%d", len(idx), len(out))
	}
	if idx[0] != 0 || idx[4] != 99 {
		t.Fatalf("endpoints %v", idx)
	}
	for i := range idx {
		if out[i] != float64(idx[i]) {
			t.Fatal("values do not match indices")
		}
	}
	// Short input passes through unchanged.
	idx2, out2 := Downsample([]float64{7, 8}, 5)
	if len(idx2) != 2 || out2[1] != 8 {
		t.Fatalf("short input: %v %v", idx2, out2)
	}
}
