package bench

import (
	"bytes"
	"fmt"
	"time"

	"blindfl/internal/data"
	"blindfl/internal/engine"
	"blindfl/internal/hetensor"
	"blindfl/internal/model"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/serve"
	"blindfl/internal/tensor"
)

// Serving benchmark: the online-inference counterpart of the fed-step rows.
// It trains a small dense model to a checkpoint, restores a Predictor on
// fresh sessions, and drives the serve runtime with the closed-loop load
// generator in two regimes — sequential (one request per protocol batch, one
// client) and batched (lane-width batches fed by 2K concurrent clients).
//
// What batching buys: a serve batch's packed exponents grow by one lane
// (~124 bits) per extra request, while the per-batch mask encryption,
// transfer and decryption — a full |n|-bit exponentiation each — are paid
// once per lane group. The amortizable share therefore grows with the key
// size: at the 512-bit test keys a lane group is only ~1.6× cheaper per
// request than one-request batches, while at the 1024-bit benchmark default
// (protocol.KeyBits, K = 8 lanes) it is well past the 2× acceptance bar.
// Beyond one lane group each extra group pays its own encrypt/decrypt, so
// the batcher's lane-width default is also the benchmark's batch depth.

// ServePerf bundles the serve benchmark's measurements.
type ServePerf struct {
	KeyBits    int
	Lanes      int
	Sequential serve.LoadResult
	Batched    serve.LoadResult
	CacheHits  int64 // dot-table cache hits during the batched (steady-state) run
	Misses     int64 // dot-table cache misses during the batched run

	// Integrity counters from the batched run: serve-level request
	// spot-checks (serve.Stats) and protocol-level decrypt spot-checks
	// (protocol.StreamStats), both zero unless eng.SpotCheck is on.
	SpotChecks     int64
	SpotMismatches int64
}

// Speedup is batched over sequential throughput.
func (s ServePerf) Speedup() float64 {
	if s.Sequential.Throughput == 0 {
		return 0
	}
	return s.Batched.Throughput / s.Sequential.Throughput
}

// RunServePerf builds the serve stack and measures both regimes. requests is
// the batched-run request count (the sequential run uses a quarter of it,
// floor 8). keyBits sizes the Paillier keys: 512 reuses the cached test keys,
// anything else generates a fresh pair. The benchmark forces a dot-table
// cache budget if eng has none, so the steady-state hit counters mean
// something.
func RunServePerf(eng engine.Options, keyBits, requests int) (ServePerf, error) {
	if eng.TableCacheMB <= 0 {
		eng.TableCacheMB = 128
	}
	spec := data.Spec{Name: "bench-serve", Feats: 8, AvgNNZ: 8, Classes: 2, Train: 128, Test: 64}
	ds := data.Generate(spec, 31)
	h := model.DefaultHyper()
	h.Epochs = 1
	h.Batch = 32
	h.Options = eng

	var skA, skB *paillier.PrivateKey
	if keyBits == 512 {
		skA, skB = protocol.TestKeys()
	} else {
		var err error
		if skA, err = paillier.GenerateKey(paillier.Rand, keyBits); err != nil {
			return ServePerf{}, err
		}
		if skB, err = paillier.GenerateKey(paillier.Rand, keyBits); err != nil {
			return ServePerf{}, err
		}
	}
	eng.SetupKeys(skA, skB)
	eng.Apply()

	pa, pb, err := protocol.Pipe(skA, skB, 41)
	if err != nil {
		return ServePerf{}, err
	}
	var ck bytes.Buffer
	if _, err := (model.Trainer{Kind: model.LR, Hyper: h, Checkpoint: &ck}).Train(ds, model.Pair(pa, pb)); err != nil {
		return ServePerf{}, err
	}
	pa2, pb2, err := protocol.Pipe(skA, skB, 42)
	if err != nil {
		return ServePerf{}, err
	}
	pb2.SpotCheck = eng.SpotCheck // label party re-verifies serve decrypts
	p, err := model.NewPredictor(bytes.NewReader(ck.Bytes()), model.Pair(pa2, pb2))
	if err != nil {
		return ServePerf{}, err
	}

	rows := make([]int, ds.TestB.Dense.Rows)
	for i := range rows {
		rows[i] = i
	}
	newReq := serve.RandomRequests([]*tensor.Dense{ds.TestA.Dense}, ds.TestB.Dense, rows)
	lanes := p.Lanes()
	if requests < 4*lanes {
		requests = 4 * lanes
	}

	res := ServePerf{KeyBits: keyBits, Lanes: lanes}

	// Sequential baseline: one client, one request per protocol batch.
	seq := serve.NewServer(p, serve.Config{MaxBatch: 1, SpotCheck: eng.SpotCheck})
	seqReqs := requests / 4
	if seqReqs < 8 {
		seqReqs = 8
	}
	serve.RunLoad(seq, newReq, 1, 2) // warm-up: session tables, pools
	res.Sequential = serve.RunLoad(seq, newReq, 1, seqReqs)
	seq.Close()

	// Batched: lane groups filled across 2K concurrent clients. The flush
	// interval is generous because this is a throughput benchmark: a batch
	// that launches half-empty on a scheduling hiccup pays the full per-group
	// cost for half the requests. The warm-up also brackets the steady-state
	// dot-table counters: the weight pieces' Straus tables were built during
	// warm-up, so the measured run should be nearly all hits.
	bat := serve.NewServer(p, serve.Config{FlushInterval: 25 * time.Millisecond, SpotCheck: eng.SpotCheck})
	serve.RunLoad(bat, newReq, 2*lanes, 2*lanes)
	cs0 := hetensor.TableCacheStatsNow()
	res.Batched = serve.RunLoad(bat, newReq, 2*lanes, requests)
	cs1 := hetensor.TableCacheStatsNow()
	st := bat.Stats()
	bat.Close()
	res.CacheHits = cs1.Hits - cs0.Hits
	res.Misses = cs1.Misses - cs0.Misses
	res.SpotChecks = st.SpotChecks + pb2.Stream.SpotChecks
	res.SpotMismatches = st.Mismatches + pb2.Stream.SpotMismatches
	return res, nil
}

// RunPerfServe runs the serve benchmark and flattens it into PerfResult rows
// for the BENCH json: serve_latency p50/p95/p99 (batched regime, end-to-end
// per request) and serve_throughput sequential/batched_conc2k (ns per served
// request). The row format is documented in internal/bench/README.md.
func RunPerfServe(eng engine.Options, keyBits, requests int) ([]PerfResult, error) {
	sp, err := RunServePerf(eng, keyBits, requests)
	if err != nil {
		return nil, err
	}
	nsPerReq := func(r serve.LoadResult) float64 {
		if r.Throughput == 0 {
			return 0
		}
		return 1e9 / r.Throughput
	}
	return []PerfResult{
		{Op: "serve_latency", Config: "p50", KeyBits: keyBits, NsPerOp: float64(sp.Batched.P50.Nanoseconds()), Iters: sp.Batched.OK},
		{Op: "serve_latency", Config: "p95", KeyBits: keyBits, NsPerOp: float64(sp.Batched.P95.Nanoseconds()), Iters: sp.Batched.OK},
		{Op: "serve_latency", Config: "p99", KeyBits: keyBits, NsPerOp: float64(sp.Batched.P99.Nanoseconds()), Iters: sp.Batched.OK},
		{Op: "serve_throughput", Config: "sequential", KeyBits: keyBits, NsPerOp: nsPerReq(sp.Sequential), Iters: sp.Sequential.OK},
		{Op: "serve_throughput", Config: "batched_conc2k", KeyBits: keyBits, NsPerOp: nsPerReq(sp.Batched), Iters: sp.Batched.OK},
	}, nil
}

// String renders the serve measurements as the multi-line report the CLI
// prints for -serve.
func (s ServePerf) String() string {
	return fmt.Sprintf(
		"%d-bit keys, %d lanes\n"+
			"sequential:  %3d ok in %v — %7.1f req/s\n"+
			"batched 2K:  %3d ok in %v — %7.1f req/s\n"+
			"latency (batched) p50 %v | p95 %v | p99 %v\n"+
			"cross-request batching speedup: %.2fx\n"+
			"steady-state dot-table cache: %d hits / %d misses\n"+
			"integrity: %d spot-checks / %d mismatches",
		s.KeyBits, s.Lanes,
		s.Sequential.OK, s.Sequential.Duration.Round(time.Millisecond), s.Sequential.Throughput,
		s.Batched.OK, s.Batched.Duration.Round(time.Millisecond), s.Batched.Throughput,
		s.Batched.P50.Round(time.Microsecond), s.Batched.P95.Round(time.Microsecond), s.Batched.P99.Round(time.Microsecond),
		s.Speedup(), s.CacheHits, s.Misses, s.SpotChecks, s.SpotMismatches)
}
