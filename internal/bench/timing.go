package bench

import (
	"math/rand"
	"time"

	"blindfl/internal/core"
	"blindfl/internal/data"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/secureml"
	"blindfl/internal/tensor"
	"blindfl/internal/transport"
)

// StepperOpts selects the throughput-engine features a stepper exercises.
type StepperOpts struct {
	// Packed enables ciphertext packing on the dense MatMul source layer.
	Packed bool
	// Stream chunk-streams the layer's ciphertext transfers so one party's
	// encryption overlaps the other's decryption/accumulation.
	Stream bool
	// ChunkRows overrides the rows per streamed chunk (0 = protocol default).
	ChunkRows int
	// SimLatency/SimBandwidth, when either is set, run the parties over a
	// transport.SimPair link with that one-way propagation delay and
	// bytes/sec bandwidth instead of the zero-cost channel pair: the
	// configuration under which streaming's compute/communication overlap
	// is visible on any machine (wire time releases the CPU).
	SimLatency   time.Duration
	SimBandwidth float64
	// PoolCapacity, when positive, registers a blinding-randomness pool of
	// that capacity for each party's key so every encryption site takes the
	// precomputed fast path. A pool already registered for the key is
	// replaced and closed. The new pools stay registered for the process
	// (benchmarks that care unregister and close them via paillier.PoolFor).
	PoolCapacity int
	// ShortExp switches the registered pools (PoolCapacity > 0) to
	// DJN-style short-exponent blinding: refills draw (hⁿ)^α for a fresh
	// ~400-bit α instead of a full-width r^N.
	ShortExp bool
	// NoFixedBase disables the Lim–Lee comb tables on the short-exp pools,
	// restoring the PR 3 big.Int.Exp refill as the ablation baseline.
	NoFixedBase bool
	// Textbook disables the signed/Straus exponentiation engine
	// (core.Config.Textbook) so a run measures the classic full-width
	// MulPlain paths — the pre-engine baseline.
	Textbook bool
	// TableCacheMB budgets the persistent Straus dot-table cache
	// (core.Config.TableCacheMB); 0 disables it. Process-wide: the stepper
	// sets the budget at construction and leaves it, like the pools.
	TableCacheMB int
	// SecretOps registers the CRT fast paths for both parties' keys. Note
	// that in-process this accelerates both parties, which a real two-party
	// deployment cannot do — use it to measure the label-party ceiling, not
	// a deployment. Stays registered for the process, like the pools.
	SecretOps bool
}

// NewBlindFLStepper builds a federated MatMul source layer for a dataset
// spec and returns a closure that runs one forward+backward mini-batch
// (both parties, in process). Setup cost is paid here, not in the step.
// Used by both TimeBlindFLBatch and the testing.B benchmark suite.
func NewBlindFLStepper(spec data.Spec, batch, out int) func() {
	return NewBlindFLStepperOpts(spec, batch, out, StepperOpts{})
}

// NewBlindFLStepperOpts is NewBlindFLStepper with the packing and
// randomness-pool features configurable.
func NewBlindFLStepperOpts(spec data.Spec, batch, out int, opts StepperOpts) func() {
	skA, skB := protocol.TestKeys()
	var pa, pb *protocol.Peer
	var err error
	if opts.SimLatency > 0 || opts.SimBandwidth > 0 {
		ca, cb := transport.SimPair(4096, opts.SimLatency, opts.SimBandwidth)
		pa, pb, err = protocol.PipeOn(ca, cb, skA, skB, 7)
	} else {
		pa, pb, err = protocol.Pipe(skA, skB, 7)
	}
	if err != nil {
		panic(err)
	}
	if opts.SecretOps {
		protocol.EnableSecretOps(skA, skB)
	}
	if opts.PoolCapacity > 0 {
		var poolOpts []paillier.PoolOption
		if opts.ShortExp {
			poolOpts = append(poolOpts, paillier.WithShortExp(0), paillier.WithFixedBase(!opts.NoFixedBase, 0))
		}
		for _, sk := range []*paillier.PrivateKey{skA, skB} {
			old := paillier.PoolFor(&sk.PublicKey)
			paillier.RegisterPool(paillier.NewPool(&sk.PublicKey, opts.PoolCapacity, 0, paillier.Rand, poolOpts...))
			if old != nil {
				old.Close()
			}
		}
	}
	pa.ChunkRows, pb.ChunkRows = opts.ChunkRows, opts.ChunkRows
	rng := rand.New(rand.NewSource(11))
	half := spec.Feats / 2
	cfg := core.Config{Out: out, LR: 0.05, Packed: opts.Packed, Stream: opts.Stream, Textbook: opts.Textbook,
		TableCacheMB: opts.TableCacheMB}

	runStep := func(fa, fb func()) {
		if err := protocol.RunParties(pa, pb, fa, fb); err != nil {
			panic(err)
		}
	}

	if spec.Dense() {
		var la *core.MatMulA
		var lb *core.MatMulB
		runStep(
			func() { la = core.NewMatMulA(pa, cfg, half, spec.Feats-half) },
			func() { lb = core.NewMatMulB(pb, cfg, half, spec.Feats-half) },
		)
		xA := tensor.RandDense(rng, batch, half, 1)
		xB := tensor.RandDense(rng, batch, spec.Feats-half, 1)
		g := tensor.RandDense(rng, batch, out, 0.01)
		return func() {
			runStep(
				func() { la.Forward(core.DenseFeatures{M: xA}); la.Backward() },
				func() { lb.Forward(core.DenseFeatures{M: xB}); lb.Backward(g) },
			)
		}
	}
	la := core.NewSparseMatMulA(pa, cfg, half, spec.Feats-half)
	lb := core.NewSparseMatMulB(pb, cfg, half, spec.Feats-half)
	xA := tensor.RandCSR(rng, batch, half, spec.AvgNNZ/2)
	xB := tensor.RandCSR(rng, batch, spec.Feats-half, spec.AvgNNZ-spec.AvgNNZ/2)
	g := tensor.RandDense(rng, batch, out, 0.01)
	return func() {
		runStep(
			func() { la.Forward(xA); la.Backward() },
			func() { lb.Forward(xB); lb.Backward(g) },
		)
	}
}

// NewBlindFLMultiStepper builds a k-party dense MatMul group for a dataset
// spec — Party A's half of the columns split across k feature parties, one
// session each — and returns a closure that runs one forward+backward
// mini-batch across all parties in process. k=1 is the degenerate group that
// matches the two-party stepper's work, so a k=3-vs-k=1 pair isolates the
// per-session overhead of the group runtime.
func NewBlindFLMultiStepper(spec data.Spec, batch, out, k int, opts StepperOpts) func() {
	skA, skB := protocol.TestKeys()
	skAs := make([]*paillier.PrivateKey, k)
	for i := range skAs {
		skAs[i] = skA
	}
	as, g, err := protocol.GroupPipe(skAs, skB, 7)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(11))
	half := spec.Feats / 2
	inB := spec.Feats - half
	base, rem := half/k, half%k
	inAs := make([]int, k)
	for i := range inAs {
		inAs[i] = base
		if i < rem {
			inAs[i]++
		}
	}
	cfg := core.Config{Out: out, LR: 0.05, Packed: opts.Packed, Stream: opts.Stream,
		Textbook: opts.Textbook, TableCacheMB: opts.TableCacheMB}
	acfg := cfg
	acfg.GroupParties = k

	las := make([]*core.MatMulA, k)
	var lb *core.MultiMatMulB
	runStep := func(fa func(i int), fb func()) {
		if err := protocol.RunGroup(as, g, fa, fb); err != nil {
			panic(err)
		}
	}
	runStep(
		func(i int) { las[i] = core.NewMatMulA(as[i], acfg, inAs[i], inB) },
		func() { lb = core.NewMultiMatMulB(g, cfg, inAs, inB) },
	)
	xAs := make([]*tensor.Dense, k)
	for i := range xAs {
		xAs[i] = tensor.RandDense(rng, batch, inAs[i], 1)
	}
	xB := tensor.RandDense(rng, batch, inB, 1)
	grad := tensor.RandDense(rng, batch, out, 0.01)
	return func() {
		runStep(
			func(i int) { las[i].Forward(core.DenseFeatures{M: xAs[i]}); las[i].Backward() },
			func() { lb.Forward(core.DenseFeatures{M: xB}); lb.Backward(grad) },
		)
	}
}

// TimeBlindFLBatch measures the mean seconds per federated forward+backward
// mini-batch of the MatMul source layer on a dataset spec (the quantity the
// paper's Table 5/6 report). Initialization is excluded; iters batches are
// timed after one warm-up.
func TimeBlindFLBatch(spec data.Spec, batch, out, iters int) float64 {
	step := NewBlindFLStepper(spec, batch, out)
	step() // warm-up
	start := time.Now()
	for i := 0; i < iters; i++ {
		step()
	}
	return time.Since(start).Seconds() / float64(iters)
}

// NewSecureMLStepper builds a SecureML deployment for a spec (densified, as
// outsourcing requires) and returns a one-mini-batch closure.
func NewSecureMLStepper(spec data.Spec, batch, out int, mode secureml.Mode) func() {
	rng := rand.New(rand.NewSource(13))
	x := tensor.RandDense(rng, batch, spec.Feats, 1)
	y := make([]int, batch)
	sk0, sk1 := protocol.TestKeys()
	sys := secureml.NewSystem(rng, mode, x, y, out, sk0, sk1)
	rows := make([]int, batch)
	for i := range rows {
		rows[i] = i
	}
	g := secureml.Encode(tensor.RandDense(rng, batch, out, 0.01))
	g0, g1 := secureml.Share(rng, g)
	return func() {
		z0, z1 := sys.ForwardBatch(rows)
		_, _ = z0, z1
		sys.BackwardBatch(rows, g0, g1, 0.05)
	}
}

// TimeSecureMLBatch measures seconds per secure forward+backward mini-batch
// for SecureML in the given mode. Outsourcing forces dense features of the
// spec's full dimensionality. For the HE-generated mode, dimensions above
// capDim are measured on a capDim slice and extrapolated linearly in the
// feature count (the triple's homomorphic work is linear in d); the second
// return reports whether extrapolation happened.
func TimeSecureMLBatch(spec data.Spec, batch, out, iters int, mode secureml.Mode, capDim int) (float64, bool) {
	d := spec.Feats
	extrapolated := false
	scale := 1.0
	if mode == secureml.HEGenerated && capDim > 0 && d > capDim {
		scale = float64(d) / float64(capDim)
		d = capDim
		extrapolated = true
	}
	rng := rand.New(rand.NewSource(13))
	x := tensor.RandDense(rng, batch, d, 1) // dense: outsourcing hides zeros
	y := make([]int, batch)
	sk0, sk1 := protocol.TestKeys()
	sys := secureml.NewSystem(rng, mode, x, y, out, sk0, sk1)
	rows := make([]int, batch)
	for i := range rows {
		rows[i] = i
	}
	g := secureml.Encode(tensor.RandDense(rng, batch, out, 0.01))
	g0, g1 := secureml.Share(rng, g)

	step := func() {
		z0, z1 := sys.ForwardBatch(rows)
		_ = z0
		_ = z1
		sys.BackwardBatch(rows, g0, g1, 0.05)
	}
	step() // warm-up
	start := time.Now()
	for i := 0; i < iters; i++ {
		step()
	}
	sec := time.Since(start).Seconds() / float64(iters)
	return sec * scale, extrapolated
}
