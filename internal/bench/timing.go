package bench

import (
	"math/rand"
	"time"

	"blindfl/internal/core"
	"blindfl/internal/data"
	"blindfl/internal/engine"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/secureml"
	"blindfl/internal/tensor"
	"blindfl/internal/transport"
)

// StepperOpts selects the throughput-engine features a stepper exercises.
// The engine knobs (Packed, Stream, Textbook, Pool, …) live on the embedded
// engine.Options — the single declaration shared with core.Config and
// model.Hyper; the stepper applies pool/secret-ops setup via
// Options.SetupKeys at construction, and the installed state stays
// registered for the process (benchmarks that care unregister via
// paillier.PoolFor).
type StepperOpts struct {
	engine.Options

	// SimLatency/SimBandwidth, when either is set, run the parties over a
	// transport.SimPair link with that one-way propagation delay and
	// bytes/sec bandwidth instead of the zero-cost channel pair: the
	// configuration under which streaming's compute/communication overlap
	// is visible on any machine (wire time releases the CPU).
	SimLatency   time.Duration
	SimBandwidth float64
}

// NewBlindFLStepper builds a federated MatMul source layer for a dataset
// spec and returns a closure that runs one forward+backward mini-batch
// (both parties, in process). Setup cost is paid here, not in the step.
// Used by both TimeBlindFLBatch and the testing.B benchmark suite.
func NewBlindFLStepper(spec data.Spec, batch, out int) func() {
	return NewBlindFLStepperOpts(spec, batch, out, StepperOpts{})
}

// NewBlindFLStepperOpts is NewBlindFLStepper with the packing and
// randomness-pool features configurable.
func NewBlindFLStepperOpts(spec data.Spec, batch, out int, opts StepperOpts) func() {
	skA, skB := protocol.TestKeys()
	var pa, pb *protocol.Peer
	var err error
	if opts.SimLatency > 0 || opts.SimBandwidth > 0 {
		ca, cb := transport.SimPair(4096, opts.SimLatency, opts.SimBandwidth)
		pa, pb, err = protocol.PipeOn(ca, cb, skA, skB, 7)
	} else {
		pa, pb, err = protocol.Pipe(skA, skB, 7)
	}
	if err != nil {
		panic(err)
	}
	opts.SetupKeys(skA, skB)
	pa.ChunkRows, pb.ChunkRows = opts.ChunkRows, opts.ChunkRows
	pb.SpotCheck = opts.SpotCheck // label party re-verifies decrypts
	rng := rand.New(rand.NewSource(11))
	half := spec.Feats / 2
	cfg := core.Config{Out: out, LR: 0.05, Options: opts.Options}

	runStep := func(fa, fb func()) {
		if err := protocol.RunParties(pa, pb, fa, fb); err != nil {
			panic(err)
		}
	}

	if spec.Dense() {
		var la *core.MatMulA
		var lb *core.MatMulB
		runStep(
			func() { la = core.NewMatMulA(pa, cfg, half, spec.Feats-half) },
			func() { lb = core.NewMatMulB(pb, cfg, half, spec.Feats-half) },
		)
		xA := tensor.RandDense(rng, batch, half, 1)
		xB := tensor.RandDense(rng, batch, spec.Feats-half, 1)
		g := tensor.RandDense(rng, batch, out, 0.01)
		return func() {
			runStep(
				func() { la.Forward(core.DenseFeatures{M: xA}); la.Backward() },
				func() { lb.Forward(core.DenseFeatures{M: xB}); lb.Backward(g) },
			)
		}
	}
	la := core.NewSparseMatMulA(pa, cfg, half, spec.Feats-half)
	lb := core.NewSparseMatMulB(pb, cfg, half, spec.Feats-half)
	xA := tensor.RandCSR(rng, batch, half, spec.AvgNNZ/2)
	xB := tensor.RandCSR(rng, batch, spec.Feats-half, spec.AvgNNZ-spec.AvgNNZ/2)
	g := tensor.RandDense(rng, batch, out, 0.01)
	return func() {
		runStep(
			func() { la.Forward(xA); la.Backward() },
			func() { lb.Forward(xB); lb.Backward(g) },
		)
	}
}

// NewBlindFLMultiStepper builds a k-party dense MatMul group for a dataset
// spec — Party A's half of the columns split across k feature parties, one
// session each — and returns a closure that runs one forward+backward
// mini-batch across all parties in process. k=1 is the degenerate group that
// matches the two-party stepper's work, so a k=3-vs-k=1 pair isolates the
// per-session overhead of the group runtime.
func NewBlindFLMultiStepper(spec data.Spec, batch, out, k int, opts StepperOpts) func() {
	skA, skB := protocol.TestKeys()
	skAs := make([]*paillier.PrivateKey, k)
	for i := range skAs {
		skAs[i] = skA
	}
	as, g, err := protocol.GroupPipe(skAs, skB, 7)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(11))
	half := spec.Feats / 2
	inB := spec.Feats - half
	base, rem := half/k, half%k
	inAs := make([]int, k)
	for i := range inAs {
		inAs[i] = base
		if i < rem {
			inAs[i]++
		}
	}
	cfg := core.Config{Out: out, LR: 0.05, Options: opts.Options}
	acfg := cfg
	acfg.GroupParties = k

	las := make([]*core.MatMulA, k)
	var lb *core.MultiMatMulB
	runStep := func(fa func(i int), fb func()) {
		if err := protocol.RunGroup(as, g, fa, fb); err != nil {
			panic(err)
		}
	}
	runStep(
		func(i int) { las[i] = core.NewMatMulA(as[i], acfg, inAs[i], inB) },
		func() { lb = core.NewMultiMatMulB(g, cfg, inAs, inB) },
	)
	xAs := make([]*tensor.Dense, k)
	for i := range xAs {
		xAs[i] = tensor.RandDense(rng, batch, inAs[i], 1)
	}
	xB := tensor.RandDense(rng, batch, inB, 1)
	grad := tensor.RandDense(rng, batch, out, 0.01)
	return func() {
		runStep(
			func(i int) { las[i].Forward(core.DenseFeatures{M: xAs[i]}); las[i].Backward() },
			func() { lb.Forward(core.DenseFeatures{M: xB}); lb.Backward(grad) },
		)
	}
}

// TimeBlindFLBatch measures the mean seconds per federated forward+backward
// mini-batch of the MatMul source layer on a dataset spec (the quantity the
// paper's Table 5/6 report). Initialization is excluded; iters batches are
// timed after one warm-up.
func TimeBlindFLBatch(spec data.Spec, batch, out, iters int) float64 {
	step := NewBlindFLStepper(spec, batch, out)
	step() // warm-up
	start := time.Now()
	for i := 0; i < iters; i++ {
		step()
	}
	return time.Since(start).Seconds() / float64(iters)
}

// NewSecureMLStepper builds a SecureML deployment for a spec (densified, as
// outsourcing requires) and returns a one-mini-batch closure.
func NewSecureMLStepper(spec data.Spec, batch, out int, mode secureml.Mode) func() {
	rng := rand.New(rand.NewSource(13))
	x := tensor.RandDense(rng, batch, spec.Feats, 1)
	y := make([]int, batch)
	sk0, sk1 := protocol.TestKeys()
	sys := secureml.NewSystem(rng, mode, x, y, out, sk0, sk1)
	rows := make([]int, batch)
	for i := range rows {
		rows[i] = i
	}
	g := secureml.Encode(tensor.RandDense(rng, batch, out, 0.01))
	g0, g1 := secureml.Share(rng, g)
	return func() {
		z0, z1 := sys.ForwardBatch(rows)
		_, _ = z0, z1
		sys.BackwardBatch(rows, g0, g1, 0.05)
	}
}

// TimeSecureMLBatch measures seconds per secure forward+backward mini-batch
// for SecureML in the given mode. Outsourcing forces dense features of the
// spec's full dimensionality. For the HE-generated mode, dimensions above
// capDim are measured on a capDim slice and extrapolated linearly in the
// feature count (the triple's homomorphic work is linear in d); the second
// return reports whether extrapolation happened.
func TimeSecureMLBatch(spec data.Spec, batch, out, iters int, mode secureml.Mode, capDim int) (float64, bool) {
	d := spec.Feats
	extrapolated := false
	scale := 1.0
	if mode == secureml.HEGenerated && capDim > 0 && d > capDim {
		scale = float64(d) / float64(capDim)
		d = capDim
		extrapolated = true
	}
	rng := rand.New(rand.NewSource(13))
	x := tensor.RandDense(rng, batch, d, 1) // dense: outsourcing hides zeros
	y := make([]int, batch)
	sk0, sk1 := protocol.TestKeys()
	sys := secureml.NewSystem(rng, mode, x, y, out, sk0, sk1)
	rows := make([]int, batch)
	for i := range rows {
		rows[i] = i
	}
	g := secureml.Encode(tensor.RandDense(rng, batch, out, 0.01))
	g0, g1 := secureml.Share(rng, g)

	step := func() {
		z0, z1 := sys.ForwardBatch(rows)
		_ = z0
		_ = z1
		sys.BackwardBatch(rows, g0, g1, 0.05)
	}
	step() // warm-up
	start := time.Now()
	for i := 0; i < iters; i++ {
		step()
	}
	sec := time.Since(start).Seconds() / float64(iters)
	return sec * scale, extrapolated
}
