package bench

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"blindfl/internal/data"
	"blindfl/internal/engine"
	"blindfl/internal/model"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/transport"
)

// Sharded label-party benchmarks (PR 10): the fedstep_sharded family runs
// the same small dense training job with the label party's sessions
// partitioned across 1, 2 and 4 shard worker processes over loopback TCP,
// plus 1- and 2-shard WAN-simulated rows over in-process SimPair links. The
// measured unit is one training step (forward partials up, head, one
// gradient broadcast down), with session handshakes and evaluation amortized
// into the steps — the same end-to-end flavour as the fedstep rows, and the
// same work in every row, so the ratio column against the shards1 baseline
// is the cost (or win) of sharding itself.

// shardWorkerEnv marks a re-exec of the bench binary as a shard worker
// process (MaybeRunShardWorker).
const shardWorkerEnv = "BLINDFL_SHARD_WORKER"

// MaybeRunShardWorker turns this process into a one-shot shard worker when
// the harness env var is set: listen on a free loopback port, announce it on
// stdout, serve one sharded run, exit. cmd/blindfl-bench calls it first
// thing in main, which is how RunPerfFedStepSharded re-execs itself into a
// worker fleet without a separate binary on PATH.
func MaybeRunShardWorker() {
	if os.Getenv(shardWorkerEnv) == "" {
		return
	}
	_, skB := protocol.TestKeys()
	if err := model.ListenAndServeShard("127.0.0.1:0", os.Stdout, skB, 0); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// shardBenchJob is the fixed training job every fedstep_sharded row runs:
// dense LR over 4 feature-party sessions, 2 epochs of 8 batches each.
func shardBenchJob() (model.Trainer, *data.Dataset, int) {
	spec := data.Spec{Name: "bench-shard", Feats: 32, AvgNNZ: 32, Classes: 2, Train: 256, Test: 64}
	ds := data.Generate(spec, 7)
	h := model.Hyper{LR: 0.1, Momentum: 0.9, Batch: 32, Epochs: 2, Seed: 7,
		Options: engine.Options{Packed: true}}
	steps := h.Epochs * ((spec.Train + h.Batch - 1) / h.Batch)
	return model.Trainer{Kind: model.LR, Hyper: h}, ds, steps
}

// timeShardedRun runs one sharded training job end to end and returns
// ns per training step.
func timeShardedRun(tr model.Trainer, ds *data.Dataset, ss model.ShardSet, steps int) (float64, error) {
	start := time.Now()
	if _, err := tr.TrainSharded(ds, ss); err != nil {
		return 0, err
	}
	return float64(time.Since(start).Nanoseconds()) / float64(steps), nil
}

// spawnShardWorkers re-execs this binary into n one-shot shard worker
// processes (MaybeRunShardWorker) pinned to GOMAXPROCS=1 — real process
// isolation, so the multi-shard rows measure genuine multi-process runs even
// though the rows are honest about a 1-core host in the README — and returns
// their announced listen addresses and a stop that kills whatever is still
// running.
func spawnShardWorkers(n int) ([]string, func(), error) {
	addrs := make([]string, n)
	var cmds []*exec.Cmd
	stop := func() {
		for _, c := range cmds {
			c.Process.Kill()
			c.Wait()
		}
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), shardWorkerEnv+"=1", "GOMAXPROCS=1")
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			stop()
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			stop()
			return nil, nil, err
		}
		cmds = append(cmds, cmd)
		sc := bufio.NewScanner(out)
		for addrs[i] == "" && sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "SHARD_LISTEN "); ok {
				addrs[i] = a
			}
		}
		if addrs[i] == "" {
			stop()
			return nil, nil, fmt.Errorf("bench: shard worker %d exited without announcing a listen address", i)
		}
	}
	return addrs, stop, nil
}

// RunPerfFedStepSharded measures the fedstep_sharded family: the fixed
// 4-session job at 1, 2 and 4 shard worker processes over loopback TCP, then
// at 1 and 2 in-process shards over a simulated WAN link (5 ms one-way,
// 12.5 MB/s) where wire time dominates and sharding's value — each worker
// drives its own sessions without a coordinator round-trip — is visible on
// any machine. All rows are bit-identical runs of the same schedule.
func RunPerfFedStepSharded() ([]PerfResult, error) {
	skA, skB := protocol.TestKeys()
	tr, ds, steps := shardBenchJob()
	skAs := []*paillier.PrivateKey{skA, skA, skA, skA}
	var out []PerfResult

	for _, shards := range []int{1, 2, 4} {
		addrs, stop, err := spawnShardWorkers(shards)
		if err != nil {
			return nil, err
		}
		ss := model.ShardSet{Shards: shards, SKAs: skAs,
			Dial: func(s int) (transport.Conn, error) { return transport.Dial(addrs[s]) }}
		ns, err := timeShardedRun(tr, ds, ss, steps)
		stop()
		if err != nil {
			return nil, fmt.Errorf("bench: fedstep_sharded shards=%d: %w", shards, err)
		}
		out = append(out, PerfResult{Op: "fedstep_sharded", Config: fmt.Sprintf("shards%d", shards),
			KeyBits: 512, NsPerOp: ns, Iters: steps})
	}

	for _, shards := range []int{1, 2} {
		dial, wait, stopW := model.StartShardWorkers(shards, skB,
			func(shard, ordinal int) (transport.Conn, transport.Conn) {
				return transport.SimPair(4096, 5*time.Millisecond, 12.5e6)
			})
		ss := model.ShardSet{Shards: shards, SKAs: skAs, Dial: dial}
		ns, err := timeShardedRun(tr, ds, ss, steps)
		if err != nil {
			stopW()
			wait()
			return nil, fmt.Errorf("bench: fedstep_sharded shards=%d wan: %w", shards, err)
		}
		if err := wait(); err != nil {
			return nil, fmt.Errorf("bench: fedstep_sharded shards=%d wan worker: %w", shards, err)
		}
		out = append(out, PerfResult{Op: "fedstep_sharded", Config: fmt.Sprintf("shards%d_wan", shards),
			KeyBits: 512, NsPerOp: ns, Iters: steps})
	}
	return out, nil
}

// RunPerfFedStepParallel re-measures the packed engine fed step with the
// runtime allowed two OS threads, pairing with RunPerfFedStep's
// GOMAXPROCS-inherited rows: on a multi-core host the row shows what the
// in-process parties gain from real parallelism; on a 1-core host it pins
// that oversubscribing the scheduler does not cost the step anything.
func RunPerfFedStepParallel() []PerfResult {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	spec := data.Spec{Name: "bench-dense", Feats: 32, AvgNNZ: 32, Classes: 2, Train: 256, Test: 64}
	step := NewBlindFLStepperOpts(spec, 32, 4, StepperOpts{Options: engine.Options{Packed: true}})
	step() // warm-up outside the measurement
	return []PerfResult{perfRun("fedstep_packed", "engine_gomaxprocs2", 512, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			step()
		}
	})}
}
