package bench

import (
	"fmt"

	"blindfl/internal/attack"
	"blindfl/internal/core"
	"blindfl/internal/data"
	"blindfl/internal/model"
	"blindfl/internal/nn"
	"blindfl/internal/protocol"
	"blindfl/internal/splitlearn"
	"blindfl/internal/tensor"
)

// Fig9 regenerates the forward-activation label-attack comparison: the test
// AUC/accuracy Party A achieves per epoch when predicting labels from the
// activations it can compute locally, under (i) plain split learning,
// (ii) ModelSS without GradSS at ‖V_A‖ ∈ {1,5,10}·‖U_A‖, and (iii) BlindFL
// (predicting with X_A·U_A), against the honest model's metric.
func Fig9(quick bool) []*Table {
	var out []*Table
	out = append(out, fig9One("w8a", 2, quick))
	if !quick {
		// The news20 MLR federated curve needs tens of thousands of
		// Paillier operations per batch (20 output classes over ~2000
		// touched coordinates); it is paper-scale only.
		out = append(out, fig9One("news20", 20, quick))
	}
	return out
}

func fig9One(dataset string, classes int, quick bool) *Table {
	spec := data.MustSpec(dataset)
	spec.Train, spec.Test = 1200, 400
	spec.Margin = 6
	epochs := 10
	if quick {
		spec.Train, spec.Test = 600, 300
		epochs = 4
	}
	if classes == 20 && quick {
		spec.Feats = 2000
	}
	ds := data.Generate(spec, 41)

	slCfg := splitlearn.Config{LR: 0.1, Momentum: 0.9, Batch: 128, Epochs: epochs, Seed: 3}
	curves := []Series{}

	// NonFed-collocated reference (per-epoch metric via split with V=0 is
	// the full model metric already tracked by TrainLinear's FullMetric).
	plain := splitlearn.TrainLinear(ds, slCfg)
	curves = append(curves, Series{Name: "full-model", Values: plain.FullMetric})
	curves = append(curves, Series{Name: "split-learning-attack", Values: plain.AttackMetric})

	for _, scale := range []float64{1, 5, 10} {
		cfg := slCfg
		cfg.Variant = splitlearn.ModelSSNoGradSS
		cfg.VAScale = scale
		res := splitlearn.TrainLinear(ds, cfg)
		curves = append(curves, Series{
			Name:   fmt.Sprintf("modelSS-noGradSS-%gx", scale),
			Values: res.AttackMetric,
		})
	}

	// BlindFL: federated LR/MLR; Party A predicts with X_A·U_A per epoch.
	curves = append(curves, Series{Name: "blindfl-attack(X_A·U_A)", Values: fig9BlindFL(ds, classes, epochs, quick)})

	xs := make([]int, epochs)
	for i := range xs {
		xs[i] = i + 1
	}
	t := SeriesTable(fmt.Sprintf("Figure 9 (%s): label prediction from Party A's activations", dataset), "epoch", xs, curves)
	t.Note("paper shape: split-learning and modelSS-noGradSS attacks stay close to the full model; blindfl-attack stays at chance (0.5 AUC / 1/C accuracy)")
	return t
}

// fig9BlindFL trains a federated LR/MLR with per-epoch attack evaluation.
func fig9BlindFL(ds *data.Dataset, classes, epochs int, quick bool) []float64 {
	pa, pb := quickPipe(91)
	out := 1
	if classes > 2 {
		out = classes
	}
	cfg := core.Config{Out: out, LR: 0.1, Momentum: 0.9}
	inA, inB := ds.TrainA.NumCols(), ds.TrainB.NumCols()
	la := core.NewSparseMatMulA(pa, cfg, inA, inB)
	lb := core.NewSparseMatMulB(pb, cfg, inA, inB)
	bias := nn.NewBias(out)
	opt := nn.NewSGD(cfg.LR, cfg.Momentum, bias.Params())

	batch := 128
	var attackPerEpoch []float64
	for e := 0; e < epochs; e++ {
		for _, idx := range data.BatchIndices(ds.TrainA.Rows(), batch) {
			xA := ds.TrainA.Batch(idx).Sparse
			xB := ds.TrainB.Batch(idx).Sparse
			y := gatherInts(ds.TrainY, idx)
			var gradZ *tensor.Dense
			err := protocol.RunParties(pa, pb,
				func() { la.Forward(xA); la.Backward() },
				func() {
					z := lb.Forward(xB)
					logits := bias.Forward(z)
					var grad *tensor.Dense
					if classes == 2 {
						_, grad = nn.BCEWithLogits(logits, y)
					} else {
						_, grad = nn.SoftmaxCE(logits, y)
					}
					opt.ZeroGrad()
					gradZ = bias.Backward(grad)
					opt.Step()
					lb.Backward(gradZ)
				})
			if err != nil {
				panic(err)
			}
		}
		// Party A's attack: score the test set with its own piece U_A.
		scores := ds.TestA.Sparse.MatMul(la.DebugUA())
		if classes == 2 {
			attackPerEpoch = append(attackPerEpoch, attack.ActivationAUC(scores, ds.TestY))
		} else {
			attackPerEpoch = append(attackPerEpoch, attack.ActivationAccuracy(scores, ds.TestY))
		}
	}
	return attackPerEpoch
}

// Fig10 regenerates the backward-derivative label attack under split
// learning for WDL with 2–4 hidden layers above the embeddings.
func Fig10(quick bool) []*Table {
	var out []*Table
	for _, dataset := range []string{"a9a", "w8a"} {
		spec := data.MustSpec(dataset)
		spec.Train, spec.Test = 1000, 300
		spec.CatFields, spec.CatVocab = 4, 32 // WDL needs categorical fields;
		// the originals bucketize numeric features — the synthetic spec adds
		// equivalent fields directly.
		epochs := 6
		if quick {
			spec.Train = 500
			epochs = 3
		}
		ds := data.Generate(spec, 42)
		var curves []Series
		var xs []int
		for _, hiddens := range []int{2, 3, 4} {
			cfg := splitlearn.Config{LR: 0.1, Momentum: 0.9, Batch: 128, Epochs: epochs, Seed: 5}
			res := splitlearn.TrainWDLDerivativeLeak(ds, cfg, 8, 16, hiddens, attack.DerivativeLabelAccuracy)
			idx, vals := Downsample(res.AttackAccuracy, 12)
			xs = idx
			curves = append(curves, Series{Name: fmt.Sprintf("#hiddens=%d", hiddens), Values: vals})
		}
		t := SeriesTable(fmt.Sprintf("Figure 10 (%s, W&D): label prediction from ∇E_A under split learning", dataset),
			"iteration", xs, curves)
		t.Note("paper shape: attack accuracy climbs towards ≈1.0 regardless of depth; BlindFL never releases ∇E_A in plaintext (Party A only sees ⟦∇E_A⟧)")
		out = append(out, t)
	}
	return out
}

// Fig11 regenerates the weight/share comparison: after brief training, the
// share a party holds is uncorrelated with the true weights and an order of
// magnitude larger.
func Fig11(quick bool) []*Table {
	var out []*Table

	// w8a LR: W_A vs U_A.
	{
		spec := data.MustSpec("w8a")
		spec.Train, spec.Test = 600, 100
		epochs := 3
		if quick {
			epochs = 1
		}
		pa, pb := quickPipe(111)
		cfg := core.Config{Out: 1, LR: 0.05, Momentum: 0.9}
		inA, inB := spec.Feats/2, spec.Feats-spec.Feats/2
		ds := data.Generate(spec, 43)
		la := core.NewSparseMatMulA(pa, cfg, inA, inB)
		lb := core.NewSparseMatMulB(pb, cfg, inA, inB)
		bias := nn.NewBias(1)
		for e := 0; e < epochs; e++ {
			for _, idx := range data.BatchIndices(ds.TrainA.Rows(), 128) {
				y := gatherInts(ds.TrainY, idx)
				err := protocol.RunParties(pa, pb,
					func() { la.Forward(ds.TrainA.Batch(idx).Sparse); la.Backward() },
					func() {
						z := lb.Forward(ds.TrainB.Batch(idx).Sparse)
						_, grad := nn.BCEWithLogits(bias.Forward(z), y)
						lb.Backward(bias.Backward(grad))
					})
				if err != nil {
					panic(err)
				}
			}
		}
		wA := core.DebugSparseWeightsA(la, lb)
		out = append(out, fig11Table("Figure 11 (w8a, LR): W_A vs share U_A", wA, la.DebugUA()))
	}

	// a9a WDL: Q_A vs S_A.
	{
		spec := data.MustSpec("a9a")
		spec.Train, spec.Test = 400, 100
		spec.CatFields, spec.CatVocab = 4, 16
		ds := data.Generate(spec, 44)
		pa, pb := quickPipe(112)
		ecfg := core.EmbedConfig{
			Config: core.Config{Out: 4, LR: 0.05, Momentum: 0.9},
			VocabA: 16, VocabB: 16,
			FieldsA: ds.TrainA.Cat.Cols, FieldsB: ds.TrainB.Cat.Cols,
			Dim: 4,
		}
		var ea *core.EmbedMatMulA
		var eb *core.EmbedMatMulB
		if err := protocol.RunParties(pa, pb,
			func() { ea = core.NewEmbedMatMulA(pa, ecfg) },
			func() { eb = core.NewEmbedMatMulB(pb, ecfg) },
		); err != nil {
			panic(err)
		}
		steps := 4
		if quick {
			steps = 2
		}
		for s := 0; s < steps; s++ {
			idx := data.BatchIndices(ds.TrainA.Rows(), 64)[s%4]
			g := tensor.RandDense(pa.Rng, len(idx), 4, 0.05)
			if err := protocol.RunParties(pa, pb,
				func() { ea.Forward(ds.TrainA.Batch(idx).Cat); ea.Backward() },
				func() { eb.Forward(ds.TrainB.Batch(idx).Cat); eb.Backward(g) },
			); err != nil {
				panic(err)
			}
		}
		qA := core.DebugTableA(ea, eb)
		out = append(out, fig11Table("Figure 11 (a9a, W&D): Q_A vs share S_A", qA, ea.PieceSA()))
	}
	return out
}

func fig11Table(title string, truth, share *tensor.Dense) *Table {
	st := attack.CompareShares(truth, share)
	t := &Table{Title: title, Header: []string{"quantity", "value"}}
	t.Add("corr(share, truth)", fmt.Sprintf("%.4f", st.Correlation))
	t.Add("sign agreement", fmt.Sprintf("%.4f", st.SignAgreement))
	t.Add("max|truth|", fmt.Sprintf("%.3f", st.TrueMaxAbs))
	t.Add("max|share|", fmt.Sprintf("%.3f", st.ShareMaxAbs))
	// Sample coordinates like the paper's scatter plot.
	n := len(truth.Data)
	for _, i := range []int{0, n / 4, n / 2, 3 * n / 4, n - 1} {
		t.Add(fmt.Sprintf("coord %d (truth, share)", i),
			fmt.Sprintf("(%.4f, %.1f)", truth.Data[i], share.Data[i]))
	}
	t.Note("paper shape: the share is random and spread far wider than the truth — neither sign nor magnitude of any coordinate is recoverable")
	return t
}

// fig12Combos are the eight dataset/model pairs of Figure 12.
var fig12Combos = []struct {
	Dataset string
	Kind    model.Kind
}{
	{"a9a", model.LR},
	{"w8a", model.LR},
	{"connect-4", model.MLP},
	{"news20", model.MLR},
	{"higgs", model.LR},
	{"avazu-app", model.LR},
	{"avazu-app", model.WDL},
	{"industry", model.DLRM},
}

// Fig12 regenerates the lossless-property comparison: training-loss curves
// and final test metrics for BlindFL vs NonFed-collocated vs NonFed-PartyB.
// `only` restricts to named datasets (empty = all).
func Fig12(quick bool, only map[string]bool) []*Table {
	var out []*Table
	seed := int64(120)
	for _, combo := range fig12Combos {
		key := combo.Dataset + "/" + string(combo.Kind)
		if len(only) > 0 && !only[combo.Dataset] && !only[key] {
			continue
		}
		out = append(out, fig12One(combo.Dataset, combo.Kind, quick, seed))
		seed++
	}
	return out
}

func fig12One(dataset string, kind model.Kind, quick bool, seed int64) *Table {
	spec := data.MustSpec(dataset)
	h := model.DefaultHyper()
	if quick {
		spec.Train, spec.Test = 600, 200
		h.Epochs = 2
		if spec.Feats > 10000 {
			spec.Feats = 10000
		}
		if spec.CatVocab > 64 {
			spec.CatVocab = 64
		}
	} else {
		spec.Train, spec.Test = 1500, 500
		h.Epochs = 5
		if spec.CatVocab > 128 {
			spec.CatVocab = 128 // full-table HE2SS per step bounds the vocab
		}
	}
	ds := data.Generate(spec, seed)

	pa, pb := quickPipe(seed)
	fed, err := model.TrainFederated(kind, ds, h, pa, pb)
	if err != nil {
		panic(err)
	}
	co := model.TrainCollocated(kind, ds, h)
	onlyB := model.TrainPartyB(kind, ds, h)

	xs, fedLoss := Downsample(fed.Losses, 10)
	_, coLoss := Downsample(co.Losses, 10)
	_, pbLoss := Downsample(onlyB.Losses, 10)
	t := SeriesTable(
		fmt.Sprintf("Figure 12 (%s, %s): training loss", dataset, kind),
		"iteration", xs,
		[]Series{
			{Name: "BlindFL", Values: fedLoss},
			{Name: "NonFed-collocated", Values: coLoss},
			{Name: "NonFed-PartyB", Values: pbLoss},
		})
	t.Note("test %s: BlindFL %.4f | NonFed-collocated %.4f | NonFed-PartyB %.4f",
		fed.MetricName, fed.TestMetric, co.TestMetric, onlyB.TestMetric)
	t.Note("paper shape: BlindFL tracks NonFed-collocated and beats NonFed-PartyB")
	return t
}

// Fig15 is the fmnist convergence comparison of Appendix D.1.
func Fig15(quick bool) *Table {
	spec := data.MustSpec("fmnist")
	h := model.DefaultHyper()
	h.Hidden = []int{16}
	if quick {
		spec.Train, spec.Test = 400, 200
		spec.Feats = 196 // quarter-resolution images keep the dense HE cost down
		h.Epochs = 1
		h.Batch = 64
	} else {
		spec.Train, spec.Test = 1000, 400
		h.Epochs = 3
	}
	ds := data.Generate(spec, 151)
	pa, pb := quickPipe(151)
	fed, err := model.TrainFederated(model.MLP, ds, h, pa, pb)
	if err != nil {
		panic(err)
	}
	co := model.TrainCollocated(model.MLP, ds, h)
	onlyB := model.TrainPartyB(model.MLP, ds, h)
	xs, fedLoss := Downsample(fed.Losses, 10)
	_, coLoss := Downsample(co.Losses, 10)
	_, pbLoss := Downsample(onlyB.Losses, 10)
	t := SeriesTable("Figure 15 (fmnist, MLP): training loss", "iteration", xs,
		[]Series{
			{Name: "BlindFL", Values: fedLoss},
			{Name: "NonFed-collocated", Values: coLoss},
			{Name: "NonFed-PartyB", Values: pbLoss},
		})
	t.Note("test accuracy: BlindFL %.4f | NonFed-collocated %.4f | NonFed-PartyB %.4f",
		fed.TestMetric, co.TestMetric, onlyB.TestMetric)
	return t
}

func gatherInts(y []int, idx []int) []int {
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}
