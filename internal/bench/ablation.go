package bench

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"time"

	"blindfl/internal/hetensor"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// Ablations runs the design-choice studies called out in DESIGN.md §5.
// They quantify the individual decisions behind BlindFL's numbers rather
// than reproduce a specific paper table.
func Ablations(quick bool) []*Table {
	return []*Table{
		AblationMaskWidth(),
		AblationCipherCache(quick),
		AblationSparseCipherMatMul(quick),
		AblationDecryption(),
		AblationKeySize(quick),
		Traffic(),
	}
}

// AblationMaskWidth sweeps the HE2SS mask magnitude: wider masks hide the
// shares better (share/value ratio grows) at a small fixed-point
// reconstruction cost that stays far below model noise.
func AblationMaskWidth() *Table {
	skA, skB := protocol.TestKeys()
	t := &Table{
		Title:  "Ablation: HE2SS mask magnitude",
		Header: []string{"mask ±2^k", "max reconstruction error", "share/value magnitude"},
	}
	v := tensor.FromSlice(4, 4, []float64{
		0.5, -1.25, 2, -0.125, 3.5, 0, -2.75, 1,
		0.25, -0.5, 1.5, -3, 0.75, 2.25, -1, 0.1,
	})
	for _, k := range []uint{8, 12, 16, 20, 24, 28} {
		pa, pb, err := protocol.Pipe(skA, skB, int64(600+k))
		if err != nil {
			panic(err)
		}
		pa.MaskMag = math.Ldexp(1, int(k))
		pb.MaskMag = pa.MaskMag
		var shareA, shareB *tensor.Dense
		if err := protocol.RunParties(pa, pb, func() {
			c := hetensor.Encrypt(pa.PeerPK, v, 1)
			shareA = pa.HE2SSSend(c)
		}, func() {
			shareB = pb.HE2SSRecv()
		}); err != nil {
			panic(err)
		}
		rec := shareA.Add(shareB)
		errMax := rec.Sub(v).MaxAbs()
		ratio := shareB.MaxAbs() / v.MaxAbs()
		t.Add(fmt.Sprintf("2^%d", k), fmt.Sprintf("%.3g", errMax), fmt.Sprintf("%.3g", ratio))
	}
	t.Note("reconstruction stays exact to fixed-point tolerance at every width; hiding strength grows with the mask")
	return t
}

// AblationCipherCache compares BlindFL's cached-⟦V⟧ design (encrypt once,
// refresh only updated pieces) against re-encrypting the whole piece every
// forward — the communication/computation the paper credits for its dense
// advantage over per-iteration Beaver-triple generation.
func AblationCipherCache(quick bool) *Table {
	dim, out, batch := 256, 8, 64
	if quick {
		dim, batch = 128, 32
	}
	rng := rand.New(rand.NewSource(61))
	skA, _ := protocol.TestKeys()
	pk := &skA.PublicKey
	v := tensor.RandDense(rng, dim, out, 0.1)
	x := tensor.RandDense(rng, batch, dim, 1)

	// Cached: the forward is one plain·cipher matmul.
	enc := hetensor.Encrypt(pk, v, 1)
	start := time.Now()
	hetensor.MulPlainLeft(x, enc)
	cached := time.Since(start).Seconds()

	// Naive: re-encrypt V, then multiply.
	start = time.Now()
	enc2 := hetensor.Encrypt(pk, v, 1)
	hetensor.MulPlainLeft(x, enc2)
	naive := time.Since(start).Seconds()

	t := &Table{
		Title:  "Ablation: cached ⟦V⟧ vs re-encrypt per step (dense forward)",
		Header: []string{"variant", "seconds", "relative"},
	}
	t.Add("cached ⟦V⟧ (BlindFL)", fmt.Sprintf("%.3f", cached), "1.00×")
	t.Add("re-encrypt per step", fmt.Sprintf("%.3f", naive), fmt.Sprintf("%.2f×", naive/cached))
	t.Note("keeping ⟦V⟧ across iterations removes %d encryptions per forward", dim*out)
	return t
}

// AblationSparseCipherMatMul measures the plain·cipher matmul at several
// sparsity levels — the mechanism behind Table 5's sparse speedups.
func AblationSparseCipherMatMul(quick bool) *Table {
	dim, out, batch := 512, 4, 64
	if quick {
		dim, batch = 256, 32
	}
	rng := rand.New(rand.NewSource(62))
	skA, _ := protocol.TestKeys()
	enc := hetensor.Encrypt(&skA.PublicKey, tensor.RandDense(rng, dim, out, 0.1), 1)

	t := &Table{
		Title:  "Ablation: sparse vs dense plain·cipher matmul",
		Header: []string{"nnz/row", "sparsity", "seconds", "speedup vs dense"},
	}
	dense := tensor.RandDense(rng, batch, dim, 1)
	start := time.Now()
	hetensor.MulPlainLeft(dense, enc)
	denseSec := time.Since(start).Seconds()
	t.Add(fmt.Sprintf("%d", dim), "0%", fmt.Sprintf("%.3f", denseSec), "1.0×")

	for _, nnz := range []int{64, 16, 4} {
		x := tensor.RandCSR(rng, batch, dim, nnz)
		start := time.Now()
		hetensor.MulPlainLeftCSR(x, enc)
		sec := time.Since(start).Seconds()
		t.Add(fmt.Sprintf("%d", nnz), fmt.Sprintf("%.1f%%", x.Sparsity()*100),
			fmt.Sprintf("%.3f", sec), fmt.Sprintf("%.1f×", denseSec/sec))
	}
	t.Note("homomorphic work scales with non-zeros; data outsourcing cannot exploit this because shares must look dense")
	return t
}

// AblationDecryption compares CRT and textbook decryption.
func AblationDecryption() *Table {
	skA, _ := protocol.TestKeys()
	c, err := skA.PublicKey.Encrypt(paillier.Rand, bigOne())
	if err != nil {
		panic(err)
	}
	const iters = 50
	start := time.Now()
	for i := 0; i < iters; i++ {
		skA.Decrypt(c)
	}
	crt := time.Since(start).Seconds() / iters
	start = time.Now()
	for i := 0; i < iters; i++ {
		skA.DecryptTextbook(c)
	}
	textbook := time.Since(start).Seconds() / iters

	t := &Table{
		Title:  "Ablation: CRT vs textbook Paillier decryption (512-bit key)",
		Header: []string{"variant", "seconds/op", "relative"},
	}
	t.Add("CRT (BlindFL)", fmt.Sprintf("%.6f", crt), "1.00×")
	t.Add("textbook", fmt.Sprintf("%.6f", textbook), fmt.Sprintf("%.2f×", textbook/crt))
	return t
}

// AblationKeySize sweeps the Paillier modulus size over the three core ops.
func AblationKeySize(quick bool) *Table {
	sizes := []int{256, 512, 1024}
	if quick {
		sizes = []int{256, 512}
	}
	t := &Table{
		Title:  "Ablation: Paillier key size",
		Header: []string{"bits", "encrypt (ms)", "decrypt (ms)", "scalar-mul (ms)"},
	}
	for _, bits := range sizes {
		sk, err := paillier.GenerateKey(paillier.Rand, bits)
		if err != nil {
			panic(err)
		}
		c, _ := sk.PublicKey.Encrypt(paillier.Rand, bigOne())
		const iters = 20
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := sk.PublicKey.Encrypt(paillier.Rand, bigOne()); err != nil {
				panic(err)
			}
		}
		enc := time.Since(start).Seconds() / iters * 1000
		start = time.Now()
		for i := 0; i < iters; i++ {
			sk.Decrypt(c)
		}
		dec := time.Since(start).Seconds() / iters * 1000
		s := hetensor.Codec.Encode(1.2345, 1)
		start = time.Now()
		for i := 0; i < iters; i++ {
			sk.PublicKey.MulPlain(c, s)
		}
		mul := time.Since(start).Seconds() / iters * 1000
		t.Add(fmt.Sprintf("%d", bits), fmt.Sprintf("%.3f", enc), fmt.Sprintf("%.3f", dec), fmt.Sprintf("%.3f", mul))
	}
	t.Note("tests use 512-bit keys; production should use ≥2048 (cost grows ~cubically)")
	return t
}

func bigOne() *big.Int { return big.NewInt(12345) }
