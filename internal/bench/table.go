// Package bench regenerates every table and figure of the paper's
// evaluation (Sec. 7 and Appendix D) on the synthetic dataset stand-ins.
// Each experiment returns printable Tables; the blindfl-bench command and
// the top-level benchmark suite are thin wrappers around these functions.
//
// Absolute times differ from the paper (pure-Go big.Int vs GMP+OpenMP on
// two 96-core servers); the shapes the experiments check are relative:
// who wins, by what factor, and where the crossovers fall.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable result grid.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is a named sequence of values (one curve of a figure).
type Series struct {
	Name   string
	Values []float64
}

// SeriesTable renders several curves sampled at the same points.
func SeriesTable(title, xName string, xs []int, series []Series) *Table {
	t := &Table{Title: title, Header: append([]string{xName}, names(series)...)}
	for i, x := range xs {
		row := []string{fmt.Sprintf("%d", x)}
		for _, s := range series {
			if i < len(s.Values) {
				row = append(row, fmt.Sprintf("%.4f", s.Values[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Add(row...)
	}
	return t
}

func names(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}

// Downsample keeps ≤ n evenly spaced points of a curve (for printing loss
// curves without thousands of rows).
func Downsample(v []float64, n int) (idx []int, out []float64) {
	if len(v) <= n {
		idx = make([]int, len(v))
		for i := range v {
			idx[i] = i
		}
		return idx, v
	}
	for i := 0; i < n; i++ {
		j := i * (len(v) - 1) / (n - 1)
		idx = append(idx, j)
		out = append(out, v[j])
	}
	return idx, out
}
