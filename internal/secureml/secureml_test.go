package secureml

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"blindfl/internal/nn"
	"blindfl/internal/paillier"
	"blindfl/internal/tensor"
)

var (
	keyOnce sync.Once
	key0    *paillier.PrivateKey
	key1    *paillier.PrivateKey
)

func keys() (*paillier.PrivateKey, *paillier.PrivateKey) {
	keyOnce.Do(func() {
		var err error
		key0, err = paillier.GenerateKey(paillier.Rand, 512)
		if err != nil {
			panic(err)
		}
		key1, err = paillier.GenerateKey(paillier.Rand, 512)
		if err != nil {
			panic(err)
		}
	})
	return key0, key1
}

func TestShareReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := tensor.RandDense(rng, 4, 3, 10)
	r := Encode(d)
	s0, s1 := Share(rng, r)
	got := Decode(Reconstruct(s0, s1), 1)
	if !got.Equal(d, 1e-3) {
		t.Fatal("share/reconstruct mismatch")
	}
	// Single shares must be unrelated to the plaintext.
	one := Decode(s0, 1)
	if one.Equal(d, 1) {
		t.Fatal("single share resembles plaintext")
	}
}

func TestRingMatMulMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := tensor.RandDense(rng, 3, 4, 2)
	b := tensor.RandDense(rng, 4, 2, 2)
	got := Decode(Encode(a).MatMul(Encode(b)), 2)
	if !got.Equal(a.MatMul(b), 1e-2) {
		t.Fatal("ring matmul mismatch")
	}
}

func TestDealerTriple(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := GenTripleDealer(rng, 3, 4, 2)
	a := Reconstruct(tr.A0, tr.A1)
	b := Reconstruct(tr.B0, tr.B1)
	c := Reconstruct(tr.C0, tr.C1)
	want := a.MatMul(b)
	for i := range c.V {
		if c.V[i] != want.V[i] {
			t.Fatal("dealer triple C != A·B")
		}
	}
}

func TestPaillierTriple(t *testing.T) {
	sk0, sk1 := keys()
	rng := rand.New(rand.NewSource(4))
	tr := GenTriplePaillier(rng, sk0, sk1, 2, 3, 2)
	a := Reconstruct(tr.A0, tr.A1)
	b := Reconstruct(tr.B0, tr.B1)
	c := Reconstruct(tr.C0, tr.C1)
	want := a.MatMul(b)
	for i := range c.V {
		if c.V[i] != want.V[i] {
			t.Fatalf("HE triple C != A·B at %d: %d vs %d", i, c.V[i], want.V[i])
		}
	}
}

func TestBeaverMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.RandDense(rng, 5, 6, 2)
	w := tensor.RandDense(rng, 6, 3, 2)
	x0, x1 := Share(rng, Encode(x))
	w0, w1 := Share(rng, Encode(w))
	tr := GenTripleDealer(rng, 5, 6, 3)
	z0, z1 := MatMulBeaver(x0, x1, w0, w1, tr)
	got := Decode(Reconstruct(z0, z1), 2)
	if !got.Equal(x.MatMul(w), 1e-2) {
		t.Fatal("Beaver matmul mismatch")
	}
}

func TestBeaverMatMulWithHETriple(t *testing.T) {
	sk0, sk1 := keys()
	rng := rand.New(rand.NewSource(6))
	x := tensor.RandDense(rng, 3, 4, 2)
	w := tensor.RandDense(rng, 4, 2, 2)
	x0, x1 := Share(rng, Encode(x))
	w0, w1 := Share(rng, Encode(w))
	tr := GenTriplePaillier(rng, sk0, sk1, 3, 4, 2)
	z0, z1 := MatMulBeaver(x0, x1, w0, w1, tr)
	got := Decode(Reconstruct(z0, z1), 2)
	if !got.Equal(x.MatMul(w), 1e-2) {
		t.Fatal("Beaver matmul with HE triple mismatch")
	}
}

func TestTruncationAfterProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.RandDense(rng, 4, 4, 3)
	w := tensor.RandDense(rng, 4, 2, 3)
	x0, x1 := Share(rng, Encode(x))
	w0, w1 := Share(rng, Encode(w))
	tr := GenTripleDealer(rng, 4, 4, 2)
	z0, z1 := MatMulBeaver(x0, x1, w0, w1, tr)
	got := Decode(Reconstruct(z0.Truncate(), z1.Truncate()), 1)
	if !got.Equal(x.MatMul(w), 1e-2) {
		t.Fatal("truncated product mismatch")
	}
}

func TestLogisticTrainingLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 300
	x := tensor.NewDense(n, 4)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < 4; j++ {
			v := rng.NormFloat64()
			x.Set(i, j, v)
			s += v * float64(j+1) / 4
		}
		if s > 0 {
			y[i] = 1
		}
	}
	sys := NewSystem(rng, ClientAided, x, y, 1, nil, nil)
	w := sys.TrainLogistic(8, 32, 0.3)
	logits := x.MatMul(w)
	if auc := nn.AUC(nn.Scores(logits), y); auc < 0.9 {
		t.Fatalf("SecureML LR AUC = %v", auc)
	}
}

func TestOutsourcedSharesAreDense(t *testing.T) {
	// The defining limitation: a sparse matrix becomes dense once shared.
	rng := rand.New(rand.NewSource(9))
	sp := tensor.RandCSR(rng, 10, 50, 2)
	s0, _ := Share(rng, Encode(sp.ToDense()))
	zeros := 0
	for _, v := range s0.V {
		if v == 0 {
			zeros++
		}
	}
	if zeros > 2 {
		t.Fatalf("%d zero entries in a share of 500; shares must look dense/random", zeros)
	}
}

func TestEncodeDecodePrecision(t *testing.T) {
	vals := []float64{0, 1, -1, 0.5, -0.125, 100.25, -77.77}
	d := tensor.FromSlice(1, len(vals), vals)
	got := Decode(Encode(d), 1)
	for i := range vals {
		if math.Abs(got.Data[i]-vals[i]) > 1.0/(1<<12) {
			t.Fatalf("F=13 precision: %v -> %v", vals[i], got.Data[i])
		}
	}
}
