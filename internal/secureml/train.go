package secureml

import (
	"math/rand"

	"blindfl/internal/nn"
	"blindfl/internal/paillier"
	"blindfl/internal/tensor"
)

// Mode selects how Beaver triples are produced.
type Mode int

// Triple-generation modes.
const (
	ClientAided Mode = iota // dealer-generated, no cryptography
	HEGenerated             // two-party Paillier generation
)

// System is a two-server SecureML deployment for a linear model: features
// and weights live only as shares. It exists for functional verification
// and the Table 5 timing runs.
type System struct {
	Mode Mode
	rng  *rand.Rand
	sk0  *paillier.PrivateKey
	sk1  *paillier.PrivateKey

	n, d, out int
	x0, x1    *Ring // outsourced feature shares (n×d), scale 1
	w0, w1    *Ring // weight shares (d×out), scale 1
	y         []int
}

// NewSystem outsources a dataset: X is encoded, shared and (notably) stored
// dense regardless of its original sparsity. Keys are only needed in
// HEGenerated mode.
func NewSystem(rng *rand.Rand, mode Mode, x *tensor.Dense, y []int, out int,
	sk0, sk1 *paillier.PrivateKey) *System {

	s := &System{Mode: mode, rng: rng, sk0: sk0, sk1: sk1, n: x.Rows, d: x.Cols, out: out, y: y}
	s.x0, s.x1 = Share(rng, Encode(x))
	w := tensor.RandDense(rng, x.Cols, out, 0.1)
	s.w0, s.w1 = Share(rng, Encode(w))
	return s
}

// triple produces a Beaver triple for an (n×d)·(d×m) product in the
// configured mode.
func (s *System) triple(n, d, m int) *Triple {
	if s.Mode == ClientAided {
		return GenTripleDealer(s.rng, n, d, m)
	}
	return GenTriplePaillier(s.rng, s.sk0, s.sk1, n, d, m)
}

// ForwardBatch computes shares of the batch logits Z = X_B·W (scale 1 after
// truncation). This is the operation Table 5 times.
func (s *System) ForwardBatch(rows []int) (*Ring, *Ring) {
	xb0, xb1 := gatherRing(s.x0, rows), gatherRing(s.x1, rows)
	t := s.triple(len(rows), s.d, s.out)
	z0, z1 := MatMulBeaver(xb0, xb1, s.w0, s.w1, t)
	return z0.Truncate(), z1.Truncate()
}

// BackwardBatch computes shares of ∇W = X_Bᵀ·∇Z given gradient shares and
// applies the SGD update with learning rate lr.
func (s *System) BackwardBatch(rows []int, g0, g1 *Ring, lr float64) {
	xb0, xb1 := gatherRing(s.x0, rows), gatherRing(s.x1, rows)
	xt0, xt1 := xb0.Transpose(), xb1.Transpose()
	t := s.triple(s.d, len(rows), s.out)
	gw0, gw1 := MatMulBeaver(xt0, xt1, g0, g1, t)
	gw0, gw1 = gw0.Truncate(), gw1.Truncate()
	// W −= lr·∇W on each share; lr is public.
	lrFix := Codec.EncodeU64(lr, 1)
	for i := range s.w0.V {
		s.w0.V[i] -= Codec.TruncateU64(lrFix * gw0.V[i])
		s.w1.V[i] -= Codec.TruncateU64(lrFix * gw1.V[i])
	}
}

// TrainLogistic runs mini-batch logistic regression. The sigmoid/loss step
// reconstructs the logits in the clear — standing in for SecureML's garbled
// circuit, which is outside the matmul-focused scope of the reproduction —
// then re-shares the gradient. Returns the final plaintext weights for
// evaluation.
func (s *System) TrainLogistic(epochs, batch int, lr float64) *tensor.Dense {
	for e := 0; e < epochs; e++ {
		for lo := 0; lo < s.n; lo += batch {
			hi := lo + batch
			if hi > s.n {
				hi = s.n
			}
			rows := seq(lo, hi)
			z0, z1 := s.ForwardBatch(rows)
			logits := Decode(Reconstruct(z0, z1), 1)
			yb := make([]int, len(rows))
			for i, r := range rows {
				yb[i] = s.y[r]
			}
			_, grad := nn.BCEWithLogits(logits, yb)
			g0, g1 := Share(s.rng, Encode(grad))
			s.BackwardBatch(rows, g0, g1, lr)
		}
	}
	return s.Weights()
}

// Weights reconstructs the current model (evaluation only).
func (s *System) Weights() *tensor.Dense {
	return Decode(Reconstruct(s.w0, s.w1), 1)
}

func gatherRing(r *Ring, rows []int) *Ring {
	out := NewRing(len(rows), r.Cols)
	for i, src := range rows {
		copy(out.V[i*r.Cols:(i+1)*r.Cols], r.V[src*r.Cols:(src+1)*r.Cols])
	}
	return out
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
