// Package secureml implements the MPC baseline of the paper's efficiency
// comparison (Table 5): SecureML (Mohassel & Zhang, S&P'17), which
// outsources both features and model as additive secret shares over the
// ring Z_2^64 and multiplies with Beaver matrix triples.
//
// Two triple-generation modes are provided, matching the paper's two
// columns:
//
//   - Paillier-based two-party generation (the "SecureML" column): the
//     cross terms A₀·B₁ and A₁·B₀ are computed under homomorphic
//     encryption, which dominates the per-batch cost;
//   - client-aided generation (the "SecureML (Client-aided)" column): a
//     non-colluding dealer samples the triple in plaintext, so an iteration
//     involves no cryptography at all.
//
// Data outsourcing makes every matrix dense: shares of a sparse matrix must
// hide which entries are zero, so the servers pay for the full
// dimensionality — the effect BlindFL's Table 5 quantifies.
//
// The non-linear activations (which real SecureML evaluates with garbled
// circuits) are outside the scope of the timing comparison — the paper
// explicitly benchmarks "only the time cost of matrix multiplication"; the
// training helper here reconstructs logits for the loss in the clear and is
// used for functional tests only.
package secureml

import (
	"math/big"
	"math/rand"

	"blindfl/internal/fixedpoint"
	"blindfl/internal/paillier"
	"blindfl/internal/parallel"
	"blindfl/internal/tensor"
)

// Codec is SecureML's fixed-point codec: 13 fractional bits, as in the
// original paper, leaving headroom for one multiplication in Z_2^64.
var Codec = fixedpoint.Codec{F: 13}

// ringOffset = 2¹⁹² shifts masked cross-term plaintexts into the positive
// range of Z_N without changing their value mod 2⁶⁴.
var ringOffset = new(big.Int).Lsh(big.NewInt(1), 192)

// Ring is a rows×cols matrix over Z_2^64.
type Ring struct {
	Rows, Cols int
	V          []uint64
}

// NewRing allocates a zeroed ring matrix.
func NewRing(rows, cols int) *Ring {
	return &Ring{Rows: rows, Cols: cols, V: make([]uint64, rows*cols)}
}

// Encode converts a float matrix into the ring at scale 1.
func Encode(d *tensor.Dense) *Ring {
	r := NewRing(d.Rows, d.Cols)
	for i, v := range d.Data {
		r.V[i] = Codec.EncodeU64(v, 1)
	}
	return r
}

// Decode converts a ring matrix back to floats at the given scale.
func Decode(r *Ring, scale uint) *tensor.Dense {
	d := tensor.NewDense(r.Rows, r.Cols)
	for i, v := range r.V {
		d.Data[i] = Codec.DecodeU64(v, scale)
	}
	return d
}

// Add returns r + o.
func (r *Ring) Add(o *Ring) *Ring {
	out := NewRing(r.Rows, r.Cols)
	for i := range r.V {
		out.V[i] = r.V[i] + o.V[i]
	}
	return out
}

// Sub returns r − o.
func (r *Ring) Sub(o *Ring) *Ring {
	out := NewRing(r.Rows, r.Cols)
	for i := range r.V {
		out.V[i] = r.V[i] - o.V[i]
	}
	return out
}

// MatMul returns r·o over the ring.
func (r *Ring) MatMul(o *Ring) *Ring {
	if r.Cols != o.Rows {
		panic("secureml: MatMul dim mismatch")
	}
	out := NewRing(r.Rows, o.Cols)
	parallel.For(r.Rows, func(i int) {
		orow := out.V[i*o.Cols : (i+1)*o.Cols]
		rrow := r.V[i*r.Cols : (i+1)*r.Cols]
		for k, a := range rrow {
			if a == 0 {
				continue
			}
			brow := o.V[k*o.Cols : (k+1)*o.Cols]
			for j, b := range brow {
				orow[j] += a * b
			}
		}
	})
	return out
}

// Transpose returns rᵀ.
func (r *Ring) Transpose() *Ring {
	out := NewRing(r.Cols, r.Rows)
	for i := 0; i < r.Rows; i++ {
		for j := 0; j < r.Cols; j++ {
			out.V[j*r.Rows+i] = r.V[i*r.Cols+j]
		}
	}
	return out
}

// Truncate arithmetically shifts every entry right by F bits, reducing the
// scale by one (SecureML's local-share truncation).
func (r *Ring) Truncate() *Ring {
	out := NewRing(r.Rows, r.Cols)
	for i, v := range r.V {
		out.V[i] = Codec.TruncateU64(v)
	}
	return out
}

// Share splits a ring matrix into two additive shares.
func Share(rng *rand.Rand, r *Ring) (*Ring, *Ring) {
	s0 := NewRing(r.Rows, r.Cols)
	s1 := NewRing(r.Rows, r.Cols)
	for i, v := range r.V {
		s0.V[i] = rng.Uint64()
		s1.V[i] = v - s0.V[i]
	}
	return s0, s1
}

// Reconstruct adds two shares back together.
func Reconstruct(s0, s1 *Ring) *Ring { return s0.Add(s1) }

// Triple is a Beaver matrix triple for the product shape (n×d)·(d×m):
// C = A·B with every matrix additively shared between the two servers.
type Triple struct {
	A0, A1 *Ring // n×d
	B0, B1 *Ring // d×m
	C0, C1 *Ring // n×m
}

// GenTripleDealer generates a triple at a trusted dealer (the client-aided
// mode): pure plaintext sampling and one ring matmul.
func GenTripleDealer(rng *rand.Rand, n, d, m int) *Triple {
	a := NewRing(n, d)
	b := NewRing(d, m)
	for i := range a.V {
		a.V[i] = rng.Uint64()
	}
	for i := range b.V {
		b.V[i] = rng.Uint64()
	}
	c := a.MatMul(b)
	t := &Triple{}
	t.A0, t.A1 = Share(rng, a)
	t.B0, t.B1 = Share(rng, b)
	t.C0, t.C1 = Share(rng, c)
	return t
}

// GenTriplePaillier generates a triple with the two-party HE protocol:
// each server samples its own A_i, B_i; the cross terms A₀·B₁ and A₁·B₀
// are computed homomorphically (server i encrypts its B, the peer
// multiplies by its A and masks). This is the cryptographic cost that makes
// non-aided SecureML slow, and it is executed for real here: d·m
// encryptions plus n·d·m homomorphic multiply-accumulates per cross term.
func GenTriplePaillier(rng *rand.Rand, sk0, sk1 *paillier.PrivateKey, n, d, m int) *Triple {
	t := &Triple{A0: NewRing(n, d), A1: NewRing(n, d), B0: NewRing(d, m), B1: NewRing(d, m)}
	for i := range t.A0.V {
		t.A0.V[i] = rng.Uint64()
		t.A1.V[i] = rng.Uint64()
	}
	for i := range t.B0.V {
		t.B0.V[i] = rng.Uint64()
		t.B1.V[i] = rng.Uint64()
	}
	// C = A·B = A0B0 + A0B1 + A1B0 + A1B1. Local terms stay local; cross
	// terms are secret-shared via HE.
	x01a, x01b := crossTermHE(rng, sk1, t.A0, t.B1) // shares of A0·B1
	x10a, x10b := crossTermHE(rng, sk0, t.A1, t.B0) // shares of A1·B0 (roles swapped)
	t.C0 = t.A0.MatMul(t.B0).Add(x01a).Add(x10b)
	t.C1 = t.A1.MatMul(t.B1).Add(x01b).Add(x10a)
	return t
}

// crossTermHE computes additive shares of A·B where A is held by the
// "multiplier" party and B by the key owner: the owner encrypts B under its
// key, the multiplier homomorphically computes ⟦A·B − R⟧ for a random mask
// R and returns it for decryption. Returns (multiplier's share R, owner's
// share A·B − R).
func crossTermHE(rng *rand.Rand, owner *paillier.PrivateKey, a, b *Ring) (*Ring, *Ring) {
	pk := &owner.PublicKey
	// Owner encrypts every entry of B.
	encB := make([]*paillier.Ciphertext, len(b.V))
	parallel.For(len(b.V), func(i int) {
		c, err := pk.Encrypt(paillier.Rand, new(big.Int).SetUint64(b.V[i]))
		if err != nil {
			panic(err)
		}
		encB[i] = c
	})
	// Multiplier computes ⟦A·B⟧ row by row and masks it.
	n, d, m := a.Rows, a.Cols, b.Cols
	mask := NewRing(n, m)
	ownerShare := NewRing(n, m)
	parallel.For(n, func(i int) {
		for j := 0; j < m; j++ {
			acc := &paillier.Ciphertext{C: big.NewInt(1)} // ⟦0⟧
			for k := 0; k < d; k++ {
				aik := a.V[i*d+k]
				if aik == 0 {
					continue
				}
				acc = pk.AddCipher(acc, pk.MulPlain(encB[k*m+j], new(big.Int).SetUint64(aik)))
			}
			r := rng.Uint64()
			mask.V[i*m+j] = r
			// ⟦A·B − r + 2¹⁹²⟧: the 2¹⁹² offset (a multiple of 2⁶⁴, far
			// above any attainable |A·B − r|) keeps the plaintext positive
			// in Z_N so that reducing the decryption mod 2⁶⁴ yields exactly
			// (A·B − r) mod 2⁶⁴.
			off := new(big.Int).Sub(ringOffset, new(big.Int).SetUint64(r))
			masked := pk.AddPlain(acc, off)
			dec := owner.Decrypt(masked)
			ownerShare.V[i*m+j] = dec.Uint64()
		}
	})
	return mask, ownerShare
}

// MatMulBeaver multiplies secret-shared X (n×d, scale 1) by secret-shared
// W (d×m, scale 1) using a triple, returning shares of X·W at scale 2
// (callers truncate). Both servers' computation runs here back to back,
// which is how a two-server deployment behaves on one machine.
func MatMulBeaver(x0, x1, w0, w1 *Ring, t *Triple) (*Ring, *Ring) {
	// Open E = X − A and F = W − B.
	e := x0.Sub(t.A0).Add(x1.Sub(t.A1))
	f := w0.Sub(t.B0).Add(w1.Sub(t.B1))
	// Z_i = i·E·F + E·B_i + A_i·F + C_i.
	ef := e.MatMul(f)
	z0 := e.MatMul(t.B0).Add(t.A0.MatMul(f)).Add(t.C0)
	z1 := ef.Add(e.MatMul(t.B1)).Add(t.A1.MatMul(f)).Add(t.C1)
	return z0, z1
}
