package tensor

import (
	"fmt"
	"math/rand"
	"sort"
)

// CSR is a compressed sparse row matrix. RowPtr has Rows+1 entries; the
// non-zeros of row i are ColIdx[RowPtr[i]:RowPtr[i+1]] with values
// Val[RowPtr[i]:RowPtr[i+1]], column indices strictly increasing within a row.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NewCSR builds an empty CSR with capacity hint nnz.
func NewCSR(rows, cols, nnz int) *CSR {
	return &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int, 1, rows+1),
		ColIdx: make([]int, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
}

// AppendRow adds the next row given parallel column/value slices. Columns
// need not be sorted; they are sorted here. Rows must be appended in order.
func (c *CSR) AppendRow(cols []int, vals []float64) {
	if len(cols) != len(vals) {
		panic("tensor: AppendRow len mismatch")
	}
	if len(c.RowPtr) > c.Rows {
		panic("tensor: AppendRow past declared Rows")
	}
	type cv struct {
		c int
		v float64
	}
	pairs := make([]cv, len(cols))
	for i := range cols {
		if cols[i] < 0 || cols[i] >= c.Cols {
			panic(fmt.Sprintf("tensor: AppendRow col %d out of range [0,%d)", cols[i], c.Cols))
		}
		pairs[i] = cv{cols[i], vals[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].c < pairs[j].c })
	for _, p := range pairs {
		c.ColIdx = append(c.ColIdx, p.c)
		c.Val = append(c.Val, p.v)
	}
	c.RowPtr = append(c.RowPtr, len(c.ColIdx))
}

// NNZ returns the number of stored non-zeros.
func (c *CSR) NNZ() int { return len(c.Val) }

// RowNNZ returns the column indices and values of row i as views.
func (c *CSR) RowNNZ(i int) ([]int, []float64) {
	lo, hi := c.RowPtr[i], c.RowPtr[i+1]
	return c.ColIdx[lo:hi], c.Val[lo:hi]
}

// ToDense materializes the matrix.
func (c *CSR) ToDense() *Dense {
	d := NewDense(c.Rows, c.Cols)
	for i := 0; i < c.Rows; i++ {
		cols, vals := c.RowNNZ(i)
		row := d.Row(i)
		for k, j := range cols {
			row[j] = vals[k]
		}
	}
	return d
}

// DenseToCSR sparsifies a dense matrix, keeping entries with |v| > 0.
func DenseToCSR(d *Dense) *CSR {
	c := NewCSR(d.Rows, d.Cols, 0)
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		var cols []int
		var vals []float64
		for j, v := range row {
			if v != 0 {
				cols = append(cols, j)
				vals = append(vals, v)
			}
		}
		c.AppendRow(cols, vals)
	}
	return c
}

// MatMul returns c·w where w is dense cols×n. Only non-zeros are visited.
func (c *CSR) MatMul(w *Dense) *Dense {
	if c.Cols != w.Rows {
		panic(fmt.Sprintf("tensor: CSR MatMul inner dim mismatch %d×%d · %d×%d", c.Rows, c.Cols, w.Rows, w.Cols))
	}
	out := NewDense(c.Rows, w.Cols)
	for i := 0; i < c.Rows; i++ {
		cols, vals := c.RowNNZ(i)
		orow := out.Row(i)
		for k, j := range cols {
			a := vals[k]
			wrow := w.Row(j)
			for t, b := range wrow {
				orow[t] += a * b
			}
		}
	}
	return out
}

// TransposeMatMul returns cᵀ·g where g is dense rows×n; result cols×n.
// Used for the sparse gradient ∇W = Xᵀ∇Z.
func (c *CSR) TransposeMatMul(g *Dense) *Dense {
	if c.Rows != g.Rows {
		panic(fmt.Sprintf("tensor: CSR TransposeMatMul outer dim mismatch %d×%d ᵀ· %d×%d", c.Rows, c.Cols, g.Rows, g.Cols))
	}
	out := NewDense(c.Cols, g.Cols)
	for i := 0; i < c.Rows; i++ {
		cols, vals := c.RowNNZ(i)
		grow := g.Row(i)
		for k, j := range cols {
			a := vals[k]
			dst := out.Row(j)
			for t, b := range grow {
				dst[t] += a * b
			}
		}
	}
	return out
}

// SliceRows returns rows [lo, hi) as a new CSR.
func (c *CSR) SliceRows(lo, hi int) *CSR {
	if lo < 0 || hi > c.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: CSR SliceRows [%d,%d) of %d rows", lo, hi, c.Rows))
	}
	out := NewCSR(hi-lo, c.Cols, c.RowPtr[hi]-c.RowPtr[lo])
	for i := lo; i < hi; i++ {
		cols, vals := c.RowNNZ(i)
		out.AppendRow(cols, vals)
	}
	return out
}

// GatherRows returns the CSR whose i-th row is row idx[i] of c.
func (c *CSR) GatherRows(idx []int) *CSR {
	out := NewCSR(len(idx), c.Cols, 0)
	for _, r := range idx {
		cols, vals := c.RowNNZ(r)
		out.AppendRow(cols, vals)
	}
	return out
}

// SliceCols returns the column range [lo, hi) as a new CSR with Cols = hi−lo.
func (c *CSR) SliceCols(lo, hi int) *CSR {
	if lo < 0 || hi > c.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: CSR SliceCols [%d,%d) of %d cols", lo, hi, c.Cols))
	}
	out := NewCSR(c.Rows, hi-lo, 0)
	for i := 0; i < c.Rows; i++ {
		cols, vals := c.RowNNZ(i)
		var nc []int
		var nv []float64
		for k, j := range cols {
			if j >= lo && j < hi {
				nc = append(nc, j-lo)
				nv = append(nv, vals[k])
			}
		}
		out.AppendRow(nc, nv)
	}
	return out
}

// Sparsity returns the fraction of zero entries.
func (c *CSR) Sparsity() float64 {
	total := c.Rows * c.Cols
	if total == 0 {
		return 0
	}
	return 1 - float64(c.NNZ())/float64(total)
}

// RandCSR generates a random rows×cols CSR with approximately nnzPerRow
// non-zeros per row, values uniform in [-1, 1).
func RandCSR(rng *rand.Rand, rows, cols, nnzPerRow int) *CSR {
	if nnzPerRow > cols {
		nnzPerRow = cols
	}
	c := NewCSR(rows, cols, rows*nnzPerRow)
	for i := 0; i < rows; i++ {
		seen := make(map[int]bool, nnzPerRow)
		jcols := make([]int, 0, nnzPerRow)
		vals := make([]float64, 0, nnzPerRow)
		for len(jcols) < nnzPerRow {
			j := rng.Intn(cols)
			if seen[j] {
				continue
			}
			seen[j] = true
			jcols = append(jcols, j)
			vals = append(vals, rng.Float64()*2-1)
		}
		c.AppendRow(jcols, vals)
	}
	return c
}
