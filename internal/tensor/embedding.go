package tensor

import "fmt"

// IntMatrix is a batch×fields matrix of categorical indices. Entry (i, f) is
// the category of field f for instance i, indexing into that field's region
// of a shared embedding table.
type IntMatrix struct {
	Rows, Cols int
	Data       []int
}

// NewIntMatrix allocates a zeroed rows×cols index matrix.
func NewIntMatrix(rows, cols int) *IntMatrix {
	return &IntMatrix{Rows: rows, Cols: cols, Data: make([]int, rows*cols)}
}

// At returns the index at (i, j).
func (m *IntMatrix) At(i, j int) int { return m.Data[i*m.Cols+j] }

// Set writes the index at (i, j).
func (m *IntMatrix) Set(i, j, v int) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *IntMatrix) Row(i int) []int { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// GatherRows returns the IntMatrix whose i-th row is m.Row(idx[i]).
func (m *IntMatrix) GatherRows(idx []int) *IntMatrix {
	out := NewIntMatrix(len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// Lookup implements E = lkup(Q, X): for each instance i, the embeddings of
// its categorical fields are concatenated, so E is batch×(fields·dim) given
// the vocab×dim table Q. Indices must lie in [0, vocab).
func Lookup(q *Dense, x *IntMatrix) *Dense {
	dim := q.Cols
	out := NewDense(x.Rows, x.Cols*dim)
	for i := 0; i < x.Rows; i++ {
		dst := out.Row(i)
		for f, idx := range x.Row(i) {
			if idx < 0 || idx >= q.Rows {
				panic(fmt.Sprintf("tensor: Lookup index %d out of vocab %d", idx, q.Rows))
			}
			copy(dst[f*dim:(f+1)*dim], q.Row(idx))
		}
	}
	return out
}

// LookupBackward implements ∇Q = lkup_bw(∇E, X): the scatter-add adjoint of
// Lookup. gradE is batch×(fields·dim); the result has the table's shape.
func LookupBackward(gradE *Dense, x *IntMatrix, vocab, dim int) *Dense {
	if gradE.Rows != x.Rows || gradE.Cols != x.Cols*dim {
		panic(fmt.Sprintf("tensor: LookupBackward shape mismatch ∇E %d×%d vs X %d×%d (dim %d)",
			gradE.Rows, gradE.Cols, x.Rows, x.Cols, dim))
	}
	out := NewDense(vocab, dim)
	for i := 0; i < x.Rows; i++ {
		src := gradE.Row(i)
		for f, idx := range x.Row(i) {
			dst := out.Row(idx)
			for k := 0; k < dim; k++ {
				dst[k] += src[f*dim+k]
			}
		}
	}
	return out
}
