// Package tensor provides the dense and sparse matrix types used throughout
// BlindFL. Matrices are row-major float64. The package is deliberately small:
// it implements exactly the operations the federated protocols and the neural
// network library need — matmul (including transposed variants), elementwise
// arithmetic, and the embedding lookup pair lkup / lkup_bw.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a row-major rows×cols float64 matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dims %d×%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice builds a rows×cols matrix backed by a copy of data.
func FromSlice(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice %d×%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	d := NewDense(rows, cols)
	copy(d.Data, data)
	return d
}

// At returns the element at (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.Cols+j] }

// RowSlice returns a view of rows [lo, hi): the slice shares d's backing
// array, so it costs nothing and writes through. Used by the chunk-streamed
// protocol paths to mask/encrypt/decrypt bounded row ranges.
func (d *Dense) RowSlice(lo, hi int) *Dense {
	if lo < 0 || hi < lo || hi > d.Rows {
		panic(fmt.Sprintf("tensor: RowSlice [%d,%d) of %d rows", lo, hi, d.Rows))
	}
	return &Dense{Rows: hi - lo, Cols: d.Cols, Data: d.Data[lo*d.Cols : hi*d.Cols]}
}

// Set writes the element at (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (d *Dense) Row(i int) []float64 { return d.Data[i*d.Cols : (i+1)*d.Cols] }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	out := NewDense(d.Rows, d.Cols)
	copy(out.Data, d.Data)
	return out
}

// Zero sets all elements to 0 in place.
func (d *Dense) Zero() {
	for i := range d.Data {
		d.Data[i] = 0
	}
}

// SameShape reports whether d and o have identical dimensions.
func (d *Dense) SameShape(o *Dense) bool { return d.Rows == o.Rows && d.Cols == o.Cols }

func (d *Dense) mustSameShape(o *Dense, op string) {
	if !d.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %d×%d vs %d×%d", op, d.Rows, d.Cols, o.Rows, o.Cols))
	}
}

// Add returns d + o as a new matrix.
func (d *Dense) Add(o *Dense) *Dense {
	d.mustSameShape(o, "Add")
	out := d.Clone()
	for i, v := range o.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns d − o as a new matrix.
func (d *Dense) Sub(o *Dense) *Dense {
	d.mustSameShape(o, "Sub")
	out := d.Clone()
	for i, v := range o.Data {
		out.Data[i] -= v
	}
	return out
}

// AddInPlace accumulates o into d.
func (d *Dense) AddInPlace(o *Dense) {
	d.mustSameShape(o, "AddInPlace")
	for i, v := range o.Data {
		d.Data[i] += v
	}
}

// SubInPlace subtracts o from d in place.
func (d *Dense) SubInPlace(o *Dense) {
	d.mustSameShape(o, "SubInPlace")
	for i, v := range o.Data {
		d.Data[i] -= v
	}
}

// Scale returns s·d as a new matrix.
func (d *Dense) Scale(s float64) *Dense {
	out := d.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Axpy performs d += s·o in place (the BLAS axpy idiom).
func (d *Dense) Axpy(s float64, o *Dense) {
	d.mustSameShape(o, "Axpy")
	for i, v := range o.Data {
		d.Data[i] += s * v
	}
}

// MatMul returns d·o (rows×cols · o.Rows×o.Cols).
func (d *Dense) MatMul(o *Dense) *Dense {
	if d.Cols != o.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %d×%d · %d×%d", d.Rows, d.Cols, o.Rows, o.Cols))
	}
	out := NewDense(d.Rows, o.Cols)
	for i := 0; i < d.Rows; i++ {
		drow := d.Row(i)
		orow := out.Row(i)
		for k, a := range drow {
			if a == 0 {
				continue
			}
			brow := o.Row(k)
			for j, b := range brow {
				orow[j] += a * b
			}
		}
	}
	return out
}

// TransposeMatMul returns dᵀ·o, computed without materializing dᵀ.
// d is rows×cols, o is rows×n; the result is cols×n. This is the
// ∇W = Xᵀ∇Z shape used in every backward pass.
func (d *Dense) TransposeMatMul(o *Dense) *Dense {
	if d.Rows != o.Rows {
		panic(fmt.Sprintf("tensor: TransposeMatMul outer dim mismatch %d×%d ᵀ· %d×%d", d.Rows, d.Cols, o.Rows, o.Cols))
	}
	out := NewDense(d.Cols, o.Cols)
	for i := 0; i < d.Rows; i++ {
		drow := d.Row(i)
		orow := o.Row(i)
		for k, a := range drow {
			if a == 0 {
				continue
			}
			dst := out.Row(k)
			for j, b := range orow {
				dst[j] += a * b
			}
		}
	}
	return out
}

// MatMulTranspose returns d·oᵀ. d is rows×cols, o is n×cols; result rows×n.
// This is the ∇E = ∇Z·Wᵀ shape of the embedding backward pass.
func (d *Dense) MatMulTranspose(o *Dense) *Dense {
	if d.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: MatMulTranspose inner dim mismatch %d×%d · %d×%dᵀ", d.Rows, d.Cols, o.Rows, o.Cols))
	}
	out := NewDense(d.Rows, o.Rows)
	for i := 0; i < d.Rows; i++ {
		drow := d.Row(i)
		orow := out.Row(i)
		for j := 0; j < o.Rows; j++ {
			brow := o.Row(j)
			var s float64
			for k, a := range drow {
				s += a * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// Transpose returns a new transposed copy.
func (d *Dense) Transpose() *Dense {
	out := NewDense(d.Cols, d.Rows)
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			out.Set(j, i, d.At(i, j))
		}
	}
	return out
}

// Apply returns f applied elementwise as a new matrix.
func (d *Dense) Apply(f func(float64) float64) *Dense {
	out := NewDense(d.Rows, d.Cols)
	for i, v := range d.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Hadamard returns the elementwise product d ∘ o.
func (d *Dense) Hadamard(o *Dense) *Dense {
	d.mustSameShape(o, "Hadamard")
	out := NewDense(d.Rows, d.Cols)
	for i := range d.Data {
		out.Data[i] = d.Data[i] * o.Data[i]
	}
	return out
}

// MaxAbs returns max_i |d_i|, and 0 for an empty matrix.
func (d *Dense) MaxAbs() float64 {
	var m float64
	for _, v := range d.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Frobenius returns the Frobenius norm.
func (d *Dense) Frobenius() float64 {
	var s float64
	for _, v := range d.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equal reports elementwise equality within tol.
func (d *Dense) Equal(o *Dense, tol float64) bool {
	if !d.SameShape(o) {
		return false
	}
	for i := range d.Data {
		if math.Abs(d.Data[i]-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// RandDense fills a rows×cols matrix with uniform values in [-scale, scale)
// drawn from rng.
func RandDense(rng *rand.Rand, rows, cols int, scale float64) *Dense {
	d := NewDense(rows, cols)
	for i := range d.Data {
		d.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return d
}

// RandNormal fills a rows×cols matrix with N(0, std²) values drawn from rng.
func RandNormal(rng *rand.Rand, rows, cols int, std float64) *Dense {
	d := NewDense(rows, cols)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64() * std
	}
	return d
}

// HStack concatenates matrices horizontally. All inputs must share Rows.
func HStack(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		panic("tensor: HStack of nothing")
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic("tensor: HStack row mismatch")
		}
		cols += m.Cols
	}
	out := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		dst := out.Row(i)
		off := 0
		for _, m := range ms {
			copy(dst[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
	return out
}

// SliceCols returns the column range [lo, hi) as a new matrix.
func (d *Dense) SliceCols(lo, hi int) *Dense {
	if lo < 0 || hi > d.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) of %d cols", lo, hi, d.Cols))
	}
	out := NewDense(d.Rows, hi-lo)
	for i := 0; i < d.Rows; i++ {
		copy(out.Row(i), d.Row(i)[lo:hi])
	}
	return out
}

// SliceRows returns the row range [lo, hi) as a new matrix.
func (d *Dense) SliceRows(lo, hi int) *Dense {
	if lo < 0 || hi > d.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) of %d rows", lo, hi, d.Rows))
	}
	out := NewDense(hi-lo, d.Cols)
	copy(out.Data, d.Data[lo*d.Cols:hi*d.Cols])
	return out
}

// GatherRows returns the matrix whose i-th row is d.Row(idx[i]).
func (d *Dense) GatherRows(idx []int) *Dense {
	out := NewDense(len(idx), d.Cols)
	for i, r := range idx {
		copy(out.Row(i), d.Row(r))
	}
	return out
}
