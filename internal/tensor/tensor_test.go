package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	d := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if d.At(0, 2) != 3 || d.At(1, 0) != 4 {
		t.Fatalf("At wrong: %v", d.Data)
	}
	d.Set(1, 1, 50)
	if d.At(1, 1) != 50 {
		t.Fatal("Set failed")
	}
	c := d.Clone()
	c.Set(0, 0, -1)
	if d.At(0, 0) == -1 {
		t.Fatal("Clone aliases")
	}
}

func TestDenseAddSubScale(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	if got := a.Add(b); !got.Equal(FromSlice(2, 2, []float64{6, 8, 10, 12}), 0) {
		t.Fatalf("Add = %v", got.Data)
	}
	if got := b.Sub(a); !got.Equal(FromSlice(2, 2, []float64{4, 4, 4, 4}), 0) {
		t.Fatalf("Sub = %v", got.Data)
	}
	if got := a.Scale(2); !got.Equal(FromSlice(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Fatalf("Scale = %v", got.Data)
	}
	c := a.Clone()
	c.Axpy(-0.5, b)
	if !c.Equal(FromSlice(2, 2, []float64{-1.5, -1, -0.5, 0}), 1e-12) {
		t.Fatalf("Axpy = %v", c.Data)
	}
}

func TestMatMul(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := a.MatMul(b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("MatMul = %v want %v", got.Data, want.Data)
	}
}

func TestTransposeMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandDense(rng, 7, 4, 1)
	b := RandDense(rng, 7, 5, 1)
	got := a.TransposeMatMul(b)
	want := a.Transpose().MatMul(b)
	if !got.Equal(want, 1e-10) {
		t.Fatal("TransposeMatMul disagrees with Transpose().MatMul")
	}
}

func TestMatMulTransposeAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandDense(rng, 6, 4, 1)
	b := RandDense(rng, 5, 4, 1)
	got := a.MatMulTranspose(b)
	want := a.MatMul(b.Transpose())
	if !got.Equal(want, 1e-10) {
		t.Fatal("MatMulTranspose disagrees with MatMul of Transpose")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner dim mismatch")
		}
	}()
	NewDense(2, 3).MatMul(NewDense(2, 3))
}

func TestHStackAndSlices(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 1, []float64{9, 10})
	h := HStack(a, b)
	want := FromSlice(2, 3, []float64{1, 2, 9, 3, 4, 10})
	if !h.Equal(want, 0) {
		t.Fatalf("HStack = %v", h.Data)
	}
	if got := h.SliceCols(2, 3); !got.Equal(b, 0) {
		t.Fatalf("SliceCols = %v", got.Data)
	}
	if got := h.SliceCols(0, 2); !got.Equal(a, 0) {
		t.Fatalf("SliceCols = %v", got.Data)
	}
	if got := h.SliceRows(1, 2); !got.Equal(FromSlice(1, 3, []float64{3, 4, 10}), 0) {
		t.Fatalf("SliceRows = %v", got.Data)
	}
	if got := h.GatherRows([]int{1, 0, 1}); got.Rows != 3 || got.At(0, 2) != 10 || got.At(1, 2) != 9 {
		t.Fatalf("GatherRows = %v", got.Data)
	}
}

func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := RandDense(rng, 10, 8, 1)
	// Zero most entries to make it genuinely sparse.
	for i := range d.Data {
		if rng.Float64() < 0.7 {
			d.Data[i] = 0
		}
	}
	c := DenseToCSR(d)
	if !c.ToDense().Equal(d, 0) {
		t.Fatal("CSR round trip lost values")
	}
}

func TestCSRMatMulAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := RandCSR(rng, 12, 30, 4)
	w := RandDense(rng, 30, 5, 1)
	got := c.MatMul(w)
	want := c.ToDense().MatMul(w)
	if !got.Equal(want, 1e-10) {
		t.Fatal("CSR MatMul disagrees with dense")
	}
}

func TestCSRTransposeMatMulAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := RandCSR(rng, 12, 30, 4)
	g := RandDense(rng, 12, 5, 1)
	got := c.TransposeMatMul(g)
	want := c.ToDense().Transpose().MatMul(g)
	if !got.Equal(want, 1e-10) {
		t.Fatal("CSR TransposeMatMul disagrees with dense")
	}
}

func TestCSRSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := RandCSR(rng, 10, 20, 3)
	d := c.ToDense()
	if !c.SliceRows(2, 7).ToDense().Equal(d.SliceRows(2, 7), 0) {
		t.Fatal("CSR SliceRows mismatch")
	}
	if !c.SliceCols(5, 15).ToDense().Equal(d.SliceCols(5, 15), 0) {
		t.Fatal("CSR SliceCols mismatch")
	}
	if !c.GatherRows([]int{3, 3, 9}).ToDense().Equal(d.GatherRows([]int{3, 3, 9}), 0) {
		t.Fatal("CSR GatherRows mismatch")
	}
}

func TestCSRSparsity(t *testing.T) {
	c := NewCSR(2, 4, 2)
	c.AppendRow([]int{1}, []float64{5})
	c.AppendRow([]int{0, 3}, []float64{1, 2})
	if got := c.Sparsity(); math.Abs(got-5.0/8.0) > 1e-12 {
		t.Fatalf("Sparsity = %v", got)
	}
	if c.NNZ() != 3 {
		t.Fatalf("NNZ = %d", c.NNZ())
	}
}

func TestAppendRowSortsColumns(t *testing.T) {
	c := NewCSR(1, 5, 3)
	c.AppendRow([]int{4, 0, 2}, []float64{40, 0.5, 20})
	cols, vals := c.RowNNZ(0)
	if cols[0] != 0 || cols[1] != 2 || cols[2] != 4 {
		t.Fatalf("cols not sorted: %v", cols)
	}
	if vals[0] != 0.5 || vals[1] != 20 || vals[2] != 40 {
		t.Fatalf("vals not permuted with cols: %v", vals)
	}
}

func TestLookupAndBackward(t *testing.T) {
	q := FromSlice(4, 2, []float64{
		0, 1,
		10, 11,
		20, 21,
		30, 31,
	})
	x := NewIntMatrix(2, 2)
	x.Set(0, 0, 1)
	x.Set(0, 1, 3)
	x.Set(1, 0, 0)
	x.Set(1, 1, 1)
	e := Lookup(q, x)
	want := FromSlice(2, 4, []float64{10, 11, 30, 31, 0, 1, 10, 11})
	if !e.Equal(want, 0) {
		t.Fatalf("Lookup = %v", e.Data)
	}
	gradE := FromSlice(2, 4, []float64{1, 1, 2, 2, 3, 3, 4, 4})
	gq := LookupBackward(gradE, x, 4, 2)
	// idx 1 receives (1,1) from instance 0 field 0 and (4,4) from instance 1 field 1.
	wantQ := FromSlice(4, 2, []float64{3, 3, 5, 5, 0, 0, 2, 2})
	if !gq.Equal(wantQ, 0) {
		t.Fatalf("LookupBackward = %v", gq.Data)
	}
}

// Property: lookup-backward is the adjoint of lookup, i.e.
// ⟨lkup(Q,X), G⟩ = ⟨Q, lkup_bw(G,X)⟩ for all Q, G.
func TestLookupAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vocab, dim, batch, fields := 6, 3, 4, 2
		q := RandDense(rng, vocab, dim, 1)
		g := RandDense(rng, batch, fields*dim, 1)
		x := NewIntMatrix(batch, fields)
		for i := range x.Data {
			x.Data[i] = rng.Intn(vocab)
		}
		e := Lookup(q, x)
		gq := LookupBackward(g, x, vocab, dim)
		var lhs, rhs float64
		for i := range e.Data {
			lhs += e.Data[i] * g.Data[i]
		}
		for i := range q.Data {
			rhs += q.Data[i] * gq.Data[i]
		}
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A+B)·W = A·W + B·W (matmul distributes over addition). This is
// the algebraic identity the secret-shared forward pass relies on.
func TestMatMulDistributesOverAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandDense(rng, 5, 4, 2)
		b := RandDense(rng, 5, 4, 2)
		w := RandDense(rng, 4, 3, 2)
		lhs := a.Add(b).MatMul(w)
		rhs := a.MatMul(w).Add(b.MatMul(w))
		return lhs.Equal(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := RandDense(rng, 5, 7, 3)
	if !d.Transpose().Transpose().Equal(d, 0) {
		t.Fatal("double transpose changed the matrix")
	}
}

func TestMaxAbsFrobenius(t *testing.T) {
	d := FromSlice(1, 3, []float64{3, -4, 0})
	if d.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", d.MaxAbs())
	}
	if math.Abs(d.Frobenius()-5) > 1e-12 {
		t.Fatalf("Frobenius = %v", d.Frobenius())
	}
}

func TestHadamardApply(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, -2, 3})
	b := FromSlice(1, 3, []float64{2, 2, 2})
	if got := a.Hadamard(b); !got.Equal(FromSlice(1, 3, []float64{2, -4, 6}), 0) {
		t.Fatalf("Hadamard = %v", got.Data)
	}
	if got := a.Apply(math.Abs); !got.Equal(FromSlice(1, 3, []float64{1, 2, 3}), 0) {
		t.Fatalf("Apply = %v", got.Data)
	}
}

func TestRandCSRShape(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c := RandCSR(rng, 20, 100, 5)
	if c.NNZ() != 100 {
		t.Fatalf("expected 100 nnz, got %d", c.NNZ())
	}
	for i := 0; i < c.Rows; i++ {
		cols, _ := c.RowNNZ(i)
		for k := 1; k < len(cols); k++ {
			if cols[k] <= cols[k-1] {
				t.Fatal("columns not strictly increasing")
			}
		}
	}
}
