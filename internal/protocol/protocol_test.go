package protocol

import (
	"math"
	"testing"

	"blindfl/internal/hetensor"
	"blindfl/internal/tensor"
)

func newPipe(t *testing.T, seed int64) (*Peer, *Peer) {
	t.Helper()
	skA, skB := TestKeys()
	a, b, err := Pipe(skA, skB, seed)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestHandshakeExchangesKeys(t *testing.T) {
	a, b := newPipe(t, 1)
	if a.PeerPK.N.Cmp(b.SK.N) != 0 {
		t.Fatal("A does not hold B's public key")
	}
	if b.PeerPK.N.Cmp(a.SK.N) != 0 {
		t.Fatal("B does not hold A's public key")
	}
}

func TestHE2SSReconstruction(t *testing.T) {
	a, b := newPipe(t, 2)
	v := tensor.FromSlice(2, 2, []float64{1.5, -2.25, 3, 0})
	var shareA, shareB *tensor.Dense
	err := RunParties(a, b, func() {
		// A holds ⟦v⟧ under B's key (as after a homomorphic computation).
		c := hetensor.Encrypt(a.PeerPK, v, 1)
		shareA = a.HE2SSSend(c)
	}, func() {
		shareB = b.HE2SSRecv()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := shareA.Add(shareB); !got.Equal(v, 1e-5) {
		t.Fatalf("HE2SS shares do not reconstruct: %v", got.Data)
	}
}

func TestHE2SSShareIsMasked(t *testing.T) {
	a, b := newPipe(t, 3)
	v := tensor.FromSlice(1, 1, []float64{0.5})
	var shareB *tensor.Dense
	err := RunParties(a, b, func() {
		c := hetensor.Encrypt(a.PeerPK, v, 1)
		a.HE2SSSend(c)
	}, func() {
		shareB = b.HE2SSRecv()
	})
	if err != nil {
		t.Fatal(err)
	}
	// With MaskMag = 2^20, the chance of the share landing within 1000 of
	// the true value is ~1/1000; treat proximity as masking failure.
	if math.Abs(shareB.At(0, 0)-0.5) < 1000 {
		t.Fatalf("share %v suspiciously close to the true value", shareB.At(0, 0))
	}
}

func TestHE2SSScale2(t *testing.T) {
	a, b := newPipe(t, 4)
	// Simulate a scale-2 product as it appears in the layer protocols.
	x := tensor.FromSlice(1, 2, []float64{0.5, -1.25})
	w := tensor.FromSlice(2, 1, []float64{2, 4})
	want := x.MatMul(w)
	var shareA, shareB *tensor.Dense
	err := RunParties(a, b, func() {
		cw := hetensor.Encrypt(a.PeerPK, w, 1)
		prod := hetensor.MulPlainLeft(x, cw) // scale 2
		shareA = a.HE2SSSend(prod)
	}, func() {
		shareB = b.HE2SSRecv()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := shareA.Add(shareB); !got.Equal(want, 1e-4) {
		t.Fatalf("scale-2 HE2SS reconstruction = %v want %v", got.Data, want.Data)
	}
}

func TestSS2HEValue(t *testing.T) {
	a, b := newPipe(t, 6)
	pieceA := tensor.FromSlice(2, 2, []float64{1, 2, 3, 4})
	pieceB := tensor.FromSlice(2, 2, []float64{0.5, -2, 7, -4})
	want := pieceA.Add(pieceB)
	var rec *tensor.Dense
	err := RunParties(a, b, func() {
		// A obtains ⟦v⟧ under B's key, then ships it straight back for B
		// to decrypt (test-only; real protocols mask first).
		c := a.SS2HE(pieceA, 1)
		a.Send(c)
	}, func() {
		_ = b.SS2HE(pieceB, 1)
		c := b.RecvCipher()
		rec = hetensor.Decrypt(b.SK, c)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Equal(want, 1e-5) {
		t.Fatalf("SS2HE = %v want %v", rec.Data, want.Data)
	}
}

func TestRunPartiesPropagatesErrors(t *testing.T) {
	a, b := newPipe(t, 7)
	err := RunParties(a, b, func() {
		a.fail("boom: %d", 42)
	}, func() {})
	if err == nil || err.Error() != "PartyA: boom: 42" {
		t.Fatalf("err = %v", err)
	}
}

func TestRecvTypeMismatch(t *testing.T) {
	a, b := newPipe(t, 8)
	err := RunParties(a, b, func() {
		a.Send(tensor.NewIntMatrix(1, 1))
	}, func() {
		b.RecvDense()
	})
	if err == nil {
		t.Fatal("expected type mismatch error")
	}
}

func TestMaskMagnitude(t *testing.T) {
	a, _ := newPipe(t, 9)
	m := a.Mask(50, 50)
	if m.MaxAbs() > a.MaskMag {
		t.Fatal("mask exceeds MaskMag")
	}
	if m.MaxAbs() < a.MaskMag/100 {
		t.Fatal("mask suspiciously small; not uniform over the range?")
	}
}
