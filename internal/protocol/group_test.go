package protocol

import (
	"errors"
	"strings"
	"testing"
	"time"

	"blindfl/internal/paillier"
	"blindfl/internal/tensor"
	"blindfl/internal/transport"
)

// newGroupPipe builds a k-session in-process group sharing the two test
// keys (every feature party holds skA; B holds skB).
func newGroupPipe(t testing.TB, k int, seed int64) ([]*Peer, *Group) {
	t.Helper()
	skA, skB := TestKeys()
	skAs := make([]*paillier.PrivateKey, k)
	for i := range skAs {
		skAs[i] = skA
	}
	as, g, err := GroupPipe(skAs, skB, seed)
	if err != nil {
		t.Fatal(err)
	}
	return as, g
}

func TestGroupPipeHandshakesEverySession(t *testing.T) {
	as, g := newGroupPipe(t, 3, 40)
	for i, a := range as {
		if a.PeerPK.N.Cmp(g.Peers[i].SK.N) != 0 {
			t.Fatalf("session %d: A does not hold B's public key", i)
		}
		if g.Peers[i].PeerPK.N.Cmp(a.SK.N) != 0 {
			t.Fatalf("session %d: B does not hold A's public key", i)
		}
	}
}

// TestPipeAdjacentSeedsShareNoMaskStream is the regression test for the
// session mask-RNG seed collision: Pipe used to seed PartyA/PartyB with
// seed/seed+1, so two sessions built from consecutive seeds — exactly how
// the pre-Group multiparty example wired a k-party group — shared a stream:
// session i's Party B drew the same masks as session i+1's Party A. With
// the hashed (seed, session, role) derivation the streams are independent.
func TestPipeAdjacentSeedsShareNoMaskStream(t *testing.T) {
	skA, skB := TestKeys()
	_, b1, err := Pipe(skA, skB, 70)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := Pipe(skA, skB, 71)
	if err != nil {
		t.Fatal(err)
	}
	m1 := b1.Mask(4, 4)
	m2 := a2.Mask(4, 4)
	if m1.Equal(m2, 0) {
		t.Fatal("session i's PartyB mask stream equals session i+1's PartyA stream (seed+1 collision)")
	}
}

// TestGroupSessionsShareNoMaskStreams checks the group-wide form of the
// same property: all 2k mask streams of a k-session group are pairwise
// distinct, and so are the same streams at an adjacent group seed.
func TestGroupSessionsShareNoMaskStreams(t *testing.T) {
	const k = 3
	as1, g1 := newGroupPipe(t, k, 80)
	as2, g2 := newGroupPipe(t, k, 81)
	var masks []*tensor.Dense
	for _, p := range append(append([]*Peer{}, as1...), g1.Peers...) {
		masks = append(masks, p.Mask(4, 4))
	}
	for _, p := range append(append([]*Peer{}, as2...), g2.Peers...) {
		masks = append(masks, p.Mask(4, 4))
	}
	for i := range masks {
		for j := i + 1; j < len(masks); j++ {
			if masks[i].Equal(masks[j], 0) {
				t.Fatalf("mask streams %d and %d of 2 groups × %d sessions coincide", i, j, k)
			}
		}
	}
}

// TestGroupK1MatchesPipeStreams pins the degenerate-shape contract the
// model layer's bit-exactness builds on: a 1-session group draws exactly
// the streams of a two-party Pipe at the same seed.
func TestGroupK1MatchesPipeStreams(t *testing.T) {
	skA, skB := TestKeys()
	pa, pb, err := Pipe(skA, skB, 90)
	if err != nil {
		t.Fatal(err)
	}
	as, g := newGroupPipe(t, 1, 90)
	if !pa.Mask(3, 3).Equal(as[0].Mask(3, 3), 0) {
		t.Fatal("k=1 group PartyA stream differs from the two-party pipe")
	}
	if !pb.Mask(3, 3).Equal(g.Peers[0].Mask(3, 3), 0) {
		t.Fatal("k=1 group PartyB stream differs from the two-party pipe")
	}
}

// TestRunGroupUnblocksSurvivorsOnSessionFailure is the regression test for
// the k-party shutdown hang: one feature party dies mid-step while the
// other k−1 parties and the label party are blocked in Recv on their own
// healthy sessions. RunGroup must close every session's connections on the
// first error so all survivors unblock with transport.ErrClosed instead of
// hanging forever (pre-Group, the example's ad-hoc glue left them blocked;
// the CI -timeout is the backstop if this regresses).
func TestRunGroupUnblocksSurvivorsOnSessionFailure(t *testing.T) {
	as, g := newGroupPipe(t, 3, 41)
	done := make(chan error, 1)
	go func() {
		done <- RunGroup(as, g,
			func(i int) {
				if i == 1 {
					as[i].fail("injected mid-step failure")
				}
				as[i].RecvDense() // healthy sessions: nothing will ever arrive
			},
			func() {
				g.ForEach(func(i int, p *Peer) { p.RecvDense() })
			})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "injected mid-step failure") {
			t.Fatalf("err = %v, want the injected session failure", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunGroup hung after a one-session failure")
	}
}

// TestRunGroupLabelPartyFailureUnblocksFeatureParties covers the teardown in
// the other direction: the label party fails inside ForEach (a type error on
// one session) while every feature party waits for a message.
func TestRunGroupLabelPartyFailureUnblocksFeatureParties(t *testing.T) {
	as, g := newGroupPipe(t, 3, 42)
	survivorErrs := make([]error, len(as))
	done := make(chan error, 1)
	go func() {
		done <- RunGroup(as, g,
			func(i int) {
				if i == 2 {
					as[i].Send([]int{1}) // session 2's B expects a Dense
				}
				_, survivorErrs[i] = as[i].Conn.Recv()
			},
			func() {
				g.ForEach(func(i int, p *Peer) {
					if i == 2 {
						p.RecvDense() // type mismatch: B dies here
					}
				})
			})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "session 2") || !strings.Contains(err.Error(), "want *tensor.Dense") {
			t.Fatalf("err = %v, want session 2's type failure", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunGroup hung after a label-party failure")
	}
	for i, serr := range survivorErrs {
		if !errors.Is(serr, transport.ErrClosed) {
			t.Fatalf("feature party %d Recv = %v, want ErrClosed", i, serr)
		}
	}
}

func TestRunGroupRejectsMismatchedPartyCount(t *testing.T) {
	as, g := newGroupPipe(t, 2, 43)
	if err := RunGroup(as[:1], g, func(int) {}, func() {}); err == nil {
		t.Fatal("RunGroup accepted 1 feature party for 2 sessions")
	}
}

func TestGroupForEachRunsEverySession(t *testing.T) {
	as, g := newGroupPipe(t, 4, 44)
	err := RunGroup(as, g,
		func(i int) { as[i].Send(tensor.FromSlice(1, 1, []float64{float64(i)})) },
		func() {
			got := make([]float64, g.K())
			g.ForEach(func(i int, p *Peer) { got[i] = p.RecvDense().At(0, 0) })
			for i, v := range got {
				if v != float64(i) {
					g.Peers[i].fail("session %d delivered %v", i, v)
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}

// faultedGroup assembles a k-session group whose faultSession's Party-A
// endpoint sends through a FaultConn running plan — the harness for the
// mid-epoch session-kill teardown tests.
func faultedGroup(t *testing.T, k int, seed int64, faultSession int, plan transport.FaultPlan) ([]*Peer, *Group) {
	t.Helper()
	skA, skB := TestKeys()
	as := make([]*Peer, k)
	bs := make([]*Peer, k)
	errs := make(chan error, 2*k)
	for i := 0; i < k; i++ {
		ca, cb := transport.Pair(4096)
		var connA transport.Conn = ca
		if i == faultSession {
			connA = transport.NewFaultConn(ca, seed, "group-kill", plan)
		}
		a := NewPeer(PartyA, connA, skA, sessionRNG(seed, i, PartyA))
		b := NewPeer(PartyB, cb, skB, sessionRNG(seed, i, PartyB))
		as[i], bs[i] = a, b
		go func() { errs <- a.Handshake() }()
		go func() { errs <- b.Handshake() }()
	}
	for i := 0; i < 2*k; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	return as, NewGroup(bs)
}

// runKilledGroup drives four echo rounds over a 3-session group whose
// session 1 dies at its third send (mid-round 2) and returns RunGroup's
// error, guarded by the hang watchdog.
func runKilledGroup(t *testing.T, seed int64, continueOnLoss bool) (*Group, error) {
	t.Helper()
	as, g := faultedGroup(t, 3, seed, 1, transport.FaultPlan{KillAtMsg: 3})
	g.ContinueOnLoss = continueOnLoss
	done := make(chan error, 1)
	go func() {
		done <- RunGroup(as, g,
			func(i int) {
				for r := 0; r < 4; r++ {
					as[i].Send(as[i].Mask(2, 2))
					as[i].RecvDense()
				}
			},
			func() {
				for r := 0; r < 4; r++ {
					g.ForEach(func(i int, p *Peer) { p.Send(p.RecvDense()) })
				}
			})
	}()
	select {
	case err := <-done:
		return g, err
	case <-time.After(30 * time.Second):
		t.Fatal("RunGroup hung after a FaultConn session kill")
		return nil, nil
	}
}

// TestRunGroupFaultConnKillAborts pins the default contract when an injected
// fault kills one session's connection mid-epoch: the whole group aborts
// with the typed connection-loss error and every survivor unblocks.
func TestRunGroupFaultConnKillAborts(t *testing.T) {
	_, err := runKilledGroup(t, 45, false)
	if err == nil {
		t.Fatal("RunGroup completed over a killed session without ContinueOnLoss")
	}
	if !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("err = %v, want transport.ErrClosed", err)
	}
}

// TestRunGroupFaultConnKillContinueOnLoss is the recovery mode: the two
// surviving sessions finish all four rounds and the loss is surfaced
// through Lost() instead of an error.
func TestRunGroupFaultConnKillContinueOnLoss(t *testing.T) {
	g, err := runKilledGroup(t, 46, true)
	if err != nil {
		t.Fatalf("ContinueOnLoss group failed instead of continuing: %v", err)
	}
	if lost := g.Lost(); !lost[1] || lost[0] || lost[2] {
		t.Fatalf("Lost() = %v, want exactly session 1 lost", lost)
	}
	if g.LostCount() != 1 {
		t.Fatalf("LostCount() = %d, want 1", g.LostCount())
	}
}

// TestGroupAllSessionsLostFailsTyped: losing the last live session must be a
// typed whole-group failure even in ContinueOnLoss mode — there is nothing
// left to continue on.
func TestGroupAllSessionsLostFailsTyped(t *testing.T) {
	as, g := newGroupPipe(t, 2, 47)
	g.ContinueOnLoss = true
	for _, a := range as {
		a.Conn.Close()
	}
	err := g.Run(func() {
		g.ForEach(func(i int, p *Peer) { p.RecvDense() })
	})
	if err == nil {
		t.Fatal("group survived losing every session")
	}
	if !errors.Is(err, ErrSessionLost) {
		t.Fatalf("err = %v, want ErrSessionLost", err)
	}
}
