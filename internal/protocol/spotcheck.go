// Run-integrity checks at the protocol trust boundary.
//
// Two layers guard a received ciphertext. vetCipher/vetPacked run on every
// receive (monolithic and per chunk): each ciphertext must be present,
// in-range mod N² and invertible — the structural validity any honest sender
// guarantees, so a violation is transport corruption or a malicious peer and
// surfaces as a typed transport.ErrCorrupt instead of a deep panic inside the
// homomorphic kernels.
//
// The decrypt spot-check (Peer.SpotCheck, engine option "spotcheck") is the
// opt-in probabilistic second layer at the label party: after a sampled
// HE2SS decryption (one conversion in spotEvery, starting with the first)
// it re-decrypts one derived row through the exact-integer path
// and checks (a) the signed plaintext fits the fixed-point range a legitimate
// protocol value can occupy — a corrupted ciphertext decrypts to an
// essentially uniform ring element, detected with overwhelming probability —
// and (b) the integer decodes to exactly the float the bulk decryption
// produced. Outcomes are counted in StreamStats (SpotChecks/SpotMismatches);
// the serving layer surfaces its own counters in serve.Stats.
//
// The spot row is derived from a per-peer ordinal via internal/rng, not drawn
// from Peer.Rng: the mask streams of the two parties must stay in lockstep,
// and an opt-in check that consumed mask randomness would desynchronize them.
package protocol

import (
	"math/big"

	"blindfl/internal/fixedpoint"
	"blindfl/internal/hetensor"
	"blindfl/internal/paillier"
	"blindfl/internal/rng"
	"blindfl/internal/tensor"
	"blindfl/internal/transport"
)

// spotSlackBits is the integer headroom a legitimate plaintext may occupy
// beyond its F·scale fractional bits: masks (≤ 2^20), dot-product
// accumulation and batch sums. Far below the ~keybits a corrupted ciphertext
// decrypts to.
const spotSlackBits = 64

// vetCells validates every ciphertext of a received matrix against the
// trusted key: present, 0 < C < N², and invertible mod N² (gcd(C, N) = 1 —
// a non-invertible C would reveal a factor of N and cannot come from an
// honest encryptor). kind names the receive path in the failure.
func (p *Peer) vetCells(cells []*paillier.Ciphertext, pk *paillier.PublicKey, kind string) {
	one := big.NewInt(1)
	gcd := new(big.Int)
	for i, c := range cells {
		if c == nil || c.C == nil {
			p.fail("%s: %w: ciphertext %d missing", kind, transport.ErrCorrupt, i)
		}
		if c.C.Sign() <= 0 || c.C.Cmp(pk.N2) >= 0 {
			p.fail("%s: %w: ciphertext %d outside Z_N²", kind, transport.ErrCorrupt, i)
		}
		if gcd.GCD(nil, nil, c.C, pk.N).Cmp(one) != 0 {
			p.fail("%s: %w: ciphertext %d not invertible", kind, transport.ErrCorrupt, i)
		}
	}
}

// spotEvery is the sampling period: one in spotEvery HE2SS conversions gets
// the exact-integer re-verification. Checking every conversion would cost an
// extra decrypt each (~12% on the packed fed-step bench, whose bulk
// decryption is only a handful of lane groups); sampling keeps the probe
// under the 5% budget while a long run still covers every conversion site.
const spotEvery = 4

// spotSample advances the spot ordinal and reports whether this conversion
// is in the sample — every spotEvery-th candidate, starting with the first,
// so any run with at least one conversion performs at least one check.
func (p *Peer) spotSample() bool {
	p.spotSeq++
	return (p.spotSeq-1)%spotEvery == 0
}

// spotRow derives the spot-check row for a rows-tall matrix from the peer's
// current check ordinal — reproducible, and independent of the mask streams.
func (p *Peer) spotRow(rows int) int {
	return int(uint64(rng.Derive(int64(p.spotSeq), "spot-check-row")) % uint64(rows))
}

// spotCheckCipher re-verifies one derived row of a just-decrypted cipher
// matrix (d = bulk decryption of c) through the exact-integer path.
func (p *Peer) spotCheckCipher(c *hetensor.CipherMatrix, d *tensor.Dense) {
	if !p.SpotCheck || c.Rows == 0 || !p.spotSample() {
		return
	}
	row := p.spotRow(c.Rows)
	p.recordSpot(p.spotRowCipher(c.RowSlice(row, row+1), d.Row(row)))
}

// spotCheckPacked is spotCheckCipher for packed matrices.
func (p *Peer) spotCheckPacked(c *hetensor.PackedMatrix, d *tensor.Dense) {
	if !p.SpotCheck || c.Rows == 0 || !p.spotSample() {
		return
	}
	row := p.spotRow(c.Rows)
	p.recordSpot(p.spotRowPacked(c.RowSlice(row, row+1), d.Row(row)))
}

func (p *Peer) recordSpot(ok bool) {
	p.Stream.SpotChecks++
	if !ok {
		p.Stream.SpotMismatches++
	}
}

// spotRowCipher checks a single-row cipher chunk against its expected
// decoded floats: exact-integer decrypt, fixed-point range, decode equality.
func (p *Peer) spotRowCipher(row *hetensor.CipherMatrix, want []float64) bool {
	limit := int(hetensor.Codec.F)*int(row.Scale) + spotSlackBits
	for j := 0; j < row.Cols; j++ {
		m := p.SK.Decrypt(row.C[j])
		if fixedpoint.FromRing(m, p.SK.N).BitLen() > limit {
			return false
		}
		if hetensor.Codec.DecodeRing(m, row.Scale, p.SK.N) != want[j] {
			return false
		}
	}
	return true
}

// spotRowPacked checks a single-row packed chunk: each ciphertext group's
// signed plaintext must fit its lanes·W bits (a legitimate packed value is a
// lane polynomial; a corrupted one is ring-wide), and the exact-integer lane
// extraction must reproduce the bulk decryption's floats.
func (p *Peer) spotRowPacked(row *hetensor.PackedMatrix, want []float64) bool {
	lc := fixedpoint.LaneCodec{Codec: hetensor.Codec, W: row.W, K: row.K}
	gpb := row.GroupsPerBlock()
	for g := 0; g < row.GroupsPerRow(); g++ {
		col := (g/gpb)*row.Block + (g%gpb)*row.K
		lanes := row.Block - (g%gpb)*row.K
		if lanes > row.K {
			lanes = row.K
		}
		m := p.SK.Decrypt(row.C[g])
		if fixedpoint.FromRing(m, p.SK.N).BitLen() > lanes*int(row.W)+1+spotSlackBits {
			return false
		}
		vals := lc.UnpackRing(m, lanes, row.Scale, p.SK.N)
		for i, v := range vals {
			if v != want[col+i] {
				return false
			}
		}
	}
	return true
}
