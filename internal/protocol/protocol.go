// Package protocol provides the two-party runtime that BlindFL's federated
// source layers are written against: a Peer (connection + own Paillier key +
// the other party's public key + mask sampling), the HE↔SS conversion
// sub-protocols of Algorithms 1 and 2, and a helper that runs both parties
// of a protocol in one process over an in-memory transport.
//
// Typed Send/Recv helpers panic on transport or type errors; Run converts
// such panics back into errors at the protocol boundary, which keeps the
// per-line protocol code as close as possible to the paper's figures.
package protocol

import (
	"fmt"
	"math/rand"
	"time"

	"blindfl/internal/hetensor"
	"blindfl/internal/paillier"
	"blindfl/internal/tensor"
	"blindfl/internal/transport"
)

// Role identifies which side of the two-party protocol a Peer plays.
// Party B owns the labels and the top model; Party A is the feature-only
// party (the paper's "Party ⋄" without labels).
type Role int

const (
	PartyA Role = iota
	PartyB
)

func (r Role) String() string {
	if r == PartyA {
		return "PartyA"
	}
	return "PartyB"
}

// DefaultMaskMag is the default magnitude bound for HE2SS masks. Masks are
// sampled uniformly from [−MaskMag, MaskMag), matching the bounded-range
// masking of the paper's implementation (visible in its Figure 11, where
// secret-share pieces of unit-scale weights span roughly ±50): masks must be
// large relative to the hidden values but small enough that float64 shares
// stay exact to fixed-point tolerance.
const DefaultMaskMag = 1 << 20

// Peer is one party's handle on the protocol session.
type Peer struct {
	Role    Role
	Conn    transport.Conn
	SK      *paillier.PrivateKey // this party's key pair
	PeerPK  *paillier.PublicKey  // other party's public key
	Rng     *rand.Rand           // local randomness for masks and init
	MaskMag float64

	// ChunkRows bounds the rows per chunk of this peer's streamed sends
	// (stream.go); 0 means DefaultChunkRows. Receivers take chunk heights
	// from the stream itself, so peers may use different values.
	ChunkRows int
	// Stream accumulates per-chunk accounting across streamed sends and
	// receives. Owned by this peer's protocol goroutine; read it between
	// rounds.
	Stream StreamStats

	// SpotCheck enables the probabilistic decrypt spot-check (spotcheck.go):
	// after a sampled HE2SS decryption (one conversion in four, starting
	// with the first), one derived row is re-verified through the
	// exact-integer path; outcomes accumulate in Stream.
	SpotCheck bool

	// ANCheck enables the AHEAD-style AN-coded residue check on the serve
	// path's exact-integer share arithmetic (hetensor.IntMatMulTAN): each
	// plaintext share cell is recomputed mod a small prime alongside the
	// big-integer accumulation and verified before the share joins the
	// decrypted homomorphic half at the HE2SS boundary. Outcomes accumulate
	// in Stream (ANChecks/ANMismatches); a mismatch means the share
	// arithmetic itself — not the wire — corrupted, and is typed
	// transport.ErrCorrupt.
	ANCheck bool

	sendSeq, recvSeq uint64 // per-direction stream sequence numbers
	spotSeq          uint64 // spot-check ordinal (row derivation)

	// Stream identity: the (seed, session) pair this peer's RNG streams are
	// derived from, recorded by Pipe/PipeOn/GroupPipe (or SetStreamIdentity)
	// so SeedEpoch can re-derive the mask stream at any epoch boundary.
	idSeed      int64
	idSession   int
	hasIdentity bool
}

// SetStreamIdentity records the (seed, session) pair this peer's RNG streams
// were derived from, enabling SeedEpoch. The protocol pipes set it
// automatically; callers assembling peers over their own transports with
// SessionRNG should set it with the same values.
func (p *Peer) SetStreamIdentity(seed int64, session int) {
	p.idSeed, p.idSession, p.hasIdentity = seed, session, true
}

// HasStreamIdentity reports whether a stream identity was recorded —
// the precondition for epoch-seeded mask streams, and therefore for
// bit-exact checkpoint resume.
func (p *Peer) HasStreamIdentity() bool { return p.hasIdentity }

// SeedEpoch re-derives this peer's mask RNG stream for the given epoch from
// the recorded stream identity — the Calvin-style discipline that makes
// mid-run recovery cheap: the trainer calls it at *every* epoch boundary, so
// the mask stream at epoch e is a pure function of (seed, session, role, e)
// and a resumed run rejoins the uninterrupted run's trajectory bit-exactly.
// A peer without a recorded identity (hand-assembled benches) keeps its
// continuous stream; SeedEpoch is then a no-op.
func (p *Peer) SeedEpoch(epoch int) {
	if !p.hasIdentity {
		return
	}
	p.Rng = epochRNG(p.idSeed, p.idSession, p.Role, epoch)
}

// NewPeer assembles a Peer. Call Handshake before running any protocol to
// exchange public keys (unless PeerPK is set by other means).
//
// The connection is wrapped in a transport.StreamConn (idempotently), so
// every protocol session gets the stream NACK/resend recovery: a corrupt,
// dropped, duplicated or reordered chunk is re-requested once from the
// sender's retained copy before the session aborts with a typed error.
func NewPeer(role Role, conn transport.Conn, sk *paillier.PrivateKey, rng *rand.Rand) *Peer {
	return &Peer{Role: role, Conn: transport.NewStreamConn(conn), SK: sk, Rng: rng, MaskMag: DefaultMaskMag}
}

// Handshake exchanges public keys with the peer. Party A sends first. Keys
// travel inside a checksummed transport.Handshake envelope, so a handshake
// corrupted in flight surfaces as a typed transport.ErrCorrupt at setup time
// instead of a garbled modulus silently entering the homomorphic kernels.
func (p *Peer) Handshake() error {
	if p.Role == PartyA {
		if err := p.Conn.Send(transport.NewHandshake(&p.SK.PublicKey)); err != nil {
			return err
		}
		pk, err := p.recvHandshakePK()
		if err != nil {
			return err
		}
		p.PeerPK = pk
		return nil
	}
	pk, err := p.recvHandshakePK()
	if err != nil {
		return err
	}
	p.PeerPK = pk
	return p.Conn.Send(transport.NewHandshake(&p.SK.PublicKey))
}

// HandshakeWithin is Handshake under a bounded setup deadline: on expiry the
// connection is closed (unblocking the exchange) and the result is a typed
// transport.ErrTimeout. d ≤ 0 means no deadline.
func (p *Peer) HandshakeWithin(d time.Duration) error {
	return Within(d, func() {
		//blindfl:allow teardown deadline expiry: closing unblocks the handshake goroutine
		p.Conn.Close()
	}, p.Handshake)
}

// recvHandshakePK receives and verifies one sealed public-key handshake.
func (p *Peer) recvHandshakePK() (*paillier.PublicKey, error) {
	v, err := p.Conn.Recv()
	if err != nil {
		return nil, err
	}
	hs, ok := v.(*transport.Handshake)
	if !ok {
		return nil, fmt.Errorf("protocol: handshake: %w: got %T", transport.ErrCorrupt, v)
	}
	if err := hs.Verify(); err != nil {
		return nil, fmt.Errorf("protocol: handshake: %w", err)
	}
	pk, ok := hs.V.(*paillier.PublicKey)
	if !ok {
		return nil, fmt.Errorf("protocol: handshake: %w: want public key, got %T", transport.ErrCorrupt, hs.V)
	}
	return pk, nil
}

// Within runs op under a setup deadline (0 = none). On expiry it calls abort
// — which must unblock op, typically by closing the connection op waits on —
// waits for op to return, and reports a typed transport.ErrTimeout. The
// generic bounded-setup primitive behind HandshakeWithin and the serve CLI's
// session-setup deadline.
func Within(d time.Duration, abort func(), op func() error) error {
	if d <= 0 {
		return op()
	}
	done := make(chan error, 1)
	go func() { done <- op() }()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		abort()
		<-done
		return fmt.Errorf("protocol: setup exceeded %v: %w", d, transport.ErrTimeout)
	}
}

// protoErr carries a protocol failure through panic/recover inside Run.
type protoErr struct{ err error }

// Run executes f, converting Peer helper panics into an error.
func (p *Peer) Run(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(protoErr); ok {
				err = fmt.Errorf("%s: %w", p.Role, pe.err)
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

func (p *Peer) fail(format string, args ...any) {
	panic(protoErr{fmt.Errorf(format, args...)})
}

// Fail raises a typed protocol failure from layer code running under Run —
// the exported counterpart of the helpers' internal panic path, for checks
// (like the core layers' AN-coded residue verification) that live outside
// this package but inside a Run/RunParties/RunGroup scope.
func (p *Peer) Fail(format string, args ...any) {
	p.fail(format, args...)
}

// Send transmits a message, panicking (inside Run) on failure.
func (p *Peer) Send(v any) {
	if err := p.Conn.Send(v); err != nil {
		p.fail("send: %w", err)
	}
}

func (p *Peer) recv() any {
	v, err := p.Conn.Recv()
	if err != nil {
		p.fail("recv: %w", err)
	}
	return v
}

// RecvDense receives a *tensor.Dense.
func (p *Peer) RecvDense() *tensor.Dense {
	v := p.recv()
	d, ok := v.(*tensor.Dense)
	if !ok {
		p.fail("recv: want *tensor.Dense, got %T", v)
	}
	return d
}

// RecvCipher receives a *hetensor.CipherMatrix. Ciphertexts arriving under
// this party's own key get SK's public part attached so they can be used
// homomorphically without trusting the sender's copy of the key. The
// received matrix is minted a receiver-local table-cache identity: its
// cells are never replaced locally, so the persistent dot-table cache may
// key Straus tables to it.
func (p *Peer) RecvCipher() *hetensor.CipherMatrix {
	v := p.recv()
	c, ok := v.(*hetensor.CipherMatrix)
	if !ok {
		p.fail("recv: want *hetensor.CipherMatrix, got %T", v)
	}
	p.trustCipher(c)
	c.MintID()
	return c
}

// RecvBig receives a *hetensor.BigMatrix (an integer serve share).
func (p *Peer) RecvBig() *hetensor.BigMatrix {
	v := p.recv()
	m, ok := v.(*hetensor.BigMatrix)
	if !ok {
		p.fail("recv: want *hetensor.BigMatrix, got %T", v)
	}
	return m
}

// RecvInts receives a []int (e.g. a touched-coordinate set).
func (p *Peer) RecvInts() []int {
	v := p.recv()
	s, ok := v.([]int)
	if !ok {
		p.fail("recv: want []int, got %T", v)
	}
	return s
}

// RecvIntMatrix receives a *tensor.IntMatrix.
func (p *Peer) RecvIntMatrix() *tensor.IntMatrix {
	v := p.recv()
	m, ok := v.(*tensor.IntMatrix)
	if !ok {
		p.fail("recv: want *tensor.IntMatrix, got %T", v)
	}
	return m
}

// RecvPacked receives a *hetensor.PackedMatrix, reattaching the trusted
// public key as RecvCipher does.
func (p *Peer) RecvPacked() *hetensor.PackedMatrix {
	v := p.recv()
	c, ok := v.(*hetensor.PackedMatrix)
	if !ok {
		p.fail("recv: want *hetensor.PackedMatrix, got %T", v)
	}
	p.trustPacked(c)
	c.MintID()
	return c
}

// Mask samples a rows×cols matrix of uniform values in [−MaskMag, MaskMag),
// the obfuscation values (ε, φ, ξ, ρ …) of the paper's protocols.
func (p *Peer) Mask(rows, cols int) *tensor.Dense {
	return tensor.RandDense(p.Rng, rows, cols, p.MaskMag)
}

// Encrypt encrypts a plaintext matrix under this party's own key at scale.
func (p *Peer) Encrypt(d *tensor.Dense, scale uint) *hetensor.CipherMatrix {
	return hetensor.Encrypt(&p.SK.PublicKey, d, scale)
}

// EncryptAndSend encrypts d under this party's own key and ships it.
func (p *Peer) EncryptAndSend(d *tensor.Dense, scale uint) {
	p.Send(p.Encrypt(d, scale))
}

// EncryptAndSendPacked encrypts d packed (K values per ciphertext) under
// this party's own key and ships it: the refresh path of the packed source
// layers, at 1/K of the unpacked blinding cost.
func (p *Peer) EncryptAndSendPacked(d *tensor.Dense, scale uint) {
	p.Send(hetensor.PackEncrypt(&p.SK.PublicKey, d, scale))
}

// HE2SSSend is the masking half of Algorithm 1, run by the party that holds
// ⟦v⟧ under the *peer's* key: draw a mask φ, send ⟦v−φ⟧ (freshly
// re-randomized), and keep φ as this party's share of v.
func (p *Peer) HE2SSSend(c *hetensor.CipherMatrix) *tensor.Dense {
	phi := p.Mask(c.Rows, c.Cols)
	p.Send(c.SubPlainFresh(phi))
	return phi
}

// HE2SSRecv is the decrypting half of Algorithm 1, run by the key owner:
// receive ⟦v−φ⟧ and decrypt it as this party's share of v.
func (p *Peer) HE2SSRecv() *tensor.Dense {
	c := p.RecvCipher()
	if c.PK.N.Cmp(p.SK.N) != 0 {
		p.fail("HE2SSRecv: ciphertext is not under this party's key")
	}
	d := hetensor.Decrypt(p.SK, c)
	p.spotCheckCipher(c, d)
	return d
}

// HE2SSSendPacked is HE2SSSend for a packed ciphertext matrix: the fresh
// re-randomizing encryptions of the mask are packed too, so the conversion
// costs 1/K of the unpacked blinding exponentiations.
func (p *Peer) HE2SSSendPacked(c *hetensor.PackedMatrix) *tensor.Dense {
	phi := p.Mask(c.Rows, c.Cols)
	p.Send(c.SubPlainFresh(phi))
	return phi
}

// HE2SSRecvPacked is the decrypting half of Algorithm 1 for a packed
// matrix: receive packed ⟦v−φ⟧ and decrypt-unpack it as this party's share.
func (p *Peer) HE2SSRecvPacked() *tensor.Dense {
	c := p.RecvPacked()
	if c.PK.N.Cmp(p.SK.N) != 0 {
		p.fail("HE2SSRecvPacked: ciphertext is not under this party's key")
	}
	d := hetensor.DecryptPacked(p.SK, c)
	p.spotCheckPacked(c, d)
	return d
}

// SS2HE is Algorithm 2: both parties hold one additive piece of v; each
// encrypts its piece under its own key and sends it; each returns
// ⟦v⟧ under the *peer's* key by homomorphically adding its own plaintext
// piece to the received encrypted piece. Party A sends first.
func (p *Peer) SS2HE(piece *tensor.Dense, scale uint) *hetensor.CipherMatrix {
	if p.Role == PartyA {
		p.EncryptAndSend(piece, scale)
		other := p.RecvCipher()
		return other.AddPlain(piece)
	}
	other := p.RecvCipher()
	p.EncryptAndSend(piece, scale)
	return other.AddPlain(piece)
}

// Pipe wires two in-process peers together: it generates (or reuses) key
// pairs, connects them over a buffered channel transport, and completes the
// handshake. Intended for tests, benchmarks and single-binary simulation.
func Pipe(skA, skB *paillier.PrivateKey, seed int64) (*Peer, *Peer, error) {
	ca, cb := transport.Pair(4096)
	return PipeOn(ca, cb, skA, skB, seed)
}

// PipeOn is Pipe over caller-supplied connections (a counted pair, a
// simulated-WAN pair, an established TCP session): it builds the two peers
// and completes the handshake concurrently. Mask/init RNG streams are
// derived per (seed, session 0, role) — see sessionRNG — so a two-party pipe
// is exactly session 0 of a group, and pipes built from nearby seeds never
// share streams (the old seed/seed+1 scheme made session i's Party B draw
// session i+1's Party A masks when callers seeded adjacent sessions with
// consecutive values).
func PipeOn(ca, cb transport.Conn, skA, skB *paillier.PrivateKey, seed int64) (*Peer, *Peer, error) {
	a := NewPeer(PartyA, ca, skA, sessionRNG(seed, 0, PartyA))
	b := NewPeer(PartyB, cb, skB, sessionRNG(seed, 0, PartyB))
	a.SetStreamIdentity(seed, 0)
	b.SetStreamIdentity(seed, 0)
	errs := make(chan error, 2)
	go func() { errs <- a.Handshake() }()
	go func() { errs <- b.Handshake() }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			return nil, nil, err
		}
	}
	return a, b, nil
}

// RunParties executes both party functions concurrently and returns the
// first error (or nil). It is the standard way to drive a whole protocol in
// one process.
//
// When one party fails, the other is usually blocked in Recv waiting for a
// message that will never come; RunParties closes both connections on the
// first error so the survivor unblocks with transport.ErrClosed instead of
// hanging forever. The session is not reusable after a failed run.
func RunParties(a, b *Peer, fa, fb func()) error {
	errs := make(chan error, 2)
	go func() { errs <- a.Run(fa) }()
	go func() { errs <- b.Run(fb) }()
	var first error
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
			a.Conn.Close()
			b.Conn.Close()
		}
	}
	return first
}
