package protocol

import (
	"sync"

	"blindfl/internal/paillier"
)

// KeyBits is the Paillier modulus size used when generating session keys.
// 1024 bits is the benchmark default; tests use TestKeys (512 bits) for
// speed. Production deployments should use 2048.
const KeyBits = 1024

var (
	testKeyOnce sync.Once
	testKeyA    *paillier.PrivateKey
	testKeyB    *paillier.PrivateKey
)

// TestKeys returns a process-wide cached pair of 512-bit Paillier keys.
// Key generation is a per-deployment setup cost, not a per-protocol cost,
// so tests and benchmarks share one pair.
func TestKeys() (*paillier.PrivateKey, *paillier.PrivateKey) {
	testKeyOnce.Do(func() {
		var err error
		testKeyA, err = paillier.GenerateKey(paillier.Rand, 512)
		if err != nil {
			panic(err)
		}
		testKeyB, err = paillier.GenerateKey(paillier.Rand, 512)
		if err != nil {
			panic(err)
		}
	})
	return testKeyA, testKeyB
}

// EnableSecretOps registers the paillier CRT fast paths for each key, so
// every homomorphic op on ciphertexts under these keys — pool and inline
// encryption blinding, MulPlain and the Straus dot kernels — exploits the
// known factorization (paillier.SecretOps). Register only keys this process
// legitimately holds: in a real deployment each party calls it with its own
// key, and the label party's decrypt-adjacent ops get the speedup. In an
// in-process two-party simulation registering both keys accelerates both
// parties — more than a real deployment would see — so benchmarks and
// ablations gate it explicitly (blindfl-train -secretops). Results decrypt
// identically with or without the fast paths.
func EnableSecretOps(sks ...*paillier.PrivateKey) {
	for _, sk := range sks {
		paillier.RegisterSecretOps(sk)
	}
}

// DisableSecretOps removes the registrations made by EnableSecretOps.
func DisableSecretOps(sks ...*paillier.PrivateKey) {
	for _, sk := range sks {
		paillier.UnregisterSecretOps(&sk.PublicKey)
	}
}
