package protocol

import (
	"sync"

	"blindfl/internal/paillier"
)

// KeyBits is the Paillier modulus size used when generating session keys.
// 1024 bits is the benchmark default; tests use TestKeys (512 bits) for
// speed. Production deployments should use 2048.
const KeyBits = 1024

var (
	testKeyOnce sync.Once
	testKeyA    *paillier.PrivateKey
	testKeyB    *paillier.PrivateKey
)

// TestKeys returns a process-wide cached pair of 512-bit Paillier keys.
// Key generation is a per-deployment setup cost, not a per-protocol cost,
// so tests and benchmarks share one pair.
func TestKeys() (*paillier.PrivateKey, *paillier.PrivateKey) {
	testKeyOnce.Do(func() {
		var err error
		testKeyA, err = paillier.GenerateKey(paillier.Rand, 512)
		if err != nil {
			panic(err)
		}
		testKeyB, err = paillier.GenerateKey(paillier.Rand, 512)
		if err != nil {
			panic(err)
		}
	})
	return testKeyA, testKeyB
}
