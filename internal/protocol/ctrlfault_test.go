package protocol

import (
	"errors"
	"testing"
	"time"

	"blindfl/internal/transport"
)

// Control-plane faults at session setup: a corrupted handshake envelope must
// surface as the typed integrity error before a garbled key can enter the
// homomorphic kernels, and a dropped handshake — a hang, not an error — must
// become a typed timeout under the deadline layer.

// faultedHandshakePair assembles a two-party pipe whose Party-A endpoint
// sends through a FaultConn running plan and whose Party-B endpoint is connB
// (or the bare pair end when nil), then starts A's handshake in the
// background. Callers drive B's side and drain aErr.
func faultedHandshakePair(t *testing.T, seed int64, label string, plan transport.FaultPlan,
	wrapB func(transport.Conn) transport.Conn) (*Peer, *Peer, chan error) {
	t.Helper()
	skA, skB := TestKeys()
	ca, cb := transport.Pair(16)
	fc := transport.NewFaultConn(ca, seed, label, plan)
	var connB transport.Conn = cb
	if wrapB != nil {
		connB = wrapB(cb)
	}
	a := NewPeer(PartyA, fc, skA, sessionRNG(seed, 0, PartyA))
	b := NewPeer(PartyB, connB, skB, sessionRNG(seed, 0, PartyB))
	aErr := make(chan error, 1)
	go func() { aErr <- a.Handshake() }()
	return a, b, aErr
}

// TestFaultHandshakeCorruptFailsTyped: Party A's sealed public-key envelope
// is bit-flipped in flight (stale checksum retained); Party B must reject
// the session with transport.ErrCorrupt at setup time.
func TestFaultHandshakeCorruptFailsTyped(t *testing.T) {
	_, b, aErr := faultedHandshakePair(t, 711, "hs-flip",
		transport.FaultPlan{CtrlFlipProb: 1, MaxFaults: 1}, nil)
	err := b.Handshake()
	if !errors.Is(err, transport.ErrCorrupt) {
		t.Fatalf("err = %v, want transport.ErrCorrupt", err)
	}
	// The refused session is torn down; A unblocks with a transport error
	// instead of waiting forever for a reply that will never come.
	b.Conn.Close()
	if err := <-aErr; err == nil {
		t.Fatal("Party A completed a handshake its peer refused")
	}
}

// TestFaultHandshakeDropTimesOut: Party A's handshake is dropped on the
// wire, so Party B sees silence — with its endpoint deadline-wrapped, the
// hang becomes a typed ErrTimeout within 2x the configured deadline, and the
// fail-stop close unblocks the stuck peer.
func TestFaultHandshakeDropTimesOut(t *testing.T) {
	const deadline = 200 * time.Millisecond
	_, b, aErr := faultedHandshakePair(t, 712, "hs-drop",
		transport.FaultPlan{CtrlDropProb: 1, MaxFaults: 1},
		func(c transport.Conn) transport.Conn { return transport.NewDeadlineConn(c, 0, deadline, 0) })
	start := time.Now()
	err := b.Handshake()
	elapsed := time.Since(start)
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v, want transport.ErrTimeout", err)
	}
	if elapsed > 2*deadline {
		t.Fatalf("dropped handshake surfaced after %v, want within 2x the %v deadline", elapsed, deadline)
	}
	if err := <-aErr; err == nil {
		t.Fatal("Party A completed a handshake its peer never received")
	}
}

// TestFaultHandshakeWithinBoundsSilentPeer pins the bounded-setup primitive
// the serve CLI uses: a handshake against a peer that never speaks fails
// with a typed ErrTimeout within 2x the deadline instead of blocking the
// cold start forever.
func TestFaultHandshakeWithinBoundsSilentPeer(t *testing.T) {
	const deadline = 150 * time.Millisecond
	_, skB := TestKeys()
	_, cb := transport.Pair(4)
	b := NewPeer(PartyB, cb, skB, sessionRNG(713, 0, PartyB))
	start := time.Now()
	err := b.HandshakeWithin(deadline)
	elapsed := time.Since(start)
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v, want transport.ErrTimeout", err)
	}
	if elapsed > 2*deadline {
		t.Fatalf("silent-peer setup surfaced after %v, want within 2x the %v deadline", elapsed, deadline)
	}
}
