package protocol

import (
	"math"
	"strings"
	"testing"

	"blindfl/internal/hetensor"
	"blindfl/internal/tensor"
)

// Streamed conversions must reconstruct exactly what the monolithic ones do.

func TestHE2SSStreamReconstruction(t *testing.T) {
	a, b := newPipe(t, 40)
	a.ChunkRows, b.ChunkRows = 2, 2
	v := tensor.FromSlice(5, 2, []float64{1.5, -2.25, 3, 0, -7.5, 0.125, 42, -1, 2, 9})
	var shareA, shareB *tensor.Dense
	err := RunParties(a, b, func() {
		c := hetensor.Encrypt(a.PeerPK, v, 1)
		shareA = a.HE2SSSendStream(c)
	}, func() {
		shareB = b.HE2SSRecvStream()
	})
	if err != nil {
		t.Fatal(err)
	}
	got := shareA.Add(shareB)
	if !got.Equal(v, 1e-9) {
		t.Fatalf("streamed HE2SS shares do not reconstruct v: %v", got.Data)
	}
}

func TestHE2SSPackedStreamReconstruction(t *testing.T) {
	a, b := newPipe(t, 41)
	a.ChunkRows, b.ChunkRows = 2, 2
	v := tensor.FromSlice(5, 3, []float64{
		1.5, -2.25, 3, 0, -7.5, 0.125, 42, -1, 2, 9, -0.5, 4, 1, 2, 3})
	var shareA, shareB *tensor.Dense
	err := RunParties(a, b, func() {
		c := hetensor.PackEncrypt(a.PeerPK, v, 1)
		shareA = a.HE2SSSendPackedStream(c)
	}, func() {
		shareB = b.HE2SSRecvPackedStream()
	})
	if err != nil {
		t.Fatal(err)
	}
	got := shareA.Add(shareB)
	if !got.Equal(v, 1e-9) {
		t.Fatalf("streamed packed HE2SS shares do not reconstruct v: %v", got.Data)
	}
}

func TestSS2HEStreamMatchesPieces(t *testing.T) {
	a, b := newPipe(t, 42)
	a.ChunkRows, b.ChunkRows = 2, 2
	pieceA := tensor.FromSlice(5, 2, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pieceB := tensor.FromSlice(5, 2, []float64{-0.5, 1, 0, 2, -3, 4, 0.25, -1, 7, 0})
	want := pieceA.Add(pieceB)

	var atB, atA *tensor.Dense
	err := RunParties(a, b, func() {
		enc := a.SS2HEStream(pieceA, 1) // ⟦v⟧ under B's key
		// Ship it back so B (the key owner) can decrypt and we can verify.
		a.Send(enc)
	}, func() {
		enc := b.SS2HEStream(pieceB, 1) // ⟦v⟧ under A's key
		atB = hetensor.Decrypt(b.SK, b.RecvCipher())
		b.Send(enc)
	})
	if err != nil {
		t.Fatal(err)
	}
	err = a.Run(func() {
		atA = hetensor.Decrypt(a.SK, a.RecvCipher())
	})
	if err != nil {
		t.Fatal(err)
	}
	if !atB.Equal(want, 1e-9) || !atA.Equal(want, 1e-9) {
		t.Fatalf("SS2HEStream results diverge: %v / %v want %v", atB.Data, atA.Data, want.Data)
	}
}

// TestStreamRecvRejectsOwnKeyViolation mirrors the monolithic foreign-key
// guard on the streamed path.
func TestStreamRecvRejectsOwnKeyViolation(t *testing.T) {
	a, b := newPipe(t, 43)
	err := RunParties(a, b,
		func() {
			// Wrongly stream a ciphertext under A's own key to the decryptor.
			a.HE2SSSendStream(hetensor.Encrypt(&a.SK.PublicKey, tensor.NewDense(3, 1), 1))
		},
		func() {
			b.HE2SSRecvStream()
		})
	if err == nil || !strings.Contains(err.Error(), "not under this party's key") {
		t.Fatalf("err = %v", err)
	}
}

// TestStreamStatsAccounting checks the per-chunk counters the bench tables
// report: chunk counts on both sides and a receive-wait measurement.
func TestStreamStatsAccounting(t *testing.T) {
	a, b := newPipe(t, 44)
	a.ChunkRows, b.ChunkRows = 2, 2
	v := tensor.FromSlice(7, 1, []float64{1, 2, 3, 4, 5, 6, 7})
	err := RunParties(a, b,
		func() { a.EncryptAndSendStream(v, 1) },
		func() { b.RecvCipherStream() })
	if err != nil {
		t.Fatal(err)
	}
	if a.Stream.StreamsSent != 1 || a.Stream.ChunksSent != 4 {
		t.Fatalf("sender stats = %+v, want 1 stream / 4 chunks", a.Stream)
	}
	if b.Stream.StreamsRecv != 1 || b.Stream.ChunksRecv != 4 {
		t.Fatalf("receiver stats = %+v, want 1 stream / 4 chunks", b.Stream)
	}
	if b.Stream.RecvWait < 0 {
		t.Fatalf("negative recv wait %v", b.Stream.RecvWait)
	}
}

// TestStreamedRefreshRoundTrip pins RecvCipherStream assembly: the receiver
// stores the chunked matrix (as the refresh paths do), ships it back, and
// the key owner's decryption must reproduce the plaintext exactly.
func TestStreamedRefreshRoundTrip(t *testing.T) {
	a, b := newPipe(t, 45)
	a.ChunkRows, b.ChunkRows = 3, 3
	v := tensor.FromSlice(8, 2, []float64{
		0.5, -1, 2, 3, -4.25, 5, 6, -7, 8, 9.5, -10, 11, 12, -13, 14, 15})
	var got *tensor.Dense
	err := RunParties(a, b,
		func() {
			a.EncryptAndSendStream(v, 1)
			got = hetensor.Decrypt(a.SK, a.RecvCipher())
		},
		func() { b.Send(b.RecvCipherStream()) })
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v, 1e-9) {
		t.Fatalf("streamed refresh decrypts to %v", got.Data)
	}

	var gotPacked *tensor.Dense
	err = RunParties(a, b,
		func() {
			a.EncryptAndSendPackedStream(v, 1)
			gotPacked = hetensor.DecryptPacked(a.SK, a.RecvPacked())
		},
		func() { b.Send(b.RecvPackedStream()) })
	if err != nil {
		t.Fatal(err)
	}
	if !gotPacked.Equal(v, 1e-9) {
		t.Fatalf("streamed packed refresh decrypts to %v", gotPacked.Data)
	}
}

// TestStreamMismatchedChunkRowsInterop pins that chunk sizing is
// sender-local: receivers take each chunk's height from the payload, so
// peers configured with different ChunkRows still reconstruct correctly.
func TestStreamMismatchedChunkRowsInterop(t *testing.T) {
	a, b := newPipe(t, 47)
	a.ChunkRows, b.ChunkRows = 3, 5 // sender chunks by 3; receiver set differently
	v := tensor.FromSlice(7, 2, []float64{1, -2, 3, -4, 5, -6, 7, -8, 9, -10, 11, -12, 13, -14})
	var shareA, shareB *tensor.Dense
	err := RunParties(a, b, func() {
		shareA = a.HE2SSSendStream(hetensor.Encrypt(a.PeerPK, v, 1))
	}, func() {
		shareB = b.HE2SSRecvStream()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := shareA.Add(shareB); !got.Equal(v, 1e-9) {
		t.Fatalf("mismatched-chunk shares do not reconstruct v: %v", got.Data)
	}
}

// TestStreamSingleRowMatrix pins the degenerate chunking case (rows <
// ChunkRows: one chunk).
func TestStreamSingleRowMatrix(t *testing.T) {
	a, b := newPipe(t, 46)
	v := tensor.FromSlice(1, 3, []float64{math.Pi, -1, 0.5})
	var got *tensor.Dense
	err := RunParties(a, b,
		func() {
			a.EncryptAndSendStream(v, 1)
			got = hetensor.Decrypt(a.SK, a.RecvCipher())
		},
		func() { b.Send(b.RecvCipherStream()) })
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v, 1e-9) {
		t.Fatalf("single-chunk stream decrypts to %v", got.Data)
	}
}
