// Sharded label party (PR 10): the k feature-party sessions partition across
// shard worker processes on a deterministic Calvin-style schedule. Every
// process derives the identical per-epoch plan — batch permutation, chunk
// boundaries, checkpoint epochs — from the shared seed, so the shards need
// no scheduling traffic at all: the only messages are connect-time hellos
// carrying the schedule fingerprint and the per-batch data plane (partial
// activation sums up, one gradient broadcast down), and partials merge in
// fixed shard order so the sharded run is bit-identical to the
// single-process Group run.
//
// This file is the protocol layer of that design: the session→shard plan,
// the fingerprint handshake (mismatched seeds or options fail typed at
// connect), the sealed sequence-counted shard links, and the ShardGroup
// owner with RunGroup-style close-all-on-first-error teardown.
package protocol

import (
	"errors"
	"fmt"

	"blindfl/internal/hetensor"
	"blindfl/internal/tensor"
	"blindfl/internal/transport"
)

// ErrShardMismatch is the typed refusal for a shard whose deterministic
// schedule disagrees with the root's: a fingerprint mismatch at connect
// (different seed, engine options or model shape) or a data-plane sequence
// desynchronization (the schedules diverged mid-run). Callers match it with
// errors.Is.
var ErrShardMismatch = errors.New("protocol: shard schedule mismatch")

// ErrShardLost is the typed error for a shard link failing mid-run: the
// worker process died or its connection broke. RunShardRoot guarantees a
// lost shard surfaces as exactly one ErrShardLost, not as the k cascading
// ErrClosed errors its teardown provokes on the surviving sessions.
var ErrShardLost = errors.New("protocol: shard lost")

// ShardPlan is the static partition of the label party's sessions across
// shard workers: sessions split contiguously, the first Sessions%Shards
// shards one wider — the same base/remainder rule data.SplitCols uses for
// feature columns, so the two partitions can never disagree about widths.
type ShardPlan struct {
	Sessions int // global session (feature party) count
	Shards   int // worker count
}

// Validate checks the plan is realizable: at least one session, at least one
// shard, and no shard left empty.
func (p ShardPlan) Validate() error {
	if p.Sessions < 1 {
		return fmt.Errorf("protocol: shard plan needs at least one session, have %d", p.Sessions)
	}
	if p.Shards < 1 {
		return fmt.Errorf("protocol: shard plan needs at least one shard, have %d", p.Shards)
	}
	if p.Shards > p.Sessions {
		return fmt.Errorf("protocol: %d shards over %d sessions would leave shards empty", p.Shards, p.Sessions)
	}
	return nil
}

// Range returns shard s's session slice [lo, hi) in global session indices.
func (p ShardPlan) Range(s int) (lo, hi int) {
	base, rem := p.Sessions/p.Shards, p.Sessions%p.Shards
	lo = s * base
	if s < rem {
		lo += s
	} else {
		lo += rem
	}
	hi = lo + base
	if s < rem {
		hi++
	}
	return lo, hi
}

// Width returns how many sessions shard s owns.
func (p ShardPlan) Width(s int) int {
	lo, hi := p.Range(s)
	return hi - lo
}

// Owner returns the shard that owns global session i.
func (p ShardPlan) Owner(i int) int {
	base, rem := p.Sessions/p.Shards, p.Sessions%p.Shards
	wide := rem * (base + 1)
	if i < wide {
		return i / (base + 1)
	}
	return rem + (i-wide)/base
}

// ShardLink is one sealed, sequence-counted conn between the root and a
// shard worker. Every message crosses inside a transport.Handshake envelope
// (structural checksum, typed transport.ErrCorrupt on mismatch), and the
// data-plane messages carry per-direction ordinals both ends count in
// lockstep, so a desynchronized schedule fails typed instead of silently
// merging the wrong batch.
type ShardLink struct {
	Shard int
	Conn  transport.Conn

	seqIn, seqOut uint64
}

// sendSealed ships v inside a checksummed envelope.
func (l *ShardLink) sendSealed(v any) error {
	return l.Conn.Send(transport.NewHandshake(v))
}

// recvSealed receives and verifies one envelope.
func (l *ShardLink) recvSealed() (any, error) {
	v, err := l.Conn.Recv()
	if err != nil {
		return nil, err
	}
	hs, ok := v.(*transport.Handshake)
	if !ok {
		return nil, fmt.Errorf("protocol: shard link: %w: got %T", transport.ErrCorrupt, v)
	}
	if err := hs.Verify(); err != nil {
		return nil, fmt.Errorf("protocol: shard link: %w", err)
	}
	return hs.V, nil
}

// failLink converts a link failure into the panic the enclosing Catch/Run
// recovers. Corruption keeps its ErrCorrupt typing; everything else becomes
// ErrShardLost with the cause flattened (%v, deliberately not %w) so the
// teardown's ErrClosed cascade on the other sessions cannot masquerade as —
// or outrank — the one real loss.
func (l *ShardLink) failLink(op string, err error) {
	if errors.Is(err, transport.ErrCorrupt) {
		panic(protoErr{fmt.Errorf("shard %d %s: %w", l.Shard, op, err)})
	}
	panic(protoErr{fmt.Errorf("%w: shard %d %s: %v", ErrShardLost, l.Shard, op, err)})
}

// failDesync reports a sequence-counter disagreement.
func (l *ShardLink) failDesync(op string, got, want uint64) {
	panic(protoErr{fmt.Errorf("%w: shard %d %s seq %d, want %d", ErrShardMismatch, l.Shard, op, got, want)})
}

// Send seals and ships v, panicking on failure (protocol-body style; run it
// under Peer.Run, Group.Run or Catch).
func (l *ShardLink) Send(v any) {
	if err := l.sendSealed(v); err != nil {
		l.failLink("send", err)
	}
}

// recvTyped receives one sealed message and panics unless it has the
// expected dynamic type, which the caller asserts.
func (l *ShardLink) recvTyped(op string) any {
	v, err := l.recvSealed()
	if err != nil {
		l.failLink(op, err)
	}
	return v
}

// SendParts ships one mini-batch's per-session forward partials (worker →
// root), stamping the outbound ordinal.
func (l *ShardLink) SendParts(zs []*tensor.Dense) {
	seq := l.seqOut
	l.seqOut++
	l.Send(&transport.ShardParts{Seq: seq, Zs: zs})
}

// RecvParts receives one mini-batch's partials (root side), checking the
// ordinal and the session count against the plan.
func (l *ShardLink) RecvParts(want int) []*tensor.Dense {
	m, ok := l.recvTyped("recv parts").(*transport.ShardParts)
	if !ok {
		l.failLink("recv parts", fmt.Errorf("%w: unexpected message", transport.ErrCorrupt))
	}
	if m.Seq != l.seqIn {
		l.failDesync("parts", m.Seq, l.seqIn)
	}
	l.seqIn++
	if len(m.Zs) != want {
		panic(protoErr{fmt.Errorf("%w: shard %d sent %d partials, plan says %d", ErrShardMismatch, l.Shard, len(m.Zs), want)})
	}
	return m.Zs
}

// SendGrad broadcasts the root's gradient for one mini-batch (root → worker).
func (l *ShardLink) SendGrad(g *tensor.Dense) {
	seq := l.seqOut
	l.seqOut++
	l.Send(&transport.ShardGrad{Seq: seq, G: g})
}

// RecvGrad receives the gradient broadcast (worker side).
func (l *ShardLink) RecvGrad() *tensor.Dense {
	m, ok := l.recvTyped("recv grad").(*transport.ShardGrad)
	if !ok {
		l.failLink("recv grad", fmt.Errorf("%w: unexpected message", transport.ErrCorrupt))
	}
	if m.Seq != l.seqIn {
		l.failDesync("grad", m.Seq, l.seqIn)
	}
	l.seqIn++
	return m.G
}

// SendShare ships the worker's pre-summed serve-path share partial for one
// eval batch.
func (l *ShardLink) SendShare(s *hetensor.BigMatrix) {
	seq := l.seqOut
	l.seqOut++
	l.Send(&transport.ShardShare{Seq: seq, S: s})
}

// RecvShare receives one shard's share partial (root side).
func (l *ShardLink) RecvShare() *hetensor.BigMatrix {
	m, ok := l.recvTyped("recv share").(*transport.ShardShare)
	if !ok {
		l.failLink("recv share", fmt.Errorf("%w: unexpected message", transport.ErrCorrupt))
	}
	if m.Seq != l.seqIn {
		l.failDesync("share", m.Seq, l.seqIn)
	}
	l.seqIn++
	return m.S
}

// SendLayers ships the worker's serialized per-session layer halves for a
// checkpoint boundary (epoch < 0 marks the final serve checkpoint).
func (l *ShardLink) SendLayers(epoch int, blobs [][]byte) {
	l.Send(&transport.ShardLayers{Epoch: epoch, Blobs: blobs})
}

// RecvLayers receives one shard's layer blobs, checking the epoch marker and
// blob count.
func (l *ShardLink) RecvLayers(epoch, want int) [][]byte {
	m, ok := l.recvTyped("recv layers").(*transport.ShardLayers)
	if !ok {
		l.failLink("recv layers", fmt.Errorf("%w: unexpected message", transport.ErrCorrupt))
	}
	if m.Epoch != epoch || len(m.Blobs) != want {
		panic(protoErr{fmt.Errorf("%w: shard %d sent %d layer blobs for epoch %d, want %d for epoch %d",
			ErrShardMismatch, l.Shard, len(m.Blobs), m.Epoch, want, epoch)})
	}
	return m.Blobs
}

// ShardGroup owns the root's side of a sharded run: the plan, one link per
// shard, and every session conn dialed through it. Close tears the whole set
// down close-once; RunShardRoot invokes it on the first party error so
// survivors unblock with ErrClosed instead of hanging (the RunGroup
// discipline, one level up).
type ShardGroup struct {
	Plan  ShardPlan
	links []*ShardLink

	// sessions are the feature-party conns DialSessions opened; they belong
	// to the group so one Close tears down the data plane and the sessions
	// together.
	sessions []transport.Conn
}

// ConnectShards dials every worker in the plan, runs the sealed hello/ack
// exchange carrying the schedule fingerprint, and returns the connected
// group. Any dial, transport or fingerprint failure closes everything opened
// so far and returns a typed error (ErrShardMismatch for a schedule
// disagreement).
func ConnectShards(plan ShardPlan, fp uint64, dial func(shard int) (transport.Conn, error)) (*ShardGroup, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	sg := &ShardGroup{Plan: plan}
	for s := 0; s < plan.Shards; s++ {
		c, err := dial(s)
		if err != nil {
			sg.Close()
			return nil, fmt.Errorf("protocol: dialing shard %d: %w", s, err)
		}
		l := &ShardLink{Shard: s, Conn: c}
		sg.links = append(sg.links, l)
		hello := &transport.ShardHello{Shard: s, Shards: plan.Shards, Sessions: plan.Sessions, Fingerprint: fp}
		if err := l.sendSealed(hello); err != nil {
			sg.Close()
			return nil, fmt.Errorf("protocol: shard %d hello: %w", s, err)
		}
		v, err := l.recvSealed()
		if err != nil {
			sg.Close()
			return nil, fmt.Errorf("protocol: shard %d ack: %w", s, err)
		}
		ack, ok := v.(*transport.ShardAck)
		if !ok {
			sg.Close()
			return nil, fmt.Errorf("protocol: shard %d ack: %w: got %T", s, transport.ErrCorrupt, v)
		}
		if ack.Shard != s || ack.Fingerprint != fp {
			sg.Close()
			return nil, fmt.Errorf("%w: shard %d acked shard=%d fingerprint=%016x, want shard=%d fingerprint=%016x",
				ErrShardMismatch, s, ack.Shard, ack.Fingerprint, s, fp)
		}
	}
	return sg, nil
}

// Link returns shard s's link (for the worker-side setup exchange).
func (sg *ShardGroup) Link(s int) *ShardLink { return sg.links[s] }

// Setup ships the model layer's opaque setup document to shard s and checks
// the worker's post-setup ack: the worker recomputes the schedule
// fingerprint from the document's contents and echoes it, so a worker that
// would run a different schedule is refused here, before any training
// traffic.
func (sg *ShardGroup) Setup(s int, kind string, doc []byte, fp uint64) error {
	l := sg.links[s]
	if err := l.sendSealed(&transport.ShardBlob{Kind: kind, Data: doc}); err != nil {
		return fmt.Errorf("protocol: shard %d setup: %w", s, err)
	}
	v, err := l.recvSealed()
	if err != nil {
		return fmt.Errorf("protocol: shard %d setup ack: %w", s, err)
	}
	ack, ok := v.(*transport.ShardAck)
	if !ok {
		return fmt.Errorf("protocol: shard %d setup ack: %w: got %T", s, transport.ErrCorrupt, v)
	}
	if ack.Fingerprint != fp {
		return fmt.Errorf("%w: shard %d computed schedule fingerprint %016x, root has %016x",
			ErrShardMismatch, s, ack.Fingerprint, fp)
	}
	return nil
}

// DialSessions opens one feature-party conn per session through dial (routed
// to the session's owner shard) and sends each its sealed SessionHello. The
// conns join the group's teardown set; on any failure everything is closed
// and a typed error returned.
func (sg *ShardGroup) DialSessions(fp uint64, dial func(shard int) (transport.Conn, error)) ([]transport.Conn, error) {
	conns := make([]transport.Conn, sg.Plan.Sessions)
	for i := 0; i < sg.Plan.Sessions; i++ {
		c, err := dial(sg.Plan.Owner(i))
		if err != nil {
			sg.Close()
			return nil, fmt.Errorf("protocol: dialing session %d (shard %d): %w", i, sg.Plan.Owner(i), err)
		}
		sg.sessions = append(sg.sessions, c)
		l := ShardLink{Shard: sg.Plan.Owner(i), Conn: c}
		if err := l.sendSealed(&transport.SessionHello{Session: i, Fingerprint: fp}); err != nil {
			sg.Close()
			return nil, fmt.Errorf("protocol: session %d hello: %w", i, err)
		}
		conns[i] = c
	}
	return conns, nil
}

// GatherParts receives one mini-batch's forward partials from every shard
// and lays them out in global session order — the fixed merge order the
// bit-exactness contract depends on. Panics protocol-style on failure.
func (sg *ShardGroup) GatherParts() []*tensor.Dense {
	zs := make([]*tensor.Dense, sg.Plan.Sessions)
	for s, l := range sg.links {
		lo, hi := sg.Plan.Range(s)
		copy(zs[lo:hi], l.RecvParts(hi-lo))
	}
	return zs
}

// BroadcastGrad ships the root's gradient to every shard.
func (sg *ShardGroup) BroadcastGrad(g *tensor.Dense) {
	for _, l := range sg.links {
		l.SendGrad(g)
	}
}

// GatherShareSum receives every shard's serve-path share partial and folds
// them in fixed shard order. Shares are exact scaled integers, so the
// shard-order fold plus each worker's session-order pre-sum equals the
// all-sessions session-order fold bit for bit — the associativity the float
// training partials do not have, which is why GatherParts ships per-session
// matrices instead.
func (sg *ShardGroup) GatherShareSum() *hetensor.BigMatrix {
	var sum *hetensor.BigMatrix
	for _, l := range sg.links {
		sh := l.RecvShare()
		if sum == nil {
			sum = sh
		} else {
			sum.AddInPlace(sh)
		}
	}
	return sum
}

// GatherLayers receives every shard's serialized layer halves for a
// checkpoint boundary, in global session order.
func (sg *ShardGroup) GatherLayers(epoch int) [][]byte {
	blobs := make([][]byte, sg.Plan.Sessions)
	for s, l := range sg.links {
		lo, hi := sg.Plan.Range(s)
		copy(blobs[lo:hi], l.RecvLayers(epoch, hi-lo))
	}
	return blobs
}

// Close tears down every shard link and every session conn the group owns.
// Conn closes are close-once, so Close is safe to call from any number of
// error paths.
func (sg *ShardGroup) Close() error {
	for _, l := range sg.links {
		l.Conn.Close()
	}
	for _, c := range sg.sessions {
		c.Close()
	}
	return nil
}

// Catch executes f, converting protocol-helper panics into an error — the
// runner primitive behind Peer.Run and Group.Run, exported for callers (the
// shard root and worker loops) that drive protocol layers outside a party
// runner.
func Catch(label string, f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(protoErr); ok {
				err = fmt.Errorf("%s: %w", label, pe.err)
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

// RunShardRoot runs the k in-process feature parties and the root label-party
// loop concurrently, with the shard-mode teardown contract: the first error
// closes every feature-party conn and the whole shard group, and the error
// reported is the *one* that names the failure — a lost shard surfaces as a
// single typed ErrShardLost, never as the cascade of ErrClosed errors the
// teardown provokes on the surviving parties (the Group.CloseSession /
// markLost lesson, applied across processes).
func RunShardRoot(as []*Peer, sg *ShardGroup, fa func(i int) error, fb func() error) error {
	errs := make(chan error, len(as)+1)
	for i := range as {
		i := i
		go func() { errs <- fa(i) }()
	}
	go func() { errs <- fb() }()

	var all []error
	closed := false
	for n := 0; n < len(as)+1; n++ {
		err := <-errs
		if err == nil {
			continue
		}
		if !closed {
			closed = true
			for _, p := range as {
				p.Conn.Close()
			}
			sg.Close()
		}
		all = append(all, err)
	}
	if len(all) == 0 {
		return nil
	}
	// Prefer the typed loss, then any non-cascade error, then first arrival.
	for _, err := range all {
		if errors.Is(err, ErrShardLost) {
			return err
		}
	}
	for _, err := range all {
		if !errors.Is(err, transport.ErrClosed) {
			return err
		}
	}
	return all[0]
}

// AcceptShard runs the worker's side of the connect exchange on the control
// conn: receive the sealed hello, validate the plan shape, and ack. The
// fingerprint is *echoed*, not yet validated — the worker can only recompute
// it once the setup document arrives (RecvSetup/AckSetup) — so a schedule
// mismatch is refused at the setup ack, still before any training traffic.
func AcceptShard(ctl transport.Conn) (*ShardLink, *transport.ShardHello, error) {
	l := &ShardLink{Conn: ctl}
	v, err := l.recvSealed()
	if err != nil {
		return nil, nil, fmt.Errorf("protocol: shard hello: %w", err)
	}
	hello, ok := v.(*transport.ShardHello)
	if !ok {
		return nil, nil, fmt.Errorf("protocol: shard hello: %w: got %T", transport.ErrCorrupt, v)
	}
	plan := ShardPlan{Sessions: hello.Sessions, Shards: hello.Shards}
	if err := plan.Validate(); err != nil {
		return nil, nil, err
	}
	if hello.Shard < 0 || hello.Shard >= hello.Shards {
		return nil, nil, fmt.Errorf("%w: hello names shard %d of %d", ErrShardMismatch, hello.Shard, hello.Shards)
	}
	l.Shard = hello.Shard
	if err := l.sendSealed(&transport.ShardAck{Shard: hello.Shard, Fingerprint: hello.Fingerprint}); err != nil {
		return nil, nil, fmt.Errorf("protocol: shard ack: %w", err)
	}
	return l, hello, nil
}

// RecvSetup receives the model layer's sealed setup document (worker side).
func (l *ShardLink) RecvSetup() (*transport.ShardBlob, error) {
	v, err := l.recvSealed()
	if err != nil {
		return nil, fmt.Errorf("protocol: shard setup: %w", err)
	}
	blob, ok := v.(*transport.ShardBlob)
	if !ok {
		return nil, fmt.Errorf("protocol: shard setup: %w: got %T", transport.ErrCorrupt, v)
	}
	return blob, nil
}

// AckSetup echoes the fingerprint the worker computed from the setup
// document. The root compares it against its own (ShardGroup.Setup), and the
// worker returns ErrShardMismatch itself when the hello promised a different
// schedule, so both ends refuse typed.
func (l *ShardLink) AckSetup(computed, hello uint64) error {
	if err := l.sendSealed(&transport.ShardAck{Shard: l.Shard, Fingerprint: computed}); err != nil {
		return fmt.Errorf("protocol: shard setup ack: %w", err)
	}
	if computed != hello {
		return fmt.Errorf("%w: setup document yields fingerprint %016x, hello promised %016x",
			ErrShardMismatch, computed, hello)
	}
	return nil
}

// AcceptSessions receives the shard's session conns from accept, validating
// each sealed SessionHello (fingerprint, ownership, no duplicates), and
// returns them ordered by shard-local session index. Accepted conns are
// registered with w immediately so the caller's deferred w.Close() owns them
// on every failure path.
func AcceptSessions(accept func() (transport.Conn, error), plan ShardPlan, shard int, fp uint64, w *WorkerConns) ([]transport.Conn, error) {
	lo, hi := plan.Range(shard)
	conns := make([]transport.Conn, hi-lo)
	for n := 0; n < hi-lo; n++ {
		c, err := accept()
		if err != nil {
			return nil, fmt.Errorf("protocol: accepting session conn: %w", err)
		}
		w.Add(c)
		l := ShardLink{Shard: shard, Conn: c}
		v, err := l.recvSealed()
		if err != nil {
			return nil, fmt.Errorf("protocol: session hello: %w", err)
		}
		hello, ok := v.(*transport.SessionHello)
		if !ok {
			return nil, fmt.Errorf("protocol: session hello: %w: got %T", transport.ErrCorrupt, v)
		}
		if hello.Fingerprint != fp {
			return nil, fmt.Errorf("%w: session %d hello carries fingerprint %016x, shard runs %016x",
				ErrShardMismatch, hello.Session, hello.Fingerprint, fp)
		}
		if hello.Session < lo || hello.Session >= hi {
			return nil, fmt.Errorf("%w: session %d is not owned by shard %d (range [%d,%d))",
				ErrShardMismatch, hello.Session, shard, lo, hi)
		}
		if conns[hello.Session-lo] != nil {
			return nil, fmt.Errorf("%w: session %d connected twice", ErrShardMismatch, hello.Session)
		}
		conns[hello.Session-lo] = c
	}
	return conns, nil
}

// WorkerConns owns every conn a shard worker holds — the control link and
// its accepted session conns. Close is the worker's close-once-all teardown:
// deferred at the top of the worker loop, it guarantees a worker that fails
// (or finishes) releases the root and every feature party instead of
// stranding them in Recv.
type WorkerConns struct {
	Ctl      transport.Conn
	Sessions []transport.Conn
}

// Add registers a session conn with the teardown set.
func (w *WorkerConns) Add(c transport.Conn) { w.Sessions = append(w.Sessions, c) }

// Close closes the control link and every session conn (all close-once).
func (w *WorkerConns) Close() error {
	if w.Ctl != nil {
		w.Ctl.Close()
	}
	for _, c := range w.Sessions {
		c.Close()
	}
	return nil
}
