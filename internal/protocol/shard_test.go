package protocol

import (
	"errors"
	"fmt"
	"testing"

	"blindfl/internal/tensor"
	"blindfl/internal/transport"
)

// TestShardPlanRanges pins the contiguous base/remainder partition: ranges
// tile [0, Sessions) in order, widths follow the SplitCols rule, and Owner
// agrees with Range for every session.
func TestShardPlanRanges(t *testing.T) {
	for sessions := 1; sessions <= 9; sessions++ {
		for shards := 1; shards <= sessions; shards++ {
			p := ShardPlan{Sessions: sessions, Shards: shards}
			if err := p.Validate(); err != nil {
				t.Fatalf("Validate(%d/%d) = %v", sessions, shards, err)
			}
			next := 0
			base, rem := sessions/shards, sessions%shards
			for s := 0; s < shards; s++ {
				lo, hi := p.Range(s)
				if lo != next {
					t.Fatalf("plan %d/%d: shard %d starts at %d, want %d", sessions, shards, s, lo, next)
				}
				want := base
				if s < rem {
					want++
				}
				if hi-lo != want || p.Width(s) != want {
					t.Fatalf("plan %d/%d: shard %d owns %d sessions, want %d", sessions, shards, s, hi-lo, want)
				}
				for i := lo; i < hi; i++ {
					if p.Owner(i) != s {
						t.Fatalf("plan %d/%d: Owner(%d) = %d, want %d", sessions, shards, i, p.Owner(i), s)
					}
				}
				next = hi
			}
			if next != sessions {
				t.Fatalf("plan %d/%d: ranges cover [0,%d), want [0,%d)", sessions, shards, next, sessions)
			}
		}
	}
}

func TestShardPlanValidate(t *testing.T) {
	for _, p := range []ShardPlan{{0, 1}, {1, 0}, {2, 3}} {
		if p.Validate() == nil {
			t.Errorf("Validate(%+v) accepted an unrealizable plan", p)
		}
	}
}

// shardEcho runs a minimal worker-side connect on the worker half of a
// control pair: accept the hello, then the setup blob, acking the given
// computed fingerprint.
func shardEcho(t *testing.T, ctl transport.Conn, computed func(hello uint64) uint64) <-chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		link, hello, err := AcceptShard(ctl)
		if err != nil {
			done <- err
			return
		}
		if _, err := link.RecvSetup(); err != nil {
			done <- err
			return
		}
		done <- link.AckSetup(computed(hello.Fingerprint), hello.Fingerprint)
	}()
	return done
}

// TestShardSetupFingerprintMismatch drives the two-phase fingerprint check:
// a worker whose recomputed schedule fingerprint disagrees with the root's
// is refused typed on BOTH ends — ErrShardMismatch from ShardGroup.Setup at
// the root, ErrShardMismatch from AckSetup at the worker — before any
// training traffic.
func TestShardSetupFingerprintMismatch(t *testing.T) {
	plan := ShardPlan{Sessions: 2, Shards: 1}
	rc, wc := transport.Pair(64)
	done := shardEcho(t, wc, func(hello uint64) uint64 { return hello ^ 1 })
	sg, err := ConnectShards(plan, 42, func(int) (transport.Conn, error) { return rc, nil })
	if err != nil {
		t.Fatalf("ConnectShards: %v", err)
	}
	defer sg.Close()
	if err := sg.Setup(0, "setup", []byte("doc"), 42); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("root Setup error = %v, want ErrShardMismatch", err)
	}
	if err := <-done; !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("worker AckSetup error = %v, want ErrShardMismatch", err)
	}
}

// TestShardSetupFingerprintAgree is the happy path of the same exchange.
func TestShardSetupFingerprintAgree(t *testing.T) {
	plan := ShardPlan{Sessions: 3, Shards: 1}
	rc, wc := transport.Pair(64)
	done := shardEcho(t, wc, func(hello uint64) uint64 { return hello })
	sg, err := ConnectShards(plan, 7, func(int) (transport.Conn, error) { return rc, nil })
	if err != nil {
		t.Fatalf("ConnectShards: %v", err)
	}
	defer sg.Close()
	if err := sg.Setup(0, "setup", []byte("doc"), 7); err != nil {
		t.Fatalf("Setup: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("worker: %v", err)
	}
}

// TestShardLinkSeqDesync pins the lockstep sequence counters: a data-plane
// message with the wrong ordinal fails typed ErrShardMismatch, not silently
// merged.
func TestShardLinkSeqDesync(t *testing.T) {
	rc, wc := transport.Pair(64)
	defer rc.Close()
	defer wc.Close()
	root := &ShardLink{Shard: 0, Conn: rc}
	worker := &ShardLink{Shard: 0, Conn: wc}
	z := tensor.NewDense(1, 1)
	err := Catch("root", func() {
		worker.Send(&transport.ShardParts{Seq: 5, Zs: []*tensor.Dense{z}})
		root.RecvParts(1)
	})
	if !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("desynced parts error = %v, want ErrShardMismatch", err)
	}
}

// TestShardLinkLostTyped pins the loss typing: a dead conn under a link
// surfaces as ErrShardLost, with the transport cause flattened so it cannot
// be matched as ErrClosed by mistake.
func TestShardLinkLostTyped(t *testing.T) {
	rc, wc := transport.Pair(64)
	wc.Close()
	root := &ShardLink{Shard: 0, Conn: rc}
	err := Catch("root", func() { root.RecvParts(1) })
	if !errors.Is(err, ErrShardLost) {
		t.Fatalf("lost link error = %v, want ErrShardLost", err)
	}
	if errors.Is(err, transport.ErrClosed) {
		t.Fatalf("lost link error %v still matches ErrClosed; the cascade could outrank the loss", err)
	}
}

// TestRunShardRootSingleTypedLoss pins the cascade suppression: when one
// party reports the typed shard loss and every other party fails with the
// ErrClosed cascade the teardown provokes, RunShardRoot reports exactly the
// loss.
func TestRunShardRootSingleTypedLoss(t *testing.T) {
	skA, _ := TestKeys()
	as := make([]*Peer, 2)
	for i := range as {
		a, b := transport.Pair(4)
		defer b.Close()
		as[i] = NewPeer(PartyA, a, skA, SessionRNG(1, i, PartyA))
	}
	sg := &ShardGroup{Plan: ShardPlan{Sessions: 2, Shards: 1}}
	lost := fmt.Errorf("%w: shard 0 recv parts: conn broke", ErrShardLost)
	cascade := fmt.Errorf("session recv: %w", transport.ErrClosed)
	err := RunShardRoot(as, sg,
		func(i int) error { return cascade },
		func() error { return lost })
	if !errors.Is(err, ErrShardLost) {
		t.Fatalf("RunShardRoot = %v, want the one typed ErrShardLost", err)
	}
	if errors.Is(err, transport.ErrClosed) {
		t.Fatalf("RunShardRoot = %v; the cascade leaked into the reported error", err)
	}
}

// TestRunShardRootPrefersRealErrorOverCascade: with no typed loss, the first
// non-ErrClosed error wins over the cascades.
func TestRunShardRootPrefersRealErrorOverCascade(t *testing.T) {
	skA, _ := TestKeys()
	a, b := transport.Pair(4)
	defer b.Close()
	as := []*Peer{NewPeer(PartyA, a, skA, SessionRNG(1, 0, PartyA))}
	sg := &ShardGroup{Plan: ShardPlan{Sessions: 1, Shards: 1}}
	real := errors.New("restore failed: bad checkpoint blob")
	err := RunShardRoot(as, sg,
		func(i int) error { return fmt.Errorf("recv: %w", transport.ErrClosed) },
		func() error { return real })
	if !errors.Is(err, real) {
		t.Fatalf("RunShardRoot = %v, want the real error %v", err, real)
	}
}

// TestRunShardRootSuccess: nil errors all around return nil and leave the
// conns open for the caller's orderly close.
func TestRunShardRootSuccess(t *testing.T) {
	sg := &ShardGroup{Plan: ShardPlan{Sessions: 1, Shards: 1}}
	err := RunShardRoot(nil, sg, func(int) error { return nil }, func() error { return nil })
	if err != nil {
		t.Fatalf("RunShardRoot = %v, want nil", err)
	}
}

// TestAcceptSessionsValidates drives the session-accept checks: wrong
// fingerprint, foreign session index and duplicate session all refuse typed.
func TestAcceptSessionsValidates(t *testing.T) {
	plan := ShardPlan{Sessions: 4, Shards: 2}
	cases := []struct {
		name   string
		hellos []transport.SessionHello
	}{
		{"fingerprint", []transport.SessionHello{{Session: 2, Fingerprint: 99}}},
		{"foreign session", []transport.SessionHello{{Session: 0, Fingerprint: 7}}},
		{"duplicate", []transport.SessionHello{{Session: 2, Fingerprint: 7}, {Session: 2, Fingerprint: 7}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pending := tc.hellos
			w := &WorkerConns{}
			defer w.Close()
			_, err := AcceptSessions(func() (transport.Conn, error) {
				if len(pending) == 0 {
					return nil, errors.New("out of conns")
				}
				h := pending[0]
				pending = pending[1:]
				a, b := transport.Pair(4)
				l := ShardLink{Conn: a}
				if err := l.sendSealed(&h); err != nil {
					return nil, err
				}
				return b, nil
			}, plan, 1, 7, w)
			if !errors.Is(err, ErrShardMismatch) {
				t.Fatalf("AcceptSessions error = %v, want ErrShardMismatch", err)
			}
		})
	}
}
