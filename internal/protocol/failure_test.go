package protocol

import (
	"errors"
	"strings"
	"testing"
	"time"

	"blindfl/internal/tensor"
	"blindfl/internal/transport"
)

// Failure injection: protocols must surface transport failures as errors
// from Run, never hang or panic through.

func TestRecvOnClosedConnErrors(t *testing.T) {
	a, b := newPipe(t, 20)
	b.Conn.Close()
	err := a.Run(func() { a.RecvDense() })
	if err == nil || !strings.Contains(err.Error(), "recv") {
		t.Fatalf("err = %v", err)
	}
}

func TestSendOnClosedConnErrors(t *testing.T) {
	a, _ := newPipe(t, 21)
	a.Conn.Close()
	err := a.Run(func() { a.Send(tensor.NewDense(1, 1)) })
	if err == nil || !strings.Contains(err.Error(), "send") {
		t.Fatalf("err = %v", err)
	}
}

func TestMidProtocolDisconnect(t *testing.T) {
	a, b := newPipe(t, 22)
	err := RunParties(a, b,
		func() {
			a.Send(tensor.NewDense(2, 2))
			a.Conn.Close() // drop mid-protocol
		},
		func() {
			b.RecvDense()
			b.RecvDense() // the second message never arrives
		})
	if err == nil {
		t.Fatal("expected an error after mid-protocol disconnect")
	}
}

func TestHE2SSRecvRejectsForeignKeyCiphertext(t *testing.T) {
	a, b := newPipe(t, 23)
	err := RunParties(a, b,
		func() {
			// A wrongly ships a ciphertext under its own key: the receiver
			// cannot decrypt it and must fail loudly instead of decrypting
			// garbage.
			a.Send(a.Encrypt(tensor.NewDense(1, 1), 1))
		},
		func() {
			b.HE2SSRecv()
		})
	if err == nil || !strings.Contains(err.Error(), "not under this party's key") {
		t.Fatalf("err = %v", err)
	}
}

// TestRunPartiesUnblocksPeerOnEarlyError is the regression test for the
// one-sided-failure hang: A fails on the first message (a type it does not
// expect), after which B blocks in Recv waiting for a reply that will never
// come. RunParties must close both conns so B unblocks with ErrClosed
// instead of hanging forever. Pre-fix, this test deadlocks (the watchdog
// and the CI -timeout both catch it).
func TestRunPartiesUnblocksPeerOnEarlyError(t *testing.T) {
	a, b := newPipe(t, 30)
	done := make(chan error, 1)
	go func() {
		done <- RunParties(a, b,
			func() {
				a.RecvDense() // B sent an []int: type error, A dies here
			},
			func() {
				b.Send([]int{1, 2, 3})
				b.RecvDense() // nothing will ever arrive
			})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an error from the failed party")
		}
		if !strings.Contains(err.Error(), "want *tensor.Dense") {
			t.Fatalf("first error should be A's type failure, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunParties hung after a one-sided failure")
	}
}

// TestRunPartiesErrorThenSurvivorGetsErrClosed pins the survivor's view: its
// blocked Recv returns transport.ErrClosed once RunParties tears the conns
// down.
func TestRunPartiesErrorThenSurvivorGetsErrClosed(t *testing.T) {
	a, b := newPipe(t, 31)
	var survivorErr error
	err := RunParties(a, b,
		func() { a.fail("injected failure") },
		func() {
			_, survivorErr = b.Conn.Recv()
		})
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("err = %v", err)
	}
	if !errors.Is(survivorErr, transport.ErrClosed) {
		t.Fatalf("survivor Recv = %v, want ErrClosed", survivorErr)
	}
}

func TestRunDoesNotSwallowUnrelatedPanics(t *testing.T) {
	a, _ := newPipe(t, 24)
	defer func() {
		if recover() == nil {
			t.Fatal("unrelated panic should propagate")
		}
	}()
	_ = a.Run(func() { panic("programming error") })
}

func TestPipeHandshakeAgainstHalfOpenPeer(t *testing.T) {
	// A peer that closes during the handshake must produce an error, not a
	// deadlock.
	skA, skB := TestKeys()
	ca, cb := transport.Pair(1)
	a := NewPeer(PartyA, ca, skA, nil)
	_ = NewPeer(PartyB, cb, skB, nil)
	cb.Close()
	if err := a.Handshake(); err == nil {
		t.Fatal("handshake against closed peer succeeded")
	}
}
