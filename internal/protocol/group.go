package protocol

import (
	"errors"
	"fmt"
	"math/rand"

	"blindfl/internal/paillier"
	"blindfl/internal/parallel"
	"blindfl/internal/rng"
	"blindfl/internal/transport"
)

// ErrSessionLost is the typed error for a session whose connection died
// mid-protocol while the group ran in ContinueOnLoss mode. Group helpers
// wrap it with the session index; callers match it with errors.Is.
var ErrSessionLost = errors.New("protocol: session lost")

// Multi-party session runtime (paper Appendix C, Algorithm 3): one label
// party B holds k independent two-party sessions, one per feature party
// A(i). Algorithm 3 needs no changes on the A side — each A(i) runs the
// ordinary two-party protocol against its own connection — so the group
// runtime is entirely a B-side construct: a bundle of Peers plus the
// scheduling (ForEach), error conversion (Run) and whole-group teardown
// (RunGroup) that the two-party Peer/RunParties pair provides for k = 1.
//
// Trust model: every session is an independent two-party protocol with its
// own key pair and its own connection. Feature parties never communicate
// with each other and learn nothing about each other's features, weights or
// even participation beyond what B's aggregated model reveals; B holds one
// Peer (and one mask/init RNG stream) per session.

// Group is the label party's handle on k concurrent sessions, one Peer per
// feature party. The slice order is the session order: session i of the
// group talks to the i-th feature party, and deterministic aggregation
// (partial-activation sums, gradient fan-out) follows it.
type Group struct {
	Peers []*Peer

	// ContinueOnLoss makes the group survive individual session deaths: when
	// a session's connection fails mid-protocol (its peer process died, its
	// transport closed), the session is marked lost and skipped by every
	// later ForEach, the epoch finishes on the surviving sessions, and the
	// loss is surfaced through Lost()/ErrSessionLost rather than aborting
	// the whole run. Off by default: any session failure aborts the group.
	//
	// Only connection loss (transport.ErrClosed) is survivable — integrity
	// failures (transport.ErrCorrupt) and protocol type errors still abort,
	// corrupt arithmetic must never be silently averaged away.
	ContinueOnLoss bool

	lost []bool // lost[i]: session i's connection died mid-run
}

// NewGroup bundles B-side peers into a group. The peers must already be
// handshaken (GroupPipe returns them that way).
func NewGroup(peers []*Peer) *Group {
	if len(peers) == 0 {
		panic("protocol: NewGroup needs at least one session")
	}
	return &Group{Peers: peers}
}

// K returns the number of sessions (feature parties).
func (g *Group) K() int { return len(g.Peers) }

// Lost reports which sessions have been lost (ContinueOnLoss mode). The
// returned slice is a copy; index i corresponds to session i.
func (g *Group) Lost() []bool {
	out := make([]bool, len(g.Peers))
	copy(out, g.lost)
	return out
}

// LostCount returns how many sessions have been lost so far.
func (g *Group) LostCount() int {
	n := 0
	for _, l := range g.lost {
		if l {
			n++
		}
	}
	return n
}

// Live reports whether session i is still healthy.
func (g *Group) Live(i int) bool { return g.lost == nil || !g.lost[i] }

func (g *Group) markLost(i int) {
	if g.lost == nil {
		g.lost = make([]bool, len(g.Peers))
	}
	g.lost[i] = true
}

// SeedEpoch re-derives every live session's mask RNG stream for the given
// epoch — the group-side counterpart of Peer.SeedEpoch, called by the trainer
// at every epoch boundary so a resumed group run rejoins the clean
// trajectory bit-exactly.
func (g *Group) SeedEpoch(epoch int) {
	for i, p := range g.Peers {
		if g.Live(i) {
			p.SeedEpoch(epoch)
		}
	}
}

// CloseSession closes session i's connection and marks the session lost —
// the sanctioned way for a driver to retire one session of a running group
// (ContinueOnLoss deployments draining a dead feature party).
func (g *Group) CloseSession(i int) {
	g.markLost(i)
	g.Peers[i].Conn.Close()
}

// ForEach runs f(i, session i's peer) for every session concurrently via
// internal/parallel and waits for all of them. Per-session protocol failures
// (the panics the Peer helpers raise) are captured per session and re-raised
// as one protocol failure — the lowest-index failing session — after every
// session's f has returned, so ForEach composes with Run/RunGroup exactly
// like a single-session helper. Sessions are independent protocols, so a
// failed session never blocks a healthy one inside ForEach; a healthy
// session whose *peer process* died blocks only until RunGroup's teardown
// closes its connection.
//
// f must confine itself to session i's peer; the scheduler may run any
// subset of sessions in parallel (bounded by GOMAXPROCS) and in any order.
//
// In ContinueOnLoss mode, sessions already lost are skipped, and a session
// failing with a connection loss during this call is marked lost instead of
// failing the group — unless it was the last live session, in which case the
// group fails with ErrSessionLost. All other failures abort as usual.
func (g *Group) ForEach(f func(i int, p *Peer)) {
	errs := make([]error, len(g.Peers))
	parallel.For(len(g.Peers), func(i int) {
		if !g.Live(i) {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if pe, ok := r.(protoErr); ok {
					errs[i] = fmt.Errorf("session %d: %w", i, pe.err)
					return
				}
				// Programming errors propagate like everywhere else. (On a
				// worker goroutine this crashes the process, exactly as a
				// panic inside RunParties' party goroutines does.)
				panic(r)
			}
		}()
		f(i, g.Peers[i])
	})
	for i, err := range errs {
		if err == nil {
			continue
		}
		if g.ContinueOnLoss && errors.Is(err, transport.ErrClosed) {
			g.markLost(i)
			continue
		}
		panic(protoErr{err})
	}
	if g.LostCount() == len(g.Peers) {
		panic(protoErr{fmt.Errorf("%w: all %d sessions lost", ErrSessionLost, len(g.Peers))})
	}
}

// Run executes the label party's whole-group protocol function, converting
// Peer/ForEach helper panics into an error — the k-session counterpart of
// Peer.Run.
func (g *Group) Run(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(protoErr); ok {
				err = fmt.Errorf("PartyB: %w", pe.err)
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

// Close closes every session's connection.
func (g *Group) Close() {
	for _, p := range g.Peers {
		p.Conn.Close()
	}
}

// RunGroup executes the k feature-party functions and the label-party
// function concurrently and returns the first error (or nil) — RunParties
// extended to a k-session group. fa(i) runs as feature party i under that
// session's Run; fb runs under the group's Run.
//
// Teardown extends the two-party close-on-first-error semantics to all k
// sessions: when any party fails, every other party is usually blocked in
// Recv on its own session (a feature party waiting for B, or B's ForEach
// waiting on the dead party's session), so RunGroup closes every session's
// connections on the first error and the k−1 survivors unblock with
// transport.ErrClosed instead of hanging forever. The group is not reusable
// after a failed run.
func RunGroup(as []*Peer, g *Group, fa func(i int), fb func()) error {
	if len(as) != g.K() {
		return fmt.Errorf("protocol: RunGroup got %d feature parties for %d sessions", len(as), g.K())
	}
	errs := make(chan error, g.K()+1)
	for i := range as {
		i := i
		go func() {
			err := as[i].Run(func() { fa(i) })
			if err != nil && g.ContinueOnLoss && errors.Is(err, transport.ErrClosed) {
				// The feature party lost its connection mid-run; the label
				// party marks the session lost and finishes on the survivors,
				// so the loss is not a whole-group failure.
				err = nil
			}
			errs <- err
		}()
	}
	go func() { errs <- g.Run(fb) }()
	var first error
	for i := 0; i < g.K()+1; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
			for _, p := range as {
				p.Conn.Close()
			}
			g.Close()
		}
	}
	return first
}

// GroupPipe wires k in-process sessions between feature parties holding
// skAs[i] and a label party holding skB: per-session buffered channel
// transports, per-(seed, session, role) mask/init RNG streams, and all
// handshakes completed concurrently. It returns the A-side peers (one per
// feature party) and the B-side group. Feature parties are separate trust
// domains, so a real deployment gives each its own key; tests may pass the
// same test key k times.
func GroupPipe(skAs []*paillier.PrivateKey, skB *paillier.PrivateKey, seed int64) ([]*Peer, *Group, error) {
	k := len(skAs)
	if k == 0 {
		return nil, nil, fmt.Errorf("protocol: GroupPipe needs at least one feature party")
	}
	as := make([]*Peer, k)
	bs := make([]*Peer, k)
	errs := make(chan error, 2*k)
	for i := 0; i < k; i++ {
		ca, cb := transport.Pair(4096)
		a := NewPeer(PartyA, ca, skAs[i], sessionRNG(seed, i, PartyA))
		b := NewPeer(PartyB, cb, skB, sessionRNG(seed, i, PartyB))
		a.SetStreamIdentity(seed, i)
		b.SetStreamIdentity(seed, i)
		as[i], bs[i] = a, b
		go func() { errs <- a.Handshake() }()
		go func() { errs <- b.Handshake() }()
	}
	for i := 0; i < 2*k; i++ {
		if err := <-errs; err != nil {
			return nil, nil, err
		}
	}
	return as, NewGroup(bs), nil
}

// SessionRNG returns the mask/init RNG stream for (seed, session, role) —
// the derivation Pipe and GroupPipe use — for callers assembling peers over
// their own transports (TCP deployments, benchmarks): seeding every peer of
// every session through it keeps the whole deployment reproducible from one
// seed without any two streams coinciding.
func SessionRNG(seed int64, session int, role Role) *rand.Rand {
	return sessionRNG(seed, session, role)
}

// ShardSessionRNG is SessionRNG in the sharded coordinate system
// (seed, shard, session, role): shard is the worker's session offset — the
// global index of its first session — and session is shard-local, so the
// stream is a pure function of the global session index and shard 0 of 1
// reproduces SessionRNG exactly (rng.Session owns that identity). Shard
// workers seed their peers through this so re-partitioning the sessions
// across a different worker count never moves a mask stream.
func ShardSessionRNG(seed int64, shard, session int, role Role) *rand.Rand {
	return rand.New(rand.NewSource(rng.Session(seed, shard, session, uint64(role))))
}

// sessionRNG derives the mask/init RNG stream for one (seed, session, role)
// triple via rng.Session, the SplitMix64-style finalizer over all inputs
// (shard coordinate 0: the unsharded run is shard 0 of 1).
//
// The previous scheme seeded the two peers of session i with the raw values
// seed+i and seed+i+1, so *adjacent sessions of a group shared mask
// streams*: session i's Party B drew exactly the masks of session i+1's
// Party A. Within one session that is harmless (the two parties' draws
// interleave differently), but across sessions of a k-party group it
// correlates the obfuscation values ε/φ that the HE2SS conversions rely on.
// Hashing (seed, session, role) makes every stream of every session
// statistically independent while keeping runs reproducible from one seed.
func sessionRNG(seed int64, session int, role Role) *rand.Rand {
	return rand.New(rand.NewSource(rng.Session(seed, 0, session, uint64(role))))
}

// epochRNG extends sessionRNG with an epoch coordinate: the mask stream a
// peer uses during epoch e is a pure function of (seed, session, role, e),
// so a crash-resumed run re-derives exactly the stream the uninterrupted run
// had at that boundary. epoch+1 keeps epoch 0 distinct from the sessionRNG
// init stream (rng.SessionEpoch owns the derivation).
func epochRNG(seed int64, session int, role Role, epoch int) *rand.Rand {
	return rand.New(rand.NewSource(rng.SessionEpoch(seed, 0, session, uint64(role), epoch)))
}
