package protocol

import (
	"time"

	"blindfl/internal/hetensor"
	"blindfl/internal/paillier"
	"blindfl/internal/tensor"
	"blindfl/internal/transport"
)

// Chunk-streamed conversions: the streamed counterparts of the monolithic
// Send/Recv/HE2SS/SS2HE helpers. A large CipherMatrix/PackedMatrix transfer
// is split into bounded row-chunks (transport.StreamHeader/StreamChunk with
// per-direction sequence numbers), and the expensive per-chunk work —
// encryption and masking on the sender, decryption and gradient accumulation
// on the receiver — is done lazily per chunk. The sender therefore encrypts
// chunk i+1 while chunk i is on the wire and the receiver works on chunk i−1:
// the two halves of a conversion overlap instead of running back to back.
//
// Both parties must agree on whether a given transfer is streamed (a streamed
// send must meet a streamed receive), exactly as they must agree on packing.
// Chunk sizing, in contrast, is sender-local: receivers take each chunk's
// height from the payload itself, so peers with different ChunkRows still
// interoperate.

// DefaultChunkRows is the row bound per streamed chunk when Peer.ChunkRows
// is zero. Small enough that a mini-batch (32–128 rows) splits into several
// pipeline stages; large enough that per-chunk envelope overhead stays
// negligible against ciphertext payloads.
const DefaultChunkRows = 8

// StreamStats aggregates per-chunk accounting for one peer's streamed
// traffic. Bytes are transport.WireSize estimates accumulated per chunk as
// it is handed to the transport, so they are exact in timing (no async
// writer lag) and available on every transport, including the plain Pair.
type StreamStats struct {
	StreamsSent int64
	ChunksSent  int64
	BytesSent   int64
	StreamsRecv int64
	ChunksRecv  int64
	RecvWait    time.Duration // cumulative time blocked waiting for chunks

	// Decrypt spot-check outcomes (spotcheck.go): rows re-verified through
	// the exact-integer path and how many of them disagreed.
	SpotChecks     int64
	SpotMismatches int64

	// AN-coded residue-check outcomes (Peer.ANCheck, engine option
	// "ancheck"): plaintext share cells recomputed mod the AN prime alongside
	// the exact-integer serve arithmetic, and how many disagreed. A non-zero
	// mismatch count means the share arithmetic itself corrupted (bad RAM, a
	// broken kernel) — the failure class the wire checksums cannot see.
	ANChecks     int64
	ANMismatches int64
}

// chunkSpan returns the agreed chunk row bound.
func (p *Peer) chunkSpan() int {
	if p.ChunkRows > 0 {
		return p.ChunkRows
	}
	return DefaultChunkRows
}

// chunkBounds returns the row range of chunk i for a rows-tall matrix.
func chunkBounds(rows, span, i int) (lo, hi int) {
	lo = i * span
	hi = lo + span
	if hi > rows {
		hi = rows
	}
	return lo, hi
}

func chunkCount(rows, span int) int {
	if rows <= 0 {
		return 1
	}
	return (rows + span - 1) / span
}

// sendStream ships one logical rows×cols matrix as lazily produced
// row-chunks, recording per-chunk accounting. produce(lo, hi) is called only
// after the previous chunk was handed to the transport.
//
// BytesSent counts the full wire footprint of the stream — header, chunk
// envelopes (sequence numbers and checksums included) and end marker, not
// just the chunk payloads — so the bench traffic tables report what actually
// crosses the link.
func (p *Peer) sendStream(rows, cols int, produce func(lo, hi int) any) {
	span := p.chunkSpan()
	chunks := chunkCount(rows, span)
	seq := p.sendSeq
	p.sendSeq++
	p.Stream.BytesSent += int64(transport.WireSize(&transport.StreamHeader{}))
	err := transport.SendStream(p.Conn, seq, rows, cols, chunks, func(i int) (any, error) {
		lo, hi := chunkBounds(rows, span, i)
		v := produce(lo, hi)
		p.Stream.BytesSent += int64(transport.WireSize(&transport.StreamChunk{V: v}))
		return v, nil
	})
	if err != nil {
		p.fail("stream send: %w", err)
	}
	p.Stream.BytesSent += int64(transport.WireSize(&transport.StreamEnd{}))
	p.Stream.StreamsSent++
	p.Stream.ChunksSent += int64(chunks)
}

// recvStream receives one chunked transfer, timing the blocking waits and
// recording per-chunk accounting. consume sees chunks in row order with the
// running row offset and returns how many rows the chunk held; the chunk
// layout is taken from the stream itself (each payload knows its height), so
// the receiver adapts to whatever ChunkRows the sender chose.
func (p *Peer) recvStream(consume func(h *transport.StreamHeader, lo int, v any) int) *transport.StreamHeader {
	seq := p.recvSeq
	p.recvSeq++
	start := time.Now()
	wait := time.Duration(0)
	off := 0
	h, err := transport.RecvStream(p.Conn, seq, func(h *transport.StreamHeader, i int, v any) error {
		wait += time.Since(start)
		rows := consume(h, off, v)
		// A zero-row chunk is valid only as the sole chunk of an empty
		// stream (the sender always ships at least one chunk).
		if rows < 0 || off+rows > h.Rows || (rows == 0 && h.Rows > 0) {
			p.fail("stream recv: chunk of %d rows at offset %d overflows %d announced rows", rows, off, h.Rows)
		}
		off += rows
		start = time.Now()
		return nil
	})
	if err != nil {
		p.fail("stream recv: %w", err)
	}
	if off != h.Rows {
		p.fail("stream recv: stream delivered %d of %d announced rows", off, h.Rows)
	}
	p.Stream.StreamsRecv++
	p.Stream.ChunksRecv += int64(h.Chunks)
	p.Stream.RecvWait += wait
	// The receive side of every stream sends one ack back (transport layer);
	// count it so both directions' BytesSent stay envelope-honest.
	p.Stream.BytesSent += int64(transport.WireSize(&transport.StreamAck{}))
	return h
}

// trustCipher reattaches the locally trusted public key, as RecvCipher
// does for monolithic transfers, and vets every ciphertext against it
// (spotcheck.go): out-of-range or non-invertible cells fail here, at the
// trust boundary, with a typed transport.ErrCorrupt instead of panicking
// deep inside a homomorphic kernel. Table-cache identities are minted by the
// whole-matrix receive paths (RecvCipher, RecvCipherStream), NOT here:
// stream chunks pass through this helper too, and a chunk is a single-use
// view that never recurs — minting per chunk would fill the persistent
// cache with unreachable entries and evict the genuinely reusable ones.
func (p *Peer) trustCipher(c *hetensor.CipherMatrix) {
	if c.PK == nil || c.PK.N == nil {
		p.fail("recv cipher: %w: matrix carries no public key", transport.ErrCorrupt)
	}
	if c.PK.N.Cmp(p.SK.N) == 0 {
		c.PK = &p.SK.PublicKey
	} else {
		c.PK = p.PeerPK
	}
	p.vetCells(c.C, c.PK, "recv cipher")
}

func (p *Peer) trustPacked(c *hetensor.PackedMatrix) {
	if c.PK == nil || c.PK.N == nil {
		p.fail("recv packed: %w: matrix carries no public key", transport.ErrCorrupt)
	}
	if c.PK.N.Cmp(p.SK.N) == 0 {
		c.PK = &p.SK.PublicKey
	} else {
		c.PK = p.PeerPK
	}
	p.vetCells(c.C, c.PK, "recv packed")
}

// cipherChunk asserts a stream payload is a cipher matrix chunk and
// reattaches the trusted key.
func (p *Peer) cipherChunk(v any) *hetensor.CipherMatrix {
	c, ok := v.(*hetensor.CipherMatrix)
	if !ok {
		p.fail("stream recv: want *hetensor.CipherMatrix chunk, got %T", v)
	}
	p.trustCipher(c)
	return c
}

func (p *Peer) packedChunk(v any) *hetensor.PackedMatrix {
	c, ok := v.(*hetensor.PackedMatrix)
	if !ok {
		p.fail("stream recv: want *hetensor.PackedMatrix chunk, got %T", v)
	}
	p.trustPacked(c)
	return c
}

// EncryptAndSendStream encrypts d under this party's own key chunk by chunk
// and streams the chunks: the encryption of chunk i+1 overlaps the wire (and
// the peer's handling) of chunk i.
func (p *Peer) EncryptAndSendStream(d *tensor.Dense, scale uint) {
	p.sendStream(d.Rows, d.Cols, func(lo, hi int) any {
		return hetensor.Encrypt(&p.SK.PublicKey, d.RowSlice(lo, hi), scale)
	})
}

// EncryptAndSendPackedStream is EncryptAndSendStream with packed chunks.
func (p *Peer) EncryptAndSendPackedStream(d *tensor.Dense, scale uint) {
	p.sendStream(d.Rows, d.Cols, func(lo, hi int) any {
		return hetensor.PackEncryptBlocks(&p.SK.PublicKey, d.RowSlice(lo, hi), scale, d.Cols)
	})
}

// SendCipherStream streams an already-assembled cipher matrix as row-chunk
// views (no recompute; the gain is wire/consumer overlap only).
func (p *Peer) SendCipherStream(c *hetensor.CipherMatrix) {
	p.sendStream(c.Rows, c.Cols, func(lo, hi int) any { return c.RowSlice(lo, hi) })
}

// RecvCipherStream assembles a streamed cipher matrix, reattaching the
// trusted public key. The streamed counterpart of RecvCipher, used on paths
// (weight refresh) where the receiver only stores the matrix.
func (p *Peer) RecvCipherStream() *hetensor.CipherMatrix {
	var out *hetensor.CipherMatrix
	p.recvStream(func(h *transport.StreamHeader, lo int, v any) int {
		c := p.cipherChunk(v)
		if out == nil {
			out = &hetensor.CipherMatrix{Rows: h.Rows, Cols: h.Cols, Scale: c.Scale, PK: c.PK,
				C: make([]*paillier.Ciphertext, h.Rows*h.Cols)}
		}
		if c.Cols != out.Cols || c.Scale != out.Scale {
			p.fail("stream recv: chunk layout %d cols @%d, want %d @%d", c.Cols, c.Scale, out.Cols, out.Scale)
		}
		copy(out.C[lo*out.Cols:], c.C)
		return c.Rows
	})
	if out != nil {
		out.MintID() // assembled in full before use: a stable base set
	}
	return out
}

// RecvPackedStream assembles a streamed packed matrix.
func (p *Peer) RecvPackedStream() *hetensor.PackedMatrix {
	var out *hetensor.PackedMatrix
	p.recvStream(func(h *transport.StreamHeader, lo int, v any) int {
		c := p.packedChunk(v)
		if out == nil {
			out = &hetensor.PackedMatrix{Rows: h.Rows, Cols: h.Cols, Block: c.Block, Scale: c.Scale,
				W: c.W, K: c.K, PK: c.PK,
				C: make([]*paillier.Ciphertext, h.Rows*c.GroupsPerRow())}
		}
		if c.Cols != out.Cols || c.Block != out.Block || c.W != out.W || c.K != out.K || c.Scale != out.Scale {
			p.fail("stream recv: packed chunk layout mismatch")
		}
		copy(out.C[lo*out.GroupsPerRow():], c.C)
		return c.Rows
	})
	if out != nil {
		out.MintID()
	}
	return out
}

// RecvCipherStreamEach receives a streamed cipher matrix without assembling
// it: each row-chunk (trusted key reattached) is handed to fn with its
// starting row, so the consumer can decrypt or accumulate chunk i while the
// sender produces chunk i+1. Returns the logical shape.
func (p *Peer) RecvCipherStreamEach(fn func(lo int, chunk *hetensor.CipherMatrix)) (rows, cols int) {
	h := p.recvStream(func(h *transport.StreamHeader, lo int, v any) int {
		c := p.cipherChunk(v)
		fn(lo, c)
		return c.Rows
	})
	return h.Rows, h.Cols
}

// RecvPackedStreamEach is RecvCipherStreamEach for packed chunks.
func (p *Peer) RecvPackedStreamEach(fn func(lo int, chunk *hetensor.PackedMatrix)) (rows, cols int) {
	h := p.recvStream(func(h *transport.StreamHeader, lo int, v any) int {
		c := p.packedChunk(v)
		fn(lo, c)
		return c.Rows
	})
	return h.Rows, h.Cols
}

// HE2SSSendStream is the streamed masking half of Algorithm 1: draw the mask
// φ up front, then per row-chunk freshly re-randomize ⟦v−φ⟧ and stream it.
// The key owner decrypts chunk i while this party blinds chunk i+1.
func (p *Peer) HE2SSSendStream(c *hetensor.CipherMatrix) *tensor.Dense {
	phi := p.Mask(c.Rows, c.Cols)
	p.sendStream(c.Rows, c.Cols, func(lo, hi int) any {
		return c.RowSlice(lo, hi).SubPlainFresh(phi.RowSlice(lo, hi))
	})
	return phi
}

// HE2SSRecvStream is the streamed decrypting half of Algorithm 1: decrypt
// each arriving chunk of ⟦v−φ⟧ while the peer blinds the next one. One
// derived row per stream is spot-checked (when enabled) inside the chunk
// that carries it — chunk payloads are transient, so the check must run
// before the ciphertexts go out of scope.
func (p *Peer) HE2SSRecvStream() *tensor.Dense {
	var out *tensor.Dense
	spot := -1
	p.recvStream(func(h *transport.StreamHeader, lo int, v any) int {
		c := p.cipherChunk(v)
		if c.PK.N.Cmp(p.SK.N) != 0 {
			p.fail("HE2SSRecvStream: ciphertext is not under this party's key")
		}
		if out == nil {
			out = tensor.NewDense(h.Rows, h.Cols)
			if p.SpotCheck && h.Rows > 0 && p.spotSample() {
				spot = p.spotRow(h.Rows)
			}
		}
		copy(out.RowSlice(lo, lo+c.Rows).Data, hetensor.Decrypt(p.SK, c).Data)
		if spot >= lo && spot < lo+c.Rows {
			p.recordSpot(p.spotRowCipher(c.RowSlice(spot-lo, spot-lo+1), out.Row(spot)))
		}
		return c.Rows
	})
	return out
}

// HE2SSSendPackedStream is HE2SSSendStream over packed ciphertexts.
func (p *Peer) HE2SSSendPackedStream(c *hetensor.PackedMatrix) *tensor.Dense {
	phi := p.Mask(c.Rows, c.Cols)
	p.sendStream(c.Rows, c.Cols, func(lo, hi int) any {
		return c.RowSlice(lo, hi).SubPlainFresh(phi.RowSlice(lo, hi))
	})
	return phi
}

// HE2SSRecvPackedStream is HE2SSRecvStream over packed ciphertexts, with the
// same per-stream decrypt spot-check on one derived row.
func (p *Peer) HE2SSRecvPackedStream() *tensor.Dense {
	var out *tensor.Dense
	spot := -1
	p.recvStream(func(h *transport.StreamHeader, lo int, v any) int {
		c := p.packedChunk(v)
		if c.PK.N.Cmp(p.SK.N) != 0 {
			p.fail("HE2SSRecvPackedStream: ciphertext is not under this party's key")
		}
		if out == nil {
			out = tensor.NewDense(h.Rows, h.Cols)
			if p.SpotCheck && h.Rows > 0 && p.spotSample() {
				spot = p.spotRow(h.Rows)
			}
		}
		copy(out.RowSlice(lo, lo+c.Rows).Data, hetensor.DecryptPacked(p.SK, c).Data)
		if spot >= lo && spot < lo+c.Rows {
			p.recordSpot(p.spotRowPacked(c.RowSlice(spot-lo, spot-lo+1), out.Row(spot)))
		}
		return c.Rows
	})
	return out
}

// SS2HEStream is the streamed Algorithm 2: each party streams the chunked
// encryption of its additive piece (encrypting chunk i+1 while chunk i is in
// flight) and adds its plaintext piece to the peer's chunks as they arrive.
// Party A sends first, as in SS2HE.
func (p *Peer) SS2HEStream(piece *tensor.Dense, scale uint) *hetensor.CipherMatrix {
	recv := func() *hetensor.CipherMatrix {
		out := hetensor.NewCipherMatrix(p.PeerPK, piece.Rows, piece.Cols, scale)
		p.RecvCipherStreamEach(func(lo int, chunk *hetensor.CipherMatrix) {
			if chunk.Scale != scale {
				p.fail("SS2HEStream: chunk scale %d, want %d", chunk.Scale, scale)
			}
			sum := chunk.AddPlain(piece.RowSlice(lo, lo+chunk.Rows))
			copy(out.C[lo*out.Cols:], sum.C)
		})
		return out
	}
	if p.Role == PartyA {
		p.EncryptAndSendStream(piece, scale)
		return recv()
	}
	out := recv()
	p.EncryptAndSendStream(piece, scale)
	return out
}
