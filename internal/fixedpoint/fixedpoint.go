// Package fixedpoint converts between float64 and the signed fixed-point
// integers that the cryptographic layers operate on. Two integer domains are
// supported:
//
//   - Z_n (arbitrary-precision big.Int) for the Paillier plaintext space,
//     where negative values are represented as n − |v| and a value is
//     considered negative if it exceeds n/2;
//   - Z_2^64 (uint64) for the additive secret-sharing ring used by the
//     SecureML baseline, with the analogous two's-complement convention.
//
// A Codec carries the fractional precision F. A freshly encoded value has
// scale 1 (meaning a multiplier of 2^F); the product of two scale-1 values
// has scale 2 (multiplier 2^2F). Decoding takes the scale so that values can
// be recovered exactly after one homomorphic multiplication without any
// in-ciphertext truncation.
package fixedpoint

import (
	"math"
	"math/big"
)

// Codec encodes floats with F fractional bits.
type Codec struct {
	F uint // fractional bits per scale unit
}

// Default is the codec used throughout BlindFL: 24 fractional bits leaves
// ample integer headroom in a ≥512-bit Paillier plaintext space even at
// scale 2, while keeping rounding error below 1e-7.
var Default = Codec{F: 24}

// Encode converts v to a signed scaled integer: round(v · 2^(F·scale)).
func (c Codec) Encode(v float64, scale uint) *big.Int {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic("fixedpoint: cannot encode NaN/Inf")
	}
	mult := math.Ldexp(1, int(c.F*scale))
	scaled := math.Round(v * mult)
	bi, _ := big.NewFloat(scaled).Int(nil)
	return bi
}

// EncodeSigned converts v to signed-magnitude fixed point: |round(v·2^(F·scale))|
// and the sign. The magnitude is what the Paillier fast exponentiation paths
// (MulPlainSigned, DotRow) use as the exponent, so a negative value costs a
// ~(F+log₂|v|)-bit exponentiation instead of the full-width ring image n−|v|.
func (c Codec) EncodeSigned(v float64, scale uint) (mag *big.Int, neg bool) {
	mag = c.Encode(v, scale)
	if mag.Sign() < 0 {
		return mag.Neg(mag), true
	}
	return mag, false
}

// DecodeSigned converts a signed-magnitude pair back to float64: the inverse
// of EncodeSigned.
func (c Codec) DecodeSigned(mag *big.Int, neg bool, scale uint) float64 {
	v := c.Decode(mag, scale)
	if neg {
		return -v
	}
	return v
}

// Decode converts a signed scaled integer back to float64.
func (c Codec) Decode(x *big.Int, scale uint) float64 {
	f, _ := new(big.Float).SetInt(x).Float64()
	return math.Ldexp(f, -int(c.F*scale))
}

// ToRing maps a signed integer x into Z_n: x mod n, with negatives wrapped.
func ToRing(x, n *big.Int) *big.Int {
	r := new(big.Int).Mod(x, n)
	if r.Sign() < 0 {
		r.Add(r, n)
	}
	return r
}

// FromRing maps a Z_n element back to a signed integer using the convention
// that values above n/2 are negative.
func FromRing(x, n *big.Int) *big.Int {
	half := new(big.Int).Rsh(n, 1)
	out := new(big.Int).Set(x)
	if out.Cmp(half) > 0 {
		out.Sub(out, n)
	}
	return out
}

// EncodeRing encodes v directly into Z_n at the given scale.
func (c Codec) EncodeRing(v float64, scale uint, n *big.Int) *big.Int {
	return ToRing(c.Encode(v, scale), n)
}

// DecodeRing decodes a Z_n element at the given scale.
func (c Codec) DecodeRing(x *big.Int, scale uint, n *big.Int) float64 {
	return c.Decode(FromRing(x, n), scale)
}

// EncodeU64 encodes v into the Z_2^64 ring at the given scale.
func (c Codec) EncodeU64(v float64, scale uint) uint64 {
	mult := math.Ldexp(1, int(c.F*scale))
	return uint64(int64(math.Round(v * mult)))
}

// DecodeU64 decodes a Z_2^64 element at the given scale.
func (c Codec) DecodeU64(x uint64, scale uint) float64 {
	return math.Ldexp(float64(int64(x)), -int(c.F*scale))
}

// TruncateU64 divides a scale-2 ring element by 2^F to return it to scale 1,
// using the local-share truncation of SecureML (Mohassel & Zhang §4.1):
// each party shifts its share arithmetically; the reconstruction is correct
// up to an off-by-one in the last fixed-point bit with overwhelming
// probability when |value| ≪ 2^63.
func (c Codec) TruncateU64(x uint64) uint64 {
	return uint64(int64(x) >> c.F)
}
