package fixedpoint

import (
	"fmt"
	"math/big"
)

// Lane packing: a single Paillier plaintext of Z_n is ~512–2048 bits wide,
// while one scale-2 fixed-point value needs only ~120 of them. A LaneCodec
// packs K signed fixed-point lanes of W bits each into one integer
//
//	P = Σ_i v_i · 2^(i·W),   |v_i| < 2^(W−1),
//
// evaluated over the signed integers and then mapped into Z_n. Because the
// representation is a plain integer polynomial in 2^W, ring addition adds
// lane-wise and multiplication by a shared scalar multiplies every lane —
// exactly the homomorphic operations Paillier supports — as long as no lane
// magnitude reaches 2^(W−1) and the total stays below n/2.
//
// Extraction walks the lanes from least significant: the low W bits of the
// remaining integer are the two's-complement image of the current lane;
// subtracting the recovered signed lane cancels its borrow/carry before the
// shift, so signed lanes round-trip exactly.
type LaneCodec struct {
	Codec      // fractional precision per lane
	W     uint // lane width in bits
	K     int  // lanes per packed integer
}

// NewLaneCodec sizes a lane layout for an n-bit modulus: lanes are wide
// enough for a scale-maxScale value plus headroom bits of integer growth
// (accumulation, masks), and as many lanes are used as fit below n/2.
func NewLaneCodec(c Codec, modulusBits int, maxScale, headroom uint) (LaneCodec, error) {
	w := c.F*maxScale + headroom + 1 // +1 sign bit
	k := (uint(modulusBits) - 1) / w
	if k < 1 {
		return LaneCodec{}, fmt.Errorf("fixedpoint: %d-bit modulus cannot hold one %d-bit lane", modulusBits, w)
	}
	return LaneCodec{Codec: c, W: w, K: int(k)}, nil
}

// Pack encodes up to K values into one signed packed integer at the given
// scale. Fewer than K values occupy the low lanes; the rest are zero.
func (lc LaneCodec) Pack(vals []float64, scale uint) *big.Int {
	if len(vals) > lc.K {
		panic(fmt.Sprintf("fixedpoint: Pack of %d values into %d lanes", len(vals), lc.K))
	}
	out := new(big.Int)
	for i := len(vals) - 1; i >= 0; i-- {
		out.Lsh(out, lc.W)
		out.Add(out, lc.Encode(vals[i], scale))
	}
	return out
}

// PackRing packs vals and maps the result into Z_n.
func (lc LaneCodec) PackRing(vals []float64, scale uint, n *big.Int) *big.Int {
	return ToRing(lc.Pack(vals, scale), n)
}

// Unpack recovers k signed lanes from a packed integer at the given scale.
func (lc LaneCodec) Unpack(x *big.Int, k int, scale uint) []float64 {
	out := make([]float64, k)
	rem := new(big.Int).Set(x)
	mask := new(big.Int).Lsh(big.NewInt(1), lc.W)
	mask.Sub(mask, big.NewInt(1))
	half := new(big.Int).Lsh(big.NewInt(1), lc.W-1)
	full := new(big.Int).Lsh(big.NewInt(1), lc.W)
	lane := new(big.Int)
	for i := 0; i < k; i++ {
		// Two's-complement low W bits (big.Int bitwise ops treat negative
		// values as infinite two's complement, so And is exactly x mod 2^W).
		lane.And(rem, mask)
		if lane.Cmp(half) >= 0 {
			lane.Sub(lane, full)
		}
		out[i] = lc.Decode(lane, scale)
		rem.Sub(rem, lane)
		rem.Rsh(rem, lc.W)
	}
	return out
}

// UnpackInts recovers k signed lane integers from a packed integer without
// decoding them to float64: the serving path's extraction, where shares stay
// exact integers until the masked pieces have cancelled.
func (lc LaneCodec) UnpackInts(x *big.Int, k int) []*big.Int {
	out := make([]*big.Int, k)
	rem := new(big.Int).Set(x)
	mask := new(big.Int).Lsh(big.NewInt(1), lc.W)
	mask.Sub(mask, big.NewInt(1))
	half := new(big.Int).Lsh(big.NewInt(1), lc.W-1)
	full := new(big.Int).Lsh(big.NewInt(1), lc.W)
	for i := 0; i < k; i++ {
		lane := new(big.Int).And(rem, mask)
		if lane.Cmp(half) >= 0 {
			lane.Sub(lane, full)
		}
		out[i] = lane
		rem.Sub(rem, lane)
		rem.Rsh(rem, lc.W)
	}
	return out
}

// UnpackRing lifts a Z_n element to a signed integer and unpacks k lanes.
func (lc LaneCodec) UnpackRing(x *big.Int, k int, scale uint, n *big.Int) []float64 {
	return lc.Unpack(FromRing(x, n), k, scale)
}

// PackEncoded packs pre-encoded lane integers (as returned by Encode) into
// one signed packed integer. Used to build packed plaintext multipliers.
func (lc LaneCodec) PackEncoded(lanes []*big.Int) *big.Int {
	if len(lanes) > lc.K {
		panic(fmt.Sprintf("fixedpoint: PackEncoded of %d values into %d lanes", len(lanes), lc.K))
	}
	out := new(big.Int)
	for i := len(lanes) - 1; i >= 0; i-- {
		out.Lsh(out, lc.W)
		out.Add(out, lanes[i])
	}
	return out
}
