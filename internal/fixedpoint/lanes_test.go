package fixedpoint

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

func testLaneCodec(t *testing.T) LaneCodec {
	t.Helper()
	lc, err := NewLaneCodec(Codec{F: 40}, 512, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	return lc
}

func TestNewLaneCodecSizing(t *testing.T) {
	lc := testLaneCodec(t)
	if lc.W != 40*2+42+1 {
		t.Fatalf("W = %d", lc.W)
	}
	if lc.K != int(511/lc.W) {
		t.Fatalf("K = %d", lc.K)
	}
	if uint(lc.K)*lc.W >= 512 {
		t.Fatalf("lanes overflow the modulus: %d×%d", lc.K, lc.W)
	}
	if _, err := NewLaneCodec(Codec{F: 40}, 100, 2, 42); err == nil {
		t.Fatal("accepted a modulus too small for one lane")
	}
}

func TestLanePackUnpackRoundTrip(t *testing.T) {
	lc := testLaneCodec(t)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(lc.K)
		scale := uint(1 + rng.Intn(2))
		vals := make([]float64, k)
		for i := range vals {
			// Mix signs and magnitudes up to mask scale (2^20).
			vals[i] = (rng.Float64()*2 - 1) * math.Ldexp(1, rng.Intn(21))
		}
		got := lc.Unpack(lc.Pack(vals, scale), k, scale)
		for i := range vals {
			if math.Abs(got[i]-vals[i]) > 1e-6 {
				t.Fatalf("trial %d lane %d: %v != %v", trial, i, got[i], vals[i])
			}
		}
	}
}

func TestLaneRingRoundTrip(t *testing.T) {
	lc := testLaneCodec(t)
	n := new(big.Int).Lsh(big.NewInt(1), 512)
	n.Sub(n, big.NewInt(569)) // arbitrary odd modulus-like value
	vals := []float64{-1.5, 0, 3.25, -1e6}
	got := lc.UnpackRing(lc.PackRing(vals, 1, n), len(vals), 1, n)
	for i := range vals {
		if math.Abs(got[i]-vals[i]) > 1e-9 {
			t.Fatalf("lane %d: %v != %v", i, got[i], vals[i])
		}
	}
}

// TestLaneArithmetic verifies the homomorphic contract: integer addition of
// packed values adds lane-wise, and multiplication by a scalar encoding
// multiplies every lane, raising the scale.
func TestLaneArithmetic(t *testing.T) {
	lc := testLaneCodec(t)
	a := []float64{1.5, -2.25, 3}
	b := []float64{-0.5, 4, 2.125}
	pa, pb := lc.Pack(a, 1), lc.Pack(b, 1)

	sum := lc.Unpack(new(big.Int).Add(pa, pb), 3, 1)
	for i := range a {
		if math.Abs(sum[i]-(a[i]+b[i])) > 1e-6 {
			t.Fatalf("sum lane %d: %v != %v", i, sum[i], a[i]+b[i])
		}
	}

	s := -1.75
	prod := lc.Unpack(new(big.Int).Mul(pa, lc.Encode(s, 1)), 3, 2)
	for i := range a {
		if math.Abs(prod[i]-a[i]*s) > 1e-6 {
			t.Fatalf("prod lane %d: %v != %v", i, prod[i], a[i]*s)
		}
	}
}

func TestPackEncodedMatchesPack(t *testing.T) {
	lc := testLaneCodec(t)
	vals := []float64{0.5, -3, 7.75}
	lanes := make([]*big.Int, len(vals))
	for i, v := range vals {
		lanes[i] = lc.Encode(v, 1)
	}
	if lc.PackEncoded(lanes).Cmp(lc.Pack(vals, 1)) != 0 {
		t.Fatal("PackEncoded differs from Pack")
	}
}

func TestPackRejectsTooManyLanes(t *testing.T) {
	lc := testLaneCodec(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Pack accepted more than K lanes")
		}
	}()
	lc.Pack(make([]float64, lc.K+1), 1)
}
