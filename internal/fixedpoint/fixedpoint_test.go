package fixedpoint

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := Default
	for _, v := range []float64{0, 1, -1, 3.14159, -2.71828, 1e-6, -1e-6, 12345.678, -99999.5} {
		got := c.Decode(c.Encode(v, 1), 1)
		if math.Abs(got-v) > 1e-6*(1+math.Abs(v)) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestEncodeScale2(t *testing.T) {
	c := Default
	a, b := 3.5, -2.25
	// Product of two scale-1 encodings is a scale-2 encoding of the product.
	ea, eb := c.Encode(a, 1), c.Encode(b, 1)
	prod := new(big.Int).Mul(ea, eb)
	got := c.Decode(prod, 2)
	if math.Abs(got-a*b) > 1e-6 {
		t.Fatalf("scale-2 decode = %v want %v", got, a*b)
	}
}

func TestRingRoundTrip(t *testing.T) {
	c := Default
	n := new(big.Int).Lsh(big.NewInt(1), 128)
	n.Add(n, big.NewInt(159)) // arbitrary odd modulus
	for _, v := range []float64{0, 5.5, -5.5, 1000.25, -1000.25} {
		r := c.EncodeRing(v, 1, n)
		if r.Sign() < 0 || r.Cmp(n) >= 0 {
			t.Fatalf("ring element out of range: %v", r)
		}
		got := c.DecodeRing(r, 1, n)
		if math.Abs(got-v) > 1e-6 {
			t.Errorf("ring round trip %v -> %v", v, got)
		}
	}
}

func TestRingAdditionHomomorphism(t *testing.T) {
	c := Default
	n := new(big.Int).Lsh(big.NewInt(1), 100)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		ra, rb := c.EncodeRing(a, 1, n), c.EncodeRing(b, 1, n)
		sum := new(big.Int).Add(ra, rb)
		sum.Mod(sum, n)
		got := c.DecodeRing(sum, 1, n)
		return math.Abs(got-(a+b)) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestU64RoundTrip(t *testing.T) {
	c := Default
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := (rng.Float64()*2 - 1) * 1e4
		got := c.DecodeU64(c.EncodeU64(v, 1), 1)
		if math.Abs(got-v) > 1e-6 {
			t.Fatalf("u64 round trip %v -> %v", v, got)
		}
	}
}

func TestU64AdditiveSharing(t *testing.T) {
	// A value split into two random u64 shares reconstructs exactly.
	c := Default
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		v := (rng.Float64()*2 - 1) * 100
		x := c.EncodeU64(v, 1)
		share := rng.Uint64()
		other := x - share
		if got := c.DecodeU64(share+other, 1); math.Abs(got-v) > 1e-6 {
			t.Fatalf("share reconstruction %v -> %v", v, got)
		}
	}
}

func TestTruncateU64(t *testing.T) {
	c := Default
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a := (rng.Float64()*2 - 1) * 50
		b := (rng.Float64()*2 - 1) * 50
		// scale-2 product then truncate to scale 1.
		prod := c.EncodeU64(a, 1) * c.EncodeU64(b, 1)
		got := c.DecodeU64(c.TruncateU64(prod), 1)
		if math.Abs(got-a*b) > 1e-4 {
			t.Fatalf("truncated product %v*%v = %v", a, b, got)
		}
	}
}

func TestTruncateU64OnShares(t *testing.T) {
	// SecureML-style: truncate each share separately. Reconstruction is
	// correct up to one fixed-point ULP except with probability ≈ |x|/2^64
	// per value (Mohassel & Zhang, Theorem 1), so for |v| ≤ 1e3 at scale 2
	// (|x| ≈ 2^58) a ~1.5% failure rate is the expected behaviour, not a bug.
	c := Default
	rng := rand.New(rand.NewSource(4))
	bad := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		v := (rng.Float64()*2 - 1) * 1e3
		x := c.EncodeU64(v, 2)
		s0 := rng.Uint64()
		s1 := x - s0
		rec := c.TruncateU64(s0) + c.TruncateU64(s1)
		got := c.DecodeU64(rec, 1)
		if math.Abs(got-v) > 1e-5 {
			bad++
		}
	}
	if bad > trials/20 {
		t.Fatalf("%d/%d share truncations failed; far above the theoretical bound", bad, trials)
	}
	// For small values (|x| ≈ 2^51) failures should be essentially absent.
	bad = 0
	for i := 0; i < trials; i++ {
		v := rng.Float64()*2 - 1
		x := c.EncodeU64(v, 2)
		s0 := rng.Uint64()
		s1 := x - s0
		rec := c.TruncateU64(s0) + c.TruncateU64(s1)
		if math.Abs(c.DecodeU64(rec, 1)-v) > 1e-5 {
			bad++
		}
	}
	if bad > 2 {
		t.Fatalf("%d/%d small-value share truncations failed", bad, trials)
	}
}

func TestFromRingNegative(t *testing.T) {
	n := big.NewInt(1000)
	if got := FromRing(big.NewInt(999), n); got.Cmp(big.NewInt(-1)) != 0 {
		t.Fatalf("FromRing(999) = %v want -1", got)
	}
	if got := FromRing(big.NewInt(499), n); got.Cmp(big.NewInt(499)) != 0 {
		t.Fatalf("FromRing(499) = %v want 499", got)
	}
}

func TestEncodePanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Default.Encode(math.NaN(), 1)
}

// TestEncodeSignedRoundTrip checks the signed-magnitude codec: EncodeSigned
// must agree with Encode (mag·(−1)^neg == Encode(v)), DecodeSigned must
// invert it exactly, and magnitudes must never be negative.
func TestEncodeSignedRoundTrip(t *testing.T) {
	c := Default
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		v = math.Mod(v, 1e6)
		for _, scale := range []uint{1, 2} {
			mag, neg := c.EncodeSigned(v, scale)
			if mag.Sign() < 0 {
				return false
			}
			want := c.Encode(v, scale)
			signed := new(big.Int).Set(mag)
			if neg {
				signed.Neg(signed)
			}
			if signed.Cmp(want) != 0 {
				return false
			}
			if c.DecodeSigned(mag, neg, scale) != c.Decode(want, scale) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeSignedZero(t *testing.T) {
	for _, v := range []float64{0, math.Copysign(0, -1)} {
		mag, neg := Default.EncodeSigned(v, 1)
		if mag.Sign() != 0 || neg {
			t.Fatalf("EncodeSigned(%v) = (%v, %v), want (0, false)", v, mag, neg)
		}
	}
}
