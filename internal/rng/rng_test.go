package rng

import "testing"

func TestDeriveDeterministic(t *testing.T) {
	if Derive(42, "batch-order") != Derive(42, "batch-order") {
		t.Fatal("Derive is not deterministic")
	}
	if New(42, "x").Int63() != New(42, "x").Int63() {
		t.Fatal("New streams are not reproducible")
	}
}

func TestDeriveSeparatesLabelsAndSeeds(t *testing.T) {
	seen := map[int64]string{}
	for _, seed := range []int64{0, 1, 42, -1} {
		for _, label := range []string{"", "a", "b", "ab", "ba", "batch-order", "head-init"} {
			d := Derive(seed, label)
			key := d
			if prev, ok := seen[key]; ok {
				t.Fatalf("Derive collision: (%d,%q) and %s both give %d", seed, label, prev, d)
			}
			seen[key] = "earlier pair"
		}
	}
}

// TestArithmeticRelationsDoNotSurvive pins the property the rngstream
// analyzer exists for: seed+1's stream and seed's stream share no relation
// after derivation.
func TestArithmeticRelationsDoNotSurvive(t *testing.T) {
	a := Derive(100, "order")
	b := Derive(101, "order")
	if b-a == 1 || a == b {
		t.Fatalf("adjacent seeds stayed adjacent after derivation: %d, %d", a, b)
	}
}

func TestMix64KnownValue(t *testing.T) {
	// SplitMix64 finalizer of 0 with the golden increment: the first output
	// of a SplitMix64 sequence seeded with 0 (reference value from the
	// published algorithm).
	if got := Mix64(0x9e3779b97f4a7c15); got != 0xe220a8397b1dcdaf {
		t.Fatalf("Mix64(golden) = %#x, want 0xe220a8397b1dcdaf", got)
	}
}
