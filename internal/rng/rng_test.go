package rng

import "testing"

func TestDeriveDeterministic(t *testing.T) {
	if Derive(42, "batch-order") != Derive(42, "batch-order") {
		t.Fatal("Derive is not deterministic")
	}
	if New(42, "x").Int63() != New(42, "x").Int63() {
		t.Fatal("New streams are not reproducible")
	}
}

func TestDeriveSeparatesLabelsAndSeeds(t *testing.T) {
	seen := map[int64]string{}
	for _, seed := range []int64{0, 1, 42, -1} {
		for _, label := range []string{"", "a", "b", "ab", "ba", "batch-order", "head-init"} {
			d := Derive(seed, label)
			key := d
			if prev, ok := seen[key]; ok {
				t.Fatalf("Derive collision: (%d,%q) and %s both give %d", seed, label, prev, d)
			}
			seen[key] = "earlier pair"
		}
	}
}

// TestArithmeticRelationsDoNotSurvive pins the property the rngstream
// analyzer exists for: seed+1's stream and seed's stream share no relation
// after derivation.
func TestArithmeticRelationsDoNotSurvive(t *testing.T) {
	a := Derive(100, "order")
	b := Derive(101, "order")
	if b-a == 1 || a == b {
		t.Fatalf("adjacent seeds stayed adjacent after derivation: %d, %d", a, b)
	}
}

// TestSessionOffsetIdentity pins the identity the whole sharding design
// rides on: the shard coordinate is the shard's session offset, folded with
// the shard-local index into the global session index — so Session(seed, lo,
// j, role) IS Session(seed, 0, lo+j, role), shard 0 of 1 reproduces the
// unsharded streams, and re-partitioning sessions across any shard count
// never moves a stream.
func TestSessionOffsetIdentity(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7} {
		for _, role := range []uint64{1, 2} {
			for lo := 0; lo < 5; lo++ {
				for j := 0; j < 5; j++ {
					if got, want := Session(seed, lo, j, role), Session(seed, 0, lo+j, role); got != want {
						t.Fatalf("Session(%d,%d,%d,%d) = %d, want the global-index stream %d", seed, lo, j, role, got, want)
					}
					for _, epoch := range []int{0, 1, 3} {
						if got, want := SessionEpoch(seed, lo, j, role, epoch), SessionEpoch(seed, 0, lo+j, role, epoch); got != want {
							t.Fatalf("SessionEpoch(%d,%d,%d,%d,%d) != global-index stream", seed, lo, j, role, epoch)
						}
					}
				}
			}
		}
	}
}

// TestSessionStreamsDistinct checks neighboring coordinates and roles do not
// alias, and that the epoch streams differ from the setup stream.
func TestSessionStreamsDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for s := 0; s < 8; s++ {
		for _, role := range []uint64{1, 2} {
			d := Session(7, 0, s, role)
			if seen[d] {
				t.Fatalf("Session stream collision at session %d role %d", s, role)
			}
			seen[d] = true
			for epoch := 0; epoch < 4; epoch++ {
				e := SessionEpoch(7, 0, s, role, epoch)
				if seen[e] {
					t.Fatalf("SessionEpoch stream collision at session %d role %d epoch %d", s, role, epoch)
				}
				seen[e] = true
			}
		}
	}
}

func TestMix64KnownValue(t *testing.T) {
	// SplitMix64 finalizer of 0 with the golden increment: the first output
	// of a SplitMix64 sequence seeded with 0 (reference value from the
	// published algorithm).
	if got := Mix64(0x9e3779b97f4a7c15); got != 0xe220a8397b1dcdaf {
		t.Fatalf("Mix64(golden) = %#x, want 0xe220a8397b1dcdaf", got)
	}
}
