// Package rng centralizes deterministic seed derivation. Every RNG stream
// in the repo is named by a (base seed, label) pair and derived through the
// SplitMix64 finalizer, so distinct labels can never alias the way raw
// seed+k arithmetic can (PR 5's mask-stream collision: seed+i and seed+i+1
// overlap across adjacent sessions). Two call sites that must share a
// stream — both parties of a federated loop drawing the same batch
// permutation — share a label; everything else gets its own.
//
// The rngstream analyzer (internal/analyzers) enforces this package as the
// only road from one seed to another.
package rng

import "math/rand"

// golden is 2^64/phi, SplitMix64's stream increment; adding it before
// mixing keeps zero and small inputs away from Mix64's fixed point at 0.
const golden = 0x9e3779b97f4a7c15

// Mix64 is the SplitMix64 finalizer: a bijective avalanche over uint64.
// protocol.SessionRNG builds on the same function, so the session streams
// and the label streams live in one derivation family.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Derive returns the seed of the (seed, label) stream, folding each label
// byte through Mix64 so no arithmetic relation between labels survives
// into the derived seeds.
func Derive(seed int64, label string) int64 {
	h := Mix64(uint64(seed) + golden)
	for i := 0; i < len(label); i++ {
		h = Mix64(h ^ (uint64(label[i]) + golden))
	}
	return int64(h)
}

// New returns a math/rand stream for the (seed, label) pair.
func New(seed int64, label string) *rand.Rand {
	return rand.New(rand.NewSource(Derive(seed, label)))
}
