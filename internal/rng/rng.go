// Package rng centralizes deterministic seed derivation. Every RNG stream
// in the repo is named by a (base seed, label) pair and derived through the
// SplitMix64 finalizer, so distinct labels can never alias the way raw
// seed+k arithmetic can (PR 5's mask-stream collision: seed+i and seed+i+1
// overlap across adjacent sessions). Two call sites that must share a
// stream — both parties of a federated loop drawing the same batch
// permutation — share a label; everything else gets its own.
//
// The rngstream analyzer (internal/analyzers) enforces this package as the
// only road from one seed to another.
package rng

import "math/rand"

// golden is 2^64/phi, SplitMix64's stream increment; adding it before
// mixing keeps zero and small inputs away from Mix64's fixed point at 0.
const golden = 0x9e3779b97f4a7c15

// Mix64 is the SplitMix64 finalizer: a bijective avalanche over uint64.
// protocol.SessionRNG builds on the same function, so the session streams
// and the label streams live in one derivation family.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Derive returns the seed of the (seed, label) stream, folding each label
// byte through Mix64 so no arithmetic relation between labels survives
// into the derived seeds.
func Derive(seed int64, label string) int64 {
	h := Mix64(uint64(seed) + golden)
	for i := 0; i < len(label); i++ {
		h = Mix64(h ^ (uint64(label[i]) + golden))
	}
	return int64(h)
}

// New returns a math/rand stream for the (seed, label) pair.
func New(seed int64, label string) *rand.Rand {
	return rand.New(rand.NewSource(Derive(seed, label)))
}

// Session derives the seed of a per-session protocol stream from the
// (seed, shard, session, role) coordinate. The shard coordinate is the
// shard's session offset — the global index of its first session — and the
// session coordinate is shard-local, so the derived seed depends only on the
// global session index shard+session. That one identity carries the whole
// sharding story: shard 0 of 1 (offset 0) reproduces the unsharded streams
// bit for bit, and re-partitioning k sessions across a different shard count
// leaves every session's streams unchanged, which is what makes checkpoints
// resumable onto any shard count.
//
// This is the only sanctioned place stream coordinates may be folded
// together; callers pass them separately (the rngstream analyzer flags
// arithmetic in derivation-call arguments).
func Session(seed int64, shard, session int, role uint64) int64 {
	h := Mix64(uint64(seed) + golden)
	h = Mix64(h ^ (uint64(shard+session) + golden))
	h = Mix64(h ^ role)
	return int64(h)
}

// SessionEpoch extends Session with a per-epoch coordinate: the stream a
// session re-derives at each epoch boundary so a resumed run can re-enter
// the exact mask stream of any epoch without replaying the earlier ones.
// The epoch enters as (epoch+1)*golden so epoch 0's stream differs from the
// setup stream Session returns.
func SessionEpoch(seed int64, shard, session int, role uint64, epoch int) int64 {
	h := Mix64(uint64(seed) + golden)
	h = Mix64(h ^ (uint64(shard+session) + golden))
	h = Mix64(h ^ role)
	h = Mix64(h ^ (uint64(epoch+1) * golden))
	return int64(h)
}
