package attack

import (
	"math"
	"math/rand"
	"testing"

	"blindfl/internal/tensor"
)

func TestActivationAUCPerfectSignal(t *testing.T) {
	z := tensor.FromSlice(4, 1, []float64{-2, -1, 1, 2})
	y := []int{0, 0, 1, 1}
	if got := ActivationAUC(z, y); got != 1 {
		t.Fatalf("AUC = %v", got)
	}
	// Folded: an inverted signal is equally leaky.
	yInv := []int{1, 1, 0, 0}
	if got := ActivationAUC(z, yInv); got != 1 {
		t.Fatalf("folded AUC = %v", got)
	}
}

func TestActivationAUCOnNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := tensor.RandDense(rng, 500, 1, 1)
	y := make([]int, 500)
	for i := range y {
		y[i] = rng.Intn(2)
	}
	if got := ActivationAUC(z, y); got > 0.58 {
		t.Fatalf("AUC on noise = %v; expected ≈ 0.5", got)
	}
}

func TestDerivativeAttackOnOppositeDirections(t *testing.T) {
	// Logistic-loss structure: positives and negatives share a direction
	// with opposite signs (plus noise).
	rng := rand.New(rand.NewSource(2))
	dir := make([]float64, 6)
	for i := range dir {
		dir[i] = rng.NormFloat64()
	}
	g := tensor.NewDense(100, 6)
	y := make([]int, 100)
	for i := 0; i < 100; i++ {
		sign := -1.0
		if rng.Intn(2) == 1 {
			y[i] = 1
			sign = 1
		}
		for j := range dir {
			g.Set(i, j, sign*dir[j]+0.05*rng.NormFloat64())
		}
	}
	if got := DerivativeLabelAccuracy(g, y); got < 0.98 {
		t.Fatalf("attack accuracy %v on structured derivatives", got)
	}
}

func TestDerivativeAttackDegenerate(t *testing.T) {
	if got := DerivativeLabelAccuracy(tensor.NewDense(0, 3), nil); got != 0 {
		t.Fatalf("empty input = %v", got)
	}
	// All-zero gradients: folded accuracy equals the majority class share.
	g := tensor.NewDense(10, 3)
	y := []int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	if got := DerivativeLabelAccuracy(g, y); got != 0.5 {
		t.Fatalf("zero gradients = %v", got)
	}
}

func TestCompareSharesUncorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := tensor.RandDense(rng, 20, 10, 0.5)
	share := tensor.RandDense(rng, 20, 10, 1e5)
	st := CompareShares(truth, share)
	if math.Abs(st.Correlation) > 0.2 {
		t.Fatalf("correlation %v on independent share", st.Correlation)
	}
	if st.SignAgreement < 0.35 || st.SignAgreement > 0.65 {
		t.Fatalf("sign agreement %v", st.SignAgreement)
	}
	if st.ShareMaxAbs < 1000*st.TrueMaxAbs {
		t.Fatalf("share spread %v not ≫ truth spread %v", st.ShareMaxAbs, st.TrueMaxAbs)
	}
}

func TestCompareSharesIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	truth := tensor.RandDense(rng, 10, 10, 1)
	st := CompareShares(truth, truth)
	if st.Correlation < 0.999 || st.SignAgreement != 1 {
		t.Fatalf("self comparison: %+v", st)
	}
}

func TestDominantDirectionRecoversSignal(t *testing.T) {
	// Rows = ±v plus small noise; the dominant direction must align with v.
	rng := rand.New(rand.NewSource(5))
	v := []float64{3, -1, 2, 0.5}
	g := tensor.NewDense(50, 4)
	for i := 0; i < 50; i++ {
		s := 1.0
		if i%2 == 0 {
			s = -1
		}
		for j := range v {
			g.Set(i, j, s*v[j]+0.01*rng.NormFloat64())
		}
	}
	dir := dominantDirection(g)
	// |cos(dir, v)| ≈ 1.
	var dotv, nv, nd float64
	for j := range v {
		dotv += dir[j] * v[j]
		nv += v[j] * v[j]
		nd += dir[j] * dir[j]
	}
	if c := math.Abs(dotv) / math.Sqrt(nv*nd); c < 0.999 {
		t.Fatalf("cosine with planted direction = %v", c)
	}
}
