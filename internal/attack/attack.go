// Package attack implements the semi-honest adversarial analyses of the
// paper's Section 7.2: the forward-activation label attack (Fig. 9), the
// backward-derivative cosine-direction label attack (Fig. 10), and the
// weight-versus-share divergence measurement (Fig. 11). These are run
// against the split-learning baseline (where they succeed) and against
// BlindFL's shares (where they degrade to chance).
package attack

import (
	"math"

	"blindfl/internal/nn"
	"blindfl/internal/tensor"
)

// ActivationAUC scores the forward-activation attack for binary tasks:
// Party A uses its locally computable activation column as a label score.
// 0.5 means the activations carry no label information.
func ActivationAUC(zA *tensor.Dense, y []int) float64 {
	return foldAUC(nn.AUC(nn.Scores(zA), y))
}

// foldAUC folds an AUC around 0.5: an adversary free to negate its score
// achieves max(a, 1−a).
func foldAUC(a float64) float64 { return math.Max(a, 1-a) }

// ActivationAccuracy scores the attack for multi-class tasks: argmax over
// A's activation columns against the true class.
func ActivationAccuracy(zA *tensor.Dense, y []int) float64 {
	return nn.Accuracy(zA, y)
}

// DerivativeLabelAccuracy is the Fig. 10 attack: for binary classification
// under logistic loss, the derivatives ∇E_A of positive and negative
// instances point in opposite directions, so Party A splits the batch by
// the sign of each row's projection onto the batch's dominant direction
// (computed by power iteration — a more robust variant of the paper's
// pairwise cosine-similarity clustering) and reads the labels off the two
// clusters. Returns the fraction of the batch labelled correctly, folded
// since the adversary can flip the cluster naming.
func DerivativeLabelAccuracy(gradEA *tensor.Dense, y []int) float64 {
	if gradEA.Rows != len(y) || gradEA.Rows == 0 {
		return 0
	}
	dir := dominantDirection(gradEA)
	correct := 0
	for i := 0; i < gradEA.Rows; i++ {
		pred := 0
		if dot(dir, gradEA.Row(i)) > 0 {
			pred = 1
		}
		if pred == y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(y))
	return math.Max(acc, 1-acc)
}

// dominantDirection approximates the top right-singular vector of g with a
// few rounds of power iteration on gᵀg, seeded by the largest-norm row.
func dominantDirection(g *tensor.Dense) []float64 {
	v := make([]float64, g.Cols)
	best, bestNorm := 0, 0.0
	for i := 0; i < g.Rows; i++ {
		n := dot(g.Row(i), g.Row(i))
		if n > bestNorm {
			bestNorm = n
			best = i
		}
	}
	copy(v, g.Row(best))
	if bestNorm == 0 {
		v[0] = 1
		return v
	}
	tmp := make([]float64, g.Rows)
	for iter := 0; iter < 5; iter++ {
		// tmp = g·v; v = gᵀ·tmp, normalized.
		for i := 0; i < g.Rows; i++ {
			tmp[i] = dot(g.Row(i), v)
		}
		for j := range v {
			v[j] = 0
		}
		for i := 0; i < g.Rows; i++ {
			row := g.Row(i)
			for j := range v {
				v[j] += row[j] * tmp[i]
			}
		}
		n := math.Sqrt(dot(v, v))
		if n == 0 {
			break
		}
		for j := range v {
			v[j] /= n
		}
	}
	return v
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// ShareStats quantifies the Fig. 11 comparison between a true weight tensor
// and the single share a party holds.
type ShareStats struct {
	Correlation   float64 // Pearson correlation share vs truth
	SignAgreement float64 // fraction of coordinates with matching sign
	TrueMaxAbs    float64
	ShareMaxAbs   float64
}

// CompareShares computes ShareStats for a (truth, share) pair of equal
// shape. For a properly masked share, Correlation ≈ 0, SignAgreement ≈ 0.5
// and ShareMaxAbs ≫ TrueMaxAbs.
func CompareShares(truth, share *tensor.Dense) ShareStats {
	n := float64(len(truth.Data))
	var mt, ms float64
	for i := range truth.Data {
		mt += truth.Data[i]
		ms += share.Data[i]
	}
	mt /= n
	ms /= n
	var cov, vt, vs float64
	agree := 0
	for i := range truth.Data {
		dt := truth.Data[i] - mt
		dsh := share.Data[i] - ms
		cov += dt * dsh
		vt += dt * dt
		vs += dsh * dsh
		if (truth.Data[i] >= 0) == (share.Data[i] >= 0) {
			agree++
		}
	}
	corr := 0.0
	if vt > 0 && vs > 0 {
		corr = cov / math.Sqrt(vt*vs)
	}
	return ShareStats{
		Correlation:   corr,
		SignAgreement: float64(agree) / n,
		TrueMaxAbs:    truth.MaxAbs(),
		ShareMaxAbs:   share.MaxAbs(),
	}
}
