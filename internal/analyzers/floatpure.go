package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"blindfl/internal/analyzers/analysis"
)

// Floatpure flags floating-point arithmetic inside the exact-integer zones:
// the paillier and fixedpoint packages, and hetensor's integer serve
// kernels. Everything between fixed-point encode and decode must be exact
// integer math — a stray float operation silently reintroduces rounding
// that the HE pipeline cannot detect, and the PR 6 serve path's
// correctness argument (bit-identical client/server results) rests on the
// kernels never touching floats. The codec boundary itself is allowlisted:
// functions whose names start with Encode, Decode, Pack or Unpack are where
// floats legitimately enter and leave the integer domain.
var Floatpure = &analysis.Analyzer{
	Name: "floatpure",
	Doc: "flags float arithmetic inside the exact-integer zones (paillier, fixedpoint, serve kernels)\n\n" +
		"Exact-arithmetic packages must not compute on floats outside the Encode/Decode/Pack/Unpack " +
		"codec boundaries; a stray float op silently reintroduces rounding into the HE pipeline.",
	Run: runFloatpure,
}

// floatZonePackages are exact-integer packages checked in full (matched by
// import-path last segment).
var floatZonePackages = []string{"paillier", "fixedpoint"}

// floatZoneFiles names per-file zones inside otherwise float-friendly
// packages: package last segment → file basename.
var floatZoneFiles = map[string]string{
	"hetensor": "serve.go",
}

// codecPrefixes are function-name prefixes allowed to do float math: the
// encode/decode boundary where values cross into and out of the integer
// domain.
var codecPrefixes = []string{"Encode", "Decode", "Pack", "Unpack", "encode", "decode", "pack", "unpack"}

func runFloatpure(pass *analysis.Pass) (interface{}, error) {
	pkgZone := false
	for _, p := range floatZonePackages {
		if fromPackage(pass.Pkg.Path(), p) {
			pkgZone = true
			break
		}
	}
	var zoneFile string
	if !pkgZone {
		for p, base := range floatZoneFiles {
			if fromPackage(pass.Pkg.Path(), p) {
				zoneFile = base
				break
			}
		}
		if zoneFile == "" {
			return nil, nil
		}
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		if zoneFile != "" && filepath.Base(pass.Fset.Position(f.Pos()).Filename) != zoneFile {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isCodecFunc(fd.Name.Name) {
				continue
			}
			checkFloatOps(pass, fd.Body)
		}
	}
	return nil, nil
}

// isCodecFunc reports whether name marks an allowlisted codec boundary.
func isCodecFunc(name string) bool {
	for _, p := range codecPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// checkFloatOps flags float arithmetic inside one function body. Nested
// function literals inherit the enclosing function's zone status.
func checkFloatOps(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if !arithOp(n.Op) {
				return true
			}
			if isFloat(pass.TypeOf(n.X)) || isFloat(pass.TypeOf(n.Y)) {
				pass.Reportf(n.OpPos, "float arithmetic in an exact-integer zone; keep the computation "+
					"in integers (or move it behind an Encode/Decode codec boundary)")
			}
		case *ast.AssignStmt:
			if !arithAssignOp(n.Tok) {
				return true
			}
			for _, lhs := range n.Lhs {
				if isFloat(pass.TypeOf(lhs)) {
					pass.Reportf(n.TokPos, "float arithmetic in an exact-integer zone; keep the computation "+
						"in integers (or move it behind an Encode/Decode codec boundary)")
					break
				}
			}
		case *ast.IncDecStmt:
			if isFloat(pass.TypeOf(n.X)) {
				pass.Reportf(n.TokPos, "float arithmetic in an exact-integer zone; keep the computation "+
					"in integers (or move it behind an Encode/Decode codec boundary)")
			}
		}
		return true
	})
}

// arithOp reports whether op computes a new value (comparisons are fine:
// tolerance checks against thresholds don't perturb the data path).
func arithOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
		return true
	}
	return false
}

func arithAssignOp(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN:
		return true
	}
	return false
}

// isFloat reports whether t is a floating-point or complex basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}
