// Package load type-checks Go packages for the blindfl-vet analyzers without
// golang.org/x/tools: dependencies are imported from compiler export data
// (the same .a/.x files the go command hands to vet tools, or the build-cache
// files `go list -export` reports), with an optional GOPATH-style source-tree
// fallback used by the analysistest fixtures. Only the package under
// analysis is parsed; everything below it loads through export data, so a
// load costs one parse + one type-check like a real unitchecker run.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, ready for analyzer passes.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors collects every type-checker error. Analysis proceeds on the
	// partial information go/types still provides; drivers decide whether the
	// errors themselves are fatal.
	TypeErrors []error
}

// Loader resolves imports and type-checks packages. The zero value is not
// usable; construct with New.
type Loader struct {
	Fset *token.FileSet

	// Exports maps canonical import paths to files containing gc export
	// data (vet.cfg PackageFile entries or `go list -export` output).
	Exports map[string]string

	// ImportMap maps import paths as written in source to canonical package
	// paths (vet.cfg ImportMap). Paths absent from the map are their own
	// canonical path.
	ImportMap map[string]string

	// SrcRoot, when non-empty, is a GOPATH-style source root (a testdata/src
	// directory): an import path with no export data resolves to
	// SrcRoot/<path> and is parsed and type-checked from source.
	SrcRoot string

	gc      types.ImporterFrom
	srcPkgs map[string]*types.Package
	loading map[string]bool
}

// New returns an empty Loader sharing one FileSet across everything it
// parses.
func New() *Loader {
	return &Loader{
		Fset:      token.NewFileSet(),
		Exports:   map[string]string{},
		ImportMap: map[string]string{},
		srcPkgs:   map[string]*types.Package{},
		loading:   map[string]bool{},
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: export data first, then the
// source-root fallback.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if c, ok := l.ImportMap[path]; ok {
		path = c
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.Exports[path]; ok {
		if l.gc == nil {
			l.gc = importer.ForCompiler(l.Fset, "gc", func(p string) (io.ReadCloser, error) {
				f, ok := l.Exports[p]
				if !ok {
					return nil, fmt.Errorf("load: no export data for %q", p)
				}
				return os.Open(f)
			}).(types.ImporterFrom)
		}
		return l.gc.ImportFrom(path, dir, mode)
	}
	if l.SrcRoot != "" {
		if d := filepath.Join(l.SrcRoot, filepath.FromSlash(path)); isDir(d) {
			return l.loadSource(path, d)
		}
	}
	return nil, fmt.Errorf("load: cannot resolve import %q (no export data, no source)", path)
}

func isDir(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

// loadSource parses and type-checks SrcRoot package path from dir,
// memoizing the result so diamond imports share one types.Package.
func (l *Loader) loadSource(path, dir string) (*types.Package, error) {
	if pkg, ok := l.srcPkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.ParseDir(dir)
	if err != nil {
		return nil, err
	}
	pkg, _, errs := l.Check(path, files)
	if len(errs) > 0 {
		return nil, fmt.Errorf("load: type-checking %q: %v", path, errs[0])
	}
	l.srcPkgs[path] = pkg
	return pkg, nil
}

// ParseDir parses every non-test .go file in dir with comments.
func (l *Loader) ParseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, filepath.Join(dir, n))
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	return l.ParseFiles(names)
}

// ParseFiles parses the named files with comments.
func (l *Loader) ParseFiles(names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, n, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Check type-checks files as package path, collecting rather than aborting
// on type errors so analyzers can run over partially broken packages.
func (l *Loader) Check(path string, files []*ast.File) (*types.Package, *types.Info, []error) {
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	return pkg, info, errs
}

// LoadFiles parses and type-checks the named files as one package.
func (l *Loader) LoadFiles(path string, names []string) (*Package, error) {
	files, err := l.ParseFiles(names)
	if err != nil {
		return nil, err
	}
	pkg, info, errs := l.Check(path, files)
	return &Package{Path: path, Files: files, Types: pkg, Info: info, TypeErrors: errs}, nil
}

// ListedPackage is the subset of `go list -json` output the loader consumes.
type ListedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
}

// GoList enumerates patterns via `go list -deps -export -json`, returning
// the matched target packages and the export-data map covering their whole
// dependency closure. dir is the working directory for the go invocation
// ("" = current).
func GoList(dir string, patterns ...string) (targets []*ListedPackage, exports map[string]string, err error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v: %s", err, stderr.String())
	}
	exports = map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListedPackage
		if derr := dec.Decode(&p); derr != nil {
			if derr == io.EOF {
				break
			}
			return nil, nil, fmt.Errorf("go list: decoding output: %v", derr)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}
	return targets, exports, nil
}

// AbsGoFiles returns the package's Go files as absolute paths.
func (p *ListedPackage) AbsGoFiles() []string {
	out := make([]string, len(p.GoFiles))
	for i, n := range p.GoFiles {
		if filepath.IsAbs(n) {
			out[i] = n
		} else {
			out[i] = filepath.Join(p.Dir, n)
		}
	}
	return out
}

// Path returns the package's import path.
func (p *ListedPackage) Path() string { return p.ImportPath }

// StdlibExports resolves export-data files for the given import paths (and
// their dependency closure) via `go list -deps -export`. The analysistest
// harness uses it to satisfy fixture imports of real standard-library
// packages.
func StdlibExports(paths []string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	_, exports, err := GoList("", paths...)
	if err != nil {
		return nil, err
	}
	return exports, nil
}
