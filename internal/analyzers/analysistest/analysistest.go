// Package analysistest runs blindfl-vet analyzers over testdata fixture
// packages and checks reported diagnostics against // want annotations, in
// the style of golang.org/x/tools/go/analysis/analysistest (which this repo
// cannot depend on):
//
//	rand.New(rand.NewSource(seed + 1)) // want `derived arithmetically`
//
// Each backquoted string after "want" is a regexp that must match one
// diagnostic on that line; lines without annotations must stay silent.
// Fixtures live in testdata/src/<pkg> and are loaded GOPATH-style, with
// real standard-library imports satisfied from export data. //blindfl:allow
// directives are honored, so fixtures can also exercise suppression.
package analysistest

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"blindfl/internal/analyzers/allow"
	"blindfl/internal/analyzers/analysis"
	"blindfl/internal/analyzers/load"
)

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("//[ \t]*want((?:[ \t]+`[^`]*`)+)")
var wantArgRe = regexp.MustCompile("`([^`]*)`")

// Run loads each fixture package from testdata/src/<pkg>, runs the analyzer
// and compares diagnostics with the fixtures' // want annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, srcRoot, a, pkg)
		})
	}
}

func runOne(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	l := load.New()
	l.SrcRoot = srcRoot

	dir := filepath.Join(srcRoot, filepath.FromSlash(pkgPath))
	files, err := l.ParseDir(dir)
	if err != nil {
		t.Fatalf("parsing fixture %s: %v", pkgPath, err)
	}

	// Satisfy standard-library imports from export data; fixture-local
	// imports resolve through SrcRoot.
	var std []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if dirExists(filepath.Join(srcRoot, filepath.FromSlash(path))) {
				continue
			}
			std = append(std, path)
		}
	}
	exports, err := load.StdlibExports(std)
	if err != nil {
		t.Fatalf("resolving stdlib exports %v: %v", std, err)
	}
	l.Exports = exports

	pkg, info, errs := l.Check(pkgPath, files)
	for _, e := range errs {
		t.Errorf("fixture %s does not type-check: %v", pkgPath, e)
	}
	if t.Failed() {
		return
	}

	wants := collectWants(t, l, files)

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      l.Fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	allow.Filter(pass, allow.NewIndex(l.Fset, files))
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	for _, d := range got {
		p := l.Fset.Position(d.Pos)
		if w := matchWant(wants, p.Filename, p.Line, d.Message); w == nil {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(p.Filename), p.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// collectWants parses // want annotations from the fixtures' comments.
func collectWants(t *testing.T, l *load.Loader, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				res, err := parseWantComment(c.Text)
				if err != nil {
					p := l.Fset.Position(c.Pos())
					t.Fatalf("%s:%d: %v", filepath.Base(p.Filename), p.Line, err)
				}
				for _, re := range res {
					p := l.Fset.Position(c.Pos())
					wants = append(wants, &want{file: p.Filename, line: p.Line, re: re})
				}
			}
		}
	}
	return wants
}

func dirExists(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

// matchWant finds the first unmatched want on (file, line) whose regexp
// matches msg, marking it matched.
func matchWant(wants []*want, file string, line int, msg string) *want {
	for _, w := range wants {
		if w.matched || w.line != line || w.file != file {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return w
		}
	}
	return nil
}

// parseWantComment extracts the regexps from one comment's text.
func parseWantComment(text string) ([]*regexp.Regexp, error) {
	m := wantRe.FindStringSubmatch(text)
	if m == nil {
		return nil, nil
	}
	var res []*regexp.Regexp
	for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
		re, err := regexp.Compile(arg[1])
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", arg[1], err)
		}
		res = append(res, re)
	}
	return res, nil
}
