package allow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const src = `package p

func f() int {
	x := 1 //blindfl:allow bigval keeps the legacy layout
	//blindfl:allow rngstream own-line directive covers the next code line
	y := 2
	z := 3 //blindfl:allow floatpure
	_ = z
	return x + y
}
`

func parse(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// lineStart returns a position on the given 1-based line of the file.
func lineStart(fset *token.FileSet, f *ast.File, line int) token.Pos {
	return fset.File(f.Pos()).LineStart(line)
}

func TestSameLineDirective(t *testing.T) {
	fset, f := parse(t)
	ix := NewIndex(fset, []*ast.File{f})
	if !ix.Allowed(lineStart(fset, f, 4), "bigval") {
		t.Error("same-line directive did not suppress bigval on line 4")
	}
	if ix.Allowed(lineStart(fset, f, 4), "rngstream") {
		t.Error("bigval directive suppressed a different analyzer")
	}
	if ix.Allowed(lineStart(fset, f, 9), "bigval") {
		t.Error("directive suppressed an unrelated line")
	}
}

func TestOwnLineDirectiveCoversNextCodeLine(t *testing.T) {
	fset, f := parse(t)
	ix := NewIndex(fset, []*ast.File{f})
	if !ix.Allowed(lineStart(fset, f, 6), "rngstream") {
		t.Error("own-line directive did not cover the following code line")
	}
	if ix.Allowed(lineStart(fset, f, 5), "rngstream") {
		t.Error("own-line directive suppressed its own (code-free) line")
	}
}

func TestProblems(t *testing.T) {
	fset, f := parse(t)
	ix := NewIndex(fset, []*ast.File{f})
	// Use only the bigval directive; leave rngstream's unused.
	ix.Allowed(lineStart(fset, f, 4), "bigval")
	probs := ix.Problems(map[string]bool{"bigval": true, "rngstream": true})
	var malformed, unused int
	for _, p := range probs {
		switch {
		case strings.Contains(p.Message, "malformed"):
			malformed++
		case strings.Contains(p.Message, "unused"):
			unused++
		}
	}
	if malformed != 1 {
		t.Errorf("got %d malformed-directive problems, want 1 (the reasonless floatpure directive)", malformed)
	}
	if unused != 1 {
		t.Errorf("got %d unused-directive problems, want 1 (the unused rngstream directive)", unused)
	}
}

func TestUnusedIgnoredForDisabledAnalyzer(t *testing.T) {
	fset, f := parse(t)
	ix := NewIndex(fset, []*ast.File{f})
	probs := ix.Problems(map[string]bool{"bigval": true})
	for _, p := range probs {
		if strings.Contains(p.Message, "rngstream") {
			t.Errorf("rngstream directive reported unused while rngstream is disabled: %s", p.Message)
		}
	}
}
