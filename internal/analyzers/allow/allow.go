// Package allow parses //blindfl:allow suppression directives — the audited
// escape hatch for the blindfl-vet analyzers.
//
// A directive has the form
//
//	//blindfl:allow <analyzer> <reason>
//
// and suppresses diagnostics of the named analyzer on the directive's own
// line, or — when the directive stands on a line of its own — on the first
// following line that carries code. The reason is mandatory: an exception
// without a recorded justification defeats the point of making exceptions
// auditable, so a reasonless directive is itself reported as a finding, as
// is a directive that no longer suppresses anything (stale exceptions rot
// into folklore).
package allow

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"blindfl/internal/analyzers/analysis"
)

// Prefix is the directive comment prefix (no space after //, like
// //go:build — gofmt preserves directive comments verbatim).
const Prefix = "//blindfl:allow"

// Directive is one parsed //blindfl:allow comment.
type Directive struct {
	Analyzer string    // analyzer name the exception applies to
	Reason   string    // mandatory justification
	Pos      token.Pos // position of the directive comment
	File     string    // file the directive appears in
	Line     int       // line the directive suppresses (its own, or the next code line)
	used     bool
}

// Problem is a malformed directive (missing analyzer name or reason).
type Problem struct {
	Pos     token.Pos
	Message string
}

// Index holds every directive of one package, keyed for suppression lookup.
type Index struct {
	fset       *token.FileSet
	directives []*Directive
	byKey      map[string][]*Directive // "file:line:analyzer"
	problems   []Problem
}

// NewIndex scans the files' comments for directives.
func NewIndex(fset *token.FileSet, files []*ast.File) *Index {
	ix := &Index{fset: fset, byKey: map[string][]*Directive{}}
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil {
			continue
		}
		// Lines holding code: a directive on its own line suppresses the
		// next such line (the annotated statement below it).
		codeLines := map[int]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, isComment := n.(*ast.Comment); isComment {
				return false
			}
			if _, isGroup := n.(*ast.CommentGroup); isGroup {
				return false
			}
			codeLines[fset.Position(n.Pos()).Line] = true
			return true
		})
		maxLine := tf.LineCount()
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, Prefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, Prefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				pos := fset.Position(c.Pos())
				if name == "" || reason == "" {
					ix.problems = append(ix.problems, Problem{
						Pos:     c.Pos(),
						Message: "malformed " + Prefix + " directive: want \"" + Prefix + " <analyzer> <reason>\"",
					})
					continue
				}
				d := &Directive{
					Analyzer: name, Reason: reason, Pos: c.Pos(),
					File: pos.Filename, Line: pos.Line,
				}
				if !codeLines[pos.Line] {
					// Own-line directive: attach to the next code line.
					for l := pos.Line + 1; l <= maxLine; l++ {
						if codeLines[l] {
							d.Line = l
							break
						}
					}
				}
				ix.directives = append(ix.directives, d)
				key := d.File + ":" + strconv.Itoa(d.Line) + ":" + d.Analyzer
				ix.byKey[key] = append(ix.byKey[key], d)
			}
		}
	}
	return ix
}

// Allowed reports whether a diagnostic of the named analyzer at pos is
// suppressed, marking the matching directive as used.
func (ix *Index) Allowed(pos token.Pos, analyzer string) bool {
	p := ix.fset.Position(pos)
	ds := ix.byKey[p.Filename+":"+strconv.Itoa(p.Line)+":"+analyzer]
	if len(ds) == 0 {
		return false
	}
	for _, d := range ds {
		d.used = true
	}
	return true
}

// Problems returns malformed directives plus, for each analyzer name in
// enabled, directives that suppressed nothing — every recorded exception
// must still be earning its keep.
func (ix *Index) Problems(enabled map[string]bool) []Problem {
	out := append([]Problem(nil), ix.problems...)
	for _, d := range ix.directives {
		if !d.used && enabled[d.Analyzer] {
			out = append(out, Problem{
				Pos:     d.Pos,
				Message: "unused " + Prefix + " " + d.Analyzer + " directive (nothing to suppress here; delete it)",
			})
		}
	}
	return out
}

// Filter wraps pass.Report so directives suppress diagnostics before they
// reach the driver's sink. Call before pass.Analyzer.Run.
func Filter(pass *analysis.Pass, ix *Index) {
	name := pass.Analyzer.Name
	inner := pass.Report
	pass.Report = func(d analysis.Diagnostic) {
		if ix.Allowed(d.Pos, name) {
			return
		}
		inner(d)
	}
}
